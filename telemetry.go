package ankerdb

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"ankerdb/internal/telemetry"
)

// Telemetry wiring: every hot phase of the engine feeds a lock-free
// log2 latency histogram (internal/telemetry), every notable state
// transition lands in an always-on flight-recorder ring, and queries
// slower than WithSlowQueryThreshold are captured with their full
// per-operator breakdown. Exporters: Stats carries histogram
// snapshots, MetricsText renders Prometheus text, TraceDump renders
// the flight recorder, and WithMetricsServer serves all of it (plus
// expvar and pprof) over HTTP.

// Hist is an immutable latency-histogram snapshot: log2 nanosecond
// buckets (Buckets[i] counts observations below 2^i ns), a count and
// a cumulative sum, with Mean/Quantile/Merge/String helpers. Stats
// exposes one per instrumented phase.
type Hist = telemetry.Hist

// HistBucketBound returns the exclusive upper bound of Hist bucket i;
// the last bucket is unbounded.
func HistBucketBound(i int) time.Duration { return telemetry.BucketBound(i) }

// traceRingSize is the flight-recorder capacity: the newest this many
// events survive for TraceDump. Sized to hold a useful post-mortem
// window while keeping the always-on ring's footprint (~96 KiB of
// noscan memory) negligible next to any real working set — on small
// heaps the ring raises the collector's live floor, so bigger is not
// free.
const traceRingSize = 2048

// slowLogCap bounds the slow-query log: the newest this many entries
// survive for SlowQueries.
const slowLogCap = 64

// dbTelemetry is the per-DB observability state. It lives by value
// inside DB (histograms are atomics and must not be copied; DB is
// only ever handled by pointer).
type dbTelemetry struct {
	rec *telemetry.Recorder

	// Commit pipeline phases. Linger is only observed when
	// WithGroupCommitMaxWait is set; lock-wait is observed per
	// committer, validate/install/fsync once per batch (the amortized
	// granularity the batch actually pays them at).
	commitLinger   telemetry.Histogram
	commitLockWait telemetry.Histogram
	commitValidate telemetry.Histogram
	commitInstall  telemetry.Histogram
	commitFsync    telemetry.Histogram

	snapCreate telemetry.Histogram // per column snapshot (Fig 5's y-axis)
	queryExec  telemetry.Histogram // Query.Run end to end
	checkpoint telemetry.Histogram // Checkpoint duration
	recovery   telemetry.Histogram // Open-time replay (one observation)
	vacuum     telemetry.Histogram // explicit + commit-path vacuum passes

	// replLag observes, at each replica ack the primary receives, how
	// many committed timestamps the replica trails by — a COUNT, not a
	// duration; it rides the duration histogram type for its power-of-
	// two buckets and is rendered with raw bounds.
	replLag telemetry.Histogram

	queryIDs atomic.Uint64

	slowThresh time.Duration // WithSlowQueryThreshold; 0 = disabled

	slowMu   sync.Mutex
	slow     []SlowQuery
	slowNext int
}

// SlowQuery is one slow-query log entry: a query whose end-to-end
// execution took at least WithSlowQueryThreshold, with the execution
// statistics (per-operator rows in/out, zone-map skip counts, the
// index-route decision, morsel count) needed to attribute the time.
type SlowQuery struct {
	At       time.Time     // completion wall-clock time
	Duration time.Duration // end-to-end Run latency
	Table    string        // probe table
	Stats    QueryStats
}

func (t *dbTelemetry) noteSlow(q SlowQuery) {
	t.slowMu.Lock()
	if len(t.slow) < slowLogCap {
		t.slow = append(t.slow, q)
	} else {
		t.slow[t.slowNext] = q
		t.slowNext = (t.slowNext + 1) % slowLogCap
	}
	t.slowMu.Unlock()
}

// SlowQueries returns the retained slow-query log entries, oldest
// first. Empty unless WithSlowQueryThreshold is set and queries
// crossed it.
func (db *DB) SlowQueries() []SlowQuery {
	t := &db.tel
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	out := make([]SlowQuery, 0, len(t.slow))
	out = append(out, t.slow[t.slowNext:]...)
	out = append(out, t.slow[:t.slowNext]...)
	return out
}

// TraceDump writes the flight recorder's surviving events (oldest
// first) and the slow-query log to w: the first stop when attributing
// a stall after the fact. The recorder is always on; events older
// than its ring capacity are gone.
func (db *DB) TraceDump(w io.Writer) {
	rec := db.tel.rec
	fmt.Fprintf(w, "# ankerdb flight recorder: %d events recorded, ring capacity %d\n",
		rec.Seq(), traceRingSize)
	rec.WriteTrace(w)
	if slow := db.SlowQueries(); len(slow) > 0 {
		fmt.Fprintf(w, "# slow queries (threshold %v):\n", db.tel.slowThresh)
		for _, q := range slow {
			st := q.Stats
			fmt.Fprintf(w, "%s  %s  table=%s morsels=%d rows=%d/%d blocks=%d skipped=%d index=%v\n",
				q.At.Format(time.RFC3339Nano), q.Duration, q.Table,
				st.Morsels, st.RowsScanned, st.RowsEmitted,
				st.BlocksScanned, st.BlocksSkipped, st.IndexRouted)
			for _, op := range st.Operators {
				fmt.Fprintf(w, "    %-12s in=%d out=%d\n", op.Op, op.RowsIn, op.RowsOut)
			}
		}
	}
}

// MetricsText renders every engine counter and phase histogram in
// Prometheus text exposition format under the stable ankerdb_* name
// schema (counters end in _total, histograms in _seconds). The same
// bytes are served at /metrics by WithMetricsServer.
func (db *DB) MetricsText(w io.Writer) error {
	s := db.Stats()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	hist := func(name, help, labels string, h Hist) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		h.WriteProm(w, name, labels)
	}

	fmt.Fprintf(w, "# HELP ankerdb_info engine configuration\n# TYPE ankerdb_info gauge\n")
	fmt.Fprintf(w, "ankerdb_info{strategy=%q,sync=%q,durable=\"%v\",shards=\"%d\"} 1\n",
		telemetry.PromEscape(s.Strategy), telemetry.PromEscape(s.SyncPolicy), s.Durable, s.CommitShards)

	// Transaction pipeline.
	counter("ankerdb_txn_commits_total", "OLTP commits that materialised writes", s.Commits)
	counter("ankerdb_txn_empty_commits_total", "read-only OLTP commits", s.EmptyCommits)
	counter("ankerdb_txn_aborts_total", "explicit aborts plus validation failures", s.Aborts)
	counter("ankerdb_txn_conflicts_total", "precision-locking validation failures", s.Conflicts)
	counter("ankerdb_txn_oltp_begun_total", "OLTP transactions begun", s.OLTPBegun)
	counter("ankerdb_txn_olap_begun_total", "OLAP transactions begun", s.OLAPBegun)
	gauge("ankerdb_txn_active", "running OLTP transactions", int64(s.ActiveTxns))

	// Group commit.
	counter("ankerdb_commit_batches_total", "commit batches processed", s.CommitBatches)
	counter("ankerdb_commit_cross_shard_total", "commits spanning multiple shards", s.CommitShardConflicts)
	fmt.Fprintf(w, "# HELP ankerdb_group_commit_size transactions per shard-lock acquisition\n")
	fmt.Fprintf(w, "# TYPE ankerdb_group_commit_size histogram\n")
	var cum uint64
	for i, b := range s.GroupCommitSize.Buckets {
		cum += b
		if i == len(s.GroupCommitSize.Buckets)-1 {
			fmt.Fprintf(w, "ankerdb_group_commit_size_bucket{le=\"+Inf\"} %d\n", cum)
		} else {
			fmt.Fprintf(w, "ankerdb_group_commit_size_bucket{le=\"%d\"} %d\n", GroupCommitBucketBounds[i], cum)
		}
	}
	// Batch sizes sum to processed requests: committed plus conflicted.
	fmt.Fprintf(w, "ankerdb_group_commit_size_sum %d\n", s.Commits+s.Conflicts)
	fmt.Fprintf(w, "ankerdb_group_commit_size_count %d\n", s.GroupCommitSize.Observations())

	// Commit phase latency.
	hist("ankerdb_commit_linger_seconds", "group-commit pre-lock linger (WithGroupCommitMaxWait)", "", s.CommitLingerHist)
	hist("ankerdb_commit_lock_wait_seconds", "contended shard commit lock acquisition wait", "", s.CommitLockWaitHist)
	hist("ankerdb_commit_validate_seconds", "per-batch precision-locking validation", "", s.CommitValidateHist)
	hist("ankerdb_commit_install_seconds", "per-batch write materialisation", "", s.CommitInstallHist)
	hist("ankerdb_commit_fsync_seconds", "per-batch WAL append and sync", "", s.CommitFsyncHist)

	// Durability.
	counter("ankerdb_wal_bytes_total", "WAL record bytes appended", s.WALBytes)
	counter("ankerdb_wal_records_total", "WAL commit and bulk-load records appended", s.WALRecords)
	counter("ankerdb_wal_fsyncs_total", "fsyncs issued", s.FsyncCount)
	counter("ankerdb_checkpoints_total", "checkpoints completed", s.CheckpointCount)
	counter("ankerdb_auto_checkpoints_total", "checkpoints triggered by the scheduler", s.AutoCheckpointCount)
	counter("ankerdb_recovery_replayed_txns_total", "WAL commit records replayed by Open", s.RecoveryReplayedTxns)
	counter("ankerdb_recovery_replayed_loads_total", "bulk-load chunk records replayed by Open", s.RecoveryReplayedLoads)
	hist("ankerdb_checkpoint_seconds", "checkpoint duration", "", s.CheckpointHist)
	hist("ankerdb_recovery_replay_seconds", "Open-time recovery replay duration", "", s.RecoveryReplayHist)

	// Snapshot lifecycle. The creation histogram is labeled by
	// strategy, the paper's Figure 5 comparison axis.
	counter("ankerdb_snapshots_created_total", "column snapshots created", s.SnapshotsCreated)
	counter("ankerdb_snapshots_released_total", "column snapshots released", s.SnapshotsReleased)
	gauge("ankerdb_snapshots_active", "column snapshots currently held", int64(s.ActiveSnapshots))
	counter("ankerdb_snapshot_generations_total", "snapshot generations started", s.Generations)
	gauge("ankerdb_snapshot_staleness_commits", "commits the current generation lags", int64(s.SnapshotStaleness))
	gauge("ankerdb_snapshot_pinned_generations", "generations still referenced", int64(s.PinnedGenerations))
	hist("ankerdb_snapshot_create_seconds", "column snapshot creation latency by strategy", fmt.Sprintf("strategy=%q", telemetry.PromEscape(s.Strategy)), s.SnapshotCreateHist)

	// Query engine.
	counter("ankerdb_queries_total", "queries executed through the engine", s.QueriesRun)
	counter("ankerdb_zone_blocks_skipped_total", "probe blocks pruned by zone maps", s.ZoneMapSkippedChunks)
	counter("ankerdb_zone_blocks_scanned_total", "probe blocks read", s.ZoneMapScannedChunks)
	counter("ankerdb_index_probes_total", "secondary-index probes served", s.IndexProbes)
	counter("ankerdb_index_backed_queries_total", "engine queries routed through an index", s.IndexBackedQueries)
	hist("ankerdb_query_exec_seconds", "query end-to-end execution latency", "", s.QueryExecHist)

	// Secondary indexes and tables.
	gauge("ankerdb_index_entries_live", "live secondary-index entries", s.IndexEntries)
	gauge("ankerdb_index_entries_raw", "total secondary-index entries incl. death-stamped", s.IndexEntriesRaw)
	counter("ankerdb_rows_inserted_total", "rows transactionally born", s.RowInserts)
	counter("ankerdb_rows_deleted_total", "rows transactionally killed", s.RowDeletes)
	counter("ankerdb_rows_reclaimed_total", "dead rows moved to free lists", s.RowsReclaimed)
	gauge("ankerdb_rows_free", "free-list slots awaiting reuse", int64(s.RowsFree))
	gauge("ankerdb_table_capacity_rows", "mapped row capacity over all tables", int64(s.TableCapacity))
	gauge("ankerdb_version_nodes", "live version-chain nodes", s.VersionNodes)
	counter("ankerdb_versions_gced_total", "version nodes removed by vacuum", uint64(s.VersionsGCed))
	counter("ankerdb_vacuums_total", "vacuum passes", s.Vacuums)
	hist("ankerdb_vacuum_seconds", "vacuum pass duration", "", s.VacuumHist)

	// Replication & serving tier. The lag histogram counts COMMITS a
	// replica trails by (one observation per ack) — rendered by hand
	// with raw power-of-two bounds, because WriteProm's bounds are
	// nanosecond-specific.
	if s.Serving || s.Replica || s.Promoted {
		gauge("ankerdb_repl_connected_replicas", "replica feeds currently connected", int64(s.ConnectedReplicas))
		counter("ankerdb_repl_frames_streamed_total", "stream records released to replica feeds", s.ReplFramesStreamed)
		counter("ankerdb_repl_subscriber_drops_total", "replica feeds dropped for falling behind", s.ReplSubscriberDrop)
		gauge("ankerdb_repl_watermark", "published completion watermark", int64(s.ReplWatermark))
		gauge("ankerdb_repl_max_lag_commits", "worst connected-replica lag in committed timestamps", int64(s.MaxReplicaLag))
		fmt.Fprintf(w, "# HELP ankerdb_repl_lag_commits replica lag per ack, in committed timestamps\n")
		fmt.Fprintf(w, "# TYPE ankerdb_repl_lag_commits histogram\n")
		lh := s.ReplicaLagHist
		var lcum uint64
		ltop := 0
		for i, b := range lh.Buckets {
			if b > 0 {
				ltop = i
			}
		}
		for i := 0; i <= ltop && i < len(lh.Buckets)-1; i++ {
			lcum += lh.Buckets[i]
			fmt.Fprintf(w, "ankerdb_repl_lag_commits_bucket{le=\"%d\"} %d\n", uint64(1)<<uint(i)-1, lcum)
		}
		fmt.Fprintf(w, "ankerdb_repl_lag_commits_bucket{le=\"+Inf\"} %d\n", lh.Count)
		fmt.Fprintf(w, "ankerdb_repl_lag_commits_sum %d\n", lh.SumNanos)
		fmt.Fprintf(w, "ankerdb_repl_lag_commits_count %d\n", lh.Count)
		gauge("ankerdb_repl_is_replica", "1 while replicating (0 after Promote)", b2i(s.Replica))
		gauge("ankerdb_repl_promoted", "1 once promoted to primary", b2i(s.Promoted))
		gauge("ankerdb_replica_connected", "1 while the connector holds a live stream", b2i(s.ReplicaConnected))
		gauge("ankerdb_replica_applied_ts", "newest commit timestamp applied from the stream", int64(s.ReplicaAppliedTS))
		gauge("ankerdb_replica_source_ts", "newest watermark the primary advertised", int64(s.ReplicaSourceTS))
		counter("ankerdb_replica_frames_total", "stream records applied", s.ReplicaFrames)
		counter("ankerdb_replica_reconnects_total", "stream reconnections", s.ReplicaReconnects)
		counter("ankerdb_replica_bootstraps_total", "snapshot bootstraps completed", s.ReplicaBootstraps)
	}

	// Simulated virtual memory.
	gauge("ankerdb_mapped_bytes", "virtual size of the simulated process", int64(s.MappedBytes))
	gauge("ankerdb_vmas", "VMA count (Figure 5a's x-axis)", int64(s.NumVMAs))

	counter("ankerdb_trace_events_total", "flight-recorder events recorded", db.tel.rec.Seq())
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// expvar publication: one process-wide "ankerdb" variable mapping each
// open DB (labeled by its metrics address or a process-unique id) to
// its Stats snapshot. Registered lazily by the first metrics server so
// tests opening thousands of DBs pay nothing.
var (
	expOnce sync.Once
	expMu   sync.Mutex
	expDBs  = map[*DB]string{}
)

func expvarRegister(db *DB, label string) {
	expOnce.Do(func() {
		expvar.Publish("ankerdb", expvar.Func(func() any {
			expMu.Lock()
			defer expMu.Unlock()
			out := make(map[string]Stats, len(expDBs))
			for d, l := range expDBs {
				out[l] = d.Stats()
			}
			return out
		}))
	})
	expMu.Lock()
	expDBs[db] = label
	expMu.Unlock()
}

func expvarUnregister(db *DB) {
	expMu.Lock()
	delete(expDBs, db)
	expMu.Unlock()
}

// startMetricsServer brings up the opt-in observability endpoint
// (WithMetricsServer): /metrics in Prometheus text format, /debug/vars
// (expvar, including the "ankerdb" Stats map), /debug/pprof, and
// /debug/trace serving TraceDump. A dedicated mux, not
// http.DefaultServeMux, so embedding applications' handlers are never
// touched. addr may be host:0 to pick a free port (see MetricsAddr).
func (db *DB) startMetricsServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ankerdb: metrics server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = db.MetricsText(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		db.TraceDump(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	db.metricsLn = ln
	db.metricsSrv = &http.Server{Handler: mux}
	expvarRegister(db, ln.Addr().String())
	go func() { _ = db.metricsSrv.Serve(ln) }()
	return nil
}

// MetricsAddr returns the metrics endpoint's listen address (useful
// with WithMetricsServer("127.0.0.1:0")), or "" when no metrics
// server is running.
func (db *DB) MetricsAddr() string {
	if db.metricsLn == nil {
		return ""
	}
	return db.metricsLn.Addr().String()
}

func (db *DB) stopMetricsServer() {
	if db.metricsSrv != nil {
		expvarUnregister(db)
		_ = db.metricsSrv.Close()
		db.metricsSrv = nil
		db.metricsLn = nil
	}
}
