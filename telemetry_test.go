package ankerdb_test

// Telemetry acceptance tests: the /metrics endpoint agrees with Stats
// after a mixed OLTP/OLAP workload, the Stats histogram/counter
// invariants hold under concurrent load for every snapshot strategy,
// and the flight recorder + slow-query log capture what ran.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ankerdb"
)

// metricValue finds a series in a Prometheus text dump by name,
// matching labeled series by prefix, and returns its value.
func metricValue(body, name string) (uint64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if fields[0] != name && !strings.HasPrefix(fields[0], name+"{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, false
		}
		return uint64(v), true
	}
	return 0, false
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// mixedWorkload runs concurrent OLTP writers (with deliberate row
// overlap, so some commits conflict) and OLAP queriers, plus one
// explicit abort and one empty commit, then quiesces.
func mixedWorkload(t *testing.T, db *ankerdb.DB) {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				txn, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					errCh <- err
					return
				}
				if err := txn.Set("acct", "bal", (w*13+i)%64, int64(w*1000+i)); err != nil {
					errCh <- err
					txn.Abort()
					return
				}
				if err := txn.Commit(); err != nil && !errors.Is(err, ankerdb.ErrConflict) {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Query("acct").
					Where(ankerdb.Ge("bal", 0)).
					Aggregate(ankerdb.CountRows()).
					Run(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("workload: %v", err)
	}

	// One explicit abort and one empty (read-only) commit.
	txn, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := txn.Set("acct", "bal", 0, 1); err != nil {
		t.Fatalf("Set: %v", err)
	}
	txn.Abort()
	txn, err = db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	mustCommit(t, txn)
}

func TestMetricsEndpointMatchesStats(t *testing.T) {
	db := openTestDB(t, ankerdb.VMSnap,
		ankerdb.WithMetricsServer("127.0.0.1:0"),
		ankerdb.WithSlowQueryThreshold(time.Nanosecond))
	defer db.Close()

	addr := db.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr is empty with WithMetricsServer set")
	}
	base := "http://" + addr

	mixedWorkload(t, db)

	s := db.Stats()
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}

	// The scrape's counters and histogram counts must agree with Stats
	// at quiescence (background vacuum keeps running, so its counters
	// are excluded).
	for name, want := range map[string]uint64{
		"ankerdb_txn_commits_total":             s.Commits,
		"ankerdb_txn_conflicts_total":           s.Conflicts,
		"ankerdb_txn_aborts_total":              s.Aborts,
		"ankerdb_txn_empty_commits_total":       s.EmptyCommits,
		"ankerdb_commit_batches_total":          s.CommitBatches,
		"ankerdb_commit_validate_seconds_count": s.CommitBatches,
		"ankerdb_group_commit_size_count":       s.GroupCommitSize.Observations(),
		"ankerdb_group_commit_size_sum":         s.Commits + s.Conflicts,
		"ankerdb_snapshots_created_total":       s.SnapshotsCreated,
		"ankerdb_snapshot_create_seconds_count": s.SnapshotsCreated,
		"ankerdb_queries_total":                 s.QueriesRun,
		"ankerdb_query_exec_seconds_count":      s.QueriesRun,
	} {
		got, ok := metricValue(body, name)
		if !ok {
			t.Errorf("/metrics is missing series %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, Stats says %d", name, got, want)
		}
	}
	if s.Commits == 0 || s.QueriesRun == 0 || s.SnapshotsCreated == 0 {
		t.Fatalf("workload left no trace: commits=%d queries=%d snapshots=%d",
			s.Commits, s.QueriesRun, s.SnapshotsCreated)
	}
	if got := s.GroupCommitSize.String(); !strings.HasPrefix(got, "batches=") {
		t.Errorf("GroupCommitSize.String() = %q, want batches= prefix", got)
	}

	// The companion endpoints serve.
	if code, body := httpGet(t, base+"/debug/vars"); code != http.StatusOK || !strings.Contains(body, "ankerdb") {
		t.Errorf("/debug/vars status=%d, contains ankerdb=%v", code, strings.Contains(body, "ankerdb"))
	}
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
	code, trace := httpGet(t, base+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", code)
	}
	for _, want := range []string{"txn.begin", "txn.commit", "query.start", "query.finish", "snap.create"} {
		if !strings.Contains(trace, want) {
			t.Errorf("/debug/trace is missing %q events", want)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := openTestDB(t, ankerdb.Physical,
		ankerdb.WithSlowQueryThreshold(time.Nanosecond)) // everything is slow
	defer db.Close()

	set(t, db, "acct", "bal", 1, 42)
	if _, err := db.Query("acct").
		Where(ankerdb.Ge("bal", 1)).
		Aggregate(ankerdb.CountRows()).
		Run(); err != nil {
		t.Fatalf("Query: %v", err)
	}

	slow := db.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("SlowQueries is empty below a 1ns threshold")
	}
	q := slow[len(slow)-1]
	if q.Table != "acct" {
		t.Errorf("slow query table = %q, want acct", q.Table)
	}
	var ops []string
	for _, op := range q.Stats.Operators {
		ops = append(ops, op.Op)
	}
	want := []string{"scan", "filter", "aggregate"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Errorf("operator breakdown = %v, want %v", ops, want)
	}
	// The scan feeds the filter feeds the aggregate: RowsIn chains.
	for i := 1; i < len(q.Stats.Operators); i++ {
		if q.Stats.Operators[i].RowsIn != q.Stats.Operators[i-1].RowsOut {
			t.Errorf("operator %d RowsIn = %d, want previous RowsOut %d",
				i, q.Stats.Operators[i].RowsIn, q.Stats.Operators[i-1].RowsOut)
		}
	}
	var dump strings.Builder
	db.TraceDump(&dump)
	if !strings.Contains(dump.String(), "slow queries") {
		t.Error("TraceDump does not render the slow-query log")
	}
}

func TestGroupCommitHistString(t *testing.T) {
	var h ankerdb.GroupCommitHist
	h.Buckets[0], h.Buckets[2], h.Buckets[7] = 4, 6, 2
	if got, want := h.String(), "batches=12 <=1:4 <=4:6 >64:2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := (ankerdb.GroupCommitHist{}).String(), "batches=0"; got != want {
		t.Errorf("empty String() = %q, want %q", got, want)
	}
}

// checkStatsInvariants asserts the relations Stats documents for one
// sample, possibly taken mid-flight.
func checkStatsInvariants(t *testing.T, s *ankerdb.Stats) {
	t.Helper()
	if s.SnapshotsCreated < s.SnapshotsReleased {
		t.Errorf("SnapshotsCreated %d < SnapshotsReleased %d", s.SnapshotsCreated, s.SnapshotsReleased)
	}
	for name, pair := range map[string][2]uint64{
		"SnapshotCreateHist <= SnapshotsCreated": {s.SnapshotCreateHist.Count, s.SnapshotsCreated},
		"QueryExecHist <= QueriesRun":            {s.QueryExecHist.Count, s.QueriesRun},
		"CommitValidateHist <= CommitBatches":    {s.CommitValidateHist.Count, s.CommitBatches},
		"CommitInstallHist <= CommitBatches":     {s.CommitInstallHist.Count, s.CommitBatches},
		"CommitFsyncHist <= CommitBatches":       {s.CommitFsyncHist.Count, s.CommitBatches},
		"VacuumHist <= Vacuums":                  {s.VacuumHist.Count, s.Vacuums},
		"CheckpointHist <= CheckpointCount":      {s.CheckpointHist.Count, s.CheckpointCount},
	} {
		if pair[0] > pair[1] {
			t.Errorf("%s violated: %d > %d", name, pair[0], pair[1])
		}
	}
	// Snapshot loads buckets before count, and Observe bumps count
	// before its bucket, so a sample racing observations may see Count
	// ahead of the bucket sum — never behind it. Exact equality is a
	// quiescence-only invariant (asserted by the caller after the
	// workload drains).
	for name, h := range histsOf(s) {
		var sum uint64
		for _, b := range h.Buckets {
			sum += b
		}
		if sum > h.Count {
			t.Errorf("%s bucket sum %d > Count %d", name, sum, h.Count)
		}
	}
	if s.IndexEntries > s.IndexEntriesRaw {
		t.Errorf("IndexEntries %d > IndexEntriesRaw %d", s.IndexEntries, s.IndexEntriesRaw)
	}
}

// histsOf names the histogram-valued Stats fields the invariant
// checks sweep.
func histsOf(s *ankerdb.Stats) map[string]ankerdb.Hist {
	return map[string]ankerdb.Hist{
		"CommitValidateHist": s.CommitValidateHist,
		"CommitInstallHist":  s.CommitInstallHist,
		"SnapshotCreateHist": s.SnapshotCreateHist,
		"QueryExecHist":      s.QueryExecHist,
		"VacuumHist":         s.VacuumHist,
	}
}

func TestStatsInvariantsUnderLoad(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openTestDB(t, strat)
			defer db.Close()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 150; i++ {
						txn, err := db.Begin(ankerdb.OLTP)
						if err != nil {
							t.Errorf("Begin: %v", err)
							return
						}
						// Disjoint row ranges per writer: no conflicts.
						if err := txn.Set("acct", "bal", w*512+i, int64(i)); err != nil {
							t.Errorf("Set: %v", err)
							txn.Abort()
							return
						}
						if err := txn.Commit(); err != nil {
							t.Errorf("Commit: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					if _, err := db.Query("acct").
						Where(ankerdb.Gt("bal", 0)).
						Aggregate(ankerdb.SumOf("bal")).
						Run(); err != nil {
						t.Errorf("Query: %v", err)
						return
					}
				}
			}()
			// Sampler: invariants hold on every mid-flight snapshot, and
			// the headline counters are monotone across samples.
			samplerDone := make(chan struct{})
			go func() {
				defer close(samplerDone)
				var prev ankerdb.Stats
				for {
					s := db.Stats()
					checkStatsInvariants(t, &s)
					for name, pair := range map[string][2]uint64{
						"Commits":          {prev.Commits, s.Commits},
						"QueriesRun":       {prev.QueriesRun, s.QueriesRun},
						"CommitBatches":    {prev.CommitBatches, s.CommitBatches},
						"SnapshotsCreated": {prev.SnapshotsCreated, s.SnapshotsCreated},
						"Vacuums":          {prev.Vacuums, s.Vacuums},
					} {
						if pair[1] < pair[0] {
							t.Errorf("%s went backwards: %d -> %d", name, pair[0], pair[1])
						}
					}
					prev = s
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
			wg.Wait()
			close(stop)
			<-samplerDone

			// Quiesced: bucket sums reconcile exactly, and each
			// histogram count equals its companion counter.
			s := db.Stats()
			checkStatsInvariants(t, &s)
			for name, h := range histsOf(&s) {
				var sum uint64
				for _, b := range h.Buckets {
					sum += b
				}
				if sum != h.Count {
					t.Errorf("%s bucket sum %d != Count %d at quiescence", name, sum, h.Count)
				}
			}
			for name, pair := range map[string][2]uint64{
				"SnapshotCreateHist.Count == SnapshotsCreated":    {s.SnapshotCreateHist.Count, s.SnapshotsCreated},
				"QueryExecHist.Count == QueriesRun":               {s.QueryExecHist.Count, s.QueriesRun},
				"CommitValidateHist.Count == CommitBatches":       {s.CommitValidateHist.Count, s.CommitBatches},
				"GroupCommitSize.Observations() == CommitBatches": {s.GroupCommitSize.Observations(), s.CommitBatches},
			} {
				if pair[0] != pair[1] {
					t.Errorf("%s violated: %d != %d", name, pair[0], pair[1])
				}
			}
			if s.Commits != 300 {
				t.Errorf("Commits = %d, want 300", s.Commits)
			}
			if s.QueriesRun != 30 {
				t.Errorf("QueriesRun = %d, want 30", s.QueriesRun)
			}
		})
	}
}
