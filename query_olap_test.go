package ankerdb_test

// Query engine facade tests: the builder API over pinned OLAP
// snapshots, zone-map pruning correctness under deletes and Vacuum,
// morsel-count independence of results, the O(log n) visible-row
// count, and snapshot stability under concurrent writers — across all
// four snapshot strategies.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"ankerdb"
)

const queryRows = 16384

// openQueryDB opens a database whose "sales" table holds queryRows
// initial rows with k sorted (k = row), g = row % 8, v = (row*7) % 100
// — sorted-ish data where a selective range over k maps to few blocks.
func openQueryDB(t *testing.T, strat ankerdb.SnapshotStrategy, opts ...ankerdb.Option) *ankerdb.DB {
	t.Helper()
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(ankerdb.Schema{
			Table: "sales",
			Columns: []ankerdb.ColumnDef{
				{Name: "k", Type: ankerdb.Int64},
				{Name: "g", Type: ankerdb.Int64},
				{Name: "v", Type: ankerdb.Int64},
			},
		}, queryRows),
	}, opts...)...)
	if err != nil {
		t.Fatalf("Open(%s): %v", strat, err)
	}
	k := make([]int64, queryRows)
	g := make([]int64, queryRows)
	v := make([]int64, queryRows)
	for i := range k {
		k[i] = int64(i)
		g[i] = int64(i % 8)
		v[i] = int64((i * 7) % 100)
	}
	for col, vals := range map[string][]int64{"k": k, "g": g, "v": v} {
		if err := db.Load("sales", col, vals); err != nil {
			t.Fatalf("Load(%s): %v", col, err)
		}
	}
	return db
}

// resultRows flattens a result into printable row tuples for
// comparison.
func resultRows(t *testing.T, r *ankerdb.QueryResult) []string {
	t.Helper()
	rows := make([]string, r.Len())
	for i := 0; i < r.Len(); i++ {
		s := ""
		for c := range r.Columns() {
			s += fmt.Sprintf("%d|", r.At(i, c))
		}
		rows[i] = s
	}
	return rows
}

func sameResult(t *testing.T, what string, a, b *ankerdb.QueryResult) {
	t.Helper()
	ra, rb := resultRows(t, a), resultRows(t, b)
	if len(ra) != len(rb) {
		t.Fatalf("%s: %d rows vs %d rows", what, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: row %d differs: %s vs %s", what, i, ra[i], rb[i])
		}
	}
}

// TestQueryMorselEquivalence is the engine's acceptance bar: a
// multi-column filtered group-by aggregate returns identical results
// with one worker and with GOMAXPROCS workers, including after the
// table mutated transactionally.
func TestQueryMorselEquivalence(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openQueryDB(t, strat)
			defer db.Close()

			// Mutate: delete a scattering of rows, update others, insert
			// a few beyond the initial set.
			w, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			for row := 0; row < queryRows; row += 97 {
				if err := w.Delete("sales", row); err != nil {
					t.Fatalf("Delete(%d): %v", row, err)
				}
			}
			mustCommit(t, w)
			w, _ = db.Begin(ankerdb.OLTP)
			for row := 1; row < queryRows; row += 113 {
				if row%97 == 0 {
					continue // deleted above
				}
				if err := w.Set("sales", "v", row, 1000+int64(row%10)); err != nil {
					t.Fatalf("Set(%d): %v", row, err)
				}
			}
			for i := 0; i < 20; i++ {
				if _, err := w.Insert("sales", map[string]any{
					"k": int64(queryRows + i), "g": int64(i % 8), "v": int64(50),
				}); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			mustCommit(t, w)

			r, err := db.Begin(ankerdb.OLAP)
			if err != nil {
				t.Fatal(err)
			}
			defer mustCommit(t, r)

			build := func(morsels int) *ankerdb.Query {
				return r.Query("sales").
					Where(ankerdb.And(
						ankerdb.Between("k", 100, int64(queryRows)+10),
						ankerdb.Or(ankerdb.Lt("v", 40), ankerdb.Ge("v", 1000)),
					)).
					GroupBy("g").
					Aggregate(ankerdb.SumOf("v"), ankerdb.CountRows(),
						ankerdb.MinOf("v"), ankerdb.MaxOf("v"), ankerdb.AvgOf("v")).
					Morsels(morsels)
			}
			one, err := build(1).Run()
			if err != nil {
				t.Fatalf("Run(morsels=1): %v", err)
			}
			many, err := build(runtime.GOMAXPROCS(0)).Run()
			if err != nil {
				t.Fatalf("Run(morsels=max): %v", err)
			}
			if one.Len() == 0 {
				t.Fatal("query returned no groups")
			}
			sameResult(t, "morsels=1 vs GOMAXPROCS", one, many)

			// And a non-aggregating projection: same rows, same order.
			sel := func(m int) *ankerdb.QueryResult {
				res, err := r.Query("sales").
					Where(ankerdb.Between("v", 1000, 2000)).
					Select(ankerdb.RowID, "k", "v").Morsels(m).Run()
				if err != nil {
					t.Fatalf("Select Run: %v", err)
				}
				return res
			}
			sameResult(t, "projection morsels=1 vs 7", sel(1), sel(7))
		})
	}
}

// TestQueryZonePruning: a selective range over the sorted key column
// must skip most blocks, return exactly what an unpruned scan returns,
// stay correct while deletes leave zones stale-wide, and prune MORE
// once Vacuum recomputes zones over the reclaimed rows.
func TestQueryZonePruning(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openQueryDB(t, strat)
			defer db.Close()

			run := func(q *ankerdb.Query) *ankerdb.QueryResult {
				t.Helper()
				res, err := q.Run()
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				return res
			}
			query := func(r *ankerdb.Txn) *ankerdb.Query {
				return r.Query("sales").Where(ankerdb.Between("k", 3000, 3500)).Select("k", "v")
			}

			r, err := db.Begin(ankerdb.OLAP)
			if err != nil {
				t.Fatal(err)
			}
			pruned := run(query(r))
			full := run(query(r).WithoutPruning())
			sameResult(t, "pruned vs full", pruned, full)
			if pruned.Len() != 501 {
				t.Fatalf("got %d rows, want 501", pruned.Len())
			}
			if pruned.Stats.BlocksSkipped == 0 || pruned.Stats.MorselsSkipped == 0 {
				t.Fatalf("no pruning happened: %+v", pruned.Stats)
			}
			total := full.Stats.BlocksScanned
			if pruned.Stats.BlocksScanned+pruned.Stats.BlocksSkipped != total {
				t.Fatalf("block accounting: scanned %d + skipped %d != total %d",
					pruned.Stats.BlocksScanned, pruned.Stats.BlocksSkipped, total)
			}
			// The acceptance bar: >50% of blocks skipped on the selective
			// predicate over sorted data.
			if pruned.Stats.BlocksSkipped*2 <= total {
				t.Fatalf("skipped %d of %d blocks, want majority", pruned.Stats.BlocksSkipped, total)
			}
			mustCommit(t, r)

			// Delete the whole match range. Zones are widen-only, so the
			// blocks still look matchable — the scan must filter them.
			w, _ := db.Begin(ankerdb.OLTP)
			for row := 3000; row <= 3500; row++ {
				if err := w.Delete("sales", row); err != nil {
					t.Fatalf("Delete(%d): %v", row, err)
				}
			}
			mustCommit(t, w)

			r2, _ := db.Begin(ankerdb.OLAP)
			afterDel := run(query(r2))
			if afterDel.Len() != 0 {
				t.Fatalf("after delete: got %d rows, want 0", afterDel.Len())
			}
			staleScanned := afterDel.Stats.BlocksScanned
			if staleScanned == 0 {
				t.Fatalf("stale zones should still cover the deleted range: %+v", afterDel.Stats)
			}
			mustCommit(t, r2)

			// Vacuum reclaims the dead rows and recomputes zones exactly:
			// the emptied blocks now prune away entirely.
			db.Vacuum()
			r3, _ := db.Begin(ankerdb.OLAP)
			afterVac := run(query(r3))
			if afterVac.Len() != 0 {
				t.Fatalf("after vacuum: got %d rows, want 0", afterVac.Len())
			}
			if afterVac.Stats.BlocksScanned >= staleScanned {
				t.Fatalf("vacuum did not narrow zones: scanned %d, was %d",
					afterVac.Stats.BlocksScanned, staleScanned)
			}
			mustCommit(t, r3)

			st := db.Stats()
			if st.QueriesRun == 0 || st.ZoneMapSkippedChunks == 0 {
				t.Fatalf("query stats not recorded: %+v", st)
			}
		})
	}
}

// TestQueryCount: the visibility log must answer COUNT snapshot-
// consistently for OLAP, include staged row ops for OLTP, and the bare
// COUNT query must not scan a single block.
func TestQueryCount(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openQueryDB(t, strat)
			defer db.Close()

			// Pin a snapshot at the initial state.
			r0, _ := db.Begin(ankerdb.OLAP)

			w, _ := db.Begin(ankerdb.OLTP)
			for i := 0; i < 5; i++ {
				if _, err := w.Insert("sales", map[string]any{"k": int64(queryRows + i)}); err != nil {
					t.Fatal(err)
				}
			}
			for row := 0; row < 7; row++ {
				if err := w.Delete("sales", row); err != nil {
					t.Fatal(err)
				}
			}
			// Staged ops count for the writer itself, pre-commit.
			if n, err := w.Aggregate("sales", "k", ankerdb.Count); err != nil || n != queryRows+5-7 {
				t.Fatalf("staged count = %d, %v, want %d", n, err, queryRows-2)
			}
			mustCommit(t, w)

			// The old snapshot still counts the initial rows; a fresh one
			// sees the delta.
			if n, _ := r0.Aggregate("sales", "k", ankerdb.Count); n != queryRows {
				t.Fatalf("pinned count = %d, want %d", n, queryRows)
			}
			mustCommit(t, r0)

			res, err := db.Query("sales").Aggregate(ankerdb.CountRows()).Run()
			if err != nil {
				t.Fatalf("bare count: %v", err)
			}
			if res.At(0, 0) != queryRows-2 {
				t.Fatalf("bare count = %d, want %d", res.At(0, 0), queryRows-2)
			}
			if res.Stats.BlocksScanned != 0 {
				t.Fatalf("bare count scanned %d blocks, want 0", res.Stats.BlocksScanned)
			}
		})
	}
}

// TestQueryCountRecovery: the visibility log is rebuilt from the
// recovered visibility arrays, so COUNT stays exact across a crash.
func TestQueryCountRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithDurability(dir),
		ankerdb.WithInitialSchema(ankerdb.Schema{
			Table:   "sales",
			Columns: []ankerdb.ColumnDef{{Name: "k", Type: ankerdb.Int64}},
		}, 64),
	)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := db.Begin(ankerdb.OLTP)
	for i := 0; i < 9; i++ {
		if _, err := w.Insert("sales", map[string]any{"k": int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, w)
	w, _ = db.Begin(ankerdb.OLTP)
	for row := 0; row < 4; row++ {
		if err := w.Delete("sales", row); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, w)
	db.Close()

	db2, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithDurability(dir),
	)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	res, err := db2.Query("sales").Aggregate(ankerdb.CountRows()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 0) != 64+9-4 {
		t.Fatalf("recovered count = %d, want %d", res.At(0, 0), 64+9-4)
	}
	// Zones were also rebuilt by recovery: a selective query over the
	// recovered data still prunes and still answers correctly.
	sel, err := db2.Query("sales").Where(ankerdb.Between("k", 100, 200)).Select(ankerdb.RowID, "k").Run()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 9 {
		t.Fatalf("recovered range query = %d rows, want 9", sel.Len())
	}
}

// TestQueryJoin exercises the engine end to end across two tables of
// one snapshot: probe-side filter, build-side VARCHAR filter, group-by
// over a joined column.
func TestQueryJoin(t *testing.T) {
	db := openQueryDB(t, ankerdb.VMSnap)
	defer db.Close()

	if err := db.CreateTable(ankerdb.Schema{
		Table: "grp",
		Columns: []ankerdb.ColumnDef{
			{Name: "id", Type: ankerdb.Int64},
			{Name: "label", Type: ankerdb.Varchar},
		},
	}, 8); err != nil {
		t.Fatal(err)
	}
	w, _ := db.Begin(ankerdb.OLTP)
	labels := []string{"even", "odd"}
	for id := 0; id < 8; id++ {
		if err := w.Set("grp", "id", id, int64(id)); err != nil {
			t.Fatal(err)
		}
		if err := w.SetString("grp", "label", id, labels[id%2]); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, w)

	res, err := db.Query("sales").
		Where(ankerdb.And(
			ankerdb.Between("k", 0, 999),
			ankerdb.EqString("label", "odd"),
		)).
		Join("grp", "g", "id").
		GroupBy("label").
		Aggregate(ankerdb.CountRows(), ankerdb.SumOf("v")).
		Run()
	if err != nil {
		t.Fatalf("join query: %v", err)
	}
	if res.Len() != 1 || res.StringAt(0, 0) != "odd" {
		t.Fatalf("got %d groups, first %q; want 1 group %q", res.Len(), res.StringAt(0, 0), "odd")
	}
	// Reference: fold the base data by hand.
	var wantN, wantSum int64
	for i := 0; i < 1000; i++ {
		if i%2 == 1 { // g = i%8 odd <=> i odd
			wantN++
			wantSum += int64((i * 7) % 100)
		}
	}
	nCol := res.Column("count()")
	sCol := res.Column("sum(v)")
	if nCol < 0 || sCol < 0 {
		t.Fatalf("missing aggregate columns in %v", res.Columns())
	}
	if res.At(0, nCol) != wantN || res.At(0, sCol) != wantSum {
		t.Fatalf("count/sum = %d/%d, want %d/%d", res.At(0, nCol), res.At(0, sCol), wantN, wantSum)
	}
}

// TestQueryConcurrentWriters races pinned-snapshot queries against
// committing writers: every committed transaction preserves the
// invariant sum(v) == 0 and an even row count, so every query — no
// matter which generation it pins — must observe both.
func TestQueryConcurrentWriters(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db, err := ankerdb.Open(
				ankerdb.WithSnapshotStrategy(strat),
				ankerdb.WithCostModel(ankerdb.ZeroCost),
				ankerdb.WithInitialSchema(ankerdb.Schema{
					Table: "pairs",
					Columns: []ankerdb.ColumnDef{
						{Name: "v", Type: ankerdb.Int64},
						{Name: "tag", Type: ankerdb.Int64},
					},
				}, 64),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const (
				writers = 3
				readers = 3
				iters   = 60
			)
			var wg sync.WaitGroup
			errc := make(chan error, writers+readers)
			for wi := 0; wi < writers; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					var mine [][2]int
					for i := 0; i < iters; i++ {
						w, err := db.Begin(ankerdb.OLTP)
						if err != nil {
							errc <- err
							return
						}
						x := int64(wi*1000 + i + 1)
						if len(mine) > 4 {
							// Kill the oldest pair in the same txn that
							// births a new one: still invariant-preserving.
							p := mine[0]
							mine = mine[1:]
							if err := w.Delete("pairs", p[0]); err == nil {
								err = w.Delete("pairs", p[1])
							}
							if err != nil {
								w.Abort()
								continue
							}
						}
						a, err := w.Insert("pairs", map[string]any{"v": x, "tag": int64(wi)})
						if err != nil {
							errc <- err
							return
						}
						b, err := w.Insert("pairs", map[string]any{"v": -x, "tag": int64(wi)})
						if err != nil {
							errc <- err
							return
						}
						if err := w.Commit(); err == nil {
							mine = append(mine, [2]int{a, b})
						} else if !errors.Is(err, ankerdb.ErrConflict) {
							errc <- err
							return
						}
					}
				}(wi)
			}
			for ri := 0; ri < readers; ri++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						r, err := db.Begin(ankerdb.OLAP)
						if err != nil {
							errc <- err
							return
						}
						res, err := r.Query("pairs").
							Aggregate(ankerdb.SumOf("v"), ankerdb.CountRows()).
							Run()
						if err != nil {
							errc <- fmt.Errorf("query: %w", err)
							r.Commit()
							return
						}
						if sum := res.At(0, 0); sum != 0 {
							errc <- fmt.Errorf("snapshot sum = %d, want 0", sum)
							r.Commit()
							return
						}
						if n := res.At(0, 1); n%2 != 0 {
							errc <- fmt.Errorf("snapshot count = %d, want even", n)
							r.Commit()
							return
						}
						// The scalar API must agree with the engine on the
						// same pinned snapshot.
						n, err := r.Aggregate("pairs", "v", ankerdb.Count)
						if err != nil {
							errc <- err
							r.Commit()
							return
						}
						if n != res.At(0, 1) {
							errc <- fmt.Errorf("Count %d != engine count %d", n, res.At(0, 1))
						}
						r.Commit()
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
		})
	}
}

// TestQueryErrors: class and lookup failures surface from Run with the
// package's sentinel errors.
func TestQueryErrors(t *testing.T) {
	db := openQueryDB(t, ankerdb.Physical)
	defer db.Close()

	w, _ := db.Begin(ankerdb.OLTP)
	if _, err := w.Query("sales").Run(); !errors.Is(err, ankerdb.ErrNotOLAP) {
		t.Fatalf("OLTP query err = %v, want ErrNotOLAP", err)
	}
	mustCommit(t, w)

	r, _ := db.Begin(ankerdb.OLAP)
	mustCommit(t, r)
	if _, err := r.Query("sales").Run(); !errors.Is(err, ankerdb.ErrTxnDone) {
		t.Fatalf("done query err = %v, want ErrTxnDone", err)
	}

	if _, err := db.Query("nope").Run(); !errors.Is(err, ankerdb.ErrNoSuchTable) {
		t.Fatalf("unknown table err = %v, want ErrNoSuchTable", err)
	}
	if _, err := db.Query("sales").Where(ankerdb.Eq("bogus", 1)).Run(); err == nil {
		t.Fatal("unknown column: want error")
	}
	// One-shot queries release their snapshot pin.
	if st := db.Stats(); st.PinnedGenerations > 1 {
		t.Fatalf("PinnedGenerations = %d after one-shot queries", st.PinnedGenerations)
	}
}
