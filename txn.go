package ankerdb

import (
	"fmt"
	"math"

	"ankerdb/internal/mvcc"
)

// Txn is one transaction. OLTP transactions stage writes locally (Set),
// read their own writes (Get), and publish atomically at Commit after
// precision-locking validation; Abort is free. OLAP transactions are
// read-only and serve Scan/Filter/Aggregate from per-column virtual
// snapshots pinned at Begin.
//
// A Txn must not be used from multiple goroutines.
type Txn struct {
	db    *DB
	id    uint64
	class TxnClass
	state *mvcc.TxnState // OLTP
	gen   *generation    // OLAP
	done  bool
}

// Class returns the transaction's class.
func (t *Txn) Class() TxnClass { return t.class }

// SnapshotTS returns the commit timestamp the transaction reads at: the
// begin timestamp for OLTP, the pinned snapshot generation's timestamp
// for OLAP.
func (t *Txn) SnapshotTS() uint64 {
	if t.class == OLAP {
		return t.gen.ts
	}
	return t.state.Begin
}

// Staleness returns how many commits the transaction's read timestamp
// currently lags behind the newest completed commit — the bounded
// staleness OLAP transactions trade for snapshot scans.
func (t *Txn) Staleness() uint64 {
	return t.db.oracle.Completed() - t.SnapshotTS()
}

// Get returns the value of (table, column, row) as of the transaction's
// read timestamp. OLTP transactions see their own staged writes and
// record the read for commit-time validation; OLAP transactions read
// the pinned snapshot.
func (t *Txn) Get(tab, col string, row int) (int64, error) {
	c, err := t.readable(tab, col, row)
	if err != nil {
		return 0, err
	}
	if t.class == OLAP {
		cs, err := t.gen.colSnap(c)
		if err != nil {
			return 0, err
		}
		return t.gen.value(c, cs, row), nil
	}
	if v, ok := t.state.StagedValue(c.id, row); ok {
		return v, nil
	}
	t.state.NotePointRead(c.id, row)
	return c.valueAt(row, t.state.Begin), nil
}

// GetString is Get for VARCHAR columns, decoding through the table
// dictionary.
func (t *Txn) GetString(tab, col string, row int) (string, error) {
	c, err := t.readable(tab, col, row)
	if err != nil {
		return "", err
	}
	if c.def.Type != Varchar {
		return "", fmt.Errorf("%w: %s is %s, want VARCHAR", ErrType, col, c.def.Type)
	}
	v, err := t.Get(tab, col, row)
	if err != nil {
		return "", err
	}
	return c.dict.Decode(v), nil
}

// Set stages a write of (table, column, row); nothing is visible to
// other transactions until Commit.
func (t *Txn) Set(tab, col string, row int, v int64) error {
	c, err := t.writable(tab, col, row)
	if err != nil {
		return err
	}
	t.state.StageWrite(c.id, row, v)
	return nil
}

// SetString is Set for VARCHAR columns, encoding through the table
// dictionary. The dictionary is append-only and shared, so codes
// assigned by transactions that later abort simply remain unused.
func (t *Txn) SetString(tab, col string, row int, s string) error {
	c, err := t.writable(tab, col, row)
	if err != nil {
		return err
	}
	if c.def.Type != Varchar {
		return fmt.Errorf("%w: %s is %s, want VARCHAR", ErrType, col, c.def.Type)
	}
	t.state.StageWrite(c.id, row, c.dict.Encode(s))
	return nil
}

// Scan returns the whole column as of the transaction's read timestamp.
func (t *Txn) Scan(tab, col string) ([]int64, error) {
	c, err := t.readable(tab, col, 0)
	if err != nil {
		return nil, err
	}
	out := make([]int64, c.data.Rows())
	err = t.scanColumn(c, func(row int, v int64) { out[row] = v })
	return out, err
}

// Filter returns the rows whose value lies in [lo, hi] as of the
// transaction's read timestamp. OLTP transactions record the range as a
// precision-locking predicate, so a concurrent commit into the range
// aborts them at Commit.
func (t *Txn) Filter(tab, col string, lo, hi int64) ([]int, error) {
	c, err := t.readable(tab, col, 0)
	if err != nil {
		return nil, err
	}
	if t.class == OLTP {
		t.state.NotePredicate(mvcc.Predicate{Col: c.id, Lo: lo, Hi: hi})
	}
	var rows []int
	err = t.scanColumn(c, func(row int, v int64) {
		if v >= lo && v <= hi {
			rows = append(rows, row)
		}
	})
	return rows, err
}

// Agg selects the aggregate Aggregate computes.
type Agg uint8

// Aggregates.
const (
	Sum Agg = iota
	Min
	Max
	Count
)

// Aggregate folds the whole column as of the transaction's read
// timestamp. Count returns the table's row capacity.
func (t *Txn) Aggregate(tab, col string, agg Agg) (int64, error) {
	c, err := t.readable(tab, col, 0)
	if err != nil {
		return 0, err
	}
	var acc int64
	switch agg {
	case Count:
		return int64(c.data.Rows()), nil
	case Min:
		acc = math.MaxInt64
	case Max:
		acc = math.MinInt64
	}
	err = t.scanColumn(c, func(_ int, v int64) {
		switch agg {
		case Sum:
			acc += v
		case Min:
			if v < acc {
				acc = v
			}
		case Max:
			if v > acc {
				acc = v
			}
		}
	})
	return acc, err
}

// scanColumn drives fn over every row at the transaction's read
// timestamp. OLAP scans run over the snapshot's resolved pages with the
// block-granular version metadata keeping the common case a tight loop
// (the HyPer-style optimisation of Section 5.5); OLTP scans read the
// live column with the lock-free read protocol and record the scan as a
// full-range predicate for validation.
func (t *Txn) scanColumn(c *column, fn func(row int, v int64)) error {
	rows := c.data.Rows()
	if t.class == OLTP {
		t.state.NotePredicate(mvcc.Predicate{Col: c.id, Lo: math.MinInt64, Hi: math.MaxInt64})
		begin := t.state.Begin
		for row := 0; row < rows; row++ {
			if v, ok := t.state.StagedValue(c.id, row); ok {
				fn(row, v)
				continue
			}
			fn(row, c.valueAt(row, begin))
		}
		return nil
	}
	cs, err := t.gen.colSnap(c)
	if err != nil {
		return err
	}
	for blk := 0; blk < c.meta.Blocks(); blk++ {
		lo, hi := c.meta.BlockSpan(blk)
		vlo, vhi, any := c.meta.Range(blk)
		if !any {
			// No row of this block was ever versioned: pure snapshot
			// data, scanned page-wise without per-row checks.
			for row := lo; row < hi; row++ {
				fn(row, cs.data.Get(row))
			}
			continue
		}
		for row := lo; row < hi; row++ {
			if row >= vlo && row <= vhi {
				fn(row, t.gen.value(c, cs, row))
			} else {
				fn(row, cs.data.Get(row))
			}
		}
	}
	return nil
}

// Commit finishes the transaction. For OLTP it runs the serialised
// commit phase (validation + materialisation) and returns ErrConflict —
// having aborted — when a concurrent commit invalidated the read set.
// For OLAP it releases the snapshot pin.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if t.class == OLAP {
		t.db.snaps.release(t.gen)
		return nil
	}
	defer t.db.activ.Unregister(t.id)
	if !t.state.HasWrites() {
		// Read-only transactions read one consistent snapshot and need
		// no validation to be serializable.
		t.db.st.emptyCommits.Add(1)
		return nil
	}
	if err := t.db.commit(t.state); err != nil {
		t.db.st.aborts.Add(1)
		return err
	}
	return nil
}

// Abort discards the transaction. Staged writes were never published,
// so aborting is free (the point of staging writes locally).
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if t.class == OLAP {
		t.db.snaps.release(t.gen)
		return nil
	}
	t.db.activ.Unregister(t.id)
	t.db.st.aborts.Add(1)
	return nil
}

func (t *Txn) readable(tab, col string, row int) (*column, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	c, err := t.db.lookup(tab, col)
	if err != nil {
		return nil, err
	}
	if row < 0 || row >= c.data.Rows() {
		return nil, fmt.Errorf("%w: row %d of %d", ErrRowRange, row, c.data.Rows())
	}
	return c, nil
}

func (t *Txn) writable(tab, col string, row int) (*column, error) {
	if t.class == OLAP {
		return nil, ErrReadOnly
	}
	return t.readable(tab, col, row)
}

// valueAt reads the live column at timestamp ts with the lock-free
// protocol: load the row's write timestamp, the value, and the write
// timestamp again. A stable old-enough timestamp proves the value
// belongs to it (commit materialisation stores the timestamp strictly
// before the data); otherwise the displaced version is on the chain.
func (c *column) valueAt(row int, ts uint64) int64 {
	for {
		w1 := c.wts.GetU(row)
		if w1 > ts {
			if v, ok := c.chain.VisibleAt(row, ts); ok {
				return v
			}
			// Chain pruned to exactly ts's visibility: the in-place
			// value is the visible one.
			return c.data.Get(row)
		}
		v := c.data.Get(row)
		if c.wts.GetU(row) == w1 {
			return v
		}
	}
}
