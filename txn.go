package ankerdb

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ankerdb/internal/mvcc"
	"ankerdb/internal/telemetry"
)

// Txn is one transaction. OLTP transactions stage writes locally (Set),
// read their own writes (Get), insert and delete rows (Insert/Delete),
// and publish atomically at Commit after precision-locking validation;
// Abort is free. OLAP transactions are read-only and serve
// Scan/Filter/Aggregate from per-column virtual snapshots pinned at
// Begin.
//
// A Txn must not be used from multiple goroutines.
type Txn struct {
	db    *DB
	id    uint64
	class TxnClass
	state *mvcc.TxnState // OLTP
	gen   *generation    // OLAP
	done  bool

	// reserved are row slots handed out by Insert, returned to their
	// table's free list if the transaction aborts or fails validation
	// (their birth timestamps are still NeverTS, so they were never
	// visible to anyone).
	reserved []reservedRow

	// epochs records each staged-against table's DDL epoch at first
	// touch; the commit path aborts the transaction if any moved
	// (ddl.go). A transaction touches few tables, so a slice with
	// linear search beats a map.
	epochs []tableEpoch
}

type reservedRow struct {
	tab   *table
	row   int
	epoch uint64 // the table's DDL epoch when the slot was reserved
}

// releaseReserved returns every reserved slot after an abort or a
// failed commit. Slots of a table dropped or truncated meanwhile are
// NOT returned: the DDL reset that table's allocator, and releasing a
// pre-DDL slot into the fresh free list would hand it out twice.
func (t *Txn) releaseReserved() {
	byTab := map[*table][]int{}
	for _, r := range t.reserved {
		if r.tab.ddlEpoch.Load() != r.epoch {
			continue
		}
		byTab[r.tab] = append(byTab[r.tab], r.row)
	}
	for tab, rows := range byTab {
		tab.release(rows)
	}
	t.reserved = nil
}

// noteEpoch records tab's DDL epoch the first time the transaction
// stages against it. It must run BEFORE the visibility check of the
// staging operation: a drop or truncate between the two is then caught
// either by the check (it sees post-DDL state) or by the commit-path
// epoch guard (the recorded epoch is stale).
func (t *Txn) noteEpoch(tab *table) {
	for _, e := range t.epochs {
		if e.tab == tab {
			return
		}
	}
	t.epochs = append(t.epochs, tableEpoch{tab: tab, epoch: tab.ddlEpoch.Load()})
}

// Class returns the transaction's class.
func (t *Txn) Class() TxnClass { return t.class }

// SnapshotTS returns the commit timestamp the transaction reads at: the
// begin timestamp for OLTP, the pinned snapshot generation's timestamp
// for OLAP.
func (t *Txn) SnapshotTS() uint64 {
	if t.class == OLAP {
		return t.gen.ts
	}
	return t.state.Begin
}

// Staleness returns how many commits the transaction's read timestamp
// currently lags behind the newest completed commit — the bounded
// staleness OLAP transactions trade for snapshot scans.
func (t *Txn) Staleness() uint64 {
	return t.db.oracle.Completed() - t.SnapshotTS()
}

// Get returns the value of (table, column, row) as of the transaction's
// read timestamp. OLTP transactions see their own staged writes (and
// staged inserts) and record the read for commit-time validation; OLAP
// transactions read the pinned snapshot. Rows outside the visible row
// set at the read timestamp — never inserted, born later, or deleted —
// fail with ErrRowNotVisible.
func (t *Txn) Get(tab, col string, row int) (int64, error) {
	c, err := t.readable(tab, col, row)
	if err != nil {
		return 0, err
	}
	if t.class == OLAP {
		visible, err := t.olapRowVisible(c.tab, row)
		if err != nil {
			return 0, err
		}
		if !visible {
			return 0, &notVisibleError{tab: tab, col: col, row: row, ts: t.gen.ts}
		}
		cs, err := t.gen.colSnap(c)
		if err != nil {
			return 0, err
		}
		if row >= cs.rows() {
			return 0, &notVisibleError{tab: tab, col: col, row: row, ts: t.gen.ts}
		}
		return t.gen.value(c, cs, row), nil
	}
	if !t.oltpRowVisible(c.tab, row) {
		t.noteAbsence(c.tab, row)
		return 0, &notVisibleError{tab: tab, col: col, row: row, ts: t.state.Begin}
	}
	if v, ok := t.state.StagedValue(c.id, row); ok {
		return v, nil
	}
	t.state.NotePointRead(c.id, row)
	return c.valueAt(row, t.state.Begin), nil
}

// noteAbsence records that the transaction observed row of tab as NOT
// visible (an ErrRowNotVisible result is a read too): a point read on
// the table's visibility pseudo column, which every commit that births
// or kills the row marks in its validation record. Without it, a
// transaction acting on the absence would skip validation entirely and
// write-skew with a concurrent insert into the same slot.
func (t *Txn) noteAbsence(tab *table, row int) {
	t.state.NotePointRead(mvcc.VisColumnID(tab.idx), row)
}

// oltpRowVisible reports whether row is part of the transaction's
// visible row set: staged inserts are visible to their own transaction,
// staged deletes invisible, everything else resolves against the live
// visibility arrays at the begin timestamp (with the unmutated-table
// fast path skipping the array reads entirely).
func (t *Txn) oltpRowVisible(tab *table, row int) bool {
	if t.state.HasRowOpsFor(tab.idx) {
		if t.state.RowDeleted(tab.idx, row) {
			return false
		}
		if t.state.RowInserted(tab.idx, row) {
			return true
		}
	}
	if !tab.visMutated.Load() {
		return row < tab.st.InitialRows()
	}
	return tab.liveVisible(row, t.state.Begin)
}

// olapRowVisible resolves row against the generation's visibility
// snapshot (capturing it on first touch for mutated tables).
func (t *Txn) olapRowVisible(tab *table, row int) (bool, error) {
	if !tab.visMutated.Load() {
		return row < tab.st.InitialRows(), nil
	}
	vs, err := t.gen.visSnap(tab)
	if err != nil {
		return false, err
	}
	return vs.visibleAt(row, t.gen.ts), nil
}

// GetString is Get for VARCHAR columns, decoding through the table
// dictionary.
func (t *Txn) GetString(tab, col string, row int) (string, error) {
	c, err := t.readable(tab, col, row)
	if err != nil {
		return "", err
	}
	if c.def.Type != Varchar {
		return "", fmt.Errorf("%w: %s is %s, want VARCHAR", ErrType, col, c.def.Type)
	}
	v, err := t.Get(tab, col, row)
	if err != nil {
		return "", err
	}
	return c.dict.Decode(v), nil
}

// Set stages a write of (table, column, row); nothing is visible to
// other transactions until Commit. The row must be visible at the
// transaction's read timestamp (or staged by its own Insert): updating
// a deleted or unborn row fails with ErrRowNotVisible.
func (t *Txn) Set(tab, col string, row int, v int64) error {
	c, err := t.writable(tab, col, row)
	if err != nil {
		return err
	}
	t.state.StageWrite(c.id, row, v)
	return nil
}

// SetString is Set for VARCHAR columns, encoding through the table
// dictionary. The dictionary is append-only and shared, so codes
// assigned by transactions that later abort simply remain unused.
func (t *Txn) SetString(tab, col string, row int, s string) error {
	c, err := t.writable(tab, col, row)
	if err != nil {
		return err
	}
	if c.def.Type != Varchar {
		return fmt.Errorf("%w: %s is %s, want VARCHAR", ErrType, col, c.def.Type)
	}
	t.state.StageWrite(c.id, row, c.dict.Encode(s))
	return nil
}

// Insert stages a new row of tab whose columns take the given values
// (int64/int for numeric columns, string for VARCHAR; omitted columns
// default to zero or the empty string) and returns the row index the
// row will occupy. The slot is reserved exclusively — concurrent
// inserts never collide — but the row is born only at Commit, stamped
// with the commit timestamp: transactions (and snapshots) reading
// below it never see the row, while the inserting transaction reads
// its own staged values. The slot is a reclaimed free-list row when
// one is available, otherwise the table grows by a mapped chunk.
// Aborting (or failing validation) returns the slot to the free list.
func (t *Txn) Insert(tab string, vals map[string]any) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if t.class == OLAP {
		return 0, ErrReadOnly
	}
	tb, err := t.db.lookupTable(tab)
	if err != nil {
		return 0, err
	}
	t.noteEpoch(tb)
	schema := tb.st.Schema()
	staged := make([]int64, len(tb.cols))
	set := make([]bool, len(tb.cols))
	for name, v := range vals {
		i := schema.ColumnIndex(name)
		if i < 0 {
			return 0, fmt.Errorf("%w: %q.%q", ErrNoSuchColumn, tab, name)
		}
		c := tb.cols[i]
		switch val := v.(type) {
		case int64:
			if c.def.Type == Varchar {
				return 0, fmt.Errorf("%w: %s is VARCHAR, want string value", ErrType, name)
			}
			staged[i] = val
		case int:
			if c.def.Type == Varchar {
				return 0, fmt.Errorf("%w: %s is VARCHAR, want string value", ErrType, name)
			}
			staged[i] = int64(val)
		case string:
			if c.def.Type != Varchar {
				return 0, fmt.Errorf("%w: %s is %s, want numeric value", ErrType, name, c.def.Type)
			}
			staged[i] = c.dict.Encode(val)
		default:
			return 0, fmt.Errorf("%w: unsupported value type %T for %s.%s", ErrType, v, tab, name)
		}
		set[i] = true
	}
	for i, c := range tb.cols {
		if !set[i] && c.def.Type == Varchar {
			staged[i] = c.dict.Encode("") // codes must decode; 0 may not exist yet
		}
	}
	row, err := tb.reserve()
	if err != nil {
		return 0, err
	}
	t.reserved = append(t.reserved, reservedRow{tab: tb, row: row, epoch: tb.ddlEpoch.Load()})
	for i, c := range tb.cols {
		t.state.StageWrite(c.id, row, staged[i])
	}
	t.state.StageInsert(tb.idx, row)
	return row, nil
}

// Delete stages the deletion of row of tab. The row must be visible at
// the transaction's read timestamp; at Commit its death timestamp is
// stamped with the commit timestamp, so concurrent and later snapshots
// below it keep seeing the row. The deletion reads the whole row —
// every column plus its liveness — so a concurrent commit that writes,
// re-inserts or deletes the row aborts this transaction at validation.
// Dead rows are reclaimed for reuse by Vacuum once no reader can see
// them. A row inserted by this same transaction cannot be deleted by
// it — abort the transaction instead.
func (t *Txn) Delete(tab string, row int) error {
	if t.done {
		return ErrTxnDone
	}
	if t.class == OLAP {
		return ErrReadOnly
	}
	tb, err := t.db.lookupTable(tab)
	if err != nil {
		return err
	}
	t.noteEpoch(tb)
	if row < 0 || row >= tb.st.Capacity() {
		if row >= 0 {
			t.noteAbsence(tb, row) // see readable: above-capacity is an absence read
		}
		return errRowRange(tab, "", row, tb.st.Capacity())
	}
	if t.state.RowInserted(tb.idx, row) {
		return fmt.Errorf("%w: row %d of %q was inserted by this transaction", ErrRowNotVisible, row, tab)
	}
	if !t.oltpRowVisible(tb, row) {
		t.noteAbsence(tb, row)
		return &notVisibleError{tab: tab, row: row, ts: t.state.Begin}
	}
	for _, c := range tb.cols {
		t.state.NotePointRead(c.id, row)
	}
	t.state.StageDelete(tb.idx, row)
	return nil
}

// Scan returns the values of every row visible at the transaction's
// read timestamp, in row order. For a table that never saw an Insert
// or Delete this is the whole column, indexed by row; once rows are
// born and die transactionally, deleted and unborn rows are omitted.
func (t *Txn) Scan(tab, col string) ([]int64, error) {
	c, err := t.readable(tab, col, 0)
	if err != nil {
		return nil, err
	}
	if t.class == OLAP {
		res, err := t.Query(tab).Select(col).Run()
		if err != nil {
			return nil, err
		}
		return res.Ints(0), nil
	}
	out := make([]int64, 0, c.tab.st.InitialRows())
	err = t.scanColumn(c, func(_ int, v int64) { out = append(out, v) })
	return out, err
}

// Lookup returns the rows whose col equals v as of the transaction's
// read timestamp, ascending. With a secondary index on col (hash or
// ordered) the lookup probes it instead of scanning; either way the
// result is exactly what a visibility-filtered scan would return. OLTP
// lookups see their own staged writes and record the equality as a
// precision-locking predicate, so a concurrent commit writing v into
// col aborts them at Commit.
func (t *Txn) Lookup(tab, col string, v int64) ([]int, error) {
	return t.Filter(tab, col, v, v)
}

// Filter returns the rows whose value lies in [lo, hi] as of the
// transaction's read timestamp, ascending. An ordered secondary index
// on col (or, for an equality range, a hash index) serves the filter
// without a scan — see Lookup. OLTP transactions record the range as a
// precision-locking predicate, so a concurrent commit into the range
// aborts them at Commit.
func (t *Txn) Filter(tab, col string, lo, hi int64) ([]int, error) {
	c, err := t.readable(tab, col, 0)
	if err != nil {
		return nil, err
	}
	if t.class == OLAP {
		res, err := t.Query(tab).Where(Between(col, lo, hi)).Select(RowID).Run()
		if err != nil {
			return nil, err
		}
		var rows []int
		for _, r := range res.Ints(0) {
			rows = append(rows, int(r))
		}
		return rows, nil
	}
	t.state.NotePredicate(mvcc.Predicate{Col: c.id, Lo: lo, Hi: hi})
	if rows, ok := t.indexFilter(c, lo, hi); ok {
		return rows, nil
	}
	var rows []int
	err = t.scanColumn(c, func(row int, v int64) {
		if v >= lo && v <= hi {
			rows = append(rows, row)
		}
	})
	return rows, err
}

// indexFilter answers an OLTP range filter from col's secondary index
// when one can serve it. The probe runs at the begin timestamp —
// entries carry the same commit timestamps as the visibility arrays,
// so it returns exactly the committed rows a scan would surface — and
// the transaction's own staged state is overlaid on top: staged
// deletes drop rows, staged writes move rows out of or into the range,
// staged inserts contribute theirs. ok is false (fall back to the
// scan) without an index, when a hash index is asked a true range, or
// when the begin timestamp predates the index's build floor.
func (t *Txn) indexFilter(c *column, lo, hi int64) ([]int, bool) {
	ix := c.idx.Load()
	if ix == nil || !ix.Valid(t.state.Begin) {
		return nil, false
	}
	probed, ok := ix.ProbeRange(lo, hi, t.state.Begin)
	if !ok {
		return nil, false
	}
	t.db.st.indexProbes.Add(1)
	if !t.state.HasWrites() && !t.state.HasRowOpsFor(c.tab.idx) {
		return probed, true
	}
	rows := probed[:0]
	for _, row := range probed {
		if t.state.RowDeleted(c.tab.idx, row) {
			continue
		}
		if v, staged := t.state.StagedValue(c.id, row); staged && (v < lo || v > hi) {
			continue
		}
		rows = append(rows, row)
	}
	// Staged writes the committed index can't know about: an in-range
	// value Set over an out-of-range committed one, or a staged
	// insert's column value. A non-insert staged write targets a row
	// that was committed-visible at begin (writable checks), so its
	// committed value tells whether the probe already returned it.
	added := false
	t.state.EachWrite(func(col mvcc.ColumnID, row int, val int64) {
		if col != c.id || val < lo || val > hi {
			return
		}
		if !t.oltpRowVisible(c.tab, row) {
			return
		}
		if !t.state.RowInserted(c.tab.idx, row) {
			if cv := c.valueAt(row, t.state.Begin); cv >= lo && cv <= hi {
				return // the probe covered it
			}
		}
		rows = append(rows, row)
		added = true
	})
	if added {
		sort.Ints(rows)
	}
	return rows, true
}

// Agg selects the aggregate Aggregate computes.
type Agg uint8

// Aggregates.
const (
	Sum Agg = iota
	Min
	Max
	Count
)

// Aggregate folds the rows visible at the transaction's read timestamp.
// Count returns the snapshot-consistent visible row count — every row
// born at or before the read timestamp and not yet dead at it (plus
// the transaction's own staged inserts, minus its staged deletes).
func (t *Txn) Aggregate(tab, col string, agg Agg) (int64, error) {
	c, err := t.readable(tab, col, 0)
	if err != nil {
		return 0, err
	}
	if agg == Count {
		return t.countVisible(c)
	}
	if t.class == OLAP {
		var spec AggSpec
		switch agg {
		case Min:
			spec = MinOf(col)
		case Max:
			spec = MaxOf(col)
		default:
			spec = SumOf(col)
		}
		res, err := t.Query(tab).Aggregate(spec).Run()
		if err != nil {
			return 0, err
		}
		return res.At(0, 0), nil
	}
	var acc int64
	switch agg {
	case Min:
		acc = math.MaxInt64
	case Max:
		acc = math.MinInt64
	}
	err = t.scanColumn(c, func(_ int, v int64) {
		switch agg {
		case Sum:
			acc += v
		case Min:
			if v < acc {
				acc = v
			}
		case Max:
			if v > acc {
				acc = v
			}
		}
	})
	return acc, err
}

// countVisible counts the visible row set without touching column data
// or the visibility arrays: the table's visibility log answers the
// snapshot-consistent count at any reachable timestamp in O(log n)
// (see vislog.go). OLTP transactions add their own staged inserts and
// subtract staged deletes, and record the count as a full-range
// predicate — a concurrent insert or delete changes the count and must
// invalidate them.
func (t *Txn) countVisible(c *column) (int64, error) {
	tab := c.tab
	if t.class == OLAP {
		return tab.visCountAt(t.gen.ts), nil
	}
	t.state.NotePredicate(mvcc.Predicate{Col: c.id, Lo: math.MinInt64, Hi: math.MaxInt64})
	n := tab.visCountAt(t.state.Begin)
	if t.state.HasRowOpsFor(tab.idx) {
		t.state.EachRowOp(func(op mvcc.RowOp) {
			if op.Table != tab.idx {
				return
			}
			if op.Del {
				n--
			} else {
				n++
			}
		})
	}
	return n, nil
}

// scanColumn drives fn over every visible row at an OLTP transaction's
// begin timestamp, in row order, reading the live column with the
// lock-free read protocol and recording the scan as a full-range
// predicate for validation. Tables that never saw an Insert or Delete
// skip the per-row visibility checks entirely and scan exactly their
// initial rows — the pre-growable fast path. OLAP scans don't come
// through here: they run in the streaming query engine against the
// pinned generation (see query.go and the snapTable adapter).
func (t *Txn) scanColumn(c *column, fn func(row int, v int64)) error {
	tab := c.tab
	t.state.NotePredicate(mvcc.Predicate{Col: c.id, Lo: math.MinInt64, Hi: math.MaxInt64})
	begin := t.state.Begin
	fast := !tab.visMutated.Load() && !t.state.HasRowOpsFor(tab.idx)
	limit := tab.st.InitialRows()
	if !fast {
		limit = tab.st.Capacity()
	}
	for row := 0; row < limit; row++ {
		if !fast && !t.oltpRowVisible(tab, row) {
			continue
		}
		if v, ok := t.state.StagedValue(c.id, row); ok {
			fn(row, v)
			continue
		}
		fn(row, c.valueAt(row, begin))
	}
	return nil
}

// Commit finishes the transaction. For OLTP it runs the serialised
// commit phase (validation + materialisation) and returns ErrConflict —
// having aborted — when a concurrent commit invalidated the read set.
// For OLAP it releases the snapshot pin.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if t.class == OLAP {
		t.db.snaps.release(t.gen)
		t.db.olapGate.RUnlock()
		t.db.tel.rec.Record(telemetry.EvTxnCommit, int64(t.id), 0, int64(t.gen.ts))
		return nil
	}
	defer t.db.activ.Unregister(t.id)
	if !t.state.HasWrites() && !t.state.HasRowOps() {
		// Read-only transactions read one consistent snapshot and need
		// no validation to be serializable.
		t.db.st.emptyCommits.Add(1)
		t.db.tel.rec.Record(telemetry.EvTxnCommit, int64(t.id), 1, int64(t.state.Begin))
		return nil
	}
	// The commit path itself records the flight-recorder commit/abort
	// event (RecordAt, reusing its phase clock marks), so no event is
	// emitted here.
	if err := t.db.commit(t.state, t.epochs); err != nil {
		if errors.Is(err, ErrConflict) || errors.Is(err, ErrNoSuchTable) {
			// Failed validation: install never ran, so reserved insert
			// slots were never born and return to the free list. (A WAL
			// failure, by contrast, reports an error with the writes
			// already applied in memory — those slots are consumed.)
			t.releaseReserved()
		}
		t.db.st.aborts.Add(1)
		return err
	}
	t.reserved = nil
	return nil
}

// Abort discards the transaction. Staged writes were never published,
// so aborting is free (the point of staging writes locally); row slots
// reserved by Insert return to their table's free list unborn.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if t.class == OLAP {
		t.db.snaps.release(t.gen)
		t.db.olapGate.RUnlock()
		t.db.tel.rec.Record(telemetry.EvTxnAbort, int64(t.id), telemetry.AbortExplicit, int64(t.gen.ts))
		return nil
	}
	t.releaseReserved()
	t.db.activ.Unregister(t.id)
	t.db.st.aborts.Add(1)
	t.db.tel.rec.Record(telemetry.EvTxnAbort, int64(t.id), telemetry.AbortExplicit, int64(t.state.Begin))
	return nil
}

func (t *Txn) readable(tab, col string, row int) (*column, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	c, err := t.db.lookup(tab, col)
	if err != nil {
		return nil, err
	}
	if cap := c.tab.st.Capacity(); row < 0 || row >= cap {
		if t.class == OLTP && row >= 0 {
			// A row above the current capacity is another absence
			// observation: a concurrent Insert may grow the table into
			// that very slot, and a transaction acting on the ErrRowRange
			// it saw must conflict with that commit (see noteAbsence).
			t.noteAbsence(c.tab, row)
		}
		return nil, errRowRange(tab, col, row, cap)
	}
	return c, nil
}

func (t *Txn) writable(tab, col string, row int) (*column, error) {
	if t.class == OLAP {
		return nil, ErrReadOnly
	}
	c, err := t.readable(tab, col, row)
	if err != nil {
		return nil, err
	}
	t.noteEpoch(c.tab)
	if !t.oltpRowVisible(c.tab, row) {
		t.noteAbsence(c.tab, row)
		return nil, &notVisibleError{tab: tab, col: col, row: row, ts: t.state.Begin}
	}
	return c, nil
}

// valueAt reads the live column at timestamp ts with the lock-free
// protocol: load the row's write timestamp, the value, and the write
// timestamp again. A stable old-enough timestamp proves the value
// belongs to it (commit materialisation stores the timestamp strictly
// before the data); otherwise the displaced version is on the chain.
func (c *column) valueAt(row int, ts uint64) int64 {
	for {
		w1 := c.wts.GetU(row)
		if w1 > ts {
			if v, ok := c.chain.VisibleAt(row, ts); ok {
				return v
			}
			// Chain pruned to exactly ts's visibility: the in-place
			// value is the visible one.
			return c.data.Get(row)
		}
		v := c.data.Get(row)
		if c.wts.GetU(row) == w1 {
			return v
		}
	}
}
