package ankerdb

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"ankerdb/internal/mvcc"
	"ankerdb/internal/storage"
	"ankerdb/internal/telemetry"
	"ankerdb/internal/wal"
)

// The commit pipeline replaces the paper's single serialized commit
// phase (the Figure 11 scaling ceiling) with a sharded, batched
// group-commit design:
//
//   - Columns are partitioned onto commit shards by a hash of their
//     (table, column) address. Each shard owns a commit lock and the
//     recent-commits list used for precision-locking validation of the
//     columns routed to it, so transactions with disjoint footprints
//     validate and install in parallel.
//   - Same-shard commits are batched: committers enqueue and the first
//     to take the shard lock drains the queue, validates the whole
//     batch under one lock acquisition, and stamps it with consecutive
//     commit timestamps from a single oracle block allocation.
//   - Transactions whose footprint spans multiple shards take every
//     involved shard lock in ascending shard order (deadlock-free) and
//     commit alone.
//
// Correctness relies on two properties. First, the oracle's completion
// watermark only advances over contiguous timestamp prefixes, so a
// commit never becomes visible to new transactions before all
// earlier-stamped commits are also visible, even though shards
// materialize out of order. Second, a transaction's validation holds
// the locks of every shard its reads are routed to through its own
// timestamp allocation, so every conflicting earlier-stamped commit is
// already in that shard's recent list when validation runs, and every
// later-stamped commit will in turn see this transaction's record.

// commitShard is one partition of the commit pipeline.
type commitShard struct {
	// id is the shard's index, which is also its WAL segment series.
	id int

	// mu is the shard commit lock: it serializes validation, timestamp
	// allocation, and version-chain installation for the columns routed
	// to this shard, and snapshot capture of those columns.
	mu sync.Mutex

	// recent holds the commit records of transactions that wrote this
	// shard's columns, for precision-locking validation.
	recent *mvcc.RecentList

	qmu   sync.Mutex
	queue []*commitReq
}

// drain takes the current queue. The caller holds the shard commit
// lock, so every drained request is processed before the lock drops.
func (s *commitShard) drain() []*commitReq {
	s.qmu.Lock()
	batch := s.queue
	s.queue = nil
	s.qmu.Unlock()
	return batch
}

// commitReq is one transaction waiting in a shard's group-commit queue.
type commitReq struct {
	st     *mvcc.TxnState
	epochs []tableEpoch // DDL epochs recorded at staging time (ddl.go)
	ts     uint64       // commit timestamp, set by the leader before the ack
	errc   chan error   // buffered; receives the commit outcome exactly once
}

func newCommitShards(n int) []*commitShard {
	shards := make([]*commitShard, n)
	for i := range shards {
		shards[i] = &commitShard{id: i, recent: mvcc.NewRecentList()}
	}
	return shards
}

// shardOf routes a column to its commit shard.
func (db *DB) shardOf(id mvcc.ColumnID) int {
	return storage.ShardOf(id.Table, id.Col, len(db.shards))
}

// txnShards returns the sorted, distinct shard ids of t's footprint
// (written, point-read, and predicate columns).
func (db *DB) txnShards(t *mvcc.TxnState) []int {
	if len(db.shards) == 1 {
		return []int{0}
	}
	marks := make([]bool, len(db.shards))
	t.EachColumn(func(id mvcc.ColumnID) { marks[db.shardOf(id)] = true })
	ids := make([]int, 0, 2)
	for i, m := range marks {
		if m {
			ids = append(ids, i)
		}
	}
	return ids
}

// commit runs the commit phase for t's staged writes: precision-locking
// validation against the recent commits of every shard t touched, then
// in-place materialisation with displaced versions pushed onto the
// column version chains (write timestamp strictly before data, which
// the lock-free read protocol in column.valueAt relies on).
// epochs carries the DDL epochs the transaction recorded at staging
// time; a drop or truncate of any recorded table since then aborts the
// commit (ddlAborted) before anything installs.
func (db *DB) commit(t *mvcc.TxnState, epochs []tableEpoch) error {
	ids := db.txnShards(t)
	if len(ids) == 1 {
		return db.commitGrouped(db.shards[ids[0]], t, epochs)
	}
	db.st.crossShard.Add(1)
	return db.commitCrossShard(ids, t, epochs)
}

// commitGrouped commits a single-shard transaction through the shard's
// group-commit queue. Every committer enqueues its request and then
// takes the shard lock; whichever committer gets the lock first drains
// the queue and processes the whole batch, so requests that pile up
// behind a busy shard are validated and stamped together. A committer
// whose request was processed by an earlier leader drains whatever
// newer requests queued meanwhile (possibly none) and then picks up its
// own result.
func (db *DB) commitGrouped(s *commitShard, t *mvcc.TxnState, epochs []tableEpoch) error {
	req := &commitReq{st: t, epochs: epochs, errc: make(chan error, 1)}
	s.qmu.Lock()
	s.queue = append(s.queue, req)
	s.qmu.Unlock()

	// Fast path: an earlier leader may already have drained us while we
	// were enqueueing — skip the lock handoff entirely then. Requests
	// still queued are always drained eventually because their own
	// enqueuer is in the lock queue below.
	select {
	case err := <-req.errc:
		return db.finishGrouped(req, err)
	default:
	}

	if db.groupMaxWait > 0 {
		// WithGroupCommitMaxWait: linger before contending for the
		// shard lock, so committers arriving within the window pile up
		// in the queue and whoever wakes first processes them as one
		// batch (one validation pass, one fsync). The wait happens
		// OUTSIDE the shard lock — snapshot capture, checkpoints and
		// cross-shard commits are never stalled behind a sleeping
		// leader — and a request a concurrent leader already processed
		// returns without touching the lock at all.
		linger := time.Now()
		time.Sleep(db.groupMaxWait)
		db.tel.commitLinger.Observe(time.Since(linger))
		select {
		case err := <-req.errc:
			return db.finishGrouped(req, err)
		default:
		}
	}

	// TryLock first so the uncontended path pays neither a clock read
	// nor an observation; the lock-wait histogram counts contended
	// acquisitions only.
	if !s.mu.TryLock() {
		wait := time.Now()
		s.mu.Lock()
		db.tel.commitLockWait.Observe(time.Since(wait))
	}
	batch := s.drain()
	if len(batch) > 0 {
		db.runBatch(s, batch)
	}
	s.mu.Unlock()
	return db.finishGrouped(req, <-req.errc)
}

// finishGrouped completes a group-committed request after its result
// arrived. On success it blocks, outside every shard lock, until the
// completion watermark covers the request's timestamp, so a
// transaction beginning after Commit returns is guaranteed to read its
// writes (read-your-own-writes across out-of-order shard completion).
func (db *DB) finishGrouped(req *commitReq, err error) error {
	if err == nil {
		db.oracle.WaitCompleted(req.ts)
	}
	return err
}

// runBatch validates, stamps, and installs a batch of same-shard
// commits under the shard lock (held by the caller): one recent-list
// lock acquisition per validation, one oracle block allocation for the
// whole batch, and — with durability enabled — one WAL append (one
// fsync under the default policy) covering every record in the batch,
// so durability costs amortize across the group exactly like the lock
// acquisition. Transactions that fail validation complete their
// timestamp slot as a no-op so the completion watermark stays
// contiguous.
func (db *DB) runBatch(s *commitShard, batch []*commitReq) {
	db.st.commitBatches.Add(1)
	db.st.groupSizes[groupSizeBucket(len(batch))].Add(1)

	first := db.oracle.NextCommitTSBlock(len(batch))
	done := make([]*commitReq, 0, len(batch))
	var recs []wal.CommitRecord
	// Phase latency is accumulated across the batch with chained clock
	// marks (two reads per request) and observed once per batch — the
	// granularity the batch actually pays validation and installation
	// at. The marks are recorder-relative monotonic offsets: one read
	// serves both the phase accounting and, via RecordAt, the flight-
	// recorder timestamp of the request's commit/abort event, so the
	// whole batch adds no clock reads beyond the phase marks.
	tr := db.tel.rec
	var validateTime, installTime time.Duration
	mark := tr.Now()
	for i, req := range batch {
		ts := first + uint64(i)
		req.ts = ts
		// Read-free transactions cannot be invalidated and skip
		// validation (HasReads). Earlier transactions of this batch
		// have already added their records, so intra-batch conflicts
		// are caught here too.
		// The DDL epoch guard runs before validation: a table in the
		// footprint that was dropped or truncated since staging would
		// otherwise install into freed memory or resurrect truncated
		// rows through the index. The epoch load is ordered after the
		// DDL's bump by this shard's lock, which the DDL held.
		if err := ddlAborted(req.epochs); err != nil {
			db.st.conflicts.Add(1)
			db.oracle.CompleteNoop(ts)
			now := tr.Now()
			validateTime += now - mark
			mark = now
			tr.RecordAt(telemetry.EvTxnAbort, int64(req.st.ID), telemetry.AbortConflict, int64(req.st.Begin), now)
			req.errc <- err
			continue
		}
		conflictTS := validate(s, req.st)
		now := tr.Now()
		validateTime += now - mark
		mark = now
		if conflictTS != 0 {
			db.st.conflicts.Add(1)
			db.oracle.CompleteNoop(ts)
			tr.RecordAt(telemetry.EvTxnAbort, int64(req.st.ID), telemetry.AbortConflict, int64(req.st.Begin), now)
			req.errc <- fmt.Errorf("%w: read set invalidated by commit %d", ErrConflict, conflictTS)
			continue
		}
		rec := db.install(req.st, ts)
		s.recent.Add(rec)
		if db.wal != nil {
			recs = append(recs, db.redoRecord(rec))
		}
		done = append(done, req)
		now = tr.Now()
		installTime += now - mark
		mark = now
	}
	db.tel.commitValidate.Observe(validateTime)
	db.tel.commitInstall.Observe(installTime)
	// The batch's records become durable before any of its timestamps
	// complete: the visibility watermark never runs ahead of the
	// durable prefix, so a transaction can only read state that will
	// survive a crash. A WAL write failure is reported to every
	// committer in the batch, but the slots still complete — the
	// watermark must not stall — leaving the writes applied in memory;
	// see the walErr delivery below.
	var walErr error
	evAt := mark
	if len(recs) > 0 {
		walErr = db.wal.AppendCommits(s.id, recs)
		evAt = tr.Now()
		db.tel.commitFsync.Observe(evAt - mark)
		db.kickAutoCkpt()
	}
	for _, req := range done {
		db.oracle.Complete(req.ts)
		if walErr == nil {
			tr.RecordAt(telemetry.EvTxnCommit, int64(req.st.ID), 0, int64(req.st.Begin), evAt)
		} else {
			tr.RecordAt(telemetry.EvTxnAbort, int64(req.st.ID), telemetry.AbortError, int64(req.st.Begin), evAt)
		}
		req.errc <- walErr
	}
	if len(done) > 0 {
		db.maintainShards([]*commitShard{s}, uint64(len(done)))
	}
}

// commitCrossShard commits a transaction whose footprint spans several
// shards: all involved shard locks are taken in ascending shard order
// (deadlock-free by global ordering), the transaction validates against
// each shard's recent commits, and its record is split per shard.
func (db *DB) commitCrossShard(ids []int, t *mvcc.TxnState, epochs []tableEpoch) error {
	shards := make([]*commitShard, len(ids))
	tr := db.tel.rec
	wait := tr.Now()
	for i, id := range ids {
		shards[i] = db.shards[id]
		shards[i].mu.Lock()
	}
	mark := tr.Now()
	db.tel.commitLockWait.Observe(mark - wait)
	unlock := func() {
		for i := len(shards) - 1; i >= 0; i-- {
			shards[i].mu.Unlock()
		}
	}

	db.st.commitBatches.Add(1)
	db.st.groupSizes[groupSizeBucket(1)].Add(1)

	// DDL epoch guard (see runBatch): any involved shard's lock orders
	// the epoch load after a concurrent DDL's bump.
	if err := ddlAborted(epochs); err != nil {
		db.st.conflicts.Add(1)
		now := tr.Now()
		db.tel.commitValidate.Observe(now - mark)
		tr.RecordAt(telemetry.EvTxnAbort, int64(t.ID), telemetry.AbortConflict, int64(t.Begin), now)
		unlock()
		return err
	}
	for _, s := range shards {
		if conflictTS := validate(s, t); conflictTS != 0 {
			db.st.conflicts.Add(1)
			now := tr.Now()
			db.tel.commitValidate.Observe(now - mark)
			tr.RecordAt(telemetry.EvTxnAbort, int64(t.ID), telemetry.AbortConflict, int64(t.Begin), now)
			unlock()
			return fmt.Errorf("%w: read set invalidated by commit %d", ErrConflict, conflictTS)
		}
	}
	now := tr.Now()
	db.tel.commitValidate.Observe(now - mark)
	mark = now
	ts := db.oracle.NextCommitTSBlock(1)
	rec := db.install(t, ts)
	for i, id := range ids {
		var writes, visWrites []mvcc.WriteEntry
		for _, e := range rec.Writes {
			if db.shardOf(e.Col) == id {
				writes = append(writes, e)
			}
		}
		for _, e := range rec.VisWrites {
			if db.shardOf(e.Col) == id {
				visWrites = append(visWrites, e)
			}
		}
		if len(writes) > 0 || len(visWrites) > 0 {
			shards[i].recent.Add(mvcc.CommitRecord{TS: ts, Writes: writes, VisWrites: visWrites})
		}
	}
	now = tr.Now()
	db.tel.commitInstall.Observe(now - mark)
	mark = now
	// The whole cross-shard record is logged once: to the owning
	// (visibility pseudo-column) shard of the first mutated table when
	// the transaction birthed or killed rows — keeping a table's row
	// ops in one timestamp-ordered segment series — and to the lowest
	// involved shard otherwise. Replay merges shard logs idempotently
	// (writes by timestamp, row ops buffered and sorted per row), so
	// which segment carries the record never changes the outcome.
	var walErr error
	if db.wal != nil {
		logShard := ids[0]
		if len(rec.Ops) > 0 {
			logShard = db.shardOf(mvcc.VisColumnID(rec.Ops[0].Table))
		}
		walErr = db.wal.AppendCommits(logShard, []wal.CommitRecord{db.redoRecord(rec)})
		now = tr.Now()
		db.tel.commitFsync.Observe(now - mark)
		db.kickAutoCkpt()
	}
	if walErr == nil {
		tr.RecordAt(telemetry.EvTxnCommit, int64(t.ID), 0, int64(t.Begin), now)
	} else {
		tr.RecordAt(telemetry.EvTxnAbort, int64(t.ID), telemetry.AbortError, int64(t.Begin), now)
	}
	db.oracle.Complete(ts)
	db.maintainShards(shards, 1)
	unlock()
	// See commitGrouped: visibility before Commit returns.
	db.oracle.WaitCompleted(ts)
	return walErr
}

// install materialises t's staged writes and row ops at commit
// timestamp ts and returns the commit record. The caller holds the
// commit locks of every shard the writes and row ops are routed to
// (including each mutated table's visibility pseudo-column shard). The
// write timestamp is stored strictly before the data word, the
// ordering the lock-free read protocol and snapshot repair depend on.
//
// Writes into rows the transaction itself inserts skip the version
// chain push: the displaced word is garbage from the slot's previous
// (reclaimed, below the GC floor) or never-born incarnation, which no
// reader can reach — every reader old enough to want it already sees
// the row as dead or unborn through the visibility arrays. Row ops run
// after all writes, death reset before birth, birth last: a concurrent
// lock-free reader that observes the birth timestamp therefore
// observes the fully materialised row, and one that doesn't skips the
// row entirely.
func (db *DB) install(t *mvcc.TxnState, ts uint64) mvcc.CommitRecord {
	writes := make([]mvcc.WriteEntry, 0, t.NumWrites())
	t.EachWrite(func(id mvcc.ColumnID, row int, val int64) {
		c := db.columnByID(id)
		if t.RowInserted(id.Table, row) {
			c.wts.SetU(row, ts)
			c.data.Set(row, val)
			c.widen(row, val)
			// Index maintenance rides the same critical section as the
			// write install: an inserted row births one entry per indexed
			// column (Insert stages a write on every column).
			if ix := c.idx.Load(); ix != nil {
				ix.Add(val, row, ts)
			}
			writes = append(writes, mvcc.WriteEntry{Col: id, Row: row, Old: val, New: val})
			return
		}
		old := c.data.Get(row)
		oldWTS := c.wts.GetU(row)
		c.chain.Push(row, old, oldWTS)
		c.noteVersioned(row)
		c.wts.SetU(row, ts)
		c.data.Set(row, val)
		c.widen(row, val)
		// A value change death-stamps the displaced association and
		// births the new one at the same timestamp, mirroring the version
		// chain push; a same-value overwrite leaves the live entry alone.
		if ix := c.idx.Load(); ix != nil && old != val {
			ix.Kill(old, row, ts)
			ix.Add(val, row, ts)
		}
		writes = append(writes, mvcc.WriteEntry{Col: id, Row: row, Old: old, New: val})
	})
	rec := mvcc.CommitRecord{TS: ts, Writes: writes}
	// Per-table insert-minus-delete deltas, appended to the visibility
	// logs below. A transaction touches very few tables, so a slice with
	// linear search beats a map.
	var visDeltas []struct {
		t *table
		d int64
	}
	t.EachRowOp(func(op mvcc.RowOp) {
		tab := db.tableByIdx(op.Table)
		tab.visMutated.Store(true)
		if op.Del {
			// Shadow every column of the dying row with its last value:
			// a concurrent reader whose predicate or point read covered
			// the row read state this deletion invalidates. Indexed
			// columns also death-stamp the row's live entry here, at the
			// same timestamp the visibility array records.
			for _, c := range tab.cols {
				old := c.data.Get(op.Row)
				if ix := c.idx.Load(); ix != nil {
					ix.Kill(old, op.Row, ts)
				}
				rec.VisWrites = append(rec.VisWrites,
					mvcc.WriteEntry{Col: c.id, Row: op.Row, Old: old, New: old})
			}
			tab.st.Death().SetU(op.Row, ts)
			db.st.rowDeletes.Add(1)
		} else {
			tab.st.Death().SetU(op.Row, 0)
			tab.st.Birth().SetU(op.Row, ts)
			db.st.rowInserts.Add(1)
		}
		rec.VisWrites = append(rec.VisWrites,
			mvcc.WriteEntry{Col: mvcc.VisColumnID(op.Table), Row: op.Row})
		rec.Ops = append(rec.Ops, op)
		d := int64(1)
		if op.Del {
			d = -1
		}
		for i := range visDeltas {
			if visDeltas[i].t == tab {
				visDeltas[i].d += d
				d = 0
				break
			}
		}
		if d != 0 {
			visDeltas = append(visDeltas, struct {
				t *table
				d int64
			}{tab, d})
		}
	})
	// One visibility-log entry per mutated table, under that table's
	// visibility shard lock (held by the caller) and before the commit
	// timestamp completes — so any reader that can see ts sees it.
	for _, e := range visDeltas {
		if e.d != 0 { // insert+delete in one txn nets out
			e.t.visLogAppend(ts, e.d)
		}
	}
	return rec
}

// maintainShards counts the batch's committed transactions and runs
// the periodic version-chain vacuum every vacuumEvery commits, applied
// to the shards whose locks the caller holds. Recent-list pruning is
// NOT done here: it is driven by the oracle watermark hook through the
// background pruner (db.recentPruner), which covers idle shards too —
// a shard that stops committing would otherwise retain validation
// records until an explicit Vacuum.
func (db *DB) maintainShards(shards []*commitShard, added uint64) {
	n := db.st.commits.Add(added)
	if n/vacuumEvery == (n-added)/vacuumEvery {
		return
	}
	floor := db.gcFloor()
	start := time.Now()
	var removed int64
	for _, s := range shards {
		removed += db.vacuumShardChains(s, floor)
	}
	db.st.vacuums.Add(1)
	db.st.versionsGCed.Add(removed)
	elapsed := time.Since(start)
	db.tel.vacuum.Observe(elapsed)
	db.tel.rec.Record(telemetry.EvVacuum, removed, 0, elapsed.Nanoseconds())
}

// vacuumShardChains prunes the version chains of every column routed to
// shard s below floor. The caller holds s's commit lock, which excludes
// concurrent materialisation into those columns (pruning between a
// commit's chain push and its timestamp store could reap a version a
// concurrent reader still needs).
func (db *DB) vacuumShardChains(s *commitShard, floor uint64) int64 {
	var removed int64
	db.mu.RLock()
	tabs := append([]*table(nil), db.tabList...)
	db.mu.RUnlock()
	for _, t := range tabs {
		if t.dropped.Load() {
			continue
		}
		for _, c := range t.cols {
			if db.shards[db.shardOf(c.id)] != s {
				continue
			}
			removed += c.chain.Prune(floor, func(row int) uint64 { return c.wts.GetU(row) })
		}
	}
	return removed
}

// lockAllShards takes every shard commit lock in ascending order,
// stopping the whole commit pipeline. Used by the explicit Vacuum.
func (db *DB) lockAllShards() {
	for _, s := range db.shards {
		s.mu.Lock()
	}
}

func (db *DB) unlockAllShards() {
	for i := len(db.shards) - 1; i >= 0; i-- {
		db.shards[i].mu.Unlock()
	}
}

// validate runs precision-locking validation of t against s's recent
// commits. Transactions with an empty read set skip the walk: blind
// writes serialize at their commit timestamp and cannot have read
// stale data. This matters under the sharded pipeline, where the
// visibility watermark (and with it begin timestamps) can briefly lag
// behind the newest assigned timestamps, widening the window of
// records Validate would otherwise scan.
func validate(s *commitShard, t *mvcc.TxnState) uint64 {
	if !t.HasReads() {
		return 0
	}
	return s.recent.Validate(t)
}

// groupSizeBucket maps a batch size to its histogram bucket: 1, 2, ≤4,
// ≤8, ≤16, ≤32, ≤64, >64.
func groupSizeBucket(n int) int {
	b := bits.Len(uint(n - 1))
	if b >= len(GroupCommitHist{}.Buckets) {
		b = len(GroupCommitHist{}.Buckets) - 1
	}
	return b
}
