package ankerdb

// In-package tests for behavior only observable below the public API:
// the watermark-driven recent-list pruner (per-shard list lengths) and
// exact per-row commit-timestamp preservation across recovery.

import (
	"fmt"
	"testing"
	"time"

	"ankerdb/internal/mvcc"
	"ankerdb/internal/wal"
)

func internalSchema(cols int) Schema {
	s := Schema{Table: "t"}
	for i := 0; i < cols; i++ {
		s.Columns = append(s.Columns, ColumnDef{Name: fmt.Sprintf("v%d", i), Type: Int64})
	}
	return s
}

// pickTwoShards returns the names of two columns routed to different
// commit shards, probing the actual hash so the test never depends on
// a particular ShardOf implementation.
func pickTwoShards(t *testing.T, db *DB, cols int) (idle, busy string) {
	t.Helper()
	first := db.shardOf(mvcc.ColumnID{Table: 0, Col: 0})
	for i := 1; i < cols; i++ {
		if db.shardOf(mvcc.ColumnID{Table: 0, Col: i}) != first {
			return "v0", fmt.Sprintf("v%d", i)
		}
	}
	t.Skip("all probe columns hash to one shard")
	return
}

// TestDurabilityIdleShardRecentListGC: a shard that stops committing
// must still shed its recent-commit validation records as other shards
// advance the watermark — without an explicit Vacuum.
func TestDurabilityIdleShardRecentListGC(t *testing.T) {
	const cols = 16
	db, err := Open(
		WithCostModel(ZeroCost),
		WithCommitShards(4),
		WithSnapshotRefresh(0),
		WithInitialSchema(internalSchema(cols), 64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idleCol, busyCol := pickTwoShards(t, db, cols)
	commit := func(col string, v int64) {
		w, err := db.Begin(OLTP)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Set("t", col, 0, v); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	commit(idleCol, 1)
	idleShard := db.shards[db.shardOf(mvcc.ColumnID{Table: 0, Col: 0})]
	if idleShard.recent.Len() == 0 {
		t.Fatal("commit left no recent record on its shard")
	}

	// The idle shard never commits again; the busy shard advances the
	// watermark past recentPruneEvery completions, which kicks the
	// background pruner.
	for i := 0; i < 3*recentPruneEvery; i++ {
		commit(busyCol, int64(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for idleShard.recent.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle shard still retains %d recent records", idleShard.recent.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRecoveryPreservesPerRowCommitTS: every recovered row carries its
// original commit timestamp, byte for byte, both via WAL replay and
// via checkpoint load.
func TestRecoveryPreservesPerRowCommitTS(t *testing.T) {
	for _, checkpoint := range []bool{false, true} {
		name := "wal-only"
		if checkpoint {
			name = "with-checkpoint"
		}
		t.Run(name, func(t *testing.T) {
			const cols, rows = 8, 64
			dir := t.TempDir()
			open := func() *DB {
				db, err := Open(
					WithCostModel(ZeroCost),
					WithCommitShards(4),
					WithDurability(dir),
					WithInitialSchema(internalSchema(cols), rows),
				)
				if err != nil {
					t.Fatal(err)
				}
				return db
			}
			db := open()
			for i := 0; i < 32; i++ {
				w, err := db.Begin(OLTP)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Set("t", fmt.Sprintf("v%d", i%cols), i%rows, int64(i)); err != nil {
					t.Fatal(err)
				}
				if err := w.Commit(); err != nil {
					t.Fatal(err)
				}
				if checkpoint && i == 15 {
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}

			type cell struct{ col, row int }
			want := map[cell]uint64{}
			db.mu.RLock()
			tab := db.tabList[0]
			db.mu.RUnlock()
			for ci, c := range tab.cols {
				for r := 0; r < rows; r++ {
					if wts := c.wts.GetU(r); wts != 0 {
						want[cell{ci, r}] = wts
					}
				}
			}
			if len(want) != 32 {
				t.Fatalf("expected 32 written cells, found %d", len(want))
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := open()
			defer db2.Close()
			db2.mu.RLock()
			tab2 := db2.tabList[0]
			db2.mu.RUnlock()
			for ci, c := range tab2.cols {
				for r := 0; r < rows; r++ {
					wantTS := want[cell{ci, r}]
					if got := c.wts.GetU(r); got != wantTS {
						t.Fatalf("v%d[%d] recovered commitTS %d, want %d", ci, r, got, wantTS)
					}
				}
			}
		})
	}
}

// TestRecoverySkipsUnknownAddressRecords: a WAL commit record whose
// addresses the durable schema prefix does not cover (possible under
// SyncNone when OS writeback persisted a segment but not the schema
// log) must be skipped whole, never fail recovery — the directory
// stays openable and the intact records replay.
func TestRecoverySkipsUnknownAddressRecords(t *testing.T) {
	dir := t.TempDir()
	open := func() *DB {
		db, err := Open(
			WithCostModel(ZeroCost),
			WithCommitShards(1),
			WithDurability(dir),
			WithInitialSchema(internalSchema(2), 16),
		)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	for i := 0; i < 2; i++ {
		w, err := db.Begin(OLTP)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Set("t", "v0", i, int64(10+i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a record for a table the schema log does not know.
	l, err := wal.Open(dir, 1, wal.SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommits(0, []wal.CommitRecord{{
		TS:     100,
		Writes: []wal.RedoWrite{{Table: 7, Col: 0, Row: 0, Val: 1}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open()
	defer db2.Close()
	if got := db2.Stats().RecoveryReplayedTxns; got != 2 {
		t.Fatalf("replayed %d txns, want 2 (forged record skipped)", got)
	}
	r, err := db2.Begin(OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	for i := 0; i < 2; i++ {
		if v, err := r.Get("t", "v0", i); err != nil || v != int64(10+i) {
			t.Fatalf("v0[%d] = %d, %v", i, v, err)
		}
	}
}
