package ankerdb_test

// Crash-recovery fault harness: deterministic workloads (internal/
// workload) run against a scripted fault FS (internal/fault) whose
// seeded schedule injects a crash — optionally with torn writes, short
// writes, or lying fsyncs — after which the directory is reopened with
// the real FS and the recovered state is checked against an oracle of
// exactly the committed transactions. Honest-sync schedules admit an
// exact check (SyncAlways means a nil Commit is durable; only the one
// transaction in flight at the crash is in doubt, and it must be
// all-or-nothing). Fsync-lie schedules get the weaker contract:
// self-consistency, every surviving value drawn from the write
// history, and a byte-identical second recovery.

import (
	"errors"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ankerdb"
	"ankerdb/internal/fault"
	"ankerdb/internal/workload"
)

const faultRows = 64

var faultCols = []string{"c0", "c1"}

func faultSchema() ankerdb.Schema {
	return ankerdb.Schema{
		Table: "bench",
		Columns: []ankerdb.ColumnDef{
			{Name: "c0", Type: ankerdb.Int64},
			{Name: "c1", Type: ankerdb.Int64},
		},
	}
}

// openFaultDB opens the harness database: durable, SyncAlways (a nil
// Commit is a durability promise the harness holds recovery to), with
// the scripted FS when fs is non-nil.
func openFaultDB(strat ankerdb.SnapshotStrategy, dir string, fs fault.FS) (*ankerdb.DB, error) {
	opts := []ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithCommitShards(2),
		ankerdb.WithDurability(dir),
		ankerdb.WithSyncPolicy(ankerdb.SyncAlways),
		ankerdb.WithInitialSchema(faultSchema(), faultRows),
	}
	if fs != nil {
		opts = append(opts, ankerdb.WithFS(fs))
	}
	return ankerdb.Open(opts...)
}

// faultRun is the oracle a workload run leaves behind: the state every
// committed transaction built, plus the one op in flight at the crash.
type faultRun struct {
	model   map[workload.Cell]int64 // committed cell writes
	live    []int                   // committed inserted rows, still live
	deleted map[int]bool            // committed deleted rows
	history map[workload.Cell]map[int64]bool
	commits []workload.Op     // committed ops in commit order
	results []workload.Result // their resolved placements, same order

	maybeOp  *workload.Op     // op whose commit was cut off; nil if none
	maybeRes *workload.Result // its resolved placements
}

// runFaultWorkload replays a seeded TPCC-style stream against dir under
// the scripted FS until the crash trips (or maxTxns commit) and returns
// the oracle. Commit errors are only legal once the FS has tripped.
func runFaultWorkload(t *testing.T, strat ankerdb.SnapshotStrategy, dir string, fs *fault.Scripted, seed int64, maxTxns int) faultRun {
	t.Helper()
	fr := faultRun{
		model:   map[workload.Cell]int64{},
		deleted: map[int]bool{},
		history: map[workload.Cell]map[int64]bool{},
	}
	note := func(c workload.Cell, v int64) {
		if fr.history[c] == nil {
			fr.history[c] = map[int64]bool{}
		}
		fr.history[c][v] = true
	}
	db, err := openFaultDB(strat, dir, fs)
	if err != nil {
		if !fs.Tripped() {
			t.Fatalf("open: %v (no crash injected)", err)
		}
		return fr
	}
	// May be cut off by the crash; recovery must then cope with a
	// possibly-absent index, which the verifiers never assume.
	_ = db.CreateIndex("bench", "c0", ankerdb.Hash)

	g := workload.NewGen(workload.TPCC, seed, faultCols, faultRows)
	r := &workload.Runner{DB: db, Table: "bench", Cols: faultCols}
	for i := 0; i < maxTxns; i++ {
		op := g.Next()
		for _, w := range op.Writes {
			note(workload.Cell{Col: w.Col, Row: w.Row}, w.Val)
		}
		res, err := r.Apply(op)
		for j, row := range res.Inserted {
			for k, col := range faultCols {
				note(workload.Cell{Col: col, Row: row}, op.Inserts[j][k])
			}
		}
		if err != nil {
			if !fs.Tripped() {
				t.Fatalf("op %d: %v (no crash injected)", i, err)
			}
			fr.maybeOp, fr.maybeRes = &op, &res
			break
		}
		if !res.Committed {
			t.Fatalf("op %d: conflict with a single writer", i)
		}
		fr.fold(op, res)
	}
	_ = db.Close() // fails after a trip; the directory is what matters
	return fr
}

// fold applies one committed op to the oracle.
func (fr *faultRun) fold(op workload.Op, res workload.Result) {
	fr.commits = append(fr.commits, op)
	fr.results = append(fr.results, res)
	for _, w := range op.Writes {
		fr.model[workload.Cell{Col: w.Col, Row: w.Row}] = w.Val
	}
	for j, row := range res.Inserted {
		for k, col := range faultCols {
			fr.model[workload.Cell{Col: col, Row: row}] = op.Inserts[j][k]
		}
		fr.live = append(fr.live, row)
		delete(fr.deleted, row)
	}
	if res.Deleted >= 0 {
		for _, col := range faultCols {
			delete(fr.model, workload.Cell{Col: col, Row: res.Deleted})
		}
		fr.deleted[res.Deleted] = true
		for i, row := range fr.live {
			if row == res.Deleted {
				fr.live = append(fr.live[:i:i], fr.live[i+1:]...)
				break
			}
		}
	}
}

// maybeCommitted probes whether the in-flight transaction's effects
// survived. Written values are unique (the generator's value sequence
// is monotone), so one cell decides; atomicity of the rest is what the
// verifier then asserts.
func maybeCommitted(t *testing.T, txn *ankerdb.Txn, fr *faultRun) bool {
	t.Helper()
	op, res := fr.maybeOp, fr.maybeRes
	if len(op.Writes) > 0 {
		v, err := txn.Get("bench", op.Writes[0].Col, op.Writes[0].Row)
		return err == nil && v == op.Writes[0].Val
	}
	if len(res.Inserted) > 0 {
		_, err := txn.Get("bench", "c0", res.Inserted[0])
		return err == nil
	}
	if res.Deleted >= 0 {
		_, err := txn.Get("bench", "c0", res.Deleted)
		return err != nil
	}
	return false // read-only: no observable effect either way
}

// verifyExact reopens dir with the real FS and checks the recovered
// state cell-for-cell against the oracle, tolerating exactly the
// in-flight transaction — which must have applied atomically or not at
// all. Valid only for honest-sync schedules.
func verifyExact(t *testing.T, strat ankerdb.SnapshotStrategy, dir string, fr faultRun) {
	t.Helper()
	db, err := openFaultDB(strat, dir, nil)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db.Close()
	txn, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}

	expected := make(map[workload.Cell]int64, len(fr.model))
	for c, v := range fr.model {
		expected[c] = v
	}
	live := append([]int(nil), fr.live...)
	deleted := map[int]bool{}
	for r := range fr.deleted {
		deleted[r] = true
	}
	if fr.maybeOp != nil && maybeCommitted(t, txn, &fr) {
		mfr := faultRun{model: expected, live: live, deleted: deleted}
		mfr.fold(*fr.maybeOp, *fr.maybeRes)
		live = mfr.live
	}

	for c, want := range expected {
		got, err := txn.Get("bench", c.Col, c.Row)
		if err != nil || got != want {
			t.Fatalf("recovered %v = %d, %v; want %d", c, got, err, want)
		}
	}
	for row := range deleted {
		if _, err := txn.Get("bench", "c0", row); err == nil {
			t.Fatalf("deleted row %d resurrected by recovery", row)
		}
	}
	vals, err := txn.Scan("bench", "c0")
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if want := faultRows + len(live); len(vals) != want {
		t.Fatalf("recovered visible rows = %d, want %d", len(vals), want)
	}
	// Index-backed lookups agree with the recovered cells (served by
	// the rebuilt index when its creation survived, by scan otherwise).
	checked := 0
	for c, want := range expected {
		if c.Col != "c0" || checked == 3 {
			continue
		}
		rows, err := txn.Lookup("bench", "c0", want)
		if err != nil {
			t.Fatalf("lookup %d: %v", want, err)
		}
		found := false
		for _, r := range rows {
			if r == c.Row {
				found = true
			}
		}
		if !found {
			t.Fatalf("lookup(%d) = %v, missing row %d", want, rows, c.Row)
		}
		checked++
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}

	// The recovered database must keep working.
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	row, err := w.Insert("bench", map[string]any{"c0": int64(424242), "c1": int64(0)})
	if err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	r2, _ := db.Begin(ankerdb.OLTP)
	defer r2.Abort()
	if v, err := r2.Get("bench", "c0", row); err != nil || v != 424242 {
		t.Fatalf("post-recovery row = %d, %v", v, err)
	}
}

// stateDump captures the recovered state in row order for equality
// comparison across recoveries.
func stateDump(t *testing.T, db *ankerdb.DB) [][]int64 {
	t.Helper()
	txn, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort()
	var dump [][]int64
	for _, col := range faultCols {
		vals, err := txn.Scan("bench", col)
		if err != nil {
			t.Fatalf("scan %s: %v", col, err)
		}
		dump = append(dump, vals)
	}
	return dump
}

// verifyLoose is the fsync-lie contract: the recovered state is
// internally consistent, every surviving value was actually written
// at some point (or is the initial zero), and recovering twice yields
// the same state.
func verifyLoose(t *testing.T, strat ankerdb.SnapshotStrategy, dir string, fr faultRun) {
	t.Helper()
	db, err := openFaultDB(strat, dir, nil)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	allVals := map[string]map[int64]bool{}
	for c, vs := range fr.history {
		if allVals[c.Col] == nil {
			allVals[c.Col] = map[int64]bool{}
		}
		for v := range vs {
			allVals[c.Col][v] = true
		}
	}
	dump := stateDump(t, db)
	for i, col := range faultCols {
		for _, v := range dump[i] {
			if v != 0 && !allVals[col][v] {
				t.Fatalf("recovered %s value %d was never written", col, v)
			}
		}
	}
	if len(dump[0]) != len(dump[1]) {
		t.Fatalf("column row counts diverge: %d vs %d", len(dump[0]), len(dump[1]))
	}
	verifyCommitOrder(t, db, fr)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, err := openFaultDB(strat, dir, nil)
	if err != nil {
		t.Fatalf("second recovery open: %v", err)
	}
	defer db2.Close()
	if dump2 := stateDump(t, db2); !reflect.DeepEqual(dump, dump2) {
		t.Fatalf("second recovery diverged:\n%v\nvs\n%v", dump, dump2)
	}
}

// verifyCommitOrder checks prefix-consistency of the commit order at
// record granularity: the recovered state must be explainable as a
// newer-wins replay of some subsequence of the committed transactions
// in commit order with NO transaction partially applied — if any of a
// transaction's writes survived, none of its cells may show an older
// value. A lying fsync may drop a suffix of each WAL shard, so whole
// records vanish; a record that half-applies is a recovery bug (torn
// tails must be cut at record boundaries).
//
// The check runs over "stable" cells — initial rows never touched by
// an insert or delete — where Get is always defined and the recovered
// value alone identifies the last surviving writer, because the
// generator's value sequence is globally unique.
func verifyCommitOrder(t *testing.T, db *ankerdb.DB, fr faultRun) {
	t.Helper()
	unstable := map[int]bool{}
	mark := func(res *workload.Result) {
		if res == nil {
			return
		}
		for _, r := range res.Inserted {
			unstable[r] = true
		}
		if res.Deleted >= 0 {
			unstable[res.Deleted] = true
		}
	}
	for i := range fr.results {
		mark(&fr.results[i])
	}
	mark(fr.maybeRes)

	// Commit-order position of each written value's transaction; the
	// one in flight at the crash orders after everything committed.
	const inflight = int(^uint(0) >> 1)
	writer := map[int64]int{}
	for i, op := range fr.commits {
		for _, w := range op.Writes {
			writer[w.Val] = i
		}
	}
	if fr.maybeOp != nil {
		for _, w := range fr.maybeOp.Writes {
			writer[w.Val] = inflight
		}
	}

	txn, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort()
	// pos resolves a stable cell to its recovered writer's commit-order
	// position; -1 is the initial zero.
	pos := func(col string, row int) int {
		v, err := txn.Get("bench", col, row)
		if err != nil {
			t.Fatalf("stable row %d unreadable: %v", row, err)
		}
		if v == 0 {
			return -1
		}
		p, ok := writer[v]
		if !ok {
			t.Fatalf("recovered %s[%d] = %d was never written", col, row, v)
		}
		return p
	}
	check := func(i int, op workload.Op) {
		survived := false
		for _, w := range op.Writes {
			if !unstable[w.Row] && pos(w.Col, w.Row) == i {
				survived = true
				break
			}
		}
		if !survived {
			return // the whole record was lost: a legal prefix cut
		}
		for _, w := range op.Writes {
			if unstable[w.Row] {
				continue
			}
			if p := pos(w.Col, w.Row); p < i {
				t.Fatalf("torn transaction at commit-order %d: %s[%d] shows writer %d while a sibling write survived",
					i, w.Col, w.Row, p)
			}
		}
	}
	for i, op := range fr.commits {
		check(i, op)
	}
	if fr.maybeOp != nil {
		check(inflight, *fr.maybeOp)
	}
}

// faultSweepSeeds is the number of seeded schedules the matrix runs per
// strategy: 3 in the regular suite, FAULT_SWEEP_SEEDS when set — the
// widened range `make fault-sweep` and the nightly battery use.
func faultSweepSeeds(t *testing.T) int64 {
	s := os.Getenv("FAULT_SWEEP_SEEDS")
	if s == "" {
		return 3
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		t.Fatalf("FAULT_SWEEP_SEEDS=%q: %v", s, err)
	}
	return n
}

// TestCrashRecoveryMatrix: seeded fault schedules across every snapshot
// strategy. Each seed derives both the workload stream and the fault
// plan, so a failing (strategy, seed) pair replays exactly.
func TestCrashRecoveryMatrix(t *testing.T) {
	seeds := faultSweepSeeds(t)
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				plan := fault.Schedule(seed, 400)
				t.Logf("seed %d: %v", seed, plan)
				dir := t.TempDir()
				fs := fault.NewScripted(seed, plan)
				fr := runFaultWorkload(t, strat, dir, fs, seed, 200)
				if plan.FsyncLie {
					verifyLoose(t, strat, dir, fr)
				} else {
					verifyExact(t, strat, dir, fr)
				}
			}
		})
	}
}

// TestFsyncLieRecoveryMatrix forces the lying-fsync mode on every
// strategy (the seeded matrix only hits it on a third of schedules).
func TestFsyncLieRecoveryMatrix(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			plan := fault.Plan{CrashAfterOps: 120, Torn: true, FsyncLie: true}
			dir := t.TempDir()
			fs := fault.NewScripted(99, plan)
			fr := runFaultWorkload(t, strat, dir, fs, 99, 200)
			if !fs.Tripped() {
				t.Fatal("workload finished before the crash point; raise maxTxns")
			}
			verifyLoose(t, strat, dir, fr)
		})
	}
}

// TestSeededScheduleReproducible: the same seed yields a byte-identical
// fault trace and an identical recovered state — the property that
// makes a fault-sweep failure a repro recipe rather than an anecdote.
func TestSeededScheduleReproducible(t *testing.T) {
	const seed = 7
	plan := fault.Schedule(seed, 300)
	var traces [2][]string
	var dumps [2][][]int64
	for i := 0; i < 2; i++ {
		dir := t.TempDir()
		fs := fault.NewScripted(seed, plan)
		runFaultWorkload(t, ankerdb.VMSnap, dir, fs, seed, 200)
		// Traces embed absolute paths; strip the per-run directory so
		// the comparison sees only the schedule itself.
		for _, line := range fs.Trace() {
			traces[i] = append(traces[i], strings.ReplaceAll(line, dir, ""))
		}
		db, err := openFaultDB(ankerdb.VMSnap, dir, nil)
		if err != nil {
			t.Fatalf("recovery open: %v", err)
		}
		dumps[i] = stateDump(t, db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(traces[0], traces[1]) {
		t.Fatalf("fault traces diverged:\n%v\nvs\n%v", traces[0], traces[1])
	}
	if !reflect.DeepEqual(dumps[0], dumps[1]) {
		t.Fatalf("recovered states diverged")
	}
	if len(traces[0]) == 0 {
		t.Fatal("empty fault trace; the crash never tripped")
	}
}

// crashMidDDL seeds a table, then retries the DDL with the crash point
// swept over every operation index until it completes — after every
// crash, recovery must show the DDL applied entirely or not at all.
func crashMidDDL(t *testing.T, truncate bool) {
	const extra = 6
	seedVals := func(i int) int64 { return int64(1000 + i) }
	sawCrash, completed := false, false
	for k := int64(1); k <= 500 && !completed; k++ {
		dir := t.TempDir()
		db, err := openFaultDB(ankerdb.VMSnap, dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < extra; i++ {
			w, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Insert("bench", map[string]any{"c0": seedVals(i), "c1": int64(0)}); err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		fs := fault.NewScripted(k, fault.Plan{CrashAfterOps: k})
		db2, err := openFaultDB(ankerdb.VMSnap, dir, fs)
		var ddlErr error
		if err == nil {
			if truncate {
				ddlErr = db2.Truncate("bench")
			} else {
				ddlErr = db2.DropTable("bench")
			}
			_ = db2.Close()
		} else {
			ddlErr = err
		}
		if fs.Tripped() {
			sawCrash = true
		} else if ddlErr != nil {
			t.Fatalf("k=%d: DDL failed without a crash: %v", k, ddlErr)
		} else {
			completed = true
		}

		// Recover without the initial schema so a durable drop is
		// observable as ErrNoSuchTable instead of being re-created.
		db3, err := ankerdb.Open(
			ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
			ankerdb.WithCostModel(ankerdb.ZeroCost),
			ankerdb.WithCommitShards(2),
			ankerdb.WithDurability(dir),
		)
		if err != nil {
			t.Fatalf("k=%d: recovery open: %v", k, err)
		}
		txn, err := db3.Begin(ankerdb.OLTP)
		if err != nil {
			t.Fatal(err)
		}
		vals, scanErr := txn.Scan("bench", "c0")
		switch {
		case scanErr == nil && len(vals) == faultRows+extra:
			// DDL not applied: every seeded value must be intact.
			var sum, want int64
			for _, v := range vals {
				sum += v
			}
			for i := 0; i < extra; i++ {
				want += seedVals(i)
			}
			if sum != want {
				t.Fatalf("k=%d: surviving table sum = %d, want %d", k, sum, want)
			}
		case !truncate && errors.Is(scanErr, ankerdb.ErrNoSuchTable):
			// Drop applied: the name must be reusable.
			if err := txn.Abort(); err != nil {
				t.Fatal(err)
			}
			txn = nil
			if err := db3.CreateTable(faultSchema(), 4); err != nil {
				t.Fatalf("k=%d: re-create after recovered drop: %v", k, err)
			}
		case truncate && scanErr == nil && len(vals) == 0:
			// Truncate applied: inserts must land again.
			w, err := db3.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Insert("bench", map[string]any{"c0": int64(1), "c1": int64(2)}); err != nil {
				t.Fatalf("k=%d: insert after recovered truncate: %v", k, err)
			}
			if err := w.Commit(); err != nil {
				t.Fatalf("k=%d: commit after recovered truncate: %v", k, err)
			}
		default:
			t.Fatalf("k=%d: partial DDL state after crash: rows=%d err=%v\ntrace:\n%s",
				k, len(vals), scanErr, strings.Join(fs.Trace(), "\n"))
		}
		if txn != nil {
			if err := txn.Abort(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db3.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawCrash || !completed {
		t.Fatalf("sweep ended with sawCrash=%v completed=%v", sawCrash, completed)
	}
}

func TestCrashMidDropTable(t *testing.T) { crashMidDDL(t, false) }

func TestCrashMidTruncate(t *testing.T) { crashMidDDL(t, true) }
