package ankerdb

import "sort"

// The visibility log makes the snapshot-consistent visible row count an
// O(log n) binary search instead of an O(capacity) sweep of the birth
// and death arrays. Every commit that births or kills rows of a table
// appends one entry — its timestamp and the table's cumulative row
// delta — under the table's visibility shard lock, which also
// serialises the row-op installs themselves, so entries are strictly
// timestamp-ordered. COUNT at timestamp ts is then the initial row
// count plus the cumulative delta of the last entry at or below ts.
// The count doubles as the query engine's cardinality estimate.

// visDelta is one committed row-op batch: cum is the table's cumulative
// insert-minus-delete delta (including the compacted base) as of ts.
type visDelta struct {
	ts  uint64
	cum int64
}

// visLogState is the immutable published state of one table's log.
// Appends publish a new state that shares the entries backing array:
// readers of the old state are bounded by its length and never see the
// new element, so sharing is race-free under the atomic pointer's
// happens-before edge.
type visLogState struct {
	base    int64 // cumulative delta of entries compacted away
	entries []visDelta
}

// visLogAppend records a committed row-op batch at ts. The caller
// holds the table's visibility shard commit lock (the same lock that
// serialises the birth/death installs), so appends never race each
// other and arrive in commit-timestamp order; it must run before the
// commit's timestamp completes, so any reader that can see ts also
// sees the entry.
func (t *table) visLogAppend(ts uint64, delta int64) {
	s := t.visLog.Load()
	cum := s.base
	if n := len(s.entries); n > 0 {
		cum = s.entries[n-1].cum
	}
	t.visLog.Store(&visLogState{
		base:    s.base,
		entries: append(s.entries, visDelta{ts: ts, cum: cum + delta}),
	})
}

// visCountAt returns the number of rows visible at ts. ts must be at
// or above the GC floor the log was last compacted to — true for every
// registered reader timestamp (OLTP begin or pinned generation).
func (t *table) visCountAt(ts uint64) int64 {
	init := int64(t.st.InitialRows())
	s := t.visLog.Load()
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].ts > ts })
	if i == 0 {
		return init + s.base
	}
	return init + s.entries[i-1].cum
}

// visLogCompact folds every entry at or below floor into the base.
// Called under all shard commit locks (Vacuum): no reader at or above
// floor distinguishes the folded entries from the base.
func (t *table) visLogCompact(floor uint64) {
	s := t.visLog.Load()
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].ts > floor })
	if i == 0 {
		return
	}
	t.visLog.Store(&visLogState{
		base:    s.entries[i-1].cum,
		entries: append([]visDelta(nil), s.entries[i:]...),
	})
}

// visLogReset seeds the log after recovery: the recovered arrays
// already reflect every durable row op, and every reachable read
// timestamp is at or above the re-seeded oracle's maximum — above
// every durable event — so the whole history collapses into base.
func (t *table) visLogReset(base int64) {
	t.visLog.Store(&visLogState{base: base})
}

// visLogInit gives a fresh table an empty log.
func (t *table) visLogInit() {
	t.visLog.Store(&visLogState{})
}

// visLogLen returns the number of uncompacted entries (tests).
func (t *table) visLogLen() int { return len(t.visLog.Load().entries) }
