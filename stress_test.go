package ankerdb_test

// Stress coverage for the sharded group-commit pipeline: many
// concurrent OLTP writers against concurrent OLAP scanners, under every
// snapshot strategy and several commit shard counts, asserting that
// snapshot isolation holds throughout.
//
// Two invariants are maintained and checked:
//
//   - Within a column: writers transfer value between two rows of
//     "cash", so the column sum is constant. Any scan (OLAP snapshot
//     or OLTP live read) observing a different sum saw a torn commit.
//   - Across columns: writers move value between pairA[r] and pairB[r]
//     keeping the pair sum constant. pairA/pairB are probed at setup to
//     live on *different* commit shards (when more than one exists), so
//     this exercises the cross-shard commit path, which must stay
//     atomically visible.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"ankerdb"
)

const (
	stressRows      = 1024
	stressSeed      = int64(100)
	stressPairSum   = 2 * stressSeed
	stressPairCands = 8 // candidate columns probed for a cross-shard pair
)

func stressShardCounts() []int {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, n := range counts {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func pairCol(i int) string { return fmt.Sprintf("p%d", i) }

func openStressDB(t *testing.T, strat ankerdb.SnapshotStrategy, shards int) *ankerdb.DB {
	t.Helper()
	cols := []ankerdb.ColumnDef{{Name: "cash", Type: ankerdb.Money}}
	for i := 0; i < stressPairCands; i++ {
		cols = append(cols, ankerdb.ColumnDef{Name: pairCol(i), Type: ankerdb.Money})
	}
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithCommitShards(shards),
		ankerdb.WithSnapshotRefresh(4),
		ankerdb.WithInitialSchema(ankerdb.Schema{Table: "stress", Columns: cols}, stressRows),
	)
	if err != nil {
		t.Fatalf("Open(%s, shards=%d): %v", strat, shards, err)
	}
	vals := make([]int64, stressRows)
	for i := range vals {
		vals[i] = stressSeed
	}
	for _, c := range cols {
		if err := db.Load("stress", c.Name, vals); err != nil {
			t.Fatalf("Load(%s): %v", c.Name, err)
		}
	}
	return db
}

// pickCrossShardPair probes, through the public stats surface only, for
// two candidate columns routed to different commit shards: a
// transaction writing both columns bumps CommitShardConflicts exactly
// when its footprint spans shards. It returns the first split pair, or
// (p0, p1, false) when every candidate shares one shard (always the
// case with a single commit shard).
func pickCrossShardPair(t *testing.T, db *ankerdb.DB) (a, b string, split bool) {
	t.Helper()
	for j := 1; j < stressPairCands; j++ {
		before := db.Stats().CommitShardConflicts
		w, err := db.Begin(ankerdb.OLTP)
		if err != nil {
			t.Fatalf("probe Begin: %v", err)
		}
		// Rewriting the seed value keeps the pair-sum invariant intact.
		if err := w.Set("stress", pairCol(0), 0, stressSeed); err != nil {
			t.Fatalf("probe Set: %v", err)
		}
		if err := w.Set("stress", pairCol(j), 0, stressSeed); err != nil {
			t.Fatalf("probe Set: %v", err)
		}
		if err := w.Commit(); err != nil {
			t.Fatalf("probe Commit: %v", err)
		}
		if db.Stats().CommitShardConflicts > before {
			return pairCol(0), pairCol(j), true
		}
	}
	return pairCol(0), pairCol(1), false
}

// transferWithin moves delta between two rows of "cash" with
// read-modify-write, preserving the column sum.
func transferWithin(db *ankerdb.DB, rnd *rand.Rand) error {
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		return err
	}
	from, to := rnd.Intn(stressRows), rnd.Intn(stressRows)
	if from == to {
		to = (to + 1) % stressRows
	}
	a, err := w.Get("stress", "cash", from)
	if err != nil {
		return abortWith(w, err)
	}
	b, err := w.Get("stress", "cash", to)
	if err != nil {
		return abortWith(w, err)
	}
	delta := rnd.Int63n(7) + 1
	if err := w.Set("stress", "cash", from, a-delta); err != nil {
		return abortWith(w, err)
	}
	if err := w.Set("stress", "cash", to, b+delta); err != nil {
		return abortWith(w, err)
	}
	return w.Commit()
}

// transferAcross moves delta between pairA[r] and pairB[r], preserving
// the per-row pair sum across the two (usually different) shards.
func transferAcross(db *ankerdb.DB, rnd *rand.Rand, pairA, pairB string) error {
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		return err
	}
	row := rnd.Intn(stressRows)
	a, err := w.Get("stress", pairA, row)
	if err != nil {
		return abortWith(w, err)
	}
	b, err := w.Get("stress", pairB, row)
	if err != nil {
		return abortWith(w, err)
	}
	delta := rnd.Int63n(7) + 1
	if err := w.Set("stress", pairA, row, a-delta); err != nil {
		return abortWith(w, err)
	}
	if err := w.Set("stress", pairB, row, b+delta); err != nil {
		return abortWith(w, err)
	}
	return w.Commit()
}

func abortWith(w *ankerdb.Txn, err error) error {
	_ = w.Abort()
	return err
}

// checkSnapshot asserts both invariants inside one transaction of the
// given class.
func checkSnapshot(db *ankerdb.DB, class ankerdb.TxnClass, pairA, pairB string) error {
	r, err := db.Begin(class)
	if err != nil {
		return err
	}
	defer func() { _ = r.Abort() }()
	sum, err := r.Aggregate("stress", "cash", ankerdb.Sum)
	if err != nil {
		return err
	}
	if want := int64(stressRows) * stressSeed; sum != want {
		return fmt.Errorf("%s snapshot at ts %d: cash sum = %d, want %d (torn within-column commit)",
			class, r.SnapshotTS(), sum, want)
	}
	a, err := r.Scan("stress", pairA)
	if err != nil {
		return err
	}
	b, err := r.Scan("stress", pairB)
	if err != nil {
		return err
	}
	for row := range a {
		if got := a[row] + b[row]; got != stressPairSum {
			return fmt.Errorf("%s snapshot at ts %d: %s[%d]+%s[%d] = %d, want %d (torn cross-shard commit)",
				class, r.SnapshotTS(), pairA, row, pairB, row, got, stressPairSum)
		}
	}
	return nil
}

// TestReadYourOwnWritesAcrossShards pins the session guarantee the
// commit pipeline must preserve under out-of-order shard completion: a
// transaction beginning after Commit returned reads the committed
// value, even while other shards are mid-materialization (Commit
// blocks on the oracle's completion watermark).
func TestReadYourOwnWritesAcrossShards(t *testing.T) {
	const writers, iters = 6, 150
	db := openStressDB(t, ankerdb.VMSnap, 4)
	defer db.Close()
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			col := pairCol(i % stressPairCands)
			row := i % stressRows
			for k := int64(1); k <= iters; k++ {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					errc <- err
					return
				}
				if err := w.Set("stress", col, row, k); err != nil {
					errc <- abortWith(w, err)
					return
				}
				if err := w.Commit(); err != nil {
					errc <- err
					return
				}
				r, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					errc <- err
					return
				}
				got, err := r.Get("stress", col, row)
				_ = r.Abort()
				if err != nil {
					errc <- err
					return
				}
				if got != k {
					errc <- fmt.Errorf("writer %d: read %d after committing %d to %s[%d]", i, got, k, col, row)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

func TestStressShardedCommitIsolation(t *testing.T) {
	const (
		writers          = 8
		scanners         = 3
		commitsPerWriter = 60
	)
	for _, strat := range strategies {
		for _, shardCount := range stressShardCounts() {
			t.Run(fmt.Sprintf("%s/shards=%d", strat, shardCount), func(t *testing.T) {
				db := openStressDB(t, strat, shardCount)
				defer db.Close()
				pairA, pairB, split := pickCrossShardPair(t, db)
				if shardCount > 1 && !split {
					t.Logf("no cross-shard pair among %d candidates at %d shards", stressPairCands, shardCount)
				}
				// Snapshot after probing so the final assertion checks
				// the workload phase, not the probes themselves.
				crossBefore := db.Stats().CommitShardConflicts

				var wwg, swg sync.WaitGroup
				errc := make(chan error, writers+scanners)
				done := make(chan struct{})

				for i := 0; i < writers; i++ {
					wwg.Add(1)
					go func(seed int64) {
						defer wwg.Done()
						rnd := rand.New(rand.NewSource(seed))
						committed := 0
						for committed < commitsPerWriter {
							var err error
							if rnd.Intn(2) == 0 {
								err = transferWithin(db, rnd)
							} else {
								err = transferAcross(db, rnd, pairA, pairB)
							}
							switch {
							case err == nil:
								committed++
							case errors.Is(err, ankerdb.ErrConflict):
								// Precision locking aborted us; retry.
							default:
								errc <- err
								return
							}
						}
					}(int64(i) + 1)
				}
				for i := 0; i < scanners; i++ {
					swg.Add(1)
					go func(i int) {
						defer swg.Done()
						class := ankerdb.OLAP
						if i == 0 {
							// One scanner reads live state through the
							// OLTP read protocol instead of snapshots.
							class = ankerdb.OLTP
						}
						for {
							select {
							case <-done:
								return
							default:
							}
							if err := checkSnapshot(db, class, pairA, pairB); err != nil {
								errc <- err
								return
							}
						}
					}(i)
				}

				writersDone := make(chan struct{})
				go func() {
					wwg.Wait()
					close(writersDone)
				}()
				var failure error
				select {
				case failure = <-errc:
				case <-writersDone:
				}
				close(done)
				wwg.Wait()
				swg.Wait()
				if failure == nil {
					select {
					case failure = <-errc:
					default:
					}
				}
				if failure != nil {
					t.Fatal(failure)
				}

				// Quiesced final check plus pipeline counter sanity.
				if err := checkSnapshot(db, ankerdb.OLTP, pairA, pairB); err != nil {
					t.Fatal(err)
				}
				st := db.Stats()
				if st.CommitShards != shardCount {
					t.Fatalf("CommitShards = %d, want %d", st.CommitShards, shardCount)
				}
				// writers*commitsPerWriter workload commits plus the
				// probe commits from pair selection.
				if min := uint64(writers * commitsPerWriter); st.Commits < min {
					t.Fatalf("Commits = %d, want >= %d", st.Commits, min)
				}
				if st.CommitBatches == 0 {
					t.Fatal("no commit batches recorded")
				}
				if got := st.GroupCommitSize.Observations(); got != st.CommitBatches {
					t.Fatalf("histogram observations = %d, batches = %d", got, st.CommitBatches)
				}
				if shardCount == 1 && st.CommitShardConflicts != 0 {
					t.Fatalf("CommitShardConflicts = %d with a single shard", st.CommitShardConflicts)
				}
				if split && st.CommitShardConflicts == crossBefore {
					t.Fatal("cross-shard pair selected but the workload recorded no cross-shard commits")
				}
			})
		}
	}
}
