package ankerdb_test

// Crash-recovery coverage for the durability subsystem: commit through
// the sharded group-commit pipeline, "crash" (close, or close plus a
// deliberately torn WAL tail), reopen from the durability directory,
// and assert that exactly the committed state survived — with and
// without intervening checkpoints, under every snapshot strategy and
// sync policy. Everything here goes through the public API only.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ankerdb"
)

const durRows = 256

// durCols are spread across commit shards by the FNV-1a column hash;
// with 4 shards, writes over all eight columns are guaranteed to cross
// shard boundaries.
const durNumCols = 8

func durSchema() ankerdb.Schema {
	s := ankerdb.Schema{Table: "t"}
	for i := 0; i < durNumCols; i++ {
		s.Columns = append(s.Columns, ankerdb.ColumnDef{Name: fmt.Sprintf("v%d", i), Type: ankerdb.Int64})
	}
	s.Columns = append(s.Columns, ankerdb.ColumnDef{Name: "name", Type: ankerdb.Varchar})
	return s
}

func openDurable(t *testing.T, dir string, strat ankerdb.SnapshotStrategy, opts ...ankerdb.Option) *ankerdb.DB {
	t.Helper()
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithCommitShards(4),
		ankerdb.WithDurability(dir),
		ankerdb.WithInitialSchema(durSchema(), durRows),
	}, opts...)...)
	if err != nil {
		t.Fatalf("open durable db: %v", err)
	}
	return db
}

// commitOne commits value into column col at row via one OLTP txn.
func commitOne(t *testing.T, db *ankerdb.DB, col string, row int, val int64) {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Set("t", col, row, val); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func getOne(t *testing.T, db *ankerdb.DB, col string, row int) int64 {
	t.Helper()
	r, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	v, err := r.Get("t", col, row)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDurabilityRecoveryAllStrategies is the headline crash-recovery
// scenario: N committed transactions across multiple commit shards
// (plus VARCHAR writes, an aborted transaction, and a transaction left
// open at the crash), reopened without a checkpoint, under each of the
// four snapshot strategies.
func TestDurabilityRecoveryAllStrategies(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, strat)

			const n = 40
			for i := 0; i < n; i++ {
				commitOne(t, db, fmt.Sprintf("v%d", i%durNumCols), i%durRows, int64(1000+i))
			}
			w, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.SetString("t", "name", 7, "alice"); err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}

			// Staged-but-never-committed writes must not survive: one
			// explicit abort, one transaction simply left open.
			ab, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if err := ab.Set("t", "v0", 200, -1); err != nil {
				t.Fatal(err)
			}
			if err := ab.Abort(); err != nil {
				t.Fatal(err)
			}
			open, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if err := open.Set("t", "v1", 201, -2); err != nil {
				t.Fatal(err)
			}

			before := db.Stats()
			if !before.Durable || before.WALBytes == 0 {
				t.Fatalf("expected durable stats, got %+v", before)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := openDurable(t, dir, strat)
			defer db2.Close()
			after := db2.Stats()
			if after.CompletedCommitTS != before.CompletedCommitTS {
				t.Fatalf("recovered watermark %d, want %d", after.CompletedCommitTS, before.CompletedCommitTS)
			}
			if after.RecoveryReplayedTxns != n+1 {
				t.Fatalf("replayed %d txns, want %d", after.RecoveryReplayedTxns, n+1)
			}
			for i := 0; i < n; i++ {
				// n < durRows, so every (column, row) pair is written
				// exactly once.
				want := int64(1000 + i)
				got := getOne(t, db2, fmt.Sprintf("v%d", i%durNumCols), i%durRows)
				if got != want {
					t.Fatalf("v%d[%d] = %d, want %d", i%durNumCols, i%durRows, got, want)
				}
			}
			r, err := db2.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if s, err := r.GetString("t", "name", 7); err != nil || s != "alice" {
				t.Fatalf("recovered string = %q, %v", s, err)
			}
			if err := r.Commit(); err != nil {
				t.Fatal(err)
			}
			if v := getOne(t, db2, "v0", 200); v != 0 {
				t.Fatalf("aborted write survived recovery: %d", v)
			}
			if v := getOne(t, db2, "v1", 201); v != 0 {
				t.Fatalf("uncommitted staged write survived recovery: %d", v)
			}

			// OLAP snapshot scans over recovered state work too.
			olap, err := db2.Begin(ankerdb.OLAP)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := olap.Aggregate("t", "v0", ankerdb.Sum)
			if err != nil {
				t.Fatal(err)
			}
			if err := olap.Commit(); err != nil {
				t.Fatal(err)
			}
			var want int64
			for i := 0; i < n; i += durNumCols {
				want += int64(1000 + i)
			}
			if sum != want {
				t.Fatalf("OLAP sum over recovered v0 = %d, want %d", sum, want)
			}

			// The recovered engine keeps committing: timestamps continue
			// above the recovered watermark.
			commitOne(t, db2, "v0", 0, 7777)
			if got := db2.Stats().CompletedCommitTS; got <= before.CompletedCommitTS {
				t.Fatalf("post-recovery commit TS %d did not advance past %d", got, before.CompletedCommitTS)
			}
			if getOne(t, db2, "v0", 0) != 7777 {
				t.Fatal("post-recovery commit not visible")
			}
		})
	}
}

// TestRecoveryEmptyDir: WithDurability over a fresh directory must
// behave like a fresh database with zero replays.
func TestRecoveryEmptyDir(t *testing.T) {
	db := openDurable(t, t.TempDir(), ankerdb.VMSnap)
	defer db.Close()
	st := db.Stats()
	if st.RecoveryReplayedTxns != 0 || st.CheckpointCount != 0 {
		t.Fatalf("fresh dir recovered state: %+v", st)
	}
	commitOne(t, db, "v0", 1, 42)
	if getOne(t, db, "v0", 1) != 42 {
		t.Fatal("commit in fresh durable db not visible")
	}
}

// TestDurabilityCheckpointRecovery: commits below the checkpoint come
// back from the checkpoint file, commits above it from WAL replay.
func TestDurabilityCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	for i := 0; i < 20; i++ {
		commitOne(t, db, fmt.Sprintf("v%d", i%durNumCols), i, int64(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := db.Stats().CheckpointCount; got != 1 {
		t.Fatalf("CheckpointCount = %d, want 1", got)
	}
	for i := 20; i < 30; i++ {
		commitOne(t, db, fmt.Sprintf("v%d", i%durNumCols), i, int64(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	// The default refresh policy rotates the pinned generation before
	// the checkpoint, so its timestamp covers all 20 pre-checkpoint
	// commits: only the 10 later ones replay from the WAL.
	if got := db2.Stats().RecoveryReplayedTxns; got != 10 {
		t.Fatalf("replayed %d txns, want 10", got)
	}
	for i := 0; i < 30; i++ {
		if got := getOne(t, db2, fmt.Sprintf("v%d", i%durNumCols), i); got != int64(i) {
			t.Fatalf("row %d = %d, want %d", i, got, i)
		}
	}
}

// TestRecoveryCheckpointNoTrailingWAL: a checkpoint immediately before
// the crash leaves nothing to replay.
func TestRecoveryCheckpointNoTrailingWAL(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	for i := 0; i < 10; i++ {
		commitOne(t, db, "v2", i, int64(100+i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	if got := db2.Stats().RecoveryReplayedTxns; got != 0 {
		t.Fatalf("replayed %d txns after clean checkpoint, want 0", got)
	}
	for i := 0; i < 10; i++ {
		if got := getOne(t, db2, "v2", i); got != int64(100+i) {
			t.Fatalf("v2[%d] = %d, want %d", i, got, 100+i)
		}
	}
}

// tearNewestSegment truncates the newest non-empty WAL segment by a
// few bytes, simulating a crash mid-append.
func tearNewestSegment(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to tear: %v, %v", segs, err)
	}
	newest := segs[len(segs)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 4 {
		t.Fatalf("segment %s too small to tear (%d bytes)", newest, fi.Size())
	}
	if err := os.Truncate(newest, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryTornTail: a torn final record loses exactly the last
// commit; everything before it replays cleanly.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	// One shard: all records land in one segment, so the torn record
	// is deterministically the newest commit.
	db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	const n = 6
	for i := 0; i < n; i++ {
		commitOne(t, db, "v0", i, int64(100+i))
	}
	before := db.Stats().CompletedCommitTS
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestSegment(t, dir)

	db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	defer db2.Close()
	st := db2.Stats()
	if st.RecoveryReplayedTxns != n-1 {
		t.Fatalf("replayed %d txns, want %d", st.RecoveryReplayedTxns, n-1)
	}
	if st.CompletedCommitTS != before-1 {
		t.Fatalf("recovered watermark %d, want %d", st.CompletedCommitTS, before-1)
	}
	for i := 0; i < n-1; i++ {
		if got := getOne(t, db2, "v0", i); got != int64(100+i) {
			t.Fatalf("v0[%d] = %d, want %d", i, got, 100+i)
		}
	}
	if got := getOne(t, db2, "v0", n-1); got != 0 {
		t.Fatalf("torn commit partially survived: v0[%d] = %d", n-1, got)
	}
}

// TestRecoveryCheckpointPlusTornTail combines both: checkpointed
// history intact, post-checkpoint WAL torn at its last record.
func TestRecoveryCheckpointPlusTornTail(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	for i := 0; i < 10; i++ {
		commitOne(t, db, "v0", i, int64(100+i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		commitOne(t, db, "v0", i, int64(100+i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestSegment(t, dir)

	db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	defer db2.Close()
	if got := db2.Stats().RecoveryReplayedTxns; got != 4 {
		t.Fatalf("replayed %d txns, want 4", got)
	}
	for i := 0; i < 14; i++ {
		if got := getOne(t, db2, "v0", i); got != int64(100+i) {
			t.Fatalf("v0[%d] = %d, want %d", i, got, 100+i)
		}
	}
	if got := getOne(t, db2, "v0", 14); got != 0 {
		t.Fatalf("torn commit partially survived: v0[14] = %d", got)
	}
}

// TestDurabilityCrossShardCommit: one transaction spanning every
// column (hence several commit shards) must recover atomically.
func TestDurabilityCrossShardCommit(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < durNumCols; i++ {
		if err := w.Set("t", fmt.Sprintf("v%d", i), 5, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().CommitShardConflicts; got == 0 {
		t.Fatal("expected a cross-shard commit")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	for i := 0; i < durNumCols; i++ {
		if got := getOne(t, db2, fmt.Sprintf("v%d", i), 5); got != int64(i+1) {
			t.Fatalf("cross-shard write v%d[5] = %d, want %d", i, got, i+1)
		}
	}
}

// TestDurabilitySyncPolicies: all three policies recover after a clean
// close (Close syncs even under SyncNone).
func TestDurabilitySyncPolicies(t *testing.T) {
	for _, p := range []ankerdb.SyncPolicy{ankerdb.SyncAlways, ankerdb.SyncGroupOnly, ankerdb.SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithSyncPolicy(p))
			commitOne(t, db, "v3", 9, 314)
			if got := db.Stats().SyncPolicy; got != p.String() {
				t.Fatalf("Stats().SyncPolicy = %q, want %q", got, p.String())
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithSyncPolicy(p))
			defer db2.Close()
			if got := getOne(t, db2, "v3", 9); got != 314 {
				t.Fatalf("recovered v3[9] = %d, want 314", got)
			}
		})
	}
}

// TestDurabilityOffByDefault: without WithDurability nothing touches
// disk and Checkpoint refuses.
func TestDurabilityOffByDefault(t *testing.T) {
	db, err := ankerdb.Open(
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(durSchema(), durRows),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	commitOne(t, db, "v0", 0, 1)
	st := db.Stats()
	if st.Durable || st.WALBytes != 0 || st.FsyncCount != 0 {
		t.Fatalf("in-memory db reports durability: %+v", st)
	}
	if err := db.Checkpoint(); !errors.Is(err, ankerdb.ErrNoDurability) {
		t.Fatalf("Checkpoint without durability: %v", err)
	}
}

// TestDurabilityTableCreatedAfterOpen: DDL after Open is redo-logged
// through the schema log and recovered, including its committed rows.
func TestDurabilityTableCreatedAfterOpen(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	extra := ankerdb.Schema{Table: "extra", Columns: []ankerdb.ColumnDef{{Name: "x", Type: ankerdb.Int64}}}
	if err := db.CreateTable(extra, 64); err != nil {
		t.Fatal(err)
	}
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Set("extra", "x", 3, 99); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	r, err := db2.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	if v, err := r.Get("extra", "x", 3); err != nil || v != 99 {
		t.Fatalf("recovered extra.x[3] = %d, %v", v, err)
	}
}

// TestDurabilityVarcharAcrossCheckpoint: VARCHAR values written before
// a checkpoint (recovered via the checkpointed dictionary + codes) and
// after it (recovered via WAL replay re-encoding the string) must both
// decode after recovery.
func TestDurabilityVarcharAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	setStr := func(row int, s string) {
		w, err := db.Begin(ankerdb.OLTP)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.SetString("t", "name", row, s); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	setStr(1, "before-ckpt")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	setStr(2, "after-ckpt")
	setStr(3, "before-ckpt") // duplicate of a checkpointed dict entry
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	r, err := db2.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	for row, want := range map[int]string{1: "before-ckpt", 2: "after-ckpt", 3: "before-ckpt"} {
		if got, err := r.GetString("t", "name", row); err != nil || got != want {
			t.Fatalf("name[%d] = %q, %v; want %q", row, got, err, want)
		}
	}
}
