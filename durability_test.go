package ankerdb_test

// Crash-recovery coverage for the durability subsystem: commit through
// the sharded group-commit pipeline, "crash" (close, or close plus a
// deliberately torn WAL tail), reopen from the durability directory,
// and assert that exactly the committed state survived — with and
// without intervening checkpoints, under every snapshot strategy and
// sync policy. Everything here goes through the public API only.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ankerdb"
)

const durRows = 256

// durCols are spread across commit shards by the FNV-1a column hash;
// with 4 shards, writes over all eight columns are guaranteed to cross
// shard boundaries.
const durNumCols = 8

func durSchema() ankerdb.Schema {
	s := ankerdb.Schema{Table: "t"}
	for i := 0; i < durNumCols; i++ {
		s.Columns = append(s.Columns, ankerdb.ColumnDef{Name: fmt.Sprintf("v%d", i), Type: ankerdb.Int64})
	}
	s.Columns = append(s.Columns, ankerdb.ColumnDef{Name: "name", Type: ankerdb.Varchar})
	return s
}

func openDurable(t *testing.T, dir string, strat ankerdb.SnapshotStrategy, opts ...ankerdb.Option) *ankerdb.DB {
	t.Helper()
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithCommitShards(4),
		ankerdb.WithDurability(dir),
		ankerdb.WithInitialSchema(durSchema(), durRows),
	}, opts...)...)
	if err != nil {
		t.Fatalf("open durable db: %v", err)
	}
	return db
}

// commitOne commits value into column col at row via one OLTP txn.
func commitOne(t *testing.T, db *ankerdb.DB, col string, row int, val int64) {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Set("t", col, row, val); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func getOne(t *testing.T, db *ankerdb.DB, col string, row int) int64 {
	t.Helper()
	r, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	v, err := r.Get("t", col, row)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDurabilityRecoveryAllStrategies is the headline crash-recovery
// scenario: N committed transactions across multiple commit shards
// (plus VARCHAR writes, an aborted transaction, and a transaction left
// open at the crash), reopened without a checkpoint, under each of the
// four snapshot strategies.
func TestDurabilityRecoveryAllStrategies(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, strat)

			const n = 40
			for i := 0; i < n; i++ {
				commitOne(t, db, fmt.Sprintf("v%d", i%durNumCols), i%durRows, int64(1000+i))
			}
			w, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.SetString("t", "name", 7, "alice"); err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}

			// Staged-but-never-committed writes must not survive: one
			// explicit abort, one transaction simply left open.
			ab, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if err := ab.Set("t", "v0", 200, -1); err != nil {
				t.Fatal(err)
			}
			if err := ab.Abort(); err != nil {
				t.Fatal(err)
			}
			open, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if err := open.Set("t", "v1", 201, -2); err != nil {
				t.Fatal(err)
			}

			before := db.Stats()
			if !before.Durable || before.WALBytes == 0 {
				t.Fatalf("expected durable stats, got %+v", before)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := openDurable(t, dir, strat)
			defer db2.Close()
			after := db2.Stats()
			if after.CompletedCommitTS != before.CompletedCommitTS {
				t.Fatalf("recovered watermark %d, want %d", after.CompletedCommitTS, before.CompletedCommitTS)
			}
			if after.RecoveryReplayedTxns != n+1 {
				t.Fatalf("replayed %d txns, want %d", after.RecoveryReplayedTxns, n+1)
			}
			for i := 0; i < n; i++ {
				// n < durRows, so every (column, row) pair is written
				// exactly once.
				want := int64(1000 + i)
				got := getOne(t, db2, fmt.Sprintf("v%d", i%durNumCols), i%durRows)
				if got != want {
					t.Fatalf("v%d[%d] = %d, want %d", i%durNumCols, i%durRows, got, want)
				}
			}
			r, err := db2.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if s, err := r.GetString("t", "name", 7); err != nil || s != "alice" {
				t.Fatalf("recovered string = %q, %v", s, err)
			}
			if err := r.Commit(); err != nil {
				t.Fatal(err)
			}
			if v := getOne(t, db2, "v0", 200); v != 0 {
				t.Fatalf("aborted write survived recovery: %d", v)
			}
			if v := getOne(t, db2, "v1", 201); v != 0 {
				t.Fatalf("uncommitted staged write survived recovery: %d", v)
			}

			// OLAP snapshot scans over recovered state work too.
			olap, err := db2.Begin(ankerdb.OLAP)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := olap.Aggregate("t", "v0", ankerdb.Sum)
			if err != nil {
				t.Fatal(err)
			}
			if err := olap.Commit(); err != nil {
				t.Fatal(err)
			}
			var want int64
			for i := 0; i < n; i += durNumCols {
				want += int64(1000 + i)
			}
			if sum != want {
				t.Fatalf("OLAP sum over recovered v0 = %d, want %d", sum, want)
			}

			// The recovered engine keeps committing: timestamps continue
			// above the recovered watermark.
			commitOne(t, db2, "v0", 0, 7777)
			if got := db2.Stats().CompletedCommitTS; got <= before.CompletedCommitTS {
				t.Fatalf("post-recovery commit TS %d did not advance past %d", got, before.CompletedCommitTS)
			}
			if getOne(t, db2, "v0", 0) != 7777 {
				t.Fatal("post-recovery commit not visible")
			}
		})
	}
}

// TestRecoveryEmptyDir: WithDurability over a fresh directory must
// behave like a fresh database with zero replays.
func TestRecoveryEmptyDir(t *testing.T) {
	db := openDurable(t, t.TempDir(), ankerdb.VMSnap)
	defer db.Close()
	st := db.Stats()
	if st.RecoveryReplayedTxns != 0 || st.CheckpointCount != 0 {
		t.Fatalf("fresh dir recovered state: %+v", st)
	}
	commitOne(t, db, "v0", 1, 42)
	if getOne(t, db, "v0", 1) != 42 {
		t.Fatal("commit in fresh durable db not visible")
	}
}

// TestDurabilityCheckpointRecovery: commits below the checkpoint come
// back from the checkpoint file, commits above it from WAL replay.
func TestDurabilityCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	for i := 0; i < 20; i++ {
		commitOne(t, db, fmt.Sprintf("v%d", i%durNumCols), i, int64(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := db.Stats().CheckpointCount; got != 1 {
		t.Fatalf("CheckpointCount = %d, want 1", got)
	}
	for i := 20; i < 30; i++ {
		commitOne(t, db, fmt.Sprintf("v%d", i%durNumCols), i, int64(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	// The default refresh policy rotates the pinned generation before
	// the checkpoint, so its timestamp covers all 20 pre-checkpoint
	// commits: only the 10 later ones replay from the WAL.
	if got := db2.Stats().RecoveryReplayedTxns; got != 10 {
		t.Fatalf("replayed %d txns, want 10", got)
	}
	for i := 0; i < 30; i++ {
		if got := getOne(t, db2, fmt.Sprintf("v%d", i%durNumCols), i); got != int64(i) {
			t.Fatalf("row %d = %d, want %d", i, got, i)
		}
	}
}

// TestRecoveryCheckpointNoTrailingWAL: a checkpoint immediately before
// the crash leaves nothing to replay.
func TestRecoveryCheckpointNoTrailingWAL(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	for i := 0; i < 10; i++ {
		commitOne(t, db, "v2", i, int64(100+i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	if got := db2.Stats().RecoveryReplayedTxns; got != 0 {
		t.Fatalf("replayed %d txns after clean checkpoint, want 0", got)
	}
	for i := 0; i < 10; i++ {
		if got := getOne(t, db2, "v2", i); got != int64(100+i) {
			t.Fatalf("v2[%d] = %d, want %d", i, got, 100+i)
		}
	}
}

// tearNewestSegment truncates the newest non-empty WAL segment by a
// few bytes, simulating a crash mid-append.
func tearNewestSegment(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to tear: %v, %v", segs, err)
	}
	newest := segs[len(segs)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 4 {
		t.Fatalf("segment %s too small to tear (%d bytes)", newest, fi.Size())
	}
	if err := os.Truncate(newest, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryTornTail: a torn final record loses exactly the last
// commit; everything before it replays cleanly.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	// One shard: all records land in one segment, so the torn record
	// is deterministically the newest commit.
	db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	const n = 6
	for i := 0; i < n; i++ {
		commitOne(t, db, "v0", i, int64(100+i))
	}
	before := db.Stats().CompletedCommitTS
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestSegment(t, dir)

	db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	defer db2.Close()
	st := db2.Stats()
	if st.RecoveryReplayedTxns != n-1 {
		t.Fatalf("replayed %d txns, want %d", st.RecoveryReplayedTxns, n-1)
	}
	if st.CompletedCommitTS != before-1 {
		t.Fatalf("recovered watermark %d, want %d", st.CompletedCommitTS, before-1)
	}
	for i := 0; i < n-1; i++ {
		if got := getOne(t, db2, "v0", i); got != int64(100+i) {
			t.Fatalf("v0[%d] = %d, want %d", i, got, 100+i)
		}
	}
	if got := getOne(t, db2, "v0", n-1); got != 0 {
		t.Fatalf("torn commit partially survived: v0[%d] = %d", n-1, got)
	}
}

// TestRecoveryCheckpointPlusTornTail combines both: checkpointed
// history intact, post-checkpoint WAL torn at its last record.
func TestRecoveryCheckpointPlusTornTail(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	for i := 0; i < 10; i++ {
		commitOne(t, db, "v0", i, int64(100+i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		commitOne(t, db, "v0", i, int64(100+i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestSegment(t, dir)

	db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	defer db2.Close()
	if got := db2.Stats().RecoveryReplayedTxns; got != 4 {
		t.Fatalf("replayed %d txns, want 4", got)
	}
	for i := 0; i < 14; i++ {
		if got := getOne(t, db2, "v0", i); got != int64(100+i) {
			t.Fatalf("v0[%d] = %d, want %d", i, got, 100+i)
		}
	}
	if got := getOne(t, db2, "v0", 14); got != 0 {
		t.Fatalf("torn commit partially survived: v0[14] = %d", got)
	}
}

// TestDurabilityCrossShardCommit: one transaction spanning every
// column (hence several commit shards) must recover atomically.
func TestDurabilityCrossShardCommit(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < durNumCols; i++ {
		if err := w.Set("t", fmt.Sprintf("v%d", i), 5, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().CommitShardConflicts; got == 0 {
		t.Fatal("expected a cross-shard commit")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	for i := 0; i < durNumCols; i++ {
		if got := getOne(t, db2, fmt.Sprintf("v%d", i), 5); got != int64(i+1) {
			t.Fatalf("cross-shard write v%d[5] = %d, want %d", i, got, i+1)
		}
	}
}

// TestDurabilitySyncPolicies: all three policies recover after a clean
// close (Close syncs even under SyncNone).
func TestDurabilitySyncPolicies(t *testing.T) {
	for _, p := range []ankerdb.SyncPolicy{ankerdb.SyncAlways, ankerdb.SyncGroupOnly, ankerdb.SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithSyncPolicy(p))
			commitOne(t, db, "v3", 9, 314)
			if got := db.Stats().SyncPolicy; got != p.String() {
				t.Fatalf("Stats().SyncPolicy = %q, want %q", got, p.String())
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithSyncPolicy(p))
			defer db2.Close()
			if got := getOne(t, db2, "v3", 9); got != 314 {
				t.Fatalf("recovered v3[9] = %d, want 314", got)
			}
		})
	}
}

// TestDurabilityOffByDefault: without WithDurability nothing touches
// disk and Checkpoint refuses.
func TestDurabilityOffByDefault(t *testing.T) {
	db, err := ankerdb.Open(
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(durSchema(), durRows),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	commitOne(t, db, "v0", 0, 1)
	st := db.Stats()
	if st.Durable || st.WALBytes != 0 || st.FsyncCount != 0 {
		t.Fatalf("in-memory db reports durability: %+v", st)
	}
	if err := db.Checkpoint(); !errors.Is(err, ankerdb.ErrNoDurability) {
		t.Fatalf("Checkpoint without durability: %v", err)
	}
}

// TestDurabilityTableCreatedAfterOpen: DDL after Open is redo-logged
// through the schema log and recovered, including its committed rows.
func TestDurabilityTableCreatedAfterOpen(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	extra := ankerdb.Schema{Table: "extra", Columns: []ankerdb.ColumnDef{{Name: "x", Type: ankerdb.Int64}}}
	if err := db.CreateTable(extra, 64); err != nil {
		t.Fatal(err)
	}
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Set("extra", "x", 3, 99); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	r, err := db2.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	if v, err := r.Get("extra", "x", 3); err != nil || v != 99 {
		t.Fatalf("recovered extra.x[3] = %d, %v", v, err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

// TestBulkLoadCrashRecovery is the WAL-logged bulk-load headline: Load
// and LoadStrings followed by a crash WITHOUT any checkpoint must
// recover every loaded row — and a committed write over a loaded row
// must win, because loads are the state at time zero.
func TestBulkLoadCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	vals := make([]int64, durRows)
	for i := range vals {
		vals[i] = int64(5000 + i)
	}
	if err := db.Load("t", "v0", vals); err != nil {
		t.Fatalf("load: %v", err)
	}
	strs := make([]string, durRows)
	for i := range strs {
		strs[i] = fmt.Sprintf("s-%d", i%17)
	}
	if err := db.LoadStrings("t", "name", strs); err != nil {
		t.Fatalf("load strings: %v", err)
	}
	// A commit over a loaded row: time-zero load data must lose to it.
	commitOne(t, db, "v0", 3, -33)
	if st := db.Stats(); st.WALRecords == 0 {
		t.Fatalf("bulk load appended no WAL records: %+v", st)
	}
	if err := db.Close(); err != nil { // no checkpoint anywhere
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	st := db2.Stats()
	if st.RecoveryReplayedLoads == 0 {
		t.Fatalf("no bulk-load records replayed: %+v", st)
	}
	for i := 0; i < durRows; i++ {
		want := int64(5000 + i)
		if i == 3 {
			want = -33 // the committed write wins over the load
		}
		if got := getOne(t, db2, "v0", i); got != want {
			t.Fatalf("v0[%d] = %d, want %d", i, got, want)
		}
	}
	r, err := db2.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	for _, i := range []int{0, 7, durRows - 1} {
		if got, err := r.GetString("t", "name", i); err != nil || got != strs[i] {
			t.Fatalf("name[%d] = %q, %v; want %q", i, got, err, strs[i])
		}
	}
}

// TestBulkLoadThenTornTail: a bulk-load record followed by a torn
// commit tail loses exactly the torn commit — the load itself (earlier
// in the same segment series) replays intact.
func TestBulkLoadThenTornTail(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	vals := make([]int64, durRows)
	for i := range vals {
		vals[i] = int64(9000 + i)
	}
	if err := db.Load("t", "v0", vals); err != nil {
		t.Fatal(err)
	}
	commitOne(t, db, "v0", 1, 11)
	commitOne(t, db, "v0", 2, 22) // this one gets torn
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestSegment(t, dir)

	db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	defer db2.Close()
	st := db2.Stats()
	if st.RecoveryReplayedLoads == 0 || st.RecoveryReplayedTxns != 1 {
		t.Fatalf("replayed loads=%d txns=%d, want >0 and 1", st.RecoveryReplayedLoads, st.RecoveryReplayedTxns)
	}
	if got := getOne(t, db2, "v0", 1); got != 11 {
		t.Fatalf("v0[1] = %d, want 11", got)
	}
	if got := getOne(t, db2, "v0", 2); got != 9002 {
		t.Fatalf("v0[2] = %d, want the loaded 9002 (torn commit must not survive)", got)
	}
	if got := getOne(t, db2, "v0", 0); got != 9000 {
		t.Fatalf("v0[0] = %d, want 9000", got)
	}
}

// TestBulkLoadAcrossCheckpoint: loaded rows travel through a
// checkpoint (which truncates their WAL records) like committed ones.
func TestBulkLoadAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	vals := make([]int64, durRows)
	for i := range vals {
		vals[i] = int64(100 + i)
	}
	if err := db.Load("t", "v4", vals); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitOne(t, db, "v4", 0, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	if got := getOne(t, db2, "v4", 0); got != 1 {
		t.Fatalf("v4[0] = %d, want 1", got)
	}
	for i := 1; i < durRows; i++ {
		if got := getOne(t, db2, "v4", i); got != int64(100+i) {
			t.Fatalf("v4[%d] = %d, want %d", i, got, 100+i)
		}
	}
}

// TestBulkLoadAfterSnapshotPinThenCheckpoint is the regression test
// for a data-loss bug: an OLAP pin caches a column snapshot in the
// current generation; a bulk load then fills the column; a checkpoint
// reusing that generation would persist the PRE-load snapshot while
// truncating the load's (timestamp-less) WAL records — losing the
// load. Checkpoints must pin a generation created after they start.
func TestBulkLoadAfterSnapshotPinThenCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	// Cache a pre-load snapshot of v0 in the current generation. No
	// commits happen afterwards, so nothing marks the generation stale.
	olap, err := db.Begin(ankerdb.OLAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := olap.Get("t", "v0", 0); err != nil {
		t.Fatal(err)
	}
	if err := olap.Commit(); err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, durRows)
	for i := range vals {
		vals[i] = int64(4000 + i)
	}
	if err := db.Load("t", "v0", vals); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	for _, i := range []int{0, 1, durRows - 1} {
		if got := getOne(t, db2, "v0", i); got != int64(4000+i) {
			t.Fatalf("v0[%d] = %d, want %d — checkpoint persisted a stale pre-load snapshot", i, got, 4000+i)
		}
	}
}

// TestRecoveredTailCountsTowardAutoCheckpoint: a replayed WAL tail
// seeds the growth counters, so a restart with a past-threshold tail
// checkpoints it away instead of re-replaying it on every Open.
func TestRecoveredTailCountsTowardAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap) // no auto-checkpointing
	const n = 60
	for i := 0; i < n; i++ {
		commitOne(t, db, "v0", i%durRows, int64(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithAutoCheckpoint(1024, 0))
	if got := db2.Stats().RecoveryReplayedTxns; got != n {
		t.Fatalf("replayed %d, want %d", got, n)
	}
	// The tail alone crosses the byte threshold: no new commits needed.
	waitFor(t, 5*time.Second, func() bool {
		return db2.Stats().AutoCheckpointCount >= 1
	}, "checkpoint of the recovered tail")
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithAutoCheckpoint(1024, 0))
	defer db3.Close()
	if got := db3.Stats().RecoveryReplayedTxns; got != 0 {
		t.Fatalf("tail re-replayed after its checkpoint: %d txns", got)
	}
	for i := 0; i < n; i++ { // n < durRows: each row written once
		if got := getOne(t, db3, "v0", i); got != int64(i) {
			t.Fatalf("v0[%d] = %d, want %d", i, got, i)
		}
	}
}

// TestAutoCheckpointFiresFromWALGrowth is the acceptance scenario: with
// WithAutoCheckpoint configured, commit volume alone — no manual
// Checkpoint() call anywhere — must produce a checkpoint, and recovery
// must then replay only the post-checkpoint tail.
func TestAutoCheckpointFiresFromWALGrowth(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap,
		ankerdb.WithAutoCheckpoint(4096, 0))
	const n = 200
	for i := 0; i < n; i++ {
		commitOne(t, db, fmt.Sprintf("v%d", i%durNumCols), i%durRows, int64(i))
	}
	waitFor(t, 5*time.Second, func() bool {
		return db.Stats().AutoCheckpointCount >= 1
	}, "scheduler checkpoint")
	st := db.Stats()
	if st.CheckpointCount < st.AutoCheckpointCount {
		t.Fatalf("CheckpointCount %d < AutoCheckpointCount %d", st.CheckpointCount, st.AutoCheckpointCount)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	st2 := db2.Stats()
	if st2.RecoveryReplayedTxns >= n {
		t.Fatalf("replayed all %d txns — the auto checkpoint covered nothing", st2.RecoveryReplayedTxns)
	}
	for i := n - durNumCols; i < n; i++ {
		if got := getOne(t, db2, fmt.Sprintf("v%d", i%durNumCols), i%durRows); got != int64(i) {
			t.Fatalf("v%d[%d] = %d, want %d", i%durNumCols, i%durRows, got, i)
		}
	}
}

// TestAutoCheckpointRecordThreshold: the record-count trigger fires
// independently of the byte trigger.
func TestAutoCheckpointRecordThreshold(t *testing.T) {
	db := openDurable(t, t.TempDir(), ankerdb.VMSnap,
		ankerdb.WithAutoCheckpoint(0, 16))
	defer db.Close()
	for i := 0; i < 40; i++ {
		commitOne(t, db, "v0", i%durRows, int64(i))
	}
	waitFor(t, 5*time.Second, func() bool {
		return db.Stats().AutoCheckpointCount >= 1
	}, "record-count-triggered checkpoint")
}

// TestAutoCheckpointInterval: the max-interval timer checkpoints a slow
// trickle that never crosses a size threshold.
func TestAutoCheckpointInterval(t *testing.T) {
	db := openDurable(t, t.TempDir(), ankerdb.VMSnap,
		ankerdb.WithAutoCheckpoint(1<<40, 1<<30), // size triggers unreachable
		ankerdb.WithAutoCheckpointInterval(10*time.Millisecond))
	defer db.Close()
	commitOne(t, db, "v0", 0, 1)
	waitFor(t, 5*time.Second, func() bool {
		return db.Stats().AutoCheckpointCount >= 1
	}, "interval-triggered checkpoint")
	// With nothing new appended the timer must go idle again.
	n := db.Stats().CheckpointCount
	time.Sleep(50 * time.Millisecond)
	if got := db.Stats().CheckpointCount; got != n {
		t.Fatalf("idle timer kept checkpointing: %d -> %d", n, got)
	}
}

// TestAutoCheckpointConcurrentWriters: the scheduler checkpoints while
// writers keep committing, under every snapshot strategy (run with
// -race). Manual checkpoints interleave through the same mutex.
func TestAutoCheckpointConcurrentWriters(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, strat,
				ankerdb.WithAutoCheckpoint(2048, 0),
				ankerdb.WithSyncPolicy(ankerdb.SyncNone))
			var stop atomic.Bool
			var commits atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						tx, err := db.Begin(ankerdb.OLTP)
						if err != nil {
							return
						}
						if err := tx.Set("t", fmt.Sprintf("v%d", w%durNumCols), (w*31+i)%durRows, int64(i)); err != nil {
							return
						}
						if tx.Commit() == nil {
							commits.Add(1)
						}
					}
				}(w)
			}
			waitFor(t, 10*time.Second, func() bool {
				return db.Stats().AutoCheckpointCount >= 2
			}, "two scheduled checkpoints under load")
			// A manual checkpoint coordinates with the scheduler.
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("manual checkpoint alongside scheduler: %v", err)
			}
			stop.Store(true)
			wg.Wait()
			total := commits.Load()
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := openDurable(t, dir, strat)
			defer db2.Close()
			st := db2.Stats()
			if st.RecoveryReplayedTxns > total {
				t.Fatalf("replayed %d txns, only %d committed", st.RecoveryReplayedTxns, total)
			}
			commitOne(t, db2, "v0", 0, 424242)
			if got := getOne(t, db2, "v0", 0); got != 424242 {
				t.Fatalf("post-recovery commit = %d", got)
			}
		})
	}
}

// TestCrashMidCheckpointLeftoverTmp: a checkpoint.tmp orphaned by a
// crash mid-checkpoint must be ignored by recovery (the previous
// durable state stays authoritative) and cleaned up by Open.
func TestCrashMidCheckpointLeftoverTmp(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	for i := 0; i < 10; i++ {
		commitOne(t, db, "v0", i, int64(700+i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitOne(t, db, "v0", 10, 710)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint: a half-written temporary.
	tmp := filepath.Join(dir, "checkpoint.tmp")
	if err := os.WriteFile(tmp, []byte("ANKCKPT1 half written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("orphaned checkpoint.tmp survived Open: %v", err)
	}
	for i := 0; i <= 10; i++ {
		if got := getOne(t, db2, "v0", i); got != int64(700+i) {
			t.Fatalf("v0[%d] = %d, want %d", i, got, 700+i)
		}
	}
}

// TestRecoveryStreamingMemory is the O(chunk) restart-memory
// acceptance: recovering a database whose checkpoint is >= 64 MiB must
// hold only chunk-sized transient buffers, reported via
// RecoveryPeakBytes — orders of magnitude below the checkpoint size
// the legacy slurping reader would have buffered.
func TestRecoveryStreamingMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("64 MiB checkpoint build in -short mode")
	}
	const (
		rows = 1 << 19 // x 8 columns x (data+wts) x 8 bytes = 64 MiB
		cols = 8
	)
	schema := ankerdb.Schema{Table: "big"}
	for i := 0; i < cols; i++ {
		schema.Columns = append(schema.Columns, ankerdb.ColumnDef{Name: fmt.Sprintf("c%d", i), Type: ankerdb.Int64})
	}
	dir := t.TempDir()
	open := func() *ankerdb.DB {
		db, err := ankerdb.Open(
			ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
			ankerdb.WithCostModel(ankerdb.ZeroCost),
			ankerdb.WithDurability(dir),
			ankerdb.WithInitialSchema(schema, rows))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	db := open()
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i)
	}
	for i := 0; i < cols; i++ {
		if err := db.Load("big", fmt.Sprintf("c%d", i), vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("checkpoints: %v, %v", ckpts, err)
	}
	fi, err := os.Stat(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 64<<20 {
		t.Fatalf("checkpoint only %d bytes, want >= 64 MiB", fi.Size())
	}

	db2 := open()
	defer db2.Close()
	st := db2.Stats()
	if st.RecoveryPeakBytes == 0 {
		t.Fatal("RecoveryPeakBytes not tracked")
	}
	if st.RecoveryPeakBytes > 1<<20 {
		t.Fatalf("recovery held %d transient bytes for a %d-byte checkpoint — not O(chunk)",
			st.RecoveryPeakBytes, fi.Size())
	}
	for _, row := range []int{0, 12345, rows - 1} {
		r, err := db2.Begin(ankerdb.OLTP)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := r.Get("big", "c7", row); err != nil || v != int64(row) {
			t.Fatalf("c7[%d] = %d, %v", row, v, err)
		}
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCommitMaxWait: the latency/throughput knob is surfaced in
// Stats, held batches still commit durably, and recovery sees them.
func TestGroupCommitMaxWait(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap,
		ankerdb.WithGroupCommitMaxWait(time.Millisecond))
	if got := db.Stats().GroupCommitMaxWait; got != time.Millisecond {
		t.Fatalf("Stats().GroupCommitMaxWait = %v, want 1ms", got)
	}
	var wg sync.WaitGroup
	var commits atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				tx, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					return
				}
				if err := tx.Set("t", "v0", (w*8+i)%durRows, int64(w*100+i)); err != nil {
					return
				}
				if tx.Commit() == nil {
					commits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if commits.Load() != 32 {
		t.Fatalf("committed %d of 32 under max-wait batching", commits.Load())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	if got := db2.Stats().RecoveryReplayedTxns; got != 32 {
		t.Fatalf("recovered %d txns, want 32", got)
	}
}

// TestDurabilityVarcharAcrossCheckpoint: VARCHAR values written before
// a checkpoint (recovered via the checkpointed dictionary + codes) and
// after it (recovered via WAL replay re-encoding the string) must both
// decode after recovery.
func TestDurabilityVarcharAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	setStr := func(row int, s string) {
		w, err := db.Begin(ankerdb.OLTP)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.SetString("t", "name", row, s); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	setStr(1, "before-ckpt")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	setStr(2, "after-ckpt")
	setStr(3, "before-ckpt") // duplicate of a checkpointed dict entry
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	r, err := db2.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	for row, want := range map[int]string{1: "before-ckpt", 2: "after-ckpt", 3: "before-ckpt"} {
		if got, err := r.GetString("t", "name", row); err != nil || got != want {
			t.Fatalf("name[%d] = %q, %v; want %q", row, got, err, want)
		}
	}
}
