# Development entry points. CI runs the same commands, so a green
# `make test bench-gate` locally is a green PR (modulo runner speed —
# see bench-baseline).

GO ?= go

# The exact workload the bench-regression gate compares: keep the
# baseline and the gate on identical arguments or the configurations
# will not match up.
BENCH_GATE_ARGS := -quick -bench commit -format json

.PHONY: build test test-race bench bench-baseline bench-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/ankerbench -quick

# bench-baseline refreshes the committed bench-regression baseline.
# Absolute throughput is machine-dependent: refresh it on the CI runner
# class (or accept that a slower baseline machine weakens the gate and
# a faster one tightens it), then commit bench/baseline.json on main.
bench-baseline:
	$(GO) run ./cmd/ankerbench $(BENCH_GATE_ARGS) > bench/baseline.json

# bench-gate runs the same workload and fails on >25% commit-throughput
# regression against the committed baseline (mean over the writer
# sweep, per shard configuration).
bench-gate:
	$(GO) run ./cmd/ankerbench $(BENCH_GATE_ARGS) > bench-current.json
	$(GO) run ./cmd/benchgate -baseline bench/baseline.json -current bench-current.json
