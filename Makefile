# Development entry points. CI runs the same commands, so a green
# `make test bench-gate` locally is a green PR (modulo runner speed —
# see bench-baseline).

GO ?= go

# The exact workload the bench-regression gate compares: keep the
# baseline and the gate on identical arguments or the configurations
# will not match up. The grow, query and index sweeps emit their
# throughput as commits_per_sec, so one gate metric covers every bench.
BENCH_GATE_ARGS := -quick -bench commit,grow,query,index -format json

.PHONY: build test test-race bench bench-baseline bench-gate cover cover-baseline metrics-smoke fault-sweep repl-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/ankerbench -quick

# bench-baseline refreshes the committed bench-regression baseline.
# Absolute throughput is machine-dependent: refresh it on the CI runner
# class (or accept that a slower baseline machine weakens the gate and
# a faster one tightens it), then commit bench/baseline.json on main.
bench-baseline:
	$(GO) run ./cmd/ankerbench $(BENCH_GATE_ARGS) > bench/baseline.json

# bench-gate runs the same workload and fails on >25% commit-throughput
# regression against the committed baseline (mean over the writer
# sweep, per shard configuration).
bench-gate:
	$(GO) run ./cmd/ankerbench $(BENCH_GATE_ARGS) > bench-current.json
	$(GO) run ./cmd/benchgate -baseline bench/baseline.json -current bench-current.json

# fault-sweep widens the deterministic crash-recovery battery: the
# seeded fault-schedule matrix (every snapshot strategy × crash point ×
# torn/short/lying-fsync mode) plus the per-operation crash sweeps over
# DropTable and Truncate. Every schedule derives from its seed, so a
# failure log names a (strategy, seed) pair that replays the crash
# byte-for-byte — paste the seed back into the test to debug.
FAULT_SWEEP_SEEDS ?= 25
fault-sweep:
	FAULT_SWEEP_SEEDS=$(FAULT_SWEEP_SEEDS) $(GO) test -run \
	  'TestCrashRecoveryMatrix|TestFsyncLieRecoveryMatrix|TestSeededScheduleReproducible|TestCrashMid' \
	  -v -timeout 30m .

# repl-smoke runs the replication end-to-end smoke: a durable serving
# primary plus two WAL-streaming read replicas on loopback ports, a
# seeded write workload with a mid-run index build, then asserts
# bounded replica lag, read equivalence (embedded scans and a remote
# session through a replica), and a clean hang-free shutdown.
repl-smoke:
	$(GO) run ./cmd/replsmoke

# metrics-smoke starts the observability endpoint under a mixed
# workload, scrapes /metrics over HTTP mid-stress and at quiescence,
# and fails unless every key ankerdb_* series is present. Writes the
# final scrape and a flight-recorder dump beside the repo root.
metrics-smoke:
	$(GO) run ./cmd/metricssmoke -dur 2s -out metrics-dump.txt -trace trace-dump.txt

# cover runs the test suite with coverage and writes cover.out plus the
# HTML report CI uploads as an artifact.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -html=cover.out -o coverage.html

# cover-baseline refreshes the committed coverage gate baseline: total
# statement coverage in percent. CI fails when a push drops more than
# 2 points below this number.
cover-baseline: cover
	$(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}' > coverage-baseline.txt
	cat coverage-baseline.txt
