package ankerdb

// In-package visibility-log tests: entry accumulation under committed
// row ops, O(log n) count answers at historical timestamps, and
// Vacuum's compaction folding dead entries into the base.

import "testing"

func TestVisLogCountAndCompaction(t *testing.T) {
	db, err := Open(
		WithSnapshotStrategy(Physical),
		WithCostModel(ZeroCost),
		WithInitialSchema(internalSchema(1), 16),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab := db.tables["t"]

	if n := tab.visCountAt(db.oracle.Completed()); n != 16 {
		t.Fatalf("initial count = %d, want 16", n)
	}

	// Commit inserts and deletes, recording the timestamp after each
	// commit so historical counts can be checked exactly.
	type point struct {
		ts   uint64
		want int64
	}
	var history []point
	commitRowOp := func(insert int, del []int) {
		w, err := db.Begin(OLTP)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < insert; i++ {
			if _, err := w.Insert("t", map[string]any{"v0": int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range del {
			if err := w.Delete("t", r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	want := int64(16)
	for i := 0; i < 6; i++ {
		commitRowOp(2, nil)
		want += 2
		history = append(history, point{db.oracle.Completed(), want})
	}
	commitRowOp(0, []int{0, 1, 2})
	want -= 3
	history = append(history, point{db.oracle.Completed(), want})

	if tab.visLogLen() == 0 {
		t.Fatal("no visibility-log entries after committed row ops")
	}
	for _, p := range history {
		if n := tab.visCountAt(p.ts); n != p.want {
			t.Fatalf("count at ts %d = %d, want %d", p.ts, n, p.want)
		}
	}

	// With no readers pinned, Vacuum's floor covers every entry: the
	// whole history folds into the base and counts stay exact.
	db.Vacuum()
	if l := tab.visLogLen(); l != 0 {
		t.Fatalf("visLogLen after vacuum = %d, want 0", l)
	}
	if n := tab.visCountAt(db.oracle.Completed()); n != want {
		t.Fatalf("count after compaction = %d, want %d", n, want)
	}

	// Entries committed after the compaction append on the fresh base.
	commitRowOp(1, nil)
	want++
	if n := tab.visCountAt(db.oracle.Completed()); n != want {
		t.Fatalf("count after post-compaction insert = %d, want %d", n, want)
	}
}
