package ankerdb_test

// Secondary-index acceptance: schema-declared and online-built indexes
// must answer Lookup/Filter/query probes with EXACTLY what the
// visibility-filtered scan path returns — under churn (Insert/Delete/
// Set), across every snapshot strategy, after crash recovery (torn
// tail included) — and absence reads above the table's capacity must
// conflict with concurrent growth into that range.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ankerdb"
)

// idxSchema declares the index test table: hash on uid, ordered on
// score, an unindexed payload.
func idxSchema() ankerdb.Schema {
	return ankerdb.NewSchema("u").
		Int64("uid").Indexed(ankerdb.Hash).
		Int64("score").Indexed(ankerdb.Ordered).
		Int64("pad").
		Build()
}

const idxRows = 512

func openIndexDB(t *testing.T, strat ankerdb.SnapshotStrategy, opts ...ankerdb.Option) *ankerdb.DB {
	t.Helper()
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(idxSchema(), idxRows),
	}, opts...)...)
	if err != nil {
		t.Fatalf("Open(%s): %v", strat, err)
	}
	return db
}

// seedIndexTable gives the initial rows distinct uid/score values.
func seedIndexTable(t *testing.T, db *ankerdb.DB) {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < idxRows; row++ {
		if err := w.Set("u", "uid", row, int64(row%40)); err != nil {
			t.Fatal(err)
		}
		if err := w.Set("u", "score", row, int64(row%100)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, w)
}

// scanGroundTruth computes the rows of tab whose col value lies in
// [lo, hi] through Get alone — no Filter, no index — as the oracle the
// index path is compared against.
func scanGroundTruth(t *testing.T, txn *ankerdb.Txn, col string, lo, hi int64) []int {
	t.Helper()
	rows := []int{}
	for row := 0; ; row++ {
		v, err := txn.Get("u", col, row)
		if err != nil {
			if errors.Is(err, ankerdb.ErrRowNotVisible) {
				continue
			}
			if errors.Is(err, ankerdb.ErrRowRange) {
				return rows
			}
			t.Fatalf("Get(%s, %d): %v", col, row, err)
		}
		if v >= lo && v <= hi {
			rows = append(rows, row)
		}
	}
}

func eqRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSchemaBuilderDeclaresIndexes: the fluent builder and the literal
// form produce the same schema, and declared indexes come up live.
func TestSchemaBuilderDeclaresIndexes(t *testing.T) {
	built := idxSchema()
	literal := ankerdb.Schema{Table: "u", Columns: []ankerdb.ColumnDef{
		{Name: "uid", Type: ankerdb.Int64, Index: ankerdb.Hash},
		{Name: "score", Type: ankerdb.Int64, Index: ankerdb.Ordered},
		{Name: "pad", Type: ankerdb.Int64},
	}}
	if fmt.Sprint(built) != fmt.Sprint(literal) {
		t.Fatalf("builder schema %v != literal %v", built, literal)
	}
	db := openIndexDB(t, ankerdb.Physical)
	defer db.Close()
	if n := db.Stats().IndexEntries; n != 2*idxRows {
		t.Fatalf("IndexEntries = %d, want %d (two indexes over %d rows)", n, 2*idxRows, idxRows)
	}
}

// TestIndexEquivalenceUnderChurn is the acceptance bar: while writers
// insert, delete and update, index-backed equality and range reads
// must equal the scan path — byte for byte, on the same snapshot —
// under every strategy.
func TestIndexEquivalenceUnderChurn(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openIndexDB(t, strat)
			defer db.Close()
			seedIndexTable(t, db)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rnd := uint64(g + 1)
					var mine []int
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						rnd = rnd*6364136223846793005 + 1442695040888963407
						w, err := db.Begin(ankerdb.OLTP)
						if err != nil {
							return
						}
						switch {
						case i%3 == 0:
							row, err := w.Insert("u", map[string]any{
								"uid": int64(rnd % 40), "score": int64(rnd % 100),
							})
							if err == nil && w.Commit() == nil {
								mine = append(mine, row)
							} else {
								w.Abort()
							}
						case i%3 == 1 && len(mine) > 0:
							row := mine[len(mine)-1]
							if w.Delete("u", row) == nil && w.Commit() == nil {
								mine = mine[:len(mine)-1]
							} else {
								w.Abort()
							}
						default:
							row := int(rnd % idxRows)
							if w.Set("u", "score", row, int64(rnd%100)) != nil || w.Commit() != nil {
								w.Abort()
							}
						}
					}
				}(g)
			}

			for iter := 0; iter < 30; iter++ {
				r, err := db.Begin(ankerdb.OLAP)
				if err != nil {
					t.Fatal(err)
				}
				uid := int64(iter % 40)
				q := func(force bool) []int64 {
					b := r.Query("u").Where(ankerdb.Eq("uid", uid)).Select(ankerdb.RowID)
					if force {
						b = b.WithoutPruning()
					}
					res, err := b.Run()
					if err != nil {
						t.Fatal(err)
					}
					return res.Ints(0)
				}
				viaIndex, viaScan := q(false), q(true)
				if fmt.Sprint(viaIndex) != fmt.Sprint(viaScan) {
					t.Fatalf("uid=%d: index %v != scan %v", uid, viaIndex, viaScan)
				}
				lo, hi := int64(iter%90), int64(iter%90+9)
				b := r.Query("u").Where(ankerdb.Between("score", lo, hi)).Select(ankerdb.RowID)
				res1, err := b.Run()
				if err != nil {
					t.Fatal(err)
				}
				res2, err := r.Query("u").Where(ankerdb.Between("score", lo, hi)).
					Select(ankerdb.RowID).WithoutPruning().Run()
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(res1.Ints(0)) != fmt.Sprint(res2.Ints(0)) {
					t.Fatalf("score [%d,%d]: index %v != scan %v", lo, hi, res1.Ints(0), res2.Ints(0))
				}
				_ = r.Commit()
			}
			close(stop)
			wg.Wait()

			if st := db.Stats(); st.IndexBackedQueries == 0 || st.IndexProbes == 0 {
				t.Fatalf("index never engaged: %+v probes, %d backed queries", st.IndexProbes, st.IndexBackedQueries)
			}
		})
	}
}

// TestLookupOLTPStagedOverlay: an OLTP Lookup sees the transaction's
// own staged writes — Sets moving rows into and out of the probed
// value, staged inserts, staged deletes — layered over the committed
// index.
func TestLookupOLTPStagedOverlay(t *testing.T) {
	db := openIndexDB(t, ankerdb.VMSnap)
	defer db.Close()
	seedIndexTable(t, db)

	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	// Committed state: uid == 7 at rows 7, 47, 87, ...
	if err := w.Set("u", "uid", 7, 999); err != nil { // move row 7 out
		t.Fatal(err)
	}
	if err := w.Set("u", "uid", 0, 7); err != nil { // move row 0 in
		t.Fatal(err)
	}
	if err := w.Delete("u", 47); err != nil { // delete an in-range row
		t.Fatal(err)
	}
	ins, err := w.Insert("u", map[string]any{"uid": int64(7)}) // staged insert in range
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.Lookup("u", "uid", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := scanGroundTruth(t, w, "uid", 7, 7)
	if !eqRows(got, want) {
		t.Fatalf("Lookup overlay mismatch: got %v want %v", got, want)
	}
	found := false
	for _, r := range got {
		if r == ins {
			found = true
		}
		if r == 7 || r == 47 {
			t.Fatalf("row %d should have left the lookup set: %v", r, got)
		}
	}
	if !found {
		t.Fatalf("staged insert %d missing from %v", ins, got)
	}
}

// TestLookupPhantomConflict: a Lookup records its equality as a
// precision-locking predicate, so a concurrent commit writing the
// probed value aborts the looker.
func TestLookupPhantomConflict(t *testing.T) {
	db := openIndexDB(t, ankerdb.Physical)
	defer db.Close()
	seedIndexTable(t, db)

	a, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lookup("u", "uid", 7); err != nil {
		t.Fatal(err)
	}
	set(t, db, "u", "uid", 200, 7) // a phantom enters the probed value
	if err := a.Set("u", "pad", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("Commit after phantom = %v, want ErrConflict", err)
	}
}

// TestCreateDropIndexOnline: an index built online over live data
// serves the same rows the scan does; dropping it falls back cleanly;
// the DDL errors are well-typed.
func TestCreateDropIndexOnline(t *testing.T) {
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.Rewired),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(ankerdb.Schema{Table: "u", Columns: []ankerdb.ColumnDef{
			{Name: "uid", Type: ankerdb.Int64},
			{Name: "score", Type: ankerdb.Int64},
			{Name: "pad", Type: ankerdb.Int64},
		}}, idxRows),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedIndexTable(t, db)
	insertRow := func(uid int64) {
		w, _ := db.Begin(ankerdb.OLTP)
		if _, err := w.Insert("u", map[string]any{"uid": uid}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, w)
	}
	insertRow(7)

	if err := db.CreateIndex("u", "uid", ankerdb.IndexKind(99)); !errors.Is(err, ankerdb.ErrIndexKind) {
		t.Fatalf("bad kind: %v", err)
	}
	if err := db.CreateIndex("u", "uid", ankerdb.Hash); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("u", "uid", ankerdb.Ordered); !errors.Is(err, ankerdb.ErrIndexExists) {
		t.Fatalf("double create: %v", err)
	}
	insertRow(7) // maintained after the online build

	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.Lookup("u", "uid", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := scanGroundTruth(t, w, "uid", 7, 7)
	if !eqRows(got, want) {
		t.Fatalf("online-built index: got %v want %v", got, want)
	}
	w.Abort()
	if db.Stats().IndexProbes == 0 {
		t.Fatal("lookup did not probe the online-built index")
	}

	if err := db.DropIndex("u", "uid"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("u", "uid"); !errors.Is(err, ankerdb.ErrNoIndex) {
		t.Fatalf("double drop: %v", err)
	}
	w2, _ := db.Begin(ankerdb.OLTP)
	got2, err := w2.Lookup("u", "uid", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !eqRows(got2, want) {
		t.Fatalf("post-drop scan fallback: got %v want %v", got2, want)
	}
	w2.Abort()
}

// TestIndexRecovery: declared and online-created indexes survive a
// crash — the DDL replays from the schema log, the entries rebuild
// from the recovered arrays — and keep matching the scan path. The
// torn-tail variant cuts the newest WAL segment mid-record first.
func TestIndexRecovery(t *testing.T) {
	for _, tear := range []bool{false, true} {
		name := "clean"
		if tear {
			name = "tornTail"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			db, err := ankerdb.Open(
				ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
				ankerdb.WithCostModel(ankerdb.ZeroCost),
				ankerdb.WithCommitShards(1),
				ankerdb.WithDurability(dir),
				ankerdb.WithInitialSchema(idxSchema(), idxRows),
			)
			if err != nil {
				t.Fatal(err)
			}
			seedIndexTable(t, db)
			if err := db.CreateIndex("u", "pad", ankerdb.Ordered); err != nil {
				t.Fatal(err)
			}
			var rows []int
			for i := 0; i < 8; i++ {
				w, _ := db.Begin(ankerdb.OLTP)
				row, err := w.Insert("u", map[string]any{"uid": int64(7), "score": int64(i), "pad": int64(i)})
				if err != nil {
					t.Fatal(err)
				}
				mustCommit(t, w)
				rows = append(rows, row)
			}
			w, _ := db.Begin(ankerdb.OLTP)
			if err := w.Delete("u", rows[2]); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, w)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if tear {
				tearNewestSegment(t, dir)
			}

			db2, err := ankerdb.Open(
				ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
				ankerdb.WithCostModel(ankerdb.ZeroCost),
				ankerdb.WithCommitShards(1),
				ankerdb.WithDurability(dir),
				ankerdb.WithInitialSchema(idxSchema(), idxRows),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if db2.Stats().IndexEntries == 0 {
				t.Fatal("no index entries rebuilt at recovery")
			}
			r, err := db2.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Abort()
			for _, probe := range []struct {
				col    string
				lo, hi int64
			}{{"uid", 7, 7}, {"score", 2, 5}, {"pad", 1, 6}} {
				got, err := r.Filter("u", probe.col, probe.lo, probe.hi)
				if err != nil {
					t.Fatal(err)
				}
				want := scanGroundTruth(t, r, probe.col, probe.lo, probe.hi)
				if !eqRows(got, want) {
					t.Fatalf("%s [%d,%d] after recovery: got %v want %v",
						probe.col, probe.lo, probe.hi, got, want)
				}
			}
			if db2.Stats().IndexProbes == 0 {
				t.Fatal("recovered indexes never probed")
			}
		})
	}
}

// TestIndexDropSurvivesRecovery: a dropped index stays dropped after
// reopen (the drop DDL outweighs the declaration in the schema log).
func TestIndexDropSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.Physical),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithDurability(dir),
		ankerdb.WithInitialSchema(idxSchema(), idxRows),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("u", "uid"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.Physical),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithDurability(dir),
		ankerdb.WithInitialSchema(idxSchema(), idxRows),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.DropIndex("u", "uid"); !errors.Is(err, ankerdb.ErrNoIndex) {
		t.Fatalf("dropped index resurrected: %v", err)
	}
	if err := db2.DropIndex("u", "score"); err != nil {
		t.Fatalf("declared index lost: %v", err)
	}
}

// TestAbsenceAboveCapacityConflictsWithGrow is the write-skew
// regression: a transaction that observed ErrRowRange above the
// table's capacity acted on an absence, so a concurrent Insert growing
// the table into that very row must abort it at validation — under
// every strategy.
func TestAbsenceAboveCapacityConflictsWithGrow(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openTestDB(t, strat)
			defer db.Close()
			capacity := db.Stats().TableCapacity

			grow := func() {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					t.Fatal(err)
				}
				for {
					row, err := w.Insert("acct", map[string]any{"bal": int64(1)})
					if err != nil {
						t.Fatal(err)
					}
					if row >= capacity {
						break
					}
				}
				mustCommit(t, w)
			}

			// Control: a writer that never observed the absence commits
			// fine across the concurrent growth.
			ctl, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctl.Set("acct", "flags", 1, 1); err != nil {
				t.Fatal(err)
			}

			a, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.Get("acct", "bal", capacity); !errors.Is(err, ankerdb.ErrRowRange) {
				t.Fatalf("Get above capacity = %v, want ErrRowRange", err)
			}
			grow() // births row `capacity` concurrently
			if err := a.Set("acct", "flags", 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := a.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
				t.Fatalf("absence reader committed across growth: %v, want ErrConflict", err)
			}
			if err := ctl.Commit(); err != nil {
				t.Fatalf("control writer aborted: %v", err)
			}
		})
	}
}

// TestQueryLimitFacade: Limit through the public Query API returns the
// deterministic prefix and exits early on large tables.
func TestQueryLimitFacade(t *testing.T) {
	db := openIndexDB(t, ankerdb.Fork)
	defer db.Close()
	seedIndexTable(t, db)

	full, err := db.Query("u").Where(ankerdb.Ge("score", 50)).Select(ankerdb.RowID).Run()
	if err != nil {
		t.Fatal(err)
	}
	lim, err := db.Query("u").Where(ankerdb.Ge("score", 50)).Select(ankerdb.RowID).Limit(10).Run()
	if err != nil {
		t.Fatal(err)
	}
	if lim.Len() != 10 {
		t.Fatalf("Limit(10) returned %d rows", lim.Len())
	}
	for i := 0; i < 10; i++ {
		if lim.At(i, 0) != full.At(i, 0) {
			t.Fatalf("row %d: limited %d != full %d", i, lim.At(i, 0), full.At(i, 0))
		}
	}
	if _, err := db.Query("u").Limit(0).Run(); err == nil {
		t.Fatal("Limit(0) accepted")
	}
}
