package ankerdb_test

// Crash-recovery coverage for growable tables: committed Inserts and
// Deletes (WAL kind-3 row-op records) must replay to the exact visible
// row set — with no checkpoint, with the row ops split around a
// checkpoint, and with a torn-tail insert record — under every
// snapshot strategy.

import (
	"errors"
	"fmt"
	"testing"

	"ankerdb"
)

// insertT commits one insert into the durability test table "t" and
// returns the row.
func insertT(t *testing.T, db *ankerdb.DB, v int64, name string) int {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	row, err := w.Insert("t", map[string]any{"v0": v, "name": name})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return row
}

// deleteT commits one delete of row from "t".
func deleteT(t *testing.T, db *ankerdb.DB, row int) {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Delete("t", row); err != nil {
		t.Fatalf("Delete(%d): %v", row, err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// visibleSet returns the visible row count and the Filter-visible rows
// holding v0 == val, via a fresh OLAP transaction.
func visibleSet(t *testing.T, db *ankerdb.DB, val int64) (int64, []int) {
	t.Helper()
	r, err := db.Begin(ankerdb.OLAP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Commit() }()
	n, err := r.Aggregate("t", "v0", ankerdb.Count)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.Filter("t", "v0", val, val)
	if err != nil {
		t.Fatal(err)
	}
	return n, rows
}

// TestGrowRecoveryAllStrategies is the acceptance scenario: committed
// inserts and deletes with NO checkpoint, a crash (close + reopen),
// and the exact visible row set recovered under every strategy.
func TestGrowRecoveryAllStrategies(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, strat)

			var inserted []int
			for i := 0; i < 10; i++ {
				inserted = append(inserted, insertT(t, db, int64(7000+i), fmt.Sprintf("n%d", i)))
			}
			deleteT(t, db, inserted[3]) // an inserted row dies
			deleteT(t, db, 5)           // a pre-existing row dies
			// A staged-but-uncommitted insert must not survive the crash.
			open, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := open.Insert("t", map[string]any{"v0": int64(666)}); err != nil {
				t.Fatal(err)
			}
			wantCount := int64(durRows + 10 - 2)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := openDurable(t, dir, strat)
			defer db2.Close()
			n, ghost := visibleSet(t, db2, 666)
			if n != wantCount {
				t.Fatalf("recovered Count = %d, want %d", n, wantCount)
			}
			if len(ghost) != 0 {
				t.Fatalf("uncommitted insert survived: rows %v", ghost)
			}
			r, _ := db2.Begin(ankerdb.OLAP)
			for i, row := range inserted {
				if i == 3 {
					if _, err := r.Get("t", "v0", row); !errors.Is(err, ankerdb.ErrRowNotVisible) {
						t.Fatalf("deleted insert visible after recovery: %v", err)
					}
					continue
				}
				if v, err := r.Get("t", "v0", row); err != nil || v != int64(7000+i) {
					t.Fatalf("recovered insert row %d = %d, %v, want %d", row, v, err, 7000+i)
				}
				if s, err := r.GetString("t", "name", row); err != nil || s != fmt.Sprintf("n%d", i) {
					t.Fatalf("recovered VARCHAR row %d = %q, %v", row, s, err)
				}
			}
			if _, err := r.Get("t", "v0", 5); !errors.Is(err, ankerdb.ErrRowNotVisible) {
				t.Fatalf("deleted pre-existing row visible after recovery: %v", err)
			}
			mustCommit(t, r)

			// The allocator recovered its high-water mark: a fresh insert
			// must not collide with any recovered visible row.
			fresh := insertT(t, db2, 8000, "fresh")
			for i, row := range inserted {
				if fresh == row && i != 3 {
					t.Fatalf("fresh insert reused live row %d", row)
				}
			}
			if n, _ := visibleSet(t, db2, 8000); n != wantCount+1 {
				t.Fatalf("Count after fresh insert = %d, want %d", n, wantCount+1)
			}
		})
	}
}

// TestGrowRecoveryAfterCheckpoint: row ops split around a checkpoint —
// the checkpoint persists the visibility arrays (including a reclaimed
// free slot), and the ops after it replay from the WAL tail.
func TestGrowRecoveryAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)

	a := insertT(t, db, 1, "a")
	b := insertT(t, db, 2, "b")
	deleteT(t, db, a)
	db.Vacuum() // reclaims a into the free list
	if db.Stats().RowsFree != 1 {
		t.Fatalf("RowsFree = %d, want 1", db.Stats().RowsFree)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: one insert (reusing a's slot) + one delete.
	c := insertT(t, db, 3, "c")
	if c != a {
		t.Fatalf("free slot not reused: got %d, want %d", c, a)
	}
	deleteT(t, db, b)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	if n, rows := visibleSet(t, db2, 3); n != int64(durRows+1) || len(rows) != 1 || rows[0] != c {
		t.Fatalf("recovered state: count=%d rows=%v, want count=%d rows=[%d]", n, rows, durRows+1, c)
	}
	r, _ := db2.Begin(ankerdb.OLAP)
	if _, err := r.Get("t", "v0", b); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("post-checkpoint delete lost: %v", err)
	}
	mustCommit(t, r)
}

// TestGrowRecoveryFreeListFromCheckpoint: a slot reclaimed before the
// checkpoint (birth NeverTS + death stamp persisted) comes back on the
// free list and is reused by the first post-recovery insert.
func TestGrowRecoveryFreeListFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, ankerdb.VMSnap)
	row := insertT(t, db, 1, "x")
	deleteT(t, db, row)
	db.Vacuum()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, ankerdb.VMSnap)
	defer db2.Close()
	if free := db2.Stats().RowsFree; free != 1 {
		t.Fatalf("recovered RowsFree = %d, want 1", free)
	}
	if got := insertT(t, db2, 2, "y"); got != row {
		t.Fatalf("recovered free slot not reused: got %d, want %d", got, row)
	}
}

// TestGrowRecoveryTornTailInsert: a torn final insert record loses
// exactly that insert — the row set rolls back to the previous commit,
// with no half-born row.
func TestGrowRecoveryTornTailInsert(t *testing.T) {
	dir := t.TempDir()
	// One shard: all records (row ops included) land in one segment, so
	// the torn record is deterministically the newest insert.
	db := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	keep := insertT(t, db, 11, "keep")
	torn := insertT(t, db, 12, "torn")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestSegment(t, dir)

	db2 := openDurable(t, dir, ankerdb.VMSnap, ankerdb.WithCommitShards(1))
	defer db2.Close()
	if n, _ := visibleSet(t, db2, 0); n != int64(durRows+1) {
		t.Fatalf("Count after torn insert = %d, want %d", n, durRows+1)
	}
	r, _ := db2.Begin(ankerdb.OLAP)
	if v, err := r.Get("t", "v0", keep); err != nil || v != 11 {
		t.Fatalf("intact insert lost: %d, %v", v, err)
	}
	if _, err := r.Get("t", "v0", torn); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("torn insert partially survived: %v", err)
	}
	mustCommit(t, r)

	// The slot of the torn insert is unborn; the allocator's recovered
	// mark sits above the intact insert, so a fresh insert lands on the
	// torn slot or above — and the visible set stays consistent.
	fresh := insertT(t, db2, 13, "fresh")
	if fresh == keep {
		t.Fatalf("fresh insert reused live row %d", keep)
	}
	if n, rows := visibleSet(t, db2, 13); n != int64(durRows+2) || len(rows) != 1 || rows[0] != fresh {
		t.Fatalf("after fresh insert: count=%d rows=%v", n, rows)
	}
}
