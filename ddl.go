package ankerdb

import (
	"fmt"

	"ankerdb/internal/index"
	"ankerdb/internal/mvcc"
	"ankerdb/internal/storage"
	"ankerdb/internal/telemetry"
	"ankerdb/internal/wal"
)

// Table-level DDL: DropTable and Truncate. Both are durability-logged
// as marker records in the never-truncated schema log (torn-tail safe
// exactly like index DDL), stamped with the completed commit timestamp
// at which they ran, and replayed by recovery after checkpoint load and
// WAL replay so their timestamp decides exactly which replayed rows
// they cover — a checkpoint older or newer than the DDL both recover
// correctly.
//
// Neither operation is MVCC-versioned: a drop or truncate is a barrier,
// not a commit. Transactions that staged reads or writes against the
// table before the DDL abort at commit through the epoch guard
// (ddlAborted), and OLAP snapshot generations pinned before the DDL may
// observe it non-transactionally — captured pages keep the old bytes,
// uncaptured state reflects the new. The memory of a dropped table is
// only unmapped once the GC floor passes the drop timestamp, so pinned
// readers never fault; until then the slot is a tombstone.

// DropTable removes the table: the name becomes free for re-creation
// immediately, staged transactions against it abort at commit, and its
// mapped column chunks are released wholesale once no running
// transaction or pinned snapshot generation can still reach them
// (checked here and again by each Vacuum). The table's secondary
// indexes and visibility log go with it. With durability enabled the
// drop appends a schema-log marker record; recovery replays it exactly
// once, against whichever mix of checkpoint and WAL state survived.
func (db *DB) DropTable(name string) error {
	if err := db.replicaWriteGuard(); err != nil {
		return err
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	closed := db.closed
	t := db.tables[name]
	db.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	db.lockAllShards()
	// Under every shard lock the completed watermark equals the newest
	// assigned timestamp: every commit at or below ts is fully
	// installed, every later one runs after the epoch bump and aborts.
	ts := db.oracle.Completed()
	t.ddlEpoch.Add(1)
	t.dropTS = ts
	t.dropped.Store(true)
	// The name is released and the drop logged under db.mu — the same
	// lock CreateTable publishes and logs under — so the schema log
	// always orders this record before a racing re-creation's.
	db.mu.Lock()
	delete(db.tables, name)
	var walErr error
	if db.wal != nil && !db.recovering {
		walErr = db.wal.AppendTableDDL(wal.TableDDLRecord{Name: name, Op: wal.TableDDLDrop, TS: ts})
	}
	db.mu.Unlock()
	if db.gcFloor() > ts {
		// No running transaction or pinned generation can reach the
		// table: release its chunks now instead of at the next Vacuum.
		db.freeDropped(t)
	}
	db.unlockAllShards()
	db.tel.rec.RecordNote(telemetry.EvTableDDL, int64(wal.TableDDLDrop), 0, int64(ts), name)
	return walErr
}

// Truncate discards every row of the table — initial rows included —
// leaving an empty table with the same schema and indexes. The row
// allocator restarts at slot zero and the visible count is zero at
// every timestamp. Like DropTable it is a barrier, not a commit:
// transactions that staged against the table abort at commit, and
// bulk loads after a truncate land in unborn rows (use Insert to
// repopulate). Version chains survive for pinned pre-truncate
// generations and are vacuumed away normally. With durability enabled
// the truncation appends a schema-log marker stamped with the current
// completed timestamp; recovery re-applies it to exactly the rows
// committed at or below that stamp, so rows inserted after the
// truncate survive a crash.
func (db *DB) Truncate(name string) error {
	if err := db.replicaWriteGuard(); err != nil {
		return err
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	closed := db.closed
	t := db.tables[name]
	db.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	db.lockAllShards()
	ts := db.oracle.Completed()
	t.ddlEpoch.Add(1)
	t.visMutated.Store(true)
	truncateRows(t, ts)
	t.amu.Lock()
	t.next, t.free = 0, nil
	t.amu.Unlock()
	// The count collapses to zero at every timestamp (base cancels the
	// initial rows); post-truncate inserts append fresh deltas on top.
	t.visLogReset(-int64(t.st.InitialRows()))
	floor := db.gcFloor()
	for _, c := range t.cols {
		if ix := c.idx.Load(); ix != nil {
			// An empty index with its build floor at the truncation:
			// probes below ts fall back to the scan path, probes above
			// see exactly the post-truncate rows commits maintain.
			c.idx.Store(index.New(ix.Kind(), ts))
		}
		c.recomputeZones(floor)
	}
	db.unlockAllShards()
	var walErr error
	if db.wal != nil && !db.recovering {
		walErr = db.wal.AppendTableDDL(wal.TableDDLRecord{Name: name, Op: wal.TableDDLTruncate, TS: ts})
	}
	db.tel.rec.RecordNote(telemetry.EvTableDDL, int64(wal.TableDDLTruncate), 0, int64(ts), name)
	return walErr
}

// truncateRows kills every row born at or below ts: birth back to the
// NeverTS sentinel, death cleared. Rows born after ts — possible only
// during recovery replay, where commits above the truncate's stamp
// have already been re-applied — survive untouched. Per-row stores on
// purpose: they go through the fault path that breaks copy-on-write
// sharing, so pinned pre-truncate snapshots keep their captured pages.
// The caller holds every shard commit lock (or is single-threaded
// recovery).
func truncateRows(t *table, ts uint64) {
	birth, death := t.st.Birth(), t.st.Death()
	for row, capacity := 0, t.st.Capacity(); row < capacity; row++ {
		if b := birth.GetU(row); b != storage.NeverTS && b <= ts {
			birth.SetU(row, storage.NeverTS)
			death.SetU(row, 0)
		}
	}
}

// freeDropped releases a dropped table's storage: every mapped chunk
// of every extent, the secondary indexes, the version chains and the
// block metadata. Idempotent. The caller holds every shard commit lock
// (or is single-threaded recovery) and has established that the GC
// floor lies strictly above the drop timestamp — no running
// transaction or pinned generation can resolve the table anymore.
func (db *DB) freeDropped(t *table) {
	if t.freed {
		return
	}
	t.freed = true
	for _, c := range t.cols {
		c.idx.Store(nil)
		c.chain = mvcc.NewChainStore()
		empty := []*mvcc.BlockMeta{}
		c.metas.Store(&empty)
	}
	t.visLogReset(0)
	t.st.Free()
}

// tableEpoch is a transaction's record of a table's DDL epoch at the
// moment it first staged a read, write or row op against it (txn.go).
type tableEpoch struct {
	tab   *table
	epoch uint64
}

// ddlAborted reports the abort error for a transaction whose footprint
// includes a table dropped or truncated since it staged: ErrNoSuchTable
// for drops, ErrConflict for truncations (the table still exists, the
// transaction merely lost the race). Runs under the owning shard's
// commit lock on the commit path; epoch loads are atomic.
func ddlAborted(epochs []tableEpoch) error {
	for _, e := range epochs {
		if e.tab.ddlEpoch.Load() == e.epoch {
			continue
		}
		name := e.tab.st.Schema().Table
		if e.tab.dropped.Load() {
			return fmt.Errorf("%w: %q was dropped during the transaction", ErrNoSuchTable, name)
		}
		return fmt.Errorf("%w: table %q was truncated during the transaction", ErrConflict, name)
	}
	return nil
}
