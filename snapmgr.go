package ankerdb

import (
	"sync"
	"sync/atomic"
	"time"

	"ankerdb/internal/mvcc"
	"ankerdb/internal/snapshot"
	"ankerdb/internal/storage"
	"ankerdb/internal/telemetry"
)

// snapManager is the snapshot lifecycle manager: it hands OLAP
// transactions a reference-counted snapshot generation, rotates
// generations when the refresh policy fires (every n commits, signalled
// by the oracle's complete hook, and/or by wall-clock age), and
// releases a generation's column snapshots once the last pin drops.
//
// Generations are fine-granular and lazy: rotating one is free, and a
// column is only snapshotted — through the configured strategy, data
// and write-timestamp arrays together — the first time an OLAP
// transaction in the generation touches it.
type snapManager struct {
	db           *DB
	refreshEvery uint64        // commits between refreshes, 0 = off
	maxAge       time.Duration // wall-clock bound, 0 = off

	commitsSince atomic.Uint64 // commits since the current generation's ts
	stale        atomic.Bool   // refresh policy fired, rotate on next acquire

	mu          sync.Mutex
	current     *generation
	closed      bool                     // DB closed: stop holding manager pins
	live        map[*generation]struct{} // generations with refs > 0
	generations uint64                   // total generations started

	created      atomic.Uint64 // column snapshots created
	released     atomic.Uint64 // column snapshots released
	createdNanos atomic.Uint64 // cumulative creation time
	lastNanos    atomic.Uint64 // latest creation time
}

// generation is one snapshot epoch: a timestamp (set when the first
// OLAP transaction pins it) plus the lazily created per-column
// snapshots all OLAP transactions in the epoch share. Visibility
// (birth/death) array snapshots are cached in the same map under the
// table's visibility pseudo-column ID.
type generation struct {
	mgr  *snapManager
	born time.Time
	ts   uint64
	tsOK bool
	refs int // pins: one per running OLAP txn, plus one while current

	colMu sync.Mutex
	cols  map[mvcc.ColumnID]*colSnap
}

// colSnap is one column's snapshot inside a generation: resolved page
// caches over the snapshotted data and write-timestamp arrays, readable
// without the address-space lock. For a visibility pseudo-column the
// caches hold the birth (data) and death (wts) arrays instead.
type colSnap struct {
	snap snapshot.Snap
	data *storage.PageCache
	wts  *storage.PageCache
}

// rows returns the captured capacity: rows at or above it were born
// after the capture and are invisible at the generation.
func (cs *colSnap) rows() int { return cs.data.Rows() }

// visibleAt reports whether row is visible at ts in a captured
// visibility snapshot (data = birth, wts = death). Rows beyond the
// captured capacity were born after the capture and are invisible.
// Captured timestamps from commits newer than ts — including a capture
// racing a later install — compare above ts and yield the same verdict
// a pre-install capture would, so capture timing never changes
// visibility at ts.
func (cs *colSnap) visibleAt(row int, ts uint64) bool {
	if row >= cs.rows() {
		return false
	}
	if b := cs.data.GetU(row); b > ts {
		return false // unborn (NeverTS) or born after ts
	}
	d := cs.wts.GetU(row)
	return d == 0 || d > ts
}

func newSnapManager(db *DB, refreshEvery uint64, maxAge time.Duration) *snapManager {
	return &snapManager{
		db:           db,
		refreshEvery: refreshEvery,
		maxAge:       maxAge,
		live:         map[*generation]struct{}{},
	}
}

// noteCommit is the oracle's complete hook, called inside the commit
// critical section: it only touches atomics, flagging the current
// generation stale once refreshEvery commits have completed.
func (m *snapManager) noteCommit(uint64) {
	if m.refreshEvery == 0 {
		return
	}
	if m.commitsSince.Add(1) >= m.refreshEvery {
		m.stale.Store(true)
	}
}

// acquire pins and returns the generation a beginning OLAP transaction
// reads in, rotating first if the refresh policy fired.
func (m *snapManager) acquire() *generation {
	m.mu.Lock()
	cur := m.current
	var dead *generation
	if cur == nil || m.shouldRotate(cur) {
		if cur != nil && m.unpinLocked(cur) {
			dead = cur // manager held the last pin: destroy below
		}
		cur = &generation{mgr: m, born: time.Now(), cols: map[mvcc.ColumnID]*colSnap{}}
		m.live[cur] = struct{}{}
		m.generations++
		if !m.closed {
			// The manager's own pin keeps the current generation alive
			// between transactions. A Begin racing Close skips it, so
			// the transaction's release is the last pin and nothing
			// outlives it.
			cur.refs = 1
			m.current = cur
		}
	}
	if !cur.tsOK {
		// The generation's timestamp is fixed by its first reader, so
		// an idle engine never serves needlessly stale snapshots.
		cur.ts = m.db.oracle.Completed()
		cur.tsOK = true
		m.commitsSince.Store(0)
		m.stale.Store(false)
	}
	cur.refs++
	m.mu.Unlock()
	if dead != nil {
		dead.destroy()
	}
	return cur
}

// acquireFresh pins a generation guaranteed to have been created after
// this call began: the current generation is retired first (its cached
// column snapshots with it). Checkpoints must use this instead of
// acquire — a column snapshot cached by an earlier OLAP pin can
// predate a bulk load, and a checkpoint written from it would persist
// pre-load data while truncating the load's WAL records (loads, unlike
// commits, leave no timestamped records above the checkpoint timestamp
// to survive truncation). The stale flag is consumed inside acquire's
// critical section only when a new generation is created, so every
// generation this returns was born after the Store below — after
// whatever state change the caller needs captured.
func (m *snapManager) acquireFresh() *generation {
	m.stale.Store(true)
	return m.acquire()
}

func (m *snapManager) shouldRotate(g *generation) bool {
	if !g.tsOK {
		return false // never read from: still perfectly fresh
	}
	if m.stale.Load() {
		return true
	}
	return m.maxAge > 0 && time.Since(g.born) > m.maxAge
}

// release drops one pin; the last pin releases every column snapshot
// the generation created.
func (m *snapManager) release(g *generation) {
	m.mu.Lock()
	dead := m.unpinLocked(g)
	m.mu.Unlock()
	if dead {
		g.destroy()
	}
}

func (m *snapManager) unpinLocked(g *generation) (dead bool) {
	g.refs--
	if g.refs > 0 {
		return false
	}
	delete(m.live, g)
	if m.current == g {
		m.current = nil
	}
	return true
}

func (g *generation) destroy() {
	g.colMu.Lock()
	defer g.colMu.Unlock()
	for _, cs := range g.cols {
		cs.snap.Release()
		g.mgr.released.Add(1)
	}
	if n := len(g.cols); n > 0 {
		g.mgr.db.tel.rec.Record(telemetry.EvSnapRelease, int64(n), 0, int64(g.ts))
	}
	g.cols = map[mvcc.ColumnID]*colSnap{}
}

// minTS returns the oldest timestamp any live generation reads at, or
// ifEmpty when none has a timestamp yet — the snapshot side of the
// version-chain GC floor.
func (m *snapManager) minTS(ifEmpty uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	minTS := ifEmpty
	for g := range m.live {
		if g.tsOK && g.ts < minTS {
			minTS = g.ts
		}
	}
	return minTS
}

// close drops the manager's pin on the current generation and stops
// the manager from taking new ones.
func (m *snapManager) close() {
	m.mu.Lock()
	m.closed = true
	cur := m.current
	var dead bool
	if cur != nil {
		dead = m.unpinLocked(cur)
	}
	m.mu.Unlock()
	if dead {
		cur.destroy()
	}
}

// colSnap returns the generation's snapshot of c, creating it on first
// touch: this is the paper's fine-granular mode, where only the columns
// a query actually reads are ever snapshotted. Creation runs under the
// commit lock of the shard c is routed to, which excludes concurrent
// materialisation into c; commits in other shards may proceed during
// capture, but they only store into their own columns' pages, and every
// row the snapshot holds with a write timestamp above the generation's
// timestamp is repaired from the version chains at read time — so
// out-of-order per-shard completion never leaks a torn or
// future-stamped value into an OLAP read. The capture covers the
// chunks below the table capacity published at capture time; rows in
// chunks mapped later were necessarily born after the generation's
// timestamp and are invisible to it anyway.
func (g *generation) colSnap(c *column) (*colSnap, error) {
	chunks := c.tab.st.Capacity() / c.tab.st.ChunkRows()
	dataRegs, wtsRegs := c.tab.st.ColumnRegions(c.id.Col, chunks)
	return g.capture(c.id, dataRegs, wtsRegs)
}

// visSnap returns the generation's snapshot of t's visibility arrays
// (birth as data, death as wts), captured under the table's owning
// (visibility pseudo-column) shard lock exactly like a data column —
// so a capture can never observe a half-installed row op.
func (g *generation) visSnap(t *table) (*colSnap, error) {
	chunks := t.st.Capacity() / t.st.ChunkRows()
	birthRegs, deathRegs := t.st.VisRegions(chunks)
	return g.capture(mvcc.VisColumnID(t.idx), birthRegs, deathRegs)
}

// capture snapshots the two region sets of a (pseudo-)column under its
// shard commit lock and caches the resolved page views in the
// generation.
func (g *generation) capture(id mvcc.ColumnID, primary, secondary []storage.Region) (*colSnap, error) {
	g.colMu.Lock()
	defer g.colMu.Unlock()
	if cs, ok := g.cols[id]; ok {
		return cs, nil
	}
	regs := make([]snapshot.Region, 0, len(primary)+len(secondary))
	for _, r := range primary {
		regs = append(regs, snapshot.Region{Addr: r.Addr, Len: r.Len})
	}
	for _, r := range secondary {
		regs = append(regs, snapshot.Region{Addr: r.Addr, Len: r.Len})
	}
	m := g.mgr
	shard := m.db.shards[m.db.shardOf(id)]
	shard.mu.Lock()
	start := time.Now()
	snap, err := m.db.strat.Snapshot(regs)
	elapsed := time.Since(start)
	shard.mu.Unlock()
	if err != nil {
		return nil, err
	}
	m.created.Add(1)
	m.createdNanos.Add(uint64(elapsed.Nanoseconds()))
	m.lastNanos.Store(uint64(elapsed.Nanoseconds()))
	// Counter first, histogram second: Stats snapshots histograms before
	// loading counters, so SnapshotCreateHist.Count never exceeds
	// SnapshotsCreated mid-capture (equal at quiescence).
	m.db.tel.snapCreate.Observe(elapsed)
	m.db.tel.rec.Record(telemetry.EvSnapCreate, int64(id.Table), int64(id.Col), elapsed.Nanoseconds())

	reader := snap.Reader()
	out := snap.Regions()
	rows := len(primary) * m.db.chunkRowsOf(id.Table)
	toStorage := func(rs []snapshot.Region) []storage.Region {
		s := make([]storage.Region, len(rs))
		for i, r := range rs {
			s[i] = storage.Region{Addr: r.Addr, Len: r.Len}
		}
		return s
	}
	cs := &colSnap{
		snap: snap,
		data: storage.ResolveRegions(reader, toStorage(out[:len(primary)]), rows),
		wts:  storage.ResolveRegions(reader, toStorage(out[len(primary):]), rows),
	}
	g.cols[id] = cs
	return cs, nil
}

// value reads row of c at the generation's timestamp: straight from the
// snapshot when the snapshotted write timestamp is old enough,
// otherwise from the version chain.
func (g *generation) value(c *column, cs *colSnap, row int) int64 {
	if cs.wts.GetU(row) <= g.ts {
		return cs.data.Get(row)
	}
	if v, ok := c.chain.VisibleAt(row, g.ts); ok {
		return v
	}
	// Unreachable while GC respects the generation floor; the snapshot
	// value is the best remaining answer.
	return cs.data.Get(row)
}
