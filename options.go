package ankerdb

import (
	"runtime"
	"time"

	"ankerdb/internal/phys"
	"ankerdb/internal/snapshot"
	"ankerdb/internal/wal"
)

// SnapshotStrategy selects the snapshot-creation technique OLAP
// transactions read through. The four values are the techniques the
// paper compares head to head in Table 1 and Figure 5.
type SnapshotStrategy string

// Snapshot strategies.
const (
	// Physical eagerly deep-copies the snapshotted columns.
	Physical SnapshotStrategy = snapshot.KindPhysical
	// Fork forks the whole simulated process, HyPer-style; the kernel
	// COW-protects the entire image regardless of what was requested.
	Fork SnapshotStrategy = snapshot.KindFork
	// Rewired re-mmaps main-memory files per VMA and performs manual
	// copy-on-write in user space (RUMA-style).
	Rewired SnapshotStrategy = snapshot.KindRewired
	// VMSnap uses the paper's custom vm_snapshot system call: one
	// kernel entry per column, kernel-grade COW.
	VMSnap SnapshotStrategy = snapshot.KindVMSnap
)

type initialSchema struct {
	schema Schema
	rows   int
}

type config struct {
	strategy     SnapshotStrategy
	cost         CostModel
	pageSize     int
	refreshEvery uint64
	maxAge       time.Duration
	schemas      []initialSchema
	commitShards int // 0 = auto (GOMAXPROCS)
	durDir       string
	syncPolicy   SyncPolicy
}

// resolveCommitShards turns the configured shard count into the number
// of commit shards to build: the auto value follows GOMAXPROCS, the
// parallelism actually available to the commit pipeline.
func (c *config) resolveCommitShards() int {
	if c.commitShards > 0 {
		return c.commitShards
	}
	return runtime.GOMAXPROCS(0)
}

func defaultConfig() config {
	return config{
		strategy:     VMSnap,
		cost:         DefaultCost,
		pageSize:     phys.DefaultPageSize,
		refreshEvery: 1, // the paper's high-frequency mode: refresh on every commit
	}
}

// Option configures a DB at Open time.
type Option func(*config)

// WithSnapshotStrategy selects the snapshot technique (default VMSnap,
// the paper's contribution).
func WithSnapshotStrategy(s SnapshotStrategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithCostModel sets the simulated kernel cost model (default
// DefaultCost). Functional tests pass ZeroCost to skip the calibrated
// busy-waits.
func WithCostModel(m CostModel) Option {
	return func(c *config) { c.cost = m }
}

// WithPageSize sets the simulated page size in bytes (default 4096;
// the huge-page ablation of the paper uses 2 MiB).
func WithPageSize(n int) Option {
	return func(c *config) { c.pageSize = n }
}

// WithSnapshotRefresh makes OLAP snapshots refresh after every n
// commits: a new snapshot generation is started once n commits have
// completed since the current generation's timestamp. n == 0 disables
// commit-count-based refresh (generations rotate only by age, or
// never). Default 1, the paper's high-frequency mode.
func WithSnapshotRefresh(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.refreshEvery = uint64(n)
	}
}

// WithSnapshotMaxAge additionally bounds snapshot staleness by wall
// time: an OLAP transaction beginning more than d after the current
// generation was created starts a fresh generation. Zero (the default)
// disables age-based refresh.
func WithSnapshotMaxAge(d time.Duration) Option {
	return func(c *config) { c.maxAge = d }
}

// WithCommitShards partitions the commit pipeline into n shards:
// commit validation and version-chain installation are serialized per
// column shard instead of globally, so transactions with disjoint
// column footprints commit in parallel and same-shard commits are
// batched under one lock acquisition (group commit). n = 1 restores
// the paper's fully serialized commit phase (the Figure 11 baseline)
// with identical semantics. n <= 0 (and the default, when the option
// is omitted) selects GOMAXPROCS shards.
func WithCommitShards(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.commitShards = n
	}
}

// AutoCommitShards returns the commit shard count selected when
// WithCommitShards is omitted (or given n <= 0): GOMAXPROCS, the
// parallelism actually available to the commit pipeline. Benchmarks
// use it to label auto-sharded configurations.
func AutoCommitShards() int { return runtime.GOMAXPROCS(0) }

// WithInitialSchema creates the table at Open, before any transaction
// can run. Equivalent to calling CreateTable immediately after Open.
// With durability enabled, tables the recovered state already contains
// are kept as recovered instead of re-created.
func WithInitialSchema(schema Schema, rows int) Option {
	return func(c *config) { c.schemas = append(c.schemas, initialSchema{schema, rows}) }
}

// SyncPolicy selects when write-ahead-log appends are fsynced; see the
// policy constants. It only matters together with WithDurability.
type SyncPolicy = wal.SyncPolicy

// Sync policies for WithSyncPolicy.
const (
	// SyncGroupOnly (the default) fsyncs once per group-commit batch:
	// every Commit that returns nil is durable, and the fsync cost
	// amortizes over the batch exactly like the shard lock acquisition.
	SyncGroupOnly = wal.SyncGroup
	// SyncAlways fsyncs after every transaction's record individually,
	// forgoing the group amortisation.
	SyncAlways = wal.SyncAlways
	// SyncNone appends without fsyncing: records reach the OS page
	// cache only, so an OS crash (not a process crash followed by a
	// clean Close) can lose recent commits. The fastest policy.
	SyncNone = wal.SyncNone
)

// ParseSyncPolicy parses "always", "groupOnly" or "none" — the
// spellings SyncPolicy.String returns. Benchmarks and tools use it to
// sweep policies by name.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// WithDurability persists the database under dir: committed
// transactions are redo-logged to a per-commit-shard write-ahead log
// (appended and fsynced by the group-commit batch leader, so
// durability amortizes across a batch), DB.Checkpoint writes
// consistent snapshots that truncate the log, and Open replays
// checkpoint + WAL when dir is non-empty. Without this option the
// database is purely in-memory, with the exact pre-durability commit
// path. Bulk loads (DB.Load/LoadStrings) bypass the WAL and become
// durable at the next checkpoint.
func WithDurability(dir string) Option {
	return func(c *config) { c.durDir = dir }
}

// WithSyncPolicy sets the WAL fsync policy (default SyncGroupOnly).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) { c.syncPolicy = p }
}
