package ankerdb

import (
	"runtime"
	"time"

	"ankerdb/internal/fault"
	"ankerdb/internal/phys"
	"ankerdb/internal/snapshot"
	"ankerdb/internal/wal"
)

// SnapshotStrategy selects the snapshot-creation technique OLAP
// transactions read through. The four values are the techniques the
// paper compares head to head in Table 1 and Figure 5.
type SnapshotStrategy string

// Snapshot strategies.
const (
	// Physical eagerly deep-copies the snapshotted columns.
	Physical SnapshotStrategy = snapshot.KindPhysical
	// Fork forks the whole simulated process, HyPer-style; the kernel
	// COW-protects the entire image regardless of what was requested.
	Fork SnapshotStrategy = snapshot.KindFork
	// Rewired re-mmaps main-memory files per VMA and performs manual
	// copy-on-write in user space (RUMA-style).
	Rewired SnapshotStrategy = snapshot.KindRewired
	// VMSnap uses the paper's custom vm_snapshot system call: one
	// kernel entry per column, kernel-grade COW.
	VMSnap SnapshotStrategy = snapshot.KindVMSnap
)

type initialSchema struct {
	schema Schema
	rows   int
}

type config struct {
	strategy     SnapshotStrategy
	cost         CostModel
	pageSize     int
	refreshEvery uint64
	maxAge       time.Duration
	schemas      []initialSchema
	commitShards int // 0 = auto (GOMAXPROCS)
	durDir       string
	syncPolicy   SyncPolicy
	fs           fault.FS // nil = the real file system

	// Automatic checkpoint scheduling (0 = that trigger disabled).
	autoCkptBytes    uint64
	autoCkptRecords  uint64
	autoCkptInterval time.Duration

	// Group-commit leader max wait for followers (0 = drain once).
	groupMaxWait time.Duration

	// Telemetry (0/"" = disabled).
	slowQueryThreshold time.Duration
	metricsAddr        string

	// Replication & serving tier ("" = disabled).
	serveAddr   string
	replicaOf   string
	namespace   string
	maxSessions int // serving: concurrent session cap (0 = default)
}

// resolveCommitShards turns the configured shard count into the number
// of commit shards to build: the auto value follows GOMAXPROCS, the
// parallelism actually available to the commit pipeline.
func (c *config) resolveCommitShards() int {
	if c.commitShards > 0 {
		return c.commitShards
	}
	return runtime.GOMAXPROCS(0)
}

func defaultConfig() config {
	return config{
		strategy:     VMSnap,
		cost:         DefaultCost,
		pageSize:     phys.DefaultPageSize,
		refreshEvery: 1, // the paper's high-frequency mode: refresh on every commit
	}
}

// Option configures a DB at Open time.
type Option func(*config)

// WithSnapshotStrategy selects the snapshot technique (default VMSnap,
// the paper's contribution).
func WithSnapshotStrategy(s SnapshotStrategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithCostModel sets the simulated kernel cost model (default
// DefaultCost). Functional tests pass ZeroCost to skip the calibrated
// busy-waits.
func WithCostModel(m CostModel) Option {
	return func(c *config) { c.cost = m }
}

// WithPageSize sets the simulated page size in bytes (default 4096;
// the huge-page ablation of the paper uses 2 MiB).
func WithPageSize(n int) Option {
	return func(c *config) { c.pageSize = n }
}

// WithSnapshotRefresh makes OLAP snapshots refresh after every n
// commits: a new snapshot generation is started once n commits have
// completed since the current generation's timestamp. n == 0 disables
// commit-count-based refresh (generations rotate only by age, or
// never). Default 1, the paper's high-frequency mode.
func WithSnapshotRefresh(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.refreshEvery = uint64(n)
	}
}

// WithSnapshotMaxAge additionally bounds snapshot staleness by wall
// time: an OLAP transaction beginning more than d after the current
// generation was created starts a fresh generation. Zero (the default)
// disables age-based refresh.
func WithSnapshotMaxAge(d time.Duration) Option {
	return func(c *config) { c.maxAge = d }
}

// WithCommitShards partitions the commit pipeline into n shards:
// commit validation and version-chain installation are serialized per
// column shard instead of globally, so transactions with disjoint
// column footprints commit in parallel and same-shard commits are
// batched under one lock acquisition (group commit). n = 1 restores
// the paper's fully serialized commit phase (the Figure 11 baseline)
// with identical semantics. n <= 0 (and the default, when the option
// is omitted) selects GOMAXPROCS shards.
func WithCommitShards(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.commitShards = n
	}
}

// AutoCommitShards returns the commit shard count selected when
// WithCommitShards is omitted (or given n <= 0): GOMAXPROCS, the
// parallelism actually available to the commit pipeline. Benchmarks
// use it to label auto-sharded configurations.
func AutoCommitShards() int { return runtime.GOMAXPROCS(0) }

// WithInitialSchema creates the table at Open, before any transaction
// can run. Equivalent to calling CreateTable immediately after Open.
// With durability enabled, tables the recovered state already contains
// are kept as recovered instead of re-created.
func WithInitialSchema(schema Schema, rows int) Option {
	return func(c *config) { c.schemas = append(c.schemas, initialSchema{schema, rows}) }
}

// SyncPolicy selects when write-ahead-log appends are fsynced; see the
// policy constants. It only matters together with WithDurability.
type SyncPolicy = wal.SyncPolicy

// Sync policies for WithSyncPolicy.
const (
	// SyncGroupOnly (the default) fsyncs once per group-commit batch:
	// every Commit that returns nil is durable, and the fsync cost
	// amortizes over the batch exactly like the shard lock acquisition.
	SyncGroupOnly = wal.SyncGroup
	// SyncAlways fsyncs after every transaction's record individually,
	// forgoing the group amortisation.
	SyncAlways = wal.SyncAlways
	// SyncNone appends without fsyncing: records reach the OS page
	// cache only, so an OS crash (not a process crash followed by a
	// clean Close) can lose recent commits. The fastest policy.
	SyncNone = wal.SyncNone
)

// ParseSyncPolicy parses "always", "groupOnly" or "none" — the
// spellings SyncPolicy.String returns. Benchmarks and tools use it to
// sweep policies by name.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// WithDurability persists the database under dir: committed
// transactions are redo-logged to a per-commit-shard write-ahead log
// (appended and fsynced by the group-commit batch leader, so
// durability amortizes across a batch), DB.Checkpoint writes
// consistent snapshots that truncate the log, and Open replays
// checkpoint + WAL when dir is non-empty. Without this option the
// database is purely in-memory, with the exact pre-durability commit
// path. Bulk loads (DB.Load/LoadStrings) bypass the WAL and become
// durable at the next checkpoint.
func WithDurability(dir string) Option {
	return func(c *config) { c.durDir = dir }
}

// WithSyncPolicy sets the WAL fsync policy (default SyncGroupOnly).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) { c.syncPolicy = p }
}

// WithFS substitutes the file system the durability stack performs
// every operation through — the fault-injection seam. It exists for
// the crash harness: tests pass a fault.Scripted (internal/fault) to
// crash, tear, or fsync-lie the WAL's disk on a seeded, reproducible
// schedule, then reopen the directory without the option to exercise
// recovery. nil (the default) selects the real file system through a
// passthrough whose only cost is one interface call per operation.
// Only meaningful together with WithDurability.
func WithFS(fs fault.FS) Option {
	return func(c *config) { c.fs = fs }
}

// WithAutoCheckpoint enables automatic checkpoint scheduling: a
// background scheduler runs Checkpoint() once the write-ahead log has
// grown by at least bytes record bytes, or by at least records commit
// and bulk-load records, since the last completed checkpoint (whichever
// threshold is crossed first; either may be 0 to disable that trigger).
// Automatic, manual, and Close-time checkpoints coordinate through the
// same mutex, so only one checkpoint runs at a time; writers are never
// stalled either way, because every checkpoint streams a pinned
// snapshot generation. Only meaningful together with WithDurability.
// The default (option omitted, or both thresholds 0) keeps checkpoints
// purely manual.
func WithAutoCheckpoint(bytes, records uint64) Option {
	return func(c *config) {
		c.autoCkptBytes = bytes
		c.autoCkptRecords = records
	}
}

// WithAutoCheckpointInterval additionally bounds the time between
// checkpoints: if d elapses with new WAL records appended since the
// last checkpoint, the scheduler checkpoints even though no size
// threshold fired — so a slow trickle of commits cannot keep recovery
// replay unbounded. Zero (the default) disables the timer. Only
// meaningful together with WithDurability.
func WithAutoCheckpointInterval(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			d = 0
		}
		c.autoCkptInterval = d
	}
}

// WithGroupCommitMaxWait makes committers linger up to d before
// contending for their shard's commit lock, so commits arriving within
// the window accumulate in the queue and whoever wakes first
// validates, stamps, and — with durability enabled — fsyncs them as
// one batch. The wait never holds the shard lock (snapshot capture and
// checkpoints are not stalled behind it), and a commit a concurrent
// leader already processed returns without waiting out the full
// window. The knob trades per-commit latency (up to d) for throughput
// (fewer, larger fsyncs); it pays off when fsyncs dominate the commit
// path (WithDurability under SyncGroupOnly) and only adds latency with
// durability off. Zero (the default) contends immediately, the
// lowest-latency behaviour.
func WithGroupCommitMaxWait(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			d = 0
		}
		c.groupMaxWait = d
	}
}

// WithSlowQueryThreshold enables the slow-query log: every engine
// query (Txn.Query / DB.Query) whose end-to-end execution takes at
// least d is retained — with its per-operator row counts, zone-map
// skip counts, index-route decision and morsel count — readable via
// DB.SlowQueries and rendered by DB.TraceDump. The newest 64 entries
// are kept. Zero (the default) disables the log; the per-query cost
// when a query is NOT slow is a single duration comparison.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			d = 0
		}
		c.slowQueryThreshold = d
	}
}

// WithServeAddr opens a network serving endpoint on addr (host:0
// picks a free port — see DB.ServeAddr): remote clients Dial it to run
// Session transactions against this database, and — when durability is
// enabled — replicas opened WithReplicaOf stream the write-ahead log
// from it. The server is private to this DB (namespace "default"; use
// NewServer + Register to front several databases) and is shut down by
// DB.Close. Omitted (the default), no listener is opened.
func WithServeAddr(addr string) Option {
	return func(c *config) { c.serveAddr = addr }
}

// WithReplicaOf opens the database as a read replica of the primary
// serving at addr (a WithServeAddr / NewServer endpoint): Open
// bootstraps from the primary's schema log and a consistent snapshot,
// then a background connector applies the primary's WAL record stream
// continuously through the same idempotent-by-commitTS rules crash
// recovery uses. The replica serves OLAP reads at bounded, reported
// staleness (Stats.ReplicaAppliedTS against the primary's commit
// watermark) and rejects every local write with ErrReplicaRead until
// DB.Promote. Combine with WithDurability to make the replica's own
// state crash-recoverable and eligible for warm promotion; combine
// with WithServeAddr to chain replicas or serve remote read sessions.
func WithReplicaOf(addr string) Option {
	return func(c *config) { c.replicaOf = addr }
}

// WithNamespace sets the tenant namespace this database registers or
// requests on the wire (default "default"): the namespace a
// WithServeAddr listener registers itself under, and the one a
// WithReplicaOf connector asks its primary for.
func WithNamespace(ns string) Option {
	return func(c *config) { c.namespace = ns }
}

// WithServeMaxSessions caps concurrent remote sessions accepted by the
// WithServeAddr listener (admission control; excess dials are refused
// with ErrTooManySessions rather than queued). 0 (the default) selects
// 256. Replica stream connections are not counted — their backpressure
// is the publisher's bounded per-subscriber buffer.
func WithServeMaxSessions(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.maxSessions = n
	}
}

// WithMetricsServer serves the observability endpoint on addr (e.g.
// "127.0.0.1:9100", or host:0 to pick a free port — see
// DB.MetricsAddr): /metrics in Prometheus text format (the same bytes
// DB.MetricsText writes), /debug/vars (expvar, including an "ankerdb"
// map of per-DB Stats), /debug/pprof (the standard profiles), and
// /debug/trace (the flight-recorder dump). The server uses its own
// mux — never http.DefaultServeMux — and is shut down by DB.Close.
// Omitted (the default), no listener is opened and serving costs
// nothing.
func WithMetricsServer(addr string) Option {
	return func(c *config) { c.metricsAddr = addr }
}
