package ankerdb

import (
	"fmt"

	"ankerdb/internal/index"
	"ankerdb/internal/storage"
	"ankerdb/internal/telemetry"
)

// Secondary-index DDL and (re)build paths. The durability model is
// rebuild-at-recovery: index *entries* are never WAL-logged — commits
// pay zero extra log bytes for maintenance — and recovery instead
// rebuilds every index deterministically from the recovered column and
// visibility arrays after replay (durability.go). What is persisted is
// the *existence* of an index: schema-declared indexes ride the table
// record, online CreateIndex/DropIndex append index-DDL records to the
// same never-truncated schema log. The trade against logging entries:
// recovery pays one O(rows) pass per indexed column, which streams the
// same arrays rebuildRowState already touched, in exchange for a
// commit path whose WAL traffic is completely unchanged.

// buildColumnIndex builds an index over c's current contents. Each
// entry copies its row's actual birth/death extent, so a probe at any
// servable timestamp answers row visibility exactly like the
// visibility arrays would. Rows already dead at or below minTS are
// skipped — no servable reader can see them.
//
// The caller must exclude concurrent installs into c (all shard locks
// held, or single-threaded recovery/creation). Rows merely *reserved*
// by in-flight inserts are still unborn (birth NeverTS) and skipped;
// their birth install happens after the build publishes, under the
// shard lock, and maintains the index like any other commit.
func buildColumnIndex(c *column, kind IndexKind, minTS uint64) *index.Index {
	ix := index.New(kind, minTS)
	birth, death := c.tab.st.Birth(), c.tab.st.Death()
	capacity := c.tab.st.Capacity()
	for row := 0; row < capacity; row++ {
		b := birth.GetU(row)
		if b == storage.NeverTS {
			continue // unborn, reserved, or reclaimed
		}
		d := death.GetU(row)
		if d != 0 && d <= minTS {
			continue // dead below every servable timestamp
		}
		ix.Insert(c.data.Get(row), row, b, d)
	}
	return ix
}

// reindexColumn rebuilds c's index (if any) from scratch after a bulk
// load replaced the column's contents. The build floor moves up to the
// current completed timestamp: generations pinned before the load fall
// back to the scan path, which reads the same post-load arrays, so the
// two paths stay in agreement.
func (db *DB) reindexColumn(c *column) {
	old := c.idx.Load()
	if old == nil {
		return
	}
	db.lockAllShards()
	c.idx.Store(buildColumnIndex(c, old.Kind(), db.oracle.Completed()))
	db.unlockAllShards()
}

// CreateIndex builds a secondary index of the given kind over an
// existing column, online: the build runs under every shard commit
// lock (commit installation is quiescent, so the captured state is
// exactly the completed prefix), publishes the index, and from then on
// commits maintain it inside their critical section. Transactions
// running during the build are unaffected — readers at timestamps
// below the build floor simply keep scanning.
func (db *DB) CreateIndex(tab, col string, kind IndexKind) error {
	if err := db.replicaWriteGuard(); err != nil {
		return err
	}
	if !kind.Valid() {
		return fmt.Errorf("%w: %d", ErrIndexKind, kind)
	}
	c, err := db.lookup(tab, col)
	if err != nil {
		return err
	}
	db.lockAllShards()
	if c.idx.Load() != nil {
		db.unlockAllShards()
		return fmt.Errorf("%w: %s.%s", ErrIndexExists, tab, col)
	}
	// Under all shard locks the completed watermark equals the maximum
	// assigned timestamp: every commit at or below it is fully
	// installed, every later one will run after the index publishes.
	// Values displaced before the build live only in version chains the
	// build cannot see — hence the floor.
	minTS := db.oracle.Completed()
	c.idx.Store(buildColumnIndex(c, kind, minTS))
	db.unlockAllShards()
	db.tel.rec.RecordNote(telemetry.EvIndexDDL, 1, int64(minTS), 0,
		fmt.Sprintf("%s.%s %s", tab, col, kind))
	if db.wal != nil && !db.recovering {
		return db.wal.AppendIndexDDL(wrecIndexDDL(tab, col, kind, false))
	}
	return nil
}

// DropIndex removes the column's secondary index. In-flight probes
// holding the old structure finish against it — its entries stay
// valid — and later lookups fall back to the scan path.
func (db *DB) DropIndex(tab, col string) error {
	if err := db.replicaWriteGuard(); err != nil {
		return err
	}
	c, err := db.lookup(tab, col)
	if err != nil {
		return err
	}
	if old := c.idx.Swap(nil); old == nil {
		return fmt.Errorf("%w: %s.%s", ErrNoIndex, tab, col)
	}
	db.tel.rec.RecordNote(telemetry.EvIndexDDL, 0, 0, 0, fmt.Sprintf("%s.%s", tab, col))
	if db.wal != nil && !db.recovering {
		return db.wal.AppendIndexDDL(wrecIndexDDL(tab, col, NoIndex, true))
	}
	return nil
}

// rebuildIndexes gives every surviving index its contents after
// recovery replay: the recovered arrays reflect exactly the durable
// prefix (including a torn tail cut off by rebuildRowState), version
// chains are empty, and nothing runs concurrently — so a full rebuild
// at floor 0 is deterministic and exact at every timestamp.
func (db *DB) rebuildIndexes() {
	for _, t := range db.tabList {
		if t.dropped.Load() {
			continue
		}
		for _, c := range t.cols {
			if old := c.idx.Load(); old != nil {
				c.idx.Store(buildColumnIndex(c, old.Kind(), 0))
				db.recoveredIndexes++
			}
		}
	}
}
