// Command benchgate is the CI bench-regression gate: it compares a
// fresh ankerbench machine-readable artifact against a committed
// baseline and exits non-zero when commit throughput regressed beyond
// a threshold — so a commit-path slowdown (the paper's Figure 11
// result) fails the build instead of shipping silently.
//
// Both inputs are ankerbench -format json outputs (one flat record per
// metric). Only throughput records (-metric, default commits_per_sec)
// are compared. Per-point numbers from short CI runs are noisy, so the
// gate aggregates: records are grouped by (bench, strategy, shards)
// and the MEAN over the writer sweep is compared per group. A group
// present in both files whose current mean falls more than -threshold
// (default 0.25) below the baseline mean is a regression; groups
// present in only one file (e.g. a different GOMAXPROCS resolving the
// auto shard count differently) are reported but never fail the gate.
//
// Refresh the baseline on the CI runner class with `make
// bench-baseline` — absolute throughput is machine-dependent, so a
// baseline recorded on different hardware only bounds regressions
// relative to that hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// record mirrors ankerbench's flat metric schema.
type record struct {
	Bench    string  `json:"bench"`
	Strategy string  `json:"strategy"`
	Shards   int     `json:"shards"`
	Writers  int     `json:"writers"`
	Scanners int     `json:"scanners"`
	Touch    int     `json:"touch"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
}

// groupKey identifies one benchmark configuration whose writer sweep
// is averaged into a single comparable number.
type groupKey struct {
	Bench    string
	Strategy string
	Shards   int
}

func (k groupKey) String() string {
	return fmt.Sprintf("%s/%s/shards=%d", k.Bench, k.Strategy, k.Shards)
}

// result is one gate comparison.
type result struct {
	Key        groupKey
	Base, Cur  float64
	Ratio      float64 // Cur / Base
	Regression bool
}

// groupMeans averages the selected metric per configuration.
func groupMeans(recs []record, metric string) map[groupKey]float64 {
	sums := map[groupKey]float64{}
	counts := map[groupKey]int{}
	for _, r := range recs {
		if r.Metric != metric {
			continue
		}
		k := groupKey{r.Bench, r.Strategy, r.Shards}
		sums[k] += r.Value
		counts[k]++
	}
	means := make(map[groupKey]float64, len(sums))
	for k, s := range sums {
		means[k] = s / float64(counts[k])
	}
	return means
}

// compare gates current against baseline: every configuration present
// in both is a result; regressed reports whether any fell below
// base*(1-threshold). onlyBase/onlyCur list configurations without a
// counterpart (informational).
func compare(baseline, current []record, metric string, threshold float64) (results []result, onlyBase, onlyCur []groupKey, regressed bool) {
	base := groupMeans(baseline, metric)
	cur := groupMeans(current, metric)
	for k, b := range base {
		c, ok := cur[k]
		if !ok {
			onlyBase = append(onlyBase, k)
			continue
		}
		r := result{Key: k, Base: b, Cur: c}
		if b > 0 {
			r.Ratio = c / b
			r.Regression = c < b*(1-threshold)
		}
		regressed = regressed || r.Regression
		results = append(results, r)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			onlyCur = append(onlyCur, k)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Key.String() < results[j].Key.String() })
	sort.Slice(onlyBase, func(i, j int) bool { return onlyBase[i].String() < onlyBase[j].String() })
	sort.Slice(onlyCur, func(i, j int) bool { return onlyCur[i].String() < onlyCur[j].String() })
	return results, onlyBase, onlyCur, regressed
}

func readRecords(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	var recs []record
	if err := json.NewDecoder(f).Decode(&recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func main() {
	baselinePath := flag.String("baseline", "bench/baseline.json", "committed baseline artifact (ankerbench -format json)")
	currentPath := flag.String("current", "", "fresh artifact to gate (required)")
	metric := flag.String("metric", "commits_per_sec", "throughput metric to compare")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated regression fraction")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	baseline, err := readRecords(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	current, err := readRecords(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}

	results, onlyBase, onlyCur, regressed := compare(baseline, current, *metric, *threshold)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no comparable %q configurations between %s and %s\n",
			*metric, *baselinePath, *currentPath)
		os.Exit(2)
	}
	fmt.Printf("benchgate: %s, fail below %.0f%% of baseline (means over the writer sweep)\n",
		*metric, 100*(1-*threshold))
	for _, r := range results {
		verdict := "ok"
		if r.Regression {
			verdict = "REGRESSION"
		}
		fmt.Printf("  %-40s  base %12.0f  current %12.0f  %6.2fx  %s\n",
			r.Key, r.Base, r.Cur, r.Ratio, verdict)
	}
	for _, k := range onlyBase {
		fmt.Printf("  %-40s  only in baseline (skipped)\n", k)
	}
	for _, k := range onlyCur {
		fmt.Printf("  %-40s  only in current (skipped)\n", k)
	}
	if regressed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}
