package main

import "testing"

func recs(bench string, shards int, vals ...float64) []record {
	out := make([]record, 0, len(vals))
	for i, v := range vals {
		out = append(out, record{
			Bench: bench, Strategy: "vmsnap", Shards: shards,
			Writers: 1 << i, Metric: "commits_per_sec", Value: v,
		})
	}
	return out
}

func TestGatePassesOnEqualRuns(t *testing.T) {
	base := append(recs("commit", 1, 1000, 2000, 4000), recs("commit", 4, 3000, 6000, 9000)...)
	results, onlyBase, onlyCur, regressed := compare(base, base, "commits_per_sec", 0.25)
	if regressed {
		t.Fatal("identical runs flagged as regression")
	}
	if len(results) != 2 || len(onlyBase) != 0 || len(onlyCur) != 0 {
		t.Fatalf("results=%d onlyBase=%d onlyCur=%d, want 2/0/0", len(results), len(onlyBase), len(onlyCur))
	}
	for _, r := range results {
		if r.Ratio != 1 {
			t.Fatalf("%s ratio = %v, want 1", r.Key, r.Ratio)
		}
	}
}

// TestGateRedOnInjectedSlowdown is the acceptance scenario: a 2×
// commit-latency sleep halves throughput across the sweep, which must
// trip the 25% threshold.
func TestGateRedOnInjectedSlowdown(t *testing.T) {
	base := recs("commit", 1, 1000, 2000, 4000)
	halved := recs("commit", 1, 500, 1000, 2000)
	_, _, _, regressed := compare(base, halved, "commits_per_sec", 0.25)
	if !regressed {
		t.Fatal("2x slowdown not flagged")
	}
}

func TestGateToleratesNoiseWithinThreshold(t *testing.T) {
	base := recs("commit", 1, 1000, 2000, 4000) // mean ~2333
	noisy := recs("commit", 1, 900, 1900, 3500) // mean 2100, -10%
	_, _, _, regressed := compare(base, noisy, "commits_per_sec", 0.25)
	if regressed {
		t.Fatal("10% noise flagged as regression")
	}
}

// TestGateSkipsUnmatchedConfigs: a runner whose GOMAXPROCS resolves the
// auto shard count differently produces configurations the baseline
// lacks; those are reported, never failed on.
func TestGateSkipsUnmatchedConfigs(t *testing.T) {
	base := append(recs("commit", 1, 1000, 2000), recs("commit", 8, 8000)...)
	cur := append(recs("commit", 1, 1000, 2000), recs("commit", 2, 100)...)
	results, onlyBase, onlyCur, regressed := compare(base, cur, "commits_per_sec", 0.25)
	if regressed {
		t.Fatal("unmatched configuration failed the gate")
	}
	if len(results) != 1 || len(onlyBase) != 1 || len(onlyCur) != 1 {
		t.Fatalf("results=%d onlyBase=%d onlyCur=%d, want 1/1/1", len(results), len(onlyBase), len(onlyCur))
	}
}

// TestGateIgnoresOtherMetrics: aborts, env records and other metrics in
// the artifact must not enter the throughput comparison.
func TestGateIgnoresOtherMetrics(t *testing.T) {
	base := recs("commit", 1, 1000)
	cur := append(recs("commit", 1, 1000),
		record{Bench: "commit", Strategy: "vmsnap", Shards: 1, Metric: "aborts", Value: 1e9},
		record{Bench: "env", Shards: -1, Metric: "gomaxprocs", Value: 1})
	_, _, _, regressed := compare(base, cur, "commits_per_sec", 0.25)
	if regressed {
		t.Fatal("non-throughput metric affected the gate")
	}
}
