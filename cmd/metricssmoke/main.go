// Command metricssmoke is the observability smoke test: it opens a
// database with WithMetricsServer, drives a mixed OLTP/OLAP workload,
// scrapes /metrics over HTTP while the workload is still running (the
// endpoint must serve mid-stress, not just at rest), scrapes again at
// quiescence, and fails unless every key ankerdb_* series is present
// with a sane value. The final scrape and a flight-recorder TraceDump
// can be written to files for CI artifacts.
//
// Exit status 0 means the endpoint served both scrapes and all checked
// series exist; any missing series, HTTP failure, or workload error is
// fatal.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ankerdb"
)

var (
	flagAddr     = flag.String("addr", "127.0.0.1:0", "metrics listen address (host:0 picks a free port)")
	flagDur      = flag.Duration("dur", 2*time.Second, "workload duration")
	flagWriters  = flag.Int("writers", 4, "concurrent OLTP writers")
	flagRows     = flag.Int("rows", 8192, "rows per column")
	flagOut      = flag.String("out", "", "write the final /metrics scrape to this file")
	flagTrace    = flag.String("trace", "", "write a flight-recorder TraceDump to this file")
	flagZeroCost = flag.Bool("zerocost", true, "disable the simulated kernel cost model")
)

// requiredSeries are the metric names whose presence the smoke test
// asserts: one per telemetry subsystem (counters, commit-phase
// histograms, snapshot lifecycle, query engine, flight recorder).
var requiredSeries = []string{
	"ankerdb_info",
	"ankerdb_txn_commits_total",
	"ankerdb_commit_batches_total",
	"ankerdb_group_commit_size_count",
	"ankerdb_commit_validate_seconds_count",
	"ankerdb_commit_install_seconds_count",
	"ankerdb_snapshot_create_seconds_count",
	"ankerdb_snapshots_created_total",
	"ankerdb_query_exec_seconds_count",
	"ankerdb_queries_total",
	"ankerdb_trace_events_total",
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricssmoke: "+format+"\n", args...)
	os.Exit(1)
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// seriesValue finds a series by name (labeled series match by prefix)
// and returns its value.
func seriesValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if fields[0] != name && !strings.HasPrefix(fields[0], name+"{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

func main() {
	flag.Parse()
	cost := ankerdb.DefaultCost
	if *flagZeroCost {
		cost = ankerdb.ZeroCost
	}
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
		ankerdb.WithCostModel(cost),
		ankerdb.WithMetricsServer(*flagAddr),
		ankerdb.WithSlowQueryThreshold(time.Microsecond),
		ankerdb.WithInitialSchema(ankerdb.Schema{
			Table: "bench",
			Columns: []ankerdb.ColumnDef{
				{Name: "k", Type: ankerdb.Int64},
				{Name: "v", Type: ankerdb.Int64},
			},
		}, *flagRows),
	)
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()
	base := "http://" + db.MetricsAddr()
	fmt.Printf("metricssmoke: serving %s\n", base)

	// Mixed workload: writers commit small write sets, one scanner runs
	// aggregate queries against the rolling snapshot.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < *flagWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				txn, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					fail("begin: %v", err)
				}
				if err := txn.Set("bench", "v", (w*8191+i)%*flagRows, int64(i)); err != nil {
					fail("set: %v", err)
				}
				_ = txn.Commit() // conflicts are part of the workload
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := db.Query("bench").
				Where(ankerdb.Ge("v", 0)).
				Aggregate(ankerdb.SumOf("v"), ankerdb.CountRows()).
				Run(); err != nil {
				fail("query: %v", err)
			}
		}
	}()

	// Mid-stress scrape: the endpoint has to serve while commits and
	// queries are in flight.
	time.Sleep(*flagDur / 2)
	mid := get(base + "/metrics")
	if _, ok := seriesValue(mid, "ankerdb_txn_commits_total"); !ok {
		fail("mid-stress scrape is missing ankerdb_txn_commits_total")
	}
	time.Sleep(*flagDur / 2)
	stop.Store(true)
	wg.Wait()

	final := get(base + "/metrics")
	var missing []string
	for _, name := range requiredSeries {
		if _, ok := seriesValue(final, name); !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail("final scrape is missing series: %s", strings.Join(missing, ", "))
	}
	commits, _ := seriesValue(final, "ankerdb_txn_commits_total")
	queries, _ := seriesValue(final, "ankerdb_queries_total")
	if commits == 0 || queries == 0 {
		fail("workload left no trace: commits=%v queries=%v", commits, queries)
	}
	if !strings.Contains(get(base+"/debug/vars"), "ankerdb") {
		fail("/debug/vars does not publish the ankerdb map")
	}
	trace := get(base + "/debug/trace")
	if !strings.Contains(trace, "txn.commit") {
		fail("/debug/trace has no txn.commit events")
	}

	if *flagOut != "" {
		if err := os.WriteFile(*flagOut, []byte(final), 0o644); err != nil {
			fail("write -out: %v", err)
		}
	}
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			fail("write -trace: %v", err)
		}
		db.TraceDump(f)
		if err := f.Close(); err != nil {
			fail("write -trace: %v", err)
		}
	}
	fmt.Printf("metricssmoke: ok — %d series checked, commits=%.0f queries=%.0f\n",
		len(requiredSeries), commits, queries)
}
