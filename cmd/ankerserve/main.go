// Command ankerserve runs the networked serving tier as a standalone
// process: a primary (or replica) database behind one listener that
// remote sessions Dial and replicas stream the WAL from.
//
// Primary, serving namespace "default" on :7070 with durability:
//
//	ankerserve -addr :7070 -dir /var/lib/ankerdb
//
// Read replica of it, serving remote read sessions on :7071:
//
//	ankerserve -addr :7071 -dir /var/lib/ankerdb-replica -replica-of primary:7070
//
// Multi-tenant: repeat -ns name=dir to front several databases behind
// one port (each gets its own durability directory; the -dir flag is
// shorthand for -ns default=DIR).
//
// The process serves until SIGINT/SIGTERM, then shuts the listener and
// every database down cleanly. -metrics additionally serves the
// observability endpoint (/metrics, /debug/pprof, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ankerdb"
)

type nsFlag struct{ pairs [][2]string }

func (f *nsFlag) String() string { return fmt.Sprint(f.pairs) }
func (f *nsFlag) Set(s string) error {
	name, dir, ok := strings.Cut(s, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=dir, got %q", s)
	}
	f.pairs = append(f.pairs, [2]string{name, dir})
	return nil
}

var (
	flagAddr      = flag.String("addr", "127.0.0.1:7070", "serving listen address")
	flagDir       = flag.String("dir", "", "durability directory for the default namespace")
	flagReplicaOf = flag.String("replica-of", "", "open as a read replica of this primary address")
	flagNamespace = flag.String("namespace", "default", "namespace to serve or request (single-db mode)")
	flagSessions  = flag.Int("max-sessions", 0, "admission cap for concurrent remote sessions (0 = default)")
	flagMetrics   = flag.String("metrics", "", "optional observability endpoint address")
	flagCkptBytes = flag.Uint64("ckpt-bytes", 64<<20, "auto-checkpoint after this much WAL growth (0 = off)")
	flagZeroCost  = flag.Bool("zerocost", false, "disable the simulated kernel cost model")
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ankerserve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var tenants nsFlag
	flag.Var(&tenants, "ns", "serve namespace name=durability-dir (repeatable; multi-tenant mode)")
	flag.Parse()
	if err := run(tenants, signalCh(), nil); err != nil {
		fail("%v", err)
	}
}

func signalCh() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}

// run opens the configured databases, reports the resolved serving
// address through ready (when non-nil), and serves until stop
// delivers. Split from main so the serving paths are testable.
func run(tenants nsFlag, stop <-chan os.Signal, ready func(addr string)) error {
	if len(tenants.pairs) > 0 && *flagReplicaOf != "" {
		return fmt.Errorf("-ns and -replica-of do not combine; run one replica per process")
	}

	opts := func(dir string) []ankerdb.Option {
		o := []ankerdb.Option{}
		if dir != "" {
			o = append(o, ankerdb.WithDurability(dir))
			if *flagCkptBytes > 0 {
				o = append(o, ankerdb.WithAutoCheckpoint(*flagCkptBytes, 0),
					ankerdb.WithAutoCheckpointInterval(time.Minute))
			}
		}
		if *flagZeroCost {
			o = append(o, ankerdb.WithCostModel(ankerdb.ZeroCost))
		}
		if *flagMetrics != "" {
			o = append(o, ankerdb.WithMetricsServer(*flagMetrics))
		}
		return o
	}

	var dbs []*ankerdb.DB
	defer func() {
		for _, db := range dbs {
			_ = db.Close()
		}
	}()

	if len(tenants.pairs) > 0 {
		// Multi-tenant: one shared server, one DB per namespace. Only
		// the first DB gets the -metrics endpoint (one port).
		srv, err := ankerdb.NewServer(*flagAddr)
		if err != nil {
			return fmt.Errorf("listen: %w", err)
		}
		defer srv.Close()
		for i, p := range tenants.pairs {
			o := opts(p[1])
			if i > 0 && *flagMetrics != "" {
				o = o[:len(o)-1]
			}
			db, err := ankerdb.Open(o...)
			if err != nil {
				return fmt.Errorf("open %s: %w", p[0], err)
			}
			dbs = append(dbs, db)
			srv.Register(p[0], db)
			fmt.Printf("ankerserve: %s <- %s\n", p[0], p[1])
		}
		fmt.Printf("ankerserve: serving %d namespaces on %s\n", len(tenants.pairs), srv.Addr())
		if ready != nil {
			ready(srv.Addr())
		}
		waitSignal(stop)
		return nil
	}

	o := append(opts(*flagDir),
		ankerdb.WithServeAddr(*flagAddr),
		ankerdb.WithNamespace(*flagNamespace))
	if *flagSessions > 0 {
		o = append(o, ankerdb.WithServeMaxSessions(*flagSessions))
	}
	if *flagReplicaOf != "" {
		o = append(o, ankerdb.WithReplicaOf(*flagReplicaOf))
	}
	db, err := ankerdb.Open(o...)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	dbs = append(dbs, db)
	role := "primary"
	if *flagReplicaOf != "" {
		role = "replica of " + *flagReplicaOf
	}
	fmt.Printf("ankerserve: %s, namespace %q, serving on %s\n", role, *flagNamespace, db.ServeAddr())
	if ready != nil {
		ready(db.ServeAddr())
	}
	waitSignal(stop)
	return nil
}

func waitSignal(ch <-chan os.Signal) {
	<-ch
	fmt.Println("ankerserve: shutting down")
}
