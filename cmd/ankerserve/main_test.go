package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ankerdb"
)

// startRun launches run() with the given tenants, waits for the ready
// address, and returns it plus a shutdown func that delivers the stop
// signal and propagates run's error.
func startRun(t *testing.T, tenants nsFlag) (string, func()) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- run(tenants, stop, func(a string) { addrCh <- a }) }()
	select {
	case addr := <-addrCh:
		return addr, func() {
			stop <- os.Interrupt
			if err := <-errCh; err != nil {
				t.Fatalf("run: %v", err)
			}
		}
	case err := <-errCh:
		t.Fatalf("run exited before ready: %v", err)
		return "", nil
	}
}

func TestServeSingleTenant(t *testing.T) {
	*flagAddr = "127.0.0.1:0"
	*flagDir = t.TempDir()
	*flagZeroCost = true
	*flagSessions = 4
	defer func() { *flagDir = ""; *flagSessions = 0 }()

	addr, shutdown := startRun(t, nsFlag{})
	sess, err := ankerdb.Dial(addr, "default")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if st := sess.Stats(); !st.Serving || !st.Durable {
		t.Fatalf("served stats = %+v, want serving+durable", st)
	}
	tx, err := sess.BeginTxn(ankerdb.OLAP)
	if err != nil {
		t.Fatalf("remote begin: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("remote abort: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
	shutdown()
}

func TestServeMultiTenant(t *testing.T) {
	*flagAddr = "127.0.0.1:0"
	*flagDir = ""
	*flagZeroCost = true
	root := t.TempDir()
	var tenants nsFlag
	for _, ns := range []string{"alpha", "beta"} {
		if err := tenants.Set(ns + "=" + filepath.Join(root, ns)); err != nil {
			t.Fatalf("nsFlag.Set: %v", err)
		}
	}

	addr, shutdown := startRun(t, tenants)
	for _, ns := range []string{"alpha", "beta"} {
		sess, err := ankerdb.Dial(addr, ns)
		if err != nil {
			t.Fatalf("dial %s: %v", ns, err)
		}
		if st := sess.Stats(); !st.Durable {
			t.Fatalf("%s stats = %+v, want durable", ns, st)
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("close %s: %v", ns, err)
		}
	}
	if _, err := ankerdb.Dial(addr, "ghost"); err == nil || !strings.Contains(err.Error(), "namespace") {
		t.Fatalf("ghost namespace dial err = %v, want unknown-namespace error", err)
	}
	shutdown()
}

func TestServeFlagValidation(t *testing.T) {
	var tenants nsFlag
	if err := tenants.Set("noequals"); err == nil {
		t.Fatal("nsFlag.Set accepted a pair without '='")
	}
	if err := tenants.Set("a=b"); err != nil {
		t.Fatalf("nsFlag.Set rejected a=b: %v", err)
	}
	if s := tenants.String(); !strings.Contains(s, "a") {
		t.Fatalf("nsFlag.String() = %q", s)
	}
	*flagReplicaOf = "127.0.0.1:1"
	defer func() { *flagReplicaOf = "" }()
	if err := run(tenants, nil, nil); err == nil || !strings.Contains(err.Error(), "do not combine") {
		t.Fatalf("run with -ns and -replica-of err = %v, want combination error", err)
	}
}
