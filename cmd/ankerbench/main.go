// Command ankerbench drives the public ankerdb facade end-to-end to
// reproduce the paper's strategy comparison:
//
//   - "create": snapshot creation latency per strategy as the number of
//     touched columns grows (Table 1 / Figure 5a). Fine-granular
//     strategies pay per column; fork pays for the whole process image
//     on every touched column.
//   - "write": write-after-snapshot cost (Figure 5b): kernel COW
//     (fork/vmsnap) versus manual user-space COW (rewiring) versus
//     nothing to do (physical).
//   - "mixed": concurrent OLTP writers against OLAP scanners, the
//     workload of Section 5, reporting throughput, aborts, snapshot
//     staleness and COW traffic.
//
// All benchmarks go exclusively through the public API, so the numbers
// include the full commit pipeline and snapshot lifecycle.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ankerdb"
)

var (
	flagBench      = flag.String("bench", "create,write,mixed", "comma-separated benchmarks to run: create, write, mixed")
	flagStrategies = flag.String("strategies", "physical,fork,rewired,vmsnap", "comma-separated snapshot strategies")
	flagRows       = flag.Int("rows", 1<<16, "rows per column")
	flagCols       = flag.Int("cols", 8, "columns per table")
	flagWrites     = flag.Int("writes", 4096, "rows written after the snapshot (write benchmark)")
	flagWriters    = flag.Int("writers", 4, "concurrent OLTP writers (mixed benchmark)")
	flagScanners   = flag.Int("scanners", 2, "concurrent OLAP scanners (mixed benchmark)")
	flagRefresh    = flag.Int("refresh", 16, "snapshot refresh interval in commits (mixed benchmark)")
	flagDur        = flag.Duration("dur", 2*time.Second, "duration per strategy (mixed benchmark)")
	flagZeroCost   = flag.Bool("zerocost", false, "disable the simulated kernel cost model")
)

func main() {
	flag.Parse()
	var strats []ankerdb.SnapshotStrategy
	for _, s := range strings.Split(*flagStrategies, ",") {
		strats = append(strats, ankerdb.SnapshotStrategy(strings.TrimSpace(s)))
	}
	benches := map[string]bool{}
	for _, b := range strings.Split(*flagBench, ",") {
		benches[strings.TrimSpace(b)] = true
	}
	if benches["create"] {
		benchCreate(strats)
	}
	if benches["write"] {
		benchWrite(strats)
	}
	if benches["mixed"] {
		benchMixed(strats)
	}
}

func costModel() ankerdb.CostModel {
	if *flagZeroCost {
		return ankerdb.ZeroCost
	}
	return ankerdb.DefaultCost
}

// openLoaded opens a DB with one table of cols columns, bulk-loaded.
func openLoaded(strat ankerdb.SnapshotStrategy, extra ...ankerdb.Option) *ankerdb.DB {
	schema := ankerdb.Schema{Table: "bench"}
	for c := 0; c < *flagCols; c++ {
		schema.Columns = append(schema.Columns,
			ankerdb.ColumnDef{Name: fmt.Sprintf("c%d", c), Type: ankerdb.Int64})
	}
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(costModel()),
		ankerdb.WithInitialSchema(schema, *flagRows),
	}, extra...)...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ankerbench: open %s: %v\n", strat, err)
		os.Exit(1)
	}
	vals := make([]int64, *flagRows)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	for c := 0; c < *flagCols; c++ {
		if err := db.Load("bench", fmt.Sprintf("c%d", c), vals); err != nil {
			fmt.Fprintf(os.Stderr, "ankerbench: load: %v\n", err)
			os.Exit(1)
		}
	}
	return db
}

func colName(i int) string { return fmt.Sprintf("c%d", i) }

// benchCreate measures snapshot creation latency versus the number of
// columns an OLAP transaction touches (Table 1 / Figure 5a).
func benchCreate(strats []ankerdb.SnapshotStrategy) {
	fmt.Printf("== snapshot creation latency (rows/column=%d, cols=%d) ==\n", *flagRows, *flagCols)
	fmt.Printf("%-10s", "strategy")
	for touch := 1; touch <= *flagCols; touch *= 2 {
		fmt.Printf("  %10s", fmt.Sprintf("%d col(s)", touch))
	}
	fmt.Printf("  %8s\n", "VMAs")
	for _, strat := range strats {
		db := openLoaded(strat)
		fmt.Printf("%-10s", strat)
		for touch := 1; touch <= *flagCols; touch *= 2 {
			before := db.Stats()
			r, err := db.Begin(ankerdb.OLAP)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\nankerbench: %v\n", err)
				os.Exit(1)
			}
			for c := 0; c < touch; c++ {
				if _, err := r.Get("bench", colName(c), 0); err != nil {
					fmt.Fprintf(os.Stderr, "\nankerbench: %v\n", err)
					os.Exit(1)
				}
			}
			after := db.Stats()
			r.Commit()
			// Rotate the generation so the next round snapshots afresh.
			w, _ := db.Begin(ankerdb.OLTP)
			w.Set("bench", "c0", 0, 1)
			w.Commit()
			fmt.Printf("  %10v", after.SnapshotCreateTime-before.SnapshotCreateTime)
		}
		st := db.Stats()
		fmt.Printf("  %8d\n", st.NumVMAs)
		db.Close()
	}
	fmt.Println()
}

// benchWrite measures the cost absorbed by writes landing after a
// snapshot: kernel COW page copies versus the manual user-space COW
// path of rewiring (Figure 5b).
func benchWrite(strats []ankerdb.SnapshotStrategy) {
	fmt.Printf("== write-after-snapshot cost (%d writes across %d rows) ==\n", *flagWrites, *flagRows)
	fmt.Printf("%-10s  %12s  %10s  %10s  %12s\n",
		"strategy", "commit time", "COW breaks", "sig hooks", "words copied")
	for _, strat := range strats {
		db := openLoaded(strat)
		// Pin a snapshot of every column so each write is a first write
		// against a COW-shared or write-protected page.
		r, _ := db.Begin(ankerdb.OLAP)
		for c := 0; c < *flagCols; c++ {
			r.Get("bench", colName(c), 0)
		}
		before := db.Stats()
		start := time.Now()
		stride := *flagRows / *flagWrites
		if stride == 0 {
			stride = 1
		}
		w, _ := db.Begin(ankerdb.OLTP)
		for i := 0; i < *flagWrites; i++ {
			w.Set("bench", "c0", (i*stride)%*flagRows, int64(i))
		}
		if err := w.Commit(); err != nil {
			fmt.Fprintf(os.Stderr, "ankerbench: commit: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		after := db.Stats()
		r.Commit()
		fmt.Printf("%-10s  %12v  %10d  %10d  %12d\n", strat, elapsed,
			after.VM.COWBreaks-before.VM.COWBreaks,
			after.VM.SignalHooks-before.VM.SignalHooks,
			after.VM.WordsCopied-before.VM.WordsCopied)
		db.Close()
	}
	fmt.Println()
}

// benchMixed runs the paper's mixed workload: OLTP writers commit
// random writes while OLAP scanners aggregate snapshotted columns.
func benchMixed(strats []ankerdb.SnapshotStrategy) {
	fmt.Printf("== mixed workload (%d writers, %d scanners, refresh every %d commits, %v) ==\n",
		*flagWriters, *flagScanners, *flagRefresh, *flagDur)
	fmt.Printf("%-10s  %10s  %10s  %8s  %10s  %10s  %10s\n",
		"strategy", "commits/s", "scans/s", "aborts", "snapshots", "staleness", "COW breaks")
	for _, strat := range strats {
		db := openLoaded(strat, ankerdb.WithSnapshotRefresh(*flagRefresh))
		var stop atomic.Bool
		var commits, scans, aborts, staleness, staleSamples atomic.Uint64
		var wg sync.WaitGroup
		for i := 0; i < *flagWriters; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(seed))
				for !stop.Load() {
					w, err := db.Begin(ankerdb.OLTP)
					if err != nil {
						return
					}
					col := colName(rnd.Intn(*flagCols))
					for k := 0; k < 8; k++ {
						w.Set("bench", col, rnd.Intn(*flagRows), rnd.Int63n(1000))
					}
					if w.Commit() == nil {
						commits.Add(1)
					} else {
						aborts.Add(1)
					}
				}
			}(int64(i) + 1)
		}
		for i := 0; i < *flagScanners; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(-seed))
				for !stop.Load() {
					r, err := db.Begin(ankerdb.OLAP)
					if err != nil {
						return
					}
					staleness.Add(r.Staleness())
					staleSamples.Add(1)
					if _, err := r.Aggregate("bench", colName(rnd.Intn(*flagCols)), ankerdb.Sum); err != nil {
						r.Abort()
						return
					}
					r.Commit()
					scans.Add(1)
				}
			}(int64(i) + 1)
		}
		time.Sleep(*flagDur)
		stop.Store(true)
		wg.Wait()
		st := db.Stats()
		secs := flagDur.Seconds()
		avgStale := float64(0)
		if n := staleSamples.Load(); n > 0 {
			avgStale = float64(staleness.Load()) / float64(n)
		}
		fmt.Printf("%-10s  %10.0f  %10.0f  %8d  %10d  %10.1f  %10d\n", strat,
			float64(commits.Load())/secs, float64(scans.Load())/secs,
			aborts.Load(), st.SnapshotsCreated, avgStale, st.VM.COWBreaks)
		db.Close()
	}
}
