// Command ankerbench drives the public ankerdb facade end-to-end to
// reproduce the paper's experiments:
//
//   - "create": snapshot creation latency per strategy as the number of
//     touched columns grows (Table 1 / Figure 5a). Fine-granular
//     strategies pay per column; fork pays for the whole process image
//     on every touched column.
//   - "write": write-after-snapshot cost (Figure 5b): kernel COW
//     (fork/vmsnap) versus manual user-space COW (rewiring) versus
//     nothing to do (physical).
//   - "mixed": concurrent OLTP writers against OLAP scanners, the
//     workload of Section 5, reporting throughput, aborts, snapshot
//     staleness and COW traffic.
//   - "commit": the Figure 11 scaling experiment: OLTP commit
//     throughput as the writer count grows, swept across commit shard
//     counts. shards=1 is the paper's serialized commit phase; higher
//     shard counts engage the sharded group-commit pipeline.
//   - "query": streaming-engine throughput for a filtered group-by
//     aggregate over a pinned snapshot, swept across predicate
//     selectivity and morsel parallelism per strategy — the zone-map
//     pruning and morsel-scaling experiment.
//   - "index": secondary-index probe speedup: 0.1%-selective point
//     lookups and 1%-selective ranges through the hash and ordered
//     indexes against the same queries forced down the scan path
//     (WithoutPruning), per strategy. The values cycle per block, so
//     zone maps cannot help the scan — the speedup is the index alone.
//   - "durability": commit throughput with the write-ahead log
//     enabled, swept across sync policies (none, groupOnly, always)
//     and commit shard counts, plus crash-recovery replay time and
//     snapshot-driven checkpoint latency per configuration.
//   - "replication": a WAL-streaming read replica attached to a
//     durable serving primary: replica lag (in commits) versus write
//     rate (writer count) across commit shard counts, replica-side
//     OLAP read throughput while the stream is live, and the
//     catch-up time from the last primary commit to full convergence.
//
// All benchmarks go exclusively through the public API, so the numbers
// include the full commit pipeline and snapshot lifecycle.
//
// Output formats (-format): "text" prints human-readable tables;
// "csv" and "json" emit one flat record per measured metric
// (bench, strategy, shards, writers, scanners, touch, metric, value),
// the machine-readable format the CI bench artifact and the
// paper-figure tables share. Every run also emits "env" records
// (gomaxprocs, numcpu): on a 1-CPU runner the shard sweep cannot show
// wall-clock speedup, and artifacts must say so.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ankerdb"
	"ankerdb/internal/workload"
)

var (
	flagBench      = flag.String("bench", "create,write,mixed,commit,grow,durability,recovery,query,index,replication", "comma-separated benchmarks to run: create, write, mixed, commit, grow, durability, recovery, query, index, replication")
	flagStrategies = flag.String("strategies", "physical,fork,rewired,vmsnap", "comma-separated snapshot strategies")
	flagRows       = flag.Int("rows", 1<<16, "rows per column")
	flagCols       = flag.Int("cols", 8, "columns per table")
	flagWrites     = flag.Int("writes", 4096, "rows written after the snapshot (write benchmark)")
	flagWriters    = flag.Int("writers", 8, "concurrent OLTP writers (mixed benchmark; upper bound of the commit sweep)")
	flagScanners   = flag.Int("scanners", 2, "concurrent OLAP scanners (mixed benchmark)")
	flagMix        = flag.String("mix", "uniform,ycsb-a,ycsb-b,tpcc", "comma-separated mixed-benchmark writer profiles: uniform, ycsb-a, ycsb-b, tpcc")
	flagRefresh    = flag.Int("refresh", 16, "snapshot refresh interval in commits (mixed benchmark)")
	flagShards     = flag.String("shards", "1,0", "comma-separated commit shard counts for the commit and durability sweeps (0 = GOMAXPROCS)")
	flagSync       = flag.String("sync", "none,groupOnly,always", "comma-separated WAL sync policies for the durability sweep")
	flagDurDir     = flag.String("durdir", "", "durability directory root (default: a temp dir, removed afterwards)")
	flagMaxWait    = flag.Duration("maxwait", 0, "group-commit leader max wait for followers (durability sweep; 0 = drain once)")
	flagDur        = flag.Duration("dur", 2*time.Second, "duration per configuration (mixed, commit and durability benchmarks)")
	flagZeroCost   = flag.Bool("zerocost", false, "disable the simulated kernel cost model")
	flagFormat     = flag.String("format", "text", "output format: text, csv, json")
	flagQuick      = flag.Bool("quick", false, "CI smoke preset: small columns, short durations")
	flagStats      = flag.String("stats", "", "write each benchmark's final engine Stats snapshot (histograms included) plus derived metrics as JSON to this path")
)

// statsDump collects, per benchmark, the Stats snapshot of the last
// configuration it measured, written as JSON by -stats so trajectory
// tooling can pick up zone-skip% and commit-phase tail latencies
// without re-parsing the flat record stream.
var statsDump = map[string]statsEntry{}

type statsEntry struct {
	Stats   ankerdb.Stats      `json:"stats"`
	Derived map[string]float64 `json:"derived"`
}

// captureStats derives the headline observability numbers from a
// benchmark's final Stats snapshot and retains both for -stats.
func captureStats(bench string, s ankerdb.Stats) {
	if *flagStats == "" {
		return
	}
	d := map[string]float64{
		"commit_validate_p99_ns":  float64(s.CommitValidateHist.Quantile(0.99).Nanoseconds()),
		"commit_install_p99_ns":   float64(s.CommitInstallHist.Quantile(0.99).Nanoseconds()),
		"commit_fsync_p99_ns":     float64(s.CommitFsyncHist.Quantile(0.99).Nanoseconds()),
		"commit_lock_wait_p99_ns": float64(s.CommitLockWaitHist.Quantile(0.99).Nanoseconds()),
		"snapshot_create_p99_ns":  float64(s.SnapshotCreateHist.Quantile(0.99).Nanoseconds()),
		"query_exec_p99_ns":       float64(s.QueryExecHist.Quantile(0.99).Nanoseconds()),
	}
	if total := s.ZoneMapScannedChunks + s.ZoneMapSkippedChunks; total > 0 {
		d["zone_skip_pct"] = 100 * float64(s.ZoneMapSkippedChunks) / float64(total)
	}
	if n := s.GroupCommitSize.Observations(); n > 0 {
		d["mean_batch_size"] = float64(s.Commits+s.Conflicts) / float64(n)
	}
	statsDump[bench] = statsEntry{Stats: s, Derived: d}
}

// writeStatsDump writes the collected snapshots to -stats.
func writeStatsDump(path string) {
	f, err := os.Create(path)
	if err != nil {
		fail("stats: %v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsDump); err != nil {
		fail("stats: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("stats: %v", err)
	}
}

// record is one measured metric in the flat schema shared by the CSV
// and JSON outputs. Shards, Writers, Scanners and Touch are -1 when the
// dimension does not apply to the benchmark.
type record struct {
	Bench    string  `json:"bench"`
	Mix      string  `json:"mix,omitempty"`
	Strategy string  `json:"strategy"`
	Shards   int     `json:"shards"`
	Writers  int     `json:"writers"`
	Scanners int     `json:"scanners"`
	Touch    int     `json:"touch"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
}

var records []record

func emit(r record) { records = append(records, r) }

// metric is one (name, value) measurement. Benchmarks emit fixed-order
// metric slices — never maps — so the CSV/JSON artifacts are
// byte-reproducible across runs and diffable per commit.
type metric struct {
	name  string
	value float64
}

func emitAll(base record, ms []metric) {
	for _, m := range ms {
		rec := base
		rec.Metric, rec.Value = m.name, m.value
		emit(rec)
	}
}

// textf prints to stdout only in text mode, keeping tables out of the
// machine-readable outputs.
func textf(format string, args ...any) {
	if *flagFormat == "text" {
		fmt.Printf(format, args...)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ankerbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	switch *flagFormat {
	case "text", "csv", "json":
	default:
		fail("unknown format %q (want text, csv or json)", *flagFormat)
	}
	if *flagQuick {
		// CI smoke preset; flags passed explicitly still win.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["rows"] {
			*flagRows = 4096
		}
		if !set["writes"] {
			*flagWrites = 1024
		}
		if !set["dur"] {
			*flagDur = 300 * time.Millisecond
		}
		if !set["zerocost"] {
			*flagZeroCost = true
		}
	}
	var strats []ankerdb.SnapshotStrategy
	for _, s := range strings.Split(*flagStrategies, ",") {
		strats = append(strats, ankerdb.SnapshotStrategy(strings.TrimSpace(s)))
	}
	benches := map[string]bool{}
	for _, b := range strings.Split(*flagBench, ",") {
		benches[strings.TrimSpace(b)] = true
	}
	emitEnv()
	if (benches["commit"] || benches["durability"]) && runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "ankerbench: warning: GOMAXPROCS=1 — shard sweeps cannot"+
			" show wall-clock speedup on one CPU; their artifact numbers understate multi-core scaling")
	}
	if benches["create"] {
		benchCreate(strats)
	}
	if benches["write"] {
		benchWrite(strats)
	}
	if benches["mixed"] {
		benchMixed(strats)
	}
	if benches["commit"] {
		benchCommit()
	}
	if benches["grow"] {
		benchGrow(strats)
	}
	if benches["durability"] {
		benchDurability()
	}
	if benches["recovery"] {
		benchRecovery()
	}
	if benches["query"] {
		benchQuery(strats)
	}
	if benches["index"] {
		benchIndex(strats)
	}
	if benches["replication"] {
		benchReplication()
	}
	if *flagStats != "" {
		writeStatsDump(*flagStats)
	}
	flush()
}

// emitEnv records the execution environment in every machine-readable
// artifact: shard-sweep results are meaningless without knowing how
// many CPUs the run actually had.
func emitEnv() {
	textf("== environment: GOMAXPROCS=%d NumCPU=%d ==\n\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	base := record{Bench: "env", Strategy: "", Shards: -1, Writers: -1, Scanners: -1, Touch: -1}
	emitAll(base, []metric{
		{"gomaxprocs", float64(runtime.GOMAXPROCS(0))},
		{"numcpu", float64(runtime.NumCPU())},
	})
}

// flush writes the collected records in the selected machine-readable
// format. Text mode has already printed its tables.
func flush() {
	switch *flagFormat {
	case "text":
	case "csv":
		w := csv.NewWriter(os.Stdout)
		writeRow := func(fields ...string) {
			if err := w.Write(fields); err != nil {
				fail("csv: %v", err)
			}
		}
		writeRow("bench", "mix", "strategy", "shards", "writers", "scanners", "touch", "metric", "value")
		for _, r := range records {
			writeRow(r.Bench, r.Mix, r.Strategy,
				dimStr(r.Shards), dimStr(r.Writers), dimStr(r.Scanners), dimStr(r.Touch),
				r.Metric, strconv.FormatFloat(r.Value, 'g', -1, 64))
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fail("csv: %v", err)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fail("json: %v", err)
		}
	default:
		fail("unknown format %q (want text, csv or json)", *flagFormat)
	}
}

// dimStr renders a benchmark dimension, empty when it does not apply.
func dimStr(v int) string {
	if v < 0 {
		return ""
	}
	return strconv.Itoa(v)
}

func costModel() ankerdb.CostModel {
	if *flagZeroCost {
		return ankerdb.ZeroCost
	}
	return ankerdb.DefaultCost
}

// openLoaded opens a DB with one table of cols columns, bulk-loaded.
func openLoaded(strat ankerdb.SnapshotStrategy, cols int, extra ...ankerdb.Option) *ankerdb.DB {
	schema := ankerdb.Schema{Table: "bench"}
	for c := 0; c < cols; c++ {
		schema.Columns = append(schema.Columns,
			ankerdb.ColumnDef{Name: colName(c), Type: ankerdb.Int64})
	}
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(costModel()),
		ankerdb.WithInitialSchema(schema, *flagRows),
	}, extra...)...)
	if err != nil {
		fail("open %s: %v", strat, err)
	}
	vals := make([]int64, *flagRows)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	for c := 0; c < cols; c++ {
		if err := db.Load("bench", colName(c), vals); err != nil {
			fail("load: %v", err)
		}
	}
	return db
}

func colName(i int) string { return fmt.Sprintf("c%d", i) }

// benchCreate measures snapshot creation latency versus the number of
// columns an OLAP transaction touches (Table 1 / Figure 5a).
func benchCreate(strats []ankerdb.SnapshotStrategy) {
	textf("== snapshot creation latency (rows/column=%d, cols=%d) ==\n", *flagRows, *flagCols)
	textf("%-10s", "strategy")
	for touch := 1; touch <= *flagCols; touch *= 2 {
		textf("  %10s", fmt.Sprintf("%d col(s)", touch))
	}
	textf("  %8s\n", "VMAs")
	for _, strat := range strats {
		db := openLoaded(strat, *flagCols)
		textf("%-10s", strat)
		for touch := 1; touch <= *flagCols; touch *= 2 {
			before := db.Stats()
			r, err := db.Begin(ankerdb.OLAP)
			if err != nil {
				fail("%v", err)
			}
			for c := 0; c < touch; c++ {
				if _, err := r.Get("bench", colName(c), 0); err != nil {
					fail("%v", err)
				}
			}
			after := db.Stats()
			if err := r.Commit(); err != nil {
				fail("%v", err)
			}
			// Rotate the generation so the next round snapshots afresh.
			w, err := db.Begin(ankerdb.OLTP)
			if err != nil {
				fail("%v", err)
			}
			if err := w.Set("bench", "c0", 0, 1); err != nil {
				fail("%v", err)
			}
			if err := w.Commit(); err != nil {
				fail("%v", err)
			}
			elapsed := after.SnapshotCreateTime - before.SnapshotCreateTime
			textf("  %10v", elapsed)
			emit(record{Bench: "create", Strategy: string(strat), Shards: -1, Writers: -1, Scanners: -1,
				Touch: touch, Metric: "snapshot_create_ns", Value: float64(elapsed.Nanoseconds())})
		}
		st := db.Stats()
		textf("  %8d\n", st.NumVMAs)
		emit(record{Bench: "create", Strategy: string(strat), Shards: -1, Writers: -1, Scanners: -1,
			Touch: -1, Metric: "vmas", Value: float64(st.NumVMAs)})
		if err := db.Close(); err != nil {
			fail("close: %v", err)
		}
	}
	textf("\n")
}

// benchWrite measures the cost absorbed by writes landing after a
// snapshot: kernel COW page copies versus the manual user-space COW
// path of rewiring (Figure 5b).
func benchWrite(strats []ankerdb.SnapshotStrategy) {
	textf("== write-after-snapshot cost (%d writes across %d rows) ==\n", *flagWrites, *flagRows)
	textf("%-10s  %12s  %10s  %10s  %12s\n",
		"strategy", "commit time", "COW breaks", "sig hooks", "words copied")
	for _, strat := range strats {
		db := openLoaded(strat, *flagCols)
		// Pin a snapshot of every column so each write is a first write
		// against a COW-shared or write-protected page.
		r, err := db.Begin(ankerdb.OLAP)
		if err != nil {
			fail("%v", err)
		}
		for c := 0; c < *flagCols; c++ {
			if _, err := r.Get("bench", colName(c), 0); err != nil {
				fail("%v", err)
			}
		}
		before := db.Stats()
		start := time.Now()
		stride := *flagRows / *flagWrites
		if stride == 0 {
			stride = 1
		}
		w, err := db.Begin(ankerdb.OLTP)
		if err != nil {
			fail("%v", err)
		}
		for i := 0; i < *flagWrites; i++ {
			if err := w.Set("bench", "c0", (i*stride)%*flagRows, int64(i)); err != nil {
				fail("%v", err)
			}
		}
		if err := w.Commit(); err != nil {
			fail("commit: %v", err)
		}
		elapsed := time.Since(start)
		after := db.Stats()
		if err := r.Commit(); err != nil {
			fail("%v", err)
		}
		textf("%-10s  %12v  %10d  %10d  %12d\n", strat, elapsed,
			after.VM.COWBreaks-before.VM.COWBreaks,
			after.VM.SignalHooks-before.VM.SignalHooks,
			after.VM.WordsCopied-before.VM.WordsCopied)
		base := record{Bench: "write", Strategy: string(strat), Shards: -1, Writers: -1, Scanners: -1, Touch: -1}
		emitAll(base, []metric{
			{"commit_ns", float64(elapsed.Nanoseconds())},
			{"cow_breaks", float64(after.VM.COWBreaks - before.VM.COWBreaks)},
			{"sig_hooks", float64(after.VM.SignalHooks - before.VM.SignalHooks)},
			{"words_copied", float64(after.VM.WordsCopied - before.VM.WordsCopied)},
		})
		if err := db.Close(); err != nil {
			fail("close: %v", err)
		}
	}
	textf("\n")
}

// parseMixes validates and splits -mix: "uniform" is the original
// random-cell writer; the rest are internal/workload profiles.
func parseMixes() []string {
	var out []string
	for _, m := range strings.Split(*flagMix, ",") {
		m = strings.TrimSpace(m)
		if m != "uniform" && !workload.Profile(m).Valid() {
			fail("unknown mix %q (want uniform or one of %v)", m, workload.Profiles)
		}
		out = append(out, m)
	}
	return out
}

// benchMixed runs the paper's mixed workload: OLTP writers commit
// against OLAP scanners aggregating snapshotted columns, swept across
// the -mix writer profiles — uniform random cells, the YCSB zipfian
// read/update mixes, and the new-order/payment-style TPCC mix.
func benchMixed(strats []ankerdb.SnapshotStrategy) {
	for _, mix := range parseMixes() {
		textf("== mixed workload (%s, %d writers, %d scanners, refresh every %d commits, %v) ==\n",
			mix, *flagWriters, *flagScanners, *flagRefresh, *flagDur)
		textf("%-10s  %10s  %10s  %8s  %10s  %10s  %10s\n",
			"strategy", "commits/s", "scans/s", "aborts", "snapshots", "staleness", "COW breaks")
		for _, strat := range strats {
			db := openLoaded(strat, *flagCols, ankerdb.WithSnapshotRefresh(*flagRefresh))
			commits, scans, aborts, avgStale := runMixed(db, mix, *flagWriters, *flagScanners, *flagDur)
			st := db.Stats()
			captureStats("mixed", st)
			secs := flagDur.Seconds()
			textf("%-10s  %10.0f  %10.0f  %8d  %10d  %10.1f  %10d\n", strat,
				float64(commits)/secs, float64(scans)/secs,
				aborts, st.SnapshotsCreated, avgStale, st.VM.COWBreaks)
			base := record{Bench: "mixed", Mix: mix, Strategy: string(strat), Shards: st.CommitShards,
				Writers: *flagWriters, Scanners: *flagScanners, Touch: -1}
			emitAll(base, []metric{
				{"commits_per_sec", float64(commits) / secs},
				{"scans_per_sec", float64(scans) / secs},
				{"aborts", float64(aborts)},
				{"snapshots", float64(st.SnapshotsCreated)},
				{"staleness", avgStale},
				{"cow_breaks", float64(st.VM.COWBreaks)},
			})
			if err := db.Close(); err != nil {
				fail("close: %v", err)
			}
		}
		textf("\n")
	}
}

// runMixed drives writers and scanners against db for dur and returns
// the committed/scanned/aborted counts and average scanner staleness.
// mix selects the writer body; scanners are the same for every mix.
func runMixed(db *ankerdb.DB, mix string, writers, scanners int, dur time.Duration) (commits, scans, aborts uint64, avgStale float64) {
	var stop atomic.Bool
	var cCommits, cScans, cAborts, staleness, staleSamples atomic.Uint64
	var wg sync.WaitGroup
	cols := make([]string, *flagCols)
	for c := range cols {
		cols[c] = colName(c)
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if mix != "uniform" {
				g := workload.NewGen(workload.Profile(mix), seed, cols, *flagRows)
				r := &workload.Runner{DB: db, Table: "bench", Cols: cols}
				for !stop.Load() {
					res, err := r.Apply(g.Next())
					if err != nil {
						return
					}
					if res.Committed {
						cCommits.Add(1)
					} else {
						cAborts.Add(1)
					}
				}
				return
			}
			rnd := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					return
				}
				col := colName(rnd.Intn(*flagCols))
				for k := 0; k < 8; k++ {
					if err := w.Set("bench", col, rnd.Intn(*flagRows), rnd.Int63n(1000)); err != nil {
						return
					}
				}
				if w.Commit() == nil {
					cCommits.Add(1)
				} else {
					cAborts.Add(1)
				}
			}
		}(int64(i) + 1)
	}
	for i := 0; i < scanners; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(-seed))
			for !stop.Load() {
				r, err := db.Begin(ankerdb.OLAP)
				if err != nil {
					return
				}
				staleness.Add(r.Staleness())
				staleSamples.Add(1)
				if _, err := r.Aggregate("bench", colName(rnd.Intn(*flagCols)), ankerdb.Sum); err != nil {
					_ = r.Abort()
					return
				}
				if err := r.Commit(); err != nil {
					return
				}
				cScans.Add(1)
			}
		}(int64(i) + 1)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if n := staleSamples.Load(); n > 0 {
		avgStale = float64(staleness.Load()) / float64(n)
	}
	return cCommits.Load(), cScans.Load(), cAborts.Load(), avgStale
}

// benchCommit is the Figure 11 experiment: pure OLTP commit throughput
// as the writer count grows, swept across commit shard counts. Writers
// have disjoint column footprints (writer i owns column i), so with
// enough shards their commits validate and install in parallel;
// snapshot refresh is disabled to isolate the commit pipeline.
func benchCommit() {
	shardCounts := parseShards()
	writerCounts := powersOfTwoUpTo(*flagWriters)
	cols := *flagCols
	if cols < *flagWriters {
		cols = *flagWriters
	}

	// results[shards][writers] = commits/s
	results := make(map[int]map[int]float64)
	for _, shards := range shardCounts {
		results[shards] = map[int]float64{}
		for _, writers := range writerCounts {
			db := openLoaded(ankerdb.VMSnap, cols,
				ankerdb.WithCommitShards(shards),
				ankerdb.WithSnapshotRefresh(0))
			st0 := db.Stats()
			commits, aborts := runCommitters(db, writers, *flagDur)
			st := db.Stats()
			captureStats("commit", st)
			if err := db.Close(); err != nil {
				fail("close: %v", err)
			}
			perSec := float64(commits) / flagDur.Seconds()
			results[shards][writers] = perSec
			meanBatch := 0.0
			if batches := st.CommitBatches - st0.CommitBatches; batches > 0 {
				meanBatch = float64(st.Commits-st0.Commits) / float64(batches)
			}
			base := record{Bench: "commit", Strategy: string(ankerdb.VMSnap),
				Shards: st.CommitShards, Writers: writers, Scanners: 0, Touch: -1}
			emitAll(base, []metric{
				{"commits_per_sec", perSec},
				{"aborts", float64(aborts)},
				{"commit_batches", float64(st.CommitBatches)},
				{"mean_batch_size", meanBatch},
				{"cross_shard_commits", float64(st.CommitShardConflicts)},
				{"recent_list_records", float64(st.RecentCommitRecords)},
			})
		}
	}

	textf("== commit scaling (Figure 11): 8 writes/txn, disjoint columns, snapshots off, %v/point ==\n", *flagDur)
	textf("%-8s", "writers")
	for _, shards := range shardCounts {
		textf("  %14s", fmt.Sprintf("shards=%d", shardLabel(shards)))
	}
	if len(shardCounts) >= 2 {
		textf("  %8s", "speedup")
	}
	textf("\n")
	for _, writers := range writerCounts {
		textf("%-8d", writers)
		for _, shards := range shardCounts {
			textf("  %14.0f", results[shards][writers])
		}
		if len(shardCounts) >= 2 {
			lo := results[shardCounts[0]][writers]
			hi := results[shardCounts[len(shardCounts)-1]][writers]
			if lo > 0 {
				textf("  %7.2fx", hi/lo)
			}
		}
		textf("\n")
	}
	textf("\n")
}

// runCommitters drives writers committing 8-row write sets into their
// own columns for dur.
func runCommitters(db *ankerdb.DB, writers int, dur time.Duration) (commits, aborts uint64) {
	var stop atomic.Bool
	var cCommits, cAborts atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(writer int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(writer) + 1))
			col := colName(writer)
			for !stop.Load() {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					return
				}
				for k := 0; k < 8; k++ {
					if err := w.Set("bench", col, rnd.Intn(*flagRows), rnd.Int63n(1000)); err != nil {
						return
					}
				}
				if w.Commit() == nil {
					cCommits.Add(1)
				} else {
					cAborts.Add(1)
				}
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return cCommits.Load(), cAborts.Load()
}

// parseShards parses -shards; 0 entries resolve to GOMAXPROCS at Open
// time but are labelled with the resolved value in output.
func parseShards() []int {
	var out []int
	for _, s := range strings.Split(*flagShards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			fail("bad -shards entry %q", s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fail("-shards is empty")
	}
	return out
}

func shardLabel(n int) int {
	if n == 0 {
		return ankerdb.AutoCommitShards()
	}
	return n
}

func powersOfTwoUpTo(n int) []int {
	var out []int
	for w := 1; w < n; w *= 2 {
		out = append(out, w)
	}
	out = append(out, n)
	return out
}

// benchGrow measures growable-table insert throughput: concurrent
// writers commit single-row Inserts (each birthing a row through the
// table's owning commit shard and writing every column), swept across
// snapshot strategies and commit shard counts. After the timed phase,
// half the inserted rows are deleted and reclaimed by Vacuum, and the
// reuse rate of the following inserts is reported — the free-list
// path. insert throughput is also emitted as commits_per_sec so the
// CI bench-regression gate covers the grow path with its default
// metric.
func benchGrow(strats []ankerdb.SnapshotStrategy) {
	shardCounts := parseShards()
	textf("== grow: insert throughput (%d writers, %v/point) × strategies × shards ==\n", *flagWriters, *flagDur)
	textf("%-10s  %8s  %10s  %8s  %12s  %10s  %10s\n",
		"strategy", "shards", "inserts/s", "aborts", "rows grown", "reclaimed", "reused")
	for _, strat := range strats {
		for _, shards := range shardCounts {
			db := openLoaded(strat, *flagCols,
				ankerdb.WithCommitShards(shards),
				ankerdb.WithSnapshotRefresh(0))
			inserts, aborts := runInserters(db, *flagWriters, *flagDur)
			st := db.Stats()
			captureStats("grow", st)

			// Free-list cycle: delete half the inserted rows, reclaim,
			// and reinsert that many — counting how many slots came back
			// from the free list instead of growing the table.
			deleted := reapEvenInsertedRows(db, int(inserts))
			db.Vacuum()
			reclaimed := db.Stats().RowsReclaimed
			freeBefore := db.Stats().RowsFree
			for i := 0; i < deleted; i++ {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					fail("%v", err)
				}
				if _, err := w.Insert("bench", map[string]any{"c0": int64(i)}); err != nil {
					fail("%v", err)
				}
				if err := w.Commit(); err != nil {
					fail("%v", err)
				}
			}
			reused := freeBefore - db.Stats().RowsFree
			if err := db.Close(); err != nil {
				fail("close: %v", err)
			}

			perSec := float64(inserts) / flagDur.Seconds()
			textf("%-10s  %8d  %10.0f  %8d  %12d  %10d  %10d\n",
				strat, st.CommitShards, perSec, aborts, st.RowInserts, reclaimed, reused)
			base := record{Bench: "grow", Strategy: string(strat),
				Shards: st.CommitShards, Writers: *flagWriters, Scanners: 0, Touch: -1}
			emitAll(base, []metric{
				{"inserts_per_sec", perSec},
				{"commits_per_sec", perSec},
				{"aborts", float64(aborts)},
				{"rows_inserted", float64(st.RowInserts)},
				{"rows_reclaimed", float64(reclaimed)},
				{"rows_reused", float64(reused)},
				{"capacity_rows", float64(st.TableCapacity)},
			})
		}
	}
	textf("\n")
}

// runInserters drives writers committing one-row inserts for dur.
func runInserters(db *ankerdb.DB, writers int, dur time.Duration) (inserts, aborts uint64) {
	var stop atomic.Bool
	var cInserts, cAborts atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(writer int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(writer) + 1))
			for !stop.Load() {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					return
				}
				if _, err := w.Insert("bench", map[string]any{"c0": rnd.Int63n(1000)}); err != nil {
					// Abort so the dead txn does not pin the GC floor and
					// zero out the reclaim metrics of the reuse phase.
					_ = w.Abort()
					return
				}
				if w.Commit() == nil {
					cInserts.Add(1)
				} else {
					cAborts.Add(1)
				}
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return cInserts.Load(), cAborts.Load()
}

// reapEvenInsertedRows deletes every second row above the bulk-loaded
// prefix (the rows the timed insert phase created), returning how many
// it deleted. Deletions run one per transaction, best effort.
func reapEvenInsertedRows(db *ankerdb.DB, inserted int) int {
	deleted := 0
	for i := 0; i < inserted; i += 2 {
		row := *flagRows + i
		w, err := db.Begin(ankerdb.OLTP)
		if err != nil {
			return deleted
		}
		if err := w.Delete("bench", row); err != nil {
			_ = w.Abort()
			continue
		}
		if w.Commit() == nil {
			deleted++
		}
	}
	return deleted
}

// benchDurability sweeps the WAL sync policies across commit shard
// counts: commit throughput with durability on (fsync cost amortized
// per group under groupOnly, per record under always, absent under
// none), then a timed crash recovery (reopen and replay the full WAL)
// and a timed snapshot-driven checkpoint of the recovered database.
func benchDurability() {
	policies := parseSyncPolicies()
	shardCounts := parseShards()
	cols := *flagCols
	if cols < *flagWriters {
		cols = *flagWriters
	}
	root := *flagDurDir
	if root == "" {
		dir, err := os.MkdirTemp("", "ankerbench-durability-")
		if err != nil {
			fail("durability temp dir: %v", err)
		}
		defer func() { _ = os.RemoveAll(dir) }()
		root = dir
	}

	textf("== durability (%d writers, %v/point): WAL sync policy × commit shards ==\n", *flagWriters, *flagDur)
	textf("%-10s  %8s  %10s  %12s  %8s  %12s  %12s\n",
		"sync", "shards", "commits/s", "WAL MiB", "fsyncs", "recovery", "checkpoint")
	for _, policy := range policies {
		for i, shards := range shardCounts {
			dir := filepath.Join(root, fmt.Sprintf("%s-%d", policy, i))
			db := openLoaded(ankerdb.VMSnap, cols,
				ankerdb.WithCommitShards(shards),
				ankerdb.WithSnapshotRefresh(0),
				ankerdb.WithDurability(dir),
				ankerdb.WithSyncPolicy(policy),
				ankerdb.WithGroupCommitMaxWait(*flagMaxWait))
			commits, aborts := runCommitters(db, *flagWriters, *flagDur)
			st := db.Stats()
			captureStats("durability", st)
			if err := db.Close(); err != nil {
				fail("close: %v", err)
			}

			// Crash recovery: reopen the directory and replay the WAL.
			// Plain Open, no initial schema or bulk Load — the tables
			// come back from the schema log, so the timing is recovery
			// alone, not benchmark data loading.
			recStart := time.Now()
			db, err := ankerdb.Open(
				ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
				ankerdb.WithCostModel(costModel()),
				ankerdb.WithCommitShards(shards),
				ankerdb.WithSnapshotRefresh(0),
				ankerdb.WithDurability(dir),
				ankerdb.WithSyncPolicy(policy))
			if err != nil {
				fail("reopen %s: %v", dir, err)
			}
			recovery := time.Since(recStart)
			replayed := db.Stats().RecoveryReplayedTxns

			// Checkpoint the recovered state (pins a snapshot
			// generation; writers would not be blocked).
			ckStart := time.Now()
			if err := db.Checkpoint(); err != nil {
				fail("checkpoint: %v", err)
			}
			checkpoint := time.Since(ckStart)
			if err := db.Close(); err != nil {
				fail("close: %v", err)
			}

			perSec := float64(commits) / flagDur.Seconds()
			fsyncsPerCommit := 0.0
			if commits > 0 {
				fsyncsPerCommit = float64(st.FsyncCount) / float64(commits)
			}
			textf("%-10s  %8d  %10.0f  %12.2f  %8d  %12v  %12v\n",
				policy, st.CommitShards, perSec, float64(st.WALBytes)/(1<<20),
				st.FsyncCount, recovery, checkpoint)
			base := record{Bench: "durability", Strategy: policy.String(),
				Shards: st.CommitShards, Writers: *flagWriters, Scanners: 0, Touch: -1}
			emitAll(base, []metric{
				{"commits_per_sec", perSec},
				{"aborts", float64(aborts)},
				{"wal_bytes", float64(st.WALBytes)},
				{"fsyncs", float64(st.FsyncCount)},
				{"fsyncs_per_commit", fsyncsPerCommit},
				{"group_max_wait_ns", float64(st.GroupCommitMaxWait.Nanoseconds())},
				{"recovery_ns", float64(recovery.Nanoseconds())},
				{"recovery_replayed_txns", float64(replayed)},
				{"checkpoint_ns", float64(checkpoint.Nanoseconds())},
			})
		}
	}
	textf("\n")
}

// benchRecovery is the restart-latency sweep: database size (rows per
// column, carried in the "touch" dimension of the records) against
// crash-recovery time and the transient memory the streaming recovery
// path held. Each configuration builds a durable database with a bulk
// load, a pre-checkpoint commit tail, a checkpoint, and a
// post-checkpoint WAL tail — so the timed reopen exercises schema
// replay, streaming checkpoint load, and WAL replay together.
// recovery_peak_bytes staying flat while checkpoint_bytes grows with
// rows is the O(chunk)-restart-memory evidence (the legacy reader
// slurped whole files: peak tracked checkpoint size).
func benchRecovery() {
	sizes := []int{*flagRows, *flagRows * 4, *flagRows * 16}
	root := *flagDurDir
	if root == "" {
		dir, err := os.MkdirTemp("", "ankerbench-recovery-")
		if err != nil {
			fail("recovery temp dir: %v", err)
		}
		defer func() { _ = os.RemoveAll(dir) }()
		root = dir
	}

	textf("== recovery: DB size vs streaming restart latency (cols=%d) ==\n", *flagCols)
	textf("%-10s  %12s  %12s  %12s  %10s  %10s\n",
		"rows/col", "ckpt MiB", "WAL tail KiB", "recovery", "replayed", "peak KiB")
	for _, rows := range sizes {
		dir := filepath.Join(root, fmt.Sprintf("rows-%d", rows))
		opts := func() []ankerdb.Option {
			return []ankerdb.Option{
				ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
				ankerdb.WithCostModel(costModel()),
				ankerdb.WithSnapshotRefresh(0),
				ankerdb.WithDurability(dir),
			}
		}
		schema := ankerdb.Schema{Table: "bench"}
		for c := 0; c < *flagCols; c++ {
			schema.Columns = append(schema.Columns,
				ankerdb.ColumnDef{Name: colName(c), Type: ankerdb.Int64})
		}
		db, err := ankerdb.Open(append(opts(), ankerdb.WithInitialSchema(schema, rows))...)
		if err != nil {
			fail("open %s: %v", dir, err)
		}
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(i % 1000)
		}
		for c := 0; c < *flagCols; c++ {
			if err := db.Load("bench", colName(c), vals); err != nil {
				fail("load: %v", err)
			}
		}
		commitN := func(n int) {
			for i := 0; i < n; i++ {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					fail("%v", err)
				}
				for k := 0; k < 8; k++ {
					if err := w.Set("bench", colName((i+k)%*flagCols), (i*8+k)%rows, int64(i)); err != nil {
						fail("%v", err)
					}
				}
				if err := w.Commit(); err != nil {
					fail("commit: %v", err)
				}
			}
		}
		commitN(256)
		if err := db.Checkpoint(); err != nil {
			fail("checkpoint: %v", err)
		}
		commitN(256) // post-checkpoint WAL tail for replay
		if err := db.Close(); err != nil {
			fail("close: %v", err)
		}
		ckptBytes := globBytes(filepath.Join(dir, "checkpoint-*.ckpt"))
		walBytes := globBytes(filepath.Join(dir, "wal", "*.wal"))

		start := time.Now()
		db2, err := ankerdb.Open(opts()...)
		if err != nil {
			fail("reopen %s: %v", dir, err)
		}
		recovery := time.Since(start)
		st := db2.Stats()
		if err := db2.Close(); err != nil {
			fail("close: %v", err)
		}

		textf("%-10d  %12.2f  %12.1f  %12v  %10d  %10.1f\n", rows,
			float64(ckptBytes)/(1<<20), float64(walBytes)/(1<<10), recovery,
			st.RecoveryReplayedTxns, float64(st.RecoveryPeakBytes)/(1<<10))
		base := record{Bench: "recovery", Strategy: string(ankerdb.VMSnap),
			Shards: st.CommitShards, Writers: -1, Scanners: -1, Touch: rows}
		emitAll(base, []metric{
			{"recovery_ns", float64(recovery.Nanoseconds())},
			{"recovery_peak_bytes", float64(st.RecoveryPeakBytes)},
			{"recovery_replayed_txns", float64(st.RecoveryReplayedTxns)},
			{"recovery_replayed_loads", float64(st.RecoveryReplayedLoads)},
			{"checkpoint_bytes", float64(ckptBytes)},
			{"wal_tail_bytes", float64(walBytes)},
		})
	}
	textf("\n")
}

// benchQuery measures streaming-engine query throughput: a filtered
// group-by aggregate (SUM and COUNT of v per g, filtered on k) over a
// pinned snapshot, swept across predicate selectivity and morsel
// parallelism per snapshot strategy. The key column is bulk-loaded
// sorted, so zone maps prune the blocks outside the Between range;
// zone_skip_pct reports the pruned fraction per point. Query
// throughput is also emitted as commits_per_sec so the CI
// bench-regression gate covers the query path with its default metric
// (shards=-1 keeps the gate group independent of GOMAXPROCS).
func benchQuery(strats []ankerdb.SnapshotStrategy) {
	selectivities := []int{1, 10, 50, 100} // percent of the key range
	morselCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		morselCounts = append(morselCounts, p)
	}
	rows := *flagRows
	textf("== query: filtered group-by aggregate (%d rows, %v/point) × selectivity × morsels ==\n",
		rows, *flagDur)
	textf("%-10s  %8s  %6s  %11s  %9s  %9s  %8s\n",
		"strategy", "morsels", "sel%", "queries/s", "scanned", "skipped", "skip%")
	for _, strat := range strats {
		db := openQueryTable(strat, rows)
		for _, morsels := range morselCounts {
			for _, sel := range selectivities {
				hi := int64(rows*sel/100) - 1
				var queries uint64
				var last ankerdb.QueryStats
				deadline := time.Now().Add(*flagDur)
				for time.Now().Before(deadline) {
					res, err := db.Query("bench").
						Where(ankerdb.Between("k", 0, hi)).
						GroupBy("g").
						Aggregate(ankerdb.SumOf("v"), ankerdb.CountRows()).
						Morsels(morsels).
						Run()
					if err != nil {
						fail("query: %v", err)
					}
					last = res.Stats
					queries++
				}
				perSec := float64(queries) / flagDur.Seconds()
				skipPct := 0.0
				if total := last.BlocksScanned + last.BlocksSkipped; total > 0 {
					skipPct = 100 * float64(last.BlocksSkipped) / float64(total)
				}
				textf("%-10s  %8d  %6d  %11.0f  %9d  %9d  %7.1f%%\n",
					strat, morsels, sel, perSec, last.BlocksScanned, last.BlocksSkipped, skipPct)
				base := record{Bench: "query", Strategy: string(strat),
					Shards: -1, Writers: morsels, Scanners: -1, Touch: sel}
				emitAll(base, []metric{
					{"queries_per_sec", perSec},
					{"commits_per_sec", perSec},
					{"blocks_scanned", float64(last.BlocksScanned)},
					{"blocks_skipped", float64(last.BlocksSkipped)},
					{"zone_skip_pct", skipPct},
					{"rows_scanned", float64(last.RowsScanned)},
				})
			}
		}
		captureStats("query", db.Stats())
		if err := db.Close(); err != nil {
			fail("close: %v", err)
		}
	}
	textf("\n")
}

// openQueryTable opens a DB with the query benchmark table: k sorted
// (the zone-prunable filter column), g a 16-way grouping key, v the
// aggregated payload.
func openQueryTable(strat ankerdb.SnapshotStrategy, rows int) *ankerdb.DB {
	schema := ankerdb.Schema{Table: "bench", Columns: []ankerdb.ColumnDef{
		{Name: "k", Type: ankerdb.Int64},
		{Name: "g", Type: ankerdb.Int64},
		{Name: "v", Type: ankerdb.Int64},
	}}
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(costModel()),
		ankerdb.WithInitialSchema(schema, rows))
	if err != nil {
		fail("open %s: %v", strat, err)
	}
	k := make([]int64, rows)
	g := make([]int64, rows)
	v := make([]int64, rows)
	for i := 0; i < rows; i++ {
		k[i] = int64(i)
		g[i] = int64(i % 16)
		v[i] = int64(i % 1000)
	}
	for col, vals := range map[string][]int64{"k": k, "g": g, "v": v} {
		if err := db.Load("bench", col, vals); err != nil {
			fail("load %s: %v", col, err)
		}
	}
	return db
}

// benchIndex measures the secondary-index speedup: equality point
// lookups (hash index, ~0.1% selectivity at the default value cycle)
// and narrow ranges (ordered index, ~1% selectivity) through the
// engine's index routing, against the identical queries forced down
// the scan path with WithoutPruning. Values cycle per block so zone
// maps cannot prune the scan — the measured gap is the index alone.
// Indexed point-lookup throughput is also emitted as commits_per_sec
// so the CI bench-regression gate covers the probe path with its
// default metric (shards=-1 keeps the gate group GOMAXPROCS-free).
func benchIndex(strats []ankerdb.SnapshotStrategy) {
	rows := *flagRows
	vals := 1000 // distinct values per column: 1M rows -> 0.1% point selectivity
	if vals > rows {
		vals = rows
	}
	textf("== index: point + range lookups, indexed vs scan (%d rows, %d values, %v/side) ==\n",
		rows, vals, *flagDur)
	textf("%-10s  %-6s  %11s  %11s  %8s\n", "strategy", "probe", "indexed/s", "scan/s", "speedup")
	for _, strat := range strats {
		db := openIndexTable(strat, rows, vals)
		st0 := db.Stats()
		run := func(point, scan bool) float64 {
			var queries uint64
			deadline := time.Now().Add(*flagDur)
			for t := 0; time.Now().Before(deadline); t++ {
				target := int64(t % vals)
				q := db.Query("bench")
				if point {
					q = q.Where(ankerdb.Eq("v", target))
				} else {
					q = q.Where(ankerdb.Between("r", target, target+int64(vals/100)))
				}
				q = q.Select(ankerdb.RowID)
				if scan {
					q = q.WithoutPruning()
				}
				if _, err := q.Run(); err != nil {
					fail("index query: %v", err)
				}
				queries++
			}
			return float64(queries) / flagDur.Seconds()
		}
		pointIdx := run(true, false)
		pointScan := run(true, true)
		rangeIdx := run(false, false)
		rangeScan := run(false, true)
		st := db.Stats()
		captureStats("index", st)
		if st.IndexProbes == st0.IndexProbes {
			fail("index bench: %s served no index probes — engine routing regressed", strat)
		}
		if err := db.Close(); err != nil {
			fail("close: %v", err)
		}

		speedup := func(idx, scan float64) float64 {
			if scan <= 0 {
				return 0
			}
			return idx / scan
		}
		textf("%-10s  %-6s  %11.0f  %11.0f  %7.1fx\n", strat, "point", pointIdx, pointScan, speedup(pointIdx, pointScan))
		textf("%-10s  %-6s  %11.0f  %11.0f  %7.1fx\n", strat, "range", rangeIdx, rangeScan, speedup(rangeIdx, rangeScan))
		base := record{Bench: "index", Strategy: string(strat), Shards: -1, Writers: 1, Scanners: -1, Touch: -1}
		emitAll(base, []metric{
			{"point_indexed_per_sec", pointIdx},
			{"commits_per_sec", pointIdx},
			{"point_scan_per_sec", pointScan},
			{"point_speedup", speedup(pointIdx, pointScan)},
			{"range_indexed_per_sec", rangeIdx},
			{"range_scan_per_sec", rangeScan},
			{"range_speedup", speedup(rangeIdx, rangeScan)},
			{"index_probes", float64(st.IndexProbes - st0.IndexProbes)},
			{"index_entries", float64(st.IndexEntries)},
		})
	}
	textf("\n")
}

// openIndexTable opens a DB with the index benchmark table: v hash-
// indexed (point probes), r ordered-indexed (range probes), pad an
// unindexed payload. All three cycle through vals distinct values, so
// every block spans the whole value range and zone maps cannot prune.
func openIndexTable(strat ankerdb.SnapshotStrategy, rows, vals int) *ankerdb.DB {
	schema := ankerdb.NewSchema("bench").
		Int64("v").Indexed(ankerdb.Hash).
		Int64("r").Indexed(ankerdb.Ordered).
		Int64("pad").
		Build()
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(costModel()),
		ankerdb.WithInitialSchema(schema, rows))
	if err != nil {
		fail("open %s: %v", strat, err)
	}
	cycle := make([]int64, rows)
	for i := range cycle {
		cycle[i] = int64(i % vals)
	}
	for _, col := range []string{"v", "r", "pad"} {
		if err := db.Load("bench", col, cycle); err != nil {
			fail("load %s: %v", col, err)
		}
	}
	return db
}

// benchReplication attaches a WAL-streaming read replica to a durable
// serving primary and sweeps write rate (writer count) across commit
// shard counts. While the committers run, the primary's reported
// replica lag (in commits, from the replica's acks) is sampled and the
// replica serves OLAP aggregates, measuring the staleness/throughput
// trade the serving tier actually delivers. After the writers stop,
// the catch-up time to full convergence is timed. Write throughput is
// also emitted as commits_per_sec so the CI bench-regression gate
// covers the streaming path with its default metric.
func benchReplication() {
	shardCounts := parseShards()
	writerCounts := powersOfTwoUpTo(*flagWriters)
	cols := *flagCols
	if cols < *flagWriters {
		cols = *flagWriters
	}
	root := *flagDurDir
	if root == "" {
		dir, err := os.MkdirTemp("", "ankerbench-replication-")
		if err != nil {
			fail("replication temp dir: %v", err)
		}
		defer func() { _ = os.RemoveAll(dir) }()
		root = dir
	}

	textf("== replication: replica lag vs write rate × commit shards (%v/point, %d readers on the replica) ==\n",
		*flagDur, *flagScanners)
	textf("%-8s  %8s  %10s  %10s  %9s  %9s  %10s  %10s\n",
		"writers", "shards", "commits/s", "reads/s", "lag mean", "lag max", "catch-up", "frames")
	for _, shards := range shardCounts {
		for i, writers := range writerCounts {
			dir := filepath.Join(root, fmt.Sprintf("repl-%d-%d", shards, i))
			primary := openLoaded(ankerdb.VMSnap, cols,
				ankerdb.WithCommitShards(shards),
				ankerdb.WithDurability(dir),
				ankerdb.WithSyncPolicy(ankerdb.SyncNone),
				ankerdb.WithServeAddr("127.0.0.1:0"))
			replica, err := ankerdb.Open(
				ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
				ankerdb.WithCostModel(costModel()),
				ankerdb.WithReplicaOf(primary.ServeAddr()))
			if err != nil {
				fail("open replica: %v", err)
			}

			// Replica readers and a lag sampler run for the duration of
			// the committer workload.
			var stop atomic.Bool
			var reads, lagSum, lagSamples, lagMax atomic.Uint64
			var wg sync.WaitGroup
			for r := 0; r < *flagScanners; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						t, err := replica.Begin(ankerdb.OLAP)
						if err != nil {
							return
						}
						if _, err := t.Aggregate("bench", colName(rnd.Intn(cols)), ankerdb.Sum); err != nil {
							_ = t.Abort()
							return
						}
						if err := t.Commit(); err != nil {
							return
						}
						reads.Add(1)
					}
				}(int64(r) + 1)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					lag := primary.Stats().MaxReplicaLag
					lagSum.Add(lag)
					lagSamples.Add(1)
					if lag > lagMax.Load() {
						lagMax.Store(lag)
					}
					time.Sleep(20 * time.Millisecond)
				}
			}()

			commits, _ := runCommitters(primary, writers, *flagDur)
			target := primary.Stats().CompletedCommitTS
			stop.Store(true)
			wg.Wait()

			// Catch-up: the stream drains to the primary's final watermark.
			cuStart := time.Now()
			for replica.Stats().CompletedCommitTS < target {
				if time.Since(cuStart) > 30*time.Second {
					fail("replica never converged: %d < %d", replica.Stats().CompletedCommitTS, target)
				}
				time.Sleep(time.Millisecond)
			}
			catchup := time.Since(cuStart)
			pst := primary.Stats()
			captureStats("replication", pst)
			if err := replica.Close(); err != nil {
				fail("close replica: %v", err)
			}
			if err := primary.Close(); err != nil {
				fail("close primary: %v", err)
			}

			secs := flagDur.Seconds()
			meanLag := 0.0
			if n := lagSamples.Load(); n > 0 {
				meanLag = float64(lagSum.Load()) / float64(n)
			}
			textf("%-8d  %8d  %10.0f  %10.0f  %9.1f  %9d  %10v  %10d\n",
				writers, pst.CommitShards, float64(commits)/secs, float64(reads.Load())/secs,
				meanLag, lagMax.Load(), catchup, pst.ReplFramesStreamed)
			base := record{Bench: "replication", Strategy: string(ankerdb.VMSnap),
				Shards: pst.CommitShards, Writers: writers, Scanners: *flagScanners, Touch: -1}
			emitAll(base, []metric{
				{"commits_per_sec", float64(commits) / secs},
				{"replica_reads_per_sec", float64(reads.Load()) / secs},
				{"lag_mean_commits", meanLag},
				{"lag_max_commits", float64(lagMax.Load())},
				{"catchup_ns", float64(catchup.Nanoseconds())},
				{"frames_streamed", float64(pst.ReplFramesStreamed)},
				{"subscriber_drops", float64(pst.ReplSubscriberDrop)},
			})
		}
	}
	textf("\n")
}

// globBytes sums the sizes of files matching pattern.
func globBytes(pattern string) int64 {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		fail("glob %s: %v", pattern, err)
	}
	var n int64
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil {
			n += fi.Size()
		}
	}
	return n
}

func parseSyncPolicies() []ankerdb.SyncPolicy {
	var out []ankerdb.SyncPolicy
	for _, s := range strings.Split(*flagSync, ",") {
		p, err := ankerdb.ParseSyncPolicy(strings.TrimSpace(s))
		if err != nil {
			fail("%v", err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		fail("-sync is empty")
	}
	return out
}
