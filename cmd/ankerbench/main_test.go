package main

import (
	"path/filepath"
	"testing"
	"time"

	"ankerdb"
)

// TestMicroSweep runs every benchmark at a deliberately tiny scale —
// one strategy, one shard count, milliseconds per configuration — so
// the sweep plumbing (config parsing, workload drivers, metric
// emission, stats dump, output formats) is exercised on every test
// run. The numbers are meaningless at this scale; only completing
// without fail() is asserted.
func TestMicroSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("micro bench sweep")
	}
	*flagStrategies = "vmsnap"
	*flagRows = 512
	*flagCols = 2
	*flagWrites = 64
	*flagWriters = 2
	*flagScanners = 1
	*flagMix = "uniform,tpcc"
	*flagRefresh = 4
	*flagShards = "1"
	*flagSync = "none"
	*flagMaxWait = 50 * time.Microsecond
	*flagDur = 30 * time.Millisecond
	*flagZeroCost = true
	*flagDurDir = t.TempDir()
	*flagStats = filepath.Join(t.TempDir(), "stats.json")

	strats := []ankerdb.SnapshotStrategy{ankerdb.VMSnap}
	emitEnv()
	benchCreate(strats)
	benchWrite(strats)
	benchMixed(strats)
	benchCommit()
	benchGrow(strats)
	benchDurability()
	benchRecovery()
	benchQuery(strats)
	benchIndex(strats)
	benchReplication()
	writeStatsDump(*flagStats)

	if len(records) == 0 {
		t.Fatal("micro sweep emitted no records")
	}
	byBench := map[string]bool{}
	for _, r := range records {
		byBench[r.Bench] = true
	}
	for _, b := range []string{"create", "write", "mixed", "commit", "grow",
		"durability", "recovery", "query", "index", "replication"} {
		if !byBench[b] {
			t.Errorf("no records emitted for bench %q", b)
		}
	}

	// Every output format must render the full record set.
	for _, f := range []string{"text", "csv", "json"} {
		*flagFormat = f
		flush()
	}

	if got := parseShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("parseShards() = %v", got)
	}
	if got := powersOfTwoUpTo(8); len(got) != 4 || got[3] != 8 {
		t.Fatalf("powersOfTwoUpTo(8) = %v", got)
	}
	if costModel() != ankerdb.ZeroCost {
		t.Fatal("costModel() ignored -zerocost")
	}
	if dimStr(-1) != "" || dimStr(3) != "3" {
		t.Fatal("dimStr rendering broken")
	}
}
