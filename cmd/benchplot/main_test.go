package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traj.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderTrajectory(t *testing.T) {
	path := writeCSV(t, strings.Join([]string{
		"date,sha,mean_commits_per_sec,gomaxprocs",
		"2026-07-01T00:00:00Z,aaaaaaaaaaaa,100000,2",
		"2026-07-02T00:00:00Z,bbbbbbbbbbbb,150000,2",
		"2026-07-03T00:00:00Z,cccccccccccc,130000,2",
		"bad,row,not-a-number,2", // skipped, never fatal
	}, "\n")+"\n")
	pts, err := readPoints(path, "mean_commits_per_sec")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (malformed row skipped)", len(pts))
	}
	svg := render(pts, "title", "mean_commits_per_sec")
	for _, want := range []string{"<svg", "polyline", "aaaaaaaa", "cccccccc", "150k", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg)
		}
	}
}

func TestRenderNoData(t *testing.T) {
	pts, err := readPoints(filepath.Join(t.TempDir(), "missing.csv"), "mean_commits_per_sec")
	if err != nil || pts != nil {
		t.Fatalf("missing file: %v, %v", pts, err)
	}
	svg := render(nil, "t", "m")
	if !strings.Contains(svg, "no trajectory data") {
		t.Fatalf("empty chart missing placeholder: %s", svg)
	}
}

func TestRenderSinglePointAndFlatSeries(t *testing.T) {
	svg := render([]point{{date: "2026-07-01", sha: "abc", val: 5}}, "t", "m")
	if !strings.Contains(svg, "circle") {
		t.Fatal("single point not plotted")
	}
	svg = render([]point{{val: 7}, {val: 7}}, "t", "m")
	if !strings.Contains(svg, "polyline") {
		t.Fatal("flat series not plotted")
	}
}

func TestMissingMetricColumn(t *testing.T) {
	path := writeCSV(t, "date,sha,other\n2026,aa,1\n")
	if _, err := readPoints(path, "mean_commits_per_sec"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestEscape(t *testing.T) {
	if got := esc(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("esc = %q", got)
	}
}
