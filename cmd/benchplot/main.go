// Command benchplot renders the CI perf-trajectory CSV
// (bench-trajectory.csv: one row per push to main, appended by the
// bench workflow) into a standalone SVG line chart, so the engine's
// commit-throughput trajectory is visible in the README without
// downloading artifacts. It uses only the standard library — CI runs
// it with no module downloads.
//
// Input schema (header required):
//
//	date,sha,mean_commits_per_sec,gomaxprocs
//
// Extra columns are ignored, so the CSV can grow without breaking the
// chart. Rows that fail to parse are skipped. With fewer than one
// valid row the chart still renders, stating that no data exists yet.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

type point struct {
	date string
	sha  string
	val  float64
}

func main() {
	csvPath := flag.String("csv", "bench-trajectory.csv", "trajectory CSV to render")
	outPath := flag.String("out", "bench-trajectory.svg", "SVG file to write")
	metric := flag.String("metric", "mean_commits_per_sec", "CSV column to plot")
	title := flag.String("title", "ankerdb commit throughput per push (CI runners)", "chart title")
	flag.Parse()

	pts, err := readPoints(*csvPath, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchplot: %v\n", err)
		os.Exit(1)
	}
	svg := render(pts, *title, *metric)
	if err := os.WriteFile(*outPath, []byte(svg), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchplot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchplot: %d points -> %s\n", len(pts), *outPath)
}

// readPoints loads the metric column of the trajectory CSV. A missing
// file yields zero points (the chart renders a "no data" note), so the
// first CI run after this tool ships still succeeds.
func readPoints(path, metric string) ([]point, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1 // tolerate schema growth
	header, err := r.Read()
	if err != nil {
		return nil, nil // empty file: no data yet
	}
	col := -1
	for i, name := range header {
		if name == metric {
			col = i
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("%s: no %q column in header %v", path, metric, header)
	}
	var pts []point
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil || len(rec) <= col {
			continue // skip malformed rows, keep the chart rendering
		}
		v, err := strconv.ParseFloat(rec[col], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		p := point{val: v}
		if len(rec) > 0 {
			p.date = rec[0]
		}
		if len(rec) > 1 {
			p.sha = rec[1]
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// Chart geometry.
const (
	width   = 880
	height  = 320
	marginL = 80
	marginR = 24
	marginT = 44
	marginB = 46
)

// render builds the SVG document. The style is deliberately plain:
// axes, a gridline per tick, one polyline, a dot per push, and the
// newest value called out.
func render(pts []point, title, metric string) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" font-family="ui-monospace,monospace" font-size="12">`, width, height))
	b.WriteString(fmt.Sprintf(`<rect width="%d" height="%d" fill="#ffffff"/>`, width, height))
	b.WriteString(fmt.Sprintf(`<text x="%d" y="24" font-size="15" fill="#111">%s</text>`, marginL, esc(title)))

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	if len(pts) == 0 {
		b.WriteString(fmt.Sprintf(`<text x="%d" y="%d" fill="#666">no trajectory data yet — populated by pushes to main</text>`,
			marginL, marginT+plotH/2))
		b.WriteString(`</svg>`)
		return b.String()
	}

	lo, hi := pts[0].val, pts[0].val
	for _, p := range pts {
		lo, hi = math.Min(lo, p.val), math.Max(hi, p.val)
	}
	if hi == lo {
		hi = lo + 1 // flat series still needs a finite scale
	}
	pad := (hi - lo) * 0.08
	lo, hi = math.Max(0, lo-pad), hi+pad

	x := func(i int) float64 {
		if len(pts) == 1 {
			return marginL + float64(plotW)/2
		}
		return marginL + float64(i)*float64(plotW)/float64(len(pts)-1)
	}
	y := func(v float64) float64 {
		return marginT + float64(plotH)*(1-(v-lo)/(hi-lo))
	}

	// Horizontal gridlines + y labels at 4 ticks.
	for i := 0; i <= 4; i++ {
		v := lo + (hi-lo)*float64(i)/4
		yy := y(v)
		b.WriteString(fmt.Sprintf(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e5e5e5"/>`,
			marginL, yy, width-marginR, yy))
		b.WriteString(fmt.Sprintf(`<text x="%d" y="%.1f" text-anchor="end" fill="#666">%s</text>`,
			marginL-8, yy+4, human(v)))
	}
	// X labels: first and last push (date + short sha).
	first, last := pts[0], pts[len(pts)-1]
	b.WriteString(fmt.Sprintf(`<text x="%d" y="%d" fill="#666">%s %s</text>`,
		marginL, height-14, esc(shortDate(first.date)), esc(shortSHA(first.sha))))
	b.WriteString(fmt.Sprintf(`<text x="%d" y="%d" text-anchor="end" fill="#666">%s %s</text>`,
		width-marginR, height-14, esc(shortDate(last.date)), esc(shortSHA(last.sha))))

	// The series.
	var poly strings.Builder
	for i, p := range pts {
		poly.WriteString(fmt.Sprintf("%.1f,%.1f ", x(i), y(p.val)))
	}
	b.WriteString(fmt.Sprintf(`<polyline points="%s" fill="none" stroke="#2563eb" stroke-width="2"/>`,
		strings.TrimSpace(poly.String())))
	for i, p := range pts {
		b.WriteString(fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="2.5" fill="#2563eb"><title>%s %s: %s %s</title></circle>`,
			x(i), y(p.val), esc(p.date), esc(shortSHA(p.sha)), human(p.val), esc(metric)))
	}
	// Newest value callout.
	b.WriteString(fmt.Sprintf(`<text x="%.1f" y="%.1f" text-anchor="end" fill="#2563eb" font-weight="bold">%s</text>`,
		x(len(pts)-1), y(last.val)-8, human(last.val)))

	b.WriteString(`</svg>`)
	return b.String()
}

// human renders a value with k/M suffixes for axis labels.
func human(v float64) string {
	switch {
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func shortSHA(sha string) string {
	if len(sha) > 8 {
		return sha[:8]
	}
	return sha
}

func shortDate(d string) string {
	if i := strings.IndexByte(d, 'T'); i > 0 {
		return d[:i]
	}
	return d
}

// esc escapes the few XML-significant characters that can appear in
// CSV fields.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
