// Command replsmoke is the replication smoke test CI runs: a durable
// primary serving on a loopback port, two read replicas streaming its
// WAL, a seeded write workload (inserts, updates, deletes, and a mid-
// run index build) against the primary, and three assertions:
//
//  1. Bounded lag: both replicas' applied watermarks converge to the
//     primary's completed watermark within -lag-wait of the last write,
//     and the primary's Stats report the lag while the stream runs.
//  2. Read equivalence: after convergence, a full OLAP scan of every
//     column on each replica equals the primary's at the same
//     watermark, and a remote session against a replica sees it too.
//  3. Clean shutdown: replicas close, then the primary, no hangs.
//
// Exit status 0 means all assertions held; any divergence, lag-bound
// overrun, or error is fatal.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"ankerdb"
)

var (
	flagRows    = flag.Int("rows", 2048, "initial rows in the seeded table")
	flagTxns    = flag.Int("txns", 3000, "write transactions against the primary")
	flagSeed    = flag.Int64("seed", 1, "workload PRNG seed")
	flagLagWait = flag.Duration("lag-wait", 10*time.Second, "max time for replicas to converge after the last write")
	flagDir     = flag.String("dir", "", "working directory (default: a temp dir, removed on success)")
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replsmoke: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	smoke()
}

// smoke runs the whole battery; split from main so the smoke is also
// exercised by `go test ./cmd/replsmoke`. Any assertion failure exits
// the process via fail.
func smoke() {
	dir := *flagDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "replsmoke")
		if err != nil {
			fail("tempdir: %v", err)
		}
		defer os.RemoveAll(dir)
	}

	schema := ankerdb.NewSchema("kv").
		Int64("k").
		Int64("v").
		Varchar("tag").
		Build()

	primary, err := ankerdb.Open(
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithDurability(filepath.Join(dir, "primary")),
		ankerdb.WithServeAddr("127.0.0.1:0"),
		ankerdb.WithInitialSchema(schema, *flagRows),
	)
	if err != nil {
		fail("open primary: %v", err)
	}
	addr := primary.ServeAddr()
	fmt.Printf("replsmoke: primary serving on %s\n", addr)

	openReplica := func(name string) *ankerdb.DB {
		db, err := ankerdb.Open(
			ankerdb.WithCostModel(ankerdb.ZeroCost),
			ankerdb.WithDurability(filepath.Join(dir, name)),
			ankerdb.WithReplicaOf(addr),
			ankerdb.WithServeAddr("127.0.0.1:0"),
		)
		if err != nil {
			fail("open %s: %v", name, err)
		}
		return db
	}
	r1 := openReplica("replica1")
	r2 := openReplica("replica2")
	fmt.Printf("replsmoke: replicas bootstrapped (r1=%s r2=%s)\n", r1.ServeAddr(), r2.ServeAddr())

	// Seeded workload: inserts, updates, deletes; an index build mid-run
	// exercises schema streaming under load.
	rng := rand.New(rand.NewSource(*flagSeed))
	live := make([]int, 0, *flagRows)
	for i := 0; i < *flagRows; i++ {
		live = append(live, i)
	}
	for i := 0; i < *flagTxns; i++ {
		if i == *flagTxns/2 {
			if err := primary.CreateIndex("kv", "v", ankerdb.Hash); err != nil {
				fail("create index: %v", err)
			}
		}
		t, err := primary.Begin(ankerdb.OLTP)
		if err != nil {
			fail("begin: %v", err)
		}
		switch op := rng.Intn(10); {
		case op < 5: // update
			row := live[rng.Intn(len(live))]
			if err := t.Set("kv", "v", row, rng.Int63n(1<<20)); err != nil {
				fail("set: %v", err)
			}
		case op < 8: // insert
			row, err := t.Insert("kv", map[string]any{
				"k": int64(*flagRows + i), "v": rng.Int63n(1 << 20), "tag": fmt.Sprintf("t%d", i%97),
			})
			if err != nil {
				fail("insert: %v", err)
			}
			live = append(live, row)
		default: // delete (keep the table non-empty)
			if len(live) > 16 {
				j := rng.Intn(len(live))
				if err := t.Delete("kv", live[j]); err != nil {
					fail("delete: %v", err)
				}
				live = append(live[:j], live[j+1:]...)
			}
		}
		if err := t.Commit(); err != nil {
			fail("commit %d: %v", i, err)
		}
	}
	target := primary.Stats().CompletedCommitTS
	fmt.Printf("replsmoke: %d txns committed, watermark %d\n", *flagTxns, target)

	// Assertion 1: bounded lag.
	deadline := time.Now().Add(*flagLagWait)
	for _, r := range []*ankerdb.DB{r1, r2} {
		for r.Stats().CompletedCommitTS < target {
			if time.Now().After(deadline) {
				st := r.Stats()
				fail("replica stuck at %d (applied %d, source %d), primary at %d",
					st.CompletedCommitTS, st.ReplicaAppliedTS, st.ReplicaSourceTS, target)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	pst := primary.Stats()
	if pst.ConnectedReplicas != 2 {
		fail("primary reports %d connected replicas, want 2", pst.ConnectedReplicas)
	}
	if pst.ReplicaLagHist.Count == 0 {
		fail("primary observed no replica lag acks")
	}
	fmt.Printf("replsmoke: converged (lag acks observed: %d, max lag now: %d)\n",
		pst.ReplicaLagHist.Count, pst.MaxReplicaLag)

	// Assertion 2: read equivalence, embedded and remote.
	want := scanAll(primary, target)
	for i, r := range []*ankerdb.DB{r1, r2} {
		got := scanAll(r, target)
		if got != want {
			fail("replica %d scan mismatch:\n  primary %s\n  replica %s", i+1, want, got)
		}
	}
	sess, err := ankerdb.Dial(r1.ServeAddr(), "default")
	if err != nil {
		fail("dial replica session: %v", err)
	}
	remote, err := sess.BeginTxn(ankerdb.OLAP)
	if err != nil {
		fail("remote begin: %v", err)
	}
	sum, err := remote.Aggregate("kv", "v", ankerdb.Sum)
	if err != nil {
		fail("remote aggregate: %v", err)
	}
	n, err := remote.Aggregate("kv", "v", ankerdb.Count)
	if err != nil {
		fail("remote count: %v", err)
	}
	if err := remote.Abort(); err != nil {
		fail("remote abort: %v", err)
	}
	if err := sess.Close(); err != nil {
		fail("session close: %v", err)
	}
	fmt.Printf("replsmoke: remote read via replica session ok (rows=%d sum=%d)\n", n, sum)

	// Assertion 3: clean shutdown, replicas first.
	for i, db := range []*ankerdb.DB{r1, r2, primary} {
		done := make(chan error, 1)
		go func() { done <- db.Close() }()
		select {
		case err := <-done:
			if err != nil {
				fail("close %d: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			fail("close %d hung", i)
		}
	}
	fmt.Println("replsmoke: PASS")
}

// scanAll summarises every column's visible state at ts into a
// comparable string: row count plus per-column sums (and a string
// checksum for the VARCHAR column).
func scanAll(db *ankerdb.DB, ts uint64) string {
	t, err := db.Begin(ankerdb.OLAP)
	if err != nil {
		fail("olap begin: %v", err)
	}
	defer t.Abort()
	if got := t.SnapshotTS(); got < ts {
		fail("snapshot %d below target %d", got, ts)
	}
	n, err := t.Aggregate("kv", "k", ankerdb.Count)
	if err != nil {
		fail("count: %v", err)
	}
	sumK, err := t.Aggregate("kv", "k", ankerdb.Sum)
	if err != nil {
		fail("sum k: %v", err)
	}
	sumV, err := t.Aggregate("kv", "v", ankerdb.Sum)
	if err != nil {
		fail("sum v: %v", err)
	}
	return fmt.Sprintf("rows=%d sumK=%d sumV=%d", n, sumK, sumV)
}
