package main

import "testing"

// TestSmoke runs the replication smoke at a reduced scale. A failed
// assertion exits the test binary via fail, which the test framework
// reports as a failure; reaching the end means every assertion held.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("replication smoke needs real loopback streaming")
	}
	*flagRows = 256
	*flagTxns = 500
	*flagDir = t.TempDir()
	smoke()
}
