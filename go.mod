module ankerdb

go 1.22
