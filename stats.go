package ankerdb

import "time"

// Stats is a point-in-time snapshot of engine counters, the surface
// later benchmarking PRs measure against.
type Stats struct {
	Strategy string // snapshot strategy name

	// Transaction pipeline.
	Commits      uint64 // OLTP commits that materialised writes
	EmptyCommits uint64 // read-only OLTP commits
	Aborts       uint64 // explicit aborts + validation failures
	Conflicts    uint64 // precision-locking validation failures
	OLTPBegun    uint64
	OLAPBegun    uint64
	ActiveTxns   int // running OLTP transactions

	// Snapshot lifecycle.
	SnapshotsCreated    uint64        // column snapshots created
	SnapshotsReleased   uint64        // column snapshots released
	ActiveSnapshots     uint64        // created - released
	Generations         uint64        // snapshot generations started
	SnapshotCreateTime  time.Duration // cumulative creation latency
	LastSnapshotTime    time.Duration // latency of the newest snapshot
	SnapshotStaleness   uint64        // commits the current generation lags
	PinnedGenerations   int           // generations still referenced
	CompletedCommitTS   uint64        // newest completed commit timestamp
	VersionNodes        int64         // live version-chain nodes
	VersionsGCed        int64         // version nodes removed by vacuum
	Vacuums             uint64        // chain GC passes
	RecentCommitRecords int           // retained validation records

	// Simulated virtual memory subsystem (COW page copies, faults,
	// VMA bookkeeping, vm_snapshot calls, ...).
	VM          VMStats
	MappedBytes uint64 // virtual size of the simulated process
	NumVMAs     int    // VMA count (Figure 5a's x-axis driver)
}

// Stats returns current engine counters.
func (db *DB) Stats() Stats {
	m := db.snaps
	// released first: every release is preceded by a create, so loading
	// in this order keeps created >= released even mid-lifecycle.
	released := m.released.Load()
	created := m.created.Load()

	s := Stats{
		Strategy:     db.strat.Name(),
		Commits:      db.st.commits.Load(),
		EmptyCommits: db.st.emptyCommits.Load(),
		Aborts:       db.st.aborts.Load(),
		Conflicts:    db.st.conflicts.Load(),
		OLTPBegun:    db.st.oltpBegun.Load(),
		OLAPBegun:    db.st.olapBegun.Load(),
		ActiveTxns:   db.activ.Len(),

		SnapshotsCreated:   created,
		SnapshotsReleased:  released,
		ActiveSnapshots:    created - released,
		SnapshotCreateTime: time.Duration(m.createdNanos.Load()),
		LastSnapshotTime:   time.Duration(m.lastNanos.Load()),
		CompletedCommitTS:  db.oracle.Completed(),

		VersionsGCed:        db.st.versionsGCed.Load(),
		Vacuums:             db.st.vacuums.Load(),
		RecentCommitRecords: db.recent.Len(),

		VM:          db.proc.Stats(),
		MappedBytes: db.proc.MappedBytes(),
		NumVMAs:     db.proc.NumVMAs(),
	}

	m.mu.Lock()
	s.Generations = m.generations
	s.PinnedGenerations = len(m.live)
	if cur := m.current; cur != nil && cur.tsOK {
		// Re-read Completed: the sample above may predate this
		// generation, and staleness must not underflow.
		if c := db.oracle.Completed(); c > cur.ts {
			s.SnapshotStaleness = c - cur.ts
		}
	}
	m.mu.Unlock()

	db.mu.RLock()
	for _, t := range db.tabList {
		for _, c := range t.cols {
			s.VersionNodes += c.chain.Nodes()
		}
	}
	db.mu.RUnlock()
	return s
}
