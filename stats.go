package ankerdb

import (
	"fmt"
	"strings"
	"time"
)

// Stats is a point-in-time snapshot of engine counters, the surface
// later benchmarking PRs measure against.
type Stats struct {
	Strategy string // snapshot strategy name

	// Transaction pipeline.
	Commits      uint64 // OLTP commits that materialised writes
	EmptyCommits uint64 // read-only OLTP commits
	Aborts       uint64 // explicit aborts + validation failures
	Conflicts    uint64 // precision-locking validation failures
	OLTPBegun    uint64
	OLAPBegun    uint64
	ActiveTxns   int // running OLTP transactions

	// Sharded group-commit pipeline.
	CommitShards  int    // configured commit shards
	CommitBatches uint64 // commit batches processed (group + cross-shard)
	// CommitShardConflicts counts commits whose footprint spanned more
	// than one shard and therefore serialized against multiple shard
	// locks (cross-shard commits). It is a routing/contention measure,
	// NOT a validation-failure count — see Conflicts for those.
	CommitShardConflicts uint64
	GroupCommitSize      GroupCommitHist // batch-size distribution
	// GroupCommitMaxWait is the configured pre-lock linger that lets
	// contemporaneous commits batch together (WithGroupCommitMaxWait;
	// zero = contend for the shard lock immediately).
	GroupCommitMaxWait time.Duration

	// Durability subsystem (zero without WithDurability).
	Durable    bool
	SyncPolicy string // "always", "groupOnly" or "none"
	// WALBytes/WALRecords count record bytes and commit + bulk-load
	// records in the log: appended by this process plus the tail
	// replayed by Open (a recovered tail counts toward auto-checkpoint
	// growth like fresh appends, so it is checkpointed away instead of
	// re-replayed forever).
	WALBytes             uint64
	WALRecords           uint64
	FsyncCount           uint64 // fsyncs issued (segments, schema log, checkpoints)
	CheckpointCount      uint64 // checkpoints completed by this process
	AutoCheckpointCount  uint64 // of those, triggered by the scheduler
	RecoveryReplayedTxns uint64 // WAL commit records re-applied by Open
	// RecoveryReplayedLoads is the number of bulk-load chunk records
	// re-applied by Open.
	RecoveryReplayedLoads uint64
	// RecoveryPeakBytes is the high-water mark of transient buffer
	// bytes the streaming recovery readers held during Open (bufio
	// windows + the largest record frame): O(chunk) however large the
	// checkpoint and segments are, and zero when Open replayed nothing.
	RecoveryPeakBytes uint64

	// Snapshot lifecycle.
	SnapshotsCreated    uint64        // column snapshots created
	SnapshotsReleased   uint64        // column snapshots released
	ActiveSnapshots     uint64        // created - released
	Generations         uint64        // snapshot generations started
	SnapshotCreateTime  time.Duration // cumulative creation latency
	LastSnapshotTime    time.Duration // latency of the newest snapshot
	SnapshotStaleness   uint64        // commits the current generation lags
	PinnedGenerations   int           // generations still referenced
	CompletedCommitTS   uint64        // newest completed commit timestamp
	VersionNodes        int64         // live version-chain nodes
	VersionsGCed        int64         // version nodes removed by vacuum
	Vacuums             uint64        // chain GC passes
	RecentCommitRecords int           // retained validation records

	// Query engine.
	QueriesRun uint64 // queries executed through Txn.Query / DB.Query
	// ZoneMapSkippedChunks / ZoneMapScannedChunks count probe-scan
	// blocks pruned by zone maps vs actually read, summed over queries:
	// the measure of how much scan work predicate pushdown avoided.
	ZoneMapSkippedChunks uint64
	ZoneMapScannedChunks uint64

	// Secondary indexes.
	IndexProbes uint64 // index probes served (engine routing + Txn.Lookup/Filter)
	// IndexBackedQueries counts engine queries whose probe scan was
	// replaced by an index probe (a subset of QueriesRun).
	IndexBackedQueries uint64
	// IndexEntries counts live (not death-stamped) entries summed over
	// every secondary index; IndexEntriesRaw additionally counts
	// death-stamped entries Vacuum has not pruned yet. Raw minus live is
	// the churn backlog — the gap that made EstimateRange over-estimate
	// before it was live-scaled.
	IndexEntries    int64
	IndexEntriesRaw int64

	// Growable tables (Txn.Insert / Txn.Delete).
	RowInserts    uint64 // rows transactionally born (committed inserts)
	RowDeletes    uint64 // rows transactionally killed (committed deletes)
	RowsReclaimed uint64 // dead rows moved to free lists by Vacuum
	RowsFree      int    // free-list slots currently awaiting reuse
	TableCapacity int    // mapped row capacity summed over tables

	// Simulated virtual memory subsystem (COW page copies, faults,
	// VMA bookkeeping, vm_snapshot calls, ...).
	VM          VMStats
	MappedBytes uint64 // virtual size of the simulated process
	NumVMAs     int    // VMA count (Figure 5a's x-axis driver)

	// Phase-latency histograms (log2 nanosecond buckets — see Hist).
	// Stats snapshots them before loading any counter, and every
	// instrumented site increments its companion counter before
	// observing, so a histogram's Count never exceeds its counter
	// mid-flight and equals it once writers quiesce (e.g.
	// SnapshotCreateHist.Count == SnapshotsCreated,
	// QueryExecHist.Count == QueriesRun,
	// CommitValidateHist.Count == CommitBatches).
	CommitLingerHist   Hist // group-commit pre-lock linger, per lingering committer
	CommitLockWaitHist Hist // contended shard commit-lock waits (the uncontended TryLock path is unobserved)
	CommitValidateHist Hist // precision-locking validation, one observation per batch
	CommitInstallHist  Hist // write materialisation, one observation per batch
	CommitFsyncHist    Hist // WAL append+sync, per batch that logged records
	SnapshotCreateHist Hist // column snapshot creation (Fig 5's y-axis, per strategy)
	QueryExecHist      Hist // Query.Run end-to-end execution
	CheckpointHist     Hist // checkpoint duration
	RecoveryReplayHist Hist // Open-time replay (at most one observation)
	VacuumHist         Hist // vacuum passes (explicit + commit-path)

	// Replication & serving tier (zero without WithServeAddr /
	// WithReplicaOf). Primary side: connected replica feeds, stream
	// frames released, subscribers dropped for falling behind, the
	// published watermark, and the worst replica lag — the primary's
	// completed commit count beyond the replica's newest acknowledged
	// applied timestamp. ReplicaLagHist buckets are commit COUNTS (log2),
	// not nanoseconds, one observation per ack received.
	Serving            bool
	ConnectedReplicas  int
	ReplFramesStreamed uint64
	ReplSubscriberDrop uint64
	ReplWatermark      uint64
	MaxReplicaLag      uint64
	ReplicaLagHist     Hist

	// Replica side: whether this DB replicates (until Promote), the
	// connector's health, and the staleness bound — ReplicaAppliedTS is
	// the newest commit timestamp applied, ReplicaSourceTS the newest
	// watermark the primary advertised; reads see everything at or below
	// CompletedCommitTS, which trails ReplicaSourceTS by the apply lag.
	Replica           bool
	Promoted          bool
	ReplicaConnected  bool
	ReplicaAppliedTS  uint64
	ReplicaSourceTS   uint64
	ReplicaFrames     uint64
	ReplicaReconnects uint64
	ReplicaBootstraps uint64
}

// GroupCommitHist is a log2 histogram of commit batch sizes: how many
// transactions each shard-lock acquisition committed together. Bucket
// upper bounds are GroupCommitBucketBounds (1, 2, 4, 8, 16, 32, 64;
// the final bucket is unbounded). Cross-shard commits count as batches
// of one.
type GroupCommitHist struct {
	Buckets [8]uint64
}

// GroupCommitBucketBounds holds the inclusive upper bound of each
// bounded GroupCommitHist bucket: Buckets[i] counts batches of up to
// GroupCommitBucketBounds[i] transactions (and more than the previous
// bound). The last histogram bucket has no bound here — it counts
// batches larger than the final entry.
var GroupCommitBucketBounds = [7]int{1, 2, 4, 8, 16, 32, 64}

// Observations returns the total number of batches recorded.
func (h GroupCommitHist) Observations() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// String renders the distribution with its bucket bounds, eliding
// empty buckets: e.g. "batches=12 <=1:4 <=4:6 >64:2".
func (h GroupCommitHist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batches=%d", h.Observations())
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if i < len(GroupCommitBucketBounds) {
			fmt.Fprintf(&b, " <=%d:%d", GroupCommitBucketBounds[i], n)
		} else {
			fmt.Fprintf(&b, " >%d:%d", GroupCommitBucketBounds[len(GroupCommitBucketBounds)-1], n)
		}
	}
	return b.String()
}

// Stats returns current engine counters.
func (db *DB) Stats() Stats {
	// Histograms first, before ANY counter load: every instrumented
	// site bumps its companion counter before observing, so snapshotting
	// in this order bounds each histogram's Count by the counter even
	// mid-operation.
	tel := &db.tel
	lingerH := tel.commitLinger.Snapshot()
	lockWaitH := tel.commitLockWait.Snapshot()
	validateH := tel.commitValidate.Snapshot()
	installH := tel.commitInstall.Snapshot()
	fsyncH := tel.commitFsync.Snapshot()
	snapCreateH := tel.snapCreate.Snapshot()
	queryExecH := tel.queryExec.Snapshot()
	checkpointH := tel.checkpoint.Snapshot()
	recoveryH := tel.recovery.Snapshot()
	vacuumH := tel.vacuum.Snapshot()
	replLagH := tel.replLag.Snapshot()

	m := db.snaps
	// released first: every release is preceded by a create, so loading
	// in this order keeps created >= released even mid-lifecycle.
	released := m.released.Load()
	created := m.created.Load()

	s := Stats{
		CommitLingerHist:   lingerH,
		CommitLockWaitHist: lockWaitH,
		CommitValidateHist: validateH,
		CommitInstallHist:  installH,
		CommitFsyncHist:    fsyncH,
		SnapshotCreateHist: snapCreateH,
		QueryExecHist:      queryExecH,
		CheckpointHist:     checkpointH,
		RecoveryReplayHist: recoveryH,
		VacuumHist:         vacuumH,

		Strategy:     db.strat.Name(),
		Commits:      db.st.commits.Load(),
		EmptyCommits: db.st.emptyCommits.Load(),
		Aborts:       db.st.aborts.Load(),
		Conflicts:    db.st.conflicts.Load(),
		OLTPBegun:    db.st.oltpBegun.Load(),
		OLAPBegun:    db.st.olapBegun.Load(),
		ActiveTxns:   db.activ.Len(),

		CommitShards:         len(db.shards),
		CommitBatches:        db.st.commitBatches.Load(),
		CommitShardConflicts: db.st.crossShard.Load(),
		GroupCommitMaxWait:   db.groupMaxWait,

		CheckpointCount:       db.st.checkpoints.Load(),
		AutoCheckpointCount:   db.st.autoCheckpoints.Load(),
		RecoveryReplayedTxns:  db.recoveredTxns,
		RecoveryReplayedLoads: db.recoveredLoads,

		SnapshotsCreated:   created,
		SnapshotsReleased:  released,
		ActiveSnapshots:    created - released,
		SnapshotCreateTime: time.Duration(m.createdNanos.Load()),
		LastSnapshotTime:   time.Duration(m.lastNanos.Load()),
		CompletedCommitTS:  db.oracle.Completed(),

		VersionsGCed: db.st.versionsGCed.Load(),
		Vacuums:      db.st.vacuums.Load(),

		QueriesRun:           db.st.queriesRun.Load(),
		ZoneMapSkippedChunks: db.st.zoneSkipped.Load(),
		ZoneMapScannedChunks: db.st.zoneScanned.Load(),

		IndexProbes:        db.st.indexProbes.Load(),
		IndexBackedQueries: db.st.indexQueries.Load(),

		RowInserts:    db.st.rowInserts.Load(),
		RowDeletes:    db.st.rowDeletes.Load(),
		RowsReclaimed: db.st.rowsReclaimed.Load(),

		VM:          db.proc.Stats(),
		MappedBytes: db.proc.MappedBytes(),
		NumVMAs:     db.proc.NumVMAs(),
	}
	if db.wal != nil {
		s.Durable = true
		s.SyncPolicy = db.wal.Policy().String()
		s.WALBytes = db.wal.Bytes()
		s.WALRecords = db.wal.Records()
		s.FsyncCount = db.wal.Fsyncs()
		s.RecoveryPeakBytes = db.wal.RecoveryPeakBytes()
	}
	for i := range db.st.groupSizes {
		s.GroupCommitSize.Buckets[i] = db.st.groupSizes[i].Load()
	}
	for _, sh := range db.shards {
		s.RecentCommitRecords += sh.recent.Len()
	}
	if db.pub != nil {
		s.ReplFramesStreamed = db.pub.Frames()
		s.ReplSubscriberDrop = db.pub.Drops()
		s.ReplWatermark = db.pub.Watermark()
	}
	if db.srv != nil {
		s.Serving = true
	}
	db.peerMu.Lock()
	s.ConnectedReplicas = len(db.peers)
	db.peerMu.Unlock()
	s.MaxReplicaLag = db.maxReplicaLag()
	s.ReplicaLagHist = replLagH
	if r := db.rep; r != nil {
		s.Replica = !db.promoted.Load()
		s.Promoted = db.promoted.Load()
		s.ReplicaConnected = r.connected.Load()
		s.ReplicaAppliedTS = r.applied.Load()
		s.ReplicaSourceTS = r.sourceW.Load()
		s.ReplicaFrames = r.frames.Load()
		s.ReplicaReconnects = r.reconnects.Load()
		s.ReplicaBootstraps = r.bootstraps.Load()
	}

	m.mu.Lock()
	s.Generations = m.generations
	s.PinnedGenerations = len(m.live)
	if cur := m.current; cur != nil && cur.tsOK {
		// Re-read Completed: the sample above may predate this
		// generation, and staleness must not underflow.
		if c := db.oracle.Completed(); c > cur.ts {
			s.SnapshotStaleness = c - cur.ts
		}
	}
	m.mu.Unlock()

	db.mu.RLock()
	tabs := append([]*table(nil), db.tabList...)
	db.mu.RUnlock()
	for _, t := range tabs {
		if t.dropped.Load() {
			continue
		}
		for _, c := range t.cols {
			s.VersionNodes += c.chain.Nodes()
			if ix := c.idx.Load(); ix != nil {
				s.IndexEntries += int64(ix.LiveLen())
				s.IndexEntriesRaw += int64(ix.Len())
			}
		}
		s.TableCapacity += t.st.Capacity()
		t.amu.Lock()
		s.RowsFree += len(t.free)
		t.amu.Unlock()
	}
	return s
}
