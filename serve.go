package ankerdb

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ankerdb/internal/repl"
)

// Server is the networked serving tier: one listener multiplexing
// remote sessions and replica WAL streams onto registered databases,
// keyed by tenant namespace. A database opened WithServeAddr owns a
// private Server with itself registered under its namespace; a
// multi-tenant process builds one with NewServer and Registers several
// databases behind one port (cmd/ankerserve).
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	dbs    map[string]*DB
	conns  map[*repl.Conn]struct{}
	closed bool

	quit chan struct{}
	wg   sync.WaitGroup

	maxSessions int
	sessions    atomic.Int64
}

// defaultMaxSessions is the WithServeMaxSessions default admission cap.
const defaultMaxSessions = 256

// heartbeatEvery is how often a quiescent replica feed ships the
// completion watermark (and solicits an applied-TS ack back).
const heartbeatEvery = 100 * time.Millisecond

// NewServer listens on addr and serves sessions and replica streams
// for every database later Registered. addr may end in ":0" to pick a
// free port — read it back with Addr.
func NewServer(addr string) (*Server, error) { return newServer(addr, 0) }

func newServer(addr string, maxSessions int) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if maxSessions <= 0 {
		maxSessions = defaultMaxSessions
	}
	s := &Server{
		ln:          ln,
		dbs:         map[string]*DB{},
		conns:       map[*repl.Conn]struct{}{},
		quit:        make(chan struct{}),
		maxSessions: maxSessions,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Register serves db under namespace ns. Registering the same
// namespace again replaces the previous database (existing connections
// keep the one they resolved).
func (s *Server) Register(ns string, db *DB) {
	if ns == "" {
		ns = "default"
	}
	s.mu.Lock()
	s.dbs[ns] = db
	s.mu.Unlock()
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs every live connection and waits for
// the per-connection goroutines to drain. Registered databases are NOT
// closed — the server is a front, not an owner.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	err := s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) closing() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// track registers a live connection for Close-time severing; returns
// false when the server is already closing.
func (s *Server) track(c *repl.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c *repl.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Close) or fatal: stop accepting
		}
		c := repl.NewConn(nc)
		if !s.track(c) {
			_ = c.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(c)
			defer c.Close()
			s.handle(c)
		}()
	}
}

// handle runs one connection: hello, namespace resolution, role
// dispatch.
func (s *Server) handle(c *repl.Conn) {
	typ, payload, err := c.ReadMsg()
	if err != nil || typ != repl.MsgHello {
		c.SendErr("ankerdb: expected hello")
		return
	}
	var hello repl.Hello
	if err := repl.DecodeGob(payload, &hello); err != nil {
		c.SendErr("ankerdb: bad hello")
		return
	}
	ns := hello.Namespace
	if ns == "" {
		ns = "default"
	}
	s.mu.Lock()
	db := s.dbs[ns]
	s.mu.Unlock()
	if db == nil {
		c.SendErr(fmt.Sprintf("ankerdb: unknown namespace %q", ns))
		return
	}
	switch hello.Role {
	case repl.RoleReplica:
		s.serveReplica(c, db, hello)
	case repl.RoleSession:
		s.serveSession(c, db)
	default:
		c.SendErr(fmt.Sprintf("ankerdb: unknown role %q", hello.Role))
	}
}

// serveReplica feeds one replica: attach (or resume) a publisher
// subscriber FIRST, then bootstrap if needed, then pump released
// records, batched between flushes, with watermark heartbeats on
// quiescence. An ack-reader goroutine folds the replica's applied
// watermark into the primary's lag telemetry.
func (s *Server) serveReplica(c *repl.Conn, db *DB, hello repl.Hello) {
	if db.pub == nil {
		c.SendErr("ankerdb: replication requires durability on the primary")
		return
	}
	var sub *repl.Subscriber
	snapshot := true
	if hello.AfterTS > 0 {
		if rs, ok := db.pub.Resume(hello.AfterTS, replicaSendBuf); ok {
			sub, snapshot = rs, false
		}
	}
	if sub == nil {
		// Attach before the snapshot capture: records released during
		// the capture duplicate into it (harmless, idempotent replay);
		// the reverse order would lose them.
		sub = db.pub.Attach(replicaSendBuf)
	}
	defer db.pub.Detach(sub)
	if err := c.SendGob(repl.MsgWelcome, repl.Welcome{Snapshot: snapshot, TS: db.oracle.Completed()}); err != nil {
		return
	}
	if snapshot {
		if err := db.streamBootstrap(c); err != nil {
			c.SendErr(fmt.Sprintf("ankerdb: bootstrap failed: %v", err))
			return
		}
	}

	peer := &replPeer{}
	peer.acked.Store(hello.AfterTS)
	db.addPeer(peer)
	defer db.removePeer(peer)

	// Ack reader: the only frames a replica sends after hello are acks.
	// Its read error also serves as the disconnect signal.
	readErr := make(chan struct{})
	go func() {
		defer close(readErr)
		for {
			typ, payload, err := c.ReadMsg()
			if err != nil {
				return
			}
			if typ != repl.MsgAck {
				continue
			}
			var ack repl.Ack
			if err := repl.DecodeGob(payload, &ack); err != nil {
				return
			}
			db.noteAck(peer, ack.AppliedTS)
		}
	}()

	hb := time.NewTicker(heartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-readErr:
			return
		case rec, ok := <-sub.C:
			if !ok {
				if sub.Lost() {
					c.SendErr("ankerdb: replica fell behind the stream buffer; reconnect to re-bootstrap")
				}
				return
			}
			if err := s.writeRecord(c, rec); err != nil {
				return
			}
			// Drain whatever already queued behind it, then flush once.
			if !s.drainSub(c, sub) {
				return
			}
			if err := c.Flush(); err != nil {
				return
			}
		case <-hb.C:
			// Watermark first, drain second: the published watermark only
			// covers records already released to this subscriber's buffer,
			// so once the drain has written them the heartbeat may follow.
			// Reading the watermark after (or instead of) draining could
			// announce W while records with TS <= W still sit unread in
			// sub.C — the replica would ObserveCommitted(W) before applying
			// them, serving torn snapshots and acking a watermark it never
			// applied through.
			w := db.pub.Watermark()
			if !s.drainSub(c, sub) {
				return
			}
			if err := c.WriteGob(repl.MsgHeartbeat, repl.Heartbeat{Watermark: w}); err != nil {
				return
			}
			if err := c.Flush(); err != nil {
				return
			}
		}
	}
}

// drainSub writes every record already buffered in sub.C without
// blocking (no flush). Returns false when the connection must close: a
// write failed, or the channel closed (overflow is reported to the
// peer before returning).
func (s *Server) drainSub(c *repl.Conn, sub *repl.Subscriber) bool {
	for {
		select {
		case rec, ok := <-sub.C:
			if !ok {
				if sub.Lost() {
					c.SendErr("ankerdb: replica fell behind the stream buffer; reconnect to re-bootstrap")
				}
				return false
			}
			if err := s.writeRecord(c, rec); err != nil {
				return false
			}
		default:
			return true
		}
	}
}

// writeRecord buffers one published record as its stream frame.
// Heartbeat records (in-band watermarks from Resume replays and
// Advance) become heartbeat frames.
func (s *Server) writeRecord(c *repl.Conn, rec repl.Record) error {
	if rec.Type == repl.MsgHeartbeat {
		return c.WriteGob(repl.MsgHeartbeat, repl.Heartbeat{Watermark: rec.TS})
	}
	return c.WriteMsg(rec.Type, rec.Payload)
}

// serveSession runs one remote session: admission, welcome, then a
// request/response loop over the session's transactions. Transactions
// left open when the connection dies are aborted (OLTP) or released
// (OLAP snapshot pins).
func (s *Server) serveSession(c *repl.Conn, db *DB) {
	if n := s.sessions.Add(1); n > int64(s.maxSessions) {
		s.sessions.Add(-1)
		_ = c.SendGob(repl.MsgErr, repl.WireErr{Msg: ErrTooManySessions.Error(), Code: errToWire(ErrTooManySessions)})
		return
	}
	defer s.sessions.Add(-1)
	if err := c.SendGob(repl.MsgWelcome, repl.Welcome{TS: db.oracle.Completed()}); err != nil {
		return
	}
	txns := map[uint64]*Txn{}
	defer func() {
		for _, t := range txns {
			_ = t.Abort()
		}
	}()
	var nextTxn uint64
	for {
		typ, payload, err := c.ReadMsg()
		if err != nil {
			return
		}
		if typ != repl.MsgRequest {
			c.SendErr(fmt.Sprintf("ankerdb: unexpected frame type %d in session", typ))
			return
		}
		var req wireReq
		if err := repl.DecodeGob(payload, &req); err != nil {
			c.SendErr("ankerdb: bad request")
			return
		}
		resp := serveReq(db, txns, &nextTxn, &req)
		if err := c.SendGob(repl.MsgResponse, resp); err != nil {
			return
		}
	}
}

// serveReq executes one session request against the engine.
func serveReq(db *DB, txns map[uint64]*Txn, nextTxn *uint64, req *wireReq) wireResp {
	fail := func(err error) wireResp {
		return wireResp{Err: errToWire(err), Msg: err.Error()}
	}
	if req.Op == opBegin {
		t, err := db.Begin(req.Class)
		if err != nil {
			return fail(err)
		}
		*nextTxn++
		txns[*nextTxn] = t
		return wireResp{Txn: *nextTxn, TS: t.SnapshotTS()}
	}
	if req.Op == opStats {
		st := db.Stats()
		return wireResp{Stats: &st}
	}
	t := txns[req.Txn]
	if t == nil {
		return fail(ErrTxnDone)
	}
	switch req.Op {
	case opCommit:
		delete(txns, req.Txn)
		if err := t.Commit(); err != nil {
			return fail(err)
		}
		return wireResp{}
	case opAbort:
		delete(txns, req.Txn)
		if err := t.Abort(); err != nil {
			return fail(err)
		}
		return wireResp{}
	case opGet:
		v, err := t.Get(req.Tab, req.Col, req.Row)
		if err != nil {
			return fail(err)
		}
		return wireResp{Val: v}
	case opGetString:
		s, err := t.GetString(req.Tab, req.Col, req.Row)
		if err != nil {
			return fail(err)
		}
		return wireResp{Str: s}
	case opScan:
		vals, err := t.Scan(req.Tab, req.Col)
		if err != nil {
			return fail(err)
		}
		return wireResp{Vals: vals}
	case opLookup:
		rows, err := t.Lookup(req.Tab, req.Col, req.Val)
		if err != nil {
			return fail(err)
		}
		return wireResp{Rows: rows}
	case opFilter:
		rows, err := t.Filter(req.Tab, req.Col, req.Lo, req.Hi)
		if err != nil {
			return fail(err)
		}
		return wireResp{Rows: rows}
	case opAggregate:
		v, err := t.Aggregate(req.Tab, req.Col, req.Agg)
		if err != nil {
			return fail(err)
		}
		return wireResp{Val: v}
	case opSet:
		if err := t.Set(req.Tab, req.Col, req.Row, req.Val); err != nil {
			return fail(err)
		}
		return wireResp{}
	case opSetString:
		if err := t.SetString(req.Tab, req.Col, req.Row, req.Str); err != nil {
			return fail(err)
		}
		return wireResp{}
	case opInsert:
		vals := make(map[string]any, len(req.Names))
		for i, name := range req.Names {
			if req.IsStr[i] {
				vals[name] = req.Strs[i]
			} else {
				vals[name] = req.Vals[i]
			}
		}
		row, err := t.Insert(req.Tab, vals)
		if err != nil {
			return fail(err)
		}
		return wireResp{Row: row}
	case opDelete:
		if err := t.Delete(req.Tab, req.Row); err != nil {
			return fail(err)
		}
		return wireResp{}
	default:
		return fail(fmt.Errorf("ankerdb: unknown session op %d", req.Op))
	}
}
