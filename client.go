package ankerdb

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ankerdb/internal/repl"
)

// Remote session wire schema: one gob request struct and one gob
// response struct cover every SessionTxn operation, single in-flight
// per connection (the engine's session operations are synchronous
// anyway). Engine sentinel errors cross the wire as codes from
// wireSentinels, so errors.Is works identically against a remote
// session.

// Session op codes.
const (
	opBegin uint8 = iota + 1
	opCommit
	opAbort
	opGet
	opGetString
	opScan
	opLookup
	opFilter
	opAggregate
	opSet
	opSetString
	opInsert
	opDelete
	opStats
)

// wireReq is one session request frame (gob payload of MsgRequest).
type wireReq struct {
	Op    uint8
	Txn   uint64 // server-issued transaction handle (0 for Begin/Stats)
	Class TxnClass
	Tab   string
	Col   string
	Row   int
	Val   int64
	Str   string
	Lo    int64
	Hi    int64
	Agg   Agg
	// Insert's value map, flattened (gob has no map[string]any).
	Names []string
	Vals  []int64
	Strs  []string
	IsStr []bool
}

// wireResp is one session response frame (gob payload of MsgResponse).
type wireResp struct {
	Err   uint8  // wireSentinels index; 0 = success
	Msg   string // full error text when Err != 0
	Txn   uint64 // Begin: transaction handle
	TS    uint64 // Begin: snapshot timestamp
	Val   int64
	Str   string
	Row   int
	Rows  []int
	Vals  []int64
	Stats *Stats
}

// wireSentinels maps wire error codes to engine sentinels, so a remote
// caller's errors.Is checks behave exactly like an embedded one's.
// Index 0 is reserved for "no sentinel" — the remote error then only
// carries its message. Append-only: codes are wire format.
var wireSentinels = []error{
	nil,
	ErrClosed,
	ErrTxnDone,
	ErrReadOnly,
	ErrConflict,
	ErrNoSuchTable,
	ErrNoSuchColumn,
	ErrRowRange,
	ErrRowNotVisible,
	ErrTableExists,
	ErrType,
	ErrNotOLAP,
	ErrReplicaRead,
	ErrTooManySessions,
}

// errToWire finds the sentinel code for err (0 when none matches).
// ErrRowNotVisible is checked before ErrRowRange: the visibility error
// matches both under errors.Is and must keep its more specific code.
func errToWire(err error) uint8 {
	if errors.Is(err, ErrRowNotVisible) {
		for i, s := range wireSentinels {
			if s == ErrRowNotVisible {
				return uint8(i)
			}
		}
	}
	for i, s := range wireSentinels {
		if s != nil && errors.Is(err, s) {
			return uint8(i)
		}
	}
	return 0
}

// remoteError reconstructs a server-side error client-side: the full
// message, errors.Is-matching the coded sentinel (and, via the
// sentinel table order, ErrRowNotVisible's ErrRowRange aliasing).
type remoteError struct {
	base error
	msg  string
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Is(target error) bool {
	if e.base == nil {
		return false
	}
	if target == e.base {
		return true
	}
	// ErrRowNotVisible subsumes ErrRowRange, mirroring notVisibleError.
	return e.base == ErrRowNotVisible && target == ErrRowRange
}

func wireToErr(code uint8, msg string) error {
	var base error
	if int(code) < len(wireSentinels) {
		base = wireSentinels[code]
	}
	if base == nil && msg == "" {
		return fmt.Errorf("ankerdb: remote error")
	}
	return &remoteError{base: base, msg: msg}
}

// RemoteSession is a Session over a network connection to a served
// database (Dial). One connection, one in-flight request at a time;
// open transactions are server-side state and die with the connection.
type RemoteSession struct {
	mu     sync.Mutex
	conn   *repl.Conn
	closed bool
}

// Dial connects a remote session to a serving endpoint (WithServeAddr
// or NewServer) for the database registered under namespace ns (""
// means "default"). The returned session satisfies Session — code
// written against it runs unchanged against an embedded *DB.
func Dial(addr, ns string) (*RemoteSession, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := repl.NewConn(nc)
	if err := c.SendGob(repl.MsgHello, repl.Hello{Role: repl.RoleSession, Namespace: ns}); err != nil {
		_ = c.Close()
		return nil, err
	}
	typ, payload, err := c.ReadMsg()
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	switch typ {
	case repl.MsgWelcome:
		return &RemoteSession{conn: c}, nil
	case repl.MsgErr:
		var we repl.WireErr
		_ = repl.DecodeGob(payload, &we)
		_ = c.Close()
		return nil, wireToErr(we.Code, we.Msg)
	default:
		_ = c.Close()
		return nil, fmt.Errorf("ankerdb: unexpected handshake frame type %d", typ)
	}
}

// roundTrip ships one request and decodes its response, serialising
// in-flight requests (SessionTxn operations are synchronous).
func (s *RemoteSession) roundTrip(req *wireReq) (*wireResp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.conn.SendGob(repl.MsgRequest, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	typ, payload, err := s.conn.ReadMsg()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	switch typ {
	case repl.MsgResponse:
		var resp wireResp
		if err := repl.DecodeGob(payload, &resp); err != nil {
			return nil, err
		}
		if resp.Err != 0 || resp.Msg != "" {
			return nil, wireToErr(resp.Err, resp.Msg)
		}
		return &resp, nil
	case repl.MsgErr:
		var we repl.WireErr
		_ = repl.DecodeGob(payload, &we)
		return nil, wireToErr(we.Code, we.Msg)
	default:
		return nil, fmt.Errorf("ankerdb: unexpected response frame type %d", typ)
	}
}

// BeginTxn starts a remote transaction.
func (s *RemoteSession) BeginTxn(class TxnClass) (SessionTxn, error) {
	resp, err := s.roundTrip(&wireReq{Op: opBegin, Class: class})
	if err != nil {
		return nil, err
	}
	return &remoteTxn{s: s, id: resp.Txn, class: class, ts: resp.TS}, nil
}

// Stats fetches the served database's Stats snapshot — including the
// replication staleness fields a client bounds reads with.
func (s *RemoteSession) Stats() Stats {
	resp, err := s.roundTrip(&wireReq{Op: opStats})
	if err != nil || resp.Stats == nil {
		return Stats{}
	}
	return *resp.Stats
}

// Close drops the connection. Server-side, open transactions of this
// session are aborted; the database itself is untouched.
func (s *RemoteSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	return s.conn.Close()
}

// remoteTxn is one transaction on a RemoteSession.
type remoteTxn struct {
	s     *RemoteSession
	id    uint64
	class TxnClass
	ts    uint64
	done  bool
}

func (t *remoteTxn) Class() TxnClass    { return t.class }
func (t *remoteTxn) SnapshotTS() uint64 { return t.ts }

func (t *remoteTxn) op(req *wireReq) (*wireResp, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	req.Txn = t.id
	return t.s.roundTrip(req)
}

func (t *remoteTxn) Get(tab, col string, row int) (int64, error) {
	resp, err := t.op(&wireReq{Op: opGet, Tab: tab, Col: col, Row: row})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

func (t *remoteTxn) GetString(tab, col string, row int) (string, error) {
	resp, err := t.op(&wireReq{Op: opGetString, Tab: tab, Col: col, Row: row})
	if err != nil {
		return "", err
	}
	return resp.Str, nil
}

func (t *remoteTxn) Scan(tab, col string) ([]int64, error) {
	resp, err := t.op(&wireReq{Op: opScan, Tab: tab, Col: col})
	if err != nil {
		return nil, err
	}
	return resp.Vals, nil
}

func (t *remoteTxn) Lookup(tab, col string, v int64) ([]int, error) {
	resp, err := t.op(&wireReq{Op: opLookup, Tab: tab, Col: col, Val: v})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

func (t *remoteTxn) Filter(tab, col string, lo, hi int64) ([]int, error) {
	resp, err := t.op(&wireReq{Op: opFilter, Tab: tab, Col: col, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

func (t *remoteTxn) Aggregate(tab, col string, agg Agg) (int64, error) {
	resp, err := t.op(&wireReq{Op: opAggregate, Tab: tab, Col: col, Agg: agg})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

func (t *remoteTxn) Set(tab, col string, row int, v int64) error {
	_, err := t.op(&wireReq{Op: opSet, Tab: tab, Col: col, Row: row, Val: v})
	return err
}

func (t *remoteTxn) SetString(tab, col string, row int, s string) error {
	_, err := t.op(&wireReq{Op: opSetString, Tab: tab, Col: col, Row: row, Str: s})
	return err
}

// Insert flattens the value map for gob: per column a name, an int64
// or string payload, and which of the two it is. Engine-side type
// dispatch (Varchar wants string, everything else int64) is preserved.
func (t *remoteTxn) Insert(tab string, vals map[string]any) (int, error) {
	req := &wireReq{Op: opInsert, Tab: tab}
	for name, v := range vals {
		req.Names = append(req.Names, name)
		switch x := v.(type) {
		case int64:
			req.Vals = append(req.Vals, x)
			req.Strs = append(req.Strs, "")
			req.IsStr = append(req.IsStr, false)
		case int:
			req.Vals = append(req.Vals, int64(x))
			req.Strs = append(req.Strs, "")
			req.IsStr = append(req.IsStr, false)
		case string:
			req.Vals = append(req.Vals, 0)
			req.Strs = append(req.Strs, x)
			req.IsStr = append(req.IsStr, true)
		default:
			return 0, fmt.Errorf("%w: unsupported insert value type %T for %q", ErrType, v, name)
		}
	}
	resp, err := t.op(req)
	if err != nil {
		return 0, err
	}
	return resp.Row, nil
}

func (t *remoteTxn) Delete(tab string, row int) error {
	_, err := t.op(&wireReq{Op: opDelete, Tab: tab, Row: row})
	return err
}

func (t *remoteTxn) Commit() error {
	_, err := t.op(&wireReq{Op: opCommit})
	t.done = true
	return err
}

func (t *remoteTxn) Abort() error {
	if t.done {
		return nil
	}
	_, err := t.op(&wireReq{Op: opAbort})
	t.done = true
	return err
}
