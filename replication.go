package ankerdb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ankerdb/internal/index"
	"ankerdb/internal/mvcc"
	"ankerdb/internal/repl"
	"ankerdb/internal/storage"
	"ankerdb/internal/telemetry"
	"ankerdb/internal/wal"
)

// Replication: a primary streams its durable WAL record payloads —
// commit, bulk-load and schema-log records, byte-identical to what its
// own crash recovery would replay — to read replicas over the framed
// protocol in internal/repl. A replica applies the stream continuously
// through the same idempotent-by-commitTS rules recovery uses, so
// primary and replica state converge by construction: replication IS
// recovery over the wire, with a consistent snapshot (the checkpoint
// format's sibling) as the bootstrap instead of a checkpoint file.
//
// Ordering. The publisher (internal/repl) releases records in WAL
// append order, commits gated behind the completion watermark, and
// in-band heartbeats carry watermarks that every covered record
// precedes. The replica applies single-threaded, taking the involved
// shard commit locks per record exactly like the primary's installer,
// and advances its own oracle only on heartbeats (ObserveCommitted) —
// so replica OLAP snapshots always read a prefix of the primary's
// committed history, never a torn middle.
//
// Resume vs bootstrap. Within a process lifetime a replica reconnects
// with AfterTS = its completed watermark: records applied beyond the
// last heartbeat all carry higher timestamps (the publisher's FIFO
// guarantees it) and re-apply idempotently when the primary's retained
// history replays them. Across a replica restart the watermark is not
// recoverable (its own WAL holds applied-beyond-watermark records that
// recovery seeds past), so a restarted replica re-bootstraps from a
// fresh snapshot — which fast-forwards whatever recovered state it
// already had.

// replHistCap is the publisher's retained-record window: how far back
// a reconnecting replica can resume without a re-bootstrap.
const replHistCap = 1 << 16

// replicaSendBuf is the per-replica bounded stream buffer (records). A
// replica a full buffer behind is disconnected rather than allowed to
// stall the primary's commit path.
const replicaSendBuf = 1 << 14

// dialHandshakeTimeout bounds the replica's hello/welcome exchange on
// a fresh connection.
const dialHandshakeTimeout = 10 * time.Second

// bootstrapFrameTimeout bounds each bootstrap frame read. Per frame,
// not overall: a large snapshot legitimately takes long, but a primary
// that accepts and then stalls must fail the bootstrap — without a
// deadline a stall during the initial bootstrap hangs Open forever.
const bootstrapFrameTimeout = 30 * time.Second

// startPublisher wires the WAL append hooks into a record publisher.
// Called during Open, before the DB is shared, on any serving database
// with durability enabled.
func (db *DB) startPublisher() {
	db.pub = repl.NewPublisher(replHistCap)
	db.wal.OnAppend = func(_ int, recs []wal.CommitRecord) {
		for _, r := range recs {
			db.pub.Stage(repl.Record{TS: r.TS, Type: repl.MsgCommit, Payload: r.Encode()})
		}
	}
	db.wal.OnLoad = func(_ int, recs []wal.LoadRecord) {
		for _, r := range recs {
			db.pub.Stage(repl.Record{Type: repl.MsgLoad, Payload: r.Encode()})
		}
	}
	db.wal.OnSchema = func(seq uint64, payload []byte) {
		db.pub.Stage(repl.Record{Type: repl.MsgSchema, Payload: schemaFrame(seq, payload)})
	}
}

// schemaFrame prefixes a raw schema-log payload with its log sequence.
// The sequence is the replica's exactly-once key: a bootstrap's
// schema-file replay overlaps the live stream, and blind re-application
// of a drop or truncate marker would not be idempotent.
func schemaFrame(seq uint64, payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(buf, seq)
	copy(buf[8:], payload)
	return buf
}

func splitSchemaFrame(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("ankerdb: short schema frame (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// replPeer is the primary-side state of one connected replica feed.
type replPeer struct {
	acked atomic.Uint64
}

// addPeer registers a connected replica feed.
func (db *DB) addPeer(p *replPeer) {
	db.peerMu.Lock()
	if db.peers == nil {
		db.peers = map[*replPeer]struct{}{}
	}
	db.peers[p] = struct{}{}
	db.peerMu.Unlock()
}

func (db *DB) removePeer(p *replPeer) {
	db.peerMu.Lock()
	delete(db.peers, p)
	db.peerMu.Unlock()
}

// noteAck records a replica's applied watermark and observes its lag —
// the primary's completed commit count beyond what the replica has
// applied, the bounded-staleness number the ISSUE's serving contract
// reports (Stats.MaxReplicaLag, ankerdb_repl_lag_commits).
func (db *DB) noteAck(p *replPeer, appliedTS uint64) {
	p.acked.Store(appliedTS)
	if c := db.oracle.Completed(); c > appliedTS {
		db.tel.replLag.Observe(time.Duration(c - appliedTS))
	} else {
		db.tel.replLag.Observe(0)
	}
}

// maxReplicaLag returns the worst lag over connected replica feeds, in
// commit timestamps: completed watermark minus the replica's newest
// acknowledged applied timestamp. Feeds that have not acked yet count
// from zero (full lag).
func (db *DB) maxReplicaLag() uint64 {
	c := db.oracle.Completed()
	var max uint64
	db.peerMu.Lock()
	for p := range db.peers {
		if a := p.acked.Load(); c > a && c-a > max {
			max = c - a
		}
	}
	db.peerMu.Unlock()
	return max
}

// streamBootstrap ships a consistent snapshot to a freshly attached
// replica: the full schema log raw (so the replica reproduces the
// exact table-slot assignment the commit records address), then every
// live table's state at one snapshot generation timestamp. The caller
// attached the replica's subscriber BEFORE calling — records released
// during the capture are duplicated into the snapshot, which the
// replay-by-timestamp rules make harmless; the reverse order would
// lose them.
func (db *DB) streamBootstrap(c *repl.Conn) error {
	if err := db.wal.ReplaySchemaRaw(func(seq uint64, payload []byte) error {
		return c.WriteMsg(repl.MsgSchema, schemaFrame(seq, payload))
	}); err != nil {
		return err
	}
	// Read side of the re-bootstrap gate: on a replica serving as a
	// chained primary, the snapshot capture must not span the replica's
	// own in-place re-bootstrap.
	db.olapGate.RLock()
	defer db.olapGate.RUnlock()
	g := db.snaps.acquireFresh()
	defer db.snaps.release(g)
	db.mu.RLock()
	tabs := make([]*table, 0, len(db.tabList))
	for _, t := range db.tabList {
		if !t.dropped.Load() {
			tabs = append(tabs, t)
		}
	}
	db.mu.RUnlock()
	if err := c.WriteGob(repl.MsgSnapBegin, repl.SnapBegin{TS: g.ts, Tables: len(tabs)}); err != nil {
		return err
	}
	for _, t := range tabs {
		body, err := encodeSnapTable(g, t)
		if err != nil {
			return err
		}
		if err := c.WriteMsg(repl.MsgSnapTable, body); err != nil {
			return err
		}
	}
	if err := c.WriteGob(repl.MsgSnapEnd, repl.SnapEnd{TS: g.ts}); err != nil {
		return err
	}
	return c.Flush()
}

// encodeSnapTable serialises one table's snapshot body: slot, name,
// row count, column count, then per column the data and
// write-timestamp words, then the birth and death arrays, then the
// dictionary — the checkpoint section layout flattened into one frame.
// Capture-before-write and the min-captured-rows rule mirror
// Checkpoint: rows born above the captured capacity carry commit
// timestamps past the snapshot's and replay from the live stream.
func encodeSnapTable(g *generation, t *table) ([]byte, error) {
	snaps := make([]*colSnap, len(t.cols))
	for i, c := range t.cols {
		cs, err := g.colSnap(c)
		if err != nil {
			return nil, err
		}
		snaps[i] = cs
	}
	vs, err := g.visSnap(t)
	if err != nil {
		return nil, err
	}
	rows := vs.rows()
	for _, cs := range snaps {
		if cs.rows() < rows {
			rows = cs.rows()
		}
	}
	name := t.st.Schema().Table
	var buf bytes.Buffer
	var hdr [8]byte
	wu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(hdr[:], v)
		buf.Write(hdr[:])
	}
	wu64(uint64(t.idx))
	wu64(uint64(len(name)))
	buf.WriteString(name)
	wu64(uint64(rows))
	wu64(uint64(len(t.cols)))
	for _, cs := range snaps {
		if err := storage.WriteWords(&buf, rows, cs.data.GetU); err != nil {
			return nil, err
		}
		if err := storage.WriteWords(&buf, rows, cs.wts.GetU); err != nil {
			return nil, err
		}
	}
	if err := storage.WriteWords(&buf, rows, vs.data.GetU); err != nil {
		return nil, err
	}
	if err := storage.WriteWords(&buf, rows, vs.wts.GetU); err != nil {
		return nil, err
	}
	// Dictionary last, after every capture: append-only, so it covers
	// every code the captured words can hold.
	strs := t.st.Dict().Strings()
	wu64(uint64(len(strs)))
	for _, s := range strs {
		wu64(uint64(len(s)))
		buf.WriteString(s)
	}
	return buf.Bytes(), nil
}

// applySnapTable loads one snapshot table body into the replica's
// recreated (or recovered) table, slot-addressed and validated against
// the schema exactly like checkpoint sections. Fast-forward semantics:
// the snapshot is the primary's state at its timestamp, which is at or
// above anything the replica holds, so overwriting in place is always
// a step forward. noteTS folds every loaded stamp into the oracle
// seed.
func (db *DB) applySnapTable(body []byte, noteTS func(uint64)) error {
	r := bytes.NewReader(body)
	var hdr [8]byte
	ru64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(hdr[:]), nil
	}
	slot64, err := ru64()
	if err != nil {
		return err
	}
	nameLen, err := ru64()
	if err != nil {
		return err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return err
	}
	rows64, err := ru64()
	if err != nil {
		return err
	}
	cols64, err := ru64()
	if err != nil {
		return err
	}
	slot, rows, cols := int(slot64), int(rows64), int(cols64)
	name := string(nameBuf)
	db.mu.RLock()
	nTabs := len(db.tabList)
	db.mu.RUnlock()
	if slot < 0 || slot >= nTabs {
		return fmt.Errorf("ankerdb: snapshot table %q claims slot %d of %d", name, slot, nTabs)
	}
	t := db.tableByIdx(slot)
	if got := t.st.Schema().Table; got != name {
		return fmt.Errorf("ankerdb: snapshot table %q at slot %d, schema says %q", name, slot, got)
	}
	if len(t.cols) != cols {
		return fmt.Errorf("ankerdb: snapshot table %q has %d columns, schema says %d", name, cols, len(t.cols))
	}
	if rows < 0 || rows > maxRecoveredRow {
		return fmt.Errorf("ankerdb: snapshot table %q claims %d rows", name, rows)
	}
	if rows > 0 {
		if err := db.growRecovered(t, rows-1); err != nil {
			return err
		}
	}
	// Exclude snapshot captures while the arrays are overwritten: a
	// replica generation pinned mid-fill would capture a torn mix.
	db.lockAllShards()
	defer db.unlockAllShards()
	for _, c := range t.cols {
		if err := storage.ReadWordsRegion(r, rows, c.data.FillWindow); err != nil {
			return err
		}
		if err := storage.ReadWordsRegion(r, rows, func(start int, words []uint64) {
			for _, v := range words {
				noteTS(v)
			}
			c.wts.FillWindow(start, words)
		}); err != nil {
			return err
		}
	}
	birth, death := t.st.Birth(), t.st.Death()
	if err := storage.ReadWordsRegion(r, rows, func(start int, words []uint64) {
		for _, v := range words {
			if v != storage.NeverTS {
				noteTS(v)
			}
			birth.FillWindow(start, words)
		}
	}); err != nil {
		return err
	}
	if err := storage.ReadWordsRegion(r, rows, func(start int, words []uint64) {
		for _, v := range words {
			noteTS(v)
		}
		death.FillWindow(start, words)
	}); err != nil {
		return err
	}
	nStrs, err := ru64()
	if err != nil {
		return err
	}
	dict := make([]string, nStrs)
	for i := range dict {
		sl, err := ru64()
		if err != nil {
			return err
		}
		sb := make([]byte, sl)
		if _, err := io.ReadFull(r, sb); err != nil {
			return err
		}
		dict[i] = string(sb)
	}
	t.st.Dict().Load(dict)
	return nil
}

// replicaState is a replica's connector: the background goroutine that
// dials the primary, bootstraps or resumes, and applies the stream.
type replicaState struct {
	db   *DB
	addr string
	ns   string

	quit chan struct{}
	done chan struct{}

	cmu sync.Mutex
	cur *repl.Conn

	connected  atomic.Bool
	reconnects atomic.Uint64
	bootstraps atomic.Uint64
	applied    atomic.Uint64 // newest commit-record timestamp applied
	sourceW    atomic.Uint64 // newest heartbeat watermark observed
	frames     atomic.Uint64 // stream records applied

	// schemaSeq is the next schema-log sequence to apply; lower-seq
	// records (bootstrap/stream overlap, resume replays) are skipped.
	// Touched only by the connector goroutine (and Open, before it
	// starts).
	schemaSeq uint64
}

// stop halts the connector: closes the quit channel, cuts the current
// connection out from under a blocking read, and waits for the
// goroutine to drain. Idempotent.
func (r *replicaState) stop() {
	r.cmu.Lock()
	select {
	case <-r.quit:
	default:
		close(r.quit)
	}
	if r.cur != nil {
		_ = r.cur.Close()
	}
	r.cmu.Unlock()
	<-r.done
}

func (r *replicaState) stopping() bool {
	select {
	case <-r.quit:
		return true
	default:
		return false
	}
}

func (r *replicaState) setConn(c *repl.Conn) {
	r.cmu.Lock()
	r.cur = c
	if r.stopping() && c != nil {
		_ = c.Close()
	}
	r.cmu.Unlock()
}

// dial connects to the primary and performs the hello/welcome
// handshake. afterTS = 0 requests a full bootstrap; a positive value
// asks to resume above it (the primary may still answer with a
// bootstrap when its retained history no longer reaches back).
func (r *replicaState) dial(afterTS uint64) (*repl.Conn, repl.Welcome, error) {
	nc, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
	if err != nil {
		return nil, repl.Welcome{}, err
	}
	c := repl.NewConn(nc)
	// The handshake is a bounded exchange: deadline it so a primary that
	// accepts and stalls errors out instead of hanging the caller (Open,
	// on the initial bootstrap). Cleared on success — the live stream
	// blocks on reads indefinitely by design.
	_ = c.SetDeadline(time.Now().Add(dialHandshakeTimeout))
	if err := c.SendGob(repl.MsgHello, repl.Hello{Role: repl.RoleReplica, Namespace: r.ns, AfterTS: afterTS}); err != nil {
		_ = c.Close()
		return nil, repl.Welcome{}, err
	}
	typ, payload, err := c.ReadMsg()
	if err != nil {
		_ = c.Close()
		return nil, repl.Welcome{}, err
	}
	_ = c.SetDeadline(time.Time{})
	switch typ {
	case repl.MsgWelcome:
		var w repl.Welcome
		if err := repl.DecodeGob(payload, &w); err != nil {
			_ = c.Close()
			return nil, repl.Welcome{}, err
		}
		// The welcome carries the primary's completed watermark: seed
		// the staleness report now instead of waiting for the first
		// heartbeat, so ReplicaSourceTS is meaningful from the instant
		// the connection is live.
		if w.TS > r.sourceW.Load() {
			r.sourceW.Store(w.TS)
		}
		return c, w, nil
	case repl.MsgErr:
		var we repl.WireErr
		_ = repl.DecodeGob(payload, &we)
		_ = c.Close()
		return nil, repl.Welcome{}, fmt.Errorf("ankerdb: primary refused replica: %s", we.Msg)
	default:
		_ = c.Close()
		return nil, repl.Welcome{}, fmt.Errorf("ankerdb: unexpected handshake frame type %d", typ)
	}
}

// runBootstrap consumes a snapshot bootstrap (schema frames, SnapBegin,
// table bodies, SnapEnd) and finishes it: rebuild the row allocators,
// zone maps and secondary indexes from the loaded arrays, and observe
// the snapshot timestamp. The caller holds db.olapGate write-side (the
// rebuild fast-forwards arrays in place under pinned OLAP readers
// otherwise) and, on a durable replica, checkpoints AFTER the gate is
// released — the snapshot's data is not in the replica's own WAL, and
// Checkpoint itself pins a generation under the gate's read side.
// Frame reads are individually deadlined so a primary that accepts and
// stalls fails the bootstrap instead of hanging the caller.
func (r *replicaState) runBootstrap(c *repl.Conn) error {
	db := r.db
	var maxWTS uint64
	noteTS := func(v uint64) {
		if v > maxWTS {
			maxWTS = v
		}
	}
	tables := -1
	var snapTS uint64
	for {
		_ = c.SetReadDeadline(time.Now().Add(bootstrapFrameTimeout))
		typ, payload, err := c.ReadMsg()
		if err != nil {
			return err
		}
		switch typ {
		case repl.MsgSchema:
			if err := r.applySchema(payload); err != nil {
				return err
			}
		case repl.MsgSnapBegin:
			var sb repl.SnapBegin
			if err := repl.DecodeGob(payload, &sb); err != nil {
				return err
			}
			snapTS, tables = sb.TS, sb.Tables
		case repl.MsgSnapTable:
			if tables <= 0 {
				return fmt.Errorf("ankerdb: snapshot table outside SnapBegin/SnapEnd")
			}
			if err := db.applySnapTable(payload, noteTS); err != nil {
				return err
			}
			tables--
		case repl.MsgSnapEnd:
			if tables != 0 {
				return fmt.Errorf("ankerdb: snapshot ended with %d tables missing", tables)
			}
			seed := snapTS
			if maxWTS > seed {
				seed = maxWTS
			}
			db.finishBootstrap(seed)
			if seed > r.applied.Load() {
				r.applied.Store(seed)
			}
			r.bootstraps.Add(1)
			db.tel.rec.Record(telemetry.EvReplBootstrap, int64(snapTS), int64(seed), 0)
			// The live stream blocks on reads indefinitely by design:
			// clear the per-frame bootstrap deadline before handing the
			// connection over.
			_ = c.SetReadDeadline(time.Time{})
			return nil
		case repl.MsgErr:
			var we repl.WireErr
			_ = repl.DecodeGob(payload, &we)
			return fmt.Errorf("ankerdb: primary aborted bootstrap: %s", we.Msg)
		default:
			return fmt.Errorf("ankerdb: unexpected frame type %d during bootstrap", typ)
		}
	}
}

// finishBootstrap rebuilds the derived state recovery would rebuild —
// row allocators, visibility-log bases, zone maps, index contents —
// over the freshly loaded arrays, then publishes the snapshot
// timestamp to the replica's oracle.
func (db *DB) finishBootstrap(seed uint64) {
	db.lockAllShards()
	db.mu.RLock()
	tabs := append([]*table(nil), db.tabList...)
	db.mu.RUnlock()
	db.rebuildRowStateTabs(tabs)
	db.unlockAllShards()
	db.recomputeZones(0)
	db.lockAllShards()
	for _, t := range tabs {
		if t.dropped.Load() {
			continue
		}
		for _, c := range t.cols {
			if old := c.idx.Load(); old != nil {
				c.idx.Store(buildColumnIndex(c, old.Kind(), 0))
			}
		}
	}
	db.unlockAllShards()
	db.oracle.ObserveCommitted(seed)
	// Retire the current snapshot generation: across a re-bootstrap the
	// manager's own pin keeps it alive with its pre-bootstrap timestamp
	// and column-snapshot cache, and a reader acquiring it afterwards
	// would see fast-forwarded write timestamps above its ts with no
	// version-chain entries to repair from. Forcing staleness makes the
	// next acquire rotate to a generation born after the rebuild.
	db.snaps.stale.Store(true)
}

// applySchema applies one sequence-stamped schema frame: skip if the
// sequence was already applied, else append the raw payload to the
// replica's own schema log (byte-exact prefix of the primary's — the
// property that keeps slot assignment and a future re-bootstrap's
// sequence numbering aligned) and mirror the effect in memory.
func (r *replicaState) applySchema(frame []byte) error {
	seq, payload, err := splitSchemaFrame(frame)
	if err != nil {
		return err
	}
	if seq < r.schemaSeq {
		return nil // bootstrap/stream overlap or resume replay: already applied
	}
	if seq > r.schemaSeq {
		return fmt.Errorf("ankerdb: schema sequence gap: got %d, want %d", seq, r.schemaSeq)
	}
	db := r.db
	if db.wal != nil {
		if err := db.wal.AppendSchemaRaw(payload); err != nil {
			return err
		}
	}
	rec, err := wal.DecodeSchemaPayload(payload)
	if err != nil {
		return err
	}
	switch {
	case rec.Table != nil:
		schema := Schema{Table: rec.Table.Name}
		for _, cd := range rec.Table.Columns {
			schema.Columns = append(schema.Columns, ColumnDef{Name: cd.Name, Type: ColumnType(cd.Type), Index: IndexKind(cd.Index)})
		}
		if err := db.createTable(schema, rec.Table.Rows, false); err != nil {
			return err
		}
	case rec.Index != nil:
		db.applyIndexDDL(*rec.Index)
	case rec.DDL != nil:
		db.applyTableDDL(*rec.DDL)
		// The marker's timestamp is a commit TS the primary issued, and
		// it can run ahead of both applied commit records and the next
		// heartbeat (the marker streams immediately). Fold it into the
		// applied high-water so Promote seeds the oracle above it —
		// otherwise a promoted replica could issue commit timestamps at
		// or below an applied truncate barrier, leaving the new rows
		// invisible to it and recovery's truncate replay to kill them.
		if ts := rec.DDL.TS; ts > r.applied.Load() {
			r.applied.Store(ts)
		}
	}
	r.schemaSeq = seq + 1
	return nil
}

// applyIndexDDL mirrors an online CreateIndex/DropIndex at the
// replica. Tolerant of records that do not resolve (dropped tables):
// skipped like recovery skips them.
func (db *DB) applyIndexDDL(rec wal.IndexDDLRecord) {
	c, err := db.lookup(rec.Table, rec.Column)
	if err != nil {
		return
	}
	if rec.Drop {
		c.idx.Store(nil)
		return
	}
	kind := IndexKind(rec.Kind)
	if !kind.Valid() {
		return
	}
	db.lockAllShards()
	c.idx.Store(buildColumnIndex(c, kind, db.oracle.Completed()))
	db.unlockAllShards()
}

// applyTableDDL mirrors a DropTable/Truncate marker at the replica, at
// the RECORD's timestamp — the stamp that decides exactly which
// applied rows the barrier covers, same as recovery replay. The stream
// orders the marker after every commit its timestamp covers (the
// primary logged it under every shard lock), so applying it in stream
// position is exact.
func (db *DB) applyTableDDL(rec wal.TableDDLRecord) {
	db.mu.RLock()
	t := db.tables[rec.Name]
	db.mu.RUnlock()
	if t == nil {
		return
	}
	ts := rec.TS
	db.lockAllShards()
	t.ddlEpoch.Add(1)
	switch rec.Op {
	case wal.TableDDLDrop:
		t.dropTS = ts
		t.dropped.Store(true)
		db.mu.Lock()
		delete(db.tables, rec.Name)
		db.mu.Unlock()
		if db.gcFloor() > ts {
			db.freeDropped(t)
		}
	case wal.TableDDLTruncate:
		t.visMutated.Store(true)
		t.truncated = true
		truncateRows(t, ts)
		t.amu.Lock()
		t.next, t.free = 0, nil
		t.amu.Unlock()
		t.visLogReset(-int64(t.st.InitialRows()))
		floor := db.gcFloor()
		for _, c := range t.cols {
			if ix := c.idx.Load(); ix != nil {
				c.idx.Store(index.New(ix.Kind(), ts))
			}
			c.recomputeZones(floor)
		}
	}
	db.unlockAllShards()
	db.tel.rec.RecordNote(telemetry.EvTableDDL, int64(rec.Op), 0, int64(ts), rec.Name)
}

// applyCommit replays one streamed commit record into live replica
// state: the install() critical section reproduced under the involved
// shard commit locks, with recovery's idempotence guards — newer-wins
// per written cell, birth/death floor per row op — so duplicated
// records (bootstrap overlap, resume replays) are no-ops. Returns
// whether anything applied (a fully skipped duplicate is not
// re-appended to the replica's own WAL).
func (db *DB) applyCommit(rec wal.CommitRecord) (bool, error) {
	db.mu.RLock()
	nTabs := len(db.tabList)
	cols := make([]*column, len(rec.Writes))
	for i, w := range rec.Writes {
		if w.Table < 0 || w.Table >= nTabs {
			db.mu.RUnlock()
			return false, nil // beyond the applied schema prefix: skip whole
		}
		t := db.tabList[w.Table]
		if w.Col < 0 || w.Col >= len(t.cols) || w.Row < 0 || w.Row >= maxRecoveredRow {
			db.mu.RUnlock()
			return false, nil
		}
		cols[i] = t.cols[w.Col]
	}
	type opTab struct {
		t  *table
		op wal.RowOp
	}
	ops := make([]opTab, len(rec.Ops))
	for i, op := range rec.Ops {
		if op.Table < 0 || op.Table >= nTabs || op.Row < 0 || op.Row >= maxRecoveredRow {
			db.mu.RUnlock()
			return false, nil
		}
		ops[i] = opTab{t: db.tabList[op.Table], op: op}
	}
	db.mu.RUnlock()

	// Grow before taking shard locks (growth takes only the allocator
	// mutex and the storage layer's own locks).
	for i, w := range rec.Writes {
		if err := db.growRecovered(cols[i].tab, w.Row); err != nil {
			return false, err
		}
	}
	for _, o := range ops {
		if err := db.growRecovered(o.t, o.op.Row); err != nil {
			return false, err
		}
	}

	// The involved shard locks, ascending — the same exclusion the
	// primary's installer holds against snapshot capture.
	marks := make([]bool, len(db.shards))
	for i := range rec.Writes {
		marks[db.shardOf(cols[i].id)] = true
	}
	for _, o := range ops {
		marks[db.shardOf(mvcc.VisColumnID(o.op.Table))] = true
	}
	var locked []int
	for id, m := range marks {
		if m {
			db.shards[id].mu.Lock()
			locked = append(locked, id)
		}
	}
	defer func() {
		for i := len(locked) - 1; i >= 0; i-- {
			db.shards[locked[i]].mu.Unlock()
		}
	}()

	// Rows this record itself births skip the version-chain push,
	// exactly like install(): the displaced word belongs to a reclaimed
	// or never-born incarnation no reader can reach.
	inserted := func(tab, row int) bool {
		for _, o := range ops {
			if !o.op.Del && o.op.Table == tab && o.op.Row == row {
				return true
			}
		}
		return false
	}
	applied := false
	ts := rec.TS
	for i, w := range rec.Writes {
		c := cols[i]
		if ts <= c.wts.GetU(w.Row) {
			continue // a newer (or this very) write already owns the cell
		}
		val := w.Val
		if w.HasStr {
			val = c.dict.Encode(w.Str)
		}
		if inserted(w.Table, w.Row) {
			c.wts.SetU(w.Row, ts)
			c.data.Set(w.Row, val)
			c.widen(w.Row, val)
			if ix := c.idx.Load(); ix != nil {
				ix.Add(val, w.Row, ts)
			}
		} else {
			old := c.data.Get(w.Row)
			oldWTS := c.wts.GetU(w.Row)
			c.chain.Push(w.Row, old, oldWTS)
			c.noteVersioned(w.Row)
			c.wts.SetU(w.Row, ts)
			c.data.Set(w.Row, val)
			c.widen(w.Row, val)
			if ix := c.idx.Load(); ix != nil && old != val {
				ix.Kill(old, w.Row, ts)
				ix.Add(val, w.Row, ts)
			}
		}
		applied = true
	}
	// Row ops after all writes, death reset before birth, birth last —
	// the lock-free reader ordering install() documents.
	var visDeltas []struct {
		t *table
		d int64
	}
	for _, o := range ops {
		t, op := o.t, o.op
		birth, death := t.st.Birth(), t.st.Death()
		floor := death.GetU(op.Row)
		if b := birth.GetU(op.Row); b != storage.NeverTS && b > floor {
			floor = b
		}
		if ts <= floor {
			continue // duplicate: the applied state already covers it
		}
		t.visMutated.Store(true)
		if op.Del {
			for _, c := range t.cols {
				if ix := c.idx.Load(); ix != nil {
					ix.Kill(c.data.Get(op.Row), op.Row, ts)
				}
			}
			death.SetU(op.Row, ts)
			db.st.rowDeletes.Add(1)
		} else {
			death.SetU(op.Row, 0)
			birth.SetU(op.Row, ts)
			db.st.rowInserts.Add(1)
			t.amu.Lock()
			if op.Row >= t.next {
				t.next = op.Row + 1
			}
			t.amu.Unlock()
		}
		applied = true
		d := int64(1)
		if op.Del {
			d = -1
		}
		merged := false
		for i := range visDeltas {
			if visDeltas[i].t == t {
				visDeltas[i].d += d
				merged = true
				break
			}
		}
		if !merged {
			visDeltas = append(visDeltas, struct {
				t *table
				d int64
			}{t, d})
		}
	}
	for _, e := range visDeltas {
		if e.d != 0 {
			e.t.visLogAppend(ts, e.d)
		}
	}
	return applied, nil
}

// applyLoad replays one streamed bulk-load chunk: values land only on
// rows no commit has stamped (write timestamp zero), under the
// column's shard lock, zones widened (never replaced — live readers)
// and the column's index rebuilt like the primary's post-load reindex.
func (db *DB) applyLoad(rec wal.LoadRecord) bool {
	db.mu.RLock()
	var c *column
	if rec.Table >= 0 && rec.Table < len(db.tabList) {
		t := db.tabList[rec.Table]
		if rec.Col >= 0 && rec.Col < len(t.cols) {
			c = t.cols[rec.Col]
		}
	}
	db.mu.RUnlock()
	if c == nil {
		return false
	}
	n := len(rec.Vals)
	if rec.HasStrs {
		n = len(rec.Strs)
	}
	if rec.Start < 0 || n > c.data.Rows()-rec.Start || rec.HasStrs != (c.def.Type == Varchar) {
		return false
	}
	s := db.shards[db.shardOf(c.id)]
	s.mu.Lock()
	if rec.HasStrs {
		for i, str := range rec.Strs {
			if row := rec.Start + i; c.wts.GetU(row) == 0 {
				v := c.dict.Encode(str)
				c.data.Set(row, v)
				c.widen(row, v)
			}
		}
	} else {
		for i, v := range rec.Vals {
			if row := rec.Start + i; c.wts.GetU(row) == 0 {
				c.data.Set(row, v)
				c.widen(row, v)
			}
		}
	}
	s.mu.Unlock()
	if c.idx.Load() != nil {
		db.reindexColumn(c)
	}
	return true
}

// rebuildRowStateTabs is rebuildRowState over an explicit table list —
// the bootstrap path's variant (recovery's walks db.tabList directly,
// which is safe only single-threaded).
func (db *DB) rebuildRowStateTabs(tabs []*table) {
	for _, t := range tabs {
		if t.dropped.Load() {
			continue
		}
		birth, death := t.st.Birth(), t.st.Death()
		next := t.st.InitialRows()
		var free []int
		var live int64
		mutated := t.truncated
		for row, capacity := 0, t.st.Capacity(); row < capacity; row++ {
			b, d := birth.GetU(row), death.GetU(row)
			switch {
			case b != storage.NeverTS:
				if row >= next {
					next = row + 1
				}
				if d == 0 {
					live++
				}
				if b != 0 || d != 0 {
					mutated = true
				}
			case d != 0:
				free = append(free, row)
				if row >= next {
					next = row + 1
				}
				mutated = true
			}
		}
		t.amu.Lock()
		t.next, t.free = next, free
		t.amu.Unlock()
		if next > t.st.InitialRows() {
			mutated = true
		}
		t.visMutated.Store(mutated)
		t.visLogReset(live - int64(t.st.InitialRows()))
	}
}

// run is the connector's stream-and-reconnect loop: apply frames until
// the connection dies, then redial with exponential backoff, resuming
// from the completed watermark (or re-bootstrapping when the primary's
// history no longer reaches back).
func (r *replicaState) run(c *repl.Conn) {
	defer close(r.done)
	db := r.db
	for {
		r.setConn(c)
		r.connected.Store(true)
		err := r.stream(c)
		r.connected.Store(false)
		_ = c.Close()
		r.setConn(nil)
		if r.stopping() {
			return
		}
		db.tel.rec.RecordNote(telemetry.EvReplDisconnect, 0, 0, int64(db.oracle.Completed()), fmt.Sprint(err))
		backoff := 50 * time.Millisecond
		for {
			select {
			case <-r.quit:
				return
			case <-time.After(backoff):
			}
			nc, welcome, derr := r.dial(db.oracle.Completed())
			if derr != nil {
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			r.reconnects.Add(1)
			if welcome.Snapshot {
				// History no longer reaches back: re-bootstrap in place
				// (fast-forward; see applySnapTable). Write side of the
				// OLAP gate: the rebuild overwrites arrays without pushing
				// displaced values into version chains and resets the
				// visibility logs, so every pinned generation must drain
				// first and new OLAP begins block until the state is
				// consistent again.
				r.setConn(nc)
				db.olapGate.Lock()
				berr := r.runBootstrap(nc)
				db.olapGate.Unlock()
				if berr != nil {
					_ = nc.Close()
					r.setConn(nil)
					if r.stopping() {
						return
					}
					continue
				}
				if db.wal != nil {
					// The snapshot bytes never touched the replica's own
					// WAL: checkpoint so a restart recovers them. Failure
					// is not fatal to serving — a restart would just
					// re-bootstrap.
					_ = db.Checkpoint()
				}
			}
			c = nc
			break
		}
	}
}

// stream applies frames from one live connection until it errors.
func (r *replicaState) stream(c *repl.Conn) error {
	db := r.db
	for {
		typ, payload, err := c.ReadMsg()
		if err != nil {
			return err
		}
		switch typ {
		case repl.MsgCommit:
			rec, err := wal.DecodeCommitPayload(payload)
			if err != nil {
				return err
			}
			applied, err := db.applyCommit(rec)
			if err != nil {
				return err
			}
			if applied {
				if rec.TS > r.applied.Load() {
					r.applied.Store(rec.TS)
				}
				if db.wal != nil {
					logShard := 0
					if len(rec.Ops) > 0 {
						logShard = db.shardOf(mvcc.VisColumnID(rec.Ops[0].Table))
					} else if len(rec.Writes) > 0 {
						logShard = db.shardOf(mvcc.ColumnID{Table: rec.Writes[0].Table, Col: rec.Writes[0].Col})
					}
					// Failure poisons the log and surfaces through
					// Stats/metrics; serving from memory stays correct.
					_ = db.wal.AppendCommits(logShard, []wal.CommitRecord{rec})
				}
			}
			r.frames.Add(1)
		case repl.MsgLoad:
			rec, err := wal.DecodeLoadPayload(payload)
			if err != nil {
				return err
			}
			if db.applyLoad(rec) && db.wal != nil {
				_ = db.wal.AppendLoads(db.shardOf(mvcc.ColumnID{Table: rec.Table, Col: rec.Col}), []wal.LoadRecord{rec})
			}
			r.frames.Add(1)
		case repl.MsgSchema:
			if err := r.applySchema(payload); err != nil {
				return err
			}
			r.frames.Add(1)
		case repl.MsgHeartbeat:
			var hb repl.Heartbeat
			if err := repl.DecodeGob(payload, &hb); err != nil {
				return err
			}
			r.sourceW.Store(hb.Watermark)
			// Every record at or below the watermark precedes this frame
			// (publisher contract), so the replica's committed prefix is
			// complete through it: publish to local readers, ack upstream.
			db.oracle.ObserveCommitted(hb.Watermark)
			if err := c.SendGob(repl.MsgAck, repl.Ack{AppliedTS: db.oracle.Completed()}); err != nil {
				return err
			}
		case repl.MsgErr:
			var we repl.WireErr
			_ = repl.DecodeGob(payload, &we)
			return fmt.Errorf("ankerdb: primary closed stream: %s", we.Msg)
		default:
			return fmt.Errorf("ankerdb: unexpected stream frame type %d", typ)
		}
	}
}

// Promote turns a replica into a writable primary — the failover path.
// requireTS is the caller's data-loss guard: the newest commit
// timestamp known to be acknowledged anywhere (typically the max
// completed watermark over surviving replicas); a replica whose
// applied watermark has not reached it refuses with ErrStalePromotion
// and KEEPS REPLICATING, so the caller can promote the replica that is
// ahead instead. On success the connector stops, the oracle is
// re-seeded above every applied timestamp, the row allocators are
// recomputed from the applied arrays (free-list entries consumed by
// streamed inserts must not be handed out again), and local writes are
// accepted. Clients re-resolve to the promoted address themselves —
// the engine does not own service discovery.
func (db *DB) Promote(requireTS uint64) error {
	r := db.rep
	if r == nil || db.promoted.Load() {
		return ErrNotReplica
	}
	if w := db.oracle.Completed(); w < requireTS {
		return fmt.Errorf("%w: applied watermark %d behind required %d", ErrStalePromotion, w, requireTS)
	}
	r.stop()
	db.lockAllShards()
	// Applied-beyond-watermark records can sit above Completed(): seed
	// above ALL of them so freshly issued timestamps never collide.
	seed := r.applied.Load()
	if c := db.oracle.Completed(); c > seed {
		seed = c
	}
	db.oracle.Seed(seed)
	db.promoteRowState()
	db.unlockAllShards()
	db.promoted.Store(true)
	db.tel.rec.Record(telemetry.EvReplPromote, int64(seed), int64(requireTS), 0)
	return nil
}

// promoteRowState recomputes every table's row allocator from the
// applied visibility arrays — rebuildRowState minus the visibility-log
// reset, which pinned OLAP readers still depend on. The caller holds
// every shard commit lock.
func (db *DB) promoteRowState() {
	db.mu.RLock()
	tabs := append([]*table(nil), db.tabList...)
	db.mu.RUnlock()
	for _, t := range tabs {
		if t.dropped.Load() {
			continue
		}
		birth, death := t.st.Birth(), t.st.Death()
		next := t.st.InitialRows()
		var free []int
		for row, capacity := 0, t.st.Capacity(); row < capacity; row++ {
			b, d := birth.GetU(row), death.GetU(row)
			switch {
			case b != storage.NeverTS:
				if row >= next {
					next = row + 1
				}
			case d != 0:
				free = append(free, row)
				if row >= next {
					next = row + 1
				}
			}
		}
		t.amu.Lock()
		t.next, t.free = next, free
		t.amu.Unlock()
	}
}

// replicaWriteGuard rejects local mutation on an unpromoted replica.
func (db *DB) replicaWriteGuard() error {
	if db.rep != nil && !db.promoted.Load() {
		return ErrReplicaRead
	}
	return nil
}

// initReplication wires the serving and replica tiers at Open time:
// the WAL publisher and listener on a serving node, the synchronous
// initial bootstrap plus background connector on a replica.
func (db *DB) initReplication(cfg *config) error {
	ns := cfg.namespace
	if ns == "" {
		ns = "default"
	}
	if db.wal != nil && (cfg.serveAddr != "" || cfg.replicaOf != "") {
		db.startPublisher()
	}
	if cfg.replicaOf != "" {
		r := &replicaState{
			db:   db,
			addr: cfg.replicaOf,
			ns:   ns,
			quit: make(chan struct{}),
			done: make(chan struct{}),
		}
		if db.wal != nil {
			// A recovered replica's schema log is a byte-exact prefix of
			// the primary's: continue the sequence instead of re-applying.
			r.schemaSeq = db.wal.SchemaRecords()
		}
		db.rep = r
		// Always a fresh bootstrap at open: the completed watermark is
		// not recoverable across a restart (see the package comment), and
		// the snapshot fast-forwards recovered state.
		c, welcome, err := r.dial(0)
		if err != nil {
			close(r.done)
			return err
		}
		r.setConn(c)
		if welcome.Snapshot {
			// The DB is not shared yet, but the auto-checkpointer may
			// already be running (Open starts it before replication):
			// hold the OLAP gate so its generation pin cannot span the
			// in-place fill.
			db.olapGate.Lock()
			err := r.runBootstrap(c)
			db.olapGate.Unlock()
			if err != nil {
				_ = c.Close()
				close(r.done)
				return err
			}
			if db.wal != nil {
				// The snapshot bytes never touched the replica's own WAL:
				// checkpoint now so a restart recovers them instead of
				// re-bootstrapping. Fatal at Open, unlike on reconnect —
				// the caller asked for a durable replica it does not have.
				if err := db.Checkpoint(); err != nil {
					_ = c.Close()
					close(r.done)
					return err
				}
			}
		}
		// The connection is live before the apply loop starts: report
		// it so Stats read between Open returning and run's first
		// iteration do not claim a disconnected replica.
		r.connected.Store(true)
		go r.run(c)
	}
	if cfg.serveAddr != "" {
		srv, err := newServer(cfg.serveAddr, cfg.maxSessions)
		if err != nil {
			return err
		}
		srv.Register(ns, db)
		db.srv = srv
	}
	return nil
}

// ServeAddr returns the WithServeAddr listener's resolved address
// (host:0 resolves to the picked port), or "" when not serving.
func (db *DB) ServeAddr() string {
	if db.srv == nil {
		return ""
	}
	return db.srv.Addr()
}
