package ankerdb

import (
	"time"

	"ankerdb/internal/query"
	"ankerdb/internal/telemetry"
)

// Pred is a query predicate: a tree of comparisons over column values,
// combined with And/Or/Not. Build predicates with the package-level
// constructors (Eq, Between, EqString, ...); column names may be
// qualified "table.col" to disambiguate joined tables, and RowID
// refers to the probed table's row index.
type Pred = query.Pred

// AggSpec selects one aggregate of a query (see SumOf, CountRows,
// MinOf, MaxOf, AvgOf).
type AggSpec = query.AggSpec

// QueryResult is a finished query: column-major data plus execution
// statistics (morsels dispatched, blocks pruned by zone maps, ...).
type QueryResult = query.Result

// QueryStats describes how a query executed.
type QueryStats = query.ExecStats

// RowID is the pseudo-column holding the probed table's row index.
const RowID = query.RowID

// Predicate constructors, re-exported from the query engine.
func Eq(col string, v int64) Pred           { return query.Eq(col, v) }
func Ne(col string, v int64) Pred           { return query.Ne(col, v) }
func Lt(col string, v int64) Pred           { return query.Lt(col, v) }
func Le(col string, v int64) Pred           { return query.Le(col, v) }
func Gt(col string, v int64) Pred           { return query.Gt(col, v) }
func Ge(col string, v int64) Pred           { return query.Ge(col, v) }
func Between(col string, lo, hi int64) Pred { return query.Between(col, lo, hi) }
func EqString(col, s string) Pred           { return query.EqString(col, s) }
func And(ps ...Pred) Pred                   { return query.And(ps...) }
func Or(ps ...Pred) Pred                    { return query.Or(ps...) }
func Not(p Pred) Pred                       { return query.Not(p) }

// Aggregate constructors. (The root package's Agg constants Sum, Min,
// Max, Count belong to the scalar Txn.Aggregate API, hence the *Of
// names here.)
func SumOf(col string) AggSpec { return query.Sum(col) }
func MinOf(col string) AggSpec { return query.Min(col) }
func MaxOf(col string) AggSpec { return query.Max(col) }
func AvgOf(col string) AggSpec { return query.Avg(col) }
func CountRows() AggSpec       { return query.Count() }

// Query is a composable query over one pinned snapshot: scan the probe
// table, filter (with zone-map pruning pushing the predicate below the
// scan), hash-join against other tables of the same snapshot, group
// and aggregate — executed morsel-parallel with a deterministic
// result. Build it with Txn.Query or DB.Query and chain; errors
// surface from Run.
type Query struct {
	db  *DB
	t   *Txn   // supplies the pinned generation
	own bool   // Run releases t when DB.Query created it
	tab string // probe table name, for the slow-query log
	b   *query.Builder
	err error
}

// Query starts a query scanning tab at the transaction's pinned
// snapshot. The transaction must be OLAP: queries execute against a
// snapshot generation, which only OLAP transactions pin.
func (t *Txn) Query(tab string) *Query {
	q := &Query{db: t.db, t: t, tab: tab}
	switch {
	case t.done:
		q.err = ErrTxnDone
	case t.class != OLAP:
		q.err = ErrNotOLAP
	default:
		tb, err := t.db.lookupTable(tab)
		if err != nil {
			q.err = err
			return q
		}
		q.b = query.New(newSnapTable(tb, t.gen))
	}
	return q
}

// Query starts a one-shot query scanning tab: an internal OLAP
// transaction pins the current snapshot and is released when Run
// returns. Use Txn.Query to run several queries against the same
// snapshot.
func (db *DB) Query(tab string) *Query {
	t, err := db.Begin(OLAP)
	if err != nil {
		return &Query{db: db, err: err}
	}
	q := t.Query(tab)
	q.own = true
	return q
}

// Where restricts the query to rows matching p; multiple calls AND.
func (q *Query) Where(p Pred) *Query {
	if q.err == nil {
		q.b.Where(p)
	}
	return q
}

// Join adds an inner equi join against tab (read at the same pinned
// snapshot): rows where probeCol equals buildCol of tab. The joined
// table is hashed once; the probed side streams.
func (q *Query) Join(tab, probeCol, buildCol string) *Query {
	if q.err != nil {
		return q
	}
	tb, err := q.db.lookupTable(tab)
	if err != nil {
		q.err = err
		return q
	}
	q.b.Join(newSnapTable(tb, q.t.gen), probeCol, buildCol)
	return q
}

// GroupBy groups the aggregation by the given columns.
func (q *Query) GroupBy(cols ...string) *Query {
	if q.err == nil {
		q.b.GroupBy(cols...)
	}
	return q
}

// Aggregate makes the query aggregating, computing the given specs
// (per group when GroupBy was set, else over all qualifying rows).
func (q *Query) Aggregate(aggs ...AggSpec) *Query {
	if q.err == nil {
		q.b.Aggregate(aggs...)
	}
	return q
}

// Select projects the named columns, in order. Without it a
// non-aggregating query returns every probe column followed by every
// joined table's columns.
func (q *Query) Select(cols ...string) *Query {
	if q.err == nil {
		q.b.Select(cols...)
	}
	return q
}

// Morsels caps the number of parallel workers; default GOMAXPROCS.
func (q *Query) Morsels(n int) *Query {
	if q.err == nil {
		q.b.Morsels(n)
	}
	return q
}

// Limit caps the result to its first n rows — the same n rows the
// unlimited query would return first, so the result stays
// deterministic. Non-aggregating queries stop dispatching scan morsels
// as soon as a contiguous prefix of merged morsels covers n rows.
func (q *Query) Limit(n int) *Query {
	if q.err == nil {
		q.b.Limit(n)
	}
	return q
}

// WithoutPruning disables zone-map pruning (every block is scanned)
// and secondary-index probes (the scan path runs even over an indexed
// column); useful to verify both against the plain scan and to measure
// their benefit.
func (q *Query) WithoutPruning() *Query {
	if q.err == nil {
		q.b.WithoutPruning()
	}
	return q
}

// Run binds, executes and merges the query.
func (q *Query) Run() (*QueryResult, error) {
	if q.own && q.t != nil {
		defer q.t.Commit()
	}
	if q.err != nil {
		return nil, q.err
	}
	db := q.db
	qid := int64(db.tel.queryIDs.Add(1))
	// The recorder marks double as the execution timer: two monotonic
	// reads cover both events and the latency histogram.
	tr := db.tel.rec
	start := tr.Now()
	tr.RecordAt(telemetry.EvQueryStart, qid, 0, 0, start)
	res, err := q.b.Run()
	end := tr.Now()
	elapsed := end - start
	if err != nil {
		tr.RecordAt(telemetry.EvQueryFinish, qid, -1, elapsed.Nanoseconds(), end)
		return nil, err
	}
	st := &db.st
	st.queriesRun.Add(1)
	st.zoneSkipped.Add(uint64(res.Stats.BlocksSkipped))
	st.zoneScanned.Add(uint64(res.Stats.BlocksScanned))
	if res.Stats.IndexProbes > 0 {
		st.indexProbes.Add(uint64(res.Stats.IndexProbes))
		st.indexQueries.Add(1)
	}
	// Counter first, histogram second (Stats snapshots histograms before
	// loading counters): QueryExecHist.Count never exceeds QueriesRun.
	db.tel.queryExec.Observe(elapsed)
	tr.RecordAt(telemetry.EvQueryFinish, qid, res.Stats.RowsEmitted, elapsed.Nanoseconds(), end)
	if th := db.tel.slowThresh; th > 0 && elapsed >= th {
		tr.RecordNote(telemetry.EvSlowQuery, qid, res.Stats.RowsEmitted, elapsed.Nanoseconds(), q.tab)
		db.tel.noteSlow(SlowQuery{At: time.Now(), Duration: elapsed, Table: q.tab, Stats: res.Stats})
	}
	return res, nil
}
