package ankerdb

// Session is the engine surface the serving tier speaks: the subset of
// *DB that a client needs to run transactions and observe health,
// satisfied both by an embedded database (*DB) and by a remote
// connection to one (Dial). Code written against Session runs
// unchanged in-process, against a served primary, or against a read
// replica — the deployment choice moves out of the call sites.
type Session interface {
	// BeginTxn starts a transaction of the given class. On a read
	// replica (local or remote), OLTP transactions are refused with
	// ErrReplicaRead; OLAP snapshots read the replica's applied state.
	BeginTxn(class TxnClass) (SessionTxn, error)

	// Stats snapshots engine counters — including the replication
	// fields a caller uses to bound staleness (Stats.ReplicaAppliedTS,
	// Stats.MaxReplicaLag).
	Stats() Stats

	// Close releases the session. Closing an embedded *DB session
	// closes the database itself; closing a remote session only drops
	// the connection.
	Close() error
}

// SessionTxn is one transaction under a Session: the *Txn method set
// that ships over the wire. *Txn satisfies it verbatim, so an embedded
// session hands out the engine's own transactions with no wrapping.
// Point reads and writes address (table, column, row); Lookup and
// Filter route through secondary indexes exactly like *Txn.
type SessionTxn interface {
	Class() TxnClass
	SnapshotTS() uint64

	Get(tab, col string, row int) (int64, error)
	GetString(tab, col string, row int) (string, error)
	Scan(tab, col string) ([]int64, error)
	Lookup(tab, col string, v int64) ([]int, error)
	Filter(tab, col string, lo, hi int64) ([]int, error)
	Aggregate(tab, col string, agg Agg) (int64, error)

	Set(tab, col string, row int, v int64) error
	SetString(tab, col string, row int, s string) error
	Insert(tab string, vals map[string]any) (int, error)
	Delete(tab string, row int) error

	Commit() error
	Abort() error
}

// BeginTxn adapts Begin to the Session surface. The indirection exists
// so *DB's interface value never wraps a typed-nil *Txn: Begin's error
// path returns a nil *Txn, which BeginTxn maps to a nil interface.
func (db *DB) BeginTxn(class TxnClass) (SessionTxn, error) {
	t, err := db.Begin(class)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Compile-time session-surface checks: the embedded engine and the
// remote client stay interchangeable.
var (
	_ Session    = (*DB)(nil)
	_ Session    = (*RemoteSession)(nil)
	_ SessionTxn = (*Txn)(nil)
	_ SessionTxn = (*remoteTxn)(nil)
)
