package ankerdb_test

// Table-DDL tests: DropTable and Truncate live semantics (name release,
// allocator reset, index reset, epoch-guard aborts of staged
// transactions) and crash recovery of the schema-log DDL markers — with
// checkpoints taken before and after the DDL, including the
// drop-and-recreate-same-name case that exercises slot-addressed
// checkpoint sections. Everything goes through the public API.

import (
	"errors"
	"fmt"
	"testing"

	"ankerdb"
)

func ddlSchema() ankerdb.Schema {
	return ankerdb.Schema{
		Table: "orders",
		Columns: []ankerdb.ColumnDef{
			{Name: "qty", Type: ankerdb.Int64},
			{Name: "item", Type: ankerdb.Varchar},
		},
	}
}

func openDDLDurable(t *testing.T, dir string, opts ...ankerdb.Option) *ankerdb.DB {
	t.Helper()
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithCommitShards(4),
		ankerdb.WithDurability(dir),
		ankerdb.WithInitialSchema(ddlSchema(), 8),
	}, opts...)...)
	if err != nil {
		t.Fatalf("open durable db: %v", err)
	}
	return db
}

// TestDropTableLifecycle: the name disappears immediately, double drops
// fail cleanly, and a same-name re-creation is a fresh table.
func TestDropTableLifecycle(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openGrowDB(t, strat)
			defer db.Close()
			insertOne(t, db, 42, "anvil")

			if err := db.DropTable("orders"); err != nil {
				t.Fatalf("DropTable: %v", err)
			}
			if err := db.DropTable("orders"); !errors.Is(err, ankerdb.ErrNoSuchTable) {
				t.Fatalf("second DropTable = %v, want ErrNoSuchTable", err)
			}
			r, _ := db.Begin(ankerdb.OLAP)
			if _, err := r.Aggregate("orders", "qty", ankerdb.Count); !errors.Is(err, ankerdb.ErrNoSuchTable) {
				t.Fatalf("Count after drop = %v, want ErrNoSuchTable", err)
			}
			_ = r.Commit()

			// Same name, different schema: a brand-new table with none of
			// the old rows.
			if err := db.CreateTable(ankerdb.Schema{
				Table:   "orders",
				Columns: []ankerdb.ColumnDef{{Name: "total", Type: ankerdb.Int64}},
			}, 4); err != nil {
				t.Fatalf("re-create: %v", err)
			}
			r2, _ := db.Begin(ankerdb.OLAP)
			if n, err := r2.Aggregate("orders", "total", ankerdb.Count); err != nil || n != 4 {
				t.Fatalf("Count(recreated) = %d, %v, want 4", n, err)
			}
			if _, err := r2.Get("orders", "qty", 0); !errors.Is(err, ankerdb.ErrNoSuchColumn) {
				t.Fatalf("old column after re-create = %v, want ErrNoSuchColumn", err)
			}
			mustCommit(t, r2)
		})
	}
}

// TestTruncateLifecycle: the count collapses to zero, old rows stop
// resolving, the allocator restarts at slot zero, and post-truncate
// inserts are the only visible rows.
func TestTruncateLifecycle(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openGrowDB(t, strat)
			defer db.Close()
			old := insertOne(t, db, 42, "anvil")

			if err := db.Truncate("orders"); err != nil {
				t.Fatalf("Truncate: %v", err)
			}
			r, _ := db.Begin(ankerdb.OLAP)
			if n := count(t, r); n != 0 {
				t.Fatalf("Count after truncate = %d, want 0", n)
			}
			if _, err := r.Get("orders", "qty", old); !errors.Is(err, ankerdb.ErrRowNotVisible) {
				t.Fatalf("Get(pre-truncate row) = %v, want ErrRowNotVisible", err)
			}
			mustCommit(t, r)

			row := insertOne(t, db, 7, "nail")
			if row != 0 {
				t.Fatalf("post-truncate insert landed on row %d, want 0", row)
			}
			r2, _ := db.Begin(ankerdb.OLAP)
			if n := count(t, r2); n != 1 {
				t.Fatalf("Count after re-insert = %d, want 1", n)
			}
			if rows, err := r2.Filter("orders", "qty", 7, 7); err != nil || len(rows) != 1 || rows[0] != row {
				t.Fatalf("Filter(7) = %v, %v, want [%d]", rows, err, row)
			}
			if rows, err := r2.Filter("orders", "qty", 42, 42); err != nil || len(rows) != 0 {
				t.Fatalf("Filter(42) = %v, %v, want none", rows, err)
			}
			mustCommit(t, r2)
		})
	}
}

// TestTruncateResetsIndex: a secondary index survives a truncation as
// an empty index — post-truncate probes see exactly the post-truncate
// rows, never resurrected pre-truncate entries.
func TestTruncateResetsIndex(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()
	if err := db.CreateIndex("orders", "qty", ankerdb.Hash); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	for i := 0; i < 8; i++ {
		insertOne(t, db, 500, "bulk")
	}
	if err := db.Truncate("orders"); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	row := insertOne(t, db, 500, "fresh")
	r, _ := db.Begin(ankerdb.OLAP)
	rows, err := r.Filter("orders", "qty", 500, 500)
	if err != nil || len(rows) != 1 || rows[0] != row {
		t.Fatalf("Filter(500) after truncate = %v, %v, want [%d]", rows, err, row)
	}
	mustCommit(t, r)
}

// TestDDLAbortsStagedTransactions: a transaction that staged against a
// table before its truncation or drop must abort at commit — installing
// would resurrect truncated rows or write freed memory.
func TestDDLAbortsStagedTransactions(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()

	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Set("orders", "qty", 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := db.Truncate("orders"); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if err := w.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("Commit across truncate = %v, want ErrConflict", err)
	}

	w2, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Insert("orders", map[string]any{"qty": int64(1), "item": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("orders"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if err := w2.Commit(); !errors.Is(err, ankerdb.ErrNoSuchTable) {
		t.Fatalf("Commit across drop = %v, want ErrNoSuchTable", err)
	}
}

// TestDropTableRecovery: the drop marker replays exactly once, with and
// without a pre-drop checkpoint, including a same-name re-creation whose
// state must never bleed into (or load from) the dropped incarnation's
// checkpoint section.
func TestDropTableRecovery(t *testing.T) {
	for _, ckpt := range []bool{false, true} {
		t.Run(fmt.Sprintf("checkpoint=%v", ckpt), func(t *testing.T) {
			dir := t.TempDir()
			db := openDDLDurable(t, dir)
			insertOne(t, db, 42, "anvil")
			if ckpt {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("Checkpoint: %v", err)
				}
			}
			if err := db.DropTable("orders"); err != nil {
				t.Fatalf("DropTable: %v", err)
			}
			if err := db.CreateTable(ankerdb.Schema{
				Table:   "orders",
				Columns: []ankerdb.ColumnDef{{Name: "total", Type: ankerdb.Int64}},
			}, 4); err != nil {
				t.Fatalf("re-create: %v", err)
			}
			w, _ := db.Begin(ankerdb.OLTP)
			if err := w.Set("orders", "total", 0, 77); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, w)
			if err := db.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			db2 := openDDLDurable(t, dir)
			defer db2.Close()
			r, _ := db2.Begin(ankerdb.OLAP)
			if n, err := r.Aggregate("orders", "total", ankerdb.Count); err != nil || n != 4 {
				t.Fatalf("recovered Count = %d, %v, want 4", n, err)
			}
			if v, err := r.Get("orders", "total", 0); err != nil || v != 77 {
				t.Fatalf("recovered Get = %d, %v, want 77", v, err)
			}
			if _, err := r.Get("orders", "qty", 0); !errors.Is(err, ankerdb.ErrNoSuchColumn) {
				t.Fatalf("dropped incarnation's column = %v, want ErrNoSuchColumn", err)
			}
			mustCommit(t, r)
		})
	}
}

// TestDropTableRecoveryNoRecreate: a dropped table stays dropped across
// recovery and its name is free for a fresh CreateTable.
func TestDropTableRecoveryNoRecreate(t *testing.T) {
	dir := t.TempDir()
	db := openDDLDurable(t, dir)
	insertOne(t, db, 42, "anvil")
	if err := db.DropTable("orders"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen WITHOUT the initial schema: WithInitialSchema is
	// declarative and would simply re-create the missing table.
	db2, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithCommitShards(4),
		ankerdb.WithDurability(dir),
	)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	r, _ := db2.Begin(ankerdb.OLAP)
	if _, err := r.Aggregate("orders", "qty", ankerdb.Count); !errors.Is(err, ankerdb.ErrNoSuchTable) {
		t.Fatalf("recovered dropped table = %v, want ErrNoSuchTable", err)
	}
	_ = r.Commit()
	if err := db2.CreateTable(ddlSchema(), 2); err != nil {
		t.Fatalf("CreateTable after recovered drop: %v", err)
	}
	r2, _ := db2.Begin(ankerdb.OLAP)
	if n, err := r2.Aggregate("orders", "qty", ankerdb.Count); err != nil || n != 2 {
		t.Fatalf("fresh table Count = %d, %v, want 2", n, err)
	}
	mustCommit(t, r2)
}

// TestTruncateRecovery: the truncate marker's timestamp decides exactly
// which replayed rows it kills — pre-truncate commits die, post-truncate
// commits survive — whether the surviving checkpoint was taken before
// the truncate, after it, or never.
func TestTruncateRecovery(t *testing.T) {
	for _, mode := range []string{"none", "before", "after"} {
		t.Run("checkpoint="+mode, func(t *testing.T) {
			dir := t.TempDir()
			db := openDDLDurable(t, dir)
			preA := insertOne(t, db, 100, "pre")
			insertOne(t, db, 101, "pre")
			if mode == "before" {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("Checkpoint: %v", err)
				}
			}
			if err := db.Truncate("orders"); err != nil {
				t.Fatalf("Truncate: %v", err)
			}
			insertOne(t, db, 200, "post")
			insertOne(t, db, 201, "post")
			if mode == "after" {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("Checkpoint: %v", err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			db2 := openDDLDurable(t, dir)
			defer db2.Close()
			r, _ := db2.Begin(ankerdb.OLAP)
			if n, err := r.Aggregate("orders", "qty", ankerdb.Count); err != nil || n != 2 {
				t.Fatalf("recovered Count = %d, %v, want 2", n, err)
			}
			for _, want := range []int64{200, 201} {
				if rows, err := r.Filter("orders", "qty", want, want); err != nil || len(rows) != 1 {
					t.Fatalf("Filter(%d) = %v, %v, want one row", want, rows, err)
				}
			}
			if rows, err := r.Filter("orders", "qty", 100, 101); err != nil || len(rows) != 0 {
				t.Fatalf("pre-truncate rows resurrected: %v, %v", rows, err)
			}
			if _, err := r.Get("orders", "qty", preA); !errors.Is(err, ankerdb.ErrRowNotVisible) {
				t.Fatalf("Get(pre-truncate row) = %v, want ErrRowNotVisible", err)
			}
			mustCommit(t, r)

			// The recovered table keeps working transactionally.
			row := insertOne(t, db2, 300, "post-recovery")
			r2, _ := db2.Begin(ankerdb.OLAP)
			if n, err := r2.Aggregate("orders", "qty", ankerdb.Count); err != nil || n != 3 {
				t.Fatalf("post-recovery Count = %d, %v, want 3", n, err)
			}
			if v, err := r2.Get("orders", "qty", row); err != nil || v != 300 {
				t.Fatalf("post-recovery Get = %d, %v, want 300", v, err)
			}
			mustCommit(t, r2)
		})
	}
}
