package ankerdb_test

// Growable-table tests: transactional Insert/Delete with
// snapshot-consistent visibility, free-list reuse through Vacuum,
// chunked capacity growth, and the precision-locking interactions of
// row births and deaths — across all four snapshot strategies.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ankerdb"
)

const growRows = 64 // initial visible rows of the grow test table

func openGrowDB(t *testing.T, strat ankerdb.SnapshotStrategy, opts ...ankerdb.Option) *ankerdb.DB {
	t.Helper()
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(ankerdb.Schema{
			Table: "orders",
			Columns: []ankerdb.ColumnDef{
				{Name: "qty", Type: ankerdb.Int64},
				{Name: "item", Type: ankerdb.Varchar},
			},
		}, growRows),
	}, opts...)...)
	if err != nil {
		t.Fatalf("Open(%s): %v", strat, err)
	}
	return db
}

// insertOne commits a single-row insert and returns its row index.
func insertOne(t *testing.T, db *ankerdb.DB, qty int64, item string) int {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	row, err := w.Insert("orders", map[string]any{"qty": qty, "item": item})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return row
}

// deleteOne commits a single-row delete.
func deleteOne(t *testing.T, db *ankerdb.DB, row int) {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Delete("orders", row); err != nil {
		t.Fatalf("Delete(%d): %v", row, err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func count(t *testing.T, txn *ankerdb.Txn) int64 {
	t.Helper()
	n, err := txn.Aggregate("orders", "qty", ankerdb.Count)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return n
}

// TestInsertDeleteVisibility is the core growable-table acceptance
// test: inserted rows appear exactly once committed, deleted rows
// disappear, and OLTP reads, OLAP scans, filters and counts agree on
// the visible row set — under every snapshot strategy.
func TestInsertDeleteVisibility(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openGrowDB(t, strat)
			defer db.Close()

			row := insertOne(t, db, 42, "anvil")
			if row < growRows {
				t.Fatalf("insert landed on pre-existing row %d", row)
			}

			r, _ := db.Begin(ankerdb.OLAP)
			if n := count(t, r); n != growRows+1 {
				t.Fatalf("Count = %d, want %d", n, growRows+1)
			}
			if v, err := r.Get("orders", "qty", row); err != nil || v != 42 {
				t.Fatalf("Get(inserted) = %d, %v, want 42", v, err)
			}
			if s, err := r.GetString("orders", "item", row); err != nil || s != "anvil" {
				t.Fatalf("GetString(inserted) = %q, %v, want anvil", s, err)
			}
			if rows, err := r.Filter("orders", "qty", 42, 42); err != nil || len(rows) != 1 || rows[0] != row {
				t.Fatalf("Filter(42) = %v, %v, want [%d]", rows, err, row)
			}
			if sum, err := r.Aggregate("orders", "qty", ankerdb.Sum); err != nil || sum != 42 {
				t.Fatalf("Sum = %d, %v, want 42", sum, err)
			}
			mustCommit(t, r)

			deleteOne(t, db, row)
			deleteOne(t, db, 0) // a pre-existing row dies too

			r2, _ := db.Begin(ankerdb.OLAP)
			if n := count(t, r2); n != growRows-1 {
				t.Fatalf("Count after deletes = %d, want %d", n, growRows-1)
			}
			if _, err := r2.Get("orders", "qty", row); !errors.Is(err, ankerdb.ErrRowNotVisible) {
				t.Fatalf("Get(deleted) = %v, want ErrRowNotVisible", err)
			}
			if _, err := r2.Get("orders", "qty", 0); !errors.Is(err, ankerdb.ErrRowNotVisible) {
				t.Fatalf("Get(deleted pre-existing) = %v, want ErrRowNotVisible", err)
			}
			if got, err := r2.Scan("orders", "qty"); err != nil || len(got) != growRows-1 {
				t.Fatalf("Scan = %d rows, %v, want %d", len(got), err, growRows-1)
			}
			mustCommit(t, r2)

			st := db.Stats()
			if st.RowInserts != 1 || st.RowDeletes != 2 {
				t.Fatalf("RowInserts/RowDeletes = %d/%d, want 1/2", st.RowInserts, st.RowDeletes)
			}
		})
	}
}

// TestOLAPNeverSeesConcurrentInsert is the acceptance criterion: an
// OLAP transaction opened before a concurrent insert commits must
// never observe the new row — in counts, scans, filters or point
// reads — under every strategy.
func TestOLAPNeverSeesConcurrentInsert(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openGrowDB(t, strat)
			defer db.Close()

			// Mutate visibility once so the OLAP path exercises the
			// visibility snapshot (not the unmutated fast path).
			deleteOne(t, db, 1)

			r, _ := db.Begin(ankerdb.OLAP)

			row := insertOne(t, db, 7, "ghost") // commits after r began

			if n := count(t, r); n != growRows-1 {
				t.Fatalf("Count = %d, want %d (insert leaked)", n, growRows-1)
			}
			if got, _ := r.Scan("orders", "qty"); len(got) != growRows-1 {
				t.Fatalf("Scan = %d rows, want %d", len(got), growRows-1)
			}
			if rows, _ := r.Filter("orders", "qty", 7, 7); len(rows) != 0 {
				t.Fatalf("Filter saw concurrent insert: %v", rows)
			}
			if _, err := r.Get("orders", "qty", row); !errors.Is(err, ankerdb.ErrRowNotVisible) {
				t.Fatalf("Get(not-yet-visible) = %v, want ErrRowNotVisible", err)
			}
			mustCommit(t, r)

			// A fresh OLAP transaction sees it.
			r2, _ := db.Begin(ankerdb.OLAP)
			if n := count(t, r2); n != growRows {
				t.Fatalf("fresh Count = %d, want %d", n, growRows)
			}
			mustCommit(t, r2)
		})
	}
}

// TestInsertReadOwnWritesAndAbort: staged inserts are visible to their
// own transaction only, and an abort returns the reserved slot for
// reuse.
func TestInsertReadOwnWritesAndAbort(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()

	w, _ := db.Begin(ankerdb.OLTP)
	row, err := w.Insert("orders", map[string]any{"qty": int64(9)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if v, err := w.Get("orders", "qty", row); err != nil || v != 9 {
		t.Fatalf("own Get = %d, %v, want 9", v, err)
	}
	if n := count(t, w); n != growRows+1 {
		t.Fatalf("own Count = %d, want %d", n, growRows+1)
	}
	if s, err := w.GetString("orders", "item", row); err != nil || s != "" {
		t.Fatalf("own GetString(defaulted) = %q, %v, want empty", s, err)
	}

	other, _ := db.Begin(ankerdb.OLTP)
	if _, err := other.Get("orders", "qty", row); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("foreign Get(staged insert) = %v, want ErrRowNotVisible", err)
	}
	mustCommit(t, other)

	if err := w.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	// The aborted slot is reused by the next insert.
	if got := insertOne(t, db, 1, "x"); got != row {
		t.Fatalf("aborted slot not reused: got row %d, want %d", got, row)
	}
}

// TestVacuumReclaimsAndReuses: a deleted row is reclaimed once no
// reader can see it and its slot is reused by the next insert instead
// of growing the table.
func TestVacuumReclaimsAndReuses(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()

	row := insertOne(t, db, 5, "dead")
	deleteOne(t, db, row)
	db.Vacuum()

	st := db.Stats()
	if st.RowsReclaimed != 1 || st.RowsFree != 1 {
		t.Fatalf("RowsReclaimed/RowsFree = %d/%d, want 1/1", st.RowsReclaimed, st.RowsFree)
	}

	got := insertOne(t, db, 6, "alive")
	if got != row {
		t.Fatalf("free slot not reused: got row %d, want %d", got, row)
	}
	r, _ := db.Begin(ankerdb.OLAP)
	if v, err := r.Get("orders", "qty", got); err != nil || v != 6 {
		t.Fatalf("Get(reused) = %d, %v, want 6", v, err)
	}
	if n := count(t, r); n != growRows+1 {
		t.Fatalf("Count = %d, want %d", n, growRows+1)
	}
	mustCommit(t, r)
	if db.Stats().RowsFree != 0 {
		t.Fatalf("free list not consumed: %d", db.Stats().RowsFree)
	}
}

// TestVacuumSparesVisibleDeletes: a pinned OLAP generation below the
// deletion keeps the row from being reclaimed.
func TestVacuumSparesVisibleDeletes(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()

	row := insertOne(t, db, 5, "held")

	r, _ := db.Begin(ankerdb.OLAP)
	if n := count(t, r); n != growRows+1 {
		t.Fatalf("Count = %d", n)
	}

	deleteOne(t, db, row)
	db.Vacuum()
	if got := db.Stats().RowsReclaimed; got != 0 {
		t.Fatalf("reclaimed %d rows under a pinned snapshot, want 0", got)
	}
	// The pinned generation still sees the row.
	if v, err := r.Get("orders", "qty", row); err != nil || v != 5 {
		t.Fatalf("pinned Get = %d, %v, want 5", v, err)
	}
	mustCommit(t, r)

	// Rotate the manager's current generation past the deletion (the
	// manager's own pin keeps the old floor), then reclaim.
	r2, _ := db.Begin(ankerdb.OLAP)
	_ = count(t, r2)
	mustCommit(t, r2)

	db.Vacuum()
	if got := db.Stats().RowsReclaimed; got != 1 {
		t.Fatalf("reclaimed %d rows after release, want 1", got)
	}
}

// TestGrowBeyondInitialCapacity inserts past the first chunk so the
// table maps new capacity chunks, while an OLAP transaction pinned
// before the growth keeps scanning its snapshot — the mapped regions
// it captured must stay valid across growth under every strategy.
func TestGrowBeyondInitialCapacity(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openGrowDB(t, strat)
			defer db.Close()

			before := db.Stats().TableCapacity

			r, _ := db.Begin(ankerdb.OLAP)
			if n := count(t, r); n != growRows {
				t.Fatalf("pinned Count = %d", n)
			}

			var rows []int
			total := before - growRows + 17 // strictly past the first chunk
			for i := 0; i < total; i++ {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					t.Fatal(err)
				}
				row, err := w.Insert("orders", map[string]any{"qty": int64(i)})
				if err != nil {
					t.Fatalf("Insert %d: %v", i, err)
				}
				if err := w.Commit(); err != nil {
					t.Fatalf("Commit %d: %v", i, err)
				}
				rows = append(rows, row)
			}
			if after := db.Stats().TableCapacity; after <= before {
				t.Fatalf("capacity did not grow: %d -> %d", before, after)
			}

			// The pre-growth snapshot still scans consistently.
			if n := count(t, r); n != growRows {
				t.Fatalf("pinned Count after growth = %d, want %d", n, growRows)
			}
			if got, err := r.Scan("orders", "qty"); err != nil || len(got) != growRows {
				t.Fatalf("pinned Scan = %d rows, %v", len(got), err)
			}
			mustCommit(t, r)

			r2, _ := db.Begin(ankerdb.OLAP)
			if n := count(t, r2); n != int64(growRows+total) {
				t.Fatalf("Count = %d, want %d", n, growRows+total)
			}
			for i, row := range rows {
				if v, err := r2.Get("orders", "qty", row); err != nil || v != int64(i) {
					t.Fatalf("Get(row %d) = %d, %v, want %d", row, v, err, i)
				}
			}
			mustCommit(t, r2)
		})
	}
}

// TestDeleteConflicts: two transactions deleting the same row — the
// second to commit must abort; and a scan concurrent with a delete is
// invalidated at commit (the delete shadows the row's values).
func TestDeleteConflicts(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()

	a, _ := db.Begin(ankerdb.OLTP)
	b, _ := db.Begin(ankerdb.OLTP)
	if err := a.Delete("orders", 3); err != nil {
		t.Fatalf("a.Delete: %v", err)
	}
	if err := b.Delete("orders", 3); err != nil {
		t.Fatalf("b.Delete: %v", err)
	}
	mustCommit(t, a)
	if err := b.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("double delete commit = %v, want ErrConflict", err)
	}

	// Scan vs delete: the scanner's full-range predicate intersects the
	// deleted row's shadowed values.
	set(t, db, "orders", "qty", 5, 50)
	c, _ := db.Begin(ankerdb.OLTP)
	if _, err := c.Filter("orders", "qty", 0, 100); err != nil {
		t.Fatalf("Filter: %v", err)
	}
	c.Set("orders", "qty", 6, 1)
	deleteOne(t, db, 5)
	if err := c.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("scan-vs-delete commit = %v, want ErrConflict", err)
	}

	// Count vs insert: a counted table changing size invalidates too.
	d, _ := db.Begin(ankerdb.OLTP)
	if _, err := d.Aggregate("orders", "qty", ankerdb.Count); err != nil {
		t.Fatalf("Count: %v", err)
	}
	d.Set("orders", "qty", 7, 1)
	insertOne(t, db, 70, "phantom")
	if err := d.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("count-vs-insert commit = %v, want ErrConflict", err)
	}
}

// TestRowErrors covers the named row errors and argument validation.
func TestRowErrors(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()

	r, _ := db.Begin(ankerdb.OLTP)
	capacity := db.Stats().TableCapacity
	_, err := r.Get("orders", "qty", capacity)
	if !errors.Is(err, ankerdb.ErrRowRange) {
		t.Fatalf("Get(out of range) = %v, want ErrRowRange", err)
	}
	for _, want := range []string{"orders.qty", fmt.Sprint(capacity)} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("ErrRowRange message %q does not name %q", err, want)
		}
	}
	// A physically mapped but unborn row: not visible, and still an
	// ErrRowRange match for older callers.
	if _, err := r.Get("orders", "qty", growRows); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("Get(unborn) = %v, want ErrRowNotVisible", err)
	}
	if _, err := r.Get("orders", "qty", growRows); !errors.Is(err, ankerdb.ErrRowRange) {
		t.Fatalf("Get(unborn) = %v, want ErrRowRange match too", err)
	}
	if err := r.Set("orders", "qty", growRows, 1); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("Set(unborn) = %v, want ErrRowNotVisible", err)
	}
	if err := r.Delete("orders", growRows); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("Delete(unborn) = %v, want ErrRowNotVisible", err)
	}

	if _, err := r.Insert("orders", map[string]any{"nope": int64(1)}); !errors.Is(err, ankerdb.ErrNoSuchColumn) {
		t.Fatalf("Insert(bad column) = %v, want ErrNoSuchColumn", err)
	}
	if _, err := r.Insert("orders", map[string]any{"qty": "nan"}); !errors.Is(err, ankerdb.ErrType) {
		t.Fatalf("Insert(string into int) = %v, want ErrType", err)
	}
	if _, err := r.Insert("orders", map[string]any{"item": int64(3)}); !errors.Is(err, ankerdb.ErrType) {
		t.Fatalf("Insert(int into varchar) = %v, want ErrType", err)
	}
	if _, err := r.Insert("orders", map[string]any{"qty": 3.14}); !errors.Is(err, ankerdb.ErrType) {
		t.Fatalf("Insert(float) = %v, want ErrType", err)
	}
	row, err := r.Insert("orders", map[string]any{"qty": 11})
	if err != nil {
		t.Fatalf("Insert(int): %v", err)
	}
	if err := r.Delete("orders", row); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("Delete(own insert) = %v, want error", err)
	}
	mustCommit(t, r)

	o, _ := db.Begin(ankerdb.OLAP)
	if _, err := o.Insert("orders", nil); !errors.Is(err, ankerdb.ErrReadOnly) {
		t.Fatalf("OLAP Insert = %v, want ErrReadOnly", err)
	}
	if err := o.Delete("orders", 0); !errors.Is(err, ankerdb.ErrReadOnly) {
		t.Fatalf("OLAP Delete = %v, want ErrReadOnly", err)
	}
	mustCommit(t, o)
}

// TestMixedInsertDeleteSetRace drives concurrent inserters, deleters,
// updaters and OLAP scanners under every strategy (run with -race in
// CI): every scanner must observe a snapshot-consistent row set, i.e.
// Count == number of Scan values and every visible qty is either an
// initial 1 or an inserted 1 — the sum equals the count.
func TestMixedInsertDeleteSetRace(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openGrowDB(t, strat, ankerdb.WithSnapshotRefresh(4))
			defer db.Close()

			init := make([]int64, growRows)
			for i := range init {
				init[i] = 1
			}
			if err := db.Load("orders", "qty", init); err != nil {
				t.Fatalf("Load: %v", err)
			}

			const (
				inserters = 2
				deleters  = 2
				updaters  = 2
				scanners  = 2
				rounds    = 40
			)
			var wg sync.WaitGroup
			errs := make(chan error, inserters+deleters+updaters+scanners)
			var inserted atomic.Int64 // rows ever committed by inserters

			for g := 0; g < inserters; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						w, err := db.Begin(ankerdb.OLTP)
						if err != nil {
							errs <- err
							return
						}
						if _, err := w.Insert("orders", map[string]any{"qty": int64(1)}); err != nil {
							errs <- err
							return
						}
						if err := w.Commit(); err == nil {
							inserted.Add(1)
						} else if !errors.Is(err, ankerdb.ErrConflict) {
							errs <- err
							return
						}
					}
				}()
			}
			for g := 0; g < deleters; g++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						w, err := db.Begin(ankerdb.OLTP)
						if err != nil {
							errs <- err
							return
						}
						row := (seed*rounds + i*7) % growRows
						err = w.Delete("orders", row)
						if err != nil {
							// Already deleted by the other deleter: fine.
							_ = w.Abort()
							continue
						}
						if err := w.Commit(); err != nil && !errors.Is(err, ankerdb.ErrConflict) {
							errs <- err
							return
						}
					}
				}(g)
			}
			for g := 0; g < updaters; g++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						w, err := db.Begin(ankerdb.OLTP)
						if err != nil {
							errs <- err
							return
						}
						// Rewrite a visible row's qty to its invariant 1;
						// a row deleted underneath fails visibly at Set or
						// aborts at validation — both fine.
						row := (seed*13 + i*3) % growRows
						if err := w.Set("orders", "qty", row, 1); err != nil {
							_ = w.Abort()
							continue
						}
						if err := w.Commit(); err != nil && !errors.Is(err, ankerdb.ErrConflict) {
							errs <- err
							return
						}
					}
				}(g)
			}
			for g := 0; g < scanners; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						r, err := db.Begin(ankerdb.OLAP)
						if err != nil {
							errs <- err
							return
						}
						n, err := r.Aggregate("orders", "qty", ankerdb.Count)
						if err != nil {
							errs <- err
							return
						}
						sum, err := r.Aggregate("orders", "qty", ankerdb.Sum)
						if err != nil {
							errs <- err
							return
						}
						vals, err := r.Scan("orders", "qty")
						if err != nil {
							errs <- err
							return
						}
						if int64(len(vals)) != n || sum != n {
							errs <- fmt.Errorf("inconsistent snapshot: count=%d scan=%d sum=%d", n, len(vals), sum)
							return
						}
						if err := r.Commit(); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			db.Vacuum()
			final, _ := db.Begin(ankerdb.OLAP)
			n := count(t, final)
			sum, _ := final.Aggregate("orders", "qty", ankerdb.Sum)
			if n != sum {
				t.Fatalf("final count %d != sum %d", n, sum)
			}
			mustCommit(t, final)
		})
	}
}

// TestAbsenceReadValidated: observing a row as NOT visible is a read
// too. A transaction that probed an unborn slot (ErrRowNotVisible) and
// then writes must abort when a concurrent insert births that slot —
// otherwise the two commits would write-skew with no serial order.
func TestAbsenceReadValidated(t *testing.T) {
	db := openGrowDB(t, ankerdb.VMSnap)
	defer db.Close()

	a, _ := db.Begin(ankerdb.OLTP)
	if _, err := a.Get("orders", "qty", growRows); !errors.Is(err, ankerdb.ErrRowNotVisible) {
		t.Fatalf("probe = %v, want ErrRowNotVisible", err)
	}
	if err := a.Set("orders", "qty", 0, 1); err != nil {
		t.Fatalf("Set: %v", err)
	}

	// The concurrent insert lands exactly on the probed slot (the next
	// high-water row) and commits first.
	if row := insertOne(t, db, 9, "born"); row != growRows {
		t.Fatalf("insert landed on %d, want %d", row, growRows)
	}

	if err := a.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("Commit after invalidated absence read = %v, want ErrConflict", err)
	}
}
