package ankerdb

import (
	"ankerdb/internal/mvcc"
	"ankerdb/internal/query"
)

// snapTable exposes one table of a pinned snapshot generation to the
// query engine: query.Table's contract (Prepare pins state, then
// Zone/ReadBlock/NumRows answer against it) maps onto the generation's
// lazily-captured per-column snapshots and the table's visibility log.
// A snapTable belongs to one query and is not used concurrently —
// workers share the engine's plan, not the adapter's capture step.
type snapTable struct {
	tab *table
	gen *generation

	names []string

	snaps []*colSnap // per schema column, captured by Prepare
	vs    *colSnap   // visibility snapshot; nil on the unmutated fast path
	bound int        // scan bound, valid after Prepare
}

func newSnapTable(tab *table, gen *generation) *snapTable {
	schema := tab.st.Schema()
	names := make([]string, len(schema.Columns))
	for i, cd := range schema.Columns {
		names[i] = cd.Name
	}
	return &snapTable{tab: tab, gen: gen, names: names}
}

func (s *snapTable) Name() string      { return s.tab.st.Schema().Table }
func (s *snapTable) Columns() []string { return s.names }

func (s *snapTable) IsString(col int) bool {
	return s.tab.cols[col].def.Type == Varchar
}

func (s *snapTable) Encode(col int, str string) (int64, bool) {
	return s.tab.cols[col].dict.Lookup(str)
}

func (s *snapTable) Decode(col int, code int64) string {
	return s.tab.cols[col].dict.Decode(code)
}

// Prepare captures the snapshots the scan needs: the visibility arrays
// when the table ever saw a row op (the unmutated fast path needs no
// per-row checks at all — exactly the initial rows are visible), and
// each referenced column. The scan bound is the minimum over the
// captures: every capture happened after the generation's timestamp
// was fixed, so a row beyond any of them was born after that timestamp
// and is invisible to the query regardless.
func (s *snapTable) Prepare(cols []int) error {
	s.snaps = make([]*colSnap, len(s.tab.cols))
	bound := s.tab.st.InitialRows()
	if s.tab.visMutated.Load() {
		vs, err := s.gen.visSnap(s.tab)
		if err != nil {
			return err
		}
		s.vs = vs
		bound = vs.rows()
	}
	for _, ci := range cols {
		cs, err := s.gen.colSnap(s.tab.cols[ci])
		if err != nil {
			return err
		}
		s.snaps[ci] = cs
		if r := cs.rows(); r < bound {
			bound = r
		}
	}
	s.bound = bound
	return nil
}

func (s *snapTable) Rows() int      { return s.bound }
func (s *snapTable) BlockRows() int { return mvcc.BlockRows }

// NumRows is the snapshot-consistent visible row count, answered in
// O(log n) by the table's visibility log.
func (s *snapTable) NumRows() int64 {
	if !s.tab.visMutated.Load() {
		return int64(s.tab.st.InitialRows())
	}
	return s.tab.visCountAt(s.gen.ts)
}

// Zone returns the value bounds of global block blk. Zones live in the
// chunk-grained scan metadata, whose chunks may be smaller than a
// global block, so the result is the union over every chunk block the
// span [blk*BlockRows, (blk+1)*BlockRows) touches. A chunk whose
// metadata hasn't been published yet (capacity can run a beat ahead of
// it) reports no zone — the engine scans the block instead of pruning
// it.
func (s *snapTable) Zone(col, blk int) (int64, int64, bool) {
	c := s.tab.cols[col]
	cr := s.tab.st.ChunkRows()
	metas := *c.metas.Load()
	lo := blk * mvcc.BlockRows
	hi := lo + mvcc.BlockRows
	if hi > s.bound {
		hi = s.bound
	}
	var zlo, zhi int64
	first := true
	for r := lo; r < hi; {
		ci := r / cr
		if ci >= len(metas) {
			return 0, 0, false
		}
		rel := r - ci*cr
		lblk := rel / mvcc.BlockRows
		l, h := metas[ci].Zone(lblk)
		if first {
			zlo, zhi, first = l, h, false
		} else {
			if l < zlo {
				zlo = l
			}
			if h > zhi {
				zhi = h
			}
		}
		next := ci*cr + (lblk+1)*mvcc.BlockRows
		if end := (ci + 1) * cr; next > end {
			next = end
		}
		r = next
	}
	if first {
		return 0, 0, false
	}
	return zlo, zhi, true
}

// ReadBlock reads the visible rows of [lo, hi) — row indices into
// rowIDs, then each requested column's snapshot-resolved values into
// the parallel out slice. The block-granular version metadata keeps
// the common case a straight page copy (the HyPer-style optimisation
// of Section 5.5): only rows inside a block's versioned span pay the
// write-timestamp check and possible chain walk.
func (s *snapTable) ReadBlock(lo, hi int, cols []int, rowIDs []int64, out [][]int64) (int, error) {
	n := 0
	if s.vs == nil {
		for row := lo; row < hi; row++ {
			rowIDs[n] = int64(row)
			n++
		}
	} else {
		ts := s.gen.ts
		for row := lo; row < hi; row++ {
			if s.vs.visibleAt(row, ts) {
				rowIDs[n] = int64(row)
				n++
			}
		}
	}
	if n == 0 {
		return 0, nil
	}
	for i, ci := range cols {
		s.fillColumn(ci, rowIDs[:n], out[i])
	}
	return n, nil
}

// fillColumn resolves the given rows of one column against its
// captured snapshot. Rows are ascending, so the versioned span of the
// covering metadata block is computed once per block, not per row.
func (s *snapTable) fillColumn(ci int, rowIDs []int64, out []int64) {
	c := s.tab.cols[ci]
	cs := s.snaps[ci]
	cr := s.tab.st.ChunkRows()
	metas := *c.metas.Load()
	segEnd := -1
	var vlo, vhi int
	var any bool
	for k, rid := range rowIDs {
		row := int(rid)
		if row >= segEnd {
			chunk := row / cr
			if chunk >= len(metas) {
				// Published capacity can precede the metadata by a chunk;
				// such a chunk cannot hold versioned rows yet (the first
				// Note into it needs a commit that postdates the metadata).
				any = false
				segEnd = (chunk + 1) * cr
			} else {
				rel := row - chunk*cr
				blk := rel / mvcc.BlockRows
				l, h, a := metas[chunk].Range(blk)
				vlo, vhi, any = l+chunk*cr, h+chunk*cr, a
				segEnd = chunk*cr + (blk+1)*mvcc.BlockRows
				if end := (chunk + 1) * cr; segEnd > end {
					segEnd = end
				}
			}
		}
		if any && row >= vlo && row <= vhi {
			out[k] = s.gen.value(c, cs, row)
		} else {
			out[k] = cs.data.Get(row)
		}
	}
}

// indexProbeDen gates index probes on selectivity: a probe whose
// liveness-sampled entry estimate (at the snapshot's timestamp)
// exceeds 1/indexProbeDen of the scan bound is declined
// — reading that many rows point-wise loses to the sequential block
// scan, and the zone maps still help the scan.
const indexProbeDen = 4

// ProbeIndex answers a single-column range probe from the column's
// secondary index, when one exists and agrees to serve it (see
// index.Index.ProbeRange): entries carry the same birth/death commit
// timestamps as the visibility arrays, so probing at the generation's
// timestamp yields exactly the rows a scan would surface. Called after
// Prepare (the scan bound gates selectivity); snapshots pinned below
// the index's build floor fall back to the scan.
func (s *snapTable) ProbeIndex(ci int, lo, hi int64) ([]int64, bool) {
	ix := s.tab.cols[ci].idx.Load()
	if ix == nil || !ix.Valid(s.gen.ts) {
		return nil, false
	}
	est, ok := ix.EstimateRange(lo, hi, s.gen.ts)
	if !ok || est*indexProbeDen > s.bound {
		return nil, false
	}
	rows, ok := ix.ProbeRange(lo, hi, s.gen.ts)
	if !ok {
		return nil, false
	}
	out := make([]int64, 0, len(rows))
	for _, r := range rows {
		if r < s.bound {
			out = append(out, int64(r))
		}
	}
	return out, true
}

// ReadRows resolves the probed rows' values through the same
// snapshot-resolution path ReadBlock uses; the rows were
// visibility-filtered by the probe itself.
func (s *snapTable) ReadRows(rows []int64, cols []int, out [][]int64) error {
	for i, ci := range cols {
		s.fillColumn(ci, rows, out[i])
	}
	return nil
}

var (
	_ query.Table        = (*snapTable)(nil)
	_ query.IndexedTable = (*snapTable)(nil)
)
