package ankerdb

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ankerdb/internal/index"
	"ankerdb/internal/mvcc"
	"ankerdb/internal/storage"
	"ankerdb/internal/telemetry"
	"ankerdb/internal/wal"
)

// Durability glue between the engine and internal/wal: redo-record
// conversion for the commit pipeline, snapshot-driven checkpointing
// (manual and scheduler-driven), durable bulk loads, and Open-time
// crash recovery.

// tableRecord converts a schema into its schema-log form, including
// declared secondary-index kinds (a trailing extension old logs lack).
func tableRecord(schema Schema, rows int) wal.TableRecord {
	rec := wal.TableRecord{Name: schema.Table, Rows: rows}
	for _, c := range schema.Columns {
		rec.Columns = append(rec.Columns, wal.ColumnDef{Name: c.Name, Type: uint8(c.Type), Index: uint8(c.Index)})
	}
	return rec
}

// wrecIndexDDL converts an online CreateIndex/DropIndex into its
// schema-log form.
func wrecIndexDDL(tab, col string, kind IndexKind, drop bool) wal.IndexDDLRecord {
	return wal.IndexDDLRecord{Table: tab, Column: col, Kind: uint8(kind), Drop: drop}
}

// redoRecord converts a committed transaction's record into its WAL
// form. VARCHAR writes carry the decoded string so replay can re-seed
// the dictionary: a bare code would only be meaningful against the
// exact dictionary state of the crashed process. Row ops ride in the
// same record (the kind-3 layout), so one frame carries the whole
// transaction. It runs on the commit hot path under the shard lock, so
// the table list is locked once for the whole record, not per write.
func (db *DB) redoRecord(rec mvcc.CommitRecord) wal.CommitRecord {
	out := wal.CommitRecord{TS: rec.TS, Writes: make([]wal.RedoWrite, 0, len(rec.Writes))}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, e := range rec.Writes {
		w := wal.RedoWrite{Table: e.Col.Table, Col: e.Col.Col, Row: e.Row, Val: e.New}
		if c := db.tabList[e.Col.Table].cols[e.Col.Col]; c.def.Type == Varchar {
			w.Str, w.HasStr = c.dict.Decode(e.New), true
		}
		out.Writes = append(out.Writes, w)
	}
	for _, op := range rec.Ops {
		out.Ops = append(out.Ops, wal.RowOp{Table: op.Table, Row: op.Row, Del: op.Del})
	}
	return out
}

// Checkpoint writes a consistent on-disk checkpoint and truncates the
// write-ahead log below its timestamp. It is the paper's snapshot-
// consumer pattern applied to durability: the checkpointer pins an
// OLAP snapshot generation (through whichever snapshot strategy the
// database runs) and streams the snapshotted column regions plus
// dictionaries to disk, so OLTP writers are never stalled — they only
// ever see the usual brief shard-lock hold of a first-touch column
// snapshot. Rows newer than the checkpoint timestamp may be captured;
// replay's newer-wins rule makes that harmless, because their WAL
// records survive truncation.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return ErrNoDurability
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrClosed
	}
	db.mu.RUnlock()

	start := time.Now()
	// A fresh generation, not the current one: a column snapshot cached
	// in the current generation by an earlier OLAP pin could predate a
	// bulk load, and checkpointing it would persist pre-load data while
	// the truncation below reclaims the load's (timestamp-less) records.
	// Read side of the re-bootstrap gate (DB.olapGate): the pinned
	// generation must not span a replica's in-place re-bootstrap, which
	// fast-forwards the captured arrays under it.
	db.olapGate.RLock()
	defer db.olapGate.RUnlock()
	g := db.snaps.acquireFresh()
	defer db.snaps.release(g)
	// Capture the table list only after the generation's timestamp is
	// pinned: any table created from here on can only receive commit
	// timestamps above it, so its rows are fully covered by the WAL
	// records the truncation below g.ts retains. Dropped slots are
	// skipped — their drop record survives in the schema log and replay
	// re-drops whatever state an older checkpoint would have carried.
	db.mu.RLock()
	tabs := make([]*table, 0, len(db.tabList))
	for _, t := range db.tabList {
		if !t.dropped.Load() {
			tabs = append(tabs, t)
		}
	}
	db.mu.RUnlock()

	err := db.wal.WriteCheckpoint(g.ts, len(tabs), func(w *wal.CheckpointWriter) error {
		for _, t := range tabs {
			schema := t.st.Schema()
			// Capture every column and the visibility arrays before
			// writing anything: the table can grow chunk-wise while the
			// checkpoint streams, so the table section's row count is
			// the minimum captured capacity — rows born above it carry
			// commit timestamps past the checkpoint's and replay from
			// the retained WAL records.
			snaps := make([]*colSnap, len(t.cols))
			for i, c := range t.cols {
				cs, err := g.colSnap(c)
				if err != nil {
					return err
				}
				snaps[i] = cs
			}
			vs, err := g.visSnap(t)
			if err != nil {
				return err
			}
			rows := vs.rows()
			for _, cs := range snaps {
				if cs.rows() < rows {
					rows = cs.rows()
				}
			}
			if err := w.BeginTable(t.idx, schema.Table, rows, len(t.cols)); err != nil {
				return err
			}
			for _, cs := range snaps {
				if err := storage.WriteWords(w, rows, cs.data.GetU); err != nil {
					return err
				}
				if err := storage.WriteWords(w, rows, cs.wts.GetU); err != nil {
					return err
				}
			}
			if err := storage.WriteWords(w, rows, vs.data.GetU); err != nil {
				return err
			}
			if err := storage.WriteWords(w, rows, vs.wts.GetU); err != nil {
				return err
			}
			// The dictionary is read only now, after the last column
			// capture: being append-only it is a superset of every code
			// the captured words can hold, even with VARCHAR commits
			// racing the checkpoint.
			if err := w.FinishTable(t.st.Dict().Strings()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Reset the scheduler's growth baselines: thresholds measure WAL
	// growth since THIS checkpoint from now on. Written under ckptMu, so
	// a manual checkpoint also pushes the automatic one out.
	db.ckptBaseBytes.Store(db.wal.Bytes())
	db.ckptBaseRecords.Store(db.wal.Records())
	db.st.checkpoints.Add(1)
	elapsed := time.Since(start)
	db.tel.checkpoint.Observe(elapsed)
	db.tel.rec.Record(telemetry.EvCheckpoint, int64(g.ts), 0, elapsed.Nanoseconds())
	return nil
}

// autoCkptDue reports whether WAL growth since the last checkpoint has
// crossed a configured auto-checkpoint threshold. Reads only atomics:
// it runs on the commit path (to decide whether to kick the scheduler)
// and in the scheduler itself.
func (db *DB) autoCkptDue() bool {
	if db.autoCkptBytes > 0 && db.wal.Bytes()-db.ckptBaseBytes.Load() >= db.autoCkptBytes {
		return true
	}
	if db.autoCkptRecords > 0 && db.wal.Records()-db.ckptBaseRecords.Load() >= db.autoCkptRecords {
		return true
	}
	return false
}

// kickAutoCkpt wakes the checkpoint scheduler if a growth threshold is
// crossed. One buffered slot: checkpointing is idempotent, kicks
// coalesce. Called after WAL appends (batch leaders and bulk loads),
// outside any shard lock hold that matters — it is one atomic
// comparison plus a non-blocking send.
func (db *DB) kickAutoCkpt() {
	if db.ckptKick == nil || !db.autoCkptDue() {
		return
	}
	select {
	case db.ckptKick <- struct{}{}:
	default: // a kick is already pending
	}
}

// autoCheckpointer is the background checkpoint scheduler (started by
// Open when WithAutoCheckpoint / WithAutoCheckpointInterval configure a
// trigger): it checkpoints when kicked past a WAL-growth threshold, and
// — with an interval configured — whenever the timer finds new records
// appended since the last checkpoint. All runs go through Checkpoint()
// and its mutex, so scheduler, manual callers, and Close never overlap;
// Close waits for the scheduler to drain before closing the log.
func (db *DB) autoCheckpointer(interval time.Duration) {
	defer close(db.ckptDone)
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-db.ckptQuit:
			return
		case <-db.ckptKick:
			if !db.autoCkptDue() {
				continue // a racing manual checkpoint already covered it
			}
		case <-tick:
			if db.wal.Records() == db.ckptBaseRecords.Load() {
				continue // nothing new since the last checkpoint
			}
		}
		switch err := db.Checkpoint(); {
		case err == nil:
			db.st.autoCheckpoints.Add(1)
		case errors.Is(err, ErrClosed), errors.Is(err, wal.ErrLogClosed):
			return // shutting down
		default:
			// Poisoned log or I/O failure: nothing to do here — commits
			// are already failing loudly, and retrying on the next
			// trigger is free.
		}
	}
}

// RecoveryReport summarizes what Open-time crash recovery did. All
// fields are zero for a database opened without WithDurability or onto
// an empty directory.
type RecoveryReport struct {
	// ReplayedTxns is the number of WAL commit records re-applied
	// (records fully covered by the checkpoint are not counted).
	ReplayedTxns uint64
	// ReplayedLoads is the number of bulk-load chunk records re-applied.
	ReplayedLoads uint64
	// TailBytes is the total number of torn-tail bytes cut off across
	// all replayed log files: bytes past the last intact frame of a
	// segment, the residue of a crash mid-append. A torn tail is
	// expected, not corruption — the commits it held never reported
	// durable.
	TailBytes uint64
	// RebuiltIndexes is the number of secondary indexes rebuilt from
	// the recovered arrays (index entries are never logged; existence
	// replays from the schema log, contents rebuild at Open).
	RebuiltIndexes int
}

// RecoveryReport reports what crash recovery did when this database
// was opened. The report is written once during Open, before the DB is
// shared, so it is safe to read at any time.
func (db *DB) RecoveryReport() RecoveryReport {
	r := RecoveryReport{
		ReplayedTxns:   db.recoveredTxns,
		ReplayedLoads:  db.recoveredLoads,
		RebuiltIndexes: db.recoveredIndexes,
	}
	if db.wal != nil {
		r.TailBytes = db.wal.TailBytes()
	}
	return r
}

// loadChunkRows bounds one bulk-load WAL record: large loads become a
// series of window records, so replay (and the torn-tail blast radius)
// stays O(chunk) however big the load is.
const loadChunkRows = 8192

// logLoad appends a bulk load's chunk records (one of vals/strs is
// set) to the column's shard WAL: one write per chunk, one fsync for
// the whole load. Called with ckptMu held — see loadColumn.
func (db *DB) logLoad(c *column, vals []int64, strs []string) error {
	n := len(vals)
	if strs != nil {
		n = len(strs)
	}
	recs := make([]wal.LoadRecord, 0, (n+loadChunkRows-1)/loadChunkRows)
	for start := 0; start < n; start += loadChunkRows {
		end := start + loadChunkRows
		if end > n {
			end = n
		}
		rec := wal.LoadRecord{Table: c.id.Table, Col: c.id.Col, Start: start}
		if strs != nil {
			rec.Strs, rec.HasStrs = strs[start:end], true
		} else {
			rec.Vals = vals[start:end]
		}
		recs = append(recs, rec)
	}
	return db.wal.AppendLoads(db.shardOf(c.id), recs)
}

// maxRecoveredRow bounds how far replay will grow a table for a
// record's row index: a CRC-valid record never legitimately references
// rows this far above anything the engine can allocate, so larger
// indexes are treated like unknown addresses (the record is skipped)
// instead of ballooning recovery memory. (1<<30, not 1<<31: the bound
// must stay an int on 32-bit platforms.)
const maxRecoveredRow = 1 << 30

// visKey / visOp buffer replayed row ops per (table, row): segments
// replay shard by shard in arbitrary cross-shard order, so births and
// deaths of one row are collected first and applied in timestamp order
// afterwards — making row-op replay as order-insensitive as the
// newer-wins rule makes writes.
type visKey struct{ table, row int }

type visOp struct {
	ts  uint64
	del bool
}

// recover rebuilds engine state from the durability directory: replay
// the schema log (recreating every table in original index order),
// load the newest checkpoint into the column and visibility arrays
// (growing tables to the checkpointed capacity), then re-apply WAL
// commit records. Replay is idempotent by commit timestamp — a write
// lands only if its record is newer than the row's current write
// timestamp, and row ops are buffered and applied in timestamp order
// per row — so record order across shard logs is irrelevant and
// checkpoint-covered records are naturally skipped. Finally the oracle
// is re-seeded from the newest durable commit timestamp and every
// table's row allocator (high-water mark + free list) is rebuilt from
// the recovered visibility arrays.
func (db *DB) recover() error {
	db.recovering = true
	defer func() { db.recovering = false }()

	// Table-DDL markers (drop/truncate) are collected in log order and
	// applied only after the checkpoint and WAL are replayed: each
	// marker's timestamp then decides exactly which recovered rows it
	// covers, making replay correct whether the surviving checkpoint
	// predates or postdates the DDL.
	type pendingDDL struct {
		slot int
		op   uint8
		ts   uint64
	}
	var ddl []pendingDDL
	if err := db.wal.ReplaySchemaDDL(func(tr wal.TableRecord) error {
		schema := Schema{Table: tr.Name}
		for _, c := range tr.Columns {
			schema.Columns = append(schema.Columns, ColumnDef{Name: c.Name, Type: ColumnType(c.Type), Index: IndexKind(c.Index)})
		}
		return db.CreateTable(schema, tr.Rows)
	}, func(ir wal.IndexDDLRecord) error {
		// Online index DDL, replayed in log order over the declared
		// state. Only existence is tracked here (empty placeholders);
		// contents are rebuilt below once the arrays are recovered.
		// Records that do not resolve against the durable schema prefix
		// are skipped like out-of-prefix commit records.
		t := db.tables[ir.Table]
		if t == nil {
			return nil
		}
		i := t.st.Schema().ColumnIndex(ir.Column)
		if i < 0 {
			return nil
		}
		if ir.Drop {
			t.cols[i].idx.Store(nil)
		} else if kind := IndexKind(ir.Kind); kind.Valid() {
			t.cols[i].idx.Store(index.New(kind, 0))
		}
		return nil
	}, func(dr wal.TableDDLRecord) error {
		t := db.tables[dr.Name]
		if t == nil {
			return nil // out-of-prefix, skipped like index DDL
		}
		ddl = append(ddl, pendingDDL{slot: t.idx, op: dr.Op, ts: dr.TS})
		if dr.Op == wal.TableDDLDrop {
			// Release the name now so a later re-creation record in the
			// log replays against a free name; the slot stays occupied.
			delete(db.tables, dr.Name)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("ankerdb: recovery: schema log: %w", err)
	}

	ckptTS, ckptMaxWTS, err := db.loadCheckpoint()
	if err != nil {
		return fmt.Errorf("ankerdb: recovery: %w", err)
	}

	var replayed, loads uint64
	maxTS := ckptTS
	if ckptMaxWTS > maxTS {
		// The checkpoint may have captured rows committed after its
		// timestamp whose WAL records were then lost to a crash under
		// SyncNone. Seeding at the max captured write timestamp keeps
		// those rows' timestamps in the past, so re-issued commit
		// timestamps can never collide with a recovered row's.
		maxTS = ckptMaxWTS
	}
	visOps := map[visKey][]visOp{}
	cols := make([]*column, 0, 8)
	if err := db.wal.ReplayCommits(func(rec wal.LoadRecord) error {
		// Bulk-load chunks are the state at time zero: a chunk value
		// lands only on rows no commit has ever stamped, so replay is
		// idempotent and insensitive to ordering against commit records
		// — any committed write (timestamp > 0, whether recovered from
		// the checkpoint or replayed) wins over a load. Chunks beyond
		// the durable schema prefix are skipped like commit records.
		c, ok := db.recoveredLoadColumn(rec)
		if !ok {
			return nil
		}
		if rec.HasStrs {
			for i, s := range rec.Strs {
				if row := rec.Start + i; c.wts.GetU(row) == 0 {
					c.data.Set(row, c.dict.Encode(s))
				}
			}
		} else {
			for i, v := range rec.Vals {
				if row := rec.Start + i; c.wts.GetU(row) == 0 {
					c.data.Set(row, v)
				}
			}
		}
		loads++
		return nil
	}, func(rec wal.CommitRecord) error {
		if rec.TS > maxTS {
			maxTS = rec.TS
		}
		if rec.TS <= ckptTS {
			return nil // fully covered by the checkpoint
		}
		// Resolve every address before applying anything: a record that
		// references state beyond the durable schema prefix (possible
		// only under SyncNone, when OS writeback persisted a segment
		// page but not the schema log) is skipped whole — like a torn
		// tail, and without breaking per-transaction atomicity. It must
		// not fail recovery: that would make the directory permanently
		// unopenable over a policy that only promises to lose recent
		// commits. Rows above the recovered capacity are not errors —
		// inserts put them there — so tables grow chunk-wise on demand.
		cols = cols[:0]
		for _, w := range rec.Writes {
			c, ok := db.recoveredColumn(w)
			if !ok {
				return nil
			}
			cols = append(cols, c)
		}
		for _, op := range rec.Ops {
			if op.Table < 0 || op.Table >= len(db.tabList) {
				return nil
			}
			if op.Row < 0 || op.Row >= maxRecoveredRow {
				return nil
			}
		}
		for _, op := range rec.Ops {
			t := db.tabList[op.Table]
			if err := db.growRecovered(t, op.Row); err != nil {
				return err
			}
		}
		for i, w := range rec.Writes {
			c := cols[i]
			if rec.TS <= c.wts.GetU(w.Row) {
				continue // a newer write already owns the row
			}
			val := w.Val
			if w.HasStr {
				val = c.dict.Encode(w.Str)
			}
			c.wts.SetU(w.Row, rec.TS)
			c.data.Set(w.Row, val)
		}
		for _, op := range rec.Ops {
			k := visKey{table: op.Table, row: op.Row}
			visOps[k] = append(visOps[k], visOp{ts: rec.TS, del: op.Del})
		}
		replayed++
		return nil
	}); err != nil {
		return fmt.Errorf("ankerdb: recovery: %w", err)
	}

	db.applyVisOps(visOps)
	// Re-apply table DDL in log order over the fully replayed arrays.
	// The oracle seed must clear every DDL stamp too: otherwise a
	// commit issued after recovery could land at or below a truncate's
	// timestamp and be killed by the NEXT recovery's replay of it.
	for _, d := range ddl {
		if d.ts > maxTS {
			maxTS = d.ts
		}
		t := db.tabList[d.slot]
		switch d.op {
		case wal.TableDDLTruncate:
			t.visMutated.Store(true)
			t.truncated = true
			truncateRows(t, d.ts)
		case wal.TableDDLDrop:
			t.dropTS = d.ts
			t.dropped.Store(true)
			db.freeDropped(t)
		}
	}
	db.rebuildRowState()
	// Replay wrote straight into the arrays without maintaining zone
	// maps; rebuild them exactly while recovery is still single-threaded
	// (floor 0: chains are empty after recovery, nothing is reclaimed
	// that the arrays don't already show).
	db.recomputeZones(0)
	// Secondary indexes rebuild from the same recovered arrays — the
	// durable prefix, torn tails already cut — so post-recovery probes
	// match scans at every timestamp (index_db.go documents the
	// rebuild-vs-log trade).
	db.rebuildIndexes()
	db.oracle.Seed(maxTS)
	db.recoveredTxns = replayed
	db.recoveredLoads = loads
	return nil
}

// applyVisOps replays the buffered row ops of every (table, row) in
// commit-timestamp order: each insert resets the death stamp and
// births the row at its timestamp, each delete kills it — so the final
// (birth, death) pair reflects the newest durable incarnation
// regardless of the order segments were streamed in. Ops at or below
// the newest stamp the checkpoint already recovered for the row are
// skipped — the checkpointed pair reflects their effect (or a newer
// one) — mirroring the newer-wins idempotence rule write replay
// applies per cell, so replaying a record any number of times (or one
// that survived truncation in a foreign shard series) never regresses
// recovered state.
func (db *DB) applyVisOps(visOps map[visKey][]visOp) {
	for k, ops := range visOps {
		sort.Slice(ops, func(i, j int) bool { return ops[i].ts < ops[j].ts })
		t := db.tabList[k.table]
		birth, death := t.st.Birth(), t.st.Death()
		floor := death.GetU(k.row)
		if b := birth.GetU(k.row); b != storage.NeverTS && b > floor {
			floor = b
		}
		for _, op := range ops {
			if op.ts <= floor {
				continue
			}
			if op.del {
				death.SetU(k.row, op.ts)
			} else {
				death.SetU(k.row, 0)
				birth.SetU(k.row, op.ts)
			}
		}
	}
}

// rebuildRowState recomputes every table's row allocator from the
// recovered visibility arrays: the high-water mark covers every slot
// ever used, slots whose reclaimed state a checkpoint persisted
// (birth NeverTS with a death stamp) return to the free list, and
// visMutated reflects whether any row was ever transactionally born
// or killed.
func (db *DB) rebuildRowState() {
	for _, t := range db.tabList {
		if t.dropped.Load() {
			continue
		}
		birth, death := t.st.Birth(), t.st.Death()
		next := t.st.InitialRows()
		var free []int
		var live int64
		mutated := t.truncated
		for row, capacity := 0, t.st.Capacity(); row < capacity; row++ {
			b, d := birth.GetU(row), death.GetU(row)
			switch {
			case b != storage.NeverTS:
				if row >= next {
					next = row + 1
				}
				if d == 0 {
					live++
				}
				if b != 0 || d != 0 {
					mutated = true
				}
			case d != 0:
				// Reclaimed by a pre-crash Vacuum and persisted by a
				// checkpoint: the slot is free for reuse.
				free = append(free, row)
				if row >= next {
					next = row + 1
				}
				mutated = true
			}
		}
		t.next, t.free = next, free
		if next > t.st.InitialRows() {
			mutated = true
		}
		t.visMutated.Store(mutated)
		// The recovered arrays already reflect every durable row op and
		// every reachable read timestamp sits above them, so the whole
		// visibility history collapses into the log's base.
		t.visLogReset(live - int64(t.st.InitialRows()))
	}
}

// growRecovered grows t (and its per-chunk scan metadata) to cover
// row, chunk-wise. Recovery is single-threaded, but the allocator
// mutex also orders the metadata growth against nothing for free.
func (db *DB) growRecovered(t *table, row int) error {
	if row < t.st.Capacity() {
		return nil
	}
	t.amu.Lock()
	defer t.amu.Unlock()
	if err := t.st.EnsureCapacity(row + 1); err != nil {
		return err
	}
	t.growMetas()
	return nil
}

// recoveredColumn resolves a redo write's column against the
// recovered schema, growing the table when the write lands above its
// recovered capacity (rows born by inserts); ok is false for
// addresses the durable schema prefix does not cover.
func (db *DB) recoveredColumn(w wal.RedoWrite) (*column, bool) {
	if w.Table < 0 || w.Table >= len(db.tabList) {
		return nil, false
	}
	t := db.tabList[w.Table]
	if w.Col < 0 || w.Col >= len(t.cols) {
		return nil, false
	}
	if w.Row < 0 || w.Row >= maxRecoveredRow {
		return nil, false
	}
	if err := db.growRecovered(t, w.Row); err != nil {
		return nil, false
	}
	return t.cols[w.Col], true
}

// recoveredLoadColumn resolves a bulk-load chunk's column and validates
// its window and value type against the recovered schema; ok is false
// when the durable schema prefix does not cover it.
func (db *DB) recoveredLoadColumn(r wal.LoadRecord) (*column, bool) {
	if r.Table < 0 || r.Table >= len(db.tabList) {
		return nil, false
	}
	t := db.tabList[r.Table]
	if r.Col < 0 || r.Col >= len(t.cols) {
		return nil, false
	}
	c := t.cols[r.Col]
	n := len(r.Vals)
	if r.HasStrs {
		n = len(r.Strs)
	}
	if r.Start < 0 || n > c.data.Rows()-r.Start {
		return nil, false
	}
	if r.HasStrs != (c.def.Type == Varchar) {
		return nil, false
	}
	return c, true
}

// loadCheckpoint streams the newest checkpoint, if any, into the
// recreated tables: column bodies arrive as fixed-size word windows
// (storage.ReadWordsRegion) stored in place through page-wise bulk
// writes, so restart memory stays O(chunk) however large the columns
// are. Tables grow to the checkpointed capacity first — a checkpoint
// taken after inserts covers more rows than the schema log's initial
// count — and the visibility (birth/death) arrays stream back after
// the columns. It returns the checkpoint timestamp and the maximum
// commit timestamp of any loaded row (write, birth or death stamps;
// both 0 without a checkpoint) — the latter can exceed the former when
// the checkpoint captured rows committed after its timestamp, and the
// oracle must be seeded above it.
func (db *DB) loadCheckpoint() (uint64, uint64, error) {
	var maxWTS uint64
	noteTS := func(v uint64) {
		if v != storage.NeverTS && v > maxWTS {
			maxWTS = v
		}
	}
	ts, ok, err := db.wal.LoadCheckpoint(func(_ uint64, ntables int, r *wal.CheckpointReader) error {
		for i := 0; i < ntables; i++ {
			slot, name, rows, cols, err := r.TableHeader()
			if err != nil {
				return err
			}
			// Sections address tables by schema-log slot, not name: after
			// a drop and same-name re-creation both incarnations replayed
			// from the schema log, and a pre-drop checkpoint's section
			// must load into the dropped incarnation's slot (the pending
			// drop record then clears it), never the new table's.
			if slot < 0 || slot >= len(db.tabList) {
				return fmt.Errorf("checkpointed table %q claims slot %d of %d", name, slot, len(db.tabList))
			}
			t := db.tabList[slot]
			if got := t.st.Schema().Table; got != name {
				return fmt.Errorf("checkpointed table %q at slot %d, schema log says %q", name, slot, got)
			}
			if len(t.cols) != cols {
				return fmt.Errorf("checkpointed table %q has %d columns, schema log says %d",
					name, cols, len(t.cols))
			}
			if rows < 0 || rows > maxRecoveredRow {
				return fmt.Errorf("checkpointed table %q claims %d rows", name, rows)
			}
			if err := db.growRecovered(t, rows-1); err != nil {
				return err
			}
			for _, c := range t.cols {
				if err := storage.ReadWordsRegion(r, rows, c.data.FillWindow); err != nil {
					return err
				}
				if err := storage.ReadWordsRegion(r, rows, func(start int, words []uint64) {
					for _, v := range words {
						noteTS(v)
					}
					c.wts.FillWindow(start, words)
				}); err != nil {
					return err
				}
			}
			birth, death := t.st.Birth(), t.st.Death()
			if err := storage.ReadWordsRegion(r, rows, func(start int, words []uint64) {
				for _, v := range words {
					noteTS(v) // NeverTS (unborn) is excluded from the seed
				}
				birth.FillWindow(start, words)
			}); err != nil {
				return err
			}
			if err := storage.ReadWordsRegion(r, rows, func(start int, words []uint64) {
				for _, v := range words {
					noteTS(v)
				}
				death.FillWindow(start, words)
			}); err != nil {
				return err
			}
			dict, err := r.TableDict()
			if err != nil {
				return err
			}
			t.st.Dict().Load(dict)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, 0, nil
	}
	return ts, maxWTS, nil
}
