package ankerdb

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ankerdb/internal/index"
	"ankerdb/internal/mvcc"
	"ankerdb/internal/repl"
	"ankerdb/internal/snapshot"
	"ankerdb/internal/storage"
	"ankerdb/internal/telemetry"
	"ankerdb/internal/vmem"
	"ankerdb/internal/wal"
)

// vacuumEvery is how many commits pass between automatic version-chain
// garbage collections run inside the commit path. RecentList pruning is
// cheap and runs far more often (every recentPruneEvery commits).
const (
	vacuumEvery      = 4096
	recentPruneEvery = 64
)

// DB is the engine facade: one simulated process hosting columnar
// tables, an MVCC commit pipeline for OLTP transactions, and a snapshot
// lifecycle manager serving OLAP transactions through the configured
// snapshot strategy. All methods are safe for concurrent use.
type DB struct {
	proc  *vmem.Process
	strat snapshot.Strategy
	alloc storage.ColumnAlloc

	oracle *mvcc.Oracle
	activ  *mvcc.ActiveSet
	snaps  *snapManager

	// olapGate serialises snapshot-generation pins against a replica's
	// in-place re-bootstrap. Every pin (OLAP Begin, Checkpoint, serving
	// a bootstrap snapshot) holds the read side for the pin's lifetime;
	// the re-bootstrap holds the write side, draining pinned readers
	// and blocking new pins while applySnapTable fast-forwards the
	// arrays (no version-chain pushes) and finishBootstrap resets the
	// visibility logs — either of which breaks a generation pinned
	// across it. Uncontended outside replica reconnects.
	olapGate sync.RWMutex

	// shards partition commit processing by column (see commit.go): the
	// paper's partially sequential commit phase (Section 5.7) becomes
	// per-shard, so disjoint-footprint transactions commit in parallel.
	// With one shard this degenerates to the paper's fully serialized
	// commit phase.
	shards []*commitShard

	// wal is the durability subsystem (nil without WithDurability):
	// batch leaders redo-log whole commit batches under the shard
	// commit lock, and Checkpoint/recovery live in durability.go.
	wal        *wal.Log
	ckptMu     sync.Mutex // one checkpoint (or durable bulk load) at a time
	recovering bool       // Open-time replay: skip re-logging DDL
	// recoveredTxns/recoveredLoads are the numbers of WAL commit and
	// bulk-load records replayed by Open; written once before the DB is
	// shared, read by Stats.
	recoveredTxns    uint64
	recoveredLoads   uint64
	recoveredIndexes int

	// Automatic checkpoint scheduling (channels nil when disabled):
	// kickAutoCkpt wakes the scheduler past a WAL-growth threshold,
	// closing ckptQuit stops it, and Close waits on ckptDone so the log
	// outlives any in-flight scheduled checkpoint. The baselines are the
	// WAL counters at the last completed checkpoint.
	autoCkptBytes   uint64
	autoCkptRecords uint64
	ckptBaseBytes   atomic.Uint64
	ckptBaseRecords atomic.Uint64
	ckptKick        chan struct{}
	ckptQuit        chan struct{}
	ckptDone        chan struct{}

	// groupMaxWait is how long a group-commit leader waits for
	// followers before processing its batch (WithGroupCommitMaxWait).
	groupMaxWait time.Duration

	// gcKick wakes the watermark-driven recent-list pruner (one
	// buffered slot: pruning is idempotent, kicks may coalesce);
	// closing gcQuit stops it.
	gcKick chan struct{}
	gcQuit chan struct{}

	mu      sync.RWMutex
	tables  map[string]*table
	tabList []*table
	closed  bool

	txnIDs atomic.Uint64
	st     dbCounters

	// tel is the telemetry substrate (telemetry.go): phase-latency
	// histograms, the flight recorder, and the slow-query log. Always
	// initialised; the opt-in metrics server fields are nil without
	// WithMetricsServer.
	tel        dbTelemetry
	metricsLn  net.Listener
	metricsSrv *http.Server

	// Replication & serving tier (replication.go / serve.go). All nil /
	// zero without WithServeAddr / WithReplicaOf. promoted flips once on
	// Promote and releases the replica write guard.
	pub      *repl.Publisher
	srv      *Server
	rep      *replicaState
	promoted atomic.Bool
	peerMu   sync.Mutex
	peers    map[*replPeer]struct{}
}

type dbCounters struct {
	commits         atomic.Uint64 // counted in maintainShards, drives periodic vacuum
	completions     atomic.Uint64 // counted in the complete hook, drives recent-list pruning
	emptyCommits    atomic.Uint64
	aborts          atomic.Uint64
	conflicts       atomic.Uint64
	oltpBegun       atomic.Uint64
	olapBegun       atomic.Uint64
	vacuums         atomic.Uint64
	versionsGCed    atomic.Int64
	rowInserts      atomic.Uint64
	rowDeletes      atomic.Uint64
	rowsReclaimed   atomic.Uint64
	commitBatches   atomic.Uint64
	crossShard      atomic.Uint64
	checkpoints     atomic.Uint64
	autoCheckpoints atomic.Uint64
	groupSizes      [8]atomic.Uint64
	queriesRun      atomic.Uint64
	zoneSkipped     atomic.Uint64 // scan blocks pruned by zone maps
	zoneScanned     atomic.Uint64 // scan blocks read by the query engine
	indexProbes     atomic.Uint64 // secondary-index probes served
	indexQueries    atomic.Uint64 // engine queries routed through an index probe
}

// table pairs the storage-layer arrays with the per-column MVCC state
// the commit pipeline and snapshot readers share, plus the row
// allocator that makes the table growable.
type table struct {
	idx  int
	st   *storage.Table
	cols []*column

	// Row slot allocator: amu guards next (the high-water mark — every
	// row ever used is below it) and free (slots whose dead incarnation
	// Vacuum reclaimed, reused by Insert before the table grows).
	amu  sync.Mutex
	next int
	free []int

	// visMutated is set once any insert or delete has ever been
	// installed (or recovered). While false, every row below
	// InitialRows is alive and nothing above is, so scans skip the
	// per-row visibility checks entirely and OLAP generations never
	// capture the visibility arrays — the exact pre-growable fast path.
	// It only ever transitions false -> true, and always before the
	// mutating commit's timestamp completes, so a reader that finds it
	// false can have no visible row op at its read timestamp.
	visMutated atomic.Bool

	// visLog is the table's visibility delta log (vislog.go): the
	// cumulative insert/delete history that answers COUNT at any
	// reachable timestamp in O(log n).
	visLog atomic.Pointer[visLogState]

	// Table-DDL barrier state (ddl.go). ddlEpoch is bumped by DropTable
	// and Truncate under every shard commit lock; transactions record
	// it when they first stage against the table and the commit path
	// aborts any whose epoch moved — the guard that keeps a commit from
	// installing into a dropped table's unmapped memory or resurrecting
	// truncated rows through the index. dropped marks a tombstoned
	// tabList slot: the name is released for re-creation but the slot
	// index stays occupied, because WAL records and ColumnIDs address
	// tables by slot. dropTS and freed are written and read only under
	// every shard commit lock (or single-threaded recovery).
	ddlEpoch atomic.Uint64
	dropped  atomic.Bool
	dropTS   uint64
	freed    bool

	// truncated is set by recovery when it replays a truncate marker:
	// the killed rows (birth back to NeverTS) are indistinguishable
	// from never-born ones, so rebuildRowState must be told not to
	// infer the unmutated initial-rows fast path — which would
	// resurrect exactly the rows the truncation discarded.
	truncated bool
}

// reserve hands out an exclusive row slot for an insert: a reclaimed
// free slot if one exists, else the next slot above the high-water
// mark, growing the table's mapped capacity (and the per-chunk scan
// metadata of every column) chunk-wise when the mark passes it.
func (t *table) reserve() (int, error) {
	t.amu.Lock()
	defer t.amu.Unlock()
	if n := len(t.free); n > 0 {
		row := t.free[n-1]
		t.free = t.free[:n-1]
		return row, nil
	}
	row := t.next
	if row >= t.st.Capacity() {
		if err := t.st.EnsureCapacity(row + 1); err != nil {
			return 0, err
		}
		t.growMetas()
	}
	t.next++
	return row, nil
}

// release returns reserved-but-never-committed slots (aborted or
// conflicted inserts) to the free list; their birth timestamps are
// still NeverTS, so they were never visible.
func (t *table) release(rows []int) {
	t.amu.Lock()
	t.free = append(t.free, rows...)
	t.amu.Unlock()
}

// liveVisible reports whether row is visible at ts in the live
// visibility arrays: born at or before ts and not dead at or before
// ts. Reads are lock-free; the install order (values, then death
// reset, then birth last) and the reuse guard (rows are only reclaimed
// below the GC floor) make every interleaving resolve to the correct
// verdict for any registered reader timestamp.
func (t *table) liveVisible(row int, ts uint64) bool {
	if b := t.st.Birth().GetU(row); b > ts {
		return false // unborn (NeverTS) or born after ts
	}
	d := t.st.Death().GetU(row)
	return d == 0 || d > ts
}

// growMetas appends fresh per-chunk block metadata to every column
// until it covers the table's capacity. Chunk metadata is append-only
// and individual BlockMeta values never move, so concurrent Note calls
// (under commit shard locks) and lock-free scan reads stay safe across
// growth. Callers serialise growth (t.amu or recovery).
func (t *table) growMetas() {
	chunks := t.st.Capacity() / t.st.ChunkRows()
	for _, c := range t.cols {
		cur := *c.metas.Load()
		if len(cur) >= chunks {
			continue
		}
		next := make([]*mvcc.BlockMeta, len(cur), chunks)
		copy(next, cur)
		for len(next) < chunks {
			next = append(next, mvcc.NewBlockMeta(t.st.ChunkRows()))
		}
		c.metas.Store(&next)
	}
}

// column is one table column: its data and write-timestamp extents plus
// the version chains and per-chunk block metadata of displaced
// versions.
type column struct {
	id    mvcc.ColumnID
	def   ColumnDef
	tab   *table
	data  *storage.Extent
	wts   *storage.Extent
	chain *mvcc.ChainStore
	metas atomic.Pointer[[]*mvcc.BlockMeta] // one per capacity chunk
	dict  *storage.Dict

	// idx is the column's secondary index, nil when none: declared in
	// the schema, or built online by CreateIndex (index_db.go). Commit
	// installation maintains it under the owning shard's commit lock;
	// probes read it lock-free through the pointer.
	idx atomic.Pointer[index.Index]
}

// noteVersioned records that row now carries a version chain, in the
// chunk-grained scan metadata.
func (c *column) noteVersioned(row int) {
	cr := c.tab.st.ChunkRows()
	(*c.metas.Load())[row/cr].Note(row % cr)
}

// widen grows the zone map of row's block to cover v — called on every
// value install (commit.go). Widen-only keeps zones sound against
// concurrent lock-free readers and against deletes: a dead row's value
// may linger (pruning less effective, never wrong) until a vacuum
// recomputes the zone.
func (c *column) widen(row int, v int64) {
	cr := c.tab.st.ChunkRows()
	(*c.metas.Load())[row/cr].Widen(row%cr, v)
}

// loadZones installs zone maps for a bulk load of rows [0, len(vals)).
// A block the load covers fully gets the exact bounds of its loaded
// values — every visible row of it now holds a loaded value, so the
// initial zero zone may be replaced, which is what makes range
// predicates over freshly loaded sorted data prune. A partially
// covered tail block only widens: its remaining initial rows are
// visible with the zero fill, so 0 must stay in its zone.
func (c *column) loadZones(vals []int64) {
	cr := c.tab.st.ChunkRows()
	metas := *c.metas.Load()
	n := len(vals)
	for start := 0; start < n; {
		ci := start / cr
		rel := start - ci*cr
		blk := rel / mvcc.BlockRows
		end := ci*cr + (blk+1)*mvcc.BlockRows
		if ce := (ci + 1) * cr; end > ce {
			end = ce
		}
		if end <= n {
			lo, hi := vals[start], vals[start]
			for _, v := range vals[start+1 : end] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			metas[ci].SetZone(blk, lo, hi)
		} else {
			metas[ci].WidenRange(rel, vals[start:n])
			end = n
		}
		start = end
	}
}

// recomputeZones replaces every block's widen-only zone with the exact
// bounds over the values a reader could still resolve there: in-place
// values of rows visible at some reachable timestamp (skipping rows
// reclaimed or dead at or below floor — no current or future reader
// resolves those), plus every surviving version-chain value, which a
// pinned generation might still reach. The caller must exclude
// concurrent installs into the columns (Vacuum holds every shard
// commit lock; recovery is single-threaded).
func (c *column) recomputeZones(floor uint64) {
	tab := c.tab
	capacity := tab.st.Capacity()
	cr := tab.st.ChunkRows()
	metas := *c.metas.Load()
	type zacc struct {
		lo, hi int64
		set    bool
	}
	acc := make([][]zacc, len(metas))
	for ci := range metas {
		acc[ci] = make([]zacc, metas[ci].Blocks())
	}
	fold := func(row int, v int64) {
		a := &acc[row/cr][(row%cr)/mvcc.BlockRows]
		if !a.set {
			a.lo, a.hi, a.set = v, v, true
			return
		}
		if v < a.lo {
			a.lo = v
		}
		if v > a.hi {
			a.hi = v
		}
	}
	limit := len(metas) * cr
	if capacity < limit {
		limit = capacity
	}
	if !tab.visMutated.Load() {
		if ir := tab.st.InitialRows(); ir < limit {
			limit = ir
		}
		for row := 0; row < limit; row++ {
			fold(row, c.data.Get(row))
		}
	} else {
		birth, death := tab.st.Birth(), tab.st.Death()
		for row := 0; row < limit; row++ {
			if b := birth.GetU(row); b == storage.NeverTS {
				continue // unborn, reserved, or reclaimed
			}
			if d := death.GetU(row); d != 0 && d <= floor {
				continue // dead below every reachable timestamp
			}
			fold(row, c.data.Get(row))
		}
	}
	// Chain values fold in before publication: a pinned generation can
	// resolve them, so the new zone must cover them from the instant it
	// replaces the old one.
	c.chain.EachVersion(func(row int, val int64) {
		if row < limit {
			fold(row, val)
		}
	})
	for ci, meta := range metas {
		for blk := range acc[ci] {
			a := acc[ci][blk]
			if !a.set {
				a.lo, a.hi = 0, 0 // no resolvable value: zero-filled block
			}
			meta.SetZone(blk, a.lo, a.hi)
		}
	}
}

// recomputeZones recomputes every column's zone maps (see the column
// method). Vacuum calls it under all shard locks; recovery calls it
// single-threaded before the DB is shared.
func (db *DB) recomputeZones(floor uint64) {
	db.mu.RLock()
	tabs := append([]*table(nil), db.tabList...)
	db.mu.RUnlock()
	for _, t := range tabs {
		if t.dropped.Load() {
			continue
		}
		for _, c := range t.cols {
			c.recomputeZones(floor)
		}
	}
}

// Open creates a database configured by opts: purely in-memory by
// default, or durable under WithDurability — in which case a non-empty
// durability directory is recovered (schema log, newest checkpoint,
// then idempotent WAL replay) before Open returns.
func Open(opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	proc := vmem.NewProcess(vmem.WithPageSize(cfg.pageSize), vmem.WithCostModel(cfg.cost))
	strat, err := snapshot.New(string(cfg.strategy), proc)
	if err != nil {
		return nil, err
	}
	db := &DB{
		proc:            proc,
		strat:           strat,
		alloc:           columnAlloc(proc, strat),
		oracle:          &mvcc.Oracle{},
		activ:           mvcc.NewActiveSet(),
		shards:          newCommitShards(cfg.resolveCommitShards()),
		tables:          map[string]*table{},
		gcKick:          make(chan struct{}, 1),
		gcQuit:          make(chan struct{}),
		autoCkptBytes:   cfg.autoCkptBytes,
		autoCkptRecords: cfg.autoCkptRecords,
		groupMaxWait:    cfg.groupMaxWait,
	}
	db.tel.rec = telemetry.NewRecorder(traceRingSize)
	db.tel.slowThresh = cfg.slowQueryThreshold
	db.snaps = newSnapManager(db, cfg.refreshEvery, cfg.maxAge)
	db.oracle.SetCompleteHook(db.onComplete)
	if cfg.durDir != "" {
		wlog, err := wal.OpenFS(cfg.durDir, len(db.shards), cfg.syncPolicy, cfg.fs)
		if err != nil {
			return nil, err
		}
		// Sealed segments are the unit a future replication tier ships;
		// the flight recorder witnesses each seal as it happens.
		wlog.OnSeal = func(shard, records int, lastTS uint64) {
			db.tel.rec.Record(telemetry.EvWALSeal, int64(shard), int64(records), int64(lastTS))
		}
		db.wal = wlog
		start := time.Now()
		if err := db.recover(); err != nil {
			_ = wlog.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		db.tel.recovery.Observe(elapsed)
		db.tel.rec.Record(telemetry.EvRecovery,
			int64(db.recoveredTxns), int64(db.recoveredLoads), elapsed.Nanoseconds())
	}
	for _, s := range cfg.schemas {
		if db.wal != nil && db.hasTable(s.schema.Table) {
			// Recovered state already holds this table; keep it.
			continue
		}
		if err := db.CreateTable(s.schema, s.rows); err != nil {
			if db.wal != nil {
				_ = db.wal.Close()
			}
			return nil, err
		}
	}
	go db.recentPruner()
	if db.wal != nil && (cfg.autoCkptBytes > 0 || cfg.autoCkptRecords > 0 || cfg.autoCkptInterval > 0) {
		db.ckptKick = make(chan struct{}, 1)
		db.ckptQuit = make(chan struct{})
		db.ckptDone = make(chan struct{})
		go db.autoCheckpointer(cfg.autoCkptInterval)
		// Recovery seeded the WAL counters with the replayed tail, so a
		// tail past a threshold is checkpointed away now instead of
		// being re-replayed by every subsequent Open; smaller tails fall
		// to the interval timer.
		db.kickAutoCkpt()
	}
	if cfg.serveAddr != "" || cfg.replicaOf != "" {
		if err := db.initReplication(&cfg); err != nil {
			_ = db.Close()
			return nil, err
		}
	}
	if cfg.metricsAddr != "" {
		if err := db.startMetricsServer(cfg.metricsAddr); err != nil {
			_ = db.Close()
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) hasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[name]
	return ok
}

// onComplete is the oracle's complete hook, called once per committed
// timestamp the watermark crosses, inside the completion critical
// section — it must stay cheap (atomics and a non-blocking send). It
// drives snapshot refresh and, every recentPruneEvery commits, kicks
// the background recent-list pruner so even shards that stopped
// committing release validation records as the watermark advances.
func (db *DB) onComplete(ts uint64) {
	db.snaps.noteCommit(ts)
	if p := db.pub; p != nil {
		p.Advance(ts)
	}
	if db.st.completions.Add(1)%recentPruneEvery == 0 {
		select {
		case db.gcKick <- struct{}{}:
		default: // a kick is already pending; pruning coalesces
		}
	}
}

// recentPruner runs until Close, pruning every shard's recent-commits
// list below the GC floor whenever the watermark hook kicks it. Unlike
// the commit-path vacuum it covers idle shards: a shard that stops
// committing still sheds its retained records as other shards advance
// the watermark. RecentList pruning only takes the list's own mutex,
// so the pruner never contends with shard commit locks.
func (db *DB) recentPruner() {
	for {
		select {
		case <-db.gcQuit:
			return
		case <-db.gcKick:
			floor := db.gcFloor()
			for _, s := range db.shards {
				s.recent.PruneBelow(floor)
			}
		}
	}
}

// columnAlloc picks how column arrays are backed: strategies that
// require special source regions (rewiring needs shared main-memory
// file mappings) allocate through the strategy, everything else through
// private anonymous memory. Either way pages are pre-faulted, as a
// bulk-loaded column's would be.
func columnAlloc(proc *vmem.Process, strat snapshot.Strategy) storage.ColumnAlloc {
	ra, ok := strat.(snapshot.RegionAllocator)
	if !ok {
		return storage.DefaultColumnAlloc(proc)
	}
	return func(name string, rows int) (storage.WordArray, error) {
		reg, _, err := ra.NewRegion(name, storage.ColumnBytes(proc, rows))
		if err != nil {
			return storage.WordArray{}, err
		}
		w := storage.ViewWordArray(proc, reg.Addr, rows)
		w.PreFault()
		return w, nil
	}
}

// CreateTable allocates a table with the given schema and initial
// visible row count. All pages are mapped and pre-faulted immediately;
// the table grows chunk-wise as Insert passes its capacity.
func (db *DB) CreateTable(schema Schema, rows int) error {
	if err := db.replicaWriteGuard(); err != nil {
		return err
	}
	return db.createTable(schema, rows, true)
}

// createTable is CreateTable without the replica write guard: the
// stream applier creates tables the primary's schema records describe
// (logDDL false — the raw record was already appended by applySchema,
// byte-identical to the primary's).
func (db *DB) createTable(schema Schema, rows int, logDDL bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, dup := db.tables[schema.Table]; dup {
		return fmt.Errorf("%w: %q", ErrTableExists, schema.Table)
	}
	st, err := storage.NewTable(db.proc, schema, rows, db.alloc)
	if err != nil {
		return err
	}
	t := &table{idx: len(db.tabList), st: st, next: rows}
	t.visLogInit()
	for i, def := range schema.Columns {
		c := &column{
			id:    mvcc.ColumnID{Table: t.idx, Col: i},
			def:   def,
			tab:   t,
			data:  st.Data(i),
			wts:   st.WTS(i),
			chain: mvcc.NewChainStore(),
			dict:  st.Dict(),
		}
		metas := []*mvcc.BlockMeta{mvcc.NewBlockMeta(st.ChunkRows())}
		c.metas.Store(&metas)
		t.cols = append(t.cols, c)
	}
	for _, c := range t.cols {
		if c.def.Index != NoIndex {
			if db.recovering {
				// Placeholder: recovery rebuilds contents from the
				// recovered column + visibility arrays once replay is done.
				c.idx.Store(index.New(c.def.Index, 0))
			} else {
				// Build over the initial rows (visible from time zero with
				// the zero fill). minTS 0: a brand-new table has no version
				// chains, so any read timestamp is servable.
				c.idx.Store(buildColumnIndex(c, c.def.Index, 0))
			}
		}
	}
	db.tables[schema.Table] = t
	db.tabList = append(db.tabList, t)
	if db.wal != nil && !db.recovering && logDDL {
		// Logged under db.mu so schema-log order always matches table
		// index order, which recovery relies on to rebuild ColumnIDs.
		if err := db.wal.AppendTable(tableRecord(schema, rows)); err != nil {
			return err
		}
	}
	return nil
}

// Begin starts a transaction of the given class. OLTP transactions read
// at the newest completed commit and may write; OLAP transactions pin
// the current snapshot generation and are read-only.
func (db *DB) Begin(class TxnClass) (*Txn, error) {
	db.mu.RLock()
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	id := db.txnIDs.Add(1)
	switch class {
	case OLAP:
		db.st.olapBegun.Add(1)
		// Read side of the re-bootstrap gate, held until the pin drops
		// (Commit/Abort). Blocks only while a replica re-bootstraps.
		db.olapGate.RLock()
		gen := db.snaps.acquire()
		db.tel.rec.Record(telemetry.EvTxnBegin, int64(id), 1, int64(gen.ts))
		return &Txn{db: db, id: id, class: OLAP, gen: gen}, nil
	default:
		if err := db.replicaWriteGuard(); err != nil {
			return nil, err
		}
		db.st.oltpBegun.Add(1)
		// Sample-register-verify: GC computes its floor from the active
		// set, so the begin timestamp must be registered before any
		// commit can complete past it. If one did complete between the
		// sample and the registration, re-sample.
		var begin uint64
		for {
			begin = db.oracle.Begin()
			db.activ.Register(id, begin)
			if db.oracle.Begin() == begin {
				break
			}
			db.activ.Unregister(id)
		}
		// No begin event for OLTP: these transactions run for
		// microseconds, so a separate begin record would double recorder
		// traffic on the commit hot path for no diagnostic window — the
		// begin timestamp rides on the commit/abort event's C payload
		// instead. OLAP begins (snapshot pins) are recorded above.
		return &Txn{db: db, id: id, class: OLTP, state: mvcc.NewTxnState(id, begin, mvcc.OLTP)}, nil
	}
}

// lookup resolves a (table, column) name pair.
func (db *DB) lookup(tab, col string) (*column, error) {
	t, err := db.lookupTable(tab)
	if err != nil {
		return nil, err
	}
	i := t.st.Schema().ColumnIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("%w: %q.%q", ErrNoSuchColumn, tab, col)
	}
	return t.cols[i], nil
}

// lookupTable resolves a table name.
func (db *DB) lookupTable(tab string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[tab]
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, tab)
	}
	return t, nil
}

// tableByIdx resolves a table index back to its table.
func (db *DB) tableByIdx(idx int) *table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tabList[idx]
}

// chunkRowsOf returns the chunk granularity of the table at idx.
func (db *DB) chunkRowsOf(idx int) int { return db.tableByIdx(idx).st.ChunkRows() }

// columnByID resolves a ColumnID back to its column.
func (db *DB) columnByID(id mvcc.ColumnID) *column {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tabList[id.Table].cols[id.Col]
}

// Load bulk-loads vals into a column starting at row 0, outside any
// transaction: write timestamps stay zero, so the values behave as the
// state at time zero. It must not run concurrently with transactions;
// it exists so benchmarks can populate large columns without paying the
// versioning machinery. With durability enabled the load is redo-logged
// as chunked bulk-load records through the column's shard WAL before it
// is applied, so it survives a crash without waiting for a checkpoint;
// because loads are time-zero state, any committed write to the same
// row wins over the load at recovery.
func (db *DB) Load(tab, col string, vals []int64) error {
	if err := db.replicaWriteGuard(); err != nil {
		return err
	}
	c, err := db.lookup(tab, col)
	if err != nil {
		return err
	}
	if len(vals) > c.tab.st.InitialRows() {
		// Bounded by the born-at-time-zero rows, not the chunk-rounded
		// capacity: values loaded into unborn slots would silently never
		// become visible.
		return fmt.Errorf("%w: %d values into %s.%s (%d rows)", ErrRowRange, len(vals), tab, col, c.tab.st.InitialRows())
	}
	return db.loadColumn(c, vals, nil)
}

// LoadStrings bulk-loads a VARCHAR column, encoding through the table
// dictionary. Same caveats and durability behaviour as Load; the WAL
// records carry the decoded strings, re-encoded through the recovered
// dictionary at replay exactly like VARCHAR commit records.
func (db *DB) LoadStrings(tab, col string, vals []string) error {
	if err := db.replicaWriteGuard(); err != nil {
		return err
	}
	c, err := db.lookup(tab, col)
	if err != nil {
		return err
	}
	if c.def.Type != Varchar {
		return fmt.Errorf("%w: %s is %s, want VARCHAR", ErrType, col, c.def.Type)
	}
	if len(vals) > c.tab.st.InitialRows() {
		return fmt.Errorf("%w: %d values into %s.%s (%d rows)", ErrRowRange, len(vals), tab, col, c.tab.st.InitialRows())
	}
	return db.loadColumn(c, nil, vals)
}

// loadColumn applies a bulk load (one of vals/strs is set), WAL-logging
// it first when durable. The checkpoint mutex serialises the whole load
// against checkpoints — manual and scheduled alike — so a checkpoint
// can never capture half an applied load and then truncate away the
// records of the other half.
func (db *DB) loadColumn(c *column, vals []int64, strs []string) error {
	if db.wal != nil {
		db.ckptMu.Lock()
		defer db.ckptMu.Unlock()
		if err := db.logLoad(c, vals, strs); err != nil {
			return err
		}
		defer db.kickAutoCkpt()
	}
	if strs != nil {
		codes := make([]int64, len(strs))
		for i, s := range strs {
			codes[i] = c.dict.Encode(s)
		}
		c.data.Fill(codes)
		c.loadZones(codes)
	} else {
		c.data.Fill(vals)
		c.loadZones(vals)
	}
	db.reindexColumn(c)
	return nil
}

// gcFloor returns the oldest timestamp any state reader may still need:
// the minimum over running OLTP begin timestamps and pinned snapshot
// generation timestamps.
func (db *DB) gcFloor() uint64 {
	floor := db.activ.MinBegin(db.oracle.Completed())
	if s := db.snaps.minTS(floor); s < floor {
		floor = s
	}
	return floor
}

// Vacuum garbage-collects recently-committed records and version
// chains that no running transaction or pinned snapshot can still see,
// returning the number of version nodes removed, and reclaims rows
// whose death timestamp lies below the same floor into their table's
// free list, where Insert reuses them before the table grows. Shard-
// local versions of the chain passes also run automatically every few
// thousand commits. It serialises with commit processing by holding
// every shard commit lock: pruning between a commit's chain push and
// its timestamp store could reap a version a concurrent reader still
// needs, and row reclamation must not race a birth or death install.
func (db *DB) Vacuum() int64 {
	start := time.Now()
	db.lockAllShards()
	defer db.unlockAllShards()
	floor := db.gcFloor()
	var removed int64
	for _, s := range db.shards {
		s.recent.PruneBelow(floor)
		removed += db.vacuumShardChains(s, floor)
	}
	db.reclaimRows(floor)
	db.mu.RLock()
	tabs := append([]*table(nil), db.tabList...)
	db.mu.RUnlock()
	for _, t := range tabs {
		if t.dropped.Load() {
			// A dropped table's storage frees once nothing can reach it
			// anymore — the floor must lie strictly ABOVE the drop stamp,
			// since a generation pinned exactly at it may still capture.
			if t.dropTS < floor {
				db.freeDropped(t)
			}
			continue
		}
		t.visLogCompact(floor)
	}
	// Recompute zone maps exactly now that reclaimed rows are out of the
	// picture — widen-only installs between vacuums can only have left
	// them too wide, never wrong. Index entries dead below the floor go
	// the same way — and must, before a reclaimed slot is reused, so a
	// re-inserted row's fresh entries never coexist with its dead
	// incarnation's at a reachable timestamp.
	db.recomputeZones(floor)
	for _, t := range tabs {
		if t.dropped.Load() {
			continue
		}
		for _, c := range t.cols {
			if ix := c.idx.Load(); ix != nil {
				ix.Prune(floor)
			}
		}
	}
	db.st.vacuums.Add(1)
	db.st.versionsGCed.Add(removed)
	elapsed := time.Since(start)
	db.tel.vacuum.Observe(elapsed)
	db.tel.rec.Record(telemetry.EvVacuum, removed, 0, elapsed.Nanoseconds())
	return removed
}

// reclaimRows moves rows dead at or below floor to their table's free
// list, marking the slot unborn (birth NeverTS) so no later reader can
// resurrect the dead incarnation. The caller holds every shard commit
// lock (no concurrent birth/death installs) and floor is the GC floor
// (no running transaction or pinned generation reads below it), so
// every current and future reader already sees these rows as dead.
// The death timestamp is left in place: recovery uses the
// (birth=NeverTS, death!=0) pair persisted by a later checkpoint to
// rebuild the free list.
func (db *DB) reclaimRows(floor uint64) {
	db.mu.RLock()
	tabs := append([]*table(nil), db.tabList...)
	db.mu.RUnlock()
	for _, t := range tabs {
		if t.dropped.Load() || !t.visMutated.Load() {
			continue
		}
		birth, death := t.st.Birth(), t.st.Death()
		t.amu.Lock()
		for row := 0; row < t.next; row++ {
			b := birth.GetU(row)
			if b == storage.NeverTS {
				continue // unborn, reserved, or already reclaimed
			}
			if d := death.GetU(row); d != 0 && d <= floor {
				birth.SetU(row, storage.NeverTS)
				t.free = append(t.free, row)
				db.st.rowsReclaimed.Add(1)
			}
		}
		t.amu.Unlock()
	}
}

// Close releases the manager's pin on the current snapshot generation,
// stops the background pruner and the checkpoint scheduler (waiting
// out any checkpoint the scheduler already started, so the log is
// never closed under it), syncs and closes the write-ahead log (so
// even under SyncNone a clean shutdown is durable), and marks the
// database closed. Transactions still running keep their pinned
// snapshots alive until they finish.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	db.mu.Unlock()
	db.stopMetricsServer()
	// Serving tier first: no new sessions or replica feeds, then stop
	// the replica connector (waits out its goroutine), then release any
	// blocked publisher subscribers.
	if db.srv != nil {
		_ = db.srv.Close()
	}
	if db.rep != nil {
		db.rep.stop()
	}
	if db.pub != nil {
		db.pub.Close()
	}
	close(db.gcQuit)
	if db.ckptQuit != nil {
		close(db.ckptQuit)
		<-db.ckptDone
	}
	db.snaps.close()
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}
