package ankerdb

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ankerdb/internal/mvcc"
	"ankerdb/internal/snapshot"
	"ankerdb/internal/storage"
	"ankerdb/internal/vmem"
)

// vacuumEvery is how many commits pass between automatic version-chain
// garbage collections run inside the commit path. RecentList pruning is
// cheap and runs far more often (every recentPruneEvery commits).
const (
	vacuumEvery      = 4096
	recentPruneEvery = 64
)

// DB is the engine facade: one simulated process hosting columnar
// tables, an MVCC commit pipeline for OLTP transactions, and a snapshot
// lifecycle manager serving OLAP transactions through the configured
// snapshot strategy. All methods are safe for concurrent use.
type DB struct {
	proc  *vmem.Process
	strat snapshot.Strategy
	alloc storage.ColumnAlloc

	oracle *mvcc.Oracle
	activ  *mvcc.ActiveSet
	snaps  *snapManager

	// shards partition commit processing by column (see commit.go): the
	// paper's partially sequential commit phase (Section 5.7) becomes
	// per-shard, so disjoint-footprint transactions commit in parallel.
	// With one shard this degenerates to the paper's fully serialized
	// commit phase.
	shards []*commitShard

	mu      sync.RWMutex
	tables  map[string]*table
	tabList []*table
	closed  bool

	txnIDs atomic.Uint64
	st     dbCounters
}

type dbCounters struct {
	commits       atomic.Uint64 // counted in maintainShards, drives periodic maintenance
	emptyCommits  atomic.Uint64
	aborts        atomic.Uint64
	conflicts     atomic.Uint64
	oltpBegun     atomic.Uint64
	olapBegun     atomic.Uint64
	vacuums       atomic.Uint64
	versionsGCed  atomic.Int64
	commitBatches atomic.Uint64
	crossShard    atomic.Uint64
	groupSizes    [8]atomic.Uint64
}

// table pairs the storage-layer arrays with the per-column MVCC state
// the commit pipeline and snapshot readers share.
type table struct {
	idx  int
	st   *storage.Table
	cols []*column
}

// column is one table column: its data and write-timestamp arrays plus
// the version chains and block metadata of displaced versions.
type column struct {
	id    mvcc.ColumnID
	def   ColumnDef
	tab   *storage.Table
	data  storage.WordArray
	wts   storage.WordArray
	chain *mvcc.ChainStore
	meta  *mvcc.BlockMeta
	dict  *storage.Dict
}

// regions returns the snapshot regions covering the column: data first,
// write timestamps second. Both must be snapshotted together so OLAP
// readers can tell which snapshot rows predate their timestamp.
func (c *column) regions() []snapshot.Region {
	d, w := c.tab.ColumnRegions(c.id.Col)
	return []snapshot.Region{
		{Addr: d.Addr, Len: d.Len},
		{Addr: w.Addr, Len: w.Len},
	}
}

// Open creates an empty in-memory database configured by opts.
func Open(opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	proc := vmem.NewProcess(vmem.WithPageSize(cfg.pageSize), vmem.WithCostModel(cfg.cost))
	strat, err := snapshot.New(string(cfg.strategy), proc)
	if err != nil {
		return nil, err
	}
	db := &DB{
		proc:   proc,
		strat:  strat,
		alloc:  columnAlloc(proc, strat),
		oracle: &mvcc.Oracle{},
		activ:  mvcc.NewActiveSet(),
		shards: newCommitShards(cfg.resolveCommitShards()),
		tables: map[string]*table{},
	}
	db.snaps = newSnapManager(db, cfg.refreshEvery, cfg.maxAge)
	db.oracle.SetCompleteHook(db.snaps.noteCommit)
	for _, s := range cfg.schemas {
		if err := db.CreateTable(s.schema, s.rows); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// columnAlloc picks how column arrays are backed: strategies that
// require special source regions (rewiring needs shared main-memory
// file mappings) allocate through the strategy, everything else through
// private anonymous memory. Either way pages are pre-faulted, as a
// bulk-loaded column's would be.
func columnAlloc(proc *vmem.Process, strat snapshot.Strategy) storage.ColumnAlloc {
	ra, ok := strat.(snapshot.RegionAllocator)
	if !ok {
		return storage.DefaultColumnAlloc(proc)
	}
	return func(name string, rows int) (storage.WordArray, error) {
		reg, _, err := ra.NewRegion(name, storage.ColumnBytes(proc, rows))
		if err != nil {
			return storage.WordArray{}, err
		}
		w := storage.ViewWordArray(proc, reg.Addr, rows)
		w.PreFault()
		return w, nil
	}
}

// CreateTable allocates a table with the given schema and fixed row
// capacity. All pages are mapped and pre-faulted immediately.
func (db *DB) CreateTable(schema Schema, rows int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, dup := db.tables[schema.Table]; dup {
		return fmt.Errorf("%w: %q", ErrTableExists, schema.Table)
	}
	st, err := storage.NewTable(schema, rows, db.alloc)
	if err != nil {
		return err
	}
	t := &table{idx: len(db.tabList), st: st}
	for i, def := range schema.Columns {
		t.cols = append(t.cols, &column{
			id:    mvcc.ColumnID{Table: t.idx, Col: i},
			def:   def,
			tab:   st,
			data:  st.Data(i),
			wts:   st.WTS(i),
			chain: mvcc.NewChainStore(),
			meta:  mvcc.NewBlockMeta(rows),
			dict:  st.Dict(),
		})
	}
	db.tables[schema.Table] = t
	db.tabList = append(db.tabList, t)
	return nil
}

// Begin starts a transaction of the given class. OLTP transactions read
// at the newest completed commit and may write; OLAP transactions pin
// the current snapshot generation and are read-only.
func (db *DB) Begin(class TxnClass) (*Txn, error) {
	db.mu.RLock()
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	id := db.txnIDs.Add(1)
	switch class {
	case OLAP:
		db.st.olapBegun.Add(1)
		return &Txn{db: db, id: id, class: OLAP, gen: db.snaps.acquire()}, nil
	default:
		db.st.oltpBegun.Add(1)
		// Sample-register-verify: GC computes its floor from the active
		// set, so the begin timestamp must be registered before any
		// commit can complete past it. If one did complete between the
		// sample and the registration, re-sample.
		var begin uint64
		for {
			begin = db.oracle.Begin()
			db.activ.Register(id, begin)
			if db.oracle.Begin() == begin {
				break
			}
			db.activ.Unregister(id)
		}
		return &Txn{db: db, id: id, class: OLTP, state: mvcc.NewTxnState(id, begin, mvcc.OLTP)}, nil
	}
}

// lookup resolves a (table, column) name pair.
func (db *DB) lookup(tab, col string) (*column, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[tab]
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, tab)
	}
	i := t.st.Schema().ColumnIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("%w: %q.%q", ErrNoSuchColumn, tab, col)
	}
	return t.cols[i], nil
}

// columnByID resolves a ColumnID back to its column.
func (db *DB) columnByID(id mvcc.ColumnID) *column {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tabList[id.Table].cols[id.Col]
}

// Load bulk-loads vals into a column starting at row 0, outside any
// transaction: write timestamps stay zero, so the values behave as the
// state at time zero. It must not run concurrently with transactions;
// it exists so benchmarks can populate large columns without paying the
// versioning machinery.
func (db *DB) Load(tab, col string, vals []int64) error {
	c, err := db.lookup(tab, col)
	if err != nil {
		return err
	}
	if len(vals) > c.data.Rows() {
		return fmt.Errorf("%w: %d values into %d rows", ErrRowRange, len(vals), c.data.Rows())
	}
	c.data.Fill(vals)
	return nil
}

// LoadStrings bulk-loads a VARCHAR column, encoding through the table
// dictionary. Same caveats as Load.
func (db *DB) LoadStrings(tab, col string, vals []string) error {
	c, err := db.lookup(tab, col)
	if err != nil {
		return err
	}
	if c.def.Type != Varchar {
		return fmt.Errorf("%w: %s is %s, want VARCHAR", ErrType, col, c.def.Type)
	}
	codes := make([]int64, len(vals))
	for i, s := range vals {
		codes[i] = c.dict.Encode(s)
	}
	return db.Load(tab, col, codes)
}

// gcFloor returns the oldest timestamp any state reader may still need:
// the minimum over running OLTP begin timestamps and pinned snapshot
// generation timestamps.
func (db *DB) gcFloor() uint64 {
	floor := db.activ.MinBegin(db.oracle.Completed())
	if s := db.snaps.minTS(floor); s < floor {
		floor = s
	}
	return floor
}

// Vacuum garbage-collects recently-committed records and version
// chains that no running transaction or pinned snapshot can still see,
// returning the number of version nodes removed. Shard-local versions
// of both passes also run automatically every few thousand commits.
// It serialises with commit processing by holding every shard commit
// lock: pruning between a commit's chain push and its timestamp store
// could reap a version a concurrent reader still needs.
func (db *DB) Vacuum() int64 {
	db.lockAllShards()
	defer db.unlockAllShards()
	floor := db.gcFloor()
	var removed int64
	for _, s := range db.shards {
		s.recent.PruneBelow(floor)
		removed += db.vacuumShardChains(s, floor)
	}
	db.st.vacuums.Add(1)
	db.st.versionsGCed.Add(removed)
	return removed
}

// Close releases the manager's pin on the current snapshot generation
// and marks the database closed. Transactions still running keep their
// pinned snapshots alive until they finish.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	db.mu.Unlock()
	db.snaps.close()
	return nil
}
