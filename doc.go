// Package ankerdb is the public engine facade of the AnKerDB
// reproduction: a hybrid OLTP/OLAP main-memory column store that
// accelerates analytical processing in MVCC with fine-granular,
// high-frequency virtual snapshotting (SIGMOD 2018).
//
// The facade composes the internal layers into one runnable system:
//
//   - internal/phys + internal/vmem: a simulated virtual memory
//     subsystem (VMAs, page tables, COW, fork, vm_snapshot)
//   - internal/storage: columnar tables hosted in that virtual memory
//   - internal/snapshot: the four snapshot strategies the paper
//     compares (physical, fork, rewired, vmsnap)
//   - internal/mvcc: version chains, precision-locking validation and
//     the timestamp oracle
//   - internal/query: the streaming query engine — composable
//     operators (scan → filter → project → hash join →
//     group-by/aggregate) over one pinned snapshot generation, with
//     per-block min/max zone maps pruning the scan below the filter
//     and morsel-driven parallelism across GOMAXPROCS workers
//     (deterministic results at any worker count)
//   - internal/index: transactional secondary indexes (Hash for
//     equality, Ordered for ranges) whose entries carry birth/death
//     commit timestamps like the row-visibility arrays — maintained
//     in the commit shard's critical section, probed at any snapshot
//     without locks, and rebuilt deterministically at recovery
//   - internal/wal: the durability subsystem — per-commit-shard
//     write-ahead log with group-commit fsync batching, WAL-logged
//     bulk loads, snapshot-driven checkpoints (manual or scheduled),
//     and streaming O(chunk)-memory crash recovery (enabled with
//     WithDurability; the default remains purely in-memory)
//   - internal/repl: the replication and serving tier — a framed wire
//     protocol over TCP carrying the primary's WAL record payloads
//     byte-identically to read replicas, plus a FIFO publisher that
//     releases records in WAL-append order gated on the commit
//     completion watermark, so subscribers never observe a torn or
//     reordered stream
//   - internal/telemetry: lock-free observability primitives — atomic
//     log2-bucketed latency histograms on every hot phase and an
//     always-on flight-recorder ring of structured trace events
//   - internal/fault: the injectable file system the durability stack
//     runs over — a passthrough by default (fault.OS, one interface
//     call of overhead), or a scripted adversary with a seeded
//     crash/torn-write/short-write/fsync-lie schedule for the
//     deterministic crash-recovery harness (substituted via the
//     test-only WithFS option)
//
// Open-time options: WithSnapshotStrategy, WithCostModel,
// WithPageSize, WithSnapshotRefresh, WithSnapshotMaxAge,
// WithInitialSchema, WithCommitShards, WithGroupCommitMaxWait,
// WithDurability, WithSyncPolicy, WithAutoCheckpoint,
// WithAutoCheckpointInterval, WithSlowQueryThreshold,
// WithMetricsServer, WithServeAddr, WithReplicaOf, WithNamespace,
// WithServeMaxSessions, WithFS (test-only fault injection).
//
// Short modifying OLTP transactions stage writes locally, validate
// against recently committed writers at commit (precision locking, so
// snapshot isolation is upgraded to serializability), and materialize
// in place while pushing displaced versions onto version chains. Long
// read-only OLAP transactions never traverse version chains on the hot
// path: they scan virtual snapshots of exactly the columns they touch,
// taken through the configured snapshot strategy and refreshed every n
// commits. Rows the snapshot caught mid-flight (written after the
// snapshot's timestamp) are repaired from the version chains.
//
// Tables are growable: Txn.Insert reserves a row slot (reusing
// Vacuum-reclaimed free-list slots before mapping new capacity
// chunks) and births it at the commit timestamp; Txn.Delete stamps a
// death timestamp. Every read path — point reads, scans, filters,
// aggregates and Count — resolves the per-row birth/death pair at its
// read timestamp, so the visible row set is snapshot-consistent, and
// the visibility arrays are virtually snapshotted fine-granularly
// like any other column. Rows outside the visible set fail with
// ErrRowNotVisible (which also matches ErrRowRange under errors.Is).
//
// Tables are also droppable: DB.DropTable removes a table (chunks
// unmapped once unreachable, name reusable) and DB.Truncate empties
// one (schema and declared indexes survive). Both append torn-tail-safe
// marker records to the durable schema log and replay exactly once at
// recovery; a transaction that staged against the old incarnation
// fails its commit with ErrNoSuchTable/ErrConflict instead of writing
// into the new one.
//
// Crash recovery is observable and typed: DB.RecoveryReport returns
// what Open-time recovery did (replayed transactions and loads,
// torn-tail bytes cut off, indexes rebuilt), and an Open that fails on
// genuinely damaged state returns an error matching ErrCorruptWAL or
// ErrCorruptCheckpoint under errors.Is, naming the file and offset.
//
// A minimal session:
//
//	db, _ := ankerdb.Open(
//		ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
//		ankerdb.WithSnapshotRefresh(16),
//	)
//	defer db.Close()
//	db.CreateTable(ankerdb.Schema{
//		Table:   "orders",
//		Columns: []ankerdb.ColumnDef{{Name: "qty", Type: ankerdb.Int64}},
//	}, 1<<16)
//
//	w, _ := db.Begin(ankerdb.OLTP)
//	w.Set("orders", "qty", 42, 7)
//	w.Commit()
//
//	r, _ := db.Begin(ankerdb.OLAP)
//	sum, _ := r.Aggregate("orders", "qty", ankerdb.Sum)
//	r.Commit()
//
// Analytical queries compose through the streaming engine: Txn.Query
// binds a builder to an OLAP transaction's pinned snapshot (DB.Query
// is the one-shot form), and every operator — filter with a predicate
// tree, hash join against tables read at the same snapshot, group-by
// with multiple aggregates — executes morsel-parallel with zone-map
// pruning:
//
//	res, _ := db.Query("orders").
//		Where(ankerdb.Between("qty", 100, 500)).
//		GroupBy("qty").
//		Aggregate(ankerdb.CountRows(), ankerdb.SumOf("qty")).
//		Limit(10).
//		Run()
//	for i := 0; i < res.Len(); i++ {
//		fmt.Println(res.At(i, 0), res.At(i, 1), res.At(i, 2))
//	}
//
// Columns can carry transactional secondary indexes, declared fluently
// with the SchemaBuilder (or via ColumnDef.Index) and built or dropped
// online with DB.CreateIndex / DB.DropIndex. Txn.Lookup answers "which
// rows hold this value" through the index in O(matches), and both
// Txn.Filter and the query engine's Eq/Between conjuncts route through
// the same probe when the index estimates it beats a scan:
//
//	db.CreateTable(ankerdb.NewSchema("users").
//		Int64("uid").Indexed(ankerdb.Hash).
//		Int64("score").Indexed(ankerdb.Ordered).
//		Build(), 1<<16)
//
//	w, _ := db.Begin(ankerdb.OLTP)
//	rows, _ := w.Lookup("users", "uid", 42)
//
// The engine is observable without touching its contended paths:
// DB.Stats carries phase-latency histograms (commit linger, lock wait,
// validate, install, fsync; snapshot creation; query execution;
// checkpoint, recovery replay, vacuum) next to its counters,
// DB.TraceDump renders the flight recorder's surviving event window,
// DB.SlowQueries returns the newest queries slower than the
// WithSlowQueryThreshold cutoff with their per-operator row
// breakdown, and DB.MetricsText writes the whole surface as
// Prometheus text under stable ankerdb_* names. WithMetricsServer
// serves /metrics, /debug/vars (expvar), /debug/pprof and
// /debug/trace over HTTP on a dedicated mux.
//
// A durable database becomes a networked serving primary with
// WithServeAddr(addr): remote clients Dial(addr, namespace) a Session
// — the interface (BeginTxn, Stats, Close) the embedded *DB also
// satisfies, so code written against Session runs unchanged
// in-process or over the wire, and sentinel errors (ErrConflict,
// ErrNoSuchTable, ErrRowNotVisible, ...) match under errors.Is on
// both sides. WithServeMaxSessions caps concurrent remote sessions
// (the excess dial fails with ErrTooManySessions); WithNamespace
// names the served database, and NewServer + Server.Register front
// several databases behind one port.
//
// WithReplicaOf(addr) opens the database as a read replica of a
// serving primary: it bootstraps a checkpoint-style snapshot, then
// continuously replays the primary's commit, load and schema records
// through the same idempotent-by-commitTS rules crash recovery uses —
// replication is recovery over the wire. The replica is a live
// database serving OLAP snapshot reads at bounded, reported staleness
// (Stats.ReplicaAppliedTS against Stats.ReplicaSourceTS; the primary
// reports per-replica lag in commits via Stats.MaxReplicaLag and the
// ReplicaLagHist histogram). Local mutations fail with ErrReplicaRead
// until DB.Promote(requireTS) turns the replica into a primary —
// refusing with ErrStalePromotion when its applied watermark has not
// reached requireTS, so electing the most-caught-up replica after a
// primary failure loses no committed transaction. A durable replica
// re-appends every applied record to its own WAL and restarts
// standalone; a serving replica (WithServeAddr alongside WithReplicaOf)
// answers remote read sessions and can feed second-tier replicas.
//
// Note on Filter: its positional (lo, hi) range form predates the
// predicate tree and is retained for compatibility; for equality
// prefer Lookup, and for anything more structured than a single
// closed range prefer the query builder's Where — both stay on the
// index-backed path, and the builder composes And/Or/Not without the
// positional-range ambiguity.
package ankerdb
