package ankerdb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// waitReplicaTS polls until db's completed watermark reaches ts.
func waitReplicaTS(t *testing.T, db *DB, ts uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for db.oracle.Completed() < ts {
		if time.Now().After(deadline) {
			st := db.Stats()
			t.Fatalf("replica stuck: completed %d, applied %d, source %d, want %d",
				st.CompletedCommitTS, st.ReplicaAppliedTS, st.ReplicaSourceTS, ts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func openPrimary(t *testing.T, opts ...Option) *DB {
	t.Helper()
	base := []Option{
		WithCostModel(ZeroCost),
		WithDurability(t.TempDir()),
		WithSyncPolicy(SyncNone),
		WithServeAddr("127.0.0.1:0"),
	}
	db, err := Open(append(base, opts...)...)
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db
}

func openReplicaOf(t *testing.T, addr string, opts ...Option) *DB {
	t.Helper()
	base := []Option{WithCostModel(ZeroCost), WithReplicaOf(addr)}
	db, err := Open(append(base, opts...)...)
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db
}

func commitWrite(t *testing.T, db *DB, tab, col string, row int, v int64) uint64 {
	t.Helper()
	tx, err := db.Begin(OLTP)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := tx.Set(tab, col, row, v); err != nil {
		t.Fatalf("set: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return db.oracle.Completed()
}

func olapGet(t *testing.T, db *DB, tab, col string, row int) int64 {
	t.Helper()
	tx, err := db.Begin(OLAP)
	if err != nil {
		t.Fatalf("olap begin: %v", err)
	}
	defer tx.Abort()
	v, err := tx.Get(tab, col, row)
	if err != nil {
		t.Fatalf("olap get: %v", err)
	}
	return v
}

// TestReplicationStreamsWrites is the core contract: commits on the
// primary (updates, inserts, deletes) appear on a bootstrapped replica
// at its reported watermark, and a second replica without its own
// durability behaves identically.
func TestReplicationStreamsWrites(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Varchar("s").Build(), 64))
	commitWrite(t, p, "kv", "v", 0, 7) // pre-bootstrap state

	durable := openReplicaOf(t, p.ServeAddr(), WithDurability(t.TempDir()), WithSyncPolicy(SyncNone))
	memOnly := openReplicaOf(t, p.ServeAddr())

	if got := olapGet(t, durable, "kv", "v", 0); got != 7 {
		t.Fatalf("bootstrapped value = %d, want 7", got)
	}

	// Live stream: update, string write, insert, delete.
	commitWrite(t, p, "kv", "v", 1, 11)
	tx, _ := p.Begin(OLTP)
	if err := tx.SetString("kv", "s", 2, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ = p.Begin(OLTP)
	row, err := tx.Insert("kv", map[string]any{"v": int64(99), "s": "born"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ = p.Begin(OLTP)
	if err := tx.Delete("kv", 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	target := p.oracle.Completed()

	for name, r := range map[string]*DB{"durable": durable, "memory": memOnly} {
		waitReplicaTS(t, r, target)
		if got := olapGet(t, r, "kv", "v", 1); got != 11 {
			t.Errorf("%s: v[1] = %d, want 11", name, got)
		}
		if got := olapGet(t, r, "kv", "v", row); got != 99 {
			t.Errorf("%s: inserted v[%d] = %d, want 99", name, row, got)
		}
		rtx, _ := r.Begin(OLAP)
		if s, err := rtx.GetString("kv", "s", 2); err != nil || s != "hello" {
			t.Errorf("%s: s[2] = %q, %v; want hello", name, s, err)
		}
		if _, err := rtx.Get("kv", "v", 3); !errors.Is(err, ErrRowNotVisible) {
			t.Errorf("%s: deleted row readable: %v", name, err)
		}
		n, err := rtx.Aggregate("kv", "v", Count)
		if err != nil {
			t.Fatalf("%s: count: %v", name, err)
		}
		ptx, _ := p.Begin(OLAP)
		want, _ := ptx.Aggregate("kv", "v", Count)
		ptx.Abort()
		if n != want {
			t.Errorf("%s: visible rows = %d, primary has %d", name, n, want)
		}
		rtx.Abort()

		st := r.Stats()
		if !st.Replica || st.Promoted {
			t.Errorf("%s: stats role: replica=%v promoted=%v", name, st.Replica, st.Promoted)
		}
		if !st.ReplicaConnected || st.ReplicaAppliedTS < target {
			t.Errorf("%s: stats health: connected=%v applied=%d (target %d)",
				name, st.ReplicaConnected, st.ReplicaAppliedTS, target)
		}
	}

	pst := p.Stats()
	if pst.ConnectedReplicas != 2 {
		t.Errorf("primary ConnectedReplicas = %d, want 2", pst.ConnectedReplicas)
	}
	if pst.ReplFramesStreamed == 0 || !pst.Serving {
		t.Errorf("primary stream stats: frames=%d serving=%v", pst.ReplFramesStreamed, pst.Serving)
	}
}

// TestReplicationStreamsDDL covers schema records over the live
// stream: table creation, index DDL, truncate and drop all mirror on
// the replica exactly once despite the bootstrap overlap.
func TestReplicationStreamsDDL(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("a").Int64("x").Build(), 16))
	r := openReplicaOf(t, p.ServeAddr())

	if err := p.CreateTable(NewSchema("b").Int64("y").Build(), 8); err != nil {
		t.Fatal(err)
	}
	if err := p.CreateIndex("b", "y", Hash); err != nil {
		t.Fatal(err)
	}
	ts := commitWrite(t, p, "b", "y", 2, 42)
	waitReplicaTS(t, r, ts)

	rtx, err := r.Begin(OLAP)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := rtx.Lookup("b", "y", 42); err != nil || len(rows) != 1 || rows[0] != 2 {
		t.Fatalf("replica index lookup = %v, %v; want [2]", rows, err)
	}
	rtx.Abort()

	// Truncate then repopulate; then drop a different table.
	if err := p.Truncate("b"); err != nil {
		t.Fatal(err)
	}
	for _, y := range []int64{5, 6} {
		tx, _ := p.Begin(OLTP)
		if _, err := tx.Insert("b", map[string]any{"y": y}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	// A trailing commit gives the replica a watermark past the drop.
	ts = commitWrite(t, p, "b", "y", 0, 7)
	waitReplicaTS(t, r, ts)

	rtx, _ = r.Begin(OLAP)
	n, err := rtx.Aggregate("b", "y", Count)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // the repopulated row + row 0 written above
		t.Errorf("post-truncate visible rows = %d, want 2", n)
	}
	if _, err := rtx.Scan("a", "x"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("dropped table still scannable: %v", err)
	}
	rtx.Abort()
}

// TestReplicationStreamsLoad: bulk loads stream as load records and
// land on wts-zero rows only.
func TestReplicationStreamsLoad(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("l").Int64("v").Build(), 32))
	r := openReplicaOf(t, p.ServeAddr())

	vals := make([]int64, 32)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	if err := p.Load("l", "v", vals); err != nil {
		t.Fatal(err)
	}
	// A commit after the load gives the replica a watermark to converge on.
	ts := commitWrite(t, p, "l", "v", 0, 1000)
	waitReplicaTS(t, r, ts)

	if got := olapGet(t, r, "l", "v", 10); got != 30 {
		t.Errorf("loaded v[10] = %d, want 30", got)
	}
	if got := olapGet(t, r, "l", "v", 0); got != 1000 {
		t.Errorf("committed-over-load v[0] = %d, want 1000", got)
	}
}

// TestReplicaRejectsWrites: every local mutation path returns
// ErrReplicaRead until promotion; OLAP reads keep working.
func TestReplicaRejectsWrites(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	r := openReplicaOf(t, p.ServeAddr())

	if _, err := r.Begin(OLTP); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("Begin(OLTP) = %v, want ErrReplicaRead", err)
	}
	if err := r.CreateTable(NewSchema("x").Int64("a").Build(), 4); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("CreateTable = %v, want ErrReplicaRead", err)
	}
	if err := r.DropTable("kv"); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("DropTable = %v, want ErrReplicaRead", err)
	}
	if err := r.Truncate("kv"); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("Truncate = %v, want ErrReplicaRead", err)
	}
	if err := r.CreateIndex("kv", "v", Hash); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("CreateIndex = %v, want ErrReplicaRead", err)
	}
	if err := r.DropIndex("kv", "v"); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("DropIndex = %v, want ErrReplicaRead", err)
	}
	if err := r.Load("kv", "v", []int64{1}); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("Load = %v, want ErrReplicaRead", err)
	}
	if err := r.LoadStrings("kv", "v", []string{"a"}); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("LoadStrings = %v, want ErrReplicaRead", err)
	}
	if _, err := r.Begin(OLAP); err != nil {
		t.Errorf("Begin(OLAP) on replica failed: %v", err)
	}
	if err := r.Promote(0); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if _, err := r.Begin(OLTP); err != nil {
		t.Errorf("Begin(OLTP) after Promote failed: %v", err)
	}
}

// TestReplicaRestartRebootstraps: a durable replica closed and
// reopened against the primary re-bootstraps (fast-forward) and
// converges on writes it missed while down.
func TestReplicaRestartRebootstraps(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	dir := t.TempDir()

	r, err := Open(WithCostModel(ZeroCost), WithDurability(dir), WithSyncPolicy(SyncNone), WithReplicaOf(p.ServeAddr()))
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	ts := commitWrite(t, p, "kv", "v", 0, 1)
	waitReplicaTS(t, r, ts)
	if err := r.Close(); err != nil {
		t.Fatalf("close replica: %v", err)
	}

	// Writes while the replica is down.
	commitWrite(t, p, "kv", "v", 0, 2)
	ts = commitWrite(t, p, "kv", "v", 1, 3)

	r2, err := Open(WithCostModel(ZeroCost), WithDurability(dir), WithSyncPolicy(SyncNone), WithReplicaOf(p.ServeAddr()))
	if err != nil {
		t.Fatalf("reopen replica: %v", err)
	}
	defer r2.Close()
	waitReplicaTS(t, r2, ts)
	if got := olapGet(t, r2, "kv", "v", 0); got != 2 {
		t.Errorf("v[0] = %d after restart, want 2", got)
	}
	if got := olapGet(t, r2, "kv", "v", 1); got != 3 {
		t.Errorf("v[1] = %d after restart, want 3", got)
	}
	if r2.Stats().ReplicaBootstraps == 0 {
		t.Error("reopened replica did not bootstrap")
	}
}

// TestRemoteSession: the networked Session surface against a served
// primary — full op coverage, sentinel-error fidelity across the wire,
// and the session-vs-embedded interchangeability the interface
// promises.
func TestRemoteSession(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Varchar("s").Build(), 16))

	var sess Session
	sess, err := Dial(p.ServeAddr(), "")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer sess.Close()

	tx, err := sess.BeginTxn(OLTP)
	if err != nil {
		t.Fatalf("remote begin: %v", err)
	}
	if tx.Class() != OLTP {
		t.Errorf("Class = %v", tx.Class())
	}
	if err := tx.Set("kv", "v", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetString("kv", "s", 1, "one"); err != nil {
		t.Fatal(err)
	}
	row, err := tx.Insert("kv", map[string]any{"v": 77, "s": "ins"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("kv", 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("remote commit: %v", err)
	}

	rd, err := sess.BeginTxn(OLAP)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := rd.Get("kv", "v", 1); err != nil || v != 10 {
		t.Errorf("Get = %d, %v", v, err)
	}
	if s, err := rd.GetString("kv", "s", 1); err != nil || s != "one" {
		t.Errorf("GetString = %q, %v", s, err)
	}
	if v, err := rd.Get("kv", "v", row); err != nil || v != 77 {
		t.Errorf("inserted Get = %d, %v", v, err)
	}
	if vals, err := rd.Scan("kv", "v"); err != nil || len(vals) == 0 {
		t.Errorf("Scan = %d vals, %v", len(vals), err)
	}
	if _, err := rd.Filter("kv", "v", 10, 10); err != nil {
		t.Errorf("Filter: %v", err)
	}
	if _, err := rd.Lookup("kv", "v", 10); err != nil {
		t.Errorf("Lookup: %v", err)
	}
	if n, err := rd.Aggregate("kv", "v", Count); err != nil || n == 0 {
		t.Errorf("Aggregate Count = %d, %v", n, err)
	}

	// Sentinel fidelity across the wire.
	if _, err := rd.Get("nope", "v", 0); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("unknown table error = %v, want ErrNoSuchTable", err)
	}
	if _, err := rd.Get("kv", "nope", 0); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("unknown column error = %v, want ErrNoSuchColumn", err)
	}
	if _, err := rd.Get("kv", "v", 2); !errors.Is(err, ErrRowNotVisible) || !errors.Is(err, ErrRowRange) {
		t.Errorf("deleted row error = %v, want ErrRowNotVisible (and ErrRowRange alias)", err)
	}
	if err := rd.Set("kv", "v", 0, 1); !errors.Is(err, ErrReadOnly) {
		t.Errorf("OLAP write error = %v, want ErrReadOnly", err)
	}
	if msg := fmt.Sprint(rd.Set("kv", "v", 0, 1)); !strings.Contains(msg, "read-only") {
		t.Errorf("remote error lost its message: %q", msg)
	}
	if err := rd.Abort(); err != nil {
		t.Fatal(err)
	}

	// Stats over the wire carry the replication surface.
	if st := sess.Stats(); !st.Serving || st.Strategy == "" {
		t.Errorf("remote Stats = serving:%v strategy:%q", st.Serving, st.Strategy)
	}

	// Unknown namespace refused at handshake.
	if _, err := Dial(p.ServeAddr(), "ghost"); err == nil || !strings.Contains(err.Error(), "namespace") {
		t.Errorf("ghost namespace dial = %v", err)
	}
}

// TestRemoteSessionAdmission: the WithServeMaxSessions cap refuses the
// excess dial with a wire-coded ErrTooManySessions.
func TestRemoteSessionAdmission(t *testing.T) {
	p := openPrimary(t,
		WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8),
		WithServeMaxSessions(2))

	s1, err := Dial(p.ServeAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Dial(p.ServeAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	s3, err := Dial(p.ServeAddr(), "")
	if err == nil {
		// The refusal races the dial's first read; force a round trip.
		_, err = s3.BeginTxn(OLAP)
		s3.Close()
	}
	if !errors.Is(err, ErrTooManySessions) {
		t.Errorf("third dial = %v, want ErrTooManySessions", err)
	}

	// Slots free on close: a new session is admitted.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s4, err := Dial(p.ServeAddr(), "")
		if err == nil {
			if _, err = s4.BeginTxn(OLAP); err == nil {
				s4.Close()
				break
			}
			s4.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationChained: a replica that also serves can feed a
// second-tier replica (its own schema log being a byte-exact prefix of
// the primary's makes the chain sound).
func TestReplicationChained(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	mid := openReplicaOf(t, p.ServeAddr(),
		WithDurability(t.TempDir()), WithSyncPolicy(SyncNone), WithServeAddr("127.0.0.1:0"))
	leaf := openReplicaOf(t, mid.ServeAddr())

	ts := commitWrite(t, p, "kv", "v", 3, 33)
	waitReplicaTS(t, mid, ts)
	waitReplicaTS(t, leaf, ts)
	if got := olapGet(t, leaf, "kv", "v", 3); got != 33 {
		t.Errorf("chained v[3] = %d, want 33", got)
	}
}

// TestSessionEmbeddedDB: the embedded *DB satisfies the same Session
// interface the remote client does, so code written against Session
// runs unchanged in-process.
func TestSessionEmbeddedDB(t *testing.T) {
	db, err := Open(
		WithCostModel(ZeroCost),
		WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8),
	)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var s Session = db
	defer s.Close()

	w, err := s.BeginTxn(OLTP)
	if err != nil {
		t.Fatalf("embedded BeginTxn(OLTP): %v", err)
	}
	if err := w.Set("kv", "v", 2, 42); err != nil {
		t.Fatalf("set: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	r, err := s.BeginTxn(OLAP)
	if err != nil {
		t.Fatalf("embedded BeginTxn(OLAP): %v", err)
	}
	if got, err := r.Get("kv", "v", 2); err != nil || got != 42 {
		t.Fatalf("get = %d, %v; want 42", got, err)
	}
	if r.SnapshotTS() == 0 {
		t.Fatal("embedded OLAP SnapshotTS = 0")
	}
	if err := r.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if st := s.Stats(); st.Strategy == "" {
		t.Fatal("embedded Stats missing strategy")
	}
}

// TestServerMultiNamespace: one NewServer front serves several
// registered databases behind a single port, resolved per-session by
// namespace; the server's Close severs sessions without closing the
// databases it fronts.
func TestServerMultiNamespace(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	open := func(val int64) *DB {
		db, err := Open(
			WithCostModel(ZeroCost),
			WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8),
		)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		t.Cleanup(func() { db.Close() })
		commitWrite(t, db, "kv", "v", 0, val)
		return db
	}
	srv.Register("alpha", open(11))
	srv.Register("", open(22)) // empty namespace serves as "default"

	for ns, want := range map[string]int64{"alpha": 11, "default": 22} {
		sess, err := Dial(srv.Addr(), ns)
		if err != nil {
			t.Fatalf("dial %s: %v", ns, err)
		}
		tx, err := sess.BeginTxn(OLAP)
		if err != nil {
			t.Fatalf("%s begin: %v", ns, err)
		}
		if tx.SnapshotTS() == 0 {
			t.Errorf("%s remote SnapshotTS = 0", ns)
		}
		if got, err := tx.Get("kv", "v", 0); err != nil || got != want {
			t.Errorf("%s v[0] = %d, %v; want %d", ns, got, err, want)
		}
		if err := tx.Abort(); err != nil {
			t.Fatalf("%s abort: %v", ns, err)
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("%s close: %v", ns, err)
		}
	}

	// The front's Close leaves the registered databases usable.
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if _, err := Dial(srv.Addr(), "alpha"); err == nil {
		t.Fatal("dial after server Close succeeded")
	}
}

// TestReplicaReportsStalenessFromOpen: the staleness contract starts
// at Open, not at the first heartbeat — a freshly bootstrapped replica
// must already report a live connection and the primary's watermark
// from the welcome frame (caught by external-consumer verification:
// both read as zero until the 100ms heartbeat cadence first fired).
func TestReplicaReportsStalenessFromOpen(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	ts := commitWrite(t, p, "kv", "v", 0, 5)

	r := openReplicaOf(t, p.ServeAddr())
	st := r.Stats()
	if !st.ReplicaConnected {
		t.Error("replica not reported connected immediately after Open")
	}
	if st.ReplicaSourceTS < ts {
		t.Errorf("ReplicaSourceTS = %d immediately after Open, want >= %d", st.ReplicaSourceTS, ts)
	}
}
