package ankerdb_test

// Go benchmarks over the public facade. CI runs these with
// -benchtime 1x as a smoke layer and archives the output next to the
// ankerbench JSON artifact; locally they are the quickest way to see
// the effect of commit sharding (compare the shards=1 and
// shards=GOMAXPROCS variants of the parallel benchmarks).

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"ankerdb"
)

const (
	benchRows = 8192
	benchCols = 8
)

func openBenchDB(b *testing.B, shards int, opts ...ankerdb.Option) *ankerdb.DB {
	b.Helper()
	schema := ankerdb.Schema{Table: "bench"}
	for c := 0; c < benchCols; c++ {
		schema.Columns = append(schema.Columns,
			ankerdb.ColumnDef{Name: fmt.Sprintf("c%d", c), Type: ankerdb.Int64})
	}
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithCommitShards(shards),
		ankerdb.WithSnapshotRefresh(0),
		ankerdb.WithInitialSchema(schema, benchRows),
	}, opts...)...)
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	vals := make([]int64, benchRows)
	for i := range vals {
		vals[i] = int64(i)
	}
	for c := 0; c < benchCols; c++ {
		if err := db.Load("bench", fmt.Sprintf("c%d", c), vals); err != nil {
			b.Fatalf("Load: %v", err)
		}
	}
	return db
}

func benchShardCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1, 2}
}

// BenchmarkCommit measures the single-writer commit path: 8 writes per
// transaction into one column, no contention, no snapshots.
func BenchmarkCommit(b *testing.B) {
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := openBenchDB(b, shards)
			defer db.Close()
			rnd := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := db.Begin(ankerdb.OLTP)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 8; k++ {
					if err := w.Set("bench", "c0", rnd.Intn(benchRows), int64(k)); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCommitParallel measures the sharded group-commit pipeline
// under parallel writers with disjoint column footprints — the
// Figure 11 experiment as a Go benchmark.
func BenchmarkCommitParallel(b *testing.B) {
	for _, shards := range benchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := openBenchDB(b, shards)
			defer db.Close()
			var nextWriter atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				writer := int(nextWriter.Add(1) - 1)
				col := fmt.Sprintf("c%d", writer%benchCols)
				rnd := rand.New(rand.NewSource(int64(writer) + 1))
				for pb.Next() {
					w, err := db.Begin(ankerdb.OLTP)
					if err != nil {
						b.Fatal(err)
					}
					for k := 0; k < 8; k++ {
						if err := w.Set("bench", col, rnd.Intn(benchRows), int64(k)); err != nil {
							b.Fatal(err)
						}
					}
					if err := w.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := db.Stats()
			b.ReportMetric(float64(st.CommitBatches), "batches")
		})
	}
}

// BenchmarkOLAPScan measures a snapshot scan over one column while the
// generation is warm (snapshot already created).
func BenchmarkOLAPScan(b *testing.B) {
	for _, strat := range strategies {
		b.Run(string(strat), func(b *testing.B) {
			db := openBenchDB(b, 1, ankerdb.WithSnapshotStrategy(strat), ankerdb.WithSnapshotRefresh(16))
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := db.Begin(ankerdb.OLAP)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.Aggregate("bench", "c0", ankerdb.Sum); err != nil {
					b.Fatal(err)
				}
				if err := r.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
