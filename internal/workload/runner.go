package workload

import (
	"errors"

	"ankerdb"
)

// Result reports what one applied op actually did, with every
// placement resolved: which rows the inserts landed in, which row a
// DeleteOldest removed, and the values the reads returned. A caller
// keeping an oracle of expected database state folds the op together
// with its Result — the op alone does not say where inserts went.
type Result struct {
	Committed bool    // false: the transaction aborted on a write-write conflict
	Inserted  []int   // row index per op.Inserts entry
	Deleted   int     // row removed by DeleteOldest; -1 if none
	ReadVals  []int64 // value per op.Reads entry
}

// Runner applies ops to one table of a database, tracking the rows its
// own inserts created so DeleteOldest can retire them. Not safe for
// concurrent use — give each worker its own Runner (their inserts land
// in distinct rows, so runners only ever delete their own).
type Runner struct {
	DB    *ankerdb.DB
	Table string
	Cols  []string // must match the table's Int64 columns, in order

	live []int // rows inserted and not yet deleted, oldest first
}

// Apply runs op inside a single transaction. A commit lost to a
// write-write conflict returns Result{Committed: false} and a nil
// error — contention is an expected outcome, not a failure. Any other
// error (including an injected fault surfacing through the store)
// aborts the transaction and is returned as-is; the caller decides
// whether it is a crash signal or a test failure.
func (r *Runner) Apply(op Op) (Result, error) {
	res := Result{Deleted: -1}
	txn, err := r.DB.Begin(ankerdb.OLTP)
	if err != nil {
		return res, err
	}
	for _, c := range op.Reads {
		v, err := txn.Get(r.Table, c.Col, c.Row)
		if err != nil {
			_ = txn.Abort()
			return res, err
		}
		res.ReadVals = append(res.ReadVals, v)
	}
	for _, w := range op.Writes {
		if err := txn.Set(r.Table, w.Col, w.Row, w.Val); err != nil {
			_ = txn.Abort()
			return res, err
		}
	}
	for _, vals := range op.Inserts {
		m := make(map[string]any, len(r.Cols))
		for i, col := range r.Cols {
			m[col] = vals[i]
		}
		row, err := txn.Insert(r.Table, m)
		if err != nil {
			_ = txn.Abort()
			return res, err
		}
		res.Inserted = append(res.Inserted, row)
	}
	if op.DeleteOldest && len(r.live) > 0 {
		if err := txn.Delete(r.Table, r.live[0]); err != nil {
			_ = txn.Abort()
			return res, err
		}
		res.Deleted = r.live[0]
	}
	if err := txn.Commit(); err != nil {
		if errors.Is(err, ankerdb.ErrConflict) {
			return res, nil
		}
		return res, err
	}
	res.Committed = true
	r.live = append(r.live, res.Inserted...)
	if res.Deleted >= 0 {
		r.live = r.live[1:]
	}
	return res, nil
}

// Live returns the runner's inserted-and-not-deleted rows, oldest
// first. The slice is the runner's own — do not mutate it.
func (r *Runner) Live() []int { return r.live }
