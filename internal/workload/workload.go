// Package workload generates deterministic mixed OLTP/OLAP operation
// streams — the YCSB-style zipfian read/update mixes and the
// new-order/payment-style multi-row transactions of the paper's
// Section 5 evaluation. The same generators serve two masters:
// ankerbench's -bench mixed sweep (throughput per profile) and the
// fault-injection harness (a seeded stream it can replay op-for-op
// against a recovered database). Everything downstream of the seed is
// deterministic: a Gen with the same profile, seed and row domain
// emits byte-identical op sequences.
package workload

import "math/rand"

// Profile names an operation mix.
type Profile string

const (
	// YCSBA is the update-heavy YCSB-A mix: 50% point reads, 50%
	// single-cell updates, rows drawn zipfian.
	YCSBA Profile = "ycsb-a"
	// YCSBB is the read-heavy YCSB-B mix: 95% point reads, 5%
	// single-cell updates, rows drawn zipfian.
	YCSBB Profile = "ycsb-b"
	// TPCC is a new-order/payment-style transactional mix: multi-row
	// transactions that insert order rows, update zipfian-hot "stock"
	// rows, read account state, and occasionally deliver (delete) the
	// oldest open order.
	TPCC Profile = "tpcc"
)

// Profiles lists every defined profile, in a fixed order.
var Profiles = []Profile{YCSBA, YCSBB, TPCC}

// Valid reports whether p names a defined profile.
func (p Profile) Valid() bool {
	for _, q := range Profiles {
		if p == q {
			return true
		}
	}
	return false
}

// Cell addresses one value for a point read.
type Cell struct {
	Col string
	Row int
}

// Write stages one cell update.
type Write struct {
	Col string
	Row int
	Val int64
}

// Op is one transaction's worth of work. All fields may be combined;
// a Runner applies them inside a single transaction in a fixed order
// (reads, writes, inserts, delete) so replaying an op stream is
// deterministic.
type Op struct {
	Reads        []Cell    // point reads
	Writes       []Write   // updates to rows in the initial domain
	Inserts      [][]int64 // new rows, one value per table column
	DeleteOldest bool      // delete the runner's oldest live inserted row
}

// Gen deterministically generates ops for one profile. Not safe for
// concurrent use — give each worker its own Gen with its own seed.
type Gen struct {
	profile Profile
	cols    []string
	rnd     *rand.Rand
	zipf    *rand.Zipf
	next    int64 // monotone value sequence: every written value is unique
}

// zipfS is the zipfian skew parameter. rand.Zipf's s=1.3 concentrates
// roughly half the draws on the hottest ~1% of rows, the contention
// regime the YCSB mixes are meant to exercise.
const zipfS = 1.3

// NewGen returns a generator for profile over a table with the given
// columns and rows initial rows. Identical arguments yield identical
// op streams.
func NewGen(profile Profile, seed int64, cols []string, rows int) *Gen {
	rnd := rand.New(rand.NewSource(seed))
	return &Gen{
		profile: profile,
		cols:    cols,
		rnd:     rnd,
		zipf:    rand.NewZipf(rnd, zipfS, 1, uint64(rows-1)),
		next:    seed * 1e9, // disjoint value ranges per seed
	}
}

// Next returns the next op in the stream.
func (g *Gen) Next() Op {
	switch g.profile {
	case YCSBB:
		if g.rnd.Intn(100) < 95 {
			return Op{Reads: []Cell{g.cell()}}
		}
		return Op{Writes: []Write{g.write()}}
	case TPCC:
		return g.tpccOp()
	default: // YCSBA
		if g.rnd.Intn(2) == 0 {
			return Op{Reads: []Cell{g.cell()}}
		}
		return Op{Writes: []Write{g.write()}}
	}
}

// tpccOp draws from the TPC-C-inspired mix: 45% new-order, 43%
// payment, 8% order-status, 4% delivery.
func (g *Gen) tpccOp() Op {
	switch p := g.rnd.Intn(100); {
	case p < 45: // new-order: insert an order row, update 4 hot stock rows
		row := make([]int64, len(g.cols))
		for i := range row {
			row[i] = g.val()
		}
		op := Op{Inserts: [][]int64{row}}
		for i := 0; i < 4; i++ {
			op.Writes = append(op.Writes, g.write())
		}
		return op
	case p < 88: // payment: update a balance, read two accounts
		return Op{
			Writes: []Write{g.write()},
			Reads:  []Cell{g.cell(), g.cell()},
		}
	case p < 96: // order-status: read-only
		return Op{Reads: []Cell{g.cell(), g.cell(), g.cell()}}
	default: // delivery: retire the oldest open order
		return Op{DeleteOldest: true}
	}
}

func (g *Gen) cell() Cell {
	return Cell{Col: g.cols[g.rnd.Intn(len(g.cols))], Row: int(g.zipf.Uint64())}
}

func (g *Gen) write() Write {
	return Write{Col: g.cols[g.rnd.Intn(len(g.cols))], Row: int(g.zipf.Uint64()), Val: g.val()}
}

func (g *Gen) val() int64 {
	g.next++
	return g.next
}
