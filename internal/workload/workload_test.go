package workload

import (
	"reflect"
	"testing"

	"ankerdb"
)

// TestGenDeterministic: two generators with identical arguments emit
// identical op streams — the property the fault harness's replay and
// the seeded bench sweeps both stand on.
func TestGenDeterministic(t *testing.T) {
	cols := []string{"c0", "c1", "c2"}
	for _, p := range Profiles {
		a := NewGen(p, 42, cols, 1024)
		b := NewGen(p, 42, cols, 1024)
		for i := 0; i < 500; i++ {
			oa, ob := a.Next(), b.Next()
			if !reflect.DeepEqual(oa, ob) {
				t.Fatalf("%s: op %d diverged: %+v vs %+v", p, i, oa, ob)
			}
		}
		c := NewGen(p, 43, cols, 1024)
		same := true
		for i := 0; i < 500; i++ {
			if !reflect.DeepEqual(a.Next(), c.Next()) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 42 and 43 produced identical 500-op streams", p)
		}
	}
}

// TestTPCCMix sanity-checks the op shapes: new-order inserts carry one
// value per column, and the stream contains all four op kinds.
func TestTPCCMix(t *testing.T) {
	cols := []string{"c0", "c1"}
	g := NewGen(TPCC, 7, cols, 256)
	var inserts, deletes, readOnly, payments int
	for i := 0; i < 1000; i++ {
		op := g.Next()
		switch {
		case len(op.Inserts) > 0:
			inserts++
			if len(op.Inserts[0]) != len(cols) {
				t.Fatalf("insert has %d values, want %d", len(op.Inserts[0]), len(cols))
			}
			if len(op.Writes) != 4 {
				t.Fatalf("new-order has %d stock writes, want 4", len(op.Writes))
			}
		case op.DeleteOldest:
			deletes++
		case len(op.Writes) == 0:
			readOnly++
		default:
			payments++
		}
	}
	for name, n := range map[string]int{
		"new-order": inserts, "delivery": deletes, "order-status": readOnly, "payment": payments,
	} {
		if n == 0 {
			t.Fatalf("1000 TPCC ops produced no %s transactions", name)
		}
	}
}

// TestRunnerApply drives a runner against a live database and checks
// the resolved results against an oracle of expected state.
func TestRunnerApply(t *testing.T) {
	cols := []string{"c0", "c1"}
	schema := ankerdb.Schema{Table: "bench"}
	for _, c := range cols {
		schema.Columns = append(schema.Columns, ankerdb.ColumnDef{Name: c, Type: ankerdb.Int64})
	}
	const rows = 128
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.Physical),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(schema, rows),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	oracle := map[Cell]int64{} // written cells only; zero-valued cells stay absent
	g := NewGen(TPCC, 11, cols, rows)
	r := &Runner{DB: db, Table: "bench", Cols: cols}
	deleted := map[int]bool{}
	for i := 0; i < 400; i++ {
		op := g.Next()
		res, err := r.Apply(op)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !res.Committed {
			t.Fatalf("op %d: conflict with a single writer", i)
		}
		for j, c := range op.Reads {
			want := oracle[c] // zero for never-written cells
			if res.ReadVals[j] != want {
				t.Fatalf("op %d: read %v = %d, want %d", i, c, res.ReadVals[j], want)
			}
		}
		for _, w := range op.Writes {
			oracle[Cell{w.Col, w.Row}] = w.Val
		}
		for j, row := range res.Inserted {
			for k, col := range cols {
				oracle[Cell{col, row}] = op.Inserts[j][k]
			}
		}
		if res.Deleted >= 0 {
			deleted[res.Deleted] = true
		}
	}
	// Deleted rows must be gone, surviving inserts must be readable.
	txn, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort()
	for row := range deleted {
		if _, err := txn.Get("bench", "c0", row); err == nil {
			t.Fatalf("deleted row %d still visible", row)
		}
	}
	for _, row := range r.Live() {
		v, err := txn.Get("bench", "c0", row)
		if err != nil {
			t.Fatalf("live inserted row %d: %v", row, err)
		}
		if want := oracle[Cell{"c0", row}]; v != want {
			t.Fatalf("live row %d = %d, want %d", row, v, want)
		}
	}
}
