package query

// RowID is the pseudo-column name resolving to the physical row index
// of the scanned (probe) table. It can be selected and filtered like
// any column of a non-aggregating query.
const RowID = "#row"

// Table is the scan surface the engine executes against: one table of
// one pinned snapshot. Implementations must serve a fixed timestamp —
// every method must keep answering consistently while a query runs,
// however many writers commit concurrently.
type Table interface {
	// Name returns the table name (used for qualified column
	// resolution, "table.col").
	Name() string

	// Columns returns the column names in schema order.
	Columns() []string

	// IsString reports whether column col holds dictionary codes.
	IsString(col int) bool

	// Encode resolves s to its dictionary code in column col; ok is
	// false when s was never encoded (no stored row can hold it).
	Encode(col int, s string) (int64, bool)

	// Decode resolves a dictionary code of column col to its string.
	Decode(col int, code int64) string

	// Prepare is called once before execution with every column index
	// the query reads, letting implementations pin per-column snapshot
	// resources and fix the scan bound Rows reports.
	Prepare(cols []int) error

	// Rows returns the scan bound: every visible row lies below it.
	// Valid only after Prepare.
	Rows() int

	// NumRows returns the snapshot-consistent visible row count — the
	// engine's cardinality estimate, expected in O(log) time or better.
	NumRows() int64

	// BlockRows is the zone-map granularity in rows.
	BlockRows() int

	// Zone returns the min/max value bounds of block blk (rows
	// [blk*BlockRows, (blk+1)*BlockRows)) of column col; ok is false
	// when no bound is known, in which case the block must be scanned.
	// Every value a reader of this snapshot can resolve inside the
	// block must lie within the returned bounds.
	Zone(col, blk int) (lo, hi int64, ok bool)

	// ReadBlock scans the visible rows of [lo, hi), filling rowIDs and
	// out[i] (the values of cols[i]) densely, and returns the number of
	// visible rows. Caller-provided slices hold at least hi-lo entries.
	ReadBlock(lo, hi int, cols []int, rowIDs []int64, out [][]int64) (int, error)
}

// IndexedTable is an optional Table extension: implementations that
// maintain secondary indexes can answer a single-column range probe
// without scanning. The engine type-asserts the probe table and, when
// a scan conjunct is the interval [lo, hi] on one probe column, offers
// it to ProbeIndex; a served probe replaces the block scan with a
// direct read of the returned rows (the full scan predicate is still
// applied, so a probe may over-approximate but must never miss a
// matching visible row).
type IndexedTable interface {
	Table

	// ProbeIndex returns the visible rows (strictly ascending) whose
	// col value lies in [lo, hi] at the pinned snapshot. ok is false
	// when no index can serve the probe — no index on col, an
	// equality-only index asked a true range, a snapshot below the
	// index's build floor, or an estimated result too large for the
	// probe to beat the scan. Called after Prepare, before ReadRows.
	ProbeIndex(col int, lo, hi int64) (rows []int64, ok bool)

	// ReadRows resolves cols' snapshot values of the given ascending
	// visible rows: out[i] receives the values of cols[i], parallel to
	// rows. Slices hold at least len(rows) entries.
	ReadRows(rows []int64, cols []int, out [][]int64) error
}

// Batch is one unit of streamed rows between operators: column-major,
// one slice per pipeline schema slot. Slots not yet produced (a join's
// build columns before the join ran) are nil. Operators own their
// output batch and reuse it across Next calls; consumers must copy
// what they retain.
type Batch struct {
	Morsel int       // morsel the rows came from (ordering results)
	N      int       // valid rows in each non-nil column
	Cols   [][]int64 // indexed by schema slot
}
