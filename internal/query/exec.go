// Package query is ankerdb's streaming query engine. A query executes
// against pinned snapshot state exposed through the Table interface:
// composable operators (scan, filter, hash join, group-by/aggregate)
// stream column-major batches through per-worker pipelines, morsels of
// the probe table are dispatched to workers through one atomic
// counter, and zone maps prune blocks whose value bounds cannot
// satisfy the scan predicate before a single row is read. Results
// merge deterministically: the same query returns the same rows in
// the same order whether it ran on one worker or many.
package query

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// morselBlocks is the number of zone-map blocks per morsel: large
// enough to amortize dispatch, small enough to balance skew.
const morselBlocks = 4

// ExecStats describes how one query executed, in particular how much
// scan work zone-map pruning avoided. Block counts cover the probe
// scan; build-side scans of joins are not included.
type ExecStats struct {
	Morsels        int64 // probe morsels dispatched
	MorselsSkipped int64 // morsels whose every block was pruned
	BlocksScanned  int64 // probe blocks read
	BlocksSkipped  int64 // probe blocks pruned by zone maps
	RowsScanned    int64 // rows of scanned probe blocks, or rows read via index
	RowsEmitted    int64 // rows in the final result
	IndexProbes    int64 // secondary-index probes that replaced the probe scan

	// Operators is the per-operator row breakdown in pipeline order:
	// scan (or index-scan), the scan filter, each join, the post-join
	// filter, and — for aggregating queries — a final "aggregate"
	// pseudo-operator. RowsIn chains from the previous operator's
	// RowsOut, so RowsIn - RowsOut is the rows an operator dropped.
	Operators []OpStat
	// IndexRouted reports whether a secondary index served the probe
	// scan (the index-scan path) instead of the morsel scan.
	IndexRouted bool
}

// OpStat is one operator's row flow within a query execution.
type OpStat struct {
	Op      string // operator label: scan, index-scan, filter, join(t), post-filter, aggregate
	RowsIn  int64  // rows entering the operator
	RowsOut int64  // rows it passed downstream
}

func (s *ExecStats) add(o *ExecStats) {
	s.Morsels += o.Morsels
	s.MorselsSkipped += o.MorselsSkipped
	s.BlocksScanned += o.BlocksScanned
	s.BlocksSkipped += o.BlocksSkipped
	s.RowsScanned += o.RowsScanned
	s.RowsEmitted += o.RowsEmitted
	s.IndexProbes += o.IndexProbes
	s.IndexRouted = s.IndexRouted || o.IndexRouted
	switch {
	case len(s.Operators) == 0:
		// Alias rather than copy: per-worker stats are discarded after
		// the merge, so the first worker's slice becomes the result's.
		s.Operators = o.Operators
	case len(s.Operators) == len(o.Operators):
		for i := range s.Operators {
			s.Operators[i].RowsIn += o.Operators[i].RowsIn
			s.Operators[i].RowsOut += o.Operators[i].RowsOut
		}
	}
}

// opNames returns the operator labels of the bound pipeline, in the
// order worker builds it. Every worker shares the same shape, so
// per-worker Operators slices merge element-wise.
func (p *plan) opNames() []string {
	names := make([]string, 0, 3+len(p.joins))
	if p.useIdx {
		names = append(names, "index-scan")
	} else {
		names = append(names, "scan")
	}
	if p.scanPred != nil {
		names = append(names, "filter")
	}
	for _, j := range p.joins {
		names = append(names, "join("+j.build.Name()+")")
	}
	if p.postPred != nil {
		names = append(names, "post-filter")
	}
	return names
}

// countOp counts the rows an operator stage emits into its OpStat.
// It is the only stats hook in the pipeline: one add per batch.
type countOp struct {
	child Op
	st    *OpStat
}

func (c *countOp) Next() (*Batch, error) {
	b, err := c.child.Next()
	if b != nil {
		c.st.RowsOut += int64(b.N)
	}
	return b, err
}

// srcProbe marks a slot read from the probe (scanned) table; any other
// src is the index of the join whose build side produces it.
const srcProbe = -1

// slotRef is one column of the pipeline schema: where a slot's values
// come from.
type slotRef struct {
	name  string // plain column name (RowID for the row pseudo-column)
	src   int    // srcProbe or join index
	col   int    // column index in the source table, -1 for RowID
	table Table
	isStr bool
}

// joinPlan is one inner equi hash join: which probe-side slot matches
// which build-side column, which schema slots the build side fills,
// and the materialized build state shared read-only by every worker.
type joinPlan struct {
	build       Table
	probeKey    string
	buildKey    string
	probeSlot   int        // resolved probe-side key slot
	buildKeyCol int        // resolved build-side key column
	slots       []int      // schema slots this join fills
	buildCols   []int      // their build column indices, parallel to slots
	pred        *boundPred // build-only conjuncts, applied while building

	ht   map[int64][]int32 // build key -> materialized build row indices
	rows [][]int64         // materialized values, parallel to slots
	n    int32
}

// plan is a fully bound query.
type plan struct {
	probe      Table
	slots      []slotRef
	joins      []*joinPlan
	scanPred   *boundPred // probe-only conjuncts: prune + filter at scan
	postPred   *boundPred // conjuncts spanning probe and build slots
	groupSlots []int
	aggs       []boundAgg
	outSlots   []int // projection, when not aggregating
	morsels    int
	limit      int
	noPrune    bool

	idxRows []int64 // index-probe result replacing the scan; nil = scan
	useIdx  bool    // idxRows is authoritative (it may be empty)
}

// Builder assembles a query against a probe table. Methods return the
// builder for chaining; errors surface from Run.
type Builder struct {
	probe    Table
	preds    []Pred
	joins    []*joinPlan
	groupBy  []string
	aggs     []AggSpec
	sel      []string
	morsels  int
	limit    int
	noPrune  bool
	firstErr error
}

// New starts a query scanning t.
func New(t Table) *Builder {
	b := &Builder{probe: t}
	if t == nil {
		b.fail(errors.New("query: nil table"))
	}
	return b
}

func (b *Builder) fail(err error) *Builder {
	if b.firstErr == nil {
		b.firstErr = err
	}
	return b
}

// Where restricts the query to rows matching p; multiple calls AND.
func (b *Builder) Where(p Pred) *Builder {
	b.preds = append(b.preds, p)
	return b
}

// Join adds an inner equi join: rows where probeCol (resolved like any
// referenced column, so it may come from an earlier join) equals
// buildCol of build. The build side is hashed once; the probe side
// streams.
func (b *Builder) Join(build Table, probeCol, buildCol string) *Builder {
	if build == nil {
		return b.fail(errors.New("query: Join with nil table"))
	}
	b.joins = append(b.joins, &joinPlan{build: build, probeKey: probeCol, buildKey: buildCol})
	return b
}

// GroupBy groups the aggregation by the given columns.
func (b *Builder) GroupBy(cols ...string) *Builder {
	b.groupBy = append(b.groupBy, cols...)
	return b
}

// Aggregate makes the query aggregating, computing the given specs
// (per group when GroupBy was set, else over all qualifying rows).
func (b *Builder) Aggregate(aggs ...AggSpec) *Builder {
	b.aggs = append(b.aggs, aggs...)
	return b
}

// Select projects the named columns, in order. Without it a
// non-aggregating query returns every probe column followed by every
// joined table's columns.
func (b *Builder) Select(cols ...string) *Builder {
	b.sel = append(b.sel, cols...)
	return b
}

// Morsels caps the number of parallel workers; default GOMAXPROCS.
func (b *Builder) Morsels(n int) *Builder {
	b.morsels = n
	return b
}

// Limit caps the result to its first n rows — the same n rows the
// unlimited query would return first, so the result stays
// deterministic. Non-aggregating queries stop dispatching morsels once
// a contiguous prefix of merged morsels holds n rows; aggregating
// queries still see every row (an aggregate needs them) and only trim
// the laid-out groups.
func (b *Builder) Limit(n int) *Builder {
	if n <= 0 {
		return b.fail(fmt.Errorf("query: Limit(%d), want a positive row count", n))
	}
	b.limit = n
	return b
}

// WithoutPruning disables zone-map pruning (every block is scanned)
// and index probes (the scan path runs even over an indexed column);
// useful to verify both against the plain scan and to measure their
// benefit.
func (b *Builder) WithoutPruning() *Builder {
	b.noPrune = true
	return b
}

// Run binds, executes and merges the query.
func (b *Builder) Run() (*Result, error) {
	if b.firstErr != nil {
		return nil, b.firstErr
	}
	p, err := b.bind()
	if err != nil {
		return nil, err
	}
	return p.run()
}

// binder resolves column names to schema slots during bind, adding
// slots on first reference.
type binder struct {
	p     *plan
	known map[[2]int]int // (src, col) -> slot
}

// resolve finds name in the probe table or, failing that, each join's
// build table in order. Qualified "table.col" names pick the table
// explicitly.
func (bd *binder) resolve(name string) (int, error) {
	qual := ""
	if i := strings.IndexByte(name, '.'); i > 0 && name != RowID {
		qual, name = name[:i], name[i+1:]
	}
	if name == RowID && qual == "" {
		return bd.add(slotRef{name: RowID, src: srcProbe, col: -1, table: bd.p.probe}), nil
	}
	find := func(t Table, src int) (int, bool) {
		for ci, cn := range t.Columns() {
			if cn == name {
				return bd.add(slotRef{name: name, src: src, col: ci, table: t, isStr: t.IsString(ci)}), true
			}
		}
		return 0, false
	}
	if qual == "" || qual == bd.p.probe.Name() {
		if s, ok := find(bd.p.probe, srcProbe); ok {
			return s, nil
		}
	}
	for ji, j := range bd.p.joins {
		if qual != "" && qual != j.build.Name() {
			continue
		}
		if s, ok := find(j.build, ji); ok {
			return s, nil
		}
	}
	if qual != "" {
		return 0, fmt.Errorf("query: unknown column %s.%s", qual, name)
	}
	return 0, fmt.Errorf("query: unknown column %q", name)
}

func (bd *binder) add(r slotRef) int {
	key := [2]int{r.src, r.col}
	if s, ok := bd.known[key]; ok {
		return s
	}
	s := len(bd.p.slots)
	bd.p.slots = append(bd.p.slots, r)
	bd.known[key] = s
	return s
}

func (bd *binder) predColumn(name string) (int, bool, error) {
	s, err := bd.resolve(name)
	if err != nil {
		return 0, false, err
	}
	return s, bd.p.slots[s].isStr, nil
}

func (bd *binder) encodeSlot(slot int, s string) (int64, bool) {
	r := bd.p.slots[slot]
	return r.table.Encode(r.col, s)
}

// bind resolves every referenced name, routes predicate conjuncts to
// the scan, a join's build side, or the post-join filter, and fixes
// the output schema.
func (b *Builder) bind() (*plan, error) {
	p := &plan{probe: b.probe, joins: b.joins, morsels: b.morsels, limit: b.limit, noPrune: b.noPrune}
	if p.morsels < 1 {
		p.morsels = runtime.GOMAXPROCS(0)
	}
	bd := &binder{p: p, known: map[[2]int]int{}}

	// Join keys first: a probe key may come from an earlier join's
	// build side, so keys bind in join order.
	for ji, j := range p.joins {
		slot, err := bd.resolve(j.probeKey)
		if err != nil {
			return nil, err
		}
		if p.slots[slot].src >= ji {
			return nil, fmt.Errorf("query: join key %q not available before joining %q", j.probeKey, j.build.Name())
		}
		j.probeSlot = slot
		j.buildKeyCol = -1
		for ci, cn := range j.build.Columns() {
			if cn == j.buildKey {
				j.buildKeyCol = ci
				break
			}
		}
		if j.buildKeyCol < 0 {
			return nil, fmt.Errorf("query: unknown join column %s.%s", j.build.Name(), j.buildKey)
		}
		if p.slots[slot].isStr != j.build.IsString(j.buildKeyCol) {
			return nil, fmt.Errorf("query: join key type mismatch between %q and %s.%s", j.probeKey, j.build.Name(), j.buildKey)
		}
	}

	// Predicates: bind each conjunct separately and route it to the
	// earliest operator that has all its inputs.
	var scanKids, postKids []boundPred
	joinKids := make([][]boundPred, len(p.joins))
	for _, pr := range b.preds {
		for _, c := range pr.conjuncts() {
			bc, err := c.bind(bd, false)
			if err != nil {
				return nil, err
			}
			src, mixed, first := srcProbe, false, true
			bc.slots(func(slot int) {
				s := p.slots[slot].src
				if first {
					src, first = s, false
				} else if s != src {
					mixed = true
				}
			})
			switch {
			case mixed:
				postKids = append(postKids, bc)
			case src == srcProbe:
				scanKids = append(scanKids, bc)
			default:
				joinKids[src] = append(joinKids[src], bc)
			}
		}
	}
	if len(scanKids) > 0 {
		p.scanPred = &boundPred{op: pAnd, kids: scanKids}
	}
	if len(postKids) > 0 {
		p.postPred = &boundPred{op: pAnd, kids: postKids}
	}
	for ji, kids := range joinKids {
		if len(kids) > 0 {
			p.joins[ji].pred = &boundPred{op: pAnd, kids: kids}
		}
	}

	// Output schema.
	aggregating := len(b.aggs) > 0
	if len(b.groupBy) > 0 && !aggregating {
		return nil, errors.New("query: GroupBy requires Aggregate")
	}
	if aggregating && len(b.sel) > 0 {
		return nil, errors.New("query: Select and Aggregate are exclusive; aggregated output is GroupBy columns then aggregates")
	}
	if aggregating {
		for _, g := range b.groupBy {
			s, err := bd.resolve(g)
			if err != nil {
				return nil, err
			}
			p.groupSlots = append(p.groupSlots, s)
		}
		for _, a := range b.aggs {
			ba := boundAgg{kind: a.Kind, slot: -1}
			if a.Kind != AggCount {
				s, err := bd.resolve(a.Col)
				if err != nil {
					return nil, err
				}
				if p.slots[s].isStr {
					return nil, fmt.Errorf("query: aggregate over VARCHAR column %q", a.Col)
				}
				ba.slot = s
			}
			p.aggs = append(p.aggs, ba)
		}
	} else {
		sel := b.sel
		if len(sel) == 0 {
			sel = append(sel, b.probe.Columns()...)
			for _, j := range p.joins {
				for _, cn := range j.build.Columns() {
					sel = append(sel, j.build.Name()+"."+cn)
				}
			}
		}
		for _, name := range sel {
			s, err := bd.resolve(name)
			if err != nil {
				return nil, err
			}
			p.outSlots = append(p.outSlots, s)
		}
	}

	// Fix each join's build-side slot set now that all slots exist.
	for ji, j := range p.joins {
		for s, r := range p.slots {
			if r.src == ji {
				j.slots = append(j.slots, s)
				j.buildCols = append(j.buildCols, r.col)
			}
		}
	}
	return p, nil
}

// run executes a bound plan: prepare snapshots, materialize join build
// sides, fan morsels out to workers, merge.
func (p *plan) run() (*Result, error) {
	// A bare COUNT needs no scan at all: the visibility log answers it
	// in O(log n).
	if p.isBareCount() {
		if err := p.probe.Prepare(nil); err != nil {
			return nil, err
		}
		r := &Result{
			cols:    []string{"count()"},
			isFloat: []bool{false},
			strDec:  []func(int64) string{nil},
			data:    [][]int64{{p.probe.NumRows()}},
		}
		r.Stats.RowsEmitted = 1
		return r, nil
	}

	var probeCols []int
	seen := map[int]bool{}
	for _, r := range p.slots {
		if r.src == srcProbe && r.col >= 0 && !seen[r.col] {
			seen[r.col] = true
			probeCols = append(probeCols, r.col)
		}
	}
	if err := p.probe.Prepare(probeCols); err != nil {
		return nil, err
	}
	for _, j := range p.joins {
		if err := p.buildJoin(j); err != nil {
			return nil, err
		}
	}
	p.routeIndex()

	bound := p.probe.Rows()
	morselRows := p.probe.BlockRows() * morselBlocks
	nM := (bound + morselRows - 1) / morselRows
	workers := p.morsels
	if workers > nM {
		workers = nM
	}
	if workers < 1 {
		workers = 1
	}

	aggregating := len(p.aggs) > 0
	var perMorsel [][][]int64
	aggsW := make([]*aggregator, workers)
	if aggregating {
		for i := range aggsW {
			aggsW[i] = newAggregator(p.groupSlots, p.aggs)
		}
	} else {
		perMorsel = make([][][]int64, nM)
	}
	var lim *limiter
	if p.limit > 0 && !aggregating {
		lim = newLimiter(int64(p.limit), nM)
	}

	opNames := p.opNames()
	var next atomic.Int64
	wstats := make([]ExecStats, workers)
	// One flat backing array holds every worker's per-operator stats;
	// full-capacity subslices keep a later append from crossing into the
	// next worker's stretch.
	nOps := len(opNames)
	opsFlat := make([]OpStat, workers*nOps)
	for wi := range wstats {
		ops := opsFlat[wi*nOps : (wi+1)*nOps : (wi+1)*nOps]
		for i, name := range opNames {
			ops[i].Op = name
		}
		wstats[wi].Operators = ops
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			errs[wi] = p.worker(&next, nM, morselRows, bound, &wstats[wi], aggsW[wi], perMorsel, lim)
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{}
	for i := range wstats {
		res.Stats.add(&wstats[i])
	}
	res.Stats.IndexRouted = p.useIdx
	if p.useIdx {
		res.Stats.IndexProbes++
	}
	if aggregating {
		p.finalizeAgg(res, aggsW)
	} else {
		p.finalizeRows(res, perMorsel)
	}
	if p.limit > 0 && res.Len() > p.limit {
		for i := range res.data {
			res.data[i] = res.data[i][:p.limit]
		}
	}
	res.Stats.RowsEmitted = int64(res.Len())

	// Chain RowsIn from the upstream RowsOut (the source's input is the
	// rows it read), then account the aggregation step, whose output is
	// the laid-out groups.
	ops := res.Stats.Operators
	for i := range ops {
		if i == 0 {
			ops[i].RowsIn = res.Stats.RowsScanned
		} else {
			ops[i].RowsIn = ops[i-1].RowsOut
		}
	}
	if aggregating {
		in := res.Stats.RowsScanned
		if len(ops) > 0 {
			in = ops[len(ops)-1].RowsOut
		}
		res.Stats.Operators = append(ops, OpStat{Op: "aggregate", RowsIn: in, RowsOut: res.Stats.RowsEmitted})
	}
	return res, nil
}

// routeIndex offers the scan conjuncts to the probe table's secondary
// indexes: the first interval leaf on a probe column an index agrees to
// serve replaces the morsel scan with a direct read of the probed rows.
// The full scan predicate still filters downstream, so serving one
// conjunct of several is enough; declining (selectivity, kind, build
// floor) is the table's call. WithoutPruning forces the scan path.
func (p *plan) routeIndex() {
	if p.noPrune || p.scanPred == nil {
		return
	}
	it, ok := p.probe.(IndexedTable)
	if !ok {
		return
	}
	for i := range p.scanPred.kids {
		k := &p.scanPred.kids[i]
		if k.op != pCmp || k.lo > k.hi {
			continue
		}
		if sl := p.slots[k.col]; sl.src != srcProbe || sl.col < 0 {
			continue
		}
		if rows, served := it.ProbeIndex(p.slots[k.col].col, k.lo, k.hi); served {
			p.idxRows, p.useIdx = rows, true
			return
		}
	}
}

// limiter coordinates early exit for Limit(n): sources stop claiming
// morsels once a contiguous prefix of finished morsels already holds n
// output rows — everything the result can need. Each morsel is
// finished exactly once, by the worker that claimed it (or by the
// source itself when the morsel surfaces no batch).
type limiter struct {
	n    int64
	stop atomic.Bool

	mu     sync.Mutex
	counts []int64
	done   []bool
	next   int   // first unfinished morsel
	acc    int64 // output rows in the finished contiguous prefix
}

func newLimiter(n int64, nM int) *limiter {
	return &limiter{n: n, counts: make([]int64, nM), done: make([]bool, nM)}
}

// finish records that morsel m produced rows output rows, advancing the
// contiguous-prefix watermark and flipping stop once it covers n rows.
func (l *limiter) finish(m int, rows int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counts[m], l.done[m] = rows, true
	for l.next < len(l.done) && l.done[l.next] {
		l.acc += l.counts[l.next]
		l.next++
		if l.acc >= l.n {
			l.stop.Store(true)
			return
		}
	}
}

// isBareCount reports whether the plan is COUNT(*) over the unfiltered
// probe table.
func (p *plan) isBareCount() bool {
	return len(p.joins) == 0 && p.scanPred == nil && p.postPred == nil &&
		len(p.groupSlots) == 0 && len(p.outSlots) == 0 &&
		len(p.aggs) == 1 && p.aggs[0].kind == AggCount
}

// worker runs one pipeline until the morsel dispatcher is exhausted.
// agg is nil for non-aggregating queries, in which case output rows
// land in perMorsel[morsel]; each morsel is claimed by exactly one
// worker, so slots of perMorsel are never written concurrently.
//
// With a limiter, every operator passes empty batches through instead
// of swallowing them, so the worker sees each claimed morsel surface
// at least once and can report its output count — a morsel's batches
// are consecutive within its worker, so a morsel-number change (or end
// of stream) marks the previous morsel finished.
func (p *plan) worker(next *atomic.Int64, nM, morselRows, bound int, st *ExecStats, agg *aggregator, perMorsel [][][]int64, lim *limiter) error {
	// st.Operators is pre-sized by run to the pipeline shape, so the
	// per-stage pointers stay valid for the whole execution. All the
	// worker's counting wrappers come from one array.
	oi := 0
	counts := make([]countOp, len(st.Operators))
	wrap := func(op Op) Op {
		c := &counts[oi]
		c.child, c.st = op, &st.Operators[oi]
		oi++
		return c
	}
	var op Op
	if p.useIdx {
		op = newIndexScanOp(p, next, nM, morselRows, st, lim)
	} else {
		op = newScanOp(p, next, nM, morselRows, bound, st, lim)
	}
	op = wrap(op)
	passEmpty := lim != nil
	if p.scanPred != nil {
		op = wrap(&filterOp{child: op, pred: p.scanPred, passEmpty: passEmpty})
	}
	for _, j := range p.joins {
		op = wrap(&joinOp{child: op, j: j, cap: morselRows, passEmpty: passEmpty})
	}
	if p.postPred != nil {
		op = wrap(&filterOp{child: op, pred: p.postPred, passEmpty: passEmpty})
	}
	cur, cnt := -1, int64(0)
	for {
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			if lim != nil && cur >= 0 {
				lim.finish(cur, cnt)
			}
			return nil
		}
		if lim != nil && b.Morsel != cur {
			if cur >= 0 {
				lim.finish(cur, cnt)
			}
			cur, cnt = b.Morsel, 0
		}
		cnt += int64(b.N)
		if b.N == 0 {
			continue
		}
		if agg != nil {
			agg.add(b)
			continue
		}
		cols := perMorsel[b.Morsel]
		if cols == nil {
			cols = make([][]int64, len(p.outSlots))
		}
		for i, slot := range p.outSlots {
			cols[i] = append(cols[i], b.Cols[slot][:b.N]...)
		}
		perMorsel[b.Morsel] = cols
	}
}

// buildJoin materializes a join's build side: scan the build table
// (block-pruned and filtered by its build-only conjuncts), hash the
// key column, and keep the referenced columns row-indexed.
func (p *plan) buildJoin(j *joinPlan) error {
	cols := append([]int(nil), j.buildCols...)
	keyPos := -1
	for i, c := range cols {
		if c == j.buildKeyCol {
			keyPos = i
			break
		}
	}
	if keyPos < 0 {
		keyPos = len(cols)
		cols = append(cols, j.buildKeyCol)
	}
	if err := j.build.Prepare(cols); err != nil {
		return err
	}
	bound := j.build.Rows()
	br := j.build.BlockRows()
	rowIDs := make([]int64, br)
	bufs := make([][]int64, len(cols))
	for i := range bufs {
		bufs[i] = make([]int64, br)
	}
	pos := map[int]int{} // schema slot -> buffer position
	for i, s := range j.slots {
		pos[s] = i
	}
	j.ht = map[int64][]int32{}
	j.rows = make([][]int64, len(j.slots))
	for blo := 0; blo < bound; blo += br {
		bhi := blo + br
		if bhi > bound {
			bhi = bound
		}
		if j.pred != nil && !p.noPrune {
			blk := blo / br
			if !j.pred.satisfiable(func(slot int) (int64, int64, bool) {
				i, ok := pos[slot]
				if !ok {
					return 0, 0, false
				}
				return j.build.Zone(j.buildCols[i], blk)
			}) {
				continue
			}
		}
		k, err := j.build.ReadBlock(blo, bhi, cols, rowIDs, bufs)
		if err != nil {
			return err
		}
		var ri int
		get := func(slot int) int64 { return bufs[pos[slot]][ri] }
		for ri = 0; ri < k; ri++ {
			if j.pred != nil && !j.pred.eval(get) {
				continue
			}
			key := bufs[keyPos][ri]
			j.ht[key] = append(j.ht[key], j.n)
			for i := range j.slots {
				j.rows[i] = append(j.rows[i], bufs[i][ri])
			}
			j.n++
		}
	}
	return nil
}

// outNames labels output columns: the plain column name, qualified by
// its table when another output column shares the name.
func (p *plan) outNames(slots []int) []string {
	count := map[string]int{}
	for _, s := range slots {
		count[p.slots[s].name]++
	}
	names := make([]string, len(slots))
	for i, s := range slots {
		r := p.slots[s]
		if count[r.name] > 1 && r.col >= 0 {
			names[i] = r.table.Name() + "." + r.name
		} else {
			names[i] = r.name
		}
	}
	return names
}

func (p *plan) decoderFor(slot int) func(int64) string {
	r := p.slots[slot]
	if !r.isStr {
		return nil
	}
	t, c := r.table, r.col
	return func(code int64) string { return t.Decode(c, code) }
}

// finalizeRows concatenates per-morsel output in morsel order.
func (p *plan) finalizeRows(res *Result, perMorsel [][][]int64) {
	res.cols = p.outNames(p.outSlots)
	res.isFloat = make([]bool, len(p.outSlots))
	res.strDec = make([]func(int64) string, len(p.outSlots))
	res.data = make([][]int64, len(p.outSlots))
	for i, slot := range p.outSlots {
		res.strDec[i] = p.decoderFor(slot)
	}
	for _, cols := range perMorsel {
		for i, c := range cols {
			res.data[i] = append(res.data[i], c...)
		}
	}
}

// finalizeAgg merges the per-worker aggregators and lays groups out
// sorted by key.
func (p *plan) finalizeAgg(res *Result, aggsW []*aggregator) {
	g := aggsW[0]
	for _, o := range aggsW[1:] {
		g.merge(o)
	}
	ng, na := len(p.groupSlots), len(p.aggs)
	res.cols = p.outNames(p.groupSlots)
	res.isFloat = make([]bool, ng+na)
	res.strDec = make([]func(int64) string, ng+na)
	res.data = make([][]int64, ng+na)
	for i, slot := range p.groupSlots {
		res.strDec[i] = p.decoderFor(slot)
	}
	for k, ba := range p.aggs {
		spec := AggSpec{Kind: ba.kind}
		if ba.slot >= 0 {
			spec.Col = p.slots[ba.slot].name
		}
		res.cols = append(res.cols, spec.label())
		res.isFloat[ng+k] = ba.kind == AggAvg
	}
	for _, ga := range g.groups() {
		for i, kv := range ga.keys {
			res.data[i] = append(res.data[i], kv)
		}
		for k := range p.aggs {
			res.data[ng+k] = append(res.data[ng+k], p.aggs[k].final(&ga.accs[k]))
		}
	}
}

// Result is a finished query: column-major data plus execution stats.
type Result struct {
	cols    []string
	isFloat []bool
	strDec  []func(int64) string
	data    [][]int64
	Stats   ExecStats
}

// Columns returns the output column names in order.
func (r *Result) Columns() []string { return r.cols }

// Len returns the number of result rows.
func (r *Result) Len() int {
	if len(r.data) == 0 {
		return 0
	}
	return len(r.data[0])
}

// Column returns the index of the named output column, or -1.
func (r *Result) Column(name string) int {
	for i, c := range r.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// At returns the integer value at (row, col).
func (r *Result) At(row, col int) int64 { return r.data[col][row] }

// Float returns the value at (row, col) as a float64: the stored
// float for Avg columns, a conversion otherwise.
func (r *Result) Float(row, col int) float64 {
	v := r.data[col][row]
	if r.isFloat[col] {
		return math.Float64frombits(uint64(v))
	}
	return float64(v)
}

// IsFloat reports whether col holds float64 bit patterns (Avg).
func (r *Result) IsFloat(col int) bool { return r.isFloat[col] }

// StringAt decodes the dictionary code at (row, col); empty for
// non-VARCHAR columns.
func (r *Result) StringAt(row, col int) string {
	if dec := r.strDec[col]; dec != nil {
		return dec(r.data[col][row])
	}
	return ""
}

// Ints returns col's backing values (shared, not a copy).
func (r *Result) Ints(col int) []int64 { return r.data[col] }
