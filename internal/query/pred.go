package query

import (
	"fmt"
	"math"
)

// Predicates are built as immutable trees of AND / OR / NOT over range
// leaves (every comparison is the interval [lo, hi] on one column) and
// string-equality leaves. Binding resolves column names against the
// plan's schema, encodes string leaves through the owning table's
// dictionary, and pushes negation down to the leaves (De Morgan; the
// negation of an interval is a union of at most two intervals), so the
// bound tree contains only AND, OR and interval leaves. That normal
// form makes zone-map pruning a recursive interval-intersection test.

type predOp uint8

const (
	pCmp predOp = iota // value of col in [lo, hi]
	pStrEq
	pAnd
	pOr
	pNot
)

// Pred is one node of a predicate tree. The zero Pred is invalid; use
// the constructors.
type Pred struct {
	op     predOp
	kids   []Pred
	col    string
	lo, hi int64
	str    string
}

// Eq matches rows whose col equals v.
func Eq(col string, v int64) Pred { return Pred{op: pCmp, col: col, lo: v, hi: v} }

// Ne matches rows whose col differs from v.
func Ne(col string, v int64) Pred { return Not(Eq(col, v)) }

// Lt matches rows with col < v.
func Lt(col string, v int64) Pred {
	if v == math.MinInt64 {
		return Pred{op: pCmp, col: col, lo: 1, hi: 0} // empty interval
	}
	return Pred{op: pCmp, col: col, lo: math.MinInt64, hi: v - 1}
}

// Le matches rows with col <= v.
func Le(col string, v int64) Pred { return Pred{op: pCmp, col: col, lo: math.MinInt64, hi: v} }

// Gt matches rows with col > v.
func Gt(col string, v int64) Pred {
	if v == math.MaxInt64 {
		return Pred{op: pCmp, col: col, lo: 1, hi: 0}
	}
	return Pred{op: pCmp, col: col, lo: v + 1, hi: math.MaxInt64}
}

// Ge matches rows with col >= v.
func Ge(col string, v int64) Pred { return Pred{op: pCmp, col: col, lo: v, hi: math.MaxInt64} }

// Between matches rows with col in [lo, hi].
func Between(col string, lo, hi int64) Pred { return Pred{op: pCmp, col: col, lo: lo, hi: hi} }

// EqString matches rows whose VARCHAR col equals s. The comparison
// binds to the column's dictionary code; a string the dictionary never
// encoded matches no row.
func EqString(col, s string) Pred { return Pred{op: pStrEq, col: col, str: s} }

// And matches rows satisfying every given predicate (vacuously all
// rows when empty).
func And(ps ...Pred) Pred { return Pred{op: pAnd, kids: ps} }

// Or matches rows satisfying any given predicate (no rows when empty).
func Or(ps ...Pred) Pred { return Pred{op: pOr, kids: ps} }

// Not matches rows the given predicate rejects.
func Not(p Pred) Pred { return Pred{op: pNot, kids: []Pred{p}} }

// columns calls fn with every column name the predicate references.
func (p Pred) columns(fn func(name string)) {
	switch p.op {
	case pCmp, pStrEq:
		fn(p.col)
	default:
		for _, k := range p.kids {
			k.columns(fn)
		}
	}
}

// conjuncts flattens nested ANDs into a list of top-level conjuncts,
// the unit the planner routes to the probe scan, a join's build side,
// or the post-join filter.
func (p Pred) conjuncts() []Pred {
	if p.op != pAnd {
		return []Pred{p}
	}
	var out []Pred
	for _, k := range p.kids {
		out = append(out, k.conjuncts()...)
	}
	return out
}

// boundPred is the executable, schema-bound normal form: AND / OR over
// interval leaves. An AND with no kids is true, an OR with no kids is
// false.
type boundPred struct {
	op     predOp // pAnd, pOr or pCmp
	kids   []boundPred
	col    int // slot index in the pipeline schema
	lo, hi int64
}

// predBinder resolves predicate column names for bind.
type predBinder interface {
	// predColumn resolves name to a schema slot; isStr reports whether
	// the slot holds dictionary codes.
	predColumn(name string) (slot int, isStr bool, err error)
	// encodeSlot resolves s against slot's dictionary; ok is false when
	// s was never encoded.
	encodeSlot(slot int, s string) (int64, bool)
}

var (
	bTrue  = boundPred{op: pAnd}
	bFalse = boundPred{op: pOr}
)

// bind resolves and normalizes p. neg pushes an enclosing NOT down.
func (p Pred) bind(b predBinder, neg bool) (boundPred, error) {
	switch p.op {
	case pCmp:
		slot, _, err := b.predColumn(p.col)
		if err != nil {
			return bFalse, err
		}
		return boundRange(slot, p.lo, p.hi, neg), nil
	case pStrEq:
		slot, isStr, err := b.predColumn(p.col)
		if err != nil {
			return bFalse, err
		}
		if !isStr {
			return bFalse, fmt.Errorf("query: EqString on non-VARCHAR column %q", p.col)
		}
		code, ok := b.encodeSlot(slot, p.str)
		if !ok {
			if neg {
				return bTrue, nil
			}
			return bFalse, nil
		}
		return boundRange(slot, code, code, neg), nil
	case pAnd, pOr:
		op := p.op
		if neg { // De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b and vice versa
			if p.op == pAnd {
				op = pOr
			} else {
				op = pAnd
			}
		}
		kids := make([]boundPred, 0, len(p.kids))
		for _, k := range p.kids {
			bk, err := k.bind(b, neg)
			if err != nil {
				return bFalse, err
			}
			kids = append(kids, bk)
		}
		return boundPred{op: op, kids: kids}, nil
	case pNot:
		return p.kids[0].bind(b, !neg)
	}
	return bFalse, fmt.Errorf("query: invalid predicate node")
}

// boundRange builds the leaf for "col in [lo, hi]", or its negation as
// a union of the at most two complementary intervals.
func boundRange(slot int, lo, hi int64, neg bool) boundPred {
	if !neg {
		return boundPred{op: pCmp, col: slot, lo: lo, hi: hi}
	}
	var kids []boundPred
	if lo != math.MinInt64 {
		kids = append(kids, boundPred{op: pCmp, col: slot, lo: math.MinInt64, hi: lo - 1})
	}
	if hi != math.MaxInt64 {
		kids = append(kids, boundPred{op: pCmp, col: slot, lo: hi + 1, hi: math.MaxInt64})
	}
	if lo > hi { // negated empty interval: everything matches
		return bTrue
	}
	return boundPred{op: pOr, kids: kids}
}

// eval reports whether the row whose slot values get returns satisfies
// the predicate.
func (p *boundPred) eval(get func(slot int) int64) bool {
	switch p.op {
	case pCmp:
		v := get(p.col)
		return v >= p.lo && v <= p.hi
	case pAnd:
		for i := range p.kids {
			if !p.kids[i].eval(get) {
				return false
			}
		}
		return true
	default: // pOr
		for i := range p.kids {
			if p.kids[i].eval(get) {
				return true
			}
		}
		return false
	}
}

// satisfiable reports whether any value assignment inside the given
// per-slot zones can satisfy the predicate. zone returns a slot's
// min/max bounds, ok=false when unknown (unknown slots never prune).
// A false result is a proof: no row of the zone's block can match, so
// the block is skipped without reading it.
func (p *boundPred) satisfiable(zone func(slot int) (lo, hi int64, ok bool)) bool {
	switch p.op {
	case pCmp:
		zlo, zhi, ok := zone(p.col)
		if !ok {
			return p.lo <= p.hi
		}
		return p.lo <= zhi && p.hi >= zlo && p.lo <= p.hi
	case pAnd:
		for i := range p.kids {
			if !p.kids[i].satisfiable(zone) {
				return false
			}
		}
		return true
	default: // pOr
		for i := range p.kids {
			if p.kids[i].satisfiable(zone) {
				return true
			}
		}
		return false
	}
}

// slots calls fn with every schema slot the bound predicate reads.
func (p *boundPred) slots(fn func(slot int)) {
	if p.op == pCmp {
		fn(p.col)
		return
	}
	for i := range p.kids {
		p.kids[i].slots(fn)
	}
}
