package query

import (
	"sort"
	"sync/atomic"
)

// Op is one streaming operator of a per-worker pipeline. Next returns
// the operator's next batch, or nil at end of stream. A returned batch
// is owned by the producing operator and valid until the next call.
type Op interface {
	Next() (*Batch, error)
}

// scanOp is the pipeline source: it claims morsels from the shared
// dispatcher (work-stealing via one atomic counter, the morsel-driven
// scheme of Leis et al. adapted to snapshot scans), prunes each block
// whose zones cannot satisfy the scan predicate, and reads the
// surviving blocks' visible rows into a reused column-major batch.
type scanOp struct {
	p          *plan
	next       *atomic.Int64
	nM         int // total morsels
	morselRows int // rows per morsel; a multiple of BlockRows
	bound      int // probe scan bound

	readSlots []int // probe slots filled from ReadBlock
	readCols  []int // their probe column indices, parallel to readSlots
	idSlots   []int // probe slots carrying RowID

	rowIDs []int64
	views  [][]int64 // scratch: per-call windows into batch columns
	batch  Batch
	st     *ExecStats
	lim    *limiter // early exit for Limit; nil without one
}

func newScanOp(p *plan, next *atomic.Int64, nM, morselRows, bound int, st *ExecStats, lim *limiter) *scanOp {
	s := &scanOp{
		p: p, next: next, nM: nM, morselRows: morselRows, bound: bound,
		rowIDs: make([]int64, morselRows),
		st:     st,
		lim:    lim,
	}
	s.batch.Cols = make([][]int64, len(p.slots))
	for i, sl := range p.slots {
		if sl.src != srcProbe {
			continue // a join fills it downstream
		}
		s.batch.Cols[i] = make([]int64, morselRows)
		if sl.col < 0 {
			s.idSlots = append(s.idSlots, i)
		} else {
			s.readSlots = append(s.readSlots, i)
			s.readCols = append(s.readCols, sl.col)
		}
	}
	s.views = make([][]int64, len(s.readSlots))
	return s
}

func (s *scanOp) Next() (*Batch, error) {
	br := s.p.probe.BlockRows()
	for {
		if s.lim != nil && s.lim.stop.Load() {
			return nil, nil
		}
		m := int(s.next.Add(1) - 1)
		if m >= s.nM {
			return nil, nil
		}
		lo := m * s.morselRows
		hi := lo + s.morselRows
		if hi > s.bound {
			hi = s.bound
		}
		s.st.Morsels++
		n, scanned := 0, false
		for blo := lo; blo < hi; blo += br {
			bhi := blo + br
			if bhi > hi {
				bhi = hi
			}
			if s.prunable(blo/br, blo, bhi) {
				s.st.BlocksSkipped++
				continue
			}
			scanned = true
			s.st.BlocksScanned++
			s.st.RowsScanned += int64(bhi - blo)
			for i, slot := range s.readSlots {
				s.views[i] = s.batch.Cols[slot][n:]
			}
			k, err := s.p.probe.ReadBlock(blo, bhi, s.readCols, s.rowIDs[n:], s.views)
			if err != nil {
				return nil, err
			}
			n += k
		}
		if !scanned {
			s.st.MorselsSkipped++
		}
		if n == 0 {
			// The morsel surfaces no batch; report it finished here so
			// the limiter's watermark can pass it.
			if s.lim != nil {
				s.lim.finish(m, 0)
			}
			continue
		}
		for _, slot := range s.idSlots {
			copy(s.batch.Cols[slot][:n], s.rowIDs[:n])
		}
		s.batch.Morsel, s.batch.N = m, n
		return &s.batch, nil
	}
}

// prunable reports whether block blk (rows [blo, bhi)) provably holds
// no matching row, using zone maps plus the block's row-index range for
// RowID leaves.
func (s *scanOp) prunable(blk, blo, bhi int) bool {
	if s.p.noPrune || s.p.scanPred == nil {
		return false
	}
	return !s.p.scanPred.satisfiable(func(slot int) (int64, int64, bool) {
		sl := s.p.slots[slot]
		if sl.src != srcProbe {
			return 0, 0, false
		}
		if sl.col < 0 {
			return int64(blo), int64(bhi - 1), true
		}
		return s.p.probe.Zone(sl.col, blk)
	})
}

// indexScanOp is the pipeline source when an index probe replaced the
// block scan: the probed rows (ascending) are partitioned by the same
// morsel numbering the scan would use, workers claim morsels from the
// same shared dispatcher, and each claimed morsel's rows are resolved
// through the table's snapshot read path. Identical morsel numbering
// keeps the merged result byte-for-byte what the scan path returns.
type indexScanOp struct {
	p          *plan
	t          IndexedTable
	next       *atomic.Int64
	nM         int
	morselRows int
	rows       []int64 // probed rows, strictly ascending

	readSlots []int
	readCols  []int
	idSlots   []int

	views [][]int64
	batch Batch
	st    *ExecStats
	lim   *limiter
}

func newIndexScanOp(p *plan, next *atomic.Int64, nM, morselRows int, st *ExecStats, lim *limiter) *indexScanOp {
	s := &indexScanOp{
		p: p, t: p.probe.(IndexedTable), next: next, nM: nM, morselRows: morselRows,
		rows: p.idxRows, st: st, lim: lim,
	}
	s.batch.Cols = make([][]int64, len(p.slots))
	for i, sl := range p.slots {
		if sl.src != srcProbe {
			continue
		}
		s.batch.Cols[i] = make([]int64, morselRows)
		if sl.col < 0 {
			s.idSlots = append(s.idSlots, i)
		} else {
			s.readSlots = append(s.readSlots, i)
			s.readCols = append(s.readCols, sl.col)
		}
	}
	s.views = make([][]int64, len(s.readSlots))
	return s
}

func (s *indexScanOp) Next() (*Batch, error) {
	for {
		if s.lim != nil && s.lim.stop.Load() {
			return nil, nil
		}
		m := int(s.next.Add(1) - 1)
		if m >= s.nM {
			return nil, nil
		}
		s.st.Morsels++
		lo, hi := int64(m*s.morselRows), int64((m+1)*s.morselRows)
		a := sort.Search(len(s.rows), func(i int) bool { return s.rows[i] >= lo })
		b := a + sort.Search(len(s.rows)-a, func(i int) bool { return s.rows[a+i] >= hi })
		if a == b {
			s.st.MorselsSkipped++
			if s.lim != nil {
				s.lim.finish(m, 0)
			}
			continue
		}
		seg := s.rows[a:b]
		n := len(seg)
		for i, slot := range s.readSlots {
			s.views[i] = s.batch.Cols[slot][:n]
		}
		if err := s.t.ReadRows(seg, s.readCols, s.views); err != nil {
			return nil, err
		}
		for _, slot := range s.idSlots {
			copy(s.batch.Cols[slot][:n], seg)
		}
		s.st.RowsScanned += int64(n)
		s.batch.Morsel, s.batch.N = m, n
		return &s.batch, nil
	}
}

// filterOp drops the rows of its child's batches that fail the bound
// predicate, compacting survivors in place (the child rewrites the
// batch on its next Next call anyway). In passEmpty mode (limited
// queries) a batch filtered down to nothing is returned empty instead
// of swallowed, so the worker still observes its morsel.
type filterOp struct {
	child     Op
	pred      *boundPred
	passEmpty bool
}

func (f *filterOp) Next() (*Batch, error) {
	for {
		b, err := f.child.Next()
		if b == nil || err != nil {
			return nil, err
		}
		var i int
		get := func(slot int) int64 { return b.Cols[slot][i] }
		n := 0
		for i = 0; i < b.N; i++ {
			if !f.pred.eval(get) {
				continue
			}
			if n != i {
				for _, c := range b.Cols {
					if c != nil {
						c[n] = c[i]
					}
				}
			}
			n++
		}
		if n > 0 || f.passEmpty {
			b.N = n
			return b, nil
		}
	}
}

// joinOp is the probe side of an equi hash join. The build side is
// materialized once (joinPlan.build*) and shared read-only by every
// worker; probing streams batches through, fanning each probe row out
// to its matches. Output batches never span child batches, so rows
// stay grouped by morsel and result order stays deterministic.
type joinOp struct {
	child     Op
	j         *joinPlan
	cap       int
	passEmpty bool // surface match-less batches (limited queries)

	pending *Batch // current child batch, nil when drained
	pi      int    // probe row cursor in pending
	mi      int    // match cursor within the current probe row
	out     Batch
}

func (o *joinOp) Next() (*Batch, error) {
	o.out.N = 0
	for {
		if o.pending == nil {
			b, err := o.child.Next()
			if b == nil || err != nil {
				return nil, err
			}
			o.ensureOut(b)
			o.pending, o.pi, o.mi = b, 0, 0
		}
		b := o.pending
		o.out.Morsel = b.Morsel
		for o.pi < b.N {
			matches := o.j.ht[b.Cols[o.j.probeSlot][o.pi]]
			for o.mi < len(matches) {
				if o.out.N == o.cap {
					return &o.out, nil
				}
				r := matches[o.mi]
				o.mi++
				n := o.out.N
				for si, c := range b.Cols {
					if c != nil {
						o.out.Cols[si][n] = c[o.pi]
					}
				}
				for k, slot := range o.j.slots {
					o.out.Cols[slot][n] = o.j.rows[k][r]
				}
				o.out.N = n + 1
			}
			o.mi = 0
			o.pi++
		}
		o.pending = nil
		if o.out.N > 0 || o.passEmpty {
			return &o.out, nil
		}
	}
}

// ensureOut sizes the output batch: every slot the child produces plus
// the slots this join fills.
func (o *joinOp) ensureOut(child *Batch) {
	if o.out.Cols != nil {
		return
	}
	o.out.Cols = make([][]int64, len(child.Cols))
	for si, c := range child.Cols {
		if c != nil {
			o.out.Cols[si] = make([]int64, o.cap)
		}
	}
	for _, slot := range o.j.slots {
		if o.out.Cols[slot] == nil {
			o.out.Cols[slot] = make([]int64, o.cap)
		}
	}
}
