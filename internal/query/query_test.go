package query

import (
	"math"
	"reflect"
	"testing"
)

// memTable is an in-memory Table fixture: column-major data, a
// per-column dictionary for string columns, per-block zones computed
// over all rows (deleted included — mirroring the widen-only zones of
// the real store), and a deleted set to exercise visibility gaps.
type memTable struct {
	name      string
	cols      []string
	str       []bool
	data      [][]int64
	dicts     []map[string]int64
	rev       []map[int64]string
	blockRows int
	deleted   map[int]bool
	noZones   bool
	prepared  bool
}

func newMemTable(name string, blockRows int) *memTable {
	return &memTable{name: name, blockRows: blockRows, deleted: map[int]bool{}}
}

func (m *memTable) addInt(name string, vals []int64) *memTable {
	m.cols = append(m.cols, name)
	m.str = append(m.str, false)
	m.data = append(m.data, vals)
	m.dicts = append(m.dicts, nil)
	m.rev = append(m.rev, nil)
	return m
}

func (m *memTable) addStr(name string, vals []string) *memTable {
	dict := map[string]int64{}
	rev := map[int64]string{}
	codes := make([]int64, len(vals))
	for i, s := range vals {
		c, ok := dict[s]
		if !ok {
			c = int64(len(dict))
			dict[s] = c
			rev[c] = s
		}
		codes[i] = c
	}
	m.cols = append(m.cols, name)
	m.str = append(m.str, true)
	m.data = append(m.data, codes)
	m.dicts = append(m.dicts, dict)
	m.rev = append(m.rev, rev)
	return m
}

func (m *memTable) Name() string          { return m.name }
func (m *memTable) Columns() []string     { return m.cols }
func (m *memTable) IsString(col int) bool { return m.str[col] }

func (m *memTable) Encode(col int, s string) (int64, bool) {
	c, ok := m.dicts[col][s]
	return c, ok
}

func (m *memTable) Decode(col int, code int64) string { return m.rev[col][code] }

func (m *memTable) Prepare(cols []int) error { m.prepared = true; return nil }

func (m *memTable) Rows() int {
	if len(m.data) == 0 {
		return 0
	}
	return len(m.data[0])
}

func (m *memTable) NumRows() int64 { return int64(m.Rows() - len(m.deleted)) }

func (m *memTable) BlockRows() int { return m.blockRows }

func (m *memTable) Zone(col, blk int) (int64, int64, bool) {
	if m.noZones {
		return 0, 0, false
	}
	lo := blk * m.blockRows
	hi := lo + m.blockRows
	if hi > m.Rows() {
		hi = m.Rows()
	}
	if lo >= hi {
		return 0, 0, false
	}
	zlo, zhi := int64(math.MaxInt64), int64(math.MinInt64)
	for r := lo; r < hi; r++ {
		v := m.data[col][r]
		if v < zlo {
			zlo = v
		}
		if v > zhi {
			zhi = v
		}
	}
	return zlo, zhi, true
}

func (m *memTable) ReadBlock(lo, hi int, cols []int, rowIDs []int64, out [][]int64) (int, error) {
	n := 0
	for r := lo; r < hi; r++ {
		if m.deleted[r] {
			continue
		}
		rowIDs[n] = int64(r)
		for i, c := range cols {
			out[i][n] = m.data[c][r]
		}
		n++
	}
	return n, nil
}

// ordersTable builds a 4-block probe fixture with a sorted key, a
// small group column and a payload.
func ordersTable(n, blockRows int) *memTable {
	k := make([]int64, n)
	g := make([]int64, n)
	v := make([]int64, n)
	cust := make([]int64, n)
	for i := 0; i < n; i++ {
		k[i] = int64(i)             // sorted: zones are tight
		g[i] = int64(i % 4)         // group key
		v[i] = int64((i * 7) % 100) // payload
		cust[i] = int64(i % 5)      // join key
	}
	return newMemTable("orders", blockRows).
		addInt("k", k).addInt("g", g).addInt("v", v).addInt("cust", cust)
}

func custTable() *memTable {
	return newMemTable("customers", 4).
		addInt("id", []int64{0, 1, 2, 3, 4}).
		addStr("region", []string{"north", "south", "north", "east", "south"}).
		addInt("credit", []int64{10, 20, 30, 40, 50})
}

func runQ(t *testing.T, b *Builder) *Result {
	t.Helper()
	r, err := b.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestScanProjectOrder(t *testing.T) {
	m := ordersTable(50, 8)
	m.deleted[3] = true
	m.deleted[40] = true
	r := runQ(t, New(m).Select("k", RowID).Morsels(4))
	if got := r.Columns(); !reflect.DeepEqual(got, []string{"k", RowID}) {
		t.Fatalf("columns = %v", got)
	}
	if r.Len() != 48 {
		t.Fatalf("rows = %d, want 48", r.Len())
	}
	prev := int64(-1)
	for i := 0; i < r.Len(); i++ {
		if r.At(i, 0) != r.At(i, 1) {
			t.Fatalf("row %d: k=%d rowid=%d", i, r.At(i, 0), r.At(i, 1))
		}
		if r.At(i, 0) <= prev {
			t.Fatalf("row order broken at %d: %d after %d", i, r.At(i, 0), prev)
		}
		prev = r.At(i, 0)
	}
}

func TestFilterPredicates(t *testing.T) {
	m := ordersTable(64, 8)
	cases := []struct {
		name string
		pred Pred
		want func(i int) bool
	}{
		{"eq", Eq("g", 2), func(i int) bool { return i%4 == 2 }},
		{"ne", Ne("g", 2), func(i int) bool { return i%4 != 2 }},
		{"between", Between("k", 10, 20), func(i int) bool { return i >= 10 && i <= 20 }},
		{"or", Or(Lt("k", 5), Ge("k", 60)), func(i int) bool { return i < 5 || i >= 60 }},
		{"andnot", And(Gt("k", 9), Not(Between("k", 20, 50))), func(i int) bool {
			return i > 9 && !(i >= 20 && i <= 50)
		}},
		{"notor", Not(Or(Lt("k", 30), Eq("g", 1))), func(i int) bool { return i >= 30 && i%4 != 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := runQ(t, New(m).Where(tc.pred).Select("k").Morsels(3))
			var want []int64
			for i := 0; i < 64; i++ {
				if tc.want(i) {
					want = append(want, int64(i))
				}
			}
			if !reflect.DeepEqual(r.Ints(0), want) {
				t.Fatalf("got %v want %v", r.Ints(0), want)
			}
		})
	}
}

func TestStringPredicate(t *testing.T) {
	c := custTable()
	r := runQ(t, New(c).Where(EqString("region", "north")).Select("id", "region"))
	if r.Len() != 2 || r.At(0, 0) != 0 || r.At(1, 0) != 2 {
		t.Fatalf("north ids wrong: %v", r.Ints(0))
	}
	if s := r.StringAt(0, 1); s != "north" {
		t.Fatalf("StringAt = %q", s)
	}
	// A string the dictionary never saw matches nothing...
	r = runQ(t, New(c).Where(EqString("region", "west")).Select("id"))
	if r.Len() != 0 {
		t.Fatalf("unknown string matched %d rows", r.Len())
	}
	// ...and its negation matches everything.
	r = runQ(t, New(c).Where(Not(EqString("region", "west"))).Select("id"))
	if r.Len() != 5 {
		t.Fatalf("negated unknown string matched %d rows", r.Len())
	}
}

func TestGroupByAggregate(t *testing.T) {
	m := ordersTable(100, 8)
	m.deleted[17] = true
	for _, morsels := range []int{1, 4} {
		r := runQ(t, New(m).
			Where(Ge("k", 10)).
			GroupBy("g").
			Aggregate(Sum("v"), Count(), Min("v"), Max("v"), Avg("v")).
			Morsels(morsels))
		wantCols := []string{"g", "sum(v)", "count()", "min(v)", "max(v)", "avg(v)"}
		if !reflect.DeepEqual(r.Columns(), wantCols) {
			t.Fatalf("columns = %v", r.Columns())
		}
		// Reference fold.
		type ref struct{ sum, cnt, mn, mx int64 }
		refs := map[int64]*ref{}
		for i := 10; i < 100; i++ {
			if i == 17 {
				continue
			}
			g, v := int64(i%4), int64((i*7)%100)
			a := refs[g]
			if a == nil {
				a = &ref{mn: math.MaxInt64, mx: math.MinInt64}
				refs[g] = a
			}
			a.sum += v
			a.cnt++
			if v < a.mn {
				a.mn = v
			}
			if v > a.mx {
				a.mx = v
			}
		}
		if r.Len() != len(refs) {
			t.Fatalf("groups = %d want %d", r.Len(), len(refs))
		}
		for i := 0; i < r.Len(); i++ {
			g := r.At(i, 0)
			if i > 0 && g <= r.At(i-1, 0) {
				t.Fatalf("groups unsorted")
			}
			a := refs[g]
			if r.At(i, 1) != a.sum || r.At(i, 2) != a.cnt || r.At(i, 3) != a.mn || r.At(i, 4) != a.mx {
				t.Fatalf("group %d: got (%d,%d,%d,%d) want %+v",
					g, r.At(i, 1), r.At(i, 2), r.At(i, 3), r.At(i, 4), *a)
			}
			wantAvg := float64(a.sum) / float64(a.cnt)
			if got := r.Float(i, 5); got != wantAvg {
				t.Fatalf("group %d avg = %v want %v", g, got, wantAvg)
			}
		}
	}
}

func TestGlobalAggregateEmpty(t *testing.T) {
	m := ordersTable(32, 8)
	r := runQ(t, New(m).Where(Gt("k", 1000)).Aggregate(Sum("v"), Count(), Min("v"), Max("v"), Avg("v")))
	if r.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", r.Len())
	}
	if r.At(0, 0) != 0 || r.At(0, 1) != 0 || r.At(0, 2) != math.MaxInt64 || r.At(0, 3) != math.MinInt64 {
		t.Fatalf("empty fold wrong: %v %v %v %v", r.At(0, 0), r.At(0, 1), r.At(0, 2), r.At(0, 3))
	}
	if r.Float(0, 4) != 0 {
		t.Fatalf("empty avg = %v", r.Float(0, 4))
	}
}

func TestBareCountFastPath(t *testing.T) {
	m := ordersTable(64, 8)
	m.deleted[1] = true
	m.deleted[2] = true
	r := runQ(t, New(m).Aggregate(Count()))
	if r.Len() != 1 || r.At(0, 0) != 62 {
		t.Fatalf("count = %d", r.At(0, 0))
	}
	if r.Stats.BlocksScanned != 0 || r.Stats.Morsels != 0 {
		t.Fatalf("bare count scanned blocks: %+v", r.Stats)
	}
}

func TestJoin(t *testing.T) {
	m := ordersTable(60, 8)
	m.deleted[12] = true
	c := custTable()
	r := runQ(t, New(m).
		Join(c, "cust", "id").
		Where(And(Ge("k", 5), EqString("region", "north"), Gt("credit", 5))).
		Select("k", "region", "credit").
		Morsels(4))
	var wantK []int64
	for i := 5; i < 60; i++ {
		if i == 12 {
			continue
		}
		id := i % 5
		region := []string{"north", "south", "north", "east", "south"}[id]
		credit := []int64{10, 20, 30, 40, 50}[id]
		if region == "north" && credit > 5 {
			wantK = append(wantK, int64(i))
		}
	}
	if !reflect.DeepEqual(r.Ints(0), wantK) {
		t.Fatalf("join keys got %v want %v", r.Ints(0), wantK)
	}
	for i := 0; i < r.Len(); i++ {
		if s := r.StringAt(i, 1); s != "north" {
			t.Fatalf("row %d region %q", i, s)
		}
	}
}

func TestJoinMixedConjunct(t *testing.T) {
	m := ordersTable(40, 8)
	c := custTable()
	// v > credit spans probe and build: must run post-join.
	r := runQ(t, New(m).
		Join(c, "cust", "id").
		Where(Gt("v", 0)).
		Where(And(Or(Lt("v", 1000), Eq("credit", -1)))). // mixed, vacuously true
		GroupBy("region").
		Aggregate(Count()).
		Morsels(2))
	total := int64(0)
	for i := 0; i < r.Len(); i++ {
		total += r.At(i, 1)
	}
	want := int64(0)
	for i := 0; i < 40; i++ {
		if (i*7)%100 > 0 {
			want++
		}
	}
	if total != want {
		t.Fatalf("joined count = %d want %d", total, want)
	}
}

func TestJoinAggregateOnBuildColumn(t *testing.T) {
	m := ordersTable(40, 8)
	c := custTable()
	r := runQ(t, New(m).Join(c, "cust", "id").GroupBy("g").Aggregate(Sum("credit")))
	refs := map[int64]int64{}
	for i := 0; i < 40; i++ {
		refs[int64(i%4)] += []int64{10, 20, 30, 40, 50}[i%5]
	}
	if r.Len() != 4 {
		t.Fatalf("groups = %d", r.Len())
	}
	for i := 0; i < 4; i++ {
		g := r.At(i, 0)
		if r.At(i, 1) != refs[g] {
			t.Fatalf("group %d sum(credit) = %d want %d", g, r.At(i, 1), refs[g])
		}
	}
}

func TestZonePruning(t *testing.T) {
	m := ordersTable(256, 8) // k sorted: zones are tight
	pruned := runQ(t, New(m).Where(Between("k", 100, 110)).Select("k").Morsels(2))
	full := runQ(t, New(m).Where(Between("k", 100, 110)).Select("k").WithoutPruning().Morsels(2))
	if !reflect.DeepEqual(pruned.Ints(0), full.Ints(0)) {
		t.Fatalf("pruned result differs: %v vs %v", pruned.Ints(0), full.Ints(0))
	}
	if pruned.Stats.BlocksSkipped == 0 {
		t.Fatalf("no blocks skipped on selective sorted predicate: %+v", pruned.Stats)
	}
	if full.Stats.BlocksSkipped != 0 {
		t.Fatalf("WithoutPruning skipped blocks: %+v", full.Stats)
	}
	if pruned.Stats.MorselsSkipped == 0 {
		t.Fatalf("no whole morsels skipped: %+v", pruned.Stats)
	}
	if n := pruned.Stats.BlocksScanned + pruned.Stats.BlocksSkipped; n != full.Stats.BlocksScanned {
		t.Fatalf("block accounting: %d+%d != %d", pruned.Stats.BlocksScanned, pruned.Stats.BlocksSkipped, full.Stats.BlocksScanned)
	}
}

func TestRowIDPruning(t *testing.T) {
	m := ordersTable(256, 8)
	r := runQ(t, New(m).Where(Lt(RowID, 8)).Select("k"))
	if r.Len() != 8 {
		t.Fatalf("rows = %d", r.Len())
	}
	if r.Stats.BlocksSkipped == 0 {
		t.Fatalf("RowID ranges did not prune: %+v", r.Stats)
	}
}

func TestUnknownZonesScanEverything(t *testing.T) {
	m := ordersTable(128, 8)
	m.noZones = true
	r := runQ(t, New(m).Where(Between("k", 0, 3)).Select("k"))
	if r.Len() != 4 {
		t.Fatalf("rows = %d", r.Len())
	}
	if r.Stats.BlocksSkipped != 0 {
		t.Fatalf("skipped blocks with unknown zones: %+v", r.Stats)
	}
}

func TestMorselEquivalence(t *testing.T) {
	m := ordersTable(300, 8)
	for i := 0; i < 300; i += 11 {
		m.deleted[i] = true
	}
	base := runQ(t, New(m).Where(Or(Eq("g", 1), Gt("v", 80))).Select("k", "v").Morsels(1))
	for _, morsels := range []int{2, 4, 9} {
		r := runQ(t, New(m).Where(Or(Eq("g", 1), Gt("v", 80))).Select("k", "v").Morsels(morsels))
		if !reflect.DeepEqual(r.Ints(0), base.Ints(0)) || !reflect.DeepEqual(r.Ints(1), base.Ints(1)) {
			t.Fatalf("morsels=%d result differs from morsels=1", morsels)
		}
	}
}

func TestBindErrors(t *testing.T) {
	m := ordersTable(16, 8)
	c := custTable()
	cases := []struct {
		name string
		b    *Builder
	}{
		{"unknown column", New(m).Select("nope")},
		{"unknown pred column", New(m).Where(Eq("nope", 1))},
		{"groupby without aggregate", New(m).GroupBy("g")},
		{"select with aggregate", New(m).Select("k").Aggregate(Count())},
		{"eqstring on int", New(m).Where(EqString("k", "x"))},
		{"aggregate on string", New(m).Join(c, "cust", "id").Aggregate(Sum("region"))},
		{"unknown join key", New(m).Join(c, "cust", "nope")},
		{"join key type mismatch", New(m).Join(c, "g", "region")},
		{"nil table", New(nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.b.Run(); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}

func TestEmptyTable(t *testing.T) {
	m := newMemTable("empty", 8).addInt("x", nil)
	r := runQ(t, New(m).Select("x"))
	if r.Len() != 0 {
		t.Fatalf("rows = %d", r.Len())
	}
	r = runQ(t, New(m).Aggregate(Sum("x"), Count()))
	if r.Len() != 1 || r.At(0, 0) != 0 || r.At(0, 1) != 0 {
		t.Fatalf("empty aggregate: %v", r.data)
	}
}

func TestQualifiedAndDuplicateNames(t *testing.T) {
	m := newMemTable("a", 8).addInt("id", []int64{0, 1, 2}).addInt("v", []int64{10, 11, 12})
	o := newMemTable("b", 8).addInt("id", []int64{0, 1, 2}).addInt("v", []int64{20, 21, 22})
	r := runQ(t, New(m).Join(o, "id", "id").Select("a.v", "b.v"))
	if !reflect.DeepEqual(r.Columns(), []string{"a.v", "b.v"}) {
		t.Fatalf("columns = %v", r.Columns())
	}
	for i := 0; i < 3; i++ {
		if r.At(i, 0) != int64(10+i) || r.At(i, 1) != int64(20+i) {
			t.Fatalf("row %d: %d,%d", i, r.At(i, 0), r.At(i, 1))
		}
	}
}
