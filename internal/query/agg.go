package query

import (
	"fmt"
	"math"
	"sort"
)

// AggKind selects the fold an AggSpec computes.
type AggKind uint8

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// AggSpec is one requested aggregate: a kind plus the column it folds
// (empty for Count). Build them with Sum, Count, Min, Max and Avg.
type AggSpec struct {
	Kind AggKind
	Col  string
}

// Sum folds the sum of col.
func Sum(col string) AggSpec { return AggSpec{Kind: AggSum, Col: col} }

// Count folds the number of qualifying rows.
func Count() AggSpec { return AggSpec{Kind: AggCount} }

// Min folds the minimum of col (math.MaxInt64 over zero rows).
func Min(col string) AggSpec { return AggSpec{Kind: AggMin, Col: col} }

// Max folds the maximum of col (math.MinInt64 over zero rows).
func Max(col string) AggSpec { return AggSpec{Kind: AggMax, Col: col} }

// Avg folds the arithmetic mean of col as a float64 (0 over zero
// rows); read it with Result.Float.
func Avg(col string) AggSpec { return AggSpec{Kind: AggAvg, Col: col} }

// label is the aggregate's output column name.
func (a AggSpec) label() string {
	switch a.Kind {
	case AggSum:
		return fmt.Sprintf("sum(%s)", a.Col)
	case AggCount:
		return "count()"
	case AggMin:
		return fmt.Sprintf("min(%s)", a.Col)
	case AggMax:
		return fmt.Sprintf("max(%s)", a.Col)
	default:
		return fmt.Sprintf("avg(%s)", a.Col)
	}
}

// boundAgg is an AggSpec bound to a schema slot (-1 for Count).
type boundAgg struct {
	kind AggKind
	slot int
}

// acc is one aggregate's accumulator; one per (group, agg).
type acc struct {
	sum, cnt, mn, mx int64
}

func newAccs(n int) []acc {
	a := make([]acc, n)
	for i := range a {
		a[i].mn, a[i].mx = math.MaxInt64, math.MinInt64
	}
	return a
}

func (a *acc) add(v int64) {
	a.sum += v
	a.cnt++
	if v < a.mn {
		a.mn = v
	}
	if v > a.mx {
		a.mx = v
	}
}

func (a *acc) merge(o *acc) {
	a.sum += o.sum
	a.cnt += o.cnt
	if o.mn < a.mn {
		a.mn = o.mn
	}
	if o.mx > a.mx {
		a.mx = o.mx
	}
}

// final renders the accumulator as the aggregate's output word.
func (b boundAgg) final(a *acc) int64 {
	switch b.kind {
	case AggSum:
		return a.sum
	case AggCount:
		return a.cnt
	case AggMin:
		return a.mn
	case AggMax:
		return a.mx
	default: // AggAvg, stored as float bits
		if a.cnt == 0 {
			return int64(math.Float64bits(0))
		}
		return int64(math.Float64bits(float64(a.sum) / float64(a.cnt)))
	}
}

// groupAcc is one group's key values and per-aggregate accumulators.
type groupAcc struct {
	keys []int64
	accs []acc
}

// aggregator is a per-worker hash-aggregation sink: it consumes the
// worker's batches into per-group accumulators; worker states merge
// after the pipelines drain, so workers never contend on shared state.
type aggregator struct {
	groupSlots []int
	aggs       []boundAgg
	global     *groupAcc           // no GROUP BY: the single group
	single     map[int64]*groupAcc // one group column
	multi      map[string]*groupAcc
	keybuf     []byte
}

func newAggregator(groupSlots []int, aggs []boundAgg) *aggregator {
	g := &aggregator{groupSlots: groupSlots, aggs: aggs}
	switch len(groupSlots) {
	case 0:
		g.global = &groupAcc{accs: newAccs(len(aggs))}
	case 1:
		g.single = map[int64]*groupAcc{}
	default:
		g.multi = map[string]*groupAcc{}
		g.keybuf = make([]byte, 8*len(groupSlots))
	}
	return g
}

// add folds one batch.
func (g *aggregator) add(b *Batch) {
	for i := 0; i < b.N; i++ {
		ga := g.group(b, i)
		for k, ba := range g.aggs {
			if ba.kind == AggCount {
				ga.accs[k].cnt++
				continue
			}
			ga.accs[k].add(b.Cols[ba.slot][i])
		}
	}
}

func (g *aggregator) group(b *Batch, i int) *groupAcc {
	switch {
	case g.global != nil:
		return g.global
	case g.single != nil:
		k := b.Cols[g.groupSlots[0]][i]
		ga := g.single[k]
		if ga == nil {
			ga = &groupAcc{keys: []int64{k}, accs: newAccs(len(g.aggs))}
			g.single[k] = ga
		}
		return ga
	default:
		for j, slot := range g.groupSlots {
			v := uint64(b.Cols[slot][i])
			for by := 0; by < 8; by++ {
				g.keybuf[j*8+by] = byte(v >> (8 * by))
			}
		}
		ga := g.multi[string(g.keybuf)]
		if ga == nil {
			keys := make([]int64, len(g.groupSlots))
			for j, slot := range g.groupSlots {
				keys[j] = b.Cols[slot][i]
			}
			ga = &groupAcc{keys: keys, accs: newAccs(len(g.aggs))}
			g.multi[string(g.keybuf)] = ga
		}
		return ga
	}
}

// merge folds another worker's aggregator into g.
func (g *aggregator) merge(o *aggregator) {
	each := func(key string, k int64, ga *groupAcc) {
		var mine *groupAcc
		switch {
		case g.global != nil:
			mine = g.global
		case g.single != nil:
			if mine = g.single[k]; mine == nil {
				g.single[k] = ga
				return
			}
		default:
			if mine = g.multi[key]; mine == nil {
				g.multi[key] = ga
				return
			}
		}
		for i := range mine.accs {
			mine.accs[i].merge(&ga.accs[i])
		}
	}
	switch {
	case o.global != nil:
		each("", 0, o.global)
	case o.single != nil:
		for k, ga := range o.single {
			each("", k, ga)
		}
	default:
		for key, ga := range o.multi {
			each(key, 0, ga)
		}
	}
}

// groups returns every group sorted by key values ascending — the
// deterministic output order whatever the morsel schedule was. Without
// GROUP BY there is exactly one group, present even over zero rows.
func (g *aggregator) groups() []*groupAcc {
	var out []*groupAcc
	switch {
	case g.global != nil:
		return []*groupAcc{g.global}
	case g.single != nil:
		for _, ga := range g.single {
			out = append(out, ga)
		}
	default:
		for _, ga := range g.multi {
			out = append(out, ga)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].keys, out[j].keys
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
