package query

import (
	"reflect"
	"testing"
)

// idxMemTable implements IndexedTable over a memTable: one column is
// "indexed", probes answer from the raw data (visibility-filtered like
// a real index would be), and the fixture records whether a probe was
// served — letting the tests pin down exactly when the engine routes
// through the index.
type idxMemTable struct {
	*memTable
	idxCol  int
	probes  int
	decline bool
}

func (m *idxMemTable) ProbeIndex(col int, lo, hi int64) ([]int64, bool) {
	if m.decline || col != m.idxCol {
		return nil, false
	}
	m.probes++
	var rows []int64
	for r, v := range m.data[col] {
		if v >= lo && v <= hi && !m.deleted[r] {
			rows = append(rows, int64(r))
		}
	}
	return rows, true
}

func (m *idxMemTable) ReadRows(rows []int64, cols []int, out [][]int64) error {
	for i, c := range cols {
		for k, r := range rows {
			out[i][k] = m.data[c][r]
		}
	}
	return nil
}

// TestIndexRouteMatchesScan: the same query must return identical
// results whether the probe scan ran or an index probe replaced it —
// including deleted rows, extra conjuncts the index does not serve,
// and a downstream join.
func TestIndexRouteMatchesScan(t *testing.T) {
	base := ordersTable(64, 8)
	base.deleted[17] = true
	base.deleted[30] = true
	m := &idxMemTable{memTable: base, idxCol: 1} // index on "g"

	build := func() *Builder {
		return New(m).
			Where(And(Eq("g", 2), Gt("k", 8))).
			Join(custTable(), "cust", "id").
			Select("k", RowID, "credit").Morsels(3)
	}
	idx := runQ(t, build())
	scan := runQ(t, build().WithoutPruning())

	if idx.Stats.IndexProbes != 1 {
		t.Fatalf("IndexProbes = %d, want 1", idx.Stats.IndexProbes)
	}
	if scan.Stats.IndexProbes != 0 {
		t.Fatalf("WithoutPruning still probed the index (%d)", scan.Stats.IndexProbes)
	}
	if idx.Stats.BlocksScanned != 0 {
		t.Fatalf("index route scanned %d blocks", idx.Stats.BlocksScanned)
	}
	for c := 0; c < 3; c++ {
		if !reflect.DeepEqual(idx.Ints(c), scan.Ints(c)) {
			t.Fatalf("column %d diverges:\nindex: %v\nscan:  %v", c, idx.Ints(c), scan.Ints(c))
		}
	}
}

// TestIndexRouteRespectsDecline: a table declining the probe (or a
// predicate with no indexable conjunct) leaves the scan path in
// charge.
func TestIndexRouteRespectsDecline(t *testing.T) {
	m := &idxMemTable{memTable: ordersTable(32, 8), idxCol: 1, decline: true}
	r := runQ(t, New(m).Where(Eq("g", 1)).Select(RowID))
	if r.Stats.IndexProbes != 0 || m.probes != 0 {
		t.Fatalf("declined probe still counted: stats=%d table=%d", r.Stats.IndexProbes, m.probes)
	}
	m.decline = false
	r = runQ(t, New(m).Where(Eq("v", 7)).Select(RowID)) // "v" is not the indexed column
	if r.Stats.IndexProbes != 0 {
		t.Fatalf("probe served for unindexed column")
	}
}

// TestLimitDeterministicPrefix: Limit(n) must return exactly the first
// n rows of the unlimited result, for every n, on both the scan and
// the index route, with filters and joins in the pipeline.
func TestLimitDeterministicPrefix(t *testing.T) {
	base := ordersTable(200, 4) // 50 blocks, many morsels
	base.deleted[8] = true
	m := &idxMemTable{memTable: base, idxCol: 1}

	shapes := []struct {
		name  string
		build func() *Builder
	}{
		{"scan", func() *Builder { return New(m).Where(Gt("k", 20)).Select("k", RowID).Morsels(4).WithoutPruning() }},
		{"index", func() *Builder { return New(m).Where(Eq("g", 3)).Select("k", RowID).Morsels(4) }},
		{"join", func() *Builder {
			return New(m).Where(Eq("g", 1)).Join(custTable(), "cust", "id").Select("k", "credit").Morsels(4).WithoutPruning()
		}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			full := runQ(t, sh.build())
			for _, n := range []int{1, 3, full.Len() - 1, full.Len(), full.Len() + 50} {
				if n <= 0 {
					continue
				}
				lim := runQ(t, sh.build().Limit(n))
				want := n
				if want > full.Len() {
					want = full.Len()
				}
				if lim.Len() != want {
					t.Fatalf("Limit(%d): %d rows, want %d", n, lim.Len(), want)
				}
				for c := range lim.Columns() {
					if !reflect.DeepEqual(lim.Ints(c), full.Ints(c)[:want]) {
						t.Fatalf("Limit(%d) column %d is not the prefix:\nlimit: %v\nfull:  %v",
							n, c, lim.Ints(c), full.Ints(c)[:want])
					}
				}
				if lim.Stats.RowsEmitted != int64(want) {
					t.Fatalf("Limit(%d): RowsEmitted = %d", n, lim.Stats.RowsEmitted)
				}
			}
		})
	}
}

// TestLimitAggregateTrimsGroups: aggregating queries cannot exit early
// (every row feeds the aggregate) but still trim the laid-out groups.
func TestLimitAggregateTrimsGroups(t *testing.T) {
	m := ordersTable(64, 8)
	full := runQ(t, New(m).GroupBy("g").Aggregate(Count()))
	lim := runQ(t, New(m).GroupBy("g").Aggregate(Count()).Limit(2))
	if lim.Len() != 2 {
		t.Fatalf("limited groups = %d, want 2", lim.Len())
	}
	for c := 0; c < 2; c++ {
		if !reflect.DeepEqual(lim.Ints(c), full.Ints(c)[:2]) {
			t.Fatalf("group prefix diverges in column %d", c)
		}
	}
}

func TestLimitRejectsNonPositive(t *testing.T) {
	if _, err := New(ordersTable(8, 8)).Limit(0).Run(); err == nil {
		t.Fatal("Limit(0) accepted")
	}
	if _, err := New(ordersTable(8, 8)).Limit(-3).Run(); err == nil {
		t.Fatal("Limit(-3) accepted")
	}
}
