package snapshot

import "ankerdb/internal/vmem"

// ForkBased is HyPer-style virtual snapshotting (Section 3.2.2): the
// whole process is forked and the child's view of the regions is the
// snapshot. The kernel write-protects every private page on both sides,
// so creation cost is proportional to the size of the entire process
// image — independent of how many regions were actually requested,
// which is the inflexibility Figure 10 of the paper demonstrates.
type ForkBased struct {
	proc *vmem.Process
}

// NewForkBased returns the fork-based snapshotting strategy for proc.
func NewForkBased(proc *vmem.Process) *ForkBased { return &ForkBased{proc: proc} }

// Name implements Strategy.
func (*ForkBased) Name() string { return "fork" }

type forkSnap struct {
	child   *vmem.Process
	regions []Region
}

func (s *forkSnap) Regions() []Region     { return s.regions }
func (s *forkSnap) Reader() *vmem.Process { return s.child }
func (s *forkSnap) Release() {
	if s.child != nil {
		s.child.Destroy()
		s.child = nil
	}
}

// Snapshot implements Strategy. The requested regions only select what
// the caller will read: fork always duplicates everything.
func (f *ForkBased) Snapshot(regions []Region) (Snap, error) {
	if err := checkRegions(regions); err != nil {
		return nil, err
	}
	child := f.proc.Fork()
	return &forkSnap{child: child, regions: append([]Region(nil), regions...)}, nil
}

var _ Strategy = (*ForkBased)(nil)

func init() {
	Register(KindFork, func(p *vmem.Process) Strategy { return NewForkBased(p) })
}
