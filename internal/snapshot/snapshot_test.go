package snapshot

import (
	"math/rand"
	"testing"

	"ankerdb/internal/cost"
	"ankerdb/internal/vmem"
)

const pageSize = 4096

// harness bundles a process with one strategy and a way to make
// strategy-appropriate source regions.
type harness struct {
	proc     *vmem.Process
	strategy Strategy
	region   func(t *testing.T, pages int) Region
}

func newHarness(t *testing.T, name string) *harness {
	t.Helper()
	proc := vmem.NewProcess(vmem.WithCostModel(cost.Zero))
	anonRegion := func(t *testing.T, pages int) Region {
		t.Helper()
		addr, err := proc.Mmap(uint64(pages)*pageSize, vmem.ProtRead|vmem.ProtWrite, vmem.MapPrivate|vmem.MapAnonymous, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return Region{Addr: addr, Len: uint64(pages) * pageSize}
	}
	h := &harness{proc: proc, region: anonRegion}
	switch name {
	case "physical":
		h.strategy = NewPhysical(proc)
	case "fork":
		h.strategy = NewForkBased(proc)
	case "vm_snapshot":
		h.strategy = NewVMSnap(proc)
	case "rewiring":
		r := NewRewired(proc)
		h.strategy = r
		h.region = func(t *testing.T, pages int) Region {
			t.Helper()
			reg, _, err := r.NewRegion("col", uint64(pages)*pageSize)
			if err != nil {
				t.Fatal(err)
			}
			return reg
		}
	default:
		t.Fatalf("unknown strategy %q", name)
	}
	return h
}

var allStrategies = []string{"physical", "fork", "rewiring", "vm_snapshot"}

func fillRegion(p *vmem.Process, r Region, seed uint64) {
	for off := uint64(0); off < r.Len; off += 8 {
		p.Store(r.Addr+off, seed+off/8)
	}
}

func TestStrategyNames(t *testing.T) {
	for _, name := range allStrategies {
		h := newHarness(t, name)
		if got := h.strategy.Name(); got != name {
			t.Errorf("Name() = %q, want %q", got, name)
		}
	}
}

func TestSnapshotSeesSourceContent(t *testing.T) {
	for _, name := range allStrategies {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, name)
			reg := h.region(t, 8)
			fillRegion(h.proc, reg, 1000)
			snap, err := h.strategy.Snapshot([]Region{reg})
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Release()
			sr := snap.Regions()[0]
			reader := snap.Reader()
			for off := uint64(0); off < sr.Len; off += 8 * 101 {
				if got, want := reader.Load(sr.Addr+off), 1000+off/8; got != want {
					t.Fatalf("snapshot word at +%d = %d, want %d", off, got, want)
				}
			}
		})
	}
}

func TestSourceWritesInvisibleInSnapshot(t *testing.T) {
	for _, name := range allStrategies {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, name)
			reg := h.region(t, 8)
			fillRegion(h.proc, reg, 0)
			snap, err := h.strategy.Snapshot([]Region{reg})
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Release()
			// Scatter writes over the source after the snapshot.
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 200; i++ {
				off := uint64(rng.Intn(int(reg.Len/8))) * 8
				h.proc.Store(reg.Addr+off, ^uint64(0))
			}
			sr := snap.Regions()[0]
			reader := snap.Reader()
			for off := uint64(0); off < sr.Len; off += 8 {
				if got, want := reader.Load(sr.Addr+off), off/8; got != want {
					t.Fatalf("snapshot word at +%d = %d, want %d (source write leaked)", off, got, want)
				}
			}
			// And the source does see its own writes.
			h.proc.Store(reg.Addr, 77)
			if got := h.proc.Load(reg.Addr); got != 77 {
				t.Fatalf("source lost its own write: %d", got)
			}
		})
	}
}

func TestMultiRegionSnapshot(t *testing.T) {
	for _, name := range allStrategies {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, name)
			regs := []Region{h.region(t, 2), h.region(t, 4), h.region(t, 3)}
			for i, r := range regs {
				fillRegion(h.proc, r, uint64(i)*10000)
			}
			snap, err := h.strategy.Snapshot(regs)
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Release()
			if len(snap.Regions()) != 3 {
				t.Fatalf("got %d snapshot regions, want 3", len(snap.Regions()))
			}
			reader := snap.Reader()
			for i, sr := range snap.Regions() {
				if sr.Len != regs[i].Len {
					t.Fatalf("region %d length %d, want %d", i, sr.Len, regs[i].Len)
				}
				for off := uint64(0); off < sr.Len; off += 8 * 63 {
					if got, want := reader.Load(sr.Addr+off), uint64(i)*10000+off/8; got != want {
						t.Fatalf("region %d word at +%d = %d, want %d", i, off, got, want)
					}
				}
			}
		})
	}
}

func TestEmptyAndInvalidRegions(t *testing.T) {
	for _, name := range allStrategies {
		h := newHarness(t, name)
		if _, err := h.strategy.Snapshot(nil); err == nil {
			t.Errorf("%s: snapshot of no regions succeeded", name)
		}
		if _, err := h.strategy.Snapshot([]Region{{Addr: 4096, Len: 0}}); err == nil {
			t.Errorf("%s: snapshot of empty region succeeded", name)
		}
	}
}

func TestReleaseFreesPages(t *testing.T) {
	for _, name := range allStrategies {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, name)
			reg := h.region(t, 16)
			fillRegion(h.proc, reg, 0)
			live := h.proc.Allocator().Stats().Live
			snap, err := h.strategy.Snapshot([]Region{reg})
			if err != nil {
				t.Fatal(err)
			}
			snap.Release()
			snap.Release() // idempotent
			if got := h.proc.Allocator().Stats().Live; got != live {
				t.Fatalf("live pages %d -> %d across snapshot+release", live, got)
			}
		})
	}
}

func TestVirtualStrategiesShareUntilWrite(t *testing.T) {
	// The three virtual techniques must not copy data at creation time.
	for _, name := range []string{"fork", "rewiring", "vm_snapshot"} {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, name)
			reg := h.region(t, 64)
			fillRegion(h.proc, reg, 0)
			live := h.proc.Allocator().Stats().Live
			snap, err := h.strategy.Snapshot([]Region{reg})
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Release()
			if got := h.proc.Allocator().Stats().Live; got != live {
				t.Fatalf("virtual snapshot allocated %d pages at creation", got-live)
			}
			// One write separates exactly one page.
			h.proc.Store(reg.Addr+8, ^uint64(0))
			if got := h.proc.Allocator().Stats().Live; got != live+1 {
				t.Fatalf("one write separated %d pages, want 1", got-live)
			}
		})
	}
}

func TestPhysicalCopiesEagerly(t *testing.T) {
	h := newHarness(t, "physical")
	reg := h.region(t, 16)
	fillRegion(h.proc, reg, 0)
	live := h.proc.Allocator().Stats().Live
	snap, err := h.strategy.Snapshot([]Region{reg})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if got := h.proc.Allocator().Stats().Live; got != live+16 {
		t.Fatalf("physical snapshot allocated %d pages, want 16", got-live)
	}
}

func TestRewiringVMACountGrowsWithWrites(t *testing.T) {
	h := newHarness(t, "rewiring")
	reg := h.region(t, 32)
	fillRegion(h.proc, reg, 0)
	snap, err := h.strategy.Snapshot([]Region{reg})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	before := h.proc.NumVMAsIn(reg.Addr, reg.Len)
	if before != 1 {
		t.Fatalf("source VMAs before writes = %d, want 1", before)
	}
	// Each interior-page write splits the source VMA (net +2 per write,
	// as in Table 1: 500 writes -> 995 VMAs).
	h.proc.Store(reg.Addr+5*pageSize, 1)
	h.proc.Store(reg.Addr+10*pageSize, 1)
	after := h.proc.NumVMAsIn(reg.Addr, reg.Len)
	if after != 5 {
		t.Fatalf("source VMAs after 2 interior writes = %d, want 5", after)
	}
}

func TestRewiringSecondSnapshotAfterWrites(t *testing.T) {
	h := newHarness(t, "rewiring")
	reg := h.region(t, 8)
	fillRegion(h.proc, reg, 0)
	s1, err := h.strategy.Snapshot([]Region{reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Release()
	h.proc.Store(reg.Addr+3*pageSize, 111) // manual COW, rewires page 3
	s2, err := h.strategy.Snapshot([]Region{reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Release()
	r1, r2 := s1.Regions()[0], s2.Regions()[0]
	// s1 predates the write, s2 sees it.
	if got := h.proc.Load(r1.Addr + 3*pageSize); got != 3*pageSize/8 {
		t.Fatalf("old snapshot word = %d, want %d", got, 3*pageSize/8)
	}
	if got := h.proc.Load(r2.Addr + 3*pageSize); got != 111 {
		t.Fatalf("new snapshot word = %d, want 111", got)
	}
	// Writes after s2 are invisible in both.
	h.proc.Store(reg.Addr+3*pageSize, 222)
	if got := h.proc.Load(r2.Addr + 3*pageSize); got != 111 {
		t.Fatalf("new snapshot leaked later write: %d", got)
	}
}

func TestVMSnapSnapshotInto(t *testing.T) {
	h := newHarness(t, "vm_snapshot")
	v := h.strategy.(*VMSnap)
	reg := h.region(t, 4)
	fillRegion(h.proc, reg, 500)
	snap, err := v.Snapshot([]Region{reg})
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	sr := snap.Regions()[0]
	h.proc.Store(reg.Addr, 999)
	// Recycle the stale snapshot area with a fresh snapshot.
	if err := v.SnapshotInto(sr, reg); err != nil {
		t.Fatal(err)
	}
	if got := h.proc.Load(sr.Addr); got != 999 {
		t.Fatalf("recycled snapshot word = %d, want 999", got)
	}
}

func TestForkSnapshotIndependentOfRequestedRegions(t *testing.T) {
	h := newHarness(t, "fork")
	regs := []Region{h.region(t, 4), h.region(t, 4)}
	for _, r := range regs {
		fillRegion(h.proc, r, 7)
	}
	st0 := h.proc.Stats()
	one, err := h.strategy.Snapshot(regs[:1])
	if err != nil {
		t.Fatal(err)
	}
	mid := h.proc.Stats()
	one.Release()
	both, err := h.strategy.Snapshot(regs)
	if err != nil {
		t.Fatal(err)
	}
	end := h.proc.Stats()
	both.Release()
	if a, b := mid.PTECopies-st0.PTECopies, end.PTECopies-mid.PTECopies; a != b {
		t.Fatalf("fork PTE copies differ with requested regions: %d vs %d", a, b)
	}
}
