package snapshot

import (
	"fmt"
	"sort"
	"sync"

	"ankerdb/internal/mmfile"
	"ankerdb/internal/vmem"
)

// Canonical strategy names, usable with New. Each strategy file
// registers itself under one of these in an init function, so linking a
// strategy into the binary is what makes it constructible by name.
const (
	KindPhysical = "physical"
	KindFork     = "fork"
	KindRewired  = "rewired"
	KindVMSnap   = "vmsnap"
)

// Constructor builds a strategy operating on proc's address space.
type Constructor func(proc *vmem.Process) Strategy

var (
	regMu    sync.Mutex
	registry = map[string]Constructor{}
)

// aliases maps historical / paper-facing spellings to canonical names,
// so benchmark output names (Strategy.Name) round-trip through New.
var aliases = map[string]string{
	"rewiring":    KindRewired,
	"vm_snapshot": KindVMSnap,
	"forkbased":   KindFork,
}

// Register makes a strategy constructible by name. It panics on
// duplicate registration, which indicates an init-order bug.
func Register(name string, c Constructor) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("snapshot: duplicate strategy %q", name))
	}
	registry[name] = c
}

// New constructs the named strategy for proc. Canonical names and the
// aliases used in the paper's benchmark output are both accepted.
func New(name string, proc *vmem.Process) (Strategy, error) {
	regMu.Lock()
	c := registry[name]
	if c == nil {
		if canon, ok := aliases[name]; ok {
			c = registry[canon]
		}
	}
	regMu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("snapshot: unknown strategy %q (have %v)", name, Names())
	}
	return c(proc), nil
}

// Names returns the canonical registered strategy names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegionAllocator is implemented by strategies whose source regions need
// special backing. Rewired snapshotting can only snapshot shared
// mappings of main-memory files, so callers hosting data that will be
// snapshotted must allocate it through NewRegion when the strategy
// implements this interface.
type RegionAllocator interface {
	NewRegion(name string, length uint64) (Region, *mmfile.File, error)
}
