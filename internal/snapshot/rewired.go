package snapshot

import (
	"fmt"
	"sync"

	"ankerdb/internal/mmfile"
	"ankerdb/internal/vmem"
)

// Rewired is user-space rewired snapshotting (Section 3.2.3, after the
// RUMA paper): source regions live in shared mappings of main-memory
// files, so the virtual-to-physical mapping is visible and mutable from
// user space. To snapshot, a fresh virtual area is mmap-ed to the same
// file offsets, one mmap call per VMA backing the source — the cost
// that grows with every copy-on-write the source has absorbed. The
// source is then write-protected; the first write to each of its pages
// raises a fault that the strategy handles manually: claim an unused
// page at the file's tail, copy the old content, and rewire the
// faulting page to the new offset.
type Rewired struct {
	proc *vmem.Process

	mu    sync.Mutex
	files map[*mmfile.File]bool // files under rewiring management
}

// NewRewired returns the rewired snapshotting strategy for proc and
// installs its manual copy-on-write fault hook.
func NewRewired(proc *vmem.Process) *Rewired {
	r := &Rewired{proc: proc, files: map[*mmfile.File]bool{}}
	proc.SetFaultHook(r.handleWriteFault)
	return r
}

// Name implements Strategy.
func (*Rewired) Name() string { return "rewiring" }

// NewRegion allocates a rewirable region of length bytes: a fresh
// main-memory file mapped shared and writable. Columns that will be
// snapshotted with rewiring must live in such regions.
func (r *Rewired) NewRegion(name string, length uint64) (Region, *mmfile.File, error) {
	f := mmfile.Create(name, r.proc.Allocator())
	f.Truncate(int(length / r.proc.PageSize()))
	addr, err := r.proc.Mmap(length, vmem.ProtRead|vmem.ProtWrite, vmem.MapShared, f, 0)
	if err != nil {
		return Region{}, nil, err
	}
	r.mu.Lock()
	r.files[f] = true
	r.mu.Unlock()
	return Region{Addr: addr, Len: length}, f, nil
}

// handleWriteFault is the simulated SIGSEGV handler performing manual
// copy-on-write: detect the write, claim an unused page from the file,
// copy the content over, and rewire the faulting virtual page to the
// new physical page. Compare Figure 5b: this path is several times more
// expensive than the kernel's own COW.
func (r *Rewired) handleWriteFault(p *vmem.Process, addr uint64) bool {
	file, off, ok := p.Translation(addr)
	if !ok {
		return false
	}
	r.mu.Lock()
	managed := r.files[file]
	r.mu.Unlock()
	if !managed {
		return false
	}
	newOff, newPage := file.AppendPage()
	copy(newPage.Words, file.PageAt(off).Words)
	pageAddr := addr &^ (p.PageSize() - 1)
	err := p.MmapFixed(pageAddr, p.PageSize(), vmem.ProtRead|vmem.ProtWrite, vmem.MapShared, file, newOff)
	return err == nil
}

// Snapshot implements Strategy: for every VMA backing each region, the
// corresponding portion of a fresh area is mmap-ed to the same file
// offsets; then the source is write-protected so the next writes fault
// into manual COW.
func (r *Rewired) Snapshot(regions []Region) (Snap, error) {
	if err := checkRegions(regions); err != nil {
		return nil, err
	}
	out := make([]Region, len(regions))
	// fail rolls back the snapshot areas built so far, including the
	// partially rewired area of the failing region.
	fail := func(i int, partial Region, err error) (Snap, error) {
		munmapRegions(r.proc, out[:i])
		if partial.Addr != 0 {
			_ = r.proc.Munmap(partial.Addr, partial.Len)
		}
		return nil, err
	}
	for i, reg := range regions {
		mappings := r.proc.DescribeRange(reg.Addr, reg.Len)
		if len(mappings) == 0 {
			return fail(i, Region{}, fmt.Errorf("rewired snapshot: region %#x not mapped", reg.Addr))
		}
		var snapAddr uint64
		for j, m := range mappings {
			if m.File == nil || m.Flags&vmem.MapShared == 0 {
				return fail(i, Region{Addr: snapAddr, Len: reg.Len},
					fmt.Errorf("rewired snapshot: region %#x is not a shared file mapping", reg.Addr))
			}
			if j == 0 {
				// First VMA also reserves the whole area; its tail is
				// immediately rewired by the following mmaps.
				a, err := r.proc.Mmap(reg.Len, vmem.ProtRead, vmem.MapShared, m.File, m.FileOff)
				if err != nil {
					return fail(i, Region{}, err)
				}
				snapAddr = a
				continue
			}
			dst := snapAddr + (m.Addr - reg.Addr)
			if err := r.proc.MmapFixed(dst, m.Len, vmem.ProtRead, vmem.MapShared, m.File, m.FileOff); err != nil {
				return fail(i, Region{Addr: snapAddr, Len: reg.Len}, err)
			}
		}
		// Write-protect the source: the detection mechanism for manual
		// copy-on-write (the paper's extra mprotect pass).
		if err := r.proc.Mprotect(reg.Addr, reg.Len, vmem.ProtRead); err != nil {
			return fail(i, Region{Addr: snapAddr, Len: reg.Len}, err)
		}
		out[i] = Region{Addr: snapAddr, Len: reg.Len}
	}
	s := &baseSnap{proc: r.proc, regions: out}
	s.release = func() { munmapRegions(r.proc, out) }
	return s, nil
}

var (
	_ Strategy        = (*Rewired)(nil)
	_ RegionAllocator = (*Rewired)(nil)
)

func init() {
	Register(KindRewired, func(p *vmem.Process) Strategy { return NewRewired(p) })
}
