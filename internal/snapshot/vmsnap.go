package snapshot

import "ankerdb/internal/vmem"

// VMSnap is the paper's approach (Section 4): one vm_snapshot system
// call per region duplicates the VMAs and PTEs of the source so the
// snapshot shares all physical pages copy-on-write. Creation cost is a
// single kernel entry plus a bulk page-table copy — independent of the
// VMA fragmentation that cripples rewiring — and writes to the source
// are handled by the kernel's own COW, several times cheaper than the
// manual user-space path (Figure 5b).
type VMSnap struct {
	proc *vmem.Process
}

// NewVMSnap returns the vm_snapshot-based strategy for proc.
func NewVMSnap(proc *vmem.Process) *VMSnap { return &VMSnap{proc: proc} }

// Name implements Strategy.
func (*VMSnap) Name() string { return "vm_snapshot" }

// Snapshot implements Strategy: one vm_snapshot call per region.
func (v *VMSnap) Snapshot(regions []Region) (Snap, error) {
	if err := checkRegions(regions); err != nil {
		return nil, err
	}
	out := make([]Region, len(regions))
	for i, r := range regions {
		addr, err := v.proc.VMSnapshot(0, r.Addr, r.Len)
		if err != nil {
			munmapRegions(v.proc, out[:i])
			return nil, err
		}
		out[i] = Region{Addr: addr, Len: r.Len}
	}
	s := &baseSnap{proc: v.proc, regions: out}
	s.release = func() { munmapRegions(v.proc, out) }
	return s, nil
}

// SnapshotInto recreates the snapshot of src over the previously
// created snapshot dst, recycling its virtual memory area (the
// three-argument form of vm_snapshot, Section 4.1.3).
func (v *VMSnap) SnapshotInto(dst Region, src Region) error {
	_, err := v.proc.VMSnapshot(dst.Addr, src.Addr, src.Len)
	return err
}

var _ Strategy = (*VMSnap)(nil)

func init() {
	Register(KindVMSnap, func(p *vmem.Process) Strategy { return NewVMSnap(p) })
}
