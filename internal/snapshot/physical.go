package snapshot

import (
	"ankerdb/internal/vmem"
)

// Physical is eager physical snapshotting (Section 3.1): a fresh
// virtual memory area is allocated and the content of every region is
// deep-copied into it with memcpy. Creation cost is proportional to the
// amount of data, independent of how much of it will ever be modified.
type Physical struct {
	proc *vmem.Process
}

// NewPhysical returns the physical snapshotting strategy for proc.
func NewPhysical(proc *vmem.Process) *Physical { return &Physical{proc: proc} }

// Name implements Strategy.
func (*Physical) Name() string { return "physical" }

// Snapshot implements Strategy: it allocates len(regions) fresh areas
// and copies the source bytes over.
func (p *Physical) Snapshot(regions []Region) (Snap, error) {
	if err := checkRegions(regions); err != nil {
		return nil, err
	}
	out := make([]Region, len(regions))
	buf := make([]uint64, p.proc.PageWords())
	for i, r := range regions {
		addr, err := p.proc.Mmap(r.Len, vmem.ProtRead|vmem.ProtWrite, vmem.MapPrivate|vmem.MapAnonymous, nil, 0)
		if err != nil {
			munmapRegions(p.proc, out[:i])
			return nil, err
		}
		// Page-wise memcpy: the eager separation of source and
		// snapshot that Table 1 prices.
		for off := uint64(0); off < r.Len; off += p.proc.PageSize() {
			p.proc.ReadWords(r.Addr+off, buf)
			p.proc.WriteWords(addr+off, buf)
		}
		out[i] = Region{Addr: addr, Len: r.Len}
	}
	s := &baseSnap{proc: p.proc, regions: out}
	s.release = func() { munmapRegions(p.proc, out) }
	return s, nil
}

var _ Strategy = (*Physical)(nil)

func init() {
	Register(KindPhysical, func(p *vmem.Process) Strategy { return NewPhysical(p) })
}
