// Package snapshot implements the four snapshot-creation techniques the
// paper compares (Section 3 and Section 4):
//
//   - Physical:  eager deep copy of the data (Section 3.1)
//   - ForkBased: fork the whole process, COW by the kernel (Section 3.2.2)
//   - Rewired:   per-VMA re-mmap of a main-memory file plus manual
//     copy-on-write driven by write-protection faults (Section 3.2.3)
//   - VMSnap:    the paper's custom vm_snapshot system call (Section 4)
//
// All strategies implement Strategy over columns hosted in the simulated
// virtual memory subsystem (internal/vmem), so their creation costs and
// write-after-snapshot costs can be compared head to head, reproducing
// Table 1 and Figure 5.
package snapshot

import (
	"fmt"

	"ankerdb/internal/vmem"
)

// Region is one contiguous virtual memory area to snapshot (a column in
// the micro-benchmarks).
type Region struct {
	Addr uint64
	Len  uint64
}

// Snap is a created snapshot: a read-only view of the regions at
// creation time. Regions()[i] is the snapshot of the i-th source region.
type Snap interface {
	// Regions returns where the snapshotted data lives.
	Regions() []Region
	// Reader returns the process whose address space holds the
	// snapshot regions (the child process for fork-based snapshots,
	// the snapshotting process itself otherwise).
	Reader() *vmem.Process
	// Release frees the snapshot.
	Release()
}

// Strategy creates snapshots of regions inside proc.
type Strategy interface {
	// Name identifies the technique in benchmark output.
	Name() string
	// Snapshot creates a snapshot of the given regions.
	Snapshot(regions []Region) (Snap, error)
}

// baseSnap is the common Snap shape for single-process strategies.
type baseSnap struct {
	proc    *vmem.Process
	regions []Region
	release func()
}

func (s *baseSnap) Regions() []Region     { return s.regions }
func (s *baseSnap) Reader() *vmem.Process { return s.proc }
func (s *baseSnap) Release() {
	if s.release != nil {
		s.release()
		s.release = nil
	}
}

// munmapRegions unmaps snapshot areas in proc, ignoring errors. Used
// both to release snapshots and to roll back partially created ones
// when a later region fails.
func munmapRegions(proc *vmem.Process, regions []Region) {
	for _, r := range regions {
		_ = proc.Munmap(r.Addr, r.Len)
	}
}

func checkRegions(regions []Region) error {
	if len(regions) == 0 {
		return fmt.Errorf("snapshot: no regions")
	}
	for _, r := range regions {
		if r.Len == 0 {
			return fmt.Errorf("snapshot: empty region at %#x", r.Addr)
		}
	}
	return nil
}
