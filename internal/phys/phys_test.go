package phys

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewAllocatorValidation(t *testing.T) {
	for _, bad := range []int{0, -4096, 3000, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAllocator(%d) did not panic", bad)
				}
			}()
			NewAllocator(bad)
		}()
	}
	a := NewAllocator(4096)
	if a.PageSize() != 4096 || a.WordsPerPage() != 512 {
		t.Fatalf("got pageSize=%d words=%d", a.PageSize(), a.WordsPerPage())
	}
}

func TestAllocZeroFills(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p := a.Alloc()
	if len(p.Words) != a.WordsPerPage() {
		t.Fatalf("page has %d words, want %d", len(p.Words), a.WordsPerPage())
	}
	for i, w := range p.Words {
		if w != 0 {
			t.Fatalf("word %d = %d, want 0", i, w)
		}
	}
	if p.Refs() != 1 {
		t.Fatalf("fresh page refs = %d, want 1", p.Refs())
	}
}

func TestRecycledPageIsZeroed(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p := a.Alloc()
	for i := range p.Words {
		p.Words[i] = 0xdeadbeef
	}
	a.Put(p)
	q := a.Alloc()
	if q != p {
		t.Fatalf("expected page to be recycled")
	}
	for i, w := range q.Words {
		if w != 0 {
			t.Fatalf("recycled word %d = %#x, want 0", i, w)
		}
	}
}

func TestRefCounting(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p := a.Alloc()
	a.Get(p)
	a.Get(p)
	if p.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", p.Refs())
	}
	a.Put(p)
	a.Put(p)
	if s := a.Stats(); s.Live != 1 {
		t.Fatalf("live = %d, want 1 while one ref held", s.Live)
	}
	a.Put(p)
	if s := a.Stats(); s.Live != 0 || s.Frees != 1 {
		t.Fatalf("after final put: live=%d frees=%d, want 0/1", s.Live, s.Frees)
	}
}

func TestPutBelowZeroPanics(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p := a.Alloc()
	a.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	a.Put(p)
}

func TestGetOnFreePagePanics(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p := a.Alloc()
	a.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("Get on freed page did not panic")
		}
	}()
	a.Get(p)
}

func TestZeroPageSurvivesPut(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	z := a.ZeroPage()
	a.Get(z)
	a.Put(z)
	if z.Refs() < 1 {
		t.Fatalf("zero page refs = %d, want >= 1", z.Refs())
	}
	// Putting the mapping ref must never recycle the zero page.
	a.Get(z)
	a.Put(z)
	p := a.Alloc()
	if p == z {
		t.Fatal("allocator recycled the zero page")
	}
}

func TestAllocNoZeroKeepsGarbage(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p := a.Alloc()
	p.Words[7] = 42
	a.Put(p)
	q := a.AllocNoZero()
	if q != p {
		t.Fatal("expected recycled page")
	}
	if q.Words[7] != 42 {
		t.Fatalf("AllocNoZero zeroed the page (word=%d)", q.Words[7])
	}
}

func TestStatsCounters(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p1 := a.Alloc()
	p2 := a.Alloc()
	a.Put(p1)
	_ = a.Alloc() // recycles p1
	s := a.Stats()
	if s.Allocs != 3 || s.Recycled != 1 || s.Frees != 1 || s.Live != 2 {
		t.Fatalf("stats = %+v, want allocs=3 recycled=1 frees=1 live=2", s)
	}
	_ = p2
}

func TestConcurrentAllocPut(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]*Page, 0, 64)
			for i := 0; i < 500; i++ {
				local = append(local, a.Alloc())
				if len(local) > 32 {
					a.Put(local[0])
					local = local[1:]
				}
			}
			for _, p := range local {
				a.Put(p)
			}
		}()
	}
	wg.Wait()
	if s := a.Stats(); s.Live != 0 {
		t.Fatalf("live = %d after all puts, want 0", s.Live)
	}
}

func TestConcurrentRefCounting(t *testing.T) {
	a := NewAllocator(DefaultPageSize)
	p := a.Alloc()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Get(p)
				a.Put(p)
			}
		}()
	}
	wg.Wait()
	if p.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", p.Refs())
	}
}

func TestPropertyLiveNeverNegative(t *testing.T) {
	// Property: any interleaving of alloc/put keeps Live == #outstanding.
	f := func(ops []bool) bool {
		a := NewAllocator(DefaultPageSize)
		var held []*Page
		for _, alloc := range ops {
			if alloc || len(held) == 0 {
				held = append(held, a.Alloc())
			} else {
				a.Put(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		return a.Stats().Live == int64(len(held))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
