// Package phys simulates the physical memory layer of the machine: a
// pool of fixed-size, reference-counted pages.
//
// The paper manipulates the mapping between virtual pages and physical
// pages (Figure 2). This package is the "physical" half of that picture:
// pages are allocated from a pool, shared between mappings via reference
// counts (the mechanism behind copy-on-write), and recycled when the last
// reference is dropped.
//
// Pages store 64-bit words rather than bytes. Every datum in the system
// (column values, write timestamps, dictionary codes) is a word, and word
// storage lets concurrent readers use sync/atomic on page elements
// directly, without unsafe pointer casts.
package phys

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the small-page size used throughout the paper
// (4 KiB). The allocator is parameterised so that the huge-page ablation
// can instantiate a 2 MiB pool.
const DefaultPageSize = 4096

// WordSize is the size of one storage word in bytes.
const WordSize = 8

// Page is one physical memory page. Words always holds exactly
// PageSize()/WordSize entries of the owning allocator. The reference
// count tracks how many page-table entries map this page; a count
// greater than one means the page is shared and must be copied before a
// private write (copy-on-write).
type Page struct {
	refs  atomic.Int32
	Words []uint64
}

// Refs returns the current reference count. It is advisory under
// concurrency and exact when the caller serialises mapping changes.
func (p *Page) Refs() int32 { return p.refs.Load() }

// Stats reports allocator activity. Counters are cumulative except
// Live, which is the number of pages currently referenced.
type Stats struct {
	Allocs   uint64 // pages handed out (fresh or recycled)
	Frees    uint64 // pages whose last reference was dropped
	Recycled uint64 // allocations served from the free list
	Live     int64  // currently referenced pages
	Zeroed   uint64 // pages zero-filled on allocation
}

// Allocator is a pool of physical pages. Allocation zero-fills pages
// (as the kernel does for anonymous memory) and reuses freed pages.
// It is safe for concurrent use.
type Allocator struct {
	pageSize int
	words    int

	mu   sync.Mutex
	free []*Page

	zero *Page // the shared zero page, mapped read-only on first touch

	allocs   atomic.Uint64
	frees    atomic.Uint64
	recycled atomic.Uint64
	zeroed   atomic.Uint64
	live     atomic.Int64
}

// NewAllocator returns a pool of pages of the given size in bytes.
// Size must be a positive power of two and a multiple of WordSize.
func NewAllocator(pageSize int) *Allocator {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 || pageSize%WordSize != 0 {
		panic(fmt.Sprintf("phys: page size %d is not a positive power-of-two multiple of %d", pageSize, WordSize))
	}
	a := &Allocator{pageSize: pageSize, words: pageSize / WordSize}
	a.zero = &Page{Words: make([]uint64, a.words)}
	a.zero.refs.Store(1) // permanent self-reference: the zero page is never freed
	return a
}

// PageSize returns the size in bytes of every page in the pool.
func (a *Allocator) PageSize() int { return a.pageSize }

// WordsPerPage returns the number of 64-bit words in every page.
func (a *Allocator) WordsPerPage() int { return a.words }

// ZeroPage returns the shared zero page. Anonymous reads that touch a
// page before any write map this page copy-on-write, exactly as the
// kernel maps its global zero page.
func (a *Allocator) ZeroPage() *Page { return a.zero }

func (a *Allocator) take() *Page {
	a.mu.Lock()
	var p *Page
	if n := len(a.free); n > 0 {
		p = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	}
	a.mu.Unlock()
	if p != nil {
		a.recycled.Add(1)
	}
	return p
}

// Alloc returns a zero-filled page with reference count 1.
func (a *Allocator) Alloc() *Page {
	a.allocs.Add(1)
	a.live.Add(1)
	p := a.take()
	if p == nil {
		p = &Page{Words: make([]uint64, a.words)}
	} else {
		clear(p.Words)
	}
	a.zeroed.Add(1)
	p.refs.Store(1)
	return p
}

// AllocNoZero returns a page without zero-filling it. It exists for
// callers that immediately overwrite the whole page (the copy-on-write
// path), mirroring the kernel's cow_user_page which copies rather than
// clears.
func (a *Allocator) AllocNoZero() *Page {
	a.allocs.Add(1)
	a.live.Add(1)
	p := a.take()
	if p == nil {
		p = &Page{Words: make([]uint64, a.words)}
	}
	p.refs.Store(1)
	return p
}

// Get adds a reference to p (a new mapping of the same physical page).
func (a *Allocator) Get(p *Page) {
	if p.refs.Add(1) <= 1 {
		panic("phys: Get on unreferenced page")
	}
}

// Put drops one reference from p. When the last reference is dropped the
// page returns to the free list.
func (a *Allocator) Put(p *Page) {
	if p == a.zero {
		if p.refs.Add(-1) < 1 {
			panic("phys: zero page over-released")
		}
		return
	}
	n := p.refs.Add(-1)
	switch {
	case n < 0:
		panic("phys: Put below zero references")
	case n == 0:
		a.frees.Add(1)
		a.live.Add(-1)
		a.mu.Lock()
		a.free = append(a.free, p)
		a.mu.Unlock()
	}
}

// Stats returns a snapshot of allocator counters.
func (a *Allocator) Stats() Stats {
	return Stats{
		Allocs:   a.allocs.Load(),
		Frees:    a.frees.Load(),
		Recycled: a.recycled.Load(),
		Zeroed:   a.zeroed.Load(),
		Live:     a.live.Load(),
	}
}
