// Package index implements transactional secondary indexes over the
// engine's MVCC column store. An index maps column values to row ids
// through entries that carry birth/death commit timestamps exactly
// like the per-table row-visibility arrays: an entry is visible at
// snapshot timestamp ts iff birth <= ts && (death == 0 || death > ts),
// so a reader probing at its generation's timestamp sees precisely the
// value→row associations its generation should — updates never remove
// entries, they death-stamp the displaced one and birth a new one.
//
// Two physical layouts back the same entry model:
//
//   - Hash: a bucket map keyed by value. O(1) equality probes; range
//     probes are declined (except the degenerate lo == hi point).
//   - Ordered: sorted runs merged geometrically, LSM-style. An
//     unsorted append buffer absorbs maintenance writes and is flushed
//     as a sorted run when full; adjacent runs of comparable size are
//     merged so probe cost stays O(runs · log n) with runs logarithmic
//     in n. Serves both equality and range probes.
//
// Writers (Add/Insert/Kill/Prune) run inside the owning commit shard's
// critical section and take the exclusive lock; readers probe under
// the shared lock, so probes never block each other and the
// commit-shard lock order establishes happens-before with the
// snapshot-generation watermark.
//
// minTS is the build floor: an index built online over an existing
// table cannot index the pre-build values that live only in version
// chains, so probes at ts < minTS are refused (Valid reports false)
// and the caller falls back to the scan path, which repairs from
// chains. Indexes built at table creation or during recovery (where
// chains are empty) use minTS 0.
package index

import (
	"sort"
	"sync"
)

// Kind selects the physical index layout.
type Kind uint8

// Index kinds. None is the zero value so an un-annotated column
// declaration means "no index".
const (
	None Kind = iota
	Hash
	Ordered
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Hash:
		return "hash"
	case Ordered:
		return "ordered"
	}
	return "invalid"
}

// Valid reports whether k names an actual index layout.
func (k Kind) Valid() bool { return k == Hash || k == Ordered }

// entry is one value→row association alive over [birth, death).
// death == 0 means still live. A row has at most one entry visible at
// any timestamp for a given column: value changes kill the old entry
// at the commit timestamp that births the new one.
type entry struct {
	val          int64
	birth, death uint64
	row          int32
}

func (e *entry) visibleAt(ts uint64) bool {
	return e.birth <= ts && (e.death == 0 || e.death > ts)
}

// bufMax bounds the ordered index's unsorted append buffer; a full
// buffer is sorted and flushed as a run.
const bufMax = 512

// Index is one column's secondary index. All methods are safe for
// concurrent use; writers exclude readers but readers share.
type Index struct {
	kind  Kind
	minTS uint64

	mu      sync.RWMutex
	buckets map[int64][]entry // Hash: value → entries
	runs    [][]entry         // Ordered: each sorted by (val, row, birth)
	buf     []entry           // Ordered: unsorted tail, len < bufMax after any writer
	n       int               // total entries across the structure
	nLive   int               // of those, entries with death == 0
}

// New returns an empty index of the given kind. Probes at timestamps
// below minTS are refused (see the package comment).
func New(kind Kind, minTS uint64) *Index {
	ix := &Index{kind: kind, minTS: minTS}
	if kind == Hash {
		ix.buckets = make(map[int64][]entry)
	}
	return ix
}

// Kind returns the physical layout.
func (ix *Index) Kind() Kind { return ix.kind }

// MinTS returns the build floor.
func (ix *Index) MinTS() uint64 { return ix.minTS }

// Valid reports whether probes at ts can be served: readers below the
// build floor must use the scan path.
func (ix *Index) Valid(ts uint64) bool { return ts >= ix.minTS }

// Len returns the total entry count, live and death-stamped.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.n
}

// LiveLen returns the live (not death-stamped) entry count: the
// associations a probe at the current timestamp can actually return.
// Len minus LiveLen is the churn backlog awaiting Prune.
func (ix *Index) LiveLen() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.nLive
}

// Add records that row carries val from commit timestamp ts on.
func (ix *Index) Add(val int64, row int, ts uint64) { ix.Insert(val, row, ts, 0) }

// Insert records a raw entry with explicit birth and death timestamps.
// Online builds use it to copy a row's actual visibility extent, so a
// probe at any servable timestamp answers row visibility exactly.
func (ix *Index) Insert(val int64, row int, birth, death uint64) {
	e := entry{val: val, row: int32(row), birth: birth, death: death}
	ix.mu.Lock()
	ix.n++
	if death == 0 {
		ix.nLive++
	}
	if ix.kind == Hash {
		ix.buckets[val] = append(ix.buckets[val], e)
	} else {
		ix.buf = append(ix.buf, e)
		if len(ix.buf) >= bufMax {
			ix.flushLocked()
		}
	}
	ix.mu.Unlock()
}

// Kill death-stamps the live entry associating row with val at commit
// timestamp ts: readers at or above ts no longer see it. It reports
// whether a live entry was found; false means the association predates
// the index build, which is fine — those readers scan.
func (ix *Index) Kill(val int64, row int, ts uint64) bool {
	r := int32(row)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.kind == Hash {
		b := ix.buckets[val]
		for i := len(b) - 1; i >= 0; i-- { // live entry is the newest
			if b[i].row == r && b[i].death == 0 {
				b[i].death = ts
				ix.nLive--
				return true
			}
		}
		return false
	}
	for i := len(ix.buf) - 1; i >= 0; i-- {
		e := &ix.buf[i]
		if e.val == val && e.row == r && e.death == 0 {
			e.death = ts
			ix.nLive--
			return true
		}
	}
	for ri := len(ix.runs) - 1; ri >= 0; ri-- {
		run := ix.runs[ri]
		i := sort.Search(len(run), func(i int) bool { return run[i].val >= val })
		for ; i < len(run) && run[i].val == val; i++ {
			if run[i].row == r && run[i].death == 0 {
				run[i].death = ts
				ix.nLive--
				return true
			}
		}
	}
	return false
}

// flushLocked sorts the append buffer into a run and merges adjacent
// runs of comparable size, keeping run count logarithmic.
func (ix *Index) flushLocked() {
	run := make([]entry, len(ix.buf))
	copy(run, ix.buf)
	ix.buf = ix.buf[:0]
	sortRun(run)
	ix.runs = append(ix.runs, run)
	for len(ix.runs) >= 2 {
		a := ix.runs[len(ix.runs)-2]
		b := ix.runs[len(ix.runs)-1]
		if len(a) > 2*len(b) {
			break
		}
		ix.runs = ix.runs[:len(ix.runs)-2]
		ix.runs = append(ix.runs, mergeRuns(a, b))
	}
}

func entryLess(a, b *entry) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	if a.row != b.row {
		return a.row < b.row
	}
	return a.birth < b.birth
}

func sortRun(run []entry) {
	sort.Slice(run, func(i, j int) bool { return entryLess(&run[i], &run[j]) })
}

func mergeRuns(a, b []entry) []entry {
	out := make([]entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if entryLess(&b[j], &a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ProbeEq returns the rows whose entry for val is visible at ts, in
// ascending row order. ok is false when the probe cannot be served
// (ts below the build floor).
func (ix *Index) ProbeEq(val int64, ts uint64) (rows []int, ok bool) {
	return ix.ProbeRange(val, val, ts)
}

// ProbeRange returns the rows holding a value in [lo, hi] visible at
// ts, in ascending row order. ok is false when the probe cannot be
// served: ts below the build floor, or a true range on a hash index.
func (ix *Index) ProbeRange(lo, hi int64, ts uint64) (rows []int, ok bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ts < ix.minTS || lo > hi {
		return nil, ts >= ix.minTS
	}
	if ix.kind == Hash {
		if lo != hi {
			return nil, false
		}
		for i := range ix.buckets[lo] {
			if e := &ix.buckets[lo][i]; e.visibleAt(ts) {
				rows = append(rows, int(e.row))
			}
		}
	} else {
		for _, run := range ix.runs {
			i := sort.Search(len(run), func(i int) bool { return run[i].val >= lo })
			for ; i < len(run) && run[i].val <= hi; i++ {
				if run[i].visibleAt(ts) {
					rows = append(rows, int(run[i].row))
				}
			}
		}
		for i := range ix.buf {
			if e := &ix.buf[i]; e.val >= lo && e.val <= hi && e.visibleAt(ts) {
				rows = append(rows, int(e.row))
			}
		}
	}
	sort.Ints(rows)
	return rows, true
}

// estimateSampleMax bounds the entries EstimateRange actually tests for
// visibility per contiguous segment; larger segments are sampled at a
// stride and scaled back up, keeping the estimate O(log n + samples)
// however wide the range.
const estimateSampleMax = 64

// EstimateRange estimates the rows a probe of [lo, hi] at ts would
// return: the in-range entries of each run segment (and the hash
// bucket) have their visibility at ts tested — exactly below the sample
// budget, by a strided sample scaled back up above it. Sampling WITHIN
// the range is what makes the estimate track skewed churn: an index
// whose dead entries concentrate in one value range (a hot key churned
// by updates, a batch delete) estimates that range near zero even while
// the index-wide live fraction stays high, so the planner's selectivity
// gate stops routing probes into dead ranges — and keeps serving ranges
// whose entries are live even when some other range churned. A strided
// sample is an estimate, not a bound, in either direction. ok mirrors
// ProbeRange's serveability (ignoring the build floor, which the caller
// checks via Valid).
func (ix *Index) EstimateRange(lo, hi int64, ts uint64) (n int, ok bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if lo > hi {
		return 0, true
	}
	if ix.kind == Hash {
		if lo != hi {
			return 0, false
		}
		return sampleVisible(ix.buckets[lo], ts), true
	}
	for _, run := range ix.runs {
		i := sort.Search(len(run), func(i int) bool { return run[i].val >= lo })
		j := sort.Search(len(run), func(i int) bool { return run[i].val > hi })
		n += sampleVisible(run[i:j], ts)
	}
	for i := range ix.buf {
		if e := &ix.buf[i]; e.val >= lo && e.val <= hi && e.visibleAt(ts) {
			n++
		}
	}
	return n, true
}

// sampleVisible estimates how many of seg's entries are visible at ts:
// an exact count below the sample budget, a strided sample scaled back
// up (rounding up, so any live sample keeps the estimate nonzero)
// above it.
func sampleVisible(seg []entry, ts uint64) int {
	if len(seg) <= estimateSampleMax {
		live := 0
		for i := range seg {
			if seg[i].visibleAt(ts) {
				live++
			}
		}
		return live
	}
	stride := len(seg) / estimateSampleMax
	live, sampled := 0, 0
	for i := 0; i < len(seg); i += stride {
		if seg[i].visibleAt(ts) {
			live++
		}
		sampled++
	}
	return int((int64(live)*int64(len(seg)) + int64(sampled) - 1) / int64(sampled))
}

// Prune drops entries dead at or below floor — no live reader can see
// them once every snapshot generation's timestamp is at or above
// floor. The engine calls it from Vacuum with the version-chain GC
// floor.
func (ix *Index) Prune(floor uint64) (removed int) {
	dead := func(e *entry) bool { return e.death != 0 && e.death <= floor }
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.kind == Hash {
		for val, b := range ix.buckets {
			kept := b[:0]
			for i := range b {
				if !dead(&b[i]) {
					kept = append(kept, b[i])
				}
			}
			if len(kept) == 0 {
				delete(ix.buckets, val)
			} else {
				ix.buckets[val] = kept
			}
			removed += len(b) - len(kept)
		}
	} else {
		live := ix.runs[:0]
		for _, run := range ix.runs {
			kept := run[:0]
			for i := range run {
				if !dead(&run[i]) {
					kept = append(kept, run[i])
				}
			}
			removed += len(run) - len(kept)
			if len(kept) > 0 {
				live = append(live, kept)
			}
		}
		ix.runs = live
		kept := ix.buf[:0]
		for i := range ix.buf {
			if !dead(&ix.buf[i]) {
				kept = append(kept, ix.buf[i])
			}
		}
		removed += len(ix.buf) - len(kept)
		ix.buf = kept
	}
	ix.n -= removed
	return removed
}
