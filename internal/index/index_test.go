package index

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func kinds() []Kind { return []Kind{Hash, Ordered} }

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", Hash: "hash", Ordered: "ordered", Kind(9): "invalid"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if None.Valid() || Kind(9).Valid() {
		t.Error("None/invalid must not be Valid")
	}
	if !Hash.Valid() || !Ordered.Valid() {
		t.Error("Hash/Ordered must be Valid")
	}
}

func probeEq(t *testing.T, ix *Index, val int64, ts uint64) []int {
	t.Helper()
	rows, ok := ix.ProbeEq(val, ts)
	if !ok {
		t.Fatalf("ProbeEq(%d, %d) not servable", val, ts)
	}
	return rows
}

func TestAddProbeVisibility(t *testing.T) {
	for _, k := range kinds() {
		ix := New(k, 0)
		ix.Add(7, 3, 10) // row 3 carries 7 from ts 10
		ix.Add(7, 1, 20)
		ix.Add(9, 2, 10)

		if got := probeEq(t, ix, 7, 5); len(got) != 0 {
			t.Errorf("%v: probe before birth = %v, want empty", k, got)
		}
		if got := probeEq(t, ix, 7, 10); !reflect.DeepEqual(got, []int{3}) {
			t.Errorf("%v: probe at birth = %v, want [3]", k, got)
		}
		if got := probeEq(t, ix, 7, 25); !reflect.DeepEqual(got, []int{1, 3}) {
			t.Errorf("%v: probe = %v, want [1 3] ascending", k, got)
		}

		// Value change: kill the old association at the same ts that
		// births the new one; exactly one entry visible on either side.
		if !ix.Kill(7, 3, 30) {
			t.Fatalf("%v: Kill missed live entry", k)
		}
		ix.Add(8, 3, 30)
		if got := probeEq(t, ix, 7, 29); !reflect.DeepEqual(got, []int{1, 3}) {
			t.Errorf("%v: pre-change probe = %v, want [1 3]", k, got)
		}
		if got := probeEq(t, ix, 7, 30); !reflect.DeepEqual(got, []int{1}) {
			t.Errorf("%v: post-change probe = %v, want [1]", k, got)
		}
		if got := probeEq(t, ix, 8, 30); !reflect.DeepEqual(got, []int{3}) {
			t.Errorf("%v: new value probe = %v, want [3]", k, got)
		}
		if ix.Kill(7, 3, 40) {
			t.Errorf("%v: Kill found an already-dead entry", k)
		}
		if ix.Len() != 4 {
			t.Errorf("%v: Len = %d, want 4", k, ix.Len())
		}
	}
}

func TestMinTSGate(t *testing.T) {
	for _, k := range kinds() {
		ix := New(k, 100)
		ix.Insert(5, 0, 50, 0)
		if ix.Valid(99) {
			t.Errorf("%v: Valid(99) below floor", k)
		}
		if !ix.Valid(100) {
			t.Errorf("%v: Valid(100) must hold at floor", k)
		}
		if _, ok := ix.ProbeEq(5, 99); ok {
			t.Errorf("%v: probe below floor served", k)
		}
		if rows, ok := ix.ProbeEq(5, 100); !ok || !reflect.DeepEqual(rows, []int{0}) {
			t.Errorf("%v: probe at floor = %v/%v, want [0]/true", k, rows, ok)
		}
	}
}

func TestHashDeclinesRange(t *testing.T) {
	ix := New(Hash, 0)
	ix.Add(5, 0, 1)
	if _, ok := ix.ProbeRange(1, 9, 10); ok {
		t.Error("hash index served a true range probe")
	}
	if rows, ok := ix.ProbeRange(5, 5, 10); !ok || !reflect.DeepEqual(rows, []int{0}) {
		t.Errorf("hash point range = %v/%v, want [0]/true", rows, ok)
	}
	if _, ok := ix.EstimateRange(1, 9, 10); ok {
		t.Error("hash index estimated a true range")
	}
	if n, ok := ix.EstimateRange(5, 5, 10); !ok || n != 1 {
		t.Errorf("hash point estimate = %d/%v, want 1/true", n, ok)
	}
}

func TestOrderedRangeAcrossRuns(t *testing.T) {
	// Enough entries to force buffer flushes and geometric merges.
	ix := New(Ordered, 0)
	const n = 10 * bufMax
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, row := range perm {
		ix.Add(int64(row%100), row, 1)
	}
	for _, val := range []int64{0, 42, 99} {
		want := make([]int, 0, n/100)
		for row := 0; row < n; row++ {
			if int64(row%100) == val {
				want = append(want, row)
			}
		}
		if got := probeEq(t, ix, val, 1); !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %d: got %d rows, want %d", val, len(got), len(want))
		}
	}
	inRange := 0
	for row := 0; row < n; row++ {
		if m := row % 100; m >= 10 && m <= 19 {
			inRange++
		}
	}
	rows, ok := ix.ProbeRange(10, 19, 1)
	if !ok || len(rows) != inRange {
		t.Fatalf("range probe = %d rows/%v, want %d/true", len(rows), ok, inRange)
	}
	if !sort.IntsAreSorted(rows) {
		t.Fatal("range probe rows not ascending")
	}
	if est, ok := ix.EstimateRange(10, 19, 1); !ok || est != inRange {
		t.Fatalf("EstimateRange = %d/%v, want %d/true", est, ok, inRange)
	}
	if est, ok := ix.EstimateRange(200, 300, 1); !ok || est != 0 {
		t.Fatalf("empty EstimateRange = %d/%v, want 0/true", est, ok)
	}
}

func TestInsertCopiesExtent(t *testing.T) {
	for _, k := range kinds() {
		ix := New(k, 0)
		ix.Insert(5, 0, 10, 20) // row dead at 20: build copied its death
		if got := probeEq(t, ix, 5, 15); !reflect.DeepEqual(got, []int{0}) {
			t.Errorf("%v: mid-extent probe = %v, want [0]", k, got)
		}
		if got := probeEq(t, ix, 5, 20); len(got) != 0 {
			t.Errorf("%v: probe at death = %v, want empty", k, got)
		}
	}
}

func TestProbeAtMaxTS(t *testing.T) {
	// OLTP lookups probe at MaxUint64: live entries only.
	for _, k := range kinds() {
		ix := New(k, 0)
		ix.Add(5, 0, 10)
		ix.Add(5, 1, 10)
		ix.Kill(5, 0, 20)
		if got := probeEq(t, ix, 5, math.MaxUint64); !reflect.DeepEqual(got, []int{1}) {
			t.Errorf("%v: live probe = %v, want [1]", k, got)
		}
	}
}

func TestPrune(t *testing.T) {
	for _, k := range kinds() {
		ix := New(k, 0)
		ix.Add(1, 0, 10)
		ix.Kill(1, 0, 20)
		ix.Add(2, 0, 20)
		ix.Add(1, 1, 10)
		ix.Kill(1, 1, 50)
		if removed := ix.Prune(30); removed != 1 {
			t.Fatalf("%v: Prune(30) removed %d, want 1 (only the ts-20 death)", k, removed)
		}
		if ix.Len() != 2 {
			t.Fatalf("%v: Len after prune = %d, want 2", k, ix.Len())
		}
		// The entry dead at 50 survives floor 30 and stays visible below 50.
		if got := probeEq(t, ix, 1, 40); !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("%v: post-prune probe = %v, want [1]", k, got)
		}
		if removed := ix.Prune(50); removed != 1 {
			t.Fatalf("%v: Prune(50) removed %d, want 1", k, removed)
		}
	}
}

func TestConcurrentMaintenanceAndProbes(t *testing.T) {
	for _, k := range kinds() {
		ix := New(k, 0)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := w * 1000
				for i := 0; i < 1000; i++ {
					ix.Add(int64(i%7), base+i, uint64(i+1))
					if i%3 == 0 {
						ix.Kill(int64(i%7), base+i, uint64(i+2))
					}
				}
			}(w)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 200; i++ {
				ix.ProbeEq(int64(i%7), uint64(i))
				ix.Len()
			}
		}()
		wg.Wait()
		<-done
		if got := ix.Len(); got != 4000 {
			t.Fatalf("%v: Len = %d, want 4000", k, got)
		}
	}
}

func TestLiveLenAndChurnScaledEstimate(t *testing.T) {
	for _, k := range kinds() {
		ix := New(k, 0)
		for row := 0; row < 100; row++ {
			ix.Add(5, row, 1)
		}
		if ix.Len() != 100 || ix.LiveLen() != 100 {
			t.Fatalf("%v: Len/LiveLen = %d/%d, want 100/100", k, ix.Len(), ix.LiveLen())
		}
		// Churn: kill three quarters. The raw entry count stays put, the
		// live count tracks, and the estimate samples in-range liveness
		// instead of reporting the pre-churn 100.
		for row := 0; row < 75; row++ {
			if !ix.Kill(5, row, 2) {
				t.Fatalf("%v: Kill(5, %d) missed live entry", k, row)
			}
		}
		if ix.Len() != 100 || ix.LiveLen() != 25 {
			t.Fatalf("%v: churned Len/LiveLen = %d/%d, want 100/25", k, ix.Len(), ix.LiveLen())
		}
		if est, ok := ix.EstimateRange(5, 5, 3); !ok || est != 25 {
			t.Errorf("%v: churned EstimateRange = %d/%v, want 25/true", k, est, ok)
		}
		// Old-timestamp probes still see the killed entries: the estimate
		// is not an upper bound for them.
		if rows, ok := ix.ProbeRange(5, 5, 1); !ok || len(rows) != 100 {
			t.Errorf("%v: probe at ts 1 = %d rows, want 100", k, len(rows))
		}
		// Prune removes only dead entries, converging raw onto live.
		if removed := ix.Prune(2); removed != 75 {
			t.Errorf("%v: Prune removed %d, want 75", k, removed)
		}
		if ix.Len() != 25 || ix.LiveLen() != 25 {
			t.Errorf("%v: pruned Len/LiveLen = %d/%d, want 25/25", k, ix.Len(), ix.LiveLen())
		}
		if est, ok := ix.EstimateRange(5, 5, 3); !ok || est != 25 {
			t.Errorf("%v: pruned EstimateRange = %d/%v, want 25/true", k, est, ok)
		}
		// Ceiling: one live entry among many dead still estimates >= 1.
		for row := 25; row < 99; row++ {
			ix.Kill(5, row, 3)
		}
		if est, ok := ix.EstimateRange(5, 5, 4); !ok || est < 1 {
			t.Errorf("%v: near-dead EstimateRange = %d/%v, want >= 1", k, est, ok)
		}
	}
}

// TestEstimateRangeSkewedChurn is the case index-wide scaling got
// wrong: churn concentrated in one value range must drive THAT range's
// estimate to zero while a fully live range keeps its exact count —
// a global live fraction would smear the two together at 50% each.
func TestEstimateRangeSkewedChurn(t *testing.T) {
	ix := New(Ordered, 0)
	for row := 0; row < 2000; row++ {
		ix.Add(int64(row), row, 1)
	}
	for row := 1000; row < 2000; row++ {
		if !ix.Kill(int64(row), row, 2) {
			t.Fatalf("Kill(%d) missed live entry", row)
		}
	}
	if est, ok := ix.EstimateRange(1000, 1999, 5); !ok || est != 0 {
		t.Errorf("churned range estimate = %d/%v, want 0/true", est, ok)
	}
	if est, ok := ix.EstimateRange(0, 999, 5); !ok || est != 1000 {
		t.Errorf("live range estimate = %d/%v, want 1000/true", est, ok)
	}
	// At a timestamp before the churn every entry is visible again.
	if est, ok := ix.EstimateRange(1000, 1999, 1); !ok || est != 1000 {
		t.Errorf("pre-churn-ts estimate = %d/%v, want 1000/true", est, ok)
	}
}
