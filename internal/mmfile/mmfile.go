// Package mmfile implements main-memory files: anonymous, memory-backed
// files in the spirit of memfd_create, used as the user-space handle on
// physical memory that rewired snapshotting requires.
//
// The RUMA paper (reference [8] of the reproduced paper) reintroduces
// physical memory to user space by mapping virtual memory to main-memory
// files: because the file is backed by physical pages, the file offset is
// a stable name for a physical page, and re-mmapping a virtual page to a
// different offset "rewires" it. A File here is exactly that: a growable
// sequence of physical pages addressed by page-aligned offsets.
package mmfile

import (
	"fmt"
	"sync"

	"ankerdb/internal/phys"
)

// File is a main-memory file: a resizable array of physical pages.
// It is safe for concurrent use. The file holds one reference on every
// page it contains; mappings take their own references.
type File struct {
	name  string
	alloc *phys.Allocator

	mu    sync.Mutex
	pages []*phys.Page
}

// Create returns an empty main-memory file drawing pages from alloc.
// The name is only for diagnostics.
func Create(name string, alloc *phys.Allocator) *File {
	return &File{name: name, alloc: alloc}
}

// Name returns the diagnostic name given at creation.
func (f *File) Name() string { return f.name }

// Allocator returns the physical page pool backing the file.
func (f *File) Allocator() *phys.Allocator { return f.alloc }

// PageSize returns the page size of the backing allocator in bytes.
func (f *File) PageSize() int { return f.alloc.PageSize() }

// Len returns the current length of the file in pages.
func (f *File) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pages)
}

// Size returns the current length of the file in bytes.
func (f *File) Size() uint64 {
	return uint64(f.Len()) * uint64(f.alloc.PageSize())
}

// Truncate grows or shrinks the file to n pages. Growing materialises
// zero pages immediately (main-memory files are never sparse here:
// rewiring uses the file as its pool of physical pages). Shrinking
// releases the file's reference on the truncated pages.
func (f *File) Truncate(n int) {
	if n < 0 {
		panic("mmfile: negative truncate")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.pages) < n {
		f.pages = append(f.pages, f.alloc.Alloc())
	}
	for len(f.pages) > n {
		last := f.pages[len(f.pages)-1]
		f.pages[len(f.pages)-1] = nil
		f.pages = f.pages[:len(f.pages)-1]
		f.alloc.Put(last)
	}
}

// PageAt returns the page at the page-aligned byte offset off, growing
// the file if the offset is beyond the current end (writing past EOF
// extends a memfd the same way).
func (f *File) PageAt(off uint64) *phys.Page {
	ps := uint64(f.alloc.PageSize())
	if off%ps != 0 {
		panic(fmt.Sprintf("mmfile %q: unaligned offset %#x", f.name, off))
	}
	idx := int(off / ps)
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.pages) <= idx {
		f.pages = append(f.pages, f.alloc.Alloc())
	}
	return f.pages[idx]
}

// AppendPage claims a fresh page at the end of the file and returns its
// byte offset and the page. Rewired snapshotting uses the tail of the
// file as its pool of unused pages for manual copy-on-write.
func (f *File) AppendPage() (off uint64, page *phys.Page) {
	f.mu.Lock()
	defer f.mu.Unlock()
	page = f.alloc.AllocNoZero()
	off = uint64(len(f.pages)) * uint64(f.alloc.PageSize())
	f.pages = append(f.pages, page)
	return off, page
}

// ReplaceAt swaps the page stored at the page-aligned byte offset off
// for page, releasing the file's reference on the old page and taking
// one on the new. It is the file-side half of rewiring a column page to
// a fresh physical page.
func (f *File) ReplaceAt(off uint64, page *phys.Page) {
	ps := uint64(f.alloc.PageSize())
	if off%ps != 0 {
		panic(fmt.Sprintf("mmfile %q: unaligned offset %#x", f.name, off))
	}
	idx := int(off / ps)
	f.mu.Lock()
	defer f.mu.Unlock()
	if idx >= len(f.pages) {
		panic(fmt.Sprintf("mmfile %q: ReplaceAt beyond EOF", f.name))
	}
	old := f.pages[idx]
	f.alloc.Get(page)
	f.pages[idx] = page
	f.alloc.Put(old)
}

// Close releases the file's references on all its pages. Mappings that
// still reference the pages keep them alive.
func (f *File) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, p := range f.pages {
		f.alloc.Put(p)
		f.pages[i] = nil
	}
	f.pages = nil
}
