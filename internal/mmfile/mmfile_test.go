package mmfile

import (
	"testing"

	"ankerdb/internal/phys"
)

func newFile(t *testing.T) (*File, *phys.Allocator) {
	t.Helper()
	a := phys.NewAllocator(phys.DefaultPageSize)
	return Create("test", a), a
}

func TestTruncateGrowAndShrink(t *testing.T) {
	f, a := newFile(t)
	f.Truncate(8)
	if f.Len() != 8 {
		t.Fatalf("len = %d, want 8", f.Len())
	}
	if got, want := f.Size(), uint64(8*phys.DefaultPageSize); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	if live := a.Stats().Live; live != 8 {
		t.Fatalf("live pages = %d, want 8", live)
	}
	f.Truncate(3)
	if f.Len() != 3 {
		t.Fatalf("len = %d, want 3", f.Len())
	}
	if live := a.Stats().Live; live != 3 {
		t.Fatalf("live pages = %d after shrink, want 3", live)
	}
}

func TestTruncateNegativePanics(t *testing.T) {
	f, _ := newFile(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative truncate did not panic")
		}
	}()
	f.Truncate(-1)
}

func TestPageAtGrowsFile(t *testing.T) {
	f, _ := newFile(t)
	p := f.PageAt(3 * phys.DefaultPageSize)
	if p == nil {
		t.Fatal("nil page")
	}
	if f.Len() != 4 {
		t.Fatalf("len = %d, want 4 after PageAt beyond EOF", f.Len())
	}
	if q := f.PageAt(3 * phys.DefaultPageSize); q != p {
		t.Fatal("PageAt is not stable for the same offset")
	}
}

func TestPageAtUnalignedPanics(t *testing.T) {
	f, _ := newFile(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned PageAt did not panic")
		}
	}()
	f.PageAt(123)
}

func TestAppendPage(t *testing.T) {
	f, _ := newFile(t)
	f.Truncate(2)
	off, page := f.AppendPage()
	if off != 2*phys.DefaultPageSize {
		t.Fatalf("append offset = %#x, want %#x", off, 2*phys.DefaultPageSize)
	}
	if f.PageAt(off) != page {
		t.Fatal("appended page not reachable via PageAt")
	}
}

func TestReplaceAt(t *testing.T) {
	f, a := newFile(t)
	f.Truncate(2)
	old := f.PageAt(0)
	old.Words[0] = 1

	np := a.Alloc()
	np.Words[0] = 2
	f.ReplaceAt(0, np)
	if got := f.PageAt(0); got != np {
		t.Fatal("ReplaceAt did not install the new page")
	}
	if f.PageAt(0).Words[0] != 2 {
		t.Fatal("new page content not visible")
	}
	// The file dropped its ref on old; our allocation reference was the
	// only one on np before ReplaceAt took another.
	if np.Refs() != 2 {
		t.Fatalf("new page refs = %d, want 2 (caller + file)", np.Refs())
	}
	a.Put(np) // drop caller ref; file keeps it alive
	if np.Refs() != 1 {
		t.Fatalf("new page refs = %d, want 1", np.Refs())
	}
}

func TestReplaceAtBeyondEOFPanics(t *testing.T) {
	f, a := newFile(t)
	f.Truncate(1)
	np := a.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("ReplaceAt beyond EOF did not panic")
		}
	}()
	f.ReplaceAt(5*uint64(phys.DefaultPageSize), np)
}

func TestCloseReleasesPages(t *testing.T) {
	f, a := newFile(t)
	f.Truncate(16)
	f.Close()
	if live := a.Stats().Live; live != 0 {
		t.Fatalf("live pages = %d after Close, want 0", live)
	}
	if f.Len() != 0 {
		t.Fatalf("len = %d after Close, want 0", f.Len())
	}
}

func TestCloseKeepsExternallyReferencedPages(t *testing.T) {
	f, a := newFile(t)
	f.Truncate(1)
	p := f.PageAt(0)
	a.Get(p) // a mapping's reference
	p.Words[0] = 77
	f.Close()
	if p.Words[0] != 77 {
		t.Fatal("page content lost while externally referenced")
	}
	if p.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", p.Refs())
	}
	a.Put(p)
}
