package mvcc

import "sync/atomic"

// BlockRows is the scan-block granularity of the HyPer optimization the
// paper applies in Section 5.5: for every 1024 rows, the position of
// the first and last versioned row is kept, so scans run in tight loops
// between versioned records without per-row checks.
const BlockRows = 1024

// BlockMeta tracks, per block, the range of rows that carry version
// chains in one column generation. Writers update it inside the
// serialised commit phase; scans read it concurrently.
type BlockMeta struct {
	first []atomic.Int32 // lowest versioned row in block, -1 if none
	last  []atomic.Int32 // highest versioned row in block
	rows  int
}

// NewBlockMeta returns metadata for a column of rows rows with no
// versioned rows.
func NewBlockMeta(rows int) *BlockMeta {
	n := (rows + BlockRows - 1) / BlockRows
	b := &BlockMeta{first: make([]atomic.Int32, n), last: make([]atomic.Int32, n), rows: rows}
	for i := range b.first {
		b.first[i].Store(-1)
		b.last[i].Store(-1)
	}
	return b
}

// Blocks returns the number of blocks.
func (b *BlockMeta) Blocks() int { return len(b.first) }

// Rows returns the row count the metadata covers.
func (b *BlockMeta) Rows() int { return b.rows }

// Note records that row now carries a version chain.
func (b *BlockMeta) Note(row int) {
	blk := row / BlockRows
	in := int32(row % BlockRows)
	for {
		f := b.first[blk].Load()
		if f != -1 && f <= in {
			break
		}
		if b.first[blk].CompareAndSwap(f, in) {
			break
		}
	}
	for {
		l := b.last[blk].Load()
		if l >= in {
			break
		}
		if b.last[blk].CompareAndSwap(l, in) {
			break
		}
	}
}

// Range returns the versioned row span of block blk as absolute row
// numbers. any is false when the block has no versioned rows, in which
// case the whole block can be scanned in a tight loop.
func (b *BlockMeta) Range(blk int) (lo, hi int, any bool) {
	f := b.first[blk].Load()
	if f < 0 {
		return 0, 0, false
	}
	l := b.last[blk].Load()
	return blk*BlockRows + int(f), blk*BlockRows + int(l), true
}

// BlockSpan returns the absolute row bounds [lo, hi) of block blk,
// clipped to the row count.
func (b *BlockMeta) BlockSpan(blk int) (lo, hi int) {
	lo = blk * BlockRows
	hi = min(lo+BlockRows, b.rows)
	return lo, hi
}

// VersionedBlocks counts blocks with at least one versioned row.
func (b *BlockMeta) VersionedBlocks() int {
	n := 0
	for i := range b.first {
		if b.first[i].Load() >= 0 {
			n++
		}
	}
	return n
}

// Clone returns an independent copy (used when freezing a generation).
func (b *BlockMeta) Clone() *BlockMeta {
	c := &BlockMeta{first: make([]atomic.Int32, len(b.first)), last: make([]atomic.Int32, len(b.last)), rows: b.rows}
	for i := range b.first {
		c.first[i].Store(b.first[i].Load())
		c.last[i].Store(b.last[i].Load())
	}
	return c
}
