package mvcc

import "sync/atomic"

// BlockRows is the scan-block granularity of the HyPer optimization the
// paper applies in Section 5.5: for every 1024 rows, the position of
// the first and last versioned row is kept, so scans run in tight loops
// between versioned records without per-row checks.
const BlockRows = 1024

// zone is one block's published min/max value summary. Zones are
// immutable once published: widening or recomputing swaps the whole
// pointer, so a concurrent lock-free reader never observes a torn
// (new-min, old-max) pair.
type zone struct{ min, max int64 }

// zeroZone covers a freshly mapped (zero-filled) block.
var zeroZone = zone{}

// BlockMeta tracks, per block, the range of rows that carry version
// chains in one column generation, plus a min/max zone map over the
// block's values. Writers update it inside the serialised commit
// phase; scans read it concurrently.
type BlockMeta struct {
	first []atomic.Int32 // lowest versioned row in block, -1 if none
	last  []atomic.Int32 // highest versioned row in block
	zones []atomic.Pointer[zone]
	rows  int
}

// NewBlockMeta returns metadata for a column of rows rows with no
// versioned rows. Zones start at {0, 0}: every chunk is zero-filled
// when it is mapped, and every later value reaches the array through a
// widening write path (commit install, bulk load, or recovery's
// recompute), so the invariant "the zone covers every value any
// snapshot reader can resolve in the block" holds from birth.
func NewBlockMeta(rows int) *BlockMeta {
	n := (rows + BlockRows - 1) / BlockRows
	b := &BlockMeta{
		first: make([]atomic.Int32, n),
		last:  make([]atomic.Int32, n),
		zones: make([]atomic.Pointer[zone], n),
		rows:  rows,
	}
	for i := range b.first {
		b.first[i].Store(-1)
		b.last[i].Store(-1)
		b.zones[i].Store(&zeroZone)
	}
	return b
}

// Blocks returns the number of blocks.
func (b *BlockMeta) Blocks() int { return len(b.first) }

// Rows returns the row count the metadata covers.
func (b *BlockMeta) Rows() int { return b.rows }

// Note records that row now carries a version chain.
func (b *BlockMeta) Note(row int) {
	blk := row / BlockRows
	in := int32(row % BlockRows)
	for {
		f := b.first[blk].Load()
		if f != -1 && f <= in {
			break
		}
		if b.first[blk].CompareAndSwap(f, in) {
			break
		}
	}
	for {
		l := b.last[blk].Load()
		if l >= in {
			break
		}
		if b.last[blk].CompareAndSwap(l, in) {
			break
		}
	}
}

// Range returns the versioned row span of block blk as absolute row
// numbers. any is false when the block has no versioned rows, in which
// case the whole block can be scanned in a tight loop.
func (b *BlockMeta) Range(blk int) (lo, hi int, any bool) {
	f := b.first[blk].Load()
	if f < 0 {
		return 0, 0, false
	}
	l := b.last[blk].Load()
	return blk*BlockRows + int(f), blk*BlockRows + int(l), true
}

// BlockSpan returns the absolute row bounds [lo, hi) of block blk,
// clipped to the row count.
func (b *BlockMeta) BlockSpan(blk int) (lo, hi int) {
	lo = blk * BlockRows
	hi = min(lo+BlockRows, b.rows)
	return lo, hi
}

// Widen grows the zone of row's block to cover v. Widen-only is what
// keeps zones sound under concurrent lock-free readers and under
// Delete: a dead row's value may linger in the zone (pruning gets less
// effective, never wrong) until a vacuum recomputes it.
func (b *BlockMeta) Widen(row int, v int64) {
	b.widenBlock(row/BlockRows, v, v)
}

// WidenRange widens the zones covering rows [start, start+len(vals))
// by the values of vals — the bulk-load path, one CAS per block
// instead of one per value.
func (b *BlockMeta) WidenRange(start int, vals []int64) {
	for len(vals) > 0 {
		blk := start / BlockRows
		n := min((blk+1)*BlockRows-start, len(vals))
		lo, hi := vals[0], vals[0]
		for _, v := range vals[:n] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		b.widenBlock(blk, lo, hi)
		start += n
		vals = vals[n:]
	}
}

func (b *BlockMeta) widenBlock(blk int, lo, hi int64) {
	for {
		z := b.zones[blk].Load()
		if lo >= z.min && hi <= z.max {
			return
		}
		nz := &zone{min: min(z.min, lo), max: max(z.max, hi)}
		if b.zones[blk].CompareAndSwap(z, nz) {
			return
		}
	}
}

// Zone returns the current min/max zone of block blk. Every value a
// snapshot reader can resolve in the block — in place or through a
// version chain — lies inside it, so a predicate with an empty
// intersection can skip the block without reading a page.
func (b *BlockMeta) Zone(blk int) (lo, hi int64) {
	z := b.zones[blk].Load()
	return z.min, z.max
}

// SetZone publishes a recomputed zone for block blk, replacing the
// widen-only accumulation. Callers must exclude concurrent installs
// into the block (vacuum holds every shard commit lock; recovery is
// single-threaded) and must have folded in every chain-reachable value.
func (b *BlockMeta) SetZone(blk int, lo, hi int64) {
	b.zones[blk].Store(&zone{min: lo, max: hi})
}

// VersionedBlocks counts blocks with at least one versioned row.
func (b *BlockMeta) VersionedBlocks() int {
	n := 0
	for i := range b.first {
		if b.first[i].Load() >= 0 {
			n++
		}
	}
	return n
}

// Clone returns an independent copy (used when freezing a generation).
// Zone values are immutable once published, so the pointers are shared.
func (b *BlockMeta) Clone() *BlockMeta {
	c := &BlockMeta{
		first: make([]atomic.Int32, len(b.first)),
		last:  make([]atomic.Int32, len(b.last)),
		zones: make([]atomic.Pointer[zone], len(b.zones)),
		rows:  b.rows,
	}
	for i := range b.first {
		c.first[i].Store(b.first[i].Load())
		c.last[i].Store(b.last[i].Load())
		c.zones[i].Store(b.zones[i].Load())
	}
	return c
}
