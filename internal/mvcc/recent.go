package mvcc

import "sync"

// CommitRecord is the write set of a committed transaction, kept for
// the validation of transactions that overlapped it in time.
//
// Writes are the materialised column writes (also the redo set).
// VisWrites are validation-only entries carried by row births and
// deaths: a delete shadows every column of the killed row with its
// last value (so a concurrent reader whose predicate or point read
// covered the row aborts), and every row op marks the table's
// visibility pseudo column (so concurrent deletes of the same row
// serialise). VisWrites never reach the WAL or the column arrays; Ops
// are the row births/deaths themselves, which do.
type CommitRecord struct {
	TS        uint64
	Writes    []WriteEntry
	VisWrites []WriteEntry
	Ops       []RowOp
}

// RecentList is the mutex-protected list of recently committed
// transactions the paper describes in Section 5.7: commit-phase
// validation walks it, which is why serializable commit processing is
// partially sequential and scaling is sub-linear (Figure 11).
type RecentList struct {
	mu   sync.Mutex
	recs []CommitRecord
}

// NewRecentList returns an empty list.
func NewRecentList() *RecentList { return &RecentList{} }

// Add appends a committed transaction's record. Records MUST arrive in
// commit-timestamp order — Validate's binary search depends on it. The
// sharded commit pipeline guarantees this per shard list: commit
// timestamps are only allocated while holding every involved shard's
// commit lock, and records are added before those locks release, so
// each shard's insert order matches global timestamp order.
func (r *RecentList) Add(rec CommitRecord) {
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// Validate checks the transaction's read set against every commit with
// TS in (t.Begin, now]: if any such write intersects a point read or a
// predicate range of t, the transaction read stale data and must abort
// (precision locking, Section 2.1). It returns the timestamp of the
// first conflicting commit, or 0 when the transaction is valid.
func (r *RecentList) Validate(t *TxnState) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Records are TS-ordered; binary search for the first after Begin.
	lo, hi := 0, len(r.recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.recs[mid].TS <= t.Begin {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, rec := range r.recs[lo:] {
		for _, e := range rec.Writes {
			if t.conflictsWith(e) {
				return rec.TS
			}
		}
		for _, e := range rec.VisWrites {
			if t.conflictsWith(e) {
				return rec.TS
			}
		}
	}
	return 0
}

// PruneBelow drops records no running transaction can conflict with
// (TS <= minBegin). It returns the number of records removed.
func (r *RecentList) PruneBelow(minBegin uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	cut := 0
	for cut < len(r.recs) && r.recs[cut].TS <= minBegin {
		cut++
	}
	if cut > 0 {
		r.recs = append([]CommitRecord(nil), r.recs[cut:]...)
	}
	return cut
}

// Len returns the number of retained records.
func (r *RecentList) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}
