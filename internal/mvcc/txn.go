package mvcc

import "sync"

// Class is the paper's transaction classification: short modifying OLTP
// transactions versus long read-only OLAP transactions (Section 2.2).
type Class uint8

// Transaction classes.
const (
	OLTP Class = iota
	OLAP
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == OLAP {
		return "OLAP"
	}
	return "OLTP"
}

// ColumnID identifies a column engine-wide.
type ColumnID struct {
	Table int
	Col   int
}

// VisCol is the pseudo column index of a table's row-visibility
// (birth/death) arrays. Inserts and deletes route through the commit
// shard this pseudo column hashes to — the table's "owning" shard —
// which serialises all visibility mutations of a table on one lock and
// keeps their WAL records in one timestamp-ordered segment series.
const VisCol = -1

// VisColumnID returns the visibility pseudo-column of table.
func VisColumnID(table int) ColumnID { return ColumnID{Table: table, Col: VisCol} }

// RowOp is one staged row birth or death: an Insert (Del false) stamps
// the row's birth timestamp at commit, a Delete (Del true) its death
// timestamp.
type RowOp struct {
	Table int
	Row   int
	Del   bool
}

// WriteEntry is one materialised write, recorded for validation.
type WriteEntry struct {
	Col      ColumnID
	Row      int
	Old, New int64
}

// Predicate is a value range a transaction filtered on, the unit of
// precision locking (Section 2.1): at commit time, writes of concurrent
// transactions are intersected with these ranges.
type Predicate struct {
	Col    ColumnID
	Lo, Hi int64
}

// Contains reports whether v lies in the predicate range.
func (p Predicate) Contains(v int64) bool { return v >= p.Lo && v <= p.Hi }

// TxnState is the transaction-local MVCC state: staged writes (local
// until commit, which makes aborts free — Section 2.2.1 step 3), the
// read set for validation, and the begin timestamp.
type TxnState struct {
	ID    uint64
	Begin uint64
	Class Class

	writes     map[ColumnID]map[int]int64
	writeOrder []writeRef
	pointReads map[ColumnID]map[int]struct{}
	preds      []Predicate

	rowOps   []RowOp
	inserted map[int]map[int]struct{} // table -> staged-insert rows
	deleted  map[int]map[int]struct{} // table -> staged-delete rows
}

type writeRef struct {
	col ColumnID
	row int
}

// NewTxnState returns transaction state for the given identity.
func NewTxnState(id, begin uint64, class Class) *TxnState {
	return &TxnState{ID: id, Begin: begin, Class: class}
}

// StageWrite stores the write locally. Repeated writes to the same
// (column, row) overwrite in place; order of first writes is preserved
// for deterministic materialisation.
func (t *TxnState) StageWrite(col ColumnID, row int, val int64) {
	if t.writes == nil {
		t.writes = map[ColumnID]map[int]int64{}
	}
	m := t.writes[col]
	if m == nil {
		m = map[int]int64{}
		t.writes[col] = m
	}
	if _, seen := m[row]; !seen {
		t.writeOrder = append(t.writeOrder, writeRef{col, row})
	}
	m[row] = val
}

// StagedValue returns the transaction's own uncommitted write to
// (col, row), if any — reads must see the transaction's own writes.
func (t *TxnState) StagedValue(col ColumnID, row int) (int64, bool) {
	m := t.writes[col]
	if m == nil {
		return 0, false
	}
	v, ok := m[row]
	return v, ok
}

// HasWrites reports whether any write was staged.
func (t *TxnState) HasWrites() bool { return len(t.writeOrder) > 0 }

// NumWrites returns the number of distinct (column, row) writes.
func (t *TxnState) NumWrites() int { return len(t.writeOrder) }

// EachWrite visits the staged writes in first-write order.
func (t *TxnState) EachWrite(fn func(col ColumnID, row int, val int64)) {
	for _, r := range t.writeOrder {
		fn(r.col, r.row, t.writes[r.col][r.row])
	}
}

// NotePointRead records that the transaction's result depends on the
// current version of (col, row).
func (t *TxnState) NotePointRead(col ColumnID, row int) {
	if t.pointReads == nil {
		t.pointReads = map[ColumnID]map[int]struct{}{}
	}
	m := t.pointReads[col]
	if m == nil {
		m = map[int]struct{}{}
		t.pointReads[col] = m
	}
	m[row] = struct{}{}
}

// NotePredicate records a filtered range for precision locking.
func (t *TxnState) NotePredicate(p Predicate) { t.preds = append(t.preds, p) }

// StageInsert records that the transaction births row of table at
// commit. The caller has exclusively reserved the row slot, so no
// point read is needed: concurrent transactions cannot address it.
func (t *TxnState) StageInsert(table, row int) {
	t.rowOps = append(t.rowOps, RowOp{Table: table, Row: row})
	if t.inserted == nil {
		t.inserted = map[int]map[int]struct{}{}
	}
	m := t.inserted[table]
	if m == nil {
		m = map[int]struct{}{}
		t.inserted[table] = m
	}
	m[row] = struct{}{}
}

// StageDelete records that the transaction kills row of table at
// commit. The deletion reads the row's liveness, so a point read on the
// visibility pseudo column is recorded: a concurrent commit that births
// or kills the same row invalidates this transaction.
func (t *TxnState) StageDelete(table, row int) {
	t.rowOps = append(t.rowOps, RowOp{Table: table, Row: row, Del: true})
	t.NotePointRead(VisColumnID(table), row)
	if t.deleted == nil {
		t.deleted = map[int]map[int]struct{}{}
	}
	m := t.deleted[table]
	if m == nil {
		m = map[int]struct{}{}
		t.deleted[table] = m
	}
	m[row] = struct{}{}
}

// RowInserted reports whether the transaction staged an insert of
// (table, row).
func (t *TxnState) RowInserted(table, row int) bool {
	_, ok := t.inserted[table][row]
	return ok
}

// RowDeleted reports whether the transaction staged a delete of
// (table, row).
func (t *TxnState) RowDeleted(table, row int) bool {
	_, ok := t.deleted[table][row]
	return ok
}

// HasRowOps reports whether any insert or delete was staged.
func (t *TxnState) HasRowOps() bool { return len(t.rowOps) > 0 }

// HasRowOpsFor reports whether any insert or delete was staged against
// table — the facade's read paths use it to keep the unmutated-table
// fast path for tables this transaction never touched.
func (t *TxnState) HasRowOpsFor(table int) bool {
	return len(t.inserted[table]) > 0 || len(t.deleted[table]) > 0
}

// EachRowOp visits the staged row operations in stage order.
func (t *TxnState) EachRowOp(fn func(op RowOp)) {
	for _, op := range t.rowOps {
		fn(op)
	}
}

// HasReads reports whether the transaction recorded any point read or
// predicate. A transaction with an empty read set cannot be
// invalidated by concurrent commits — its blind writes serialize at
// its commit timestamp — so the commit pipeline skips validation
// entirely for it.
func (t *TxnState) HasReads() bool {
	return len(t.pointReads) > 0 || len(t.preds) > 0
}

// EachColumn visits every distinct column in the transaction's
// footprint — staged writes, point reads, and predicate ranges — once
// each. The commit pipeline uses it to route the transaction to the
// commit shards it must serialize with.
func (t *TxnState) EachColumn(fn func(col ColumnID)) {
	// Footprints are a handful of columns; a linear scan over a small
	// slice beats a map allocation on the per-commit path.
	seen := make([]ColumnID, 0, 8)
	visit := func(id ColumnID) {
		for _, s := range seen {
			if s == id {
				return
			}
		}
		seen = append(seen, id)
		fn(id)
	}
	for id := range t.writes {
		visit(id)
	}
	for id := range t.pointReads {
		visit(id)
	}
	for _, p := range t.preds {
		visit(p.Col)
	}
	for _, op := range t.rowOps {
		visit(VisColumnID(op.Table))
	}
}

// ReadSetSize returns the number of recorded point reads and predicates.
func (t *TxnState) ReadSetSize() (points, preds int) {
	for _, m := range t.pointReads {
		points += len(m)
	}
	return points, len(t.preds)
}

// conflictsWith reports whether the committed write e invalidates this
// transaction's reads: it hit a row the transaction point-read, or its
// old or new value falls into a predicate range on the same column.
func (t *TxnState) conflictsWith(e WriteEntry) bool {
	if m := t.pointReads[e.Col]; m != nil {
		if _, hit := m[e.Row]; hit {
			return true
		}
	}
	for _, p := range t.preds {
		if p.Col == e.Col && (p.Contains(e.Old) || p.Contains(e.New)) {
			return true
		}
	}
	return false
}

// ActiveSet tracks running transactions and their begin timestamps, the
// input to both garbage collection and recently-committed pruning.
type ActiveSet struct {
	mu sync.Mutex
	m  map[uint64]uint64 // txn ID -> begin timestamp
}

// NewActiveSet returns an empty set.
func NewActiveSet() *ActiveSet { return &ActiveSet{m: map[uint64]uint64{}} }

// Register adds a running transaction.
func (a *ActiveSet) Register(id, begin uint64) {
	a.mu.Lock()
	a.m[id] = begin
	a.mu.Unlock()
}

// Unregister removes a finished transaction.
func (a *ActiveSet) Unregister(id uint64) {
	a.mu.Lock()
	delete(a.m, id)
	a.mu.Unlock()
}

// MinBegin returns the smallest begin timestamp of any running
// transaction, or ifEmpty when none runs.
func (a *ActiveSet) MinBegin(ifEmpty uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	minTS := ifEmpty
	first := true
	for _, b := range a.m {
		if first || b < minTS {
			minTS = b
			first = false
		}
	}
	return minTS
}

// Len returns the number of running transactions.
func (a *ActiveSet) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.m)
}
