// Package mvcc provides the multi-version concurrency control building
// blocks of AnKerDB: the timestamp oracle, per-row version chains
// (newest-to-oldest, with the current version stored in place in the
// column), block-granular version metadata for the HyPer-style scan
// optimization, transaction-local state, and the precision-locking
// validation that upgrades snapshot isolation to full serializability.
package mvcc

import (
	"sync"
	"sync/atomic"
)

// Oracle issues transaction timestamps. Begin timestamps equal the last
// *contiguously completed* commit timestamp: a commit's writes become
// visible to new transactions only after its materialization finished,
// which makes multi-write commits atomically visible (the paper logs
// the start and end of the commit phase for the same purpose, Section
// 2.2.1 step 3).
//
// The sharded commit pipeline allocates timestamps in blocks (one
// allocation per commit batch) and materializes different shards in
// parallel, so completions arrive out of order. The oracle tolerates
// that: Complete may be called in any order, and the published
// completed timestamp is the watermark below which every assigned
// timestamp has completed. Holes never persist because every assigned
// timestamp is eventually completed (validation failures complete
// their slot as a no-op).
type Oracle struct {
	next      atomic.Uint64 // last assigned commit timestamp
	completed atomic.Uint64 // contiguous completion watermark

	mu      sync.Mutex
	pending map[uint64]bool // completed above the watermark; true = real commit
	cond    *sync.Cond      // signals watermark advances to WaitCompleted

	hook atomic.Value // func(ts uint64), called per watermark advance
}

// Begin returns a begin timestamp: the most recent commit below which
// every assigned commit timestamp has completed.
func (o *Oracle) Begin() uint64 { return o.completed.Load() }

// Seed initialises the oracle to ts, the newest durable commit
// timestamp found by crash recovery: the next allocated commit
// timestamp is ts+1 and new transactions begin at ts, so recovered
// state is immediately visible and re-issued timestamps can never
// collide with replayed ones. It must only be called before the first
// timestamp is assigned.
func (o *Oracle) Seed(ts uint64) {
	o.next.Store(ts)
	o.completed.Store(ts)
}

// NextCommitTS assigns the next commit timestamp. Equivalent to
// NextCommitTSBlock(1).
func (o *Oracle) NextCommitTS() uint64 { return o.NextCommitTSBlock(1) }

// NextCommitTSBlock assigns n consecutive commit timestamps in one
// atomic allocation and returns the first; the block is [first,
// first+n). Group-commit leaders use it to stamp a whole batch with
// one oracle interaction. Every assigned timestamp must eventually be
// passed to Complete, aborted slots included, or the completion
// watermark stalls.
func (o *Oracle) NextCommitTSBlock(n int) uint64 {
	return o.next.Add(uint64(n)) - uint64(n) + 1
}

// SetCompleteHook registers fn to run for every timestamp the
// completion watermark crosses, in timestamp order, inside the
// oracle's completion critical section. The snapshot lifecycle manager
// uses it to trigger snapshot refresh every n commits, so fn must be
// cheap (atomics only) and must not take locks that commit processing
// can wait on.
func (o *Oracle) SetCompleteHook(fn func(ts uint64)) { o.hook.Store(fn) }

// Complete marks ts as materialized. Timestamps may complete in any
// order; the watermark advances only over contiguous prefixes, so a
// commit never becomes visible to new transactions before every
// earlier-stamped commit is also visible.
func (o *Oracle) Complete(ts uint64) { o.complete(ts, true) }

// CompleteNoop releases the timestamp slot ts without a commit behind
// it (validation failures in a stamped batch): the watermark advances
// past it but the complete hook does not fire, so snapshot refresh
// policies only count real commits.
func (o *Oracle) CompleteNoop(ts uint64) { o.complete(ts, false) }

func (o *Oracle) complete(ts uint64, real bool) {
	fn, _ := o.hook.Load().(func(ts uint64))
	o.mu.Lock()
	w := o.completed.Load()
	if ts <= w {
		o.mu.Unlock()
		return // double completion: nothing to do
	}
	if ts != w+1 {
		if o.pending == nil {
			o.pending = map[uint64]bool{}
		}
		o.pending[ts] = real
		o.mu.Unlock()
		return
	}
	for next := ts; ; next++ {
		// Publish each watermark step before its hook runs, so the
		// hook (and anyone it signals) observes a completed state that
		// includes the commit it is being told about.
		o.completed.Store(next)
		if real && fn != nil {
			fn(next)
		}
		r, ok := o.pending[next+1]
		if !ok {
			break
		}
		delete(o.pending, next+1)
		real = r
	}
	if o.cond != nil {
		o.cond.Broadcast()
	}
	o.mu.Unlock()
}

// WaitCompleted blocks until the completion watermark reaches ts. The
// commit pipeline calls it outside every shard lock, after
// materialization, so Commit only returns once the transaction's
// writes are visible to new transactions (read-your-own-writes). It
// cannot deadlock: timestamps are allocated only by holders of all the
// shard locks they need, so every hole below ts drains without waiting
// on the caller.
func (o *Oracle) WaitCompleted(ts uint64) {
	if o.completed.Load() >= ts {
		return
	}
	o.mu.Lock()
	if o.cond == nil {
		o.cond = sync.NewCond(&o.mu)
	}
	for o.completed.Load() < ts {
		o.cond.Wait()
	}
	o.mu.Unlock()
}

// Completed returns the completion watermark: the newest commit
// timestamp below which all assigned timestamps have materialized.
func (o *Oracle) Completed() uint64 { return o.completed.Load() }

// ObserveCommitted advances the oracle to ts, a commit timestamp some
// *other* oracle (the replication primary's) has already published as
// contiguously completed. Replicas apply the primary's stream in the
// primary's commit order, which may contain timestamp gaps where the
// primary released slots with CompleteNoop — so the watermark jumps
// straight to ts instead of waiting for holes that will never fill.
// The complete hook fires once per observation (the replica's snapshot
// refresh counts applied commits, not slots), readers waiting in
// WaitCompleted wake, and observations at or below the watermark are
// no-ops. Must not be mixed with local NextCommitTS allocation: a node
// is either applying a remote stream or issuing its own timestamps.
func (o *Oracle) ObserveCommitted(ts uint64) {
	fn, _ := o.hook.Load().(func(ts uint64))
	o.mu.Lock()
	if ts <= o.completed.Load() {
		o.mu.Unlock()
		return
	}
	if o.next.Load() < ts {
		o.next.Store(ts)
	}
	o.completed.Store(ts)
	if fn != nil {
		fn(ts)
	}
	if o.cond != nil {
		o.cond.Broadcast()
	}
	o.mu.Unlock()
}
