// Package mvcc provides the multi-version concurrency control building
// blocks of AnKerDB: the timestamp oracle, per-row version chains
// (newest-to-oldest, with the current version stored in place in the
// column), block-granular version metadata for the HyPer-style scan
// optimization, transaction-local state, and the precision-locking
// validation that upgrades snapshot isolation to full serializability.
package mvcc

import "sync/atomic"

// Oracle issues transaction timestamps. Begin timestamps equal the last
// *completed* commit timestamp: a commit's writes become visible to new
// transactions only after its materialization finished, which makes
// multi-write commits atomically visible (the paper logs the start and
// end of the commit phase for the same purpose, Section 2.2.1 step 3).
type Oracle struct {
	next      atomic.Uint64 // last assigned commit timestamp
	completed atomic.Uint64 // last commit whose materialization finished
	hook      atomic.Value  // func(ts uint64), called after Complete
}

// Begin returns a begin timestamp: the most recent completed commit.
func (o *Oracle) Begin() uint64 { return o.completed.Load() }

// NextCommitTS assigns the next commit timestamp. Callers serialise
// commit processing (the engine's commit mutex), so timestamps complete
// in assignment order.
func (o *Oracle) NextCommitTS() uint64 { return o.next.Add(1) }

// SetCompleteHook registers fn to run after every Complete, inside the
// commit critical section. The snapshot lifecycle manager uses it to
// trigger snapshot refresh every n commits, so fn must be cheap and must
// not take locks that commit processing can wait on.
func (o *Oracle) SetCompleteHook(fn func(ts uint64)) { o.hook.Store(fn) }

// Complete publishes ts as the newest completed commit. Must be called
// in commit-timestamp order (guaranteed by the commit mutex).
func (o *Oracle) Complete(ts uint64) {
	o.completed.Store(ts)
	if fn, ok := o.hook.Load().(func(ts uint64)); ok && fn != nil {
		fn(ts)
	}
}

// Completed returns the newest completed commit timestamp.
func (o *Oracle) Completed() uint64 { return o.completed.Load() }
