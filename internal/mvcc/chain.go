package mvcc

import (
	"sync"
	"sync/atomic"
)

// VersionNode is one entry of a version chain: a value and the commit
// timestamp of the transaction that wrote it. Chains are ordered
// newest-to-oldest, the order HyPer uses because it favours young
// transactions (Section 2.1).
type VersionNode struct {
	Val  int64
	WTS  uint64
	Next *VersionNode
}

const chainShards = 64

type chainShard struct {
	mu sync.RWMutex
	m  map[int]*VersionNode
}

// ChainStore holds the version chains of one column generation, sharded
// by row for concurrent access. Pushes happen only inside the
// serialised commit phase; reads are concurrent.
type ChainStore struct {
	shards [chainShards]chainShard
	nodes  atomic.Int64
}

// NewChainStore returns an empty chain store.
func NewChainStore() *ChainStore {
	c := &ChainStore{}
	for i := range c.shards {
		c.shards[i].m = map[int]*VersionNode{}
	}
	return c
}

func (c *ChainStore) shard(row int) *chainShard {
	return &c.shards[uint(row)%chainShards]
}

// Push prepends the version (val, wts) to row's chain. wts is the
// commit timestamp of the transaction that *wrote* val (the value being
// displaced from the column), so a reader at timestamp ts must use the
// first node with WTS <= ts.
func (c *ChainStore) Push(row int, val int64, wts uint64) {
	s := c.shard(row)
	s.mu.Lock()
	s.m[row] = &VersionNode{Val: val, WTS: wts, Next: s.m[row]}
	s.mu.Unlock()
	c.nodes.Add(1)
}

// Head returns the newest version node of row, or nil. Walking from the
// returned node is only safe while garbage collection (Prune) is
// quiescent; concurrent readers should use VisibleAt, which walks under
// the shard lock.
func (c *ChainStore) Head(row int) *VersionNode {
	s := c.shard(row)
	s.mu.RLock()
	n := s.m[row]
	s.mu.RUnlock()
	return n
}

// VisibleAt walks row's chain and returns the newest version with
// WTS <= ts. ok is false when the chain holds no such version (the
// reader must continue in an older generation). The walk holds the
// shard read lock so it is safe against concurrent Prune.
func (c *ChainStore) VisibleAt(row int, ts uint64) (val int64, ok bool) {
	s := c.shard(row)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n := s.m[row]; n != nil; n = n.Next {
		if n.WTS <= ts {
			return n.Val, true
		}
	}
	return 0, false
}

// EachVersion calls fn for every version node in the store, holding
// each shard's read lock during its walk. Zone-map recomputation uses
// it: a pinned snapshot generation can resolve values reachable only
// through chains, so a recomputed zone must cover them too.
func (c *ChainStore) EachVersion(fn func(row int, val int64)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for row, n := range s.m {
			for ; n != nil; n = n.Next {
				fn(row, n.Val)
			}
		}
		s.mu.RUnlock()
	}
}

// ChainLen returns the length of row's chain.
func (c *ChainStore) ChainLen(row int) int {
	s := c.shard(row)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return chainLen(s.m[row])
}

// Nodes returns the total number of version nodes in the store.
func (c *ChainStore) Nodes() int64 { return c.nodes.Load() }

// Rows returns the number of rows that currently have a chain.
func (c *ChainStore) Rows() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Prune is the explicit garbage collection used by homogeneous
// processing (the paper's cleanup thread, Section 5.1 config 1): every
// version that no transaction at or above minTS can see is removed.
// inPlaceWTS reports the write timestamp of the current in-place value
// of a row; if it is <= minTS the whole chain is unreachable. Otherwise
// the first node with WTS <= minTS is kept (it is visible to a reader
// exactly at minTS) and everything older is cut.
//
// It returns the number of version nodes removed.
func (c *ChainStore) Prune(minTS uint64, inPlaceWTS func(row int) uint64) int64 {
	var removed int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for row, head := range s.m {
			if inPlaceWTS(row) <= minTS {
				removed += int64(chainLen(head))
				delete(s.m, row)
				continue
			}
			for n := head; n != nil; n = n.Next {
				if n.WTS <= minTS {
					removed += int64(chainLen(n.Next))
					n.Next = nil
					break
				}
			}
		}
		s.mu.Unlock()
	}
	c.nodes.Add(-removed)
	return removed
}

func chainLen(n *VersionNode) int {
	l := 0
	for ; n != nil; n = n.Next {
		l++
	}
	return l
}
