package mvcc

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestOracleBeginTracksCompleted(t *testing.T) {
	var o Oracle
	if o.Begin() != 0 {
		t.Fatal("fresh oracle begin != 0")
	}
	ts := o.NextCommitTS()
	if ts != 1 {
		t.Fatalf("first commit ts = %d, want 1", ts)
	}
	// Uncompleted commits are invisible to new transactions.
	if o.Begin() != 0 {
		t.Fatal("begin advanced before completion")
	}
	o.Complete(ts)
	if o.Begin() != 1 {
		t.Fatalf("begin = %d after completion, want 1", o.Begin())
	}
	if o.Completed() != 1 {
		t.Fatal("completed mismatch")
	}
}

func TestOracleBlockAllocation(t *testing.T) {
	var o Oracle
	first := o.NextCommitTSBlock(4)
	if first != 1 {
		t.Fatalf("first block starts at %d, want 1", first)
	}
	if next := o.NextCommitTSBlock(3); next != 5 {
		t.Fatalf("second block starts at %d, want 5", next)
	}
	if single := o.NextCommitTS(); single != 8 {
		t.Fatalf("single allocation after blocks = %d, want 8", single)
	}
}

func TestOracleOutOfOrderCompletion(t *testing.T) {
	var o Oracle
	var fired []uint64
	o.SetCompleteHook(func(ts uint64) { fired = append(fired, ts) })
	if first := o.NextCommitTSBlock(5); first != 1 {
		t.Fatalf("block starts at %d, want 1", first)
	}
	// Complete 3, 2, 5 first: the watermark must not move past the
	// hole at 1, so none of these commits is visible yet.
	o.Complete(3)
	o.Complete(2)
	o.Complete(5)
	if got := o.Completed(); got != 0 {
		t.Fatalf("watermark = %d with ts 1 outstanding, want 0", got)
	}
	// Completing 1 releases the contiguous prefix 1..3.
	o.Complete(1)
	if got := o.Completed(); got != 3 {
		t.Fatalf("watermark = %d after completing 1, want 3", got)
	}
	// Completing 4 releases 4..5.
	o.Complete(4)
	if got := o.Completed(); got != 5 {
		t.Fatalf("watermark = %d after completing 4, want 5", got)
	}
	want := []uint64{1, 2, 3, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("hook fired for %v, want %v", fired, want)
	}
	for i, ts := range want {
		if fired[i] != ts {
			t.Fatalf("hook order %v, want %v", fired, want)
		}
	}
	// Double completion is a no-op.
	o.Complete(2)
	if got := o.Completed(); got != 5 {
		t.Fatalf("watermark moved to %d on double completion", got)
	}
}

func TestOracleNoopCompletionSkipsHook(t *testing.T) {
	var o Oracle
	var fired []uint64
	o.SetCompleteHook(func(ts uint64) { fired = append(fired, ts) })
	if first := o.NextCommitTSBlock(4); first != 1 {
		t.Fatalf("block starts at %d", first)
	}
	// 2 is a validation-failure slot completed out of order: it must
	// advance the watermark when 1 lands but never fire the hook.
	o.CompleteNoop(2)
	o.Complete(3)
	o.Complete(1)
	o.CompleteNoop(4)
	if got := o.Completed(); got != 4 {
		t.Fatalf("watermark = %d, want 4", got)
	}
	want := []uint64{1, 3}
	if len(fired) != len(want) || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("hook fired for %v, want %v", fired, want)
	}
}

func TestOracleWaitCompleted(t *testing.T) {
	var o Oracle
	if first := o.NextCommitTSBlock(3); first != 1 {
		t.Fatalf("block starts at %d", first)
	}
	o.Complete(1)
	o.WaitCompleted(1) // already complete: returns immediately
	done := make(chan struct{})
	go func() {
		o.WaitCompleted(3)
		close(done)
	}()
	o.Complete(3) // parks above the hole at 2
	select {
	case <-done:
		t.Fatal("WaitCompleted(3) returned with ts 2 outstanding")
	case <-time.After(10 * time.Millisecond):
	}
	o.Complete(2)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitCompleted(3) did not return after the hole drained")
	}
}

func TestOracleConcurrentOutOfOrderCompletion(t *testing.T) {
	var o Oracle
	const goroutines, perG = 8, 500
	first := o.NextCommitTSBlock(goroutines * perG)
	if first != 1 {
		t.Fatalf("block starts at %d", first)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Interleaved stripes complete out of order by design.
			for i := 0; i < perG; i++ {
				o.Complete(uint64(g + i*goroutines + 1))
			}
		}(g)
	}
	wg.Wait()
	if got := o.Completed(); got != goroutines*perG {
		t.Fatalf("watermark = %d, want %d", got, goroutines*perG)
	}
}

func TestTxnStateEachColumn(t *testing.T) {
	st := NewTxnState(1, 0, OLTP)
	a := ColumnID{Table: 0, Col: 0}
	b := ColumnID{Table: 0, Col: 1}
	c := ColumnID{Table: 2, Col: 0}
	st.StageWrite(a, 7, 1)
	st.StageWrite(a, 9, 2)
	st.NotePointRead(b, 3)
	st.NotePredicate(Predicate{Col: c, Lo: 0, Hi: 10})
	st.NotePredicate(Predicate{Col: a, Lo: 5, Hi: 6})
	seen := map[ColumnID]int{}
	st.EachColumn(func(id ColumnID) { seen[id]++ })
	for _, id := range []ColumnID{a, b, c} {
		if seen[id] != 1 {
			t.Fatalf("column %v visited %d times, want 1 (all: %v)", id, seen[id], seen)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("visited %d distinct columns, want 3: %v", len(seen), seen)
	}
}

func TestOracleMonotoneCommitTS(t *testing.T) {
	var o Oracle
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ts := o.NextCommitTS()
				mu.Lock()
				if seen[ts] {
					t.Errorf("duplicate commit ts %d", ts)
				}
				seen[ts] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestChainPushAndVisibility(t *testing.T) {
	c := NewChainStore()
	// History of row 3: value 10 written at ts 0 (load), 20 at ts 5,
	// 30 at ts 9. In-place holds 30; the chain holds the displaced
	// versions 20@5 and 10@0 (newest first).
	c.Push(3, 10, 0)
	c.Push(3, 20, 5)
	if got := c.ChainLen(3); got != 2 {
		t.Fatalf("chain len = %d", got)
	}
	cases := []struct {
		ts   uint64
		want int64
		ok   bool
	}{
		{0, 10, true},
		{4, 10, true},
		{5, 20, true},
		{8, 20, true},
		{100, 20, true}, // chain answers with its newest visible
	}
	for _, tc := range cases {
		got, ok := c.VisibleAt(3, tc.ts)
		if ok != tc.ok || got != tc.want {
			t.Errorf("VisibleAt(ts=%d) = %d,%v want %d,%v", tc.ts, got, ok, tc.want, tc.ok)
		}
	}
	if _, ok := c.VisibleAt(99, 10); ok {
		t.Fatal("row without chain reported visible version")
	}
}

func TestChainVisibleAtSkipsTooNew(t *testing.T) {
	c := NewChainStore()
	c.Push(1, 100, 7) // only version is from ts 7
	if _, ok := c.VisibleAt(1, 6); ok {
		t.Fatal("reader at ts 6 saw version from ts 7")
	}
}

func TestChainStatistics(t *testing.T) {
	c := NewChainStore()
	for row := 0; row < 10; row++ {
		for v := 0; v < row; v++ {
			c.Push(row, int64(v), uint64(v))
		}
	}
	if got := c.Nodes(); got != 45 {
		t.Fatalf("nodes = %d, want 45", got)
	}
	if got := c.Rows(); got != 9 {
		t.Fatalf("rows = %d, want 9", got)
	}
	if c.Head(0) != nil {
		t.Fatal("row 0 should have no chain")
	}
}

func TestChainPrune(t *testing.T) {
	c := NewChainStore()
	// Row 1: in-place written at ts 10; chain: 30@8, 20@5, 10@0.
	c.Push(1, 10, 0)
	c.Push(1, 20, 5)
	c.Push(1, 30, 8)
	// Row 2: in-place written at ts 2; chain: 5@1.
	c.Push(2, 5, 1)
	inPlace := func(row int) uint64 {
		if row == 1 {
			return 10
		}
		return 2
	}
	// Oldest running transaction began at ts 6. Row 2's in-place (ts 2)
	// is visible to everyone -> whole chain unreachable. Row 1: the
	// reader at 6 needs 20@5; 10@0 is unreachable.
	removed := c.Prune(6, inPlace)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if got := c.ChainLen(1); got != 2 {
		t.Fatalf("row 1 chain len = %d, want 2 (30@8, 20@5)", got)
	}
	if got, ok := c.VisibleAt(1, 6); !ok || got != 20 {
		t.Fatalf("reader at 6 sees %d,%v want 20,true", got, ok)
	}
	if c.Head(2) != nil {
		t.Fatal("row 2 chain not dropped")
	}
	if got := c.Nodes(); got != 2 {
		t.Fatalf("node counter = %d, want 2", got)
	}
}

func TestChainConcurrentReadersDuringPush(t *testing.T) {
	c := NewChainStore()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 2000; i++ {
			c.Push(7, int64(i), uint64(i))
		}
	}()
	for j := 0; j < 2000; j++ {
		if v, ok := c.VisibleAt(7, 1000); ok && v != 1000 {
			t.Fatalf("reader at 1000 saw %d", v)
		}
	}
	<-done
	if v, ok := c.VisibleAt(7, 1000); !ok || v != 1000 {
		t.Fatalf("final read = %d,%v", v, ok)
	}
}

func TestBlockMetaNoteAndRange(t *testing.T) {
	b := NewBlockMeta(3000) // 3 blocks: 1024, 1024, 952
	if b.Blocks() != 3 {
		t.Fatalf("blocks = %d", b.Blocks())
	}
	if _, _, any := b.Range(0); any {
		t.Fatal("fresh meta reports versioned rows")
	}
	b.Note(100)
	b.Note(50)
	b.Note(900)
	lo, hi, any := b.Range(0)
	if !any || lo != 50 || hi != 900 {
		t.Fatalf("range = %d..%d,%v want 50..900,true", lo, hi, any)
	}
	b.Note(2500)
	lo, hi, any = b.Range(2)
	if !any || lo != 2500 || hi != 2500 {
		t.Fatalf("block 2 range = %d..%d,%v", lo, hi, any)
	}
	if got := b.VersionedBlocks(); got != 2 {
		t.Fatalf("versioned blocks = %d, want 2", got)
	}
	lo, hi = b.BlockSpan(2)
	if lo != 2048 || hi != 3000 {
		t.Fatalf("span = %d..%d", lo, hi)
	}
}

func TestBlockMetaClone(t *testing.T) {
	b := NewBlockMeta(2048)
	b.Note(10)
	c := b.Clone()
	b.Note(2000)
	if _, _, any := c.Range(1); any {
		t.Fatal("clone sees later notes")
	}
	if lo, hi, any := c.Range(0); !any || lo != 10 || hi != 10 {
		t.Fatalf("clone block 0 = %d..%d,%v", lo, hi, any)
	}
}

func TestBlockMetaConcurrentNotes(t *testing.T) {
	b := NewBlockMeta(BlockRows)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < BlockRows; i += 8 {
				b.Note(i)
			}
		}(g)
	}
	wg.Wait()
	lo, hi, any := b.Range(0)
	if !any || lo != 0 || hi != BlockRows-1 {
		t.Fatalf("range = %d..%d,%v", lo, hi, any)
	}
}

func TestPropertyBlockMetaBounds(t *testing.T) {
	f := func(rows []uint16) bool {
		b := NewBlockMeta(1 << 16)
		minR, maxR := -1, -1
		for _, r := range rows {
			row := int(r) % BlockRows // keep everything in block 0
			b.Note(row)
			if minR == -1 || row < minR {
				minR = row
			}
			if row > maxR {
				maxR = row
			}
		}
		lo, hi, any := b.Range(0)
		if len(rows) == 0 {
			return !any
		}
		return any && lo == minR && hi == maxR
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxnStagedWrites(t *testing.T) {
	tx := NewTxnState(1, 0, OLTP)
	col := ColumnID{0, 2}
	if tx.HasWrites() {
		t.Fatal("fresh txn has writes")
	}
	tx.StageWrite(col, 5, 100)
	tx.StageWrite(col, 5, 200) // overwrite
	tx.StageWrite(col, 9, 300)
	if v, ok := tx.StagedValue(col, 5); !ok || v != 200 {
		t.Fatalf("staged = %d,%v", v, ok)
	}
	if _, ok := tx.StagedValue(ColumnID{1, 0}, 5); ok {
		t.Fatal("phantom staged value")
	}
	if tx.NumWrites() != 2 {
		t.Fatalf("num writes = %d, want 2", tx.NumWrites())
	}
	var order []int
	tx.EachWrite(func(_ ColumnID, row int, val int64) {
		order = append(order, row)
		if row == 5 && val != 200 {
			t.Fatalf("row 5 val = %d", val)
		}
	})
	if len(order) != 2 || order[0] != 5 || order[1] != 9 {
		t.Fatalf("write order = %v", order)
	}
}

func TestTxnConflictDetection(t *testing.T) {
	colA, colB := ColumnID{0, 0}, ColumnID{0, 1}
	tx := NewTxnState(1, 10, OLTP)
	tx.NotePointRead(colA, 7)
	tx.NotePredicate(Predicate{Col: colB, Lo: 100, Hi: 200})

	cases := []struct {
		e    WriteEntry
		want bool
	}{
		{WriteEntry{Col: colA, Row: 7, Old: 1, New: 2}, true},      // point read hit
		{WriteEntry{Col: colA, Row: 8, Old: 1, New: 2}, false},     // other row
		{WriteEntry{Col: colB, Row: 1, Old: 150, New: 5}, true},    // old in range
		{WriteEntry{Col: colB, Row: 1, Old: 5, New: 150}, true},    // new in range
		{WriteEntry{Col: colB, Row: 1, Old: 5, New: 99}, false},    // both outside
		{WriteEntry{Col: colA, Row: 1, Old: 150, New: 150}, false}, // range is on colB only
	}
	for i, c := range cases {
		if got := tx.conflictsWith(c.e); got != c.want {
			t.Errorf("case %d: conflictsWith(%+v) = %v, want %v", i, c.e, got, c.want)
		}
	}
	pts, preds := tx.ReadSetSize()
	if pts != 1 || preds != 1 {
		t.Fatalf("read set = %d,%d", pts, preds)
	}
}

func TestRecentListValidate(t *testing.T) {
	r := NewRecentList()
	col := ColumnID{0, 0}
	r.Add(CommitRecord{TS: 5, Writes: []WriteEntry{{Col: col, Row: 1, Old: 10, New: 20}}})
	r.Add(CommitRecord{TS: 8, Writes: []WriteEntry{{Col: col, Row: 2, Old: 30, New: 40}}})

	// Reader began at 6: only the ts-8 commit overlaps its lifetime.
	tx := NewTxnState(1, 6, OLTP)
	tx.NotePointRead(col, 1)
	if got := r.Validate(tx); got != 0 {
		t.Fatalf("validate = %d, want 0 (commit 5 predates begin)", got)
	}
	tx2 := NewTxnState(2, 6, OLTP)
	tx2.NotePointRead(col, 2)
	if got := r.Validate(tx2); got != 8 {
		t.Fatalf("validate = %d, want 8", got)
	}
	// A transaction that began before both sees both.
	tx3 := NewTxnState(3, 0, OLTP)
	tx3.NotePointRead(col, 1)
	if got := r.Validate(tx3); got != 5 {
		t.Fatalf("validate = %d, want 5", got)
	}
}

func TestRecentListPrune(t *testing.T) {
	r := NewRecentList()
	for ts := uint64(1); ts <= 10; ts++ {
		r.Add(CommitRecord{TS: ts})
	}
	if got := r.PruneBelow(4); got != 4 {
		t.Fatalf("pruned = %d, want 4", got)
	}
	if r.Len() != 6 {
		t.Fatalf("len = %d, want 6", r.Len())
	}
	if got := r.PruneBelow(0); got != 0 {
		t.Fatalf("pruned = %d, want 0", got)
	}
}

func TestActiveSet(t *testing.T) {
	a := NewActiveSet()
	if got := a.MinBegin(42); got != 42 {
		t.Fatalf("empty min = %d", got)
	}
	a.Register(1, 10)
	a.Register(2, 5)
	a.Register(3, 20)
	if got := a.MinBegin(42); got != 5 {
		t.Fatalf("min = %d, want 5", got)
	}
	a.Unregister(2)
	if got := a.MinBegin(42); got != 10 {
		t.Fatalf("min = %d, want 10", got)
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
}

func TestClassString(t *testing.T) {
	if OLTP.String() != "OLTP" || OLAP.String() != "OLAP" {
		t.Fatal("class strings wrong")
	}
}

// Property: for a random version history of one row, VisibleAt returns
// exactly the value the sequential history implies.
func TestPropertyChainVisibility(t *testing.T) {
	f := func(writes []uint8, probe uint8) bool {
		c := NewChainStore()
		type ver struct {
			val int64
			ts  uint64
		}
		hist := []ver{{val: -1, ts: 0}} // initial load at ts 0
		ts := uint64(0)
		for i, w := range writes {
			ts += uint64(w%5) + 1
			// Push the displaced (previous) version.
			prev := hist[len(hist)-1]
			c.Push(0, prev.val, prev.ts)
			hist = append(hist, ver{val: int64(i), ts: ts})
		}
		// Reference: newest version with ts <= probeTS that is NOT the
		// in-place one (the chain never answers for the in-place value).
		probeTS := uint64(probe)
		var want *ver
		for i := len(hist) - 2; i >= 0; i-- {
			if hist[i].ts <= probeTS {
				want = &hist[i]
				break
			}
		}
		got, ok := c.VisibleAt(0, probeTS)
		if want == nil {
			return !ok
		}
		return ok && got == want.val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleSeed(t *testing.T) {
	var o Oracle
	o.Seed(42)
	if o.Begin() != 42 || o.Completed() != 42 {
		t.Fatalf("seeded oracle at %d/%d, want 42/42", o.Begin(), o.Completed())
	}
	// The next allocation continues above the seed and completes
	// normally past it.
	ts := o.NextCommitTS()
	if ts != 43 {
		t.Fatalf("first post-seed commit TS = %d, want 43", ts)
	}
	o.Complete(ts)
	if o.Completed() != 43 {
		t.Fatalf("watermark = %d, want 43", o.Completed())
	}
}

func TestBlockMetaZoneWiden(t *testing.T) {
	b := NewBlockMeta(3000)
	if lo, hi := b.Zone(0); lo != 0 || hi != 0 {
		t.Fatalf("fresh zone = [%d,%d], want [0,0]", lo, hi)
	}
	b.Widen(100, 42)
	b.Widen(200, -7)
	if lo, hi := b.Zone(0); lo != -7 || hi != 42 {
		t.Fatalf("zone 0 = [%d,%d], want [-7,42]", lo, hi)
	}
	// Widening never narrows, and other blocks stay untouched.
	b.Widen(100, 5)
	if lo, hi := b.Zone(0); lo != -7 || hi != 42 {
		t.Fatalf("zone 0 after inner widen = [%d,%d]", lo, hi)
	}
	if lo, hi := b.Zone(1); lo != 0 || hi != 0 {
		t.Fatalf("zone 1 = [%d,%d], want [0,0]", lo, hi)
	}
	b.SetZone(0, 1, 2)
	if lo, hi := b.Zone(0); lo != 1 || hi != 2 {
		t.Fatalf("zone 0 after SetZone = [%d,%d]", lo, hi)
	}
}

func TestBlockMetaZoneWidenRange(t *testing.T) {
	b := NewBlockMeta(4 * BlockRows)
	vals := make([]int64, 2*BlockRows+10)
	for i := range vals {
		vals[i] = int64(i)
	}
	b.WidenRange(BlockRows/2, vals) // spans blocks 0..2
	if lo, hi := b.Zone(0); lo != 0 || hi != int64(BlockRows/2-1) {
		t.Fatalf("zone 0 = [%d,%d]", lo, hi)
	}
	// Widen-only: the fresh {0,0} zone stays folded into the min.
	if lo, hi := b.Zone(1); lo != 0 || hi != int64(3*BlockRows/2-1) {
		t.Fatalf("zone 1 = [%d,%d]", lo, hi)
	}
	if lo, hi := b.Zone(3); lo != 0 || hi != 0 {
		t.Fatalf("zone 3 = [%d,%d], want untouched", lo, hi)
	}
}

func TestBlockMetaZoneConcurrentWiden(t *testing.T) {
	b := NewBlockMeta(BlockRows)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Widen(i%BlockRows, int64(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	if lo, hi := b.Zone(0); lo != 0 || hi != 7999 {
		t.Fatalf("zone = [%d,%d], want [0,7999]", lo, hi)
	}
}

func TestBlockMetaCloneSharesZones(t *testing.T) {
	b := NewBlockMeta(2048)
	b.Widen(0, 9)
	c := b.Clone()
	if lo, hi := c.Zone(0); lo != 0 || hi != 9 {
		t.Fatalf("clone zone = [%d,%d]", lo, hi)
	}
}

func TestChainEachVersion(t *testing.T) {
	c := NewChainStore()
	c.Push(1, 10, 5)
	c.Push(1, 20, 7)
	c.Push(65, 30, 9) // same shard as row 1
	got := map[int64]int{}
	c.EachVersion(func(row int, val int64) { got[val] = row })
	want := map[int64]int{10: 1, 20: 1, 30: 65}
	if len(got) != len(want) {
		t.Fatalf("versions = %v", got)
	}
	for v, r := range want {
		if got[v] != r {
			t.Fatalf("version %d on row %d, want %d", v, got[v], r)
		}
	}
}
