package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
)

// ErrInjectedCrash is returned by every operation of a Scripted FS
// once its crash point has tripped: from the engine's point of view
// the machine lost power. The WAL reacts exactly as it would to a real
// I/O error — it poisons itself — and the test then reopens the
// directory with the real FS to exercise recovery.
var ErrInjectedCrash = errors.New("fault: injected crash")

// Plan is one adversarial schedule. Zero value = never crash, honest
// disk.
type Plan struct {
	// CrashAfterOps trips the crash on the Nth mutating operation
	// (write, sync, create, rename, remove, dir-sync); that operation
	// fails and nothing after it reaches the disk. <= 0 never trips.
	CrashAfterOps int64
	// Torn lets a random prefix of the not-yet-durable tail survive
	// the crash, cutting at an arbitrary byte — mid-frame, mid-CRC.
	Torn bool
	// Short restricts the surviving tail to a prefix of the last
	// write: the write syscall itself persisted fewer bytes than it
	// reported.
	Short bool
	// FsyncLie makes Sync report success without making anything
	// durable: at the crash, data "fsynced" after the last honest
	// sync is still thrown away.
	FsyncLie bool
}

func (p Plan) String() string {
	return fmt.Sprintf("crashAfter=%d torn=%v short=%v fsyncLie=%v",
		p.CrashAfterOps, p.Torn, p.Short, p.FsyncLie)
}

// Schedule derives a Plan from a seed: the crash point lands uniformly
// in [1, maxOps] and each failure mode is armed by coin flip. The same
// seed always yields the same Plan.
func Schedule(seed int64, maxOps int64) Plan {
	if maxOps < 1 {
		maxOps = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return Plan{
		CrashAfterOps: 1 + rng.Int63n(maxOps),
		Torn:          rng.Intn(2) == 0,
		Short:         rng.Intn(2) == 0,
		FsyncLie:      rng.Intn(3) == 0,
	}
}

// Scripted is an FS that forwards to the real file system while
// tracking, per file, how much of it would survive a power cut: the
// durable length advances only on honest Syncs, created files and
// renames stay volatile until the parent directory is synced. When the
// plan's crash point trips, that model is applied to the real files —
// volatile tails truncated (optionally torn mid-byte), un-synced
// creates removed, un-synced renames undone — and every later
// operation returns ErrInjectedCrash.
//
// All fault decisions come from one seeded PRNG and are appended to a
// human-readable trace, so a (deterministic) workload replayed with
// the same seed produces a byte-identical fault schedule.
type Scripted struct {
	plan Plan

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int64
	tripped bool
	files   map[string]*fileState // every writable file ever opened, by path
	renames []*renameState
	trace   []string
}

type fileState struct {
	path         string
	f            *os.File // nil once closed
	size         int64    // bytes written by the engine
	durable      int64    // bytes surviving a crash (honest syncs only)
	lastWriteOff int64    // offset of the final write, for Short cuts
	pendingDir   bool     // created but parent dir never synced
}

type renameState struct {
	oldpath, newpath string
	pending          bool // parent dir never synced since
}

// NewScripted builds a Scripted FS executing plan, with crash-time
// byte cuts drawn from a PRNG seeded with seed.
func NewScripted(seed int64, plan Plan) *Scripted {
	return &Scripted{
		plan:  plan,
		rng:   rand.New(rand.NewSource(seed)),
		files: make(map[string]*fileState),
	}
}

// Tripped reports whether the crash point has fired.
func (s *Scripted) Tripped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped
}

// Trace returns the fault schedule so far: one line per decision the
// FS took (op count at trip, per-file surviving lengths, fsync lies).
// Two runs of the same workload under the same seed yield identical
// traces.
func (s *Scripted) Trace() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.trace))
	copy(out, s.trace)
	return out
}

func (s *Scripted) tracef(format string, args ...any) {
	s.trace = append(s.trace, fmt.Sprintf(format, args...))
}

// step counts one mutating operation and trips the crash when the plan
// says so. Callers hold s.mu. A true return means the operation must
// fail with ErrInjectedCrash without touching the disk.
func (s *Scripted) step() bool {
	if s.tripped {
		return true
	}
	s.ops++
	if s.plan.CrashAfterOps > 0 && s.ops >= s.plan.CrashAfterOps {
		s.trip()
		return true
	}
	return false
}

// trip applies the durability model to the real files: undo renames
// whose directory entry never became durable, truncate every file to
// what survived, drop files whose creation was never synced. Iteration
// is in deterministic order so the PRNG consumption — and therefore
// the trace — is reproducible.
func (s *Scripted) trip() {
	s.tripped = true
	s.tracef("crash at op %d", s.ops)
	for i := len(s.renames) - 1; i >= 0; i-- {
		r := s.renames[i]
		if !r.pending {
			continue
		}
		_ = os.Rename(r.newpath, r.oldpath)
		s.tracef("undo rename %s -> %s", r.newpath, r.oldpath)
	}
	paths := make([]string, 0, len(s.files))
	for p := range s.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st := s.files[p]
		if st.f != nil {
			_ = st.f.Close()
			st.f = nil
		}
		if st.pendingDir {
			_ = os.Remove(st.path)
			s.tracef("drop unsynced create %s", st.path)
			continue
		}
		surviving := s.survivingLen(st)
		if surviving < st.size {
			_ = os.Truncate(st.path, surviving)
			s.tracef("truncate %s %d -> %d (durable %d)", st.path, st.size, surviving, st.durable)
		}
	}
}

// survivingLen picks how much of st outlives the crash: at least the
// durable prefix, plus — under Torn/Short — a PRNG-chosen slice of the
// volatile tail.
func (s *Scripted) survivingLen(st *fileState) int64 {
	if st.size <= st.durable {
		return st.size
	}
	switch {
	case s.plan.Short:
		// A prefix of the last write made it to the platter.
		lo := st.lastWriteOff
		if lo < st.durable {
			lo = st.durable
		}
		return lo + s.rng.Int63n(st.size-lo+1)
	case s.plan.Torn:
		// Any byte of the volatile tail can be the cut point.
		return st.durable + s.rng.Int63n(st.size-st.durable+1)
	default:
		return st.durable
	}
}

func (s *Scripted) MkdirAll(path string, perm os.FileMode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.step() {
		return ErrInjectedCrash
	}
	return os.MkdirAll(path, perm)
}

func (s *Scripted) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tripped {
		return nil, ErrInjectedCrash
	}
	if flag&os.O_CREATE != 0 {
		if s.step() {
			return nil, ErrInjectedCrash
		}
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	st := s.files[name]
	if st == nil {
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		st = &fileState{
			path:       name,
			size:       fi.Size(),
			durable:    fi.Size(), // pre-existing bytes are durable
			pendingDir: fi.Size() == 0 && flag&os.O_CREATE != 0,
		}
		s.files[name] = st
	}
	st.f = f
	return &scriptedFile{fs: s, st: st}, nil
}

func (s *Scripted) Create(name string) (File, error) {
	return s.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
}

func (s *Scripted) Open(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tripped {
		return nil, ErrInjectedCrash
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	// Read-only: no durability tracking, but reads still die post-trip.
	return &scriptedFile{fs: s, st: &fileState{path: name, f: f}, readOnly: true}, nil
}

func (s *Scripted) Rename(oldpath, newpath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.step() {
		return ErrInjectedCrash
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	if st, ok := s.files[oldpath]; ok {
		delete(s.files, oldpath)
		st.path = newpath
		s.files[newpath] = st
	}
	s.renames = append(s.renames, &renameState{oldpath: oldpath, newpath: newpath, pending: true})
	return nil
}

func (s *Scripted) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.step() {
		return ErrInjectedCrash
	}
	if err := os.Remove(name); err != nil {
		return err
	}
	delete(s.files, name)
	return nil
}

func (s *Scripted) ReadDir(name string) ([]os.DirEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tripped {
		return nil, ErrInjectedCrash
	}
	return os.ReadDir(name)
}

func (s *Scripted) Stat(name string) (os.FileInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tripped {
		return nil, ErrInjectedCrash
	}
	return os.Stat(name)
}

func (s *Scripted) SyncDir(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.step() {
		return ErrInjectedCrash
	}
	// Directory entries under path become durable: creations stick,
	// renames stick.
	sep := path
	if len(sep) == 0 || sep[len(sep)-1] != '/' {
		sep += "/"
	}
	for p, st := range s.files {
		if st.pendingDir && inDir(p, sep) {
			st.pendingDir = false
		}
	}
	for _, r := range s.renames {
		if r.pending && inDir(r.newpath, sep) {
			r.pending = false
		}
	}
	return nil
}

// inDir reports whether path p sits directly in the directory whose
// path (with trailing slash) is dir.
func inDir(p, dir string) bool {
	if len(p) <= len(dir) || p[:len(dir)] != dir {
		return false
	}
	for _, c := range p[len(dir):] {
		if c == '/' {
			return false
		}
	}
	return true
}

// scriptedFile forwards to the real file while keeping the durability
// model current. Every mutating call steps the op counter.
type scriptedFile struct {
	fs       *Scripted
	st       *fileState
	readOnly bool
}

func (f *scriptedFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.step() {
		return 0, ErrInjectedCrash
	}
	if f.st.f == nil {
		return 0, os.ErrClosed
	}
	n, err := f.st.f.Write(p)
	if n > 0 {
		f.st.lastWriteOff = f.st.size
		f.st.size += int64(n)
	}
	return n, err
}

func (f *scriptedFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.step() {
		return ErrInjectedCrash
	}
	if f.st.f == nil {
		return os.ErrClosed
	}
	if f.fs.plan.FsyncLie {
		f.fs.tracef("fsync lie %s at %d (durable %d)", f.st.path, f.st.size, f.st.durable)
		return nil
	}
	if err := f.st.f.Sync(); err != nil {
		return err
	}
	f.st.durable = f.st.size
	return nil
}

func (f *scriptedFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	tripped := f.fs.tripped
	real := f.st.f
	f.fs.mu.Unlock()
	if tripped {
		return 0, ErrInjectedCrash
	}
	if real == nil {
		return 0, os.ErrClosed
	}
	return real.Read(p)
}

func (f *scriptedFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	tripped := f.fs.tripped
	real := f.st.f
	f.fs.mu.Unlock()
	if tripped {
		return 0, ErrInjectedCrash
	}
	if real == nil {
		return 0, os.ErrClosed
	}
	return real.ReadAt(p, off)
}

func (f *scriptedFile) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	tripped := f.fs.tripped
	real := f.st.f
	f.fs.mu.Unlock()
	if tripped {
		return nil, ErrInjectedCrash
	}
	if real == nil {
		return nil, os.ErrClosed
	}
	return real.Stat()
}

func (f *scriptedFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.st.f == nil {
		return nil
	}
	err := f.st.f.Close()
	f.st.f = nil
	if f.fs.tripped {
		return ErrInjectedCrash
	}
	return err
}

func (f *scriptedFile) Name() string { return f.st.path }
