// Package fault is the injectable file-system seam under the
// durability stack. internal/wal performs every file operation —
// segment appends, schema-log appends, checkpoint tmp+rename+dir-sync,
// replay reads — through a fault.FS, so tests can substitute a
// Scripted implementation that crashes the "disk" at a chosen
// operation, tears the tail of the last frame, or lies about fsync,
// all reproducibly from a seed.
//
// The default OS implementation is a zero-state passthrough: each
// method is one call into package os, and the File it hands out is the
// bare *os.File, so the commit-path fsync stays a single (virtual)
// call away from the kernel and costs nothing when no faults are
// armed.
package fault

import (
	"io"
	"os"
)

// File is the subset of *os.File the durability stack uses. Appends
// only ever go through Write; reads go through Read (replay streams)
// and ReadAt (checkpoint trailer).
type File interface {
	io.Writer
	io.Reader
	io.ReaderAt
	// Sync flushes the file to stable storage — or claims to.
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the file-system surface of the durability stack. Every method
// mirrors the os package function of the same name; SyncDir opens the
// directory and fsyncs it, making previously created/renamed entries
// durable.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	SyncDir(path string) error
}

// OS is the passthrough FS: the real file system, no faults.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
