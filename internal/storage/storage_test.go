package storage

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"ankerdb/internal/cost"
	"ankerdb/internal/vmem"
)

func newProc() *vmem.Process {
	return vmem.NewProcess(vmem.WithCostModel(cost.Zero))
}

func TestWordArrayRoundTrip(t *testing.T) {
	p := newProc()
	w, err := NewWordArray(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Free()
	if w.Rows() != 1000 {
		t.Fatalf("rows = %d", w.Rows())
	}
	for i := 0; i < 1000; i++ {
		w.Set(i, int64(i)-500)
	}
	for i := 0; i < 1000; i++ {
		if got := w.Get(i); got != int64(i)-500 {
			t.Fatalf("row %d = %d, want %d", i, got, int64(i)-500)
		}
	}
}

func TestWordArrayZeroInitialised(t *testing.T) {
	p := newProc()
	w, err := NewWordArray(p, 600)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i += 7 {
		if got := w.Get(i); got != 0 {
			t.Fatalf("row %d = %d, want 0", i, got)
		}
	}
}

func TestWordArrayPreFaultsAllPages(t *testing.T) {
	p := newProc()
	st0 := p.Stats()
	w, err := NewWordArray(p, 4096) // 8 pages
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumPTEs(); got < 8 {
		t.Fatalf("PTEs after NewWordArray = %d, want >= 8 (pre-faulted)", got)
	}
	_ = st0
	_ = w
}

func TestWordArrayRejectsBadRows(t *testing.T) {
	p := newProc()
	if _, err := NewWordArray(p, 0); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if _, err := NewWordArray(p, -5); err == nil {
		t.Fatal("rows<0 accepted")
	}
}

func TestWordArrayFill(t *testing.T) {
	p := newProc()
	w, err := NewWordArray(p, 300)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i * i)
	}
	w.Fill(vals)
	for i := range vals {
		if got := w.Get(i); got != vals[i] {
			t.Fatalf("row %d = %d, want %d", i, got, vals[i])
		}
	}
}

func TestViewWordArray(t *testing.T) {
	p := newProc()
	w, err := NewWordArray(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	w.Set(42, 777)
	v := ViewWordArray(p, w.Addr(), 100)
	if got := v.Get(42); got != 777 {
		t.Fatalf("view row 42 = %d, want 777", got)
	}
	if v.SizeBytes() != w.SizeBytes() {
		t.Fatalf("view size %d != %d", v.SizeBytes(), w.SizeBytes())
	}
}

func TestPageCache(t *testing.T) {
	p := newProc()
	w, err := NewWordArray(p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		w.Set(i, int64(3*i))
	}
	pc := w.Resolve()
	if pc.Rows() != 2000 {
		t.Fatalf("cache rows = %d", pc.Rows())
	}
	for i := 0; i < 2000; i++ {
		if got := pc.Get(i); got != int64(3*i) {
			t.Fatalf("cache row %d = %d, want %d", i, got, 3*i)
		}
	}
	words, base := pc.Page(600)
	if base > 600 || base+len(words) <= 600 {
		t.Fatalf("Page(600) base=%d len=%d does not cover row", base, len(words))
	}
	if int64(words[600-base]) != 1800 {
		t.Fatalf("page word = %d, want 1800", words[600-base])
	}
}

func TestPageCacheSeesCommittedWritesToLiveArray(t *testing.T) {
	// In homogeneous mode the cur generation is scanned through a
	// cache while writers update it in place; the cache must observe
	// those in-place writes (pages are never COW-replaced without
	// snapshots).
	p := newProc()
	w, err := NewWordArray(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	pc := w.Resolve()
	w.Set(5, 123)
	if got := pc.Get(5); got != 123 {
		t.Fatalf("cache missed in-place write: %d", got)
	}
}

func TestWordArraySignedAndUnsigned(t *testing.T) {
	p := newProc()
	w, err := NewWordArray(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Set(0, -1)
	if got := w.GetU(0); got != ^uint64(0) {
		t.Fatalf("unsigned view of -1 = %#x", got)
	}
	w.SetU(1, 1<<63)
	if got := w.Get(1); got != -(1 << 62 << 1) {
		t.Fatalf("signed view = %d", got)
	}
}

func TestDictEncodeDecode(t *testing.T) {
	d := NewDict()
	a := d.Encode("apple")
	b := d.Encode("banana")
	if a == b {
		t.Fatal("distinct strings share a code")
	}
	if got := d.Encode("apple"); got != a {
		t.Fatalf("re-encode changed code: %d vs %d", got, a)
	}
	if d.Decode(a) != "apple" || d.Decode(b) != "banana" {
		t.Fatal("decode mismatch")
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if c, ok := d.Lookup("banana"); !ok || c != b {
		t.Fatalf("lookup = %d,%v", c, ok)
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Fatal("lookup invented a code")
	}
	got := d.Strings()
	if len(got) != 2 || got[a] != "apple" || got[b] != "banana" {
		t.Fatalf("strings = %v", got)
	}
}

func TestDictConcurrentEncode(t *testing.T) {
	d := NewDict()
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	codes := make([][]int64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			codes[g] = make([]int64, len(words))
			for i, w := range words {
				codes[g][i] = d.Encode(w)
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != len(words) {
		t.Fatalf("len = %d, want %d", d.Len(), len(words))
	}
	for g := 1; g < 8; g++ {
		for i := range words {
			if codes[g][i] != codes[0][i] {
				t.Fatalf("goroutine %d got different code for %q", g, words[i])
			}
		}
	}
}

func TestPropertyDictBijective(t *testing.T) {
	f := func(strs []string) bool {
		d := NewDict()
		for _, s := range strs {
			c := d.Encode(s)
			if d.Decode(c) != s {
				return false
			}
		}
		return d.Len() <= len(strs) || len(strs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	ok := Schema{Table: "t", Columns: []ColumnDef{{Name: "a", Type: Int64}, {Name: "b", Type: Varchar}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []Schema{
		{Table: "", Columns: []ColumnDef{{Name: "a", Type: Int64}}},
		{Table: "t"},
		{Table: "t", Columns: []ColumnDef{{Name: "", Type: Int64}}},
		{Table: "t", Columns: []ColumnDef{{Name: "a", Type: Int64}, {Name: "a", Type: Date}}},
		{Table: "t", Columns: []ColumnDef{{Name: "a", Type: Int64, Index: 9}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
	if ok.ColumnIndex("b") != 1 || ok.ColumnIndex("zzz") != -1 {
		t.Fatal("ColumnIndex misbehaves")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{Int64: "INT64", Money: "MONEY", Date: "DATE", Varchar: "VARCHAR", Type(99): "Type(99)"}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestShardOfDistribution(t *testing.T) {
	// The commit pipeline hashes (table, column) index pairs onto
	// shards; similarly named columns are exactly the low consecutive
	// indices of one table (c0, c1, c2, ...), so the test grids over
	// small sequential indices — the pattern the previous mix collided
	// on — and requires every shard to receive a near-fair share.
	for _, n := range []int{2, 4, 8, 16} {
		const tables, cols = 16, 64
		counts := make([]int, n)
		for tab := 0; tab < tables; tab++ {
			for col := 0; col < cols; col++ {
				s := ShardOf(tab, col, n)
				if s < 0 || s >= n {
					t.Fatalf("ShardOf(%d,%d,%d) = %d out of range", tab, col, n, s)
				}
				counts[s]++
			}
		}
		mean := float64(tables*cols) / float64(n)
		for s, c := range counts {
			if dev := float64(c)/mean - 1; dev > 0.35 || dev < -0.35 {
				t.Fatalf("n=%d: shard %d holds %d of %d pairs (mean %.0f): skew %.0f%%",
					n, s, c, tables*cols, mean, dev*100)
			}
		}
	}
}

func TestShardOfLowIndexColumnsSpread(t *testing.T) {
	// The first handful of columns of table 0 — the hottest addresses
	// in every benchmark — must not all land on one shard.
	for _, n := range []int{2, 4, 8} {
		seen := map[int]bool{}
		for col := 0; col < 8; col++ {
			seen[ShardOf(0, col, n)] = true
		}
		if len(seen) < 2 {
			t.Fatalf("n=%d: columns 0-7 of table 0 all hash to one shard", n)
		}
	}
}

func TestShardOfDegenerate(t *testing.T) {
	if got := ShardOf(3, 5, 1); got != 0 {
		t.Fatalf("n=1 must pin shard 0, got %d", got)
	}
	if got := ShardOf(3, 5, 0); got != 0 {
		t.Fatalf("n=0 must pin shard 0, got %d", got)
	}
}

func TestWriteReadWordsRoundtrip(t *testing.T) {
	// Cover the chunk boundary (serializeChunk) and odd tails.
	for _, n := range []int{0, 1, 511, 512, 513, 4096 + 17} {
		src := make([]uint64, n)
		for i := range src {
			src[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
		}
		var buf bytes.Buffer
		if err := WriteWords(&buf, n, func(i int) uint64 { return src[i] }); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		if buf.Len() != 8*n {
			t.Fatalf("n=%d: wrote %d bytes, want %d", n, buf.Len(), 8*n)
		}
		dst := make([]uint64, n)
		if err := ReadWords(&buf, n, func(i int, v uint64) { dst[i] = v }); err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("n=%d: word %d = %d, want %d", n, i, dst[i], src[i])
			}
		}
	}
}

func TestReadWordsShortInput(t *testing.T) {
	if err := ReadWords(bytes.NewReader(make([]byte, 12)), 2, func(int, uint64) {}); err == nil {
		t.Fatal("ReadWords accepted truncated input")
	}
}

func TestDictLoad(t *testing.T) {
	d := NewDict()
	d.Encode("will-be-replaced")
	d.Load([]string{"a", "b", "c"})
	if d.Len() != 3 || d.Decode(1) != "b" {
		t.Fatalf("loaded dict wrong: len=%d", d.Len())
	}
	if c, ok := d.Lookup("c"); !ok || c != 2 {
		t.Fatalf("Lookup(c) = %d, %v", c, ok)
	}
	if d.Encode("a") != 0 {
		t.Fatal("Encode of loaded string assigned a new code")
	}
	if d.Encode("d") != 3 {
		t.Fatal("Encode after Load did not continue from loaded length")
	}
}

func TestExtentGrowAndFill(t *testing.T) {
	p := newProc()
	e, err := NewExtent("x", int(p.PageWords()), DefaultColumnAlloc(p))
	if err != nil {
		t.Fatal(err)
	}
	one := e.Rows()
	if one != int(p.PageWords()) {
		t.Fatalf("initial rows = %d, want %d", one, p.PageWords())
	}
	if err := e.Grow(); err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 2*one || e.Chunks() != 2 {
		t.Fatalf("after grow: rows=%d chunks=%d", e.Rows(), e.Chunks())
	}
	// Writes across the chunk boundary round-trip.
	for _, row := range []int{0, one - 1, one, 2*one - 1} {
		e.Set(row, int64(3*row+1))
	}
	for _, row := range []int{0, one - 1, one, 2*one - 1} {
		if got := e.Get(row); got != int64(3*row+1) {
			t.Fatalf("row %d = %d, want %d", row, got, 3*row+1)
		}
	}
	// FillWindow spanning the boundary.
	words := make([]uint64, 10)
	for i := range words {
		words[i] = uint64(100 + i)
	}
	e.FillWindow(one-5, words)
	for i := range words {
		if got := e.GetU(one - 5 + i); got != uint64(100+i) {
			t.Fatalf("window row %d = %d", one-5+i, got)
		}
	}
	// FillU covers a cross-boundary range.
	e.FillU(one-3, 6, NeverTS)
	for i := 0; i < 6; i++ {
		if got := e.GetU(one - 3 + i); got != NeverTS {
			t.Fatalf("FillU row %d = %#x", one-3+i, got)
		}
	}
	if got := len(e.Regions()); got != 2 {
		t.Fatalf("regions = %d, want 2", got)
	}
}

func TestExtentRejectsBadChunkRows(t *testing.T) {
	p := newProc()
	if _, err := NewExtent("x", 3, DefaultColumnAlloc(p)); err == nil {
		t.Fatal("non-power-of-two chunk rows accepted")
	}
}

func TestTableGrowth(t *testing.T) {
	p := newProc()
	schema := Schema{Table: "g", Columns: []ColumnDef{{Name: "a", Type: Int64}, {Name: "b", Type: Varchar}}}
	tab, err := NewTable(p, schema, 100, DefaultColumnAlloc(p))
	if err != nil {
		t.Fatal(err)
	}
	if tab.InitialRows() != 100 {
		t.Fatalf("InitialRows = %d", tab.InitialRows())
	}
	chunk := tab.ChunkRows()
	if chunk < 100 || chunk&(chunk-1) != 0 {
		t.Fatalf("chunk rows = %d", chunk)
	}
	if tab.Capacity() != chunk {
		t.Fatalf("capacity = %d, want %d", tab.Capacity(), chunk)
	}
	// Initial rows are born at time zero, the chunk tail is unborn.
	if got := tab.Birth().GetU(99); got != 0 {
		t.Fatalf("birth[99] = %#x, want 0", got)
	}
	if got := tab.Birth().GetU(100); got != NeverTS {
		t.Fatalf("birth[100] = %#x, want NeverTS", got)
	}
	if err := tab.EnsureCapacity(chunk + 1); err != nil {
		t.Fatal(err)
	}
	if tab.Capacity() != 2*chunk {
		t.Fatalf("capacity after grow = %d, want %d", tab.Capacity(), 2*chunk)
	}
	if got := tab.Birth().GetU(chunk); got != NeverTS {
		t.Fatalf("new chunk birth = %#x, want NeverTS", got)
	}
	data, wts := tab.ColumnRegions(0, 2)
	if len(data) != 2 || len(wts) != 2 {
		t.Fatalf("column regions = %d/%d, want 2/2", len(data), len(wts))
	}
	birth, death := tab.VisRegions(1)
	if len(birth) != 1 || len(death) != 1 {
		t.Fatalf("vis regions = %d/%d", len(birth), len(death))
	}
	// A concatenated PageCache over both chunks reads across the seam.
	tab.Data(0).Set(chunk-1, 7)
	tab.Data(0).Set(chunk, 8)
	regs, _ := tab.ColumnRegions(0, 2)
	pc := ResolveRegions(p, regs, tab.Capacity())
	if pc.Get(chunk-1) != 7 || pc.Get(chunk) != 8 {
		t.Fatalf("page cache seam read: %d/%d", pc.Get(chunk-1), pc.Get(chunk))
	}
}
