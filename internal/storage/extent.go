package storage

import (
	"fmt"
	"sync/atomic"

	"ankerdb/internal/phys"
	"ankerdb/internal/vmem"
)

// NeverTS is the birth-timestamp sentinel of a row slot that has never
// been inserted (or whose dead incarnation was reclaimed into the free
// list): no transaction timestamp can ever reach it, so the slot is
// invisible at every snapshot.
const NeverTS = ^uint64(0)

// Extent is a growable column array: a sequence of equally sized,
// individually mapped chunks of 64-bit words. Chunks are page-aligned
// power-of-two row counts and NEVER move or unmap once published, which
// is what keeps every previously created snapshot's mapped source
// regions valid across capacity growth under all four snapshot
// strategies — growing maps new regions instead of remapping old ones.
//
// Readers address rows lock-free through an atomically published chunk
// slice; Grow (serialised by the owning table) appends a chunk and
// republishes. A reader therefore sees a consistent prefix: rows below
// the capacity it observed are always backed.
type Extent struct {
	name      string
	alloc     ColumnAlloc
	chunkRows int
	shift     uint // log2(chunkRows)
	mask      int  // chunkRows - 1
	chunks    atomic.Pointer[[]WordArray]
}

// NewExtent returns an extent of one chunk. chunkRows must be a power
// of two and a multiple of the process page words (ChunkRowsFor).
func NewExtent(name string, chunkRows int, alloc ColumnAlloc) (*Extent, error) {
	if chunkRows <= 0 || chunkRows&(chunkRows-1) != 0 {
		return nil, fmt.Errorf("storage: extent %q: chunk rows %d not a power of two", name, chunkRows)
	}
	e := &Extent{name: name, alloc: alloc, chunkRows: chunkRows, mask: chunkRows - 1}
	for 1<<e.shift < chunkRows {
		e.shift++
	}
	empty := []WordArray{}
	e.chunks.Store(&empty)
	return e, e.Grow()
}

// ChunkRowsFor returns the chunk granularity for a table of rows
// initial rows in proc: the smallest power of two that covers the
// initial rows and is a whole number of pages, so chunk regions are
// page-aligned and chunk page lists concatenate seamlessly into one
// PageCache.
func ChunkRowsFor(proc *vmem.Process, rows int) int {
	n := int(proc.PageWords())
	for n < rows {
		n <<= 1
	}
	return n
}

// ChunkRows returns the rows per chunk.
func (e *Extent) ChunkRows() int { return e.chunkRows }

// Chunks returns the number of mapped chunks.
func (e *Extent) Chunks() int { return len(*e.chunks.Load()) }

// Rows returns the current capacity in rows.
func (e *Extent) Rows() int { return e.Chunks() * e.chunkRows }

// Grow maps and appends one chunk. The caller must serialise Grow
// calls (the owning table's growth lock); readers need no coordination.
func (e *Extent) Grow() error {
	cur := *e.chunks.Load()
	w, err := e.alloc(fmt.Sprintf("%s#%d", e.name, len(cur)), e.chunkRows)
	if err != nil {
		return fmt.Errorf("storage: extent %q: grow: %w", e.name, err)
	}
	next := make([]WordArray, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, w)
	e.chunks.Store(&next)
	return nil
}

// chunk returns the chunk backing row.
func (e *Extent) chunk(row int) WordArray { return (*e.chunks.Load())[row>>e.shift] }

// Get loads the word at row (atomic, torn-free).
func (e *Extent) Get(row int) int64 { return e.chunk(row).Get(row & e.mask) }

// Set stores the word at row.
func (e *Extent) Set(row int, v int64) { e.chunk(row).Set(row&e.mask, v) }

// GetU / SetU are the unsigned variants used for timestamps.
func (e *Extent) GetU(row int) uint64    { return e.chunk(row).GetU(row & e.mask) }
func (e *Extent) SetU(row int, v uint64) { e.chunk(row).SetU(row&e.mask, v) }

// Fill bulk-stores vals starting at row 0, chunk by chunk.
func (e *Extent) Fill(vals []int64) {
	for start := 0; start < len(vals); start += e.chunkRows {
		end := start + e.chunkRows
		if end > len(vals) {
			end = len(vals)
		}
		e.chunk(start).Fill(vals[start:end])
	}
}

// FillWindow bulk-stores a window of raw words starting at row start,
// splitting the window at chunk boundaries — the in-place consumer side
// of checkpoint recovery (ReadWordsRegion).
func (e *Extent) FillWindow(start int, words []uint64) {
	for len(words) > 0 {
		in := start & e.mask
		n := e.chunkRows - in
		if n > len(words) {
			n = len(words)
		}
		e.chunk(start).FillWindow(in, words[:n])
		start += n
		words = words[n:]
	}
}

// FillU stores v into rows [start, start+n), page-wise.
func (e *Extent) FillU(start, n int, v uint64) {
	buf := make([]uint64, serializeChunk)
	for i := range buf {
		buf[i] = v
	}
	for n > 0 {
		k := len(buf)
		if k > n {
			k = n
		}
		e.FillWindow(start, buf[:k])
		start += k
		n -= k
	}
}

// Free unmaps every chunk of the extent. The caller must guarantee no
// reader can still resolve the extent — live access or snapshot
// first-touch capture of unmapped memory faults — which is what the
// engine's drop protocol (GC floor above the drop timestamp) provides.
// The chunk slice is reset so a stray Get fails loudly on the nil
// slice instead of faulting in the simulated address space.
func (e *Extent) Free() {
	chunks := *e.chunks.Load()
	empty := []WordArray{}
	e.chunks.Store(&empty)
	for _, w := range chunks {
		w.Free()
	}
}

// Regions returns the mapped range of every chunk, in row order. The
// prefix of the returned slice is stable across growth (chunks are
// append-only), so callers may slice it to a previously observed
// capacity and snapshot a consistent prefix.
func (e *Extent) Regions() []Region {
	chunks := *e.chunks.Load()
	out := make([]Region, len(chunks))
	for i, w := range chunks {
		out[i] = w.Region()
	}
	return out
}

// ResolveRegions builds one PageCache over a sequence of equally sized,
// page-aligned snapshot regions holding rows words in row order — the
// reader-side view of a snapshotted chunked extent. Because chunks are
// whole pages, the per-chunk page lists concatenate into a single
// page-indexed cache and readers keep the exact tight-loop access path
// of contiguous columns.
func ResolveRegions(proc *vmem.Process, regions []Region, rows int) *PageCache {
	ps := proc.PageSize()
	var pages []*phys.Page
	for _, r := range regions {
		pages = append(pages, proc.ResolvePages(r.Addr, int(r.Len/ps))...)
	}
	return &PageCache{
		pages: pages,
		shift: wordShift(int(proc.PageWords())),
		mask:  int(proc.PageWords()) - 1,
		rows:  rows,
	}
}
