package storage

import (
	"fmt"

	"ankerdb/internal/index"
)

// Type is the logical type of a column. Every type is physically a
// 64-bit word; the Type governs encoding and rendering.
type Type uint8

// Column types. Money values are fixed-point cents, Date values are
// days since 1970-01-01, Varchar values are dictionary codes.
const (
	Int64 Type = iota
	Money
	Date
	Varchar
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INT64"
	case Money:
		return "MONEY"
	case Date:
		return "DATE"
	case Varchar:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ColumnDef declares one column of a schema. A non-zero Index declares
// a secondary index of that kind, built when the table is created and
// maintained transactionally from then on.
type ColumnDef struct {
	Name  string
	Type  Type
	Index index.Kind
}

// Schema declares a table layout.
type Schema struct {
	Table   string
	Columns []ColumnDef
}

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural sanity.
func (s Schema) Validate() error {
	if s.Table == "" {
		return fmt.Errorf("storage: schema without table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("storage: table %q has no columns", s.Table)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("storage: table %q has an unnamed column", s.Table)
		}
		if seen[c.Name] {
			return fmt.Errorf("storage: table %q: duplicate column %q", s.Table, c.Name)
		}
		if c.Index != index.None && !c.Index.Valid() {
			return fmt.Errorf("storage: table %q: column %q: invalid index kind %d", s.Table, c.Name, c.Index)
		}
		seen[c.Name] = true
	}
	return nil
}
