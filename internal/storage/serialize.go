package storage

import (
	"encoding/binary"
	"io"
)

// Column-region serialization: checkpoints stream column data and
// write-timestamp arrays as raw little-endian 64-bit words. The
// get/set accessor indirection lets the same code serve WordArrays,
// resolved snapshot PageCaches, and anything else word-addressable,
// without the writer ever holding the address-space lock for more than
// one word.

// serializeChunk is how many words are staged per I/O call.
const serializeChunk = 512

// WriteWords streams n words read through get to w.
func WriteWords(w io.Writer, n int, get func(row int) uint64) error {
	var buf [8 * serializeChunk]byte
	for i := 0; i < n; {
		k := 0
		for ; k < serializeChunk && i < n; k++ {
			binary.LittleEndian.PutUint64(buf[8*k:], get(i))
			i++
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
	}
	return nil
}

// ReadWords reads n words from r, storing each through set.
func ReadWords(r io.Reader, n int, set func(row int, v uint64)) error {
	var buf [8 * serializeChunk]byte
	for i := 0; i < n; {
		k := serializeChunk
		if n-i < k {
			k = n - i
		}
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return err
		}
		for j := 0; j < k; j++ {
			set(i, binary.LittleEndian.Uint64(buf[8*j:]))
			i++
		}
	}
	return nil
}
