package storage

import (
	"encoding/binary"
	"io"
)

// Column-region serialization: checkpoints stream column data and
// write-timestamp arrays as raw little-endian 64-bit words. The
// get/set accessor indirection lets the same code serve WordArrays,
// resolved snapshot PageCaches, and anything else word-addressable,
// without the writer ever holding the address-space lock for more than
// one word.

// serializeChunk is how many words are staged per I/O call.
const serializeChunk = 512

// WriteWords streams n words read through get to w.
func WriteWords(w io.Writer, n int, get func(row int) uint64) error {
	var buf [8 * serializeChunk]byte
	for i := 0; i < n; {
		k := 0
		for ; k < serializeChunk && i < n; k++ {
			binary.LittleEndian.PutUint64(buf[8*k:], get(i))
			i++
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
	}
	return nil
}

// ReadWords reads n words from r, storing each through set.
func ReadWords(r io.Reader, n int, set func(row int, v uint64)) error {
	var buf [8 * serializeChunk]byte
	for i := 0; i < n; {
		k := serializeChunk
		if n-i < k {
			k = n - i
		}
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return err
		}
		for j := 0; j < k; j++ {
			set(i, binary.LittleEndian.Uint64(buf[8*j:]))
			i++
		}
	}
	return nil
}

// ReadWordsRegion is the region-window variant of ReadWords: it decodes
// n words chunk-wise into a reusable window and hands each (start,
// words) window to fill, so a consumer can store a whole contiguous
// region slice at once (one page-wise bulk write through the simulated
// address space) instead of paying the per-word accessor indirection.
// This is the recovery hot path: checkpoint bodies stream through a
// fixed window regardless of column size, keeping restart memory
// O(chunk) while columns fill in place.
func ReadWordsRegion(r io.Reader, n int, fill func(start int, words []uint64)) error {
	var buf [8 * serializeChunk]byte
	var words [serializeChunk]uint64
	for i := 0; i < n; {
		k := serializeChunk
		if n-i < k {
			k = n - i
		}
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return err
		}
		for j := 0; j < k; j++ {
			words[j] = binary.LittleEndian.Uint64(buf[8*j:])
		}
		fill(i, words[:k])
		i += k
	}
	return nil
}
