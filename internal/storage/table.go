package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ankerdb/internal/phys"
	"ankerdb/internal/vmem"
)

// Region is one contiguous mapped range of a column array, exposed so
// the snapshotting layer can virtually snapshot exactly the columns a
// query touches (the paper's fine-granular mode).
type Region struct {
	Addr uint64
	Len  uint64
}

// Region returns the mapped range of the array.
func (w WordArray) Region() Region { return Region{Addr: w.addr, Len: w.size} }

// PreFault touches every page of the array writable, so later snapshot
// costs include every PTE (the bulk-loaded state the paper measures).
func (w WordArray) PreFault() {
	ps := w.proc.PageSize()
	for off := uint64(0); off < w.size; off += ps {
		w.proc.Store(w.addr+off, w.proc.Load(w.addr+off))
	}
}

// ColumnAlloc maps one fixed-size column array of rows words. The
// default allocator uses private anonymous memory; the rewired
// snapshotting strategy substitutes shared main-memory-file regions.
type ColumnAlloc func(name string, rows int) (WordArray, error)

// DefaultColumnAlloc allocates columns as private anonymous arrays in
// proc, the backing every strategy except rewiring works on.
func DefaultColumnAlloc(proc *vmem.Process) ColumnAlloc {
	return func(name string, rows int) (WordArray, error) {
		return NewWordArray(proc, rows)
	}
}

// ColumnBytes returns the page-aligned mapped size of a column of rows
// words in proc.
func ColumnBytes(proc *vmem.Process, rows int) uint64 {
	ps := proc.PageSize()
	return (uint64(rows)*phys.WordSize + ps - 1) / ps * ps
}

// FNV-1a parameters (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ShardOf maps a (table, column) address onto one of n commit shards
// by FNV-1a over the table and column words. Byte-wise FNV-1a mixes
// every input byte through the full hash state, so the small
// consecutive indices of similarly named columns (c0, c1, c2, ... of
// one hot table) spread evenly across shards instead of colliding the
// way the previous two-constant mix did for low indices: disjoint
// column footprints commit in parallel even inside a single table.
func ShardOf(table, col, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset)
	for _, v := range [2]uint64{uint64(table), uint64(col)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return int(h % uint64(n))
}

// Table is a growable columnar table: per schema column one data
// extent and one parallel write-timestamp extent (the per-row commit
// timestamps MVCC visibility checks read), plus the table-wide
// birth/death visibility extents that make rows transactional — a row
// is visible at timestamp ts iff birth <= ts and (death == 0 or
// death > ts). All extents are individually snapshottable chunk lists.
// VARCHAR values share one table-wide dictionary.
//
// Capacity grows in whole chunks (EnsureCapacity); the initial rows
// passed to NewTable are born at time zero (birth 0) and every slot
// above them starts at NeverTS, invisible until an insert commits into
// it.
type Table struct {
	schema      Schema
	initialRows int
	chunkRows   int
	dict        *Dict
	data        []*Extent
	wts         []*Extent
	birth       *Extent
	death       *Extent

	mu       sync.Mutex // serialises growth
	capacity atomic.Int64
}

// NewTable allocates a table with the given initial visible row count
// in proc, drawing every column array from alloc. The first chunk
// rounds the initial rows up to a page-aligned power of two; rows
// beyond the initial count exist physically but are unborn (birth
// NeverTS).
func NewTable(proc *vmem.Process, schema Schema, rows int, alloc ColumnAlloc) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 {
		return nil, fmt.Errorf("storage: table %q: non-positive row capacity %d", schema.Table, rows)
	}
	t := &Table{schema: schema, initialRows: rows, dict: NewDict()}
	newExt := func(name string, chunkRows int) (*Extent, error) {
		e, err := NewExtent(schema.Table+"."+name, chunkRows, alloc)
		if err != nil {
			return nil, fmt.Errorf("storage: table %q: %w", schema.Table, err)
		}
		return e, nil
	}
	chunkRows := ChunkRowsFor(proc, rows)
	t.chunkRows = chunkRows
	for _, c := range schema.Columns {
		d, err := newExt(c.Name, chunkRows)
		if err != nil {
			return nil, err
		}
		w, err := newExt(c.Name+".wts", chunkRows)
		if err != nil {
			return nil, err
		}
		t.data = append(t.data, d)
		t.wts = append(t.wts, w)
	}
	var err error
	if t.birth, err = newExt("#birth", chunkRows); err != nil {
		return nil, err
	}
	if t.death, err = newExt("#death", chunkRows); err != nil {
		return nil, err
	}
	// Rows at table birth are the time-zero state (birth 0, the
	// extent's zero fill); the chunk's tail starts unborn.
	t.birth.FillU(rows, chunkRows-rows, NeverTS)
	t.capacity.Store(int64(chunkRows))
	return t, nil
}

// Schema returns the table layout.
func (t *Table) Schema() Schema { return t.schema }

// InitialRows returns the visible row count the table was created with.
func (t *Table) InitialRows() int { return t.initialRows }

// ChunkRows returns the capacity-growth granularity in rows.
func (t *Table) ChunkRows() int { return t.chunkRows }

// Capacity returns the current mapped row capacity (a multiple of
// ChunkRows). It is published only after every extent covers it, so a
// reader that observed a capacity can address every row below it in
// every extent.
func (t *Table) Capacity() int { return int(t.capacity.Load()) }

// EnsureCapacity grows the table until at least n rows are mapped,
// appending page-aligned chunks to every extent (data, write
// timestamps, birth, death). Existing chunks are never remapped, so
// mapped regions a snapshot captured earlier stay valid under all four
// snapshot strategies. New birth rows start at NeverTS (unborn).
func (t *Table) EnsureCapacity(n int) error {
	if n <= t.Capacity() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.Capacity() < n {
		for _, e := range t.data {
			if err := e.Grow(); err != nil {
				return err
			}
		}
		for _, e := range t.wts {
			if err := e.Grow(); err != nil {
				return err
			}
		}
		if err := t.birth.Grow(); err != nil {
			return err
		}
		if err := t.death.Grow(); err != nil {
			return err
		}
		t.birth.FillU(t.birth.Rows()-t.chunkRows, t.chunkRows, NeverTS)
		t.capacity.Store(int64(t.birth.Rows()))
	}
	return nil
}

// Free unmaps every extent of the table — data, write timestamps,
// birth and death — returning all of its chunks to the simulated
// physical memory. Called by DropTable once no reader (running
// transaction or pinned snapshot generation) can still reach the
// table; see Extent.Free for the safety contract.
func (t *Table) Free() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.data {
		e.Free()
	}
	for _, e := range t.wts {
		e.Free()
	}
	t.birth.Free()
	t.death.Free()
	t.capacity.Store(0)
}

// Dict returns the table-wide VARCHAR dictionary.
func (t *Table) Dict() *Dict { return t.dict }

// Data returns the data extent of column col.
func (t *Table) Data(col int) *Extent { return t.data[col] }

// WTS returns the write-timestamp extent of column col.
func (t *Table) WTS(col int) *Extent { return t.wts[col] }

// Birth returns the per-row birth-timestamp extent.
func (t *Table) Birth() *Extent { return t.birth }

// Death returns the per-row death-timestamp extent.
func (t *Table) Death() *Extent { return t.death }

// ColumnRegions returns the mapped chunk ranges of column col's data
// and write-timestamp extents covering the first chunks chunks — the
// unit of fine-granular snapshotting at an observed capacity.
func (t *Table) ColumnRegions(col, chunks int) (data, wts []Region) {
	return t.data[col].Regions()[:chunks], t.wts[col].Regions()[:chunks]
}

// VisRegions returns the mapped chunk ranges of the birth and death
// extents covering the first chunks chunks.
func (t *Table) VisRegions(chunks int) (birth, death []Region) {
	return t.birth.Regions()[:chunks], t.death.Regions()[:chunks]
}
