package storage

import (
	"fmt"

	"ankerdb/internal/phys"
	"ankerdb/internal/vmem"
)

// Region is one contiguous mapped range of a column array, exposed so
// the snapshotting layer can virtually snapshot exactly the columns a
// query touches (the paper's fine-granular mode).
type Region struct {
	Addr uint64
	Len  uint64
}

// Region returns the mapped range of the array.
func (w WordArray) Region() Region { return Region{Addr: w.addr, Len: w.size} }

// PreFault touches every page of the array writable, so later snapshot
// costs include every PTE (the bulk-loaded state the paper measures).
func (w WordArray) PreFault() {
	ps := w.proc.PageSize()
	for off := uint64(0); off < w.size; off += ps {
		w.proc.Store(w.addr+off, w.proc.Load(w.addr+off))
	}
}

// ColumnAlloc maps one fixed-size column array of rows words. The
// default allocator uses private anonymous memory; the rewired
// snapshotting strategy substitutes shared main-memory-file regions.
type ColumnAlloc func(name string, rows int) (WordArray, error)

// DefaultColumnAlloc allocates columns as private anonymous arrays in
// proc, the backing every strategy except rewiring works on.
func DefaultColumnAlloc(proc *vmem.Process) ColumnAlloc {
	return func(name string, rows int) (WordArray, error) {
		return NewWordArray(proc, rows)
	}
}

// ColumnBytes returns the page-aligned mapped size of a column of rows
// words in proc.
func ColumnBytes(proc *vmem.Process, rows int) uint64 {
	ps := proc.PageSize()
	return (uint64(rows)*phys.WordSize + ps - 1) / ps * ps
}

// FNV-1a parameters (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ShardOf maps a (table, column) address onto one of n commit shards
// by FNV-1a over the table and column words. Byte-wise FNV-1a mixes
// every input byte through the full hash state, so the small
// consecutive indices of similarly named columns (c0, c1, c2, ... of
// one hot table) spread evenly across shards instead of colliding the
// way the previous two-constant mix did for low indices: disjoint
// column footprints commit in parallel even inside a single table.
func ShardOf(table, col, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset)
	for _, v := range [2]uint64{uint64(table), uint64(col)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return int(h % uint64(n))
}

// Table is a fixed-capacity columnar table: per schema column one data
// array and one parallel write-timestamp array (the per-row commit
// timestamps MVCC visibility checks read), both individually
// snapshottable. VARCHAR values share one table-wide dictionary.
type Table struct {
	schema Schema
	rows   int
	dict   *Dict
	data   []WordArray
	wts    []WordArray
}

// NewTable allocates a table of the given fixed row capacity, drawing
// every column array from alloc.
func NewTable(schema Schema, rows int, alloc ColumnAlloc) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 {
		return nil, fmt.Errorf("storage: table %q: non-positive row capacity %d", schema.Table, rows)
	}
	t := &Table{schema: schema, rows: rows, dict: NewDict()}
	for _, c := range schema.Columns {
		d, err := alloc(schema.Table+"."+c.Name, rows)
		if err != nil {
			return nil, fmt.Errorf("storage: table %q column %q: %w", schema.Table, c.Name, err)
		}
		w, err := alloc(schema.Table+"."+c.Name+".wts", rows)
		if err != nil {
			return nil, fmt.Errorf("storage: table %q column %q wts: %w", schema.Table, c.Name, err)
		}
		t.data = append(t.data, d)
		t.wts = append(t.wts, w)
	}
	return t, nil
}

// Schema returns the table layout.
func (t *Table) Schema() Schema { return t.schema }

// Rows returns the fixed row capacity.
func (t *Table) Rows() int { return t.rows }

// Dict returns the table-wide VARCHAR dictionary.
func (t *Table) Dict() *Dict { return t.dict }

// Data returns the data array of column col.
func (t *Table) Data(col int) WordArray { return t.data[col] }

// WTS returns the write-timestamp array of column col.
func (t *Table) WTS(col int) WordArray { return t.wts[col] }

// ColumnRegions returns the mapped ranges of column col's data and
// write-timestamp arrays — the unit of fine-granular snapshotting.
func (t *Table) ColumnRegions(col int) (data, wts Region) {
	return t.data[col].Region(), t.wts[col].Region()
}
