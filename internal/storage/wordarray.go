// Package storage provides the column-oriented storage layer of
// AnKerDB: fixed-width 64-bit word columns hosted in the simulated
// virtual memory subsystem (so they can be virtually snapshotted),
// string dictionaries, and table/schema plumbing.
package storage

import (
	"fmt"
	"sync/atomic"

	"ankerdb/internal/phys"
	"ankerdb/internal/vmem"
)

// WordArray is a fixed-size array of 64-bit words living in simulated
// virtual memory. Columns and per-row write-timestamp arrays are
// WordArrays, which is what makes both snapshottable with vm_snapshot.
type WordArray struct {
	proc *vmem.Process
	addr uint64
	rows int
	size uint64 // mapped bytes, page aligned
}

// NewWordArray maps a fresh zero-filled array of rows words. All pages
// are pre-faulted writable, as a bulk-loaded column would be, so
// snapshot costs measured later include every PTE.
func NewWordArray(proc *vmem.Process, rows int) (WordArray, error) {
	if rows <= 0 {
		return WordArray{}, fmt.Errorf("storage: non-positive row count %d", rows)
	}
	ps := proc.PageSize()
	size := (uint64(rows)*phys.WordSize + ps - 1) / ps * ps
	addr, err := proc.Mmap(size, vmem.ProtRead|vmem.ProtWrite, vmem.MapPrivate|vmem.MapAnonymous, nil, 0)
	if err != nil {
		return WordArray{}, err
	}
	for off := uint64(0); off < size; off += ps {
		proc.Store(addr+off, 0)
	}
	return WordArray{proc: proc, addr: addr, rows: rows, size: size}, nil
}

// ViewWordArray wraps an existing mapping (e.g. a snapshot created by
// vm_snapshot) as a WordArray of rows words.
func ViewWordArray(proc *vmem.Process, addr uint64, rows int) WordArray {
	ps := proc.PageSize()
	size := (uint64(rows)*phys.WordSize + ps - 1) / ps * ps
	return WordArray{proc: proc, addr: addr, rows: rows, size: size}
}

// Proc returns the owning address space.
func (w WordArray) Proc() *vmem.Process { return w.proc }

// Addr returns the start address of the mapping.
func (w WordArray) Addr() uint64 { return w.addr }

// Rows returns the number of words.
func (w WordArray) Rows() int { return w.rows }

// SizeBytes returns the page-aligned mapped size.
func (w WordArray) SizeBytes() uint64 { return w.size }

// Get loads the word at row (atomic, torn-free).
func (w WordArray) Get(row int) int64 {
	return int64(w.proc.Load(w.addr + uint64(row)*phys.WordSize))
}

// Set stores the word at row (atomic, torn-free; copy-on-write breaks
// are handled by the fault path if the page is snapshot-shared).
func (w WordArray) Set(row int, v int64) {
	w.proc.Store(w.addr+uint64(row)*phys.WordSize, uint64(v))
}

// GetU / SetU are the unsigned variants used for timestamps.
func (w WordArray) GetU(row int) uint64 {
	return w.proc.Load(w.addr + uint64(row)*phys.WordSize)
}

// SetU stores an unsigned word at row.
func (w WordArray) SetU(row int, v uint64) {
	w.proc.Store(w.addr+uint64(row)*phys.WordSize, v)
}

// Fill bulk-stores vals starting at row 0.
func (w WordArray) Fill(vals []int64) {
	buf := make([]uint64, len(vals))
	for i, v := range vals {
		buf[i] = uint64(v)
	}
	w.proc.WriteWords(w.addr, buf)
}

// FillWindow bulk-stores a window of raw words starting at row start:
// the in-place consumer side of ReadWordsRegion, one page-wise bulk
// write instead of a per-word Store (and its per-word address-space
// lock round trip).
func (w WordArray) FillWindow(start int, words []uint64) {
	w.proc.WriteWords(w.addr+uint64(start)*phys.WordSize, words)
}

// Free unmaps the array.
func (w WordArray) Free() {
	_ = w.proc.Munmap(w.addr, w.size)
}

// Resolve builds a PageCache for lock-free reads. The mapping must stay
// frozen (no writes through it, no unmap) while the cache is used —
// exactly the property of snapshot generations and of never-snapshotted
// columns in homogeneous mode.
func (w WordArray) Resolve() *PageCache {
	n := int(w.size / w.proc.PageSize())
	pc := &PageCache{
		pages: w.proc.ResolvePages(w.addr, n),
		shift: wordShift(int(w.proc.PageWords())),
		mask:  int(w.proc.PageWords()) - 1,
		rows:  w.rows,
	}
	return pc
}

func wordShift(wordsPerPage int) uint {
	s := uint(0)
	for 1<<s < wordsPerPage {
		s++
	}
	return s
}

// PageCache is a resolved translation of a frozen WordArray: direct
// physical page pointers, read without taking the address-space lock.
// This is the "scan the column in a tight loop" representation the
// paper's OLAP component relies on.
type PageCache struct {
	pages []*phys.Page
	shift uint
	mask  int
	rows  int
}

// Rows returns the number of words addressable through the cache.
func (pc *PageCache) Rows() int { return pc.rows }

// Get loads the word at row.
func (pc *PageCache) Get(row int) int64 {
	return int64(atomic.LoadUint64(&pc.pages[row>>pc.shift].Words[row&pc.mask]))
}

// GetU loads the unsigned word at row.
func (pc *PageCache) GetU(row int) uint64 {
	return atomic.LoadUint64(&pc.pages[row>>pc.shift].Words[row&pc.mask])
}

// Page returns the words of the page containing row and the row index
// of the page's first word. Scan kernels iterate page-wise to avoid
// per-row indirection.
func (pc *PageCache) Page(row int) (words []uint64, base int) {
	p := row >> pc.shift
	return pc.pages[p].Words, p << pc.shift
}
