package storage

import "sync"

// Dict is an order-indifferent string dictionary: VARCHAR columns store
// dictionary codes as their column words. It is append-only and safe
// for concurrent use; reads take the fast path of an RWMutex.
type Dict struct {
	mu   sync.RWMutex
	vals []string
	idx  map[string]int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{idx: map[string]int64{}}
}

// Encode returns the code for s, assigning the next code if s is new.
func (d *Dict) Encode(s string) int64 {
	d.mu.RLock()
	c, ok := d.idx[s]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.idx[s]; ok {
		return c
	}
	c = int64(len(d.vals))
	d.vals = append(d.vals, s)
	d.idx[s] = c
	return c
}

// Lookup returns the code for s without assigning one.
func (d *Dict) Lookup(s string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.idx[s]
	return c, ok
}

// Decode returns the string for code. It panics on unknown codes,
// which indicate storage corruption.
func (d *Dict) Decode(code int64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals[code]
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// Strings returns a copy of all dictionary strings, indexed by code.
func (d *Dict) Strings() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.vals...)
}

// Load replaces the dictionary contents so that code i decodes to
// vals[i] — recovery restores the checkpointed dictionary with it,
// keeping every code stored in checkpointed column words valid. It
// must only be used before the dictionary is shared.
func (d *Dict) Load(vals []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.vals = append([]string(nil), vals...)
	d.idx = make(map[string]int64, len(vals))
	for i, s := range vals {
		if _, dup := d.idx[s]; !dup {
			d.idx[s] = int64(i)
		}
	}
}
