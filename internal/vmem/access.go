package vmem

import (
	"fmt"
	"sync/atomic"

	"ankerdb/internal/cost"
	"ankerdb/internal/mmfile"
	"ankerdb/internal/phys"
)

// pageRef is the physical page type used by PTEs.
type pageRef = phys.Page

// Load returns the 64-bit word at the word-aligned virtual address
// addr, demand-paging it in if necessary. It panics if the address is
// unmapped or unaligned: callers (the storage engine) guarantee
// validity, so a failure is a bug, not an I/O condition.
//
// Loads are atomic at word granularity, mirroring aligned hardware
// loads, so concurrent committed writes are observed without tearing.
func (p *Process) Load(addr uint64) uint64 {
	widx := (addr % p.pageSize) / phys.WordSize
	if addr%phys.WordSize != 0 {
		panic(fmt.Sprintf("vmem: unaligned load at %#x", addr))
	}
	vpn := addr / p.pageSize
	for range 16 {
		p.mu.RLock()
		if e := p.pteLookup(vpn); e != nil && e.flags&ptePresent != 0 {
			v := atomic.LoadUint64(&e.page.Words[widx])
			p.mu.RUnlock()
			return v
		}
		p.mu.RUnlock()
		if err := p.repair(addr, false); err != nil {
			panic(fmt.Sprintf("vmem: load at %#x: %v", addr, err))
		}
	}
	panic(fmt.Sprintf("vmem: load at %#x did not make progress", addr))
}

// Store writes the 64-bit word at the word-aligned virtual address
// addr, handling demand paging, copy-on-write, and write-protection
// faults (which are reflected to the FaultHook). It panics on
// unresolvable faults, like Load.
func (p *Process) Store(addr uint64, val uint64) {
	widx := (addr % p.pageSize) / phys.WordSize
	if addr%phys.WordSize != 0 {
		panic(fmt.Sprintf("vmem: unaligned store at %#x", addr))
	}
	vpn := addr / p.pageSize
	for range 16 {
		p.mu.RLock()
		if e := p.pteLookup(vpn); e != nil && e.flags&ptePresent != 0 && e.flags&pteWriteOK != 0 {
			atomic.StoreUint64(&e.page.Words[widx], val)
			p.mu.RUnlock()
			return
		}
		p.mu.RUnlock()
		if err := p.repair(addr, true); err != nil {
			panic(fmt.Sprintf("vmem: store at %#x: %v", addr, err))
		}
	}
	panic(fmt.Sprintf("vmem: store at %#x did not make progress", addr))
}

// repair makes the PTE for addr present (and writable, for write
// faults), running the fault path under the address-space lock. Write
// faults against write-protected VMAs are reflected to the FaultHook
// outside the lock, as a signal handler would run.
func (p *Process) repair(addr uint64, write bool) error {
	p.mu.Lock()
	hook, needHook, err := p.faultLocked(addr, write)
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if !needHook {
		return nil
	}
	p.st.signalHooks.Add(1)
	cost.Spin(p.cost.SignalDelivery)
	if hook == nil {
		return fmt.Errorf("%w: write to read-only mapping at %#x and no fault hook", ErrBadAddress, addr)
	}
	if !hook(p, addr) {
		return fmt.Errorf("%w: fault hook declined write fault at %#x", ErrBadAddress, addr)
	}
	return nil
}

// faultLocked implements the kernel page-fault path. It returns
// needHook=true when the fault must be reflected to user space.
// The caller must hold p.mu for writing.
func (p *Process) faultLocked(addr uint64, write bool) (hook FaultHook, needHook bool, err error) {
	v := p.findVMA(addr)
	if v == nil {
		return nil, false, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	if write && !v.prot.CanWrite() {
		return p.hook, true, nil
	}
	vpn := p.vpn(addr)
	_, e := p.pteEnsure(vpn)

	if e.flags&ptePresent == 0 {
		p.st.minorFaults.Add(1)
		cost.Spin(p.cost.PageFault)
		pageAddr := addr &^ (p.pageSize - 1)
		switch {
		case v.file == nil && write:
			// Anonymous write fault: fresh zeroed page, immediately writable.
			p.setPTE(vpn, p.alloc.Alloc(), pteWriteOK)
			return nil, false, nil
		case v.file == nil:
			// Anonymous read fault: map the shared zero page copy-on-write.
			z := p.alloc.ZeroPage()
			p.alloc.Get(z)
			p.setPTE(vpn, z, pteCOW)
			return nil, false, nil
		default:
			pg := v.file.PageAt(v.offsetFor(pageAddr))
			p.alloc.Get(pg)
			switch {
			case v.flags&MapShared != 0:
				fl := pteFlags(0)
				if v.prot.CanWrite() {
					fl = pteWriteOK
				}
				p.setPTE(vpn, pg, fl)
			default: // private file mapping: first write must copy
				p.setPTE(vpn, pg, pteCOW)
			}
		}
		e = p.pteLookup(vpn)
	}

	if write && e.flags&pteWriteOK == 0 {
		switch {
		case e.flags&pteCOW != 0:
			p.breakCOWLocked(e)
		case v.prot.CanWrite():
			// Write permission restored by mprotect after it was removed.
			e.flags |= pteWriteOK
		default:
			return p.hook, true, nil
		}
	}
	return nil, false, nil
}

// breakCOWLocked resolves a copy-on-write fault on e: if the page is
// exclusively owned it is reused in place; otherwise a fresh page is
// allocated and the contents copied. The caller must hold p.mu for
// writing.
func (p *Process) breakCOWLocked(e *pte) {
	p.st.cowBreaks.Add(1)
	cost.Spin(p.cost.PageFault)
	old := e.page
	if old.Refs() == 1 {
		// Sole owner (the other sharers already copied): write in place.
		e.flags = (e.flags &^ pteCOW) | pteWriteOK
		return
	}
	np := p.alloc.AllocNoZero()
	copy(np.Words, old.Words)
	p.st.wordsCopied.Add(p.pageWords)
	p.alloc.Put(old)
	e.page = np
	e.flags = (e.flags &^ pteCOW) | pteWriteOK
}

// ResolvePages returns the physical pages backing n consecutive virtual
// pages starting at the page-aligned address addr, demand-paging absent
// ones in read mode.
//
// Stability contract: the returned pointers stay valid and their
// contents immutable only while the caller guarantees the mapping is
// neither unmapped nor written through (frozen snapshot generations
// satisfy this). Live OLTP data must be accessed through Load/Store.
func (p *Process) ResolvePages(addr uint64, n int) []*phys.Page {
	if err := p.checkAligned(addr); err != nil {
		panic(err)
	}
	pages := make([]*phys.Page, n)
	i := 0
	for i < n {
		p.mu.RLock()
		for ; i < n; i++ {
			e := p.pteLookup(p.vpn(addr + uint64(i)*p.pageSize))
			if e == nil || e.flags&ptePresent == 0 {
				break
			}
			pages[i] = e.page
		}
		p.mu.RUnlock()
		if i < n {
			a := addr + uint64(i)*p.pageSize
			if err := p.repair(a, false); err != nil {
				panic(fmt.Sprintf("vmem: resolve at %#x: %v", a, err))
			}
		}
	}
	return pages
}

// ReadWords copies len(dst) words starting at the word-aligned virtual
// address addr into dst. It is intended for initialisation, snapshots
// and tests; concurrent committed writers may be observed page-wise.
func (p *Process) ReadWords(addr uint64, dst []uint64) {
	for len(dst) > 0 {
		widx := (addr % p.pageSize) / phys.WordSize
		n := min(uint64(len(dst)), p.pageWords-widx)
		pg := p.pageForRead(addr)
		copy(dst[:n], pg.Words[widx:widx+n])
		dst = dst[n:]
		addr += n * phys.WordSize
	}
}

// WriteWords stores src at the word-aligned virtual address addr,
// faulting pages writable (including COW breaks) as it goes. Bulk
// initialisation path; not atomic with respect to concurrent readers.
func (p *Process) WriteWords(addr uint64, src []uint64) {
	for len(src) > 0 {
		widx := (addr % p.pageSize) / phys.WordSize
		n := min(uint64(len(src)), p.pageWords-widx)
		pg := p.pageForWrite(addr)
		copy(pg.Words[widx:widx+n], src[:n])
		src = src[n:]
		addr += n * phys.WordSize
	}
}

func (p *Process) pageForRead(addr uint64) *phys.Page {
	vpn := addr / p.pageSize
	for range 16 {
		p.mu.RLock()
		if e := p.pteLookup(vpn); e != nil && e.flags&ptePresent != 0 {
			pg := e.page
			p.mu.RUnlock()
			return pg
		}
		p.mu.RUnlock()
		if err := p.repair(addr, false); err != nil {
			panic(fmt.Sprintf("vmem: read page at %#x: %v", addr, err))
		}
	}
	panic(fmt.Sprintf("vmem: read page at %#x did not make progress", addr))
}

func (p *Process) pageForWrite(addr uint64) *phys.Page {
	vpn := addr / p.pageSize
	for range 16 {
		p.mu.RLock()
		if e := p.pteLookup(vpn); e != nil && e.flags&ptePresent != 0 && e.flags&pteWriteOK != 0 {
			pg := e.page
			p.mu.RUnlock()
			return pg
		}
		p.mu.RUnlock()
		if err := p.repair(addr, true); err != nil {
			panic(fmt.Sprintf("vmem: write page at %#x: %v", addr, err))
		}
	}
	panic(fmt.Sprintf("vmem: write page at %#x did not make progress", addr))
}

// Mapping describes one VMA, as reported by DescribeRange.
type Mapping struct {
	Addr    uint64
	Len     uint64
	Prot    Prot
	Flags   Flags
	File    *mmfile.File // nil for anonymous areas
	FileOff uint64
}

// DescribeRange returns the mappings overlapping [addr, addr+length),
// clipped to the range. Rewired snapshotting enumerates them to re-mmap
// a new virtual area to the same file offsets, one mmap per VMA — the
// per-VMA cost that Table 1 and Figure 5a of the paper measure.
func (p *Process) DescribeRange(addr, length uint64) []Mapping {
	p.mu.RLock()
	defer p.mu.RUnlock()
	i0, i1 := p.vmasIn(addr, addr+length)
	out := make([]Mapping, 0, i1-i0)
	for _, v := range p.vmas[i0:i1] {
		m := Mapping{Addr: v.start, Len: v.size(), Prot: v.prot, Flags: v.flags, File: v.file, FileOff: v.fileOff}
		if m.Addr < addr {
			clip := addr - m.Addr
			m.Addr += clip
			m.Len -= clip
			m.FileOff += clip
		}
		if m.Addr+m.Len > addr+length {
			m.Len = addr + length - m.Addr
		}
		out = append(out, m)
	}
	return out
}

// Translation returns the file and file offset backing the virtual
// address addr, for file-backed mappings. The rewired snapshotting
// fault hook uses it to locate the page it must copy.
func (p *Process) Translation(addr uint64) (f *mmfile.File, off uint64, ok bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v := p.findVMA(addr)
	if v == nil || v.file == nil {
		return nil, 0, false
	}
	return v.file, v.offsetFor(addr &^ (p.pageSize - 1)), true
}
