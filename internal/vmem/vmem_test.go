package vmem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ankerdb/internal/cost"
	"ankerdb/internal/mmfile"
	"ankerdb/internal/phys"
)

const ps = phys.DefaultPageSize

func newProc(t *testing.T) *Process {
	t.Helper()
	return NewProcess(WithCostModel(cost.Zero))
}

// checkInvariants asserts structural health of the VMA list.
func checkInvariants(t *testing.T, p *Process) {
	t.Helper()
	p.mu.RLock()
	defer p.mu.RUnlock()
	for i, v := range p.vmas {
		if v.start >= v.end {
			t.Fatalf("vma %d empty or inverted: %s", i, v)
		}
		if v.start%p.pageSize != 0 || v.end%p.pageSize != 0 {
			t.Fatalf("vma %d unaligned: %s", i, v)
		}
		if i > 0 {
			prev := p.vmas[i-1]
			if prev.end > v.start {
				t.Fatalf("vmas %d,%d overlap: %s / %s", i-1, i, prev, v)
			}
		}
	}
	// Every present PTE must lie inside some VMA.
	for key, s := range p.pt {
		base := key << slabBits
		for i := range s.e {
			if s.e[i].flags&ptePresent == 0 {
				continue
			}
			addr := (base + uint64(i)) * p.pageSize
			if p.findVMA(addr) == nil {
				t.Fatalf("present PTE at %#x outside any VMA", addr)
			}
		}
	}
}

func mustMmap(t *testing.T, p *Process, length uint64, prot Prot, flags Flags, f *mmfile.File, off uint64) uint64 {
	t.Helper()
	addr, err := p.Mmap(length, prot, flags, f, off)
	if err != nil {
		t.Fatalf("mmap: %v", err)
	}
	return addr
}

func anonMap(t *testing.T, p *Process, pages int) uint64 {
	t.Helper()
	return mustMmap(t, p, uint64(pages)*ps, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
}

func TestMmapValidation(t *testing.T) {
	p := newProc(t)
	f := mmfile.Create("f", p.Allocator())
	cases := []struct {
		name   string
		length uint64
		flags  Flags
		file   *mmfile.File
		off    uint64
		want   error
	}{
		{"zero length", 0, MapPrivate | MapAnonymous, nil, 0, ErrUnaligned},
		{"unaligned length", ps + 1, MapPrivate | MapAnonymous, nil, 0, ErrUnaligned},
		{"no sharing flag", ps, MapAnonymous, nil, 0, ErrInvalid},
		{"both sharing flags", ps, MapPrivate | MapShared | MapAnonymous, nil, 0, ErrInvalid},
		{"anon without flag", ps, MapPrivate, nil, 0, ErrInvalid},
		{"anon shared", ps, MapShared | MapAnonymous, nil, 0, ErrInvalid},
		{"file with anon flag", ps, MapShared | MapAnonymous, f, 0, ErrInvalid},
		{"unaligned offset", ps, MapShared, f, 17, ErrUnaligned},
	}
	for _, c := range cases {
		if _, err := p.Mmap(c.length, ProtRead, c.flags, c.file, c.off); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestAnonReadIsZero(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 4)
	for i := uint64(0); i < 4*ps/8; i += 511 {
		if v := p.Load(addr + i*8); v != 0 {
			t.Fatalf("fresh anon word %d = %d, want 0", i, v)
		}
	}
	// Reads map the shared zero page: no private pages allocated.
	if got := p.Stats().COWBreaks; got != 0 {
		t.Fatalf("COW breaks = %d after pure reads, want 0", got)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 8)
	for i := uint64(0); i < 8*ps/8; i++ {
		p.Store(addr+i*8, i*3+1)
	}
	for i := uint64(0); i < 8*ps/8; i++ {
		if v := p.Load(addr + i*8); v != i*3+1 {
			t.Fatalf("word %d = %d, want %d", i, v, i*3+1)
		}
	}
	checkInvariants(t, p)
}

func TestStoreAfterZeroPageReadBreaksCOW(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 1)
	if v := p.Load(addr); v != 0 {
		t.Fatalf("load = %d, want 0", v)
	}
	p.Store(addr, 9)
	if v := p.Load(addr); v != 9 {
		t.Fatalf("load after store = %d, want 9", v)
	}
	z := p.Allocator().ZeroPage()
	if z.Words[0] != 0 {
		t.Fatal("the shared zero page was written through")
	}
}

func TestLoadUnmappedPanics(t *testing.T) {
	p := newProc(t)
	defer func() {
		if recover() == nil {
			t.Fatal("load of unmapped address did not panic")
		}
	}()
	p.Load(1 << 30)
}

func TestUnalignedLoadPanics(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned load did not panic")
		}
	}()
	p.Load(addr + 3)
}

func TestMunmapReleasesPages(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 16)
	for i := uint64(0); i < 16; i++ {
		p.Store(addr+i*ps, 1)
	}
	live := p.Allocator().Stats().Live
	if live != 16 {
		t.Fatalf("live = %d, want 16", live)
	}
	if err := p.Munmap(addr, 16*ps); err != nil {
		t.Fatal(err)
	}
	if live := p.Allocator().Stats().Live; live != 0 {
		t.Fatalf("live = %d after munmap, want 0", live)
	}
	checkInvariants(t, p)
}

func TestMunmapPartialSplits(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 10)
	// Unmap the middle four pages.
	if err := p.Munmap(addr+3*ps, 4*ps); err != nil {
		t.Fatal(err)
	}
	if n := p.NumVMAsIn(addr, 10*ps); n != 2 {
		t.Fatalf("VMAs after punching hole = %d, want 2", n)
	}
	p.Store(addr, 5)
	p.Store(addr+9*ps, 6)
	func() {
		defer func() { recover() }()
		p.Load(addr + 4*ps)
		t.Fatal("load in hole did not panic")
	}()
	checkInvariants(t, p)
}

func TestFileBackedSharedMapping(t *testing.T) {
	p := newProc(t)
	f := mmfile.Create("data", p.Allocator())
	f.Truncate(4)
	a1 := mustMmap(t, p, 4*ps, ProtRead|ProtWrite, MapShared, f, 0)
	a2 := mustMmap(t, p, 4*ps, ProtRead|ProtWrite, MapShared, f, 0)
	p.Store(a1+8, 123)
	if v := p.Load(a2 + 8); v != 123 {
		t.Fatalf("shared mapping: second view = %d, want 123", v)
	}
	if f.PageAt(0).Words[1] != 123 {
		t.Fatal("store did not reach the file")
	}
}

func TestFileBackedPrivateMappingCOW(t *testing.T) {
	p := newProc(t)
	f := mmfile.Create("data", p.Allocator())
	f.Truncate(1)
	f.PageAt(0).Words[0] = 7
	a := mustMmap(t, p, ps, ProtRead|ProtWrite, MapPrivate, f, 0)
	if v := p.Load(a); v != 7 {
		t.Fatalf("private view = %d, want 7", v)
	}
	p.Store(a, 8)
	if f.PageAt(0).Words[0] != 7 {
		t.Fatal("private store leaked into the file")
	}
	if v := p.Load(a); v != 8 {
		t.Fatalf("private view after store = %d, want 8", v)
	}
}

func TestVMAMerging(t *testing.T) {
	p := newProc(t)
	f := mmfile.Create("data", p.Allocator())
	f.Truncate(8)
	// Two adjacent mappings of contiguous file ranges must merge.
	a1 := mustMmap(t, p, 2*ps, ProtRead|ProtWrite, MapShared, f, 0)
	a2 := mustMmap(t, p, 2*ps, ProtRead|ProtWrite, MapShared, f, 2*ps)
	if a2 != a1+2*ps {
		t.Fatalf("expected adjacent reservation, got %#x after %#x", a2, a1)
	}
	if n := p.NumVMAsIn(a1, 4*ps); n != 1 {
		t.Fatalf("adjacent compatible mappings: %d VMAs, want 1 (merged)", n)
	}
	// A discontiguous file offset must not merge.
	a3 := mustMmap(t, p, ps, ProtRead|ProtWrite, MapShared, f, 6*ps)
	if n := p.NumVMAsIn(a1, a3+ps-a1); n != 2 {
		t.Fatalf("discontiguous offsets: %d VMAs, want 2", n)
	}
	checkInvariants(t, p)
}

func TestMprotectSplitsAndWriteProtects(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 6)
	for i := uint64(0); i < 6; i++ {
		p.Store(addr+i*ps, i)
	}
	if err := p.Mprotect(addr+2*ps, 2*ps, ProtRead); err != nil {
		t.Fatal(err)
	}
	if n := p.NumVMAsIn(addr, 6*ps); n != 3 {
		t.Fatalf("VMAs after mprotect = %d, want 3", n)
	}
	// Reads still fine.
	if v := p.Load(addr + 2*ps); v != 2 {
		t.Fatalf("read-only page = %d, want 2", v)
	}
	// Store must panic (no fault hook installed).
	func() {
		defer func() { recover() }()
		p.Store(addr+2*ps, 99)
		t.Fatal("store to read-only page did not panic")
	}()
	// Restore and verify lazily-restored write access.
	if err := p.Mprotect(addr+2*ps, 2*ps, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	p.Store(addr+2*ps, 99)
	if v := p.Load(addr + 2*ps); v != 99 {
		t.Fatalf("after restore = %d, want 99", v)
	}
	if n := p.NumVMAsIn(addr, 6*ps); n != 1 {
		t.Fatalf("VMAs after restore = %d, want 1 (re-merged)", n)
	}
	checkInvariants(t, p)
}

func TestMprotectUnmappedFails(t *testing.T) {
	p := newProc(t)
	if err := p.Mprotect(1<<30, ps, ProtRead); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
}

func TestFaultHookRewiresPage(t *testing.T) {
	p := newProc(t)
	f := mmfile.Create("col", p.Allocator())
	f.Truncate(4)
	addr := mustMmap(t, p, 4*ps, ProtRead|ProtWrite, MapShared, f, 0)
	for i := uint64(0); i < 4; i++ {
		p.Store(addr+i*ps, 100+i)
	}
	// Snapshot the column rewiring-style: second view + write-protect.
	snap := mustMmap(t, p, 4*ps, ProtRead, MapShared, f, 0)
	if err := p.Mprotect(addr, 4*ps, ProtRead); err != nil {
		t.Fatal(err)
	}
	hookCalls := 0
	p.SetFaultHook(func(pr *Process, fa uint64) bool {
		hookCalls++
		file, off, ok := pr.Translation(fa)
		if !ok {
			t.Errorf("no translation for fault at %#x", fa)
			return false
		}
		newOff, newPage := file.AppendPage()
		copy(newPage.Words, file.PageAt(off).Words)
		pageAddr := fa &^ (pr.PageSize() - 1)
		if err := pr.MmapFixed(pageAddr, pr.PageSize(), ProtRead|ProtWrite, MapShared, file, newOff); err != nil {
			t.Errorf("rewire mmap: %v", err)
			return false
		}
		return true
	})
	p.Store(addr+2*ps, 999) // triggers the hook
	if hookCalls != 1 {
		t.Fatalf("hook calls = %d, want 1", hookCalls)
	}
	if v := p.Load(addr + 2*ps); v != 999 {
		t.Fatalf("source after rewired write = %d, want 999", v)
	}
	if v := p.Load(snap + 2*ps); v != 102 {
		t.Fatalf("snapshot after source write = %d, want 102 (isolation broken)", v)
	}
	// The rewire split the source VMA.
	if n := p.NumVMAsIn(addr, 4*ps); n != 3 {
		t.Fatalf("source VMAs after one rewire = %d, want 3", n)
	}
	checkInvariants(t, p)
}

func TestForkSharesThenIsolates(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 8)
	for i := uint64(0); i < 8; i++ {
		p.Store(addr+i*ps, 10+i)
	}
	liveBefore := p.Allocator().Stats().Live
	child := p.Fork()
	if live := p.Allocator().Stats().Live; live != liveBefore {
		t.Fatalf("fork allocated pages: live %d -> %d", liveBefore, live)
	}
	for i := uint64(0); i < 8; i++ {
		if v := child.Load(addr + i*ps); v != 10+i {
			t.Fatalf("child word %d = %d, want %d", i, v, 10+i)
		}
	}
	// Writes are isolated in both directions.
	p.Store(addr, 111)
	child.Store(addr+ps, 222)
	if v := child.Load(addr); v != 10 {
		t.Fatalf("child sees parent write: %d", v)
	}
	if v := p.Load(addr + ps); v != 11 {
		t.Fatalf("parent sees child write: %d", v)
	}
	child.Destroy()
	p.Store(addr+2*ps, 333) // page now exclusively owned again
	if v := p.Load(addr + 2*ps); v != 333 {
		t.Fatalf("parent after child destroy = %d", v)
	}
	checkInvariants(t, p)
}

func TestForkCopiesAllMappings(t *testing.T) {
	p := newProc(t)
	a1 := anonMap(t, p, 4)
	a2 := anonMap(t, p, 4)
	p.Store(a1, 1)
	p.Store(a2, 2)
	st0 := p.Stats()
	child := p.Fork()
	st1 := p.Stats()
	if st1.PTECopies-st0.PTECopies != 2 {
		t.Fatalf("fork copied %d PTEs, want 2 (only faulted pages)", st1.PTECopies-st0.PTECopies)
	}
	if child.NumVMAs() != p.NumVMAs() {
		t.Fatalf("child has %d VMAs, parent %d", child.NumVMAs(), p.NumVMAs())
	}
}

func TestVMSnapshotBasic(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 8)
	for i := uint64(0); i < 8*ps/8; i++ {
		p.Store(addr+i*8, i^0xabc)
	}
	snap, err := p.VMSnapshot(0, addr, 8*ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8*ps/8; i += 7 {
		if v := p.Load(snap + i*8); v != i^0xabc {
			t.Fatalf("snapshot word %d = %d, want %d", i, v, i^0xabc)
		}
	}
	// Isolation both ways.
	p.Store(addr, 1)
	p.Store(snap+8, 2)
	if v := p.Load(snap); v != 0^0xabc {
		t.Fatalf("snapshot saw source write: %d", v)
	}
	if v := p.Load(addr + 8); v != 1^0xabc {
		t.Fatalf("source saw snapshot write: %d", v)
	}
	checkInvariants(t, p)
}

func TestVMSnapshotSharesPhysicalPages(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 64)
	for i := uint64(0); i < 64; i++ {
		p.Store(addr+i*ps, i)
	}
	live := p.Allocator().Stats().Live
	snap, err := p.VMSnapshot(0, addr, 64*ps)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Allocator().Stats().Live; got != live {
		t.Fatalf("vm_snapshot allocated %d pages, want 0", got-live)
	}
	// One write separates exactly one page.
	p.Store(addr, 99)
	if got := p.Allocator().Stats().Live; got != live+1 {
		t.Fatalf("after one write: %d new pages, want 1", got-live)
	}
	_ = snap
}

func TestVMSnapshotErrors(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 4)
	if _, err := p.VMSnapshot(0, addr+1, ps); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned src: %v", err)
	}
	if _, err := p.VMSnapshot(0, addr, 0); !errors.Is(err, ErrInvalid) {
		t.Fatalf("zero length: %v", err)
	}
	if _, err := p.VMSnapshot(0, 1<<40, ps); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("unmapped src: %v", err)
	}
	// Partially mapped source must fail too.
	if _, err := p.VMSnapshot(0, addr, 8*ps); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("partially mapped src: %v", err)
	}
	// Destination not reserved.
	if _, err := p.VMSnapshot(1<<40, addr, 4*ps); !errors.Is(err, ErrNoMem) {
		t.Fatalf("unreserved dst: %v", err)
	}
	// Overlapping ranges.
	if _, err := p.VMSnapshot(addr+ps, addr, 2*ps); !errors.Is(err, ErrInvalid) {
		t.Fatalf("overlap: %v", err)
	}
}

func TestVMSnapshotIntoExistingArea(t *testing.T) {
	p := newProc(t)
	src := anonMap(t, p, 4)
	dst := anonMap(t, p, 4)
	for i := uint64(0); i < 4; i++ {
		p.Store(src+i*ps, 100+i)
		p.Store(dst+i*ps, 55) // stale snapshot content to recycle
	}
	liveBefore := p.Allocator().Stats().Live
	got, err := p.VMSnapshot(dst, src, 4*ps)
	if err != nil {
		t.Fatal(err)
	}
	if got != dst {
		t.Fatalf("returned %#x, want dst %#x", got, dst)
	}
	for i := uint64(0); i < 4; i++ {
		if v := p.Load(dst + i*ps); v != 100+i {
			t.Fatalf("recycled dst word %d = %d, want %d", i, v, 100+i)
		}
	}
	// The four stale private pages were released.
	if live := p.Allocator().Stats().Live; live != liveBefore-4 {
		t.Fatalf("live = %d, want %d (stale pages released)", live, liveBefore-4)
	}
	checkInvariants(t, p)
}

func TestVMSnapshotSplitsBorderVMAs(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 10)
	p.Store(addr, 1)
	if n := p.NumVMAsIn(addr, 10*ps); n != 1 {
		t.Fatalf("precondition: %d VMAs", n)
	}
	// Snapshot the middle: borders must split (appendix step 3).
	if _, err := p.VMSnapshot(0, addr+2*ps, 4*ps); err != nil {
		t.Fatal(err)
	}
	if n := p.NumVMAsIn(addr, 10*ps); n != 3 {
		t.Fatalf("source VMAs after border split = %d, want 3", n)
	}
	checkInvariants(t, p)
}

func TestVMSnapshotOfFileBackedSharedArea(t *testing.T) {
	p := newProc(t)
	f := mmfile.Create("col", p.Allocator())
	f.Truncate(2)
	src := mustMmap(t, p, 2*ps, ProtRead|ProtWrite, MapShared, f, 0)
	p.Store(src, 5)
	snap, err := p.VMSnapshot(0, src, 2*ps)
	if err != nil {
		t.Fatal(err)
	}
	// Shared semantics are preserved: the snapshot is another view of
	// the file, so writes remain visible (the paper keeps the source
	// semantics; isolation for shared areas is the caller's business).
	p.Store(src+8, 6)
	if v := p.Load(snap + 8); v != 6 {
		t.Fatalf("shared snapshot view = %d, want 6", v)
	}
}

func TestVMSnapshotChainedSnapshots(t *testing.T) {
	// Snapshot of a snapshot: generations C, C', C'' as in Figure 1.
	p := newProc(t)
	c := anonMap(t, p, 4)
	p.Store(c, 1)
	c1, err := p.VMSnapshot(0, c, 4*ps)
	if err != nil {
		t.Fatal(err)
	}
	p.Store(c1, 2)
	c2, err := p.VMSnapshot(0, c1, 4*ps)
	if err != nil {
		t.Fatal(err)
	}
	p.Store(c2, 3)
	if v := p.Load(c); v != 1 {
		t.Fatalf("C = %d, want 1", v)
	}
	if v := p.Load(c1); v != 2 {
		t.Fatalf("C' = %d, want 2", v)
	}
	if v := p.Load(c2); v != 3 {
		t.Fatalf("C'' = %d, want 3", v)
	}
}

func TestResolvePages(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 4)
	p.Store(addr, 42)
	pages := p.ResolvePages(addr, 4)
	if len(pages) != 4 {
		t.Fatalf("got %d pages", len(pages))
	}
	if pages[0].Words[0] != 42 {
		t.Fatalf("page 0 word 0 = %d, want 42", pages[0].Words[0])
	}
	for i, pg := range pages {
		if pg == nil {
			t.Fatalf("page %d nil", i)
		}
	}
}

func TestReadWriteWords(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 3)
	src := make([]uint64, 3*ps/8)
	for i := range src {
		src[i] = uint64(i) * 7
	}
	p.WriteWords(addr, src)
	dst := make([]uint64, len(src))
	p.ReadWords(addr, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d = %d, want %d", i, dst[i], src[i])
		}
	}
	// Offsets that straddle page boundaries.
	p.WriteWords(addr+ps-16, []uint64{1, 2, 3, 4})
	var got [4]uint64
	p.ReadWords(addr+ps-16, got[:])
	if got != [4]uint64{1, 2, 3, 4} {
		t.Fatalf("straddling read = %v", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 2)
	p.Store(addr, 1)
	p.Store(addr+ps, 1)
	if _, err := p.VMSnapshot(0, addr, 2*ps); err != nil {
		t.Fatal(err)
	}
	p.Store(addr, 2) // COW break
	st := p.Stats()
	if st.Mmaps != 1 || st.VMSnapshots != 1 {
		t.Fatalf("mmaps=%d vmsnapshots=%d", st.Mmaps, st.VMSnapshots)
	}
	if st.PTECopies != 2 {
		t.Fatalf("pte copies = %d, want 2", st.PTECopies)
	}
	if st.COWBreaks != 1 {
		t.Fatalf("cow breaks = %d, want 1", st.COWBreaks)
	}
	if st.WordsCopied != ps/8 {
		t.Fatalf("words copied = %d, want %d", st.WordsCopied, ps/8)
	}
	if st.Syscalls == 0 {
		t.Fatal("no syscalls counted")
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 32)
	for i := uint64(0); i < 32; i++ {
		p.Store(addr+i*ps, i)
	}
	if _, err := p.VMSnapshot(0, addr, 32*ps); err != nil {
		t.Fatal(err)
	}
	p.Destroy()
	if live := p.Allocator().Stats().Live; live != 0 {
		t.Fatalf("live = %d after Destroy, want 0", live)
	}
}

// Property: a vm_snapshot is immutable under any sequence of writes to
// the source, and the source is immutable under writes to the snapshot.
func TestPropertySnapshotIsolation(t *testing.T) {
	const pages = 16
	f := func(writes []uint16, toSnap bool) bool {
		p := NewProcess(WithCostModel(cost.Zero))
		addr, err := p.Mmap(pages*ps, ProtRead|ProtWrite, MapPrivate|MapAnonymous, nil, 0)
		if err != nil {
			return false
		}
		words := uint64(pages * ps / 8)
		for i := uint64(0); i < words; i += 64 {
			p.Store(addr+i*8, i)
		}
		snap, err := p.VMSnapshot(0, addr, pages*ps)
		if err != nil {
			return false
		}
		writeBase, readBase := addr, snap
		if toSnap {
			writeBase, readBase = snap, addr
		}
		for _, w := range writes {
			off := (uint64(w) % words) * 8
			p.Store(writeBase+off, 0xffff_ffff_ffff_ffff)
		}
		for i := uint64(0); i < words; i++ {
			want := uint64(0)
			if i%64 == 0 {
				want = i
			}
			if v := p.Load(readBase + i*8); v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: random mmap/munmap/mprotect sequences keep the VMA list
// sorted, non-overlapping and canonically merged.
func TestPropertyVMAInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := newProc(t)
	var mapped []uint64
	for op := 0; op < 400; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			n := uint64(rng.Intn(16) + 1)
			addr := anonMap(t, p, int(n))
			for i := uint64(0); i < n; i += 2 {
				p.Store(addr+i*ps, uint64(op))
			}
			mapped = append(mapped, addr, n)
		case 2:
			if len(mapped) == 0 {
				continue
			}
			k := rng.Intn(len(mapped)/2) * 2
			addr, n := mapped[k], mapped[k+1]
			off := uint64(rng.Intn(int(n)))
			ln := uint64(rng.Intn(int(n-off))) + 1
			if err := p.Munmap(addr+off*ps, ln*ps); err != nil {
				t.Fatal(err)
			}
		case 3:
			if len(mapped) == 0 {
				continue
			}
			k := rng.Intn(len(mapped)/2) * 2
			addr, n := mapped[k], mapped[k+1]
			prot := ProtRead
			if rng.Intn(2) == 0 {
				prot |= ProtWrite
			}
			// The region may be partially unmapped; ignore failures.
			_ = p.Mprotect(addr, n*ps, prot)
		}
		checkInvariants(t, p)
	}
}

func TestConcurrentLoadsDuringSnapshotAndWrites(t *testing.T) {
	p := newProc(t)
	addr := anonMap(t, p, 64)
	words := uint64(64 * ps / 8)
	for i := uint64(0); i < words; i++ {
		p.Store(addr+i*8, 1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 20; k++ {
			s, err := p.VMSnapshot(0, addr, 64*ps)
			if err != nil {
				t.Error(err)
				return
			}
			// Snapshot of a consistent all-ones or all-twos mix: each
			// word must be 1 or 2, never torn.
			for i := uint64(0); i < words; i += 37 {
				if v := p.Load(s + i*8); v != 1 && v != 2 {
					t.Errorf("snapshot word = %d", v)
					return
				}
			}
			if err := p.Munmap(s, 64*ps); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := uint64(0); i < words; i++ {
		p.Store(addr+i*8, 2)
	}
	<-done
	checkInvariants(t, p)
}
