// Package vmem simulates the virtual memory subsystem of an operating
// system inside a single Go process: virtual memory areas (VMAs), a
// two-level page table of PTEs, demand paging, copy-on-write, fork, and
// the paper's custom system call vm_snapshot.
//
// The reproduced paper extends the Linux kernel with vm_snapshot, a call
// that duplicates the VMAs and PTEs describing an arbitrary virtual
// memory range so that the duplicate shares physical pages
// copy-on-write with the source. A Go library cannot ship a kernel
// module, and the Go runtime owns the real address space (fork and
// user-space page rewiring are unsafe under the garbage collector), so
// this package rebuilds the mechanisms the paper manipulates as an
// explicit model: addresses are plain integers, pages come from
// internal/phys, and the kernel-entry costs that the paper's
// measurements hinge on are charged through internal/cost.
//
// Concurrency: a Process behaves like the kernel's mm_struct. Accessors
// (Load, Store, ResolvePages) take a read lock, mimicking lock-free
// hardware page-table walks; mutating calls (Mmap, Munmap, Mprotect,
// Fork, VMSnapshot and the fault paths) take the write lock, mimicking
// mmap_sem.
package vmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ankerdb/internal/cost"
	"ankerdb/internal/phys"
)

// Prot is a page protection mask.
type Prot uint8

// Protection bits, mirroring PROT_READ / PROT_WRITE.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
)

// CanWrite reports whether the mask allows stores.
func (p Prot) CanWrite() bool { return p&ProtWrite != 0 }

// CanRead reports whether the mask allows loads.
func (p Prot) CanRead() bool { return p&ProtRead != 0 }

// Flags describe how a mapping relates to its backing store.
type Flags uint8

// Mapping flags, mirroring MAP_PRIVATE / MAP_SHARED / MAP_ANONYMOUS.
const (
	MapPrivate   Flags = 1 << 0
	MapShared    Flags = 1 << 1
	MapAnonymous Flags = 1 << 2
)

// Errors returned by the simulated system calls.
var (
	ErrInvalid    = errors.New("vmem: invalid argument")
	ErrUnaligned  = errors.New("vmem: address or length not page aligned")
	ErrBadAddress = errors.New("vmem: address range not mapped")
	ErrNoMem      = errors.New("vmem: destination range not reserved")
)

// FaultHook is the simulated SIGSEGV handler. The rewired snapshotting
// strategy registers one to implement manual copy-on-write: when a store
// hits a write-protected VMA the hook runs (outside the address-space
// lock, as a real signal handler would) and must repair the mapping,
// e.g. by claiming a fresh file page and MmapFixed-ing it over the
// faulting page. It returns true if the faulting access should be
// retried.
type FaultHook func(p *Process, addr uint64) bool

// Stats counts virtual memory subsystem activity. All counters are
// cumulative.
type Stats struct {
	Syscalls    uint64 // simulated kernel entries
	Mmaps       uint64
	Munmaps     uint64
	Mprotects   uint64
	Forks       uint64
	VMSnapshots uint64

	MinorFaults uint64 // demand-paging faults (page was not present)
	COWBreaks   uint64 // private pages copied on first write
	SignalHooks uint64 // write faults reflected to the FaultHook

	VMASplits uint64 // VMAs split at a boundary
	VMAMerges uint64 // adjacent compatible VMAs merged
	VMACopies uint64 // VMAs duplicated by Fork or VMSnapshot
	PTECopies uint64 // PTEs duplicated by Fork or VMSnapshot

	WordsCopied uint64 // 64-bit words copied by COW breaks
}

type statCounters struct {
	syscalls    atomic.Uint64
	mmaps       atomic.Uint64
	munmaps     atomic.Uint64
	mprotects   atomic.Uint64
	forks       atomic.Uint64
	vmSnapshots atomic.Uint64
	minorFaults atomic.Uint64
	cowBreaks   atomic.Uint64
	signalHooks atomic.Uint64
	vmaSplits   atomic.Uint64
	vmaMerges   atomic.Uint64
	vmaCopies   atomic.Uint64
	pteCopies   atomic.Uint64
	wordsCopied atomic.Uint64
}

// Process is one simulated address space: the set of VMAs plus the page
// table, with a physical page allocator behind it.
type Process struct {
	alloc     *phys.Allocator
	pageSize  uint64
	pageWords uint64
	cost      cost.Model

	mu         sync.RWMutex
	vmas       []*vma
	pt         map[uint64]*pteSlab
	nextAddr   uint64
	nextOrigin uint64
	hook       FaultHook

	st statCounters
}

// Option configures a Process at creation time.
type Option func(*config)

type config struct {
	pageSize int
	cost     cost.Model
	alloc    *phys.Allocator
}

// WithPageSize sets the page size in bytes (default phys.DefaultPageSize).
func WithPageSize(n int) Option { return func(c *config) { c.pageSize = n } }

// WithCostModel sets the simulated kernel cost model (default cost.Default).
func WithCostModel(m cost.Model) Option { return func(c *config) { c.cost = m } }

// WithAllocator supplies a shared physical page pool. Processes that
// fork from each other always share the pool of their parent.
func WithAllocator(a *phys.Allocator) Option { return func(c *config) { c.alloc = a } }

// NewProcess creates an empty address space.
func NewProcess(opts ...Option) *Process {
	cfg := config{pageSize: phys.DefaultPageSize, cost: cost.Default}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.alloc == nil {
		cfg.alloc = phys.NewAllocator(cfg.pageSize)
	}
	if cfg.alloc.PageSize() != cfg.pageSize {
		panic(fmt.Sprintf("vmem: allocator page size %d != process page size %d",
			cfg.alloc.PageSize(), cfg.pageSize))
	}
	return &Process{
		alloc:     cfg.alloc,
		pageSize:  uint64(cfg.pageSize),
		pageWords: uint64(cfg.pageSize / phys.WordSize),
		cost:      cfg.cost,
		pt:        map[uint64]*pteSlab{},
		nextAddr:  1 << 20, // keep 0 invalid, like a real address space
	}
}

// PageSize returns the page size in bytes.
func (p *Process) PageSize() uint64 { return p.pageSize }

// PageWords returns the number of 64-bit words per page.
func (p *Process) PageWords() uint64 { return p.pageWords }

// Allocator returns the physical page pool.
func (p *Process) Allocator() *phys.Allocator { return p.alloc }

// CostModel returns the simulated kernel cost model.
func (p *Process) CostModel() cost.Model { return p.cost }

// SetFaultHook installs the simulated SIGSEGV handler (nil uninstalls).
func (p *Process) SetFaultHook(h FaultHook) {
	p.mu.Lock()
	p.hook = h
	p.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (p *Process) Stats() Stats {
	return Stats{
		Syscalls:    p.st.syscalls.Load(),
		Mmaps:       p.st.mmaps.Load(),
		Munmaps:     p.st.munmaps.Load(),
		Mprotects:   p.st.mprotects.Load(),
		Forks:       p.st.forks.Load(),
		VMSnapshots: p.st.vmSnapshots.Load(),
		MinorFaults: p.st.minorFaults.Load(),
		COWBreaks:   p.st.cowBreaks.Load(),
		SignalHooks: p.st.signalHooks.Load(),
		VMASplits:   p.st.vmaSplits.Load(),
		VMAMerges:   p.st.vmaMerges.Load(),
		VMACopies:   p.st.vmaCopies.Load(),
		PTECopies:   p.st.pteCopies.Load(),
		WordsCopied: p.st.wordsCopied.Load(),
	}
}

// NumVMAs returns the number of VMAs currently describing the address
// space. Table 1 and Figure 5a of the paper track this number for the
// rewired snapshotting strategy.
func (p *Process) NumVMAs() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.vmas)
}

// NumVMAsIn returns the number of VMAs overlapping [addr, addr+length).
func (p *Process) NumVMAsIn(addr, length uint64) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, v := range p.vmas {
		if v.start < addr+length && v.end > addr {
			n++
		}
	}
	return n
}

// NumPTEs returns the number of present page-table entries.
func (p *Process) NumPTEs() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, s := range p.pt {
		n += s.live
	}
	return n
}

// MappedBytes returns the total size of all VMAs, i.e. the virtual size
// of the process (the "5.2 GB of virtual memory" of Figure 10).
func (p *Process) MappedBytes() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var n uint64
	for _, v := range p.vmas {
		n += v.size()
	}
	return n
}

// enterKernel charges one simulated system call entry.
func (p *Process) enterKernel() {
	p.st.syscalls.Add(1)
	cost.Spin(p.cost.SyscallEntry)
}

func (p *Process) checkAligned(vals ...uint64) error {
	for _, v := range vals {
		if v%p.pageSize != 0 {
			return fmt.Errorf("%w: %#x (page size %d)", ErrUnaligned, v, p.pageSize)
		}
	}
	return nil
}
