package vmem

// The page table is a two-level structure, as on real hardware: a
// directory maps the upper bits of a virtual page number to a slab of
// 512 PTEs indexed by the lower bits. Fork and vm_snapshot copy PTEs
// slab-wise, which is the bulk work whose cost the paper contrasts with
// per-VMA mmap calls.

const (
	slabBits = 9
	slabSize = 1 << slabBits
	slabMask = slabSize - 1
)

type pteFlags uint8

const (
	ptePresent pteFlags = 1 << 0
	pteWriteOK pteFlags = 1 << 1 // hardware-writable
	pteCOW     pteFlags = 1 << 2 // private page shared; copy on write
)

type pte struct {
	page  *pageRef
	flags pteFlags
}

// pageRef aliases phys.Page via embedding-free indirection; defined in
// access.go as = phys.Page to keep this file focused on structure.

type pteSlab struct {
	live int
	e    [slabSize]pte
}

func (p *Process) vpn(addr uint64) uint64 { return addr / p.pageSize }

// pteLookup returns the PTE for vpn if its slab exists; the PTE may be
// non-present. The caller must hold p.mu (read for inspection, write
// for mutation).
func (p *Process) pteLookup(vpn uint64) *pte {
	s := p.pt[vpn>>slabBits]
	if s == nil {
		return nil
	}
	return &s.e[vpn&slabMask]
}

// pteEnsure returns the PTE slot for vpn, creating the slab on demand.
// The caller must hold p.mu for writing.
func (p *Process) pteEnsure(vpn uint64) (*pteSlab, *pte) {
	key := vpn >> slabBits
	s := p.pt[key]
	if s == nil {
		s = &pteSlab{}
		p.pt[key] = s
	}
	return s, &s.e[vpn&slabMask]
}

// setPTE installs a present mapping for vpn. Installing over a present
// PTE would leak a page reference, so callers must clear first; this is
// asserted. The caller must hold p.mu for writing.
func (p *Process) setPTE(vpn uint64, page *pageRef, flags pteFlags) {
	s, e := p.pteEnsure(vpn)
	if e.flags&ptePresent != 0 {
		panic("vmem: setPTE over a present entry")
	}
	s.live++
	e.page = page
	e.flags = flags | ptePresent
}

// dropPTEs clears all present PTEs in [start, end), releasing the page
// references they hold. The caller must hold p.mu for writing.
func (p *Process) dropPTEs(start, end uint64) {
	first, last := p.vpn(start), p.vpn(end+p.pageSize-1)
	for key := first >> slabBits; key <= (last-1)>>slabBits; key++ {
		s := p.pt[key]
		if s == nil {
			continue
		}
		base := key << slabBits
		lo, hi := uint64(0), uint64(slabSize)
		if first > base {
			lo = first - base
		}
		if last < base+slabSize {
			hi = last - base
		}
		for i := lo; i < hi; i++ {
			e := &s.e[i]
			if e.flags&ptePresent != 0 {
				p.alloc.Put(e.page)
				*e = pte{}
				s.live--
			}
		}
		if s.live == 0 {
			delete(p.pt, key)
		}
	}
}

// forEachPTE visits every present PTE whose virtual page lies in
// [start, end), in no particular order across slabs. fn may mutate the
// PTE in place. The caller must hold p.mu appropriately.
func (p *Process) forEachPTE(start, end uint64, fn func(vpn uint64, e *pte)) {
	first, last := p.vpn(start), p.vpn(end+p.pageSize-1)
	for key := first >> slabBits; key <= (last-1)>>slabBits; key++ {
		s := p.pt[key]
		if s == nil {
			continue
		}
		base := key << slabBits
		lo, hi := uint64(0), uint64(slabSize)
		if first > base {
			lo = first - base
		}
		if last < base+slabSize {
			hi = last - base
		}
		for i := lo; i < hi; i++ {
			e := &s.e[i]
			if e.flags&ptePresent != 0 {
				fn(base+i, e)
			}
		}
	}
}
