package vmem

import (
	"fmt"
	"sort"

	"ankerdb/internal/cost"
	"ankerdb/internal/mmfile"
)

// vma is the simulated vm_area_struct: one contiguous virtual memory
// area with uniform protection, flags and backing store.
type vma struct {
	start, end uint64 // [start, end), page aligned
	prot       Prot
	flags      Flags
	file       *mmfile.File // nil for anonymous mappings
	fileOff    uint64       // file offset backing `start`

	// origin identifies the mapping operation this VMA descends from,
	// the analog of the kernel's anon_vma: pieces split from one
	// mapping may merge back together, but distinct anonymous mappings
	// (including vm_snapshot clones of each other) never merge, even
	// when they end up address-adjacent.
	origin uint64
}

func (v *vma) size() uint64 { return v.end - v.start }

func (v *vma) contains(addr uint64) bool { return addr >= v.start && addr < v.end }

// offsetFor returns the file offset backing virtual address addr.
func (v *vma) offsetFor(addr uint64) uint64 { return v.fileOff + (addr - v.start) }

func (v *vma) clone() *vma {
	c := *v
	return &c
}

func (v *vma) String() string {
	kind := "anon"
	if v.file != nil {
		kind = fmt.Sprintf("file:%s+%#x", v.file.Name(), v.fileOff)
	}
	return fmt.Sprintf("vma[%#x,%#x) prot=%d flags=%d %s", v.start, v.end, v.prot, v.flags, kind)
}

// compatible reports whether b can be merged onto the end of a.
// File-backed VMAs merge when they map contiguous ranges of the same
// file; anonymous VMAs merge only when they descend from the same
// mapping (same origin).
func compatible(a, b *vma) bool {
	if a.end != b.start || a.prot != b.prot || a.flags != b.flags || a.file != b.file {
		return false
	}
	if a.file != nil {
		return a.fileOff+a.size() == b.fileOff
	}
	return a.origin == b.origin
}

// vmaIndex returns the index of the first VMA whose end is above addr.
// The caller must hold p.mu (read or write).
func (p *Process) vmaIndex(addr uint64) int {
	return sort.Search(len(p.vmas), func(i int) bool { return p.vmas[i].end > addr })
}

// findVMA returns the VMA containing addr, or nil.
// The caller must hold p.mu (read or write).
func (p *Process) findVMA(addr uint64) *vma {
	i := p.vmaIndex(addr)
	if i < len(p.vmas) && p.vmas[i].contains(addr) {
		return p.vmas[i]
	}
	return nil
}

// rangeMapped reports whether [start, end) is fully covered by VMAs
// with no holes. The caller must hold p.mu.
func (p *Process) rangeMapped(start, end uint64) bool {
	at := start
	for at < end {
		v := p.findVMA(at)
		if v == nil {
			return false
		}
		at = v.end
	}
	return true
}

// vmasIn returns the indexes [i0, i1) of the VMAs overlapping
// [start, end). The caller must hold p.mu.
func (p *Process) vmasIn(start, end uint64) (int, int) {
	i0 := p.vmaIndex(start)
	i1 := i0
	for i1 < len(p.vmas) && p.vmas[i1].start < end {
		i1++
	}
	return i0, i1
}

// splitAt splits the VMA spanning addr so that addr becomes a VMA
// boundary. No-op when addr already is one or no VMA spans it.
// The caller must hold p.mu for writing.
func (p *Process) splitAt(addr uint64) {
	i := p.vmaIndex(addr)
	if i >= len(p.vmas) {
		return
	}
	v := p.vmas[i]
	if !v.contains(addr) || v.start == addr {
		return
	}
	right := v.clone()
	right.start = addr
	if right.file != nil {
		right.fileOff = v.offsetFor(addr)
	}
	v.end = addr
	p.vmas = append(p.vmas, nil)
	copy(p.vmas[i+2:], p.vmas[i+1:])
	p.vmas[i+1] = right
	p.st.vmaSplits.Add(1)
	cost.Spin(p.cost.VMAOp)
}

// insertVMA inserts v into the sorted VMA list and merges it with
// compatible neighbours. The range must not overlap any existing VMA.
// The caller must hold p.mu for writing.
func (p *Process) insertVMA(v *vma) {
	i := p.vmaIndex(v.start)
	if i < len(p.vmas) && p.vmas[i].start < v.end {
		panic(fmt.Sprintf("vmem: insertVMA overlap: %s vs %s", v, p.vmas[i]))
	}
	p.vmas = append(p.vmas, nil)
	copy(p.vmas[i+1:], p.vmas[i:])
	p.vmas[i] = v
	// Merge with successor first so the index of v stays valid.
	p.tryMerge(i + 1)
	p.tryMerge(i)
}

// tryMerge merges vmas[i-1] and vmas[i] when compatible.
// The caller must hold p.mu for writing.
func (p *Process) tryMerge(i int) {
	if i <= 0 || i >= len(p.vmas) {
		return
	}
	a, b := p.vmas[i-1], p.vmas[i]
	if !compatible(a, b) {
		return
	}
	a.end = b.end
	p.vmas = append(p.vmas[:i], p.vmas[i+1:]...)
	p.st.vmaMerges.Add(1)
	cost.Spin(p.cost.VMAOp)
}

// removeRange unmaps [start, end): VMAs are split at the borders,
// removed, and their present PTEs dropped (releasing page references).
// Holes inside the range are permitted, as with munmap.
// The caller must hold p.mu for writing.
func (p *Process) removeRange(start, end uint64) {
	p.splitAt(start)
	p.splitAt(end)
	i0, i1 := p.vmasIn(start, end)
	if i0 == i1 {
		return
	}
	for _, v := range p.vmas[i0:i1] {
		p.dropPTEs(v.start, v.end)
		cost.Spin(p.cost.VMAOp)
	}
	p.vmas = append(p.vmas[:i0], p.vmas[i1:]...)
}

// reserve hands out a fresh, unused virtual address range.
// The caller must hold p.mu for writing.
func (p *Process) reserve(length uint64) uint64 {
	addr := p.nextAddr
	p.nextAddr += length
	return addr
}
