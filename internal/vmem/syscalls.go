package vmem

import (
	"fmt"

	"ankerdb/internal/cost"
	"ankerdb/internal/mmfile"
)

// Mmap allocates a virtual memory area of length bytes at a
// kernel-chosen address and returns its start address. Anonymous
// mappings (file == nil) must pass MapAnonymous|MapPrivate; file-backed
// mappings map the main-memory file f starting at the page-aligned
// offset off, either MapShared (stores reach the file) or MapPrivate
// (stores copy-on-write).
func (p *Process) Mmap(length uint64, prot Prot, flags Flags, f *mmfile.File, off uint64) (uint64, error) {
	p.enterKernel()
	p.st.mmaps.Add(1)
	if err := p.validateMap(length, flags, f, off); err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	addr := p.reserve(length)
	p.nextOrigin++
	p.insertVMA(&vma{start: addr, end: addr + length, prot: prot, flags: flags, file: f, fileOff: off, origin: p.nextOrigin})
	cost.Spin(p.cost.VMAOp)
	return addr, nil
}

// MmapFixed maps [addr, addr+length) exactly, atomically replacing any
// existing mappings in the range (MAP_FIXED semantics). The rewired
// snapshotting write path uses it to rewire a single page to a fresh
// file offset.
func (p *Process) MmapFixed(addr, length uint64, prot Prot, flags Flags, f *mmfile.File, off uint64) error {
	p.enterKernel()
	p.st.mmaps.Add(1)
	if err := p.validateMap(length, flags, f, off); err != nil {
		return err
	}
	if err := p.checkAligned(addr); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.removeRange(addr, addr+length)
	p.nextOrigin++
	p.insertVMA(&vma{start: addr, end: addr + length, prot: prot, flags: flags, file: f, fileOff: off, origin: p.nextOrigin})
	cost.Spin(p.cost.VMAOp)
	return nil
}

func (p *Process) validateMap(length uint64, flags Flags, f *mmfile.File, off uint64) error {
	if length == 0 || length%p.pageSize != 0 {
		return fmt.Errorf("%w: length %d", ErrUnaligned, length)
	}
	private := flags&MapPrivate != 0
	shared := flags&MapShared != 0
	if private == shared {
		return fmt.Errorf("%w: exactly one of MapPrivate or MapShared required", ErrInvalid)
	}
	if f == nil {
		if flags&MapAnonymous == 0 {
			return fmt.Errorf("%w: nil file without MapAnonymous", ErrInvalid)
		}
		if shared {
			return fmt.Errorf("%w: anonymous shared mappings are not modelled", ErrInvalid)
		}
		return nil
	}
	if flags&MapAnonymous != 0 {
		return fmt.Errorf("%w: MapAnonymous with a file", ErrInvalid)
	}
	if off%uint64(f.PageSize()) != 0 {
		return fmt.Errorf("%w: file offset %#x", ErrUnaligned, off)
	}
	if f.Allocator() != p.alloc {
		return fmt.Errorf("%w: file belongs to a different physical pool", ErrInvalid)
	}
	return nil
}

// Munmap removes all mappings in [addr, addr+length), dropping the page
// references they hold. Unmapped holes inside the range are permitted.
func (p *Process) Munmap(addr, length uint64) error {
	p.enterKernel()
	p.st.munmaps.Add(1)
	if err := p.checkAligned(addr, length); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.removeRange(addr, addr+length)
	return nil
}

// Mprotect changes the protection of every mapping in
// [addr, addr+length). Removing write access write-protects the present
// PTEs (so the next store faults — the mechanism rewired snapshotting
// uses to detect writes); restoring it is lazy, handled on the next
// fault. The range must be fully mapped.
func (p *Process) Mprotect(addr, length uint64, prot Prot) error {
	p.enterKernel()
	p.st.mprotects.Add(1)
	if err := p.checkAligned(addr, length); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.rangeMapped(addr, addr+length) {
		return fmt.Errorf("%w: mprotect [%#x,%#x)", ErrBadAddress, addr, addr+length)
	}
	p.splitAt(addr)
	p.splitAt(addr + length)
	i0, i1 := p.vmasIn(addr, addr+length)
	for _, v := range p.vmas[i0:i1] {
		v.prot = prot
		cost.Spin(p.cost.VMAOp)
		if !prot.CanWrite() {
			p.forEachPTE(v.start, v.end, func(_ uint64, e *pte) {
				e.flags &^= pteWriteOK
			})
		}
	}
	// Write-protecting may make the border VMAs mergeable again.
	p.tryMerge(i1)
	p.tryMerge(i0)
	return nil
}

// Fork creates a child address space that shares all physical pages
// with the parent: every VMA and every present PTE is copied, and
// private pages are write-protected on both sides so the first store in
// either process triggers copy-on-write. This is the mechanism behind
// fork-based snapshotting (HyPer-style): the cost is proportional to
// the *whole* process image, not to the data of interest.
func (p *Process) Fork() *Process {
	p.enterKernel()
	p.st.forks.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()

	child := &Process{
		alloc:     p.alloc,
		pageSize:  p.pageSize,
		pageWords: p.pageWords,
		cost:      p.cost,
		pt:        map[uint64]*pteSlab{},
		nextAddr:  p.nextAddr,
		hook:      p.hook,
	}
	for _, v := range p.vmas {
		child.vmas = append(child.vmas, v.clone())
		p.st.vmaCopies.Add(1)
		cost.Spin(p.cost.VMAOp)
		p.copyPTERange(child, v.start, v.end, v.flags&MapPrivate != 0, 0)
	}
	child.nextOrigin = p.nextOrigin
	return child
}

// copyPTERange duplicates the present PTEs of [start, end) into dst,
// shifted by deltaPages virtual pages, applying COW write-protection on
// both sides for private mappings. The bounds must be captured before
// any VMA bookkeeping mutates them. The caller must hold p.mu for
// writing; dst must not be concurrently accessed (it is either a fresh
// fork child or p itself under the lock).
func (p *Process) copyPTERange(dst *Process, start, end uint64, private bool, deltaPages int64) {
	p.forEachPTE(start, end, func(vpn uint64, e *pte) {
		p.alloc.Get(e.page)
		fl := e.flags &^ ptePresent
		if private {
			// Both sides must fault before writing again.
			e.flags = (e.flags &^ pteWriteOK) | pteCOW
			fl = (fl &^ pteWriteOK) | pteCOW
		}
		dst.setPTE(uint64(int64(vpn)+deltaPages), e.page, fl)
		p.st.pteCopies.Add(1)
	})
}

// VMSnapshot is the paper's custom system call: it snapshots the
// virtual memory area [src, src+length) by duplicating the VMAs that
// describe it and, for private mappings, their PTEs, so that the new
// area shares all physical pages copy-on-write with the source.
//
// If dst is zero a fresh virtual memory area is reserved and returned
// (the two-argument form of §4.1.1). If dst is non-zero, the snapshot
// is materialised over the existing, fully mapped area [dst,
// dst+length), recycling its virtual address range (§4.1.3); the call
// fails with ErrNoMem if that range is not entirely mapped.
func (p *Process) VMSnapshot(dst, src, length uint64) (uint64, error) {
	p.enterKernel()
	p.st.vmSnapshots.Add(1)
	if err := p.checkAligned(dst, src, length); err != nil {
		return 0, err
	}
	if length == 0 {
		return 0, fmt.Errorf("%w: zero length", ErrInvalid)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	// Step 1: the source range must be fully mapped.
	if !p.rangeMapped(src, src+length) {
		return 0, fmt.Errorf("%w: vm_snapshot source [%#x,%#x)", ErrBadAddress, src, src+length)
	}
	// Step 4: destination handling.
	if dst == 0 {
		dst = p.reserve(length)
	} else {
		if overlap(dst, src, length) {
			return 0, fmt.Errorf("%w: vm_snapshot ranges overlap", ErrInvalid)
		}
		if !p.rangeMapped(dst, dst+length) {
			return 0, fmt.Errorf("%w: vm_snapshot destination [%#x,%#x)", ErrNoMem, dst, dst+length)
		}
		p.removeRange(dst, dst+length)
	}
	// Step 3: split the border VMAs so they exactly match the range.
	p.splitAt(src)
	p.splitAt(src + length)

	// Steps 5-7: copy each VMA, and the PTEs of private ones. Capture
	// the source VMAs and their bounds first: insertVMA both shifts
	// slice indexes and may merge clones, mutating bounds in place.
	i0, i1 := p.vmasIn(src, src+length)
	srcVMAs := append([]*vma(nil), p.vmas[i0:i1]...)
	deltaPages := (int64(dst) - int64(src)) / int64(p.pageSize)
	p.nextOrigin++
	cloneOrigin := p.nextOrigin
	for _, sv := range srcVMAs {
		svStart, svEnd, svPrivate := sv.start, sv.end, sv.flags&MapPrivate != 0
		c := sv.clone()
		c.start = svStart - src + dst
		c.end = svEnd - src + dst
		c.origin = cloneOrigin
		p.st.vmaCopies.Add(1)
		cost.Spin(p.cost.VMAOp)
		p.insertVMA(c)
		if svPrivate {
			p.copyPTERange(p, svStart, svEnd, true, deltaPages)
		}
	}
	return dst, nil
}

func overlap(a, b, length uint64) bool {
	return a < b+length && b < a+length
}

// Destroy unmaps the entire address space, releasing every page
// reference the process holds. The Process must not be used afterwards.
func (p *Process) Destroy() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, v := range p.vmas {
		p.dropPTEs(v.start, v.end)
	}
	p.vmas = nil
	p.pt = map[uint64]*pteSlab{}
}
