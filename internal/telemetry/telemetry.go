// Package telemetry is ankerdb's observability substrate: lock-cheap
// atomic latency histograms for the engine's hot phases and an
// always-on ring-buffer flight recorder of structured trace events.
//
// Both primitives are built for instrumentation ON the hot path:
//
//   - Histogram.Observe is three atomic adds (count, sum, one log2
//     bucket) with no locks and no allocation, so a phase can be timed
//     on every commit without bending the throughput curve.
//   - Recorder.Record claims a slot with one atomic increment and
//     publishes through a per-slot sequence lock, so concurrent
//     recorders never block each other and a reader (TraceDump) can
//     snapshot the ring without stopping writers.
//
// The exporters (Prometheus text rendering) live here too so the
// bucket-boundary convention has exactly one owner.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log2 latency buckets. Bucket i counts
// observations with duration < 2^i nanoseconds (bucket 0 holds only
// zero-duration observations); the last bucket absorbs everything at
// or above 2^(NumBuckets-2) ns (~1.1 s) as +Inf.
const NumBuckets = 32

// Histogram is a lock-free log2-bucketed latency histogram. The zero
// value is ready to use; it must not be copied after first use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index: bits.Len64 of the
// nanosecond count, so bucket i collects n with 2^(i-1) <= n < 2^i.
func bucketOf(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 0 {
		return 0
	}
	b := bits.Len64(uint64(n))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Observe records one duration. Safe for concurrent use; costs three
// uncontended atomic adds.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(d.Nanoseconds()))
	h.buckets[bucketOf(d)].Add(1)
}

// Snapshot returns a consistent-enough copy for reporting: each field
// is loaded atomically, so counts never tear, though a snapshot racing
// Observe may catch the count before the bucket (callers that need the
// count == sum-of-buckets invariant sample at quiescence).
func (h *Histogram) Snapshot() Hist {
	var s Hist
	// Buckets before count: an Observe between the two loads then
	// leaves Count >= sum(Buckets), never the reverse, so cumulative
	// bucket rendering stays monotone.
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.SumNanos = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Hist is an immutable histogram snapshot: plain values, mergeable,
// JSON-serializable. Buckets[i] counts observations with duration
// < BucketBound(i).
type Hist struct {
	Count    uint64
	SumNanos uint64
	Buckets  [NumBuckets]uint64
}

// BucketBound returns bucket i's exclusive upper bound. The last
// bucket is unbounded and reports the largest representable duration.
func BucketBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

// Merge returns the element-wise sum of h and o.
func (h Hist) Merge(o Hist) Hist {
	h.Count += o.Count
	h.SumNanos += o.SumNanos
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	return h
}

// Sum returns the cumulative observed duration.
func (h Hist) Sum() time.Duration { return time.Duration(h.SumNanos) }

// Mean returns the average observed duration, zero when empty.
func (h Hist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNanos / h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1):
// the bound of the first bucket whose cumulative count reaches
// q*Count. Zero when the histogram is empty.
func (h Hist) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// String renders a compact one-line summary:
// "n=1234 mean=1.2µs p50≤2µs p99≤16µs max≤32µs".
func (h Hist) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	maxB := 0
	for i, b := range h.Buckets {
		if b > 0 {
			maxB = i
		}
	}
	return fmt.Sprintf("n=%d mean=%v p50≤%v p99≤%v max≤%v",
		h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), BucketBound(maxB))
}

// WriteProm renders the snapshot as one Prometheus histogram metric
// family (name_bucket{...le}, name_sum, name_count), with le bounds in
// seconds. labels ("" or `strategy="vmsnap"`) are applied to every
// series. Buckets above the highest non-empty one are elided — the
// +Inf bucket always closes the series.
func (h Hist) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	top := 0
	for i, b := range h.Buckets {
		if b > 0 {
			top = i
		}
	}
	for i := 0; i <= top && i < NumBuckets-1; i++ {
		cum += h.Buckets[i]
		// Bucket i holds integral nanosecond durations < 2^i, i.e.
		// <= 2^i - 1; that is the exact inclusive Prometheus bound.
		le := float64(uint64(1)<<uint(i)-1) / 1e9
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.SumNanos)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.SumNanos)/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
	}
}

// EventKind tags a flight-recorder event.
type EventKind uint32

// Event kinds. A/B/C are kind-specific payload words (ids, counts,
// nanoseconds); see the String method for their rendering.
const (
	EvNone           EventKind = iota
	EvTxnBegin                 // A=txn id, B=0 OLTP / 1 OLAP, C=read timestamp (emitted for OLAP snapshot pins; OLTP begins ride on the commit/abort event's C)
	EvTxnCommit                // A=txn id, B=1 if empty (read-only) commit, C=begin/read timestamp
	EvTxnAbort                 // A=txn id, B=abort reason (AbortExplicit...), C=begin/read timestamp
	EvSnapCreate               // A=table, B=col (-1 visibility), C=creation nanos
	EvSnapRelease              // A=column snapshots released
	EvCheckpoint               // A=checkpoint timestamp, C=duration nanos
	EvWALSeal                  // A=shard, B=records sealed, C=newest commit TS
	EvIndexDDL                 // A=1 create / 0 drop, Note="table.col kind"
	EvQueryStart               // A=query id
	EvQueryFinish              // A=query id, B=rows emitted, C=duration nanos
	EvSlowQuery                // A=query id, C=duration nanos, Note=table
	EvVacuum                   // A=version nodes removed, C=duration nanos
	EvRecovery                 // A=txns replayed, B=loads replayed, C=nanos
	EvTableDDL                 // A=1 drop / 2 truncate, C=DDL timestamp, Note=table
	EvReplBootstrap            // A=snapshot TS, B=oracle seed (replica side)
	EvReplDisconnect           // C=applied watermark at disconnect, Note=error
	EvReplPromote              // A=oracle seed, B=required TS
)

// Abort reasons carried in EvTxnAbort's B payload.
const (
	AbortExplicit = iota // Txn.Abort called
	AbortConflict        // precision-locking validation failed
	AbortError           // commit failed for another reason (e.g. WAL)
)

func (k EventKind) String() string {
	switch k {
	case EvTxnBegin:
		return "txn.begin"
	case EvTxnCommit:
		return "txn.commit"
	case EvTxnAbort:
		return "txn.abort"
	case EvSnapCreate:
		return "snap.create"
	case EvSnapRelease:
		return "snap.release"
	case EvCheckpoint:
		return "checkpoint"
	case EvWALSeal:
		return "wal.seal"
	case EvIndexDDL:
		return "index.ddl"
	case EvQueryStart:
		return "query.start"
	case EvQueryFinish:
		return "query.finish"
	case EvSlowQuery:
		return "query.slow"
	case EvVacuum:
		return "vacuum"
	case EvRecovery:
		return "recovery"
	case EvTableDDL:
		return "table.ddl"
	case EvReplBootstrap:
		return "repl.bootstrap"
	case EvReplDisconnect:
		return "repl.disconnect"
	case EvReplPromote:
		return "repl.promote"
	}
	return "none"
}

// Event is one flight-recorder entry.
type Event struct {
	Seq  uint64        // global sequence number, 1-based
	At   time.Duration // monotonic offset from the recorder's start
	Kind EventKind
	A    int64
	B    int64
	C    int64
	Note string // optional; only rare event kinds carry one
}

// slot is one ring entry, published through a sequence lock: ver is
// odd while a writer owns the slot and 2*seq once event seq is fully
// written, so a reader can detect both torn reads and overwrites —
// and recover the event's sequence number as ver/2 without a separate
// field (one fewer store on the record path).
//
// The slot is deliberately pointer-free: string notes live in the
// recorder's small side table instead, so the ring's backing array is
// allocated noscan and an always-on recorder adds no mark work to any
// garbage-collection cycle. (A pointer per slot makes the GC scan the
// whole ring every cycle — measurably so on small-heap workloads,
// where the collector runs thousands of times per second.)
type slot struct {
	ver   atomic.Uint64
	nanos atomic.Int64
	kind  atomic.Uint32
	a     atomic.Int64
	b     atomic.Int64
	c     atomic.Int64
}

// noteSlots sizes the side table holding string payloads, keyed by
// event sequence number. Notes are rare (DDL, slow queries), so a
// small table outlives the ring slots they annotate in practice.
const noteSlots = 64

// noteSlot pairs a note with the sequence number it belongs to, so a
// reader can reject entries recycled by a later noted event.
type noteSlot struct {
	seq  atomic.Uint64
	note atomic.Pointer[string]
}

// Recorder is a fixed-size lock-free flight recorder: the newest
// ringSize events survive, older ones are overwritten. Safe for
// concurrent use from any number of writers and readers.
type Recorder struct {
	start time.Time
	seq   atomic.Uint64
	mask  uint64
	slots []slot
	notes [noteSlots]noteSlot
}

// NewRecorder returns a recorder holding the newest size events; size
// is rounded up to a power of two (minimum 64).
func NewRecorder(size int) *Recorder {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Recorder{start: time.Now(), mask: uint64(n - 1), slots: make([]slot, n)}
}

// Record appends one event. The claim is a single atomic increment;
// publication CASes the slot's sequence lock, so a writer lapped a
// full ring-length mid-write is skipped rather than torn.
func (r *Recorder) Record(kind EventKind, a, b, c int64) {
	r.record(kind, a, b, c, int64(time.Since(r.start)), nil)
}

// RecordNote appends one event carrying a string payload. Allocates;
// reserve it for rare events (DDL, slow queries).
func (r *Recorder) RecordNote(kind EventKind, a, b, c int64, note string) {
	r.record(kind, a, b, c, int64(time.Since(r.start)), &note)
}

// Now returns the recorder-relative monotonic offset — the timestamp
// space RecordAt stamps events in. One monotonic clock read, cheaper
// than time.Now (no wall-clock word).
func (r *Recorder) Now() time.Duration { return time.Since(r.start) }

// RecordAt appends one event stamped with a mark previously obtained
// from Now, so a call site that already read the clock for its own
// phase accounting records the event without another read.
func (r *Recorder) RecordAt(kind EventKind, a, b, c int64, at time.Duration) {
	r.record(kind, a, b, c, int64(at), nil)
}

func (r *Recorder) record(kind EventKind, a, b, c, nanos int64, note *string) {
	seq := r.seq.Add(1)
	s := &r.slots[seq&r.mask]
	// Sequence lock: move ver from its resting even value to odd. A
	// failed CAS means another writer owns the slot — it was lapped by
	// a full ring of events mid-write — so this event is dropped; a
	// recorder that far behind has lost the slot's history anyway.
	old := s.ver.Load()
	if old&1 != 0 || !s.ver.CompareAndSwap(old, old+1) {
		return
	}
	s.nanos.Store(nanos)
	s.kind.Store(uint32(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	// Notes park in the side table (keyed by seq) rather than the slot,
	// keeping the ring noscan; the common pointer-free path doesn't
	// touch the table at all.
	if note != nil {
		ns := &r.notes[seq&(noteSlots-1)]
		ns.seq.Store(0) // invalidate while the pair is inconsistent
		ns.note.Store(note)
		ns.seq.Store(seq)
	}
	s.ver.Store(2 * seq)
}

// Events returns the recorded events in sequence order, oldest first.
// Slots being concurrently rewritten are skipped.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		v1 := s.ver.Load()
		if v1 == 0 || v1&1 != 0 {
			continue
		}
		ev := Event{
			Seq:  v1 / 2,
			At:   time.Duration(s.nanos.Load()),
			Kind: EventKind(s.kind.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
			C:    s.c.Load(),
		}
		if ns := &r.notes[ev.Seq&(noteSlots-1)]; ns.seq.Load() == ev.Seq {
			if n := ns.note.Load(); n != nil && ns.seq.Load() == ev.Seq {
				ev.Note = *n
			}
		}
		if s.ver.Load() != v1 {
			continue // torn by a concurrent writer
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Seq returns the number of events recorded (including overwritten and
// dropped ones).
func (r *Recorder) Seq() uint64 { return r.seq.Load() }

// WriteTrace renders the ring's surviving events as text, one per
// line, oldest first.
func (r *Recorder) WriteTrace(w io.Writer) {
	for _, ev := range r.Events() {
		fmt.Fprintf(w, "%12s  #%-8d %-12s a=%d b=%d c=%d",
			ev.At.Round(time.Microsecond), ev.Seq, ev.Kind, ev.A, ev.B, ev.C)
		if ev.Note != "" {
			fmt.Fprintf(w, " %s", ev.Note)
		}
		fmt.Fprintln(w)
	}
}

// PromEscape escapes a string for use as a Prometheus label value.
func PromEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}
