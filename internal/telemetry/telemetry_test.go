package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1) // bucket 1 (< 2ns)
	h.Observe(3) // bucket 2 (< 4ns)
	h.Observe(time.Microsecond)
	h.Observe(5 * time.Second) // clamps into the +Inf bucket
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("sum of buckets %d != count %d", sum, s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("low buckets = %v", s.Buckets[:3])
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
	if got := s.Sum(); got != time.Microsecond+5*time.Second+4 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestHistogramQuantileMerge(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Nanosecond) // bucket 7: < 128ns
	}
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 128*time.Nanosecond {
		t.Fatalf("p50 = %v, want 128ns", q)
	}
	if q := s.Quantile(1); q < time.Millisecond {
		t.Fatalf("p100 = %v, want >= 1ms", q)
	}
	m := s.Merge(s)
	if m.Count != 2*s.Count || m.SumNanos != 2*s.SumNanos {
		t.Fatalf("merge: %+v", m)
	}
	if str := s.String(); !strings.Contains(str, "n=100") {
		t.Fatalf("String = %q", str)
	}
	if (Hist{}).Quantile(0.99) != 0 || (Hist{}).Mean() != 0 {
		t.Fatal("empty hist quantile/mean should be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	var b strings.Builder
	h.Snapshot().WriteProm(&b, "x_seconds", "")
	out := b.String()
	if !strings.Contains(out, `x_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "x_seconds_count 2") {
		t.Fatalf("missing count:\n%s", out)
	}
	// Cumulative counts must be monotone.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") {
			continue
		}
		var n int
		if _, err := fmtSscanfTail(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("non-monotone cumulative buckets:\n%s", out)
		}
		last = n
	}

	b.Reset()
	h.Snapshot().WriteProm(&b, "y_seconds", `strategy="fork"`)
	if !strings.Contains(b.String(), `y_seconds_bucket{strategy="fork",le="+Inf"} 2`) {
		t.Fatalf("labeled render:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `y_seconds_count{strategy="fork"} 2`) {
		t.Fatalf("labeled count:\n%s", b.String())
	}
}

// fmtSscanfTail parses the trailing integer of a metrics line.
func fmtSscanfTail(line string, n *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = atoi(line[i+1:])
	return 1, err
}

func atoi(s string) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, &strconvError{s}
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, nil
}

type strconvError struct{ s string }

func (e *strconvError) Error() string { return "bad int " + e.s }

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	r.Record(EvTxnBegin, 1, 0, 7)
	r.RecordNote(EvIndexDDL, 1, 0, 0, "users.uid hash")
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != EvTxnBegin || evs[0].A != 1 || evs[0].C != 7 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Note != "users.uid hash" {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatalf("events out of order: %d then %d", evs[0].Seq, evs[1].Seq)
	}
	var b strings.Builder
	r.WriteTrace(&b)
	if !strings.Contains(b.String(), "txn.begin") || !strings.Contains(b.String(), "users.uid hash") {
		t.Fatalf("trace:\n%s", b.String())
	}
}

func TestRecorderWraps(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 1000; i++ {
		r.Record(EvTxnCommit, int64(i), 0, 0)
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("got %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous ring: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].A != 999 {
		t.Fatalf("newest event A = %d", evs[len(evs)-1].A)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Record(EvTxnCommit, int64(w), int64(i), 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, ev := range r.Events() {
				if ev.Kind != EvTxnCommit {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Seq() != 40000 {
		t.Fatalf("Seq = %d, want 40000", r.Seq())
	}
}

func TestPromEscape(t *testing.T) {
	if got := PromEscape("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("PromEscape = %q", got)
	}
}
