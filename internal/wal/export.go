package wal

import (
	"os"
	"path/filepath"
)

// Exported record codecs for the replication tier. The wire protocol
// (internal/repl) ships WAL record payloads verbatim — the same bytes
// the primary made durable — so a replica replays exactly what crash
// recovery would replay, through the same idempotent-by-commitTS
// rules. Framing (length + CRC) is the transport's concern; these
// functions encode and decode bare payloads.

// Encode serialises the commit record payload (the bytes AppendCommits
// frames into a shard segment).
func (r CommitRecord) Encode() []byte { return r.encode(nil) }

// DecodeCommitPayload decodes a commit record payload produced by
// CommitRecord.Encode or found framed in a shard segment.
func DecodeCommitPayload(payload []byte) (CommitRecord, error) {
	return decodeCommit(payload)
}

// Encode serialises the load record payload.
func (r LoadRecord) Encode() []byte { return r.encode(nil) }

// Encode serialises the table-DDL marker payload (the bytes
// AppendTableDDL appends to the schema log).
func (r TableDDLRecord) Encode() []byte { return r.encode(nil) }

// DecodeLoadPayload decodes a load record payload.
func DecodeLoadPayload(payload []byte) (LoadRecord, error) {
	return decodeLoad(payload)
}

// SchemaRecord is one decoded schema-log payload: exactly one of the
// three fields is non-nil, mirroring the three record kinds the schema
// log interleaves.
type SchemaRecord struct {
	Table *TableRecord
	Index *IndexDDLRecord
	DDL   *TableDDLRecord
}

// ReplaySchemaRaw streams every schema-log record payload to fn in
// append order, undecoded, with each record's log sequence (its index
// in the file). A primary bootstrapping a replica forwards these bytes
// verbatim: replaying them in sequence reproduces the exact table-slot
// assignment the commit records address, and the sequence numbers let
// the replica skip records the overlapping live stream already
// delivered. Stops cleanly at a torn tail, like recovery.
func (l *Log) ReplaySchemaRaw(fn func(seq uint64, payload []byte) error) error {
	path := filepath.Join(l.dir, "schema.log")
	if _, err := l.fs.Stat(path); os.IsNotExist(err) {
		return nil
	}
	var seq uint64
	err := l.replayFile(path, false, func(off int64, payload []byte) error {
		e := fn(seq, payload)
		seq++
		return e
	})
	if err == nil {
		l.noteSchemaCount(seq)
	}
	return err
}

// SchemaRecords returns the number of records in the schema log:
// records found by the last full replay pass plus records appended
// since. A recovered replica seeds its schema-apply cursor with this —
// its own log is a byte-exact prefix of the primary's.
func (l *Log) SchemaRecords() uint64 {
	l.schemaMu.Lock()
	defer l.schemaMu.Unlock()
	return l.schemaSeq
}

// AppendSchemaRaw appends one schema-log payload verbatim — the
// replica-side write that keeps its schema log a byte-exact prefix of
// the primary's, so slot assignment and the sequence numbering of any
// future re-bootstrap stay aligned. Fsynced like every schema append;
// fires OnSchema with the assigned sequence.
func (l *Log) AppendSchemaRaw(payload []byte) error {
	return l.appendSchema(payload)
}

// DecodeSchemaPayload decodes a schema-log payload (as delivered to
// OnSchema) into whichever of the three schema record kinds it holds.
func DecodeSchemaPayload(payload []byte) (SchemaRecord, error) {
	switch {
	case isTableDDL(payload):
		rec, err := decodeTableDDL(payload)
		if err != nil {
			return SchemaRecord{}, err
		}
		return SchemaRecord{DDL: &rec}, nil
	case isIndexDDL(payload):
		rec, err := decodeIndexDDL(payload)
		if err != nil {
			return SchemaRecord{}, err
		}
		return SchemaRecord{Index: &rec}, nil
	default:
		rec, err := decodeTable(payload)
		if err != nil {
			return SchemaRecord{}, err
		}
		return SchemaRecord{Table: &rec}, nil
	}
}
