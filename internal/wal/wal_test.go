package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords(ts uint64, n int) []CommitRecord {
	recs := make([]CommitRecord, n)
	for i := range recs {
		recs[i] = CommitRecord{
			TS: ts + uint64(i),
			Writes: []RedoWrite{
				{Table: 0, Col: i % 3, Row: 10 + i, Val: int64(100 * i)},
				{Table: 1, Col: 0, Row: i, Val: -1, Str: "str", HasStr: true},
			},
		}
	}
	return recs
}

func TestCommitRecordRoundtrip(t *testing.T) {
	for _, rec := range testRecords(7, 4) {
		got, err := decodeCommit(rec.encode(nil))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("roundtrip mismatch: got %+v want %+v", got, rec)
		}
	}
	// Empty write set (legal encoding, even if the engine never logs one).
	got, err := decodeCommit(CommitRecord{TS: 9}.encode(nil))
	if err != nil || got.TS != 9 || len(got.Writes) != 0 {
		t.Fatalf("empty record roundtrip: %+v, %v", got, err)
	}
}

func TestRowOpCommitRecordRoundtrip(t *testing.T) {
	// Row ops force the kind-3 layout; the payload must lead with the
	// row-op kind byte and survive the round trip ops-and-writes alike.
	rec := CommitRecord{
		TS: 42,
		Writes: []RedoWrite{
			{Table: 0, Col: 1, Row: 7, Val: 99},
			{Table: 0, Col: 2, Row: 7, Val: -1, Str: "name", HasStr: true},
		},
		Ops: []RowOp{
			{Table: 0, Row: 7},            // insert
			{Table: 1, Row: 3, Del: true}, // delete
		},
	}
	payload := rec.encode(nil)
	if payload[0] != recKindRowCommit {
		t.Fatalf("kind byte = %d, want %d", payload[0], recKindRowCommit)
	}
	got, err := decodeCommit(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("roundtrip mismatch: got %+v want %+v", got, rec)
	}
	// A delete-only record (no writes) is legal.
	delOnly := CommitRecord{TS: 43, Ops: []RowOp{{Table: 0, Row: 1, Del: true}}}
	got, err = decodeCommit(delOnly.encode(nil))
	if err != nil || !reflect.DeepEqual(got, delOnly) {
		t.Fatalf("delete-only roundtrip: %+v, %v", got, err)
	}
	// Truncated kind-3 payloads fail loudly at every cut.
	for cut := 1; cut < len(payload); cut += 5 {
		if _, err := decodeCommit(payload[:cut]); err == nil {
			t.Fatalf("truncated row-op record at %d accepted", cut)
		}
	}
}

func TestLoadRecordRoundtrip(t *testing.T) {
	for _, rec := range []LoadRecord{
		{Table: 2, Col: 1, Start: 4096, Vals: []int64{1, -2, 3}},
		{Table: 0, Col: 0, Start: 0, Strs: []string{"a", "", "ccc"}, HasStrs: true},
	} {
		got, err := decodeLoad(rec.encode(nil))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("roundtrip mismatch: got %+v want %+v", got, rec)
		}
	}
	// Kind bytes must not cross-decode.
	if _, err := decodeLoad(testRecords(1, 1)[0].encode(nil)); err == nil {
		t.Fatal("decodeLoad accepted a commit record")
	}
	if _, err := decodeCommit(LoadRecord{Vals: []int64{1}}.encode(nil)); err == nil {
		t.Fatal("decodeCommit accepted a load record")
	}
}

func TestReplayDispatchesRecordKinds(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	// Anchor with a schema record so the reopen does not discard the
	// segment as an orphan.
	if err := l.AppendTable(TableRecord{Name: "t", Rows: 4}); err != nil {
		t.Fatal(err)
	}
	loads := []LoadRecord{
		{Table: 0, Col: 0, Start: 0, Vals: []int64{10, 20}},
		{Table: 0, Col: 1, Start: 2, Strs: []string{"x"}, HasStrs: true},
	}
	if err := l.AppendLoads(0, loads); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommits(0, testRecords(5, 2)); err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 4 {
		t.Fatalf("Records() = %d, want 4", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var gotLoads []LoadRecord
	var gotCommits []CommitRecord
	if err := l2.ReplayCommits(
		func(r LoadRecord) error { gotLoads = append(gotLoads, r); return nil },
		func(r CommitRecord) error { gotCommits = append(gotCommits, r); return nil },
	); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLoads, loads) {
		t.Fatalf("loads mismatch: got %+v want %+v", gotLoads, loads)
	}
	if len(gotCommits) != 2 || gotCommits[0].TS != 5 {
		t.Fatalf("commits mismatch: %+v", gotCommits)
	}
	if l2.RecoveryPeakBytes() == 0 || l2.RecoveryPeakBytes() > 1<<20 {
		t.Fatalf("RecoveryPeakBytes = %d, want (0, 1MiB]", l2.RecoveryPeakBytes())
	}
}

// TestSegmentFormatGate: a segment whose header is not the current
// segMagic (an old-format or foreign file) must fail replay with an
// unsupported-format error instead of misparsing its bytes as records;
// a header torn mid-write just means an empty segment.
func TestSegmentFormatGate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	// Old-format segment: frames with no header (the pre-kind-byte
	// layout started straight with a frame).
	old := appendFrame(nil, []byte("not a current-format record"))
	if err := os.WriteFile(filepath.Join(dir, "wal", segmentName(0, 1)), old, 0o644); err != nil {
		t.Fatal(err)
	}
	err = l.ReplayCommits(
		func(LoadRecord) error { return nil },
		func(CommitRecord) error { return nil })
	if err == nil {
		t.Fatal("old-format segment replayed without error")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn header (shorter than segMagic) holds no records but is not
	// an error.
	dir2 := t.TempDir()
	l2, err := Open(dir2, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := os.WriteFile(filepath.Join(dir2, "wal", segmentName(0, 1)), segMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 0 {
		t.Fatalf("torn-header segment produced %d records", len(got))
	}
}

// TestLoadOnlySegmentTruncated: a segment holding only bulk-load
// records carries no timestamp and is reclaimed by the first
// checkpoint, whose capture covers the loaded data.
func TestLoadOnlySegmentTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendLoads(0, []LoadRecord{{Table: 0, Col: 0, Vals: []int64{1}}}); err != nil {
		t.Fatal(err)
	}
	err = l.WriteCheckpoint(1, 1, func(w *CheckpointWriter) error {
		if err := w.BeginTable(0, "t", 0, 0); err != nil {
			return err
		}
		return w.FinishTable(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if len(segs) != 0 {
		t.Fatalf("load-only segment survived checkpoint truncation: %v", segs)
	}
}

func TestTableRecordRoundtrip(t *testing.T) {
	rec := TableRecord{Name: "acct", Rows: 4096, Columns: []ColumnDef{{Name: "id", Type: 0, Index: 2}, {Name: "name", Type: 3}}}
	got, err := decodeTable(rec.encode(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("roundtrip mismatch: got %+v want %+v", got, rec)
	}
}

func TestDecodeRejectsTruncatedPayload(t *testing.T) {
	full := testRecords(3, 1)[0].encode(nil)
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodeCommit(full[:cut]); err == nil {
			t.Fatalf("decodeCommit accepted %d of %d bytes", cut, len(full))
		}
	}
}

func replayAll(t *testing.T, l *Log) []CommitRecord {
	t.Helper()
	var got []CommitRecord
	if err := l.ReplayCommits(
		func(LoadRecord) error { return nil },
		func(r CommitRecord) error {
			got = append(got, r)
			return nil
		}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayAcrossShards(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 3, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	// Anchor the directory: segments without any schema records are
	// treated as orphans and discarded on the next Open.
	if err := l.AppendTable(TableRecord{Name: "t", Rows: 1}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for shard := 0; shard < 3; shard++ {
		recs := testRecords(uint64(1+10*shard), 4)
		if err := l.AppendCommits(shard, recs); err != nil {
			t.Fatalf("append shard %d: %v", shard, err)
		}
		want += len(recs)
	}
	if l.Bytes() == 0 || l.Fsyncs() == 0 {
		t.Fatalf("expected bytes and fsyncs counted, got %d / %d", l.Bytes(), l.Fsyncs())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, 3, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != want {
		t.Fatalf("replayed %d records, want %d", len(got), want)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncGroup, SyncAlways, SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			l, err := Open(t.TempDir(), 1, p)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if err := l.AppendCommits(0, testRecords(1, 8)); err != nil {
				t.Fatal(err)
			}
			fsyncs := l.Fsyncs()
			switch p {
			case SyncNone:
				// Open always syncs the root directory once so the schema
				// log's directory entry is durable; SyncNone skips all
				// subsequent data and dir syncs.
				if fsyncs != 1 {
					t.Fatalf("SyncNone issued %d fsyncs, want 1", fsyncs)
				}
			case SyncGroup:
				// Root dir sync at open + one dir sync for segment
				// creation + one data sync for the whole 8-record batch.
				if fsyncs != 3 {
					t.Fatalf("SyncGroup issued %d fsyncs, want 3", fsyncs)
				}
			case SyncAlways:
				if fsyncs < 8 {
					t.Fatalf("SyncAlways issued %d fsyncs, want >= 8", fsyncs)
				}
			}
			if roundtrip, err := ParseSyncPolicy(p.String()); err != nil || roundtrip != p {
				t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), roundtrip, err)
			}
		})
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy accepted bogus policy")
	}
}

func TestTornTailReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	// Anchor with a schema record so the reopen does not discard the
	// segment as an orphan.
	if err := l.AppendTable(TableRecord{Name: "t", Rows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommits(0, testRecords(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: truncate the single segment by a few bytes.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 4 {
		t.Fatalf("torn-tail replay returned %d records, want 4", len(got))
	}
	for i, r := range got {
		if r.TS != uint64(1+i) {
			t.Fatalf("record %d has TS %d, want %d", i, r.TS, 1+i)
		}
	}
}

func TestSchemaLogReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	want := []TableRecord{
		{Name: "a", Rows: 16, Columns: []ColumnDef{{Name: "x", Type: 0}}},
		{Name: "b", Rows: 32, Columns: []ColumnDef{{Name: "y", Type: 3}, {Name: "z", Type: 1}}},
	}
	for _, r := range want {
		if err := l.AppendTable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []TableRecord
	if err := l2.ReplayTables(func(r TableRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schema replay mismatch: got %+v want %+v", got, want)
	}
}

func TestCheckpointRoundtripAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 2, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Anchor with a schema record so replayAllCount's reopen does not
	// discard segments and checkpoints as orphans.
	if err := l.AppendTable(TableRecord{Name: "t", Rows: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommits(0, testRecords(1, 3)); err != nil { // TS 1..3
		t.Fatal(err)
	}
	if err := l.AppendCommits(1, testRecords(4, 2)); err != nil { // TS 4..5
		t.Fatal(err)
	}

	words := []uint64{7, 8, 9}
	err = l.WriteCheckpoint(5, 1, func(w *CheckpointWriter) error {
		if err := w.BeginTable(0, "t", len(words), 1); err != nil {
			return err
		}
		for _, v := range words { // data words
			w.u64(v)
		}
		for range words { // wts words
			w.u64(5)
		}
		return w.FinishTable([]string{"s0", "s1"})
	})
	if err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}

	// Both segments' records are <= 5: truncation must have removed them.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if len(segs) != 0 {
		t.Fatalf("expected WAL fully truncated, still have %v", segs)
	}

	ts, ok, err := l.LoadCheckpoint(func(ts uint64, ntables int, r *CheckpointReader) error {
		if ntables != 1 {
			t.Fatalf("ntables = %d", ntables)
		}
		slot, name, rows, cols, err := r.TableHeader()
		if err != nil {
			return err
		}
		if slot != 0 || name != "t" || rows != 3 || cols != 1 {
			t.Fatalf("table header: %d %q %d %d", slot, name, rows, cols)
		}
		for i := 0; i < 2*rows; i++ {
			v, err := r.u64()
			if err != nil {
				return err
			}
			if i < rows && v != words[i] {
				t.Fatalf("data word %d = %d, want %d", i, v, words[i])
			}
			if i >= rows && v != 5 {
				t.Fatalf("wts word %d = %d, want 5", i-rows, v)
			}
		}
		dict, err := r.TableDict()
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(dict, []string{"s0", "s1"}) {
			t.Fatalf("table dict: %v", dict)
		}
		return nil
	})
	if err != nil || !ok || ts != 5 {
		t.Fatalf("load checkpoint: ts=%d ok=%v err=%v", ts, ok, err)
	}

	// Records after the checkpoint survive the next truncation only if
	// above its timestamp.
	if err := l.AppendCommits(0, testRecords(6, 2)); err != nil { // TS 6..7
		t.Fatal(err)
	}
	if err := l.TruncateBelow(5); err != nil {
		t.Fatal(err)
	}
	if got := replayAllCount(t, dir); got != 2 {
		t.Fatalf("post-checkpoint records: %d, want 2", got)
	}
}

func replayAllCount(t *testing.T, dir string) int {
	t.Helper()
	l, err := Open(dir, 2, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return len(replayAll(t, l))
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = l.WriteCheckpoint(3, 1, func(w *CheckpointWriter) error {
		if err := w.BeginTable(0, "t", 0, 0); err != nil {
			return err
		}
		return w.FinishTable(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	ckpts, err := l.checkpoints()
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("checkpoints: %v, %v", ckpts, err)
	}
	// Flip one body byte: the whole-file CRC must reject the load.
	buf, err := os.ReadFile(ckpts[0].path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(ckpts[0].path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.LoadCheckpoint(func(uint64, int, *CheckpointReader) error { return nil }); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}

func TestOpenRemovesOrphanedTempCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "checkpoint.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp checkpoint survived Open: %v", err)
	}
}

func TestPoisonedLogRefusesAppends(t *testing.T) {
	l, err := Open(t.TempDir(), 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendCommits(0, testRecords(1, 1)); err != nil {
		t.Fatal(err)
	}
	l.failed.Store(true) // as the first write/sync error would
	if err := l.AppendCommits(0, testRecords(2, 1)); err != ErrLogFailed {
		t.Fatalf("poisoned append returned %v, want ErrLogFailed", err)
	}
	if err := l.AppendTable(TableRecord{Name: "t", Rows: 1}); err != ErrLogFailed {
		t.Fatalf("poisoned schema append returned %v, want ErrLogFailed", err)
	}
}

func TestClosedLogRefusesAppends(t *testing.T) {
	l, err := Open(t.TempDir(), 1, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommits(0, testRecords(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommits(0, testRecords(2, 1)); err != ErrLogClosed {
		t.Fatalf("append after Close returned %v, want ErrLogClosed", err)
	}
	if err := l.AppendTable(TableRecord{Name: "t", Rows: 1}); err != ErrLogClosed {
		t.Fatalf("schema append after Close returned %v, want ErrLogClosed", err)
	}
}

func TestPoisonedLogRefusesCheckpoint(t *testing.T) {
	l, err := Open(t.TempDir(), 1, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.failed.Store(true)
	err = l.WriteCheckpoint(1, 0, func(*CheckpointWriter) error { return nil })
	if err != ErrLogFailed {
		t.Fatalf("checkpoint on poisoned log returned %v, want ErrLogFailed", err)
	}
}
