// Package wal is the durability subsystem of AnKerDB: a per-commit-
// shard write-ahead log with group-commit fsync batching, an append-
// only schema log, and snapshot-driven checkpoints that truncate the
// log (checkpoint.go).
//
// Layout under the durability directory:
//
//	schema.log                 table-creation records, never truncated
//	wal/shardNNN-SSSSSSSS.wal  commit redo segments, one series per
//	                           commit shard, rotated at checkpoints
//	checkpoint-<ts>.ckpt       the newest checkpoint (older ones and
//	                           crash-orphaned temporaries are removed)
//
// The append path mirrors the engine's group-commit pipeline: the
// batch leader hands the whole batch's redo records to AppendCommits,
// which issues a single write and — under the default SyncGroup policy
// — a single fsync for the group, so durability costs amortize across
// a batch exactly like the shard lock acquisition does.
//
// Every record is framed with its length and a CRC32 of its payload,
// so replay is torn-tail tolerant: a crash mid-append corrupts at most
// the trailing frame of one shard segment, and replay stops cleanly at
// the last intact record.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncGroup (the default) fsyncs once per group-commit batch:
	// every transaction is durable when its Commit returns, at one
	// fsync per shard-lock acquisition.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs after every individual record, forgoing the
	// group amortisation — the strictest and slowest policy.
	SyncAlways
	// SyncNone never fsyncs on the commit path; records reach the OS
	// page cache only. A clean Close still syncs, so only crashes (not
	// shutdowns) can lose tail records.
	SyncNone
)

// String implements fmt.Stringer with the option-surface spellings.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "groupOnly"
	}
}

// ParseSyncPolicy parses the String form.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "groupOnly", "group":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, groupOnly or none)", s)
}

// Log is one durability directory: per-shard segment series, the
// schema log, and the checkpoint lifecycle. Appends to different
// shards proceed in parallel; appends to one shard serialise on that
// shard's mutex, which the engine's commit pipeline already guarantees
// by appending under the shard commit lock.
// ErrLogFailed is returned by every append after a WAL write or sync
// error: once a record may have been lost, continuing to append would
// let later commits become durable on top of a hole, so the log
// poisons itself and the engine stops accepting commits instead of
// silently running without durability.
var ErrLogFailed = errors.New("wal: log failed, refusing further appends (durability can no longer be guaranteed)")

// ErrLogClosed is returned by appends racing Close: a segment created
// after Close would never be synced or closed.
var ErrLogClosed = errors.New("wal: log closed")

type Log struct {
	dir    string
	policy SyncPolicy
	shards []*shardLog
	failed atomic.Bool // poisoned by the first append error
	closed atomic.Bool // set by Close before it syncs the files

	bytes  atomic.Uint64 // record bytes appended (WAL + schema log)
	fsyncs atomic.Uint64 // fsyncs issued (segments, schema log, checkpoints)

	schemaMu sync.Mutex
	schema   *os.File

	// sealedMax maps closed segment paths to the newest commit
	// timestamp they contain, the input to checkpoint truncation. It is
	// populated by replay (previous runs' segments) and by sealing
	// (this run's segments).
	sealedMu  sync.Mutex
	sealedMax map[string]uint64
}

// shardLog is one shard's active segment. Segments are created lazily
// on first append and sealed (closed and registered for truncation) by
// TruncateBelow.
type shardLog struct {
	shard int

	mu      sync.Mutex
	f       *os.File
	path    string
	seq     int // newest segment sequence number used or found on disk
	lastTS  uint64
	records int
}

// Open opens (creating if necessary) the durability directory for the
// given commit shard count. Existing segments are left untouched —
// fresh appends always start a new segment above every recovered
// sequence number — and a temporary checkpoint orphaned by a crash is
// removed.
func Open(dir string, shards int, policy SyncPolicy) (*Log, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("wal: non-positive shard count %d", shards)
	}
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		return nil, err
	}
	schema, err := os.OpenFile(filepath.Join(dir, "schema.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, policy: policy, schema: schema, sealedMax: map[string]uint64{}}
	segs, err := l.segments()
	if err != nil {
		_ = schema.Close()
		return nil, err
	}
	maxSeq := map[int]int{}
	for _, sg := range segs {
		if sg.seq > maxSeq[sg.shard] {
			maxSeq[sg.shard] = sg.seq
		}
	}
	for i := 0; i < shards; i++ {
		l.shards = append(l.shards, &shardLog{shard: i, seq: maxSeq[i]})
	}
	_ = os.Remove(l.tmpCheckpointPath())
	return l, nil
}

// Dir returns the durability directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the configured sync policy.
func (l *Log) Policy() SyncPolicy { return l.policy }

// Bytes returns the cumulative record bytes appended.
func (l *Log) Bytes() uint64 { return l.bytes.Load() }

// Fsyncs returns the cumulative fsync count.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Shards returns the shard count the log was opened with.
func (l *Log) Shards() int { return len(l.shards) }

// AppendCommits appends a batch of commit records to shard's segment:
// one write per batch and, under SyncGroup, one fsync per batch (under
// SyncAlways, one write and one fsync per record). It returns only
// after the records are as durable as the policy promises, so the
// commit pipeline may acknowledge the batch when it returns. Any
// write or sync error poisons the log (see ErrLogFailed).
func (l *Log) AppendCommits(shard int, recs []CommitRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if err := l.usable(); err != nil {
		return err
	}
	s := l.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := l.ensureSegment(s); err != nil {
		return l.poison(err)
	}
	if l.policy == SyncAlways {
		for _, r := range recs {
			if err := l.write(s, appendFrame(nil, r.encode(nil))); err != nil {
				return l.poison(err)
			}
			if err := l.sync(s.f); err != nil {
				return l.poison(err)
			}
			s.lastTS, s.records = r.TS, s.records+1
		}
		return nil
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r.encode(nil))
	}
	if err := l.write(s, buf); err != nil {
		return l.poison(err)
	}
	if l.policy == SyncGroup {
		if err := l.sync(s.f); err != nil {
			return l.poison(err)
		}
	}
	s.lastTS, s.records = recs[len(recs)-1].TS, s.records+len(recs)
	return nil
}

// poison marks the log failed and passes err through.
func (l *Log) poison(err error) error {
	l.failed.Store(true)
	return err
}

// usable reports (as an error) whether the log still accepts appends
// and checkpoints.
func (l *Log) usable() error {
	if l.failed.Load() {
		return ErrLogFailed
	}
	if l.closed.Load() {
		return ErrLogClosed
	}
	return nil
}

// Failed reports whether the log has been poisoned by an append error.
func (l *Log) Failed() bool { return l.failed.Load() }

// AppendTable appends a table-creation record to the schema log. DDL
// is rare, so it is fsynced regardless of policy (except SyncNone).
func (l *Log) AppendTable(rec TableRecord) error {
	if err := l.usable(); err != nil {
		return err
	}
	l.schemaMu.Lock()
	defer l.schemaMu.Unlock()
	buf := appendFrame(nil, rec.encode(nil))
	if _, err := l.schema.Write(buf); err != nil {
		return l.poison(err)
	}
	l.bytes.Add(uint64(len(buf)))
	if l.policy == SyncNone {
		return nil
	}
	if err := l.sync(l.schema); err != nil {
		return l.poison(err)
	}
	return nil
}

// ReplayTables streams every schema-log record to fn in append order
// (original table-index order), stopping at a torn tail.
func (l *Log) ReplayTables(fn func(TableRecord) error) error {
	buf, err := os.ReadFile(filepath.Join(l.dir, "schema.log"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for {
		payload, rest, ok := nextFrame(buf)
		if !ok {
			return nil
		}
		buf = rest
		rec, err := decodeTable(payload)
		if err != nil {
			return err // CRC passed but payload malformed: real corruption
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// ReplayCommits streams every durable commit record to fn, shard by
// shard in segment order. Order across shards is arbitrary — callers
// must apply records idempotently by commit timestamp (newer-wins per
// row). Each segment is read up to its first bad frame (torn tail) and
// registered for later checkpoint truncation by its newest timestamp.
func (l *Log) ReplayCommits(fn func(CommitRecord) error) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, sg := range segs {
		buf, err := os.ReadFile(sg.path)
		if err != nil {
			return err
		}
		var maxTS uint64
		for {
			payload, rest, ok := nextFrame(buf)
			if !ok {
				break
			}
			buf = rest
			rec, err := decodeCommit(payload)
			if err != nil {
				return fmt.Errorf("wal: segment %s: %w", sg.path, err)
			}
			if rec.TS > maxTS {
				maxTS = rec.TS
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
		l.sealedMu.Lock()
		l.sealedMax[sg.path] = maxTS
		l.sealedMu.Unlock()
	}
	return nil
}

// TruncateBelow seals every shard's active segment (future appends
// start fresh segments) and deletes sealed segments whose newest
// record timestamp is at or below ts — their contents are fully
// covered by the checkpoint at ts.
func (l *Log) TruncateBelow(ts uint64) error {
	for _, s := range l.shards {
		s.mu.Lock()
		if s.f != nil {
			err := s.f.Close()
			l.sealedMu.Lock()
			l.sealedMax[s.path] = s.lastTS
			l.sealedMu.Unlock()
			s.f = nil
			if err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	l.sealedMu.Lock()
	defer l.sealedMu.Unlock()
	var firstErr error
	for path, max := range l.sealedMax {
		if max <= ts {
			if err := os.Remove(path); err != nil && firstErr == nil {
				firstErr = err
			}
			delete(l.sealedMax, path)
		}
	}
	if err := l.syncDir(filepath.Join(l.dir, "wal")); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close syncs and closes every open file and refuses appends from
// then on (ErrLogClosed). Even under SyncNone a clean Close makes the
// log durable; only a crash can lose its tail.
func (l *Log) Close() error {
	l.closed.Store(true)
	var firstErr error
	for _, s := range l.shards {
		s.mu.Lock()
		if s.f != nil {
			if err := s.f.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := s.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.f = nil
		}
		s.mu.Unlock()
	}
	l.schemaMu.Lock()
	if l.schema != nil {
		if err := l.schema.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := l.schema.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		l.schema = nil
	}
	l.schemaMu.Unlock()
	return firstErr
}

// ensureSegment opens the shard's next segment if none is active. The
// caller holds s.mu. The closed re-check matters: an append that
// passed the entry check can block on s.mu while Close drains the
// shard — without it, the append would create a segment Close never
// syncs.
func (l *Log) ensureSegment(s *shardLog) error {
	if l.closed.Load() {
		return ErrLogClosed
	}
	if s.f != nil {
		return nil
	}
	s.seq++
	s.path = filepath.Join(l.dir, "wal", segmentName(s.shard, s.seq))
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	s.lastTS, s.records = 0, 0
	if l.policy == SyncNone {
		return nil
	}
	return l.syncDir(filepath.Join(l.dir, "wal"))
}

func (l *Log) write(s *shardLog, buf []byte) error {
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	l.bytes.Add(uint64(len(buf)))
	return nil
}

func (l *Log) sync(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// syncDir makes directory-entry changes (segment creation, removal,
// checkpoint rename) durable.
func (l *Log) syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		l.fsyncs.Add(1)
	}
	return err
}

func segmentName(shard, seq int) string {
	return fmt.Sprintf("shard%03d-%08d.wal", shard, seq)
}

type segref struct {
	path       string
	shard, seq int
}

// segments lists the WAL segment files sorted by (shard, seq).
func (l *Log) segments() ([]segref, error) {
	ents, err := os.ReadDir(filepath.Join(l.dir, "wal"))
	if err != nil {
		return nil, err
	}
	var out []segref
	for _, e := range ents {
		var shard, seq int
		if n, _ := fmt.Sscanf(e.Name(), "shard%03d-%08d.wal", &shard, &seq); n != 2 {
			continue
		}
		out = append(out, segref{path: filepath.Join(l.dir, "wal", e.Name()), shard: shard, seq: seq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].shard != out[j].shard {
			return out[i].shard < out[j].shard
		}
		return out[i].seq < out[j].seq
	})
	return out, nil
}
