// Package wal is the durability subsystem of AnKerDB: a per-commit-
// shard write-ahead log with group-commit fsync batching, an append-
// only schema log, and snapshot-driven checkpoints that truncate the
// log (checkpoint.go).
//
// Layout under the durability directory:
//
//	schema.log                 table-creation records, never truncated
//	wal/shardNNN-SSSSSSSS.wal  commit redo segments, one series per
//	                           commit shard, rotated at checkpoints
//	checkpoint-<ts>.ckpt       the newest checkpoint (older ones and
//	                           crash-orphaned temporaries are removed)
//
// The append path mirrors the engine's group-commit pipeline: the
// batch leader hands the whole batch's redo records to AppendCommits,
// which issues a single write and — under the default SyncGroup policy
// — a single fsync for the group, so durability costs amortize across
// a batch exactly like the shard lock acquisition does.
//
// Shard segments hold two record kinds, tagged by their first payload
// byte: commit redo records and bulk-load chunk records (timestamp-less
// time-zero state, see LoadRecord). Every record is framed with its
// length and a CRC32 of its payload, so replay is torn-tail tolerant:
// a crash mid-append corrupts at most the trailing frame of one shard
// segment, and replay stops cleanly at the last intact record. All
// replay — segments and checkpoint bodies alike — streams through
// fixed-size buffers (an incremental CRC runs over checkpoint bodies),
// so restart memory is O(chunk) regardless of database size.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ankerdb/internal/fault"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncGroup (the default) fsyncs once per group-commit batch:
	// every transaction is durable when its Commit returns, at one
	// fsync per shard-lock acquisition.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs after every individual record, forgoing the
	// group amortisation — the strictest and slowest policy.
	SyncAlways
	// SyncNone never fsyncs on the commit path; records reach the OS
	// page cache only. A clean Close still syncs, so only crashes (not
	// shutdowns) can lose tail records.
	SyncNone
)

// String implements fmt.Stringer with the option-surface spellings.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "groupOnly"
	}
}

// ParseSyncPolicy parses the String form.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "groupOnly", "group":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, groupOnly or none)", s)
}

// Log is one durability directory: per-shard segment series, the
// schema log, and the checkpoint lifecycle. Appends to different
// shards proceed in parallel; appends to one shard serialise on that
// shard's mutex, which the engine's commit pipeline already guarantees
// by appending under the shard commit lock.
// ErrLogFailed is returned by every append after a WAL write or sync
// error: once a record may have been lost, continuing to append would
// let later commits become durable on top of a hole, so the log
// poisons itself and the engine stops accepting commits instead of
// silently running without durability.
var ErrLogFailed = errors.New("wal: log failed, refusing further appends (durability can no longer be guaranteed)")

// ErrLogClosed is returned by appends racing Close: a segment created
// after Close would never be synced or closed.
var ErrLogClosed = errors.New("wal: log closed")

// ErrCorruptWAL is the sentinel every unrecoverable WAL defect matches
// under errors.Is: a segment with an unsupported header, or a frame
// whose CRC passed but whose payload does not decode. A torn tail is
// NOT corruption — replay tolerates it and reports it via TailBytes.
var ErrCorruptWAL = errors.New("wal: corrupt write-ahead log")

// ErrCorruptCheckpoint is the sentinel every checkpoint defect matches
// under errors.Is: bad header, missing trailer, body/seal checksum
// mismatch, or a body that does not parse. A present-but-corrupt
// checkpoint fails recovery outright — the WAL below its timestamp is
// already truncated, so falling back would silently lose data.
var ErrCorruptCheckpoint = errors.New("wal: corrupt checkpoint")

// CorruptError carries the locus of a corruption: which file, at what
// byte offset (-1 when the offset is not known), and what was wrong.
// It unwraps to ErrCorruptWAL or ErrCorruptCheckpoint.
type CorruptError struct {
	Sentinel error  // ErrCorruptWAL or ErrCorruptCheckpoint
	File     string // path of the corrupt file
	Offset   int64  // byte offset of the defect, -1 if unknown
	Detail   string
}

func (e *CorruptError) Error() string {
	if e.Offset < 0 {
		return fmt.Sprintf("%v: %s: %s", e.Sentinel, e.File, e.Detail)
	}
	return fmt.Sprintf("%v: %s at offset %d: %s", e.Sentinel, e.File, e.Offset, e.Detail)
}

func (e *CorruptError) Unwrap() error { return e.Sentinel }

func corruptWAL(file string, off int64, format string, args ...any) error {
	return &CorruptError{Sentinel: ErrCorruptWAL, File: file, Offset: off, Detail: fmt.Sprintf(format, args...)}
}

func corruptCkpt(file string, off int64, format string, args ...any) error {
	return &CorruptError{Sentinel: ErrCorruptCheckpoint, File: file, Offset: off, Detail: fmt.Sprintf(format, args...)}
}

type Log struct {
	dir    string
	fs     fault.FS
	policy SyncPolicy
	shards []*shardLog
	failed atomic.Bool // poisoned by the first append error
	closed atomic.Bool // set by Close before it syncs the files

	bytes   atomic.Uint64 // record bytes appended (WAL + schema log)
	records atomic.Uint64 // commit + load records appended to shard segments
	fsyncs  atomic.Uint64 // fsyncs issued (segments, schema log, checkpoints)

	// tailBytes sums, across every file replay streamed, the bytes
	// between the last intact frame and the end of the file: the torn
	// or unsynced tail recovery discarded. Zero on a clean shutdown.
	tailBytes atomic.Uint64

	// recoveryPeak is the high-water mark of transient buffer bytes the
	// streaming recovery readers held (bufio windows + the largest
	// record frame): the evidence that restart memory is O(chunk), not
	// O(DB). Retained recovered state (tables, dictionaries) is not
	// counted — it exists with or without recovery.
	recoveryPeak atomic.Uint64

	// OnSeal, when set (before the log is shared), is called each time
	// TruncateBelow seals a shard's active segment, with the shard id,
	// the record count, and the newest commit timestamp the segment
	// holds. It runs with the shard's append lock held, so it must be
	// cheap and must not call back into the log.
	OnSeal func(shard, records int, lastTS uint64)

	// OnAppend, when set (before the log is shared), is called by
	// AppendCommits after a batch is as durable as the policy promises,
	// with the shard id and the batch's records, still under the shard's
	// append lock and before the commit pipeline publishes the batch's
	// timestamps. The replication publisher uses it to capture every
	// durable record ahead of the completion watermark; like OnSeal it
	// must be cheap and must not call back into the log.
	OnAppend func(shard int, recs []CommitRecord)

	// OnLoad is OnAppend for bulk-load chunk records: called by
	// AppendLoads once the whole load chunk batch is durable, under the
	// shard's append lock.
	OnLoad func(shard int, recs []LoadRecord)

	// OnSchema is called by the schema-log appends (AppendTable,
	// AppendIndexDDL, AppendTableDDL) with each record's encoded payload
	// once it is durable, under the schema lock. Payload ownership
	// passes to the hook; decode with DecodeSchemaPayload. seq is the
	// record's position in the schema log (records appended before it),
	// the key replicas use to apply each schema record exactly once when
	// a bootstrap's file replay overlaps the live stream.
	OnSchema func(seq uint64, payload []byte)

	schemaMu sync.Mutex
	schema   fault.File
	// schemaSeq counts schema-log records: records already in the file
	// at open (set by the ReplaySchema* full passes) plus records
	// appended since. Guarded by schemaMu.
	schemaSeq uint64

	// sealedMax maps closed segment paths to the newest commit
	// timestamp they contain, the input to checkpoint truncation. It is
	// populated by replay (previous runs' segments) and by sealing
	// (this run's segments).
	sealedMu  sync.Mutex
	sealedMax map[string]uint64
}

// shardLog is one shard's active segment. Segments are created lazily
// on first append and sealed (closed and registered for truncation) by
// TruncateBelow.
type shardLog struct {
	shard int

	mu      sync.Mutex
	f       fault.File
	path    string
	seq     int // newest segment sequence number used or found on disk
	lastTS  uint64
	records int
}

// Open opens (creating if necessary) the durability directory for the
// given commit shard count. Existing segments are left untouched —
// fresh appends always start a new segment above every recovered
// sequence number — and a temporary checkpoint orphaned by a crash is
// removed.
func Open(dir string, shards int, policy SyncPolicy) (*Log, error) {
	return OpenFS(dir, shards, policy, fault.OS)
}

// OpenFS is Open with an explicit file system — the fault-injection
// seam. Production code uses Open (the real FS); the crash harness
// passes a fault.Scripted to crash, tear, or fsync-lie the log's disk
// on a seeded schedule. A nil fs means the real FS.
func OpenFS(dir string, shards int, policy SyncPolicy, fs fault.FS) (*Log, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("wal: non-positive shard count %d", shards)
	}
	if fs == nil {
		fs = fault.OS
	}
	if err := fs.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		return nil, err
	}
	schema, err := fs.OpenFile(filepath.Join(dir, "schema.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, fs: fs, policy: policy, schema: schema, sealedMax: map[string]uint64{}}
	// The schema log is the directory's root of trust: every segment
	// and checkpoint record addresses tables by schema-log position.
	// Its creation (and the wal/ subdirectory's) must outlive a crash
	// before anything can depend on it, so the root directory entry is
	// fsynced here — segment and checkpoint paths sync their own
	// directories at each use, but nothing else covers this one.
	if err := l.syncDir(dir); err != nil {
		_ = schema.Close()
		return nil, err
	}
	if err := l.discardOrphans(); err != nil {
		_ = schema.Close()
		return nil, err
	}
	segs, err := l.segments()
	if err != nil {
		_ = schema.Close()
		return nil, err
	}
	maxSeq := map[int]int{}
	for _, sg := range segs {
		if sg.seq > maxSeq[sg.shard] {
			maxSeq[sg.shard] = sg.seq
		}
	}
	for i := 0; i < shards; i++ {
		l.shards = append(l.shards, &shardLog{shard: i, seq: maxSeq[i]})
	}
	_ = fs.Remove(l.tmpCheckpointPath())
	return l, nil
}

// errSchemaNonEmpty is the sentinel discardOrphans uses to stop the
// schema scan at the first intact record.
var errSchemaNonEmpty = errors.New("wal: schema log has records")

// discardOrphans removes shard segments and checkpoints left in a
// directory whose schema log holds no intact record. Commit records
// and checkpoint sections address tables by schema-log position, and
// with no durable schema records those positions belong to whatever
// schema the reopened database creates next — replaying the orphaned
// files on a later Open would resurrect their rows into the new
// tables. Schema appends are fsynced before any dependent record is
// written, so this state is the residue of a crash on a disk that
// lied about durability; recovery treats it as a crash before the
// schema fsync: the dependent files never happened.
func (l *Log) discardOrphans() error {
	err := l.ReplaySchemaDDL(
		func(TableRecord) error { return errSchemaNonEmpty },
		func(IndexDDLRecord) error { return errSchemaNonEmpty },
		func(TableDDLRecord) error { return errSchemaNonEmpty })
	if errors.Is(err, errSchemaNonEmpty) {
		return nil
	}
	if err != nil {
		// A record that passed its CRC but failed to decode is durable
		// content; keep the files and let recovery report the error.
		return nil
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, sg := range segs {
		if err := l.fs.Remove(sg.path); err != nil {
			return err
		}
	}
	cks, err := l.checkpoints()
	if err != nil {
		return err
	}
	for _, ck := range cks {
		if err := l.fs.Remove(ck.path); err != nil {
			return err
		}
	}
	if len(segs) == 0 && len(cks) == 0 {
		return nil
	}
	// The removals must be durable before the reopened database appends
	// schema records: a crash that resurrected the segments after new
	// tables claimed their slots would replay them into those tables.
	if err := l.syncDir(filepath.Join(l.dir, "wal")); err != nil {
		return err
	}
	return l.syncDir(l.dir)
}

// Dir returns the durability directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the configured sync policy.
func (l *Log) Policy() SyncPolicy { return l.policy }

// Bytes returns the cumulative record bytes appended, plus the bytes
// replayed by recovery — the tail a checkpoint has not yet covered
// counts as growth regardless of which process wrote it.
func (l *Log) Bytes() uint64 { return l.bytes.Load() }

// Records returns the cumulative count of commit and load records
// appended to shard segments, plus the records replayed by recovery —
// together with Bytes, the input to automatic checkpoint scheduling.
func (l *Log) Records() uint64 { return l.records.Load() }

// Fsyncs returns the cumulative fsync count.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// RecoveryPeakBytes returns the high-water mark of transient buffer
// bytes held while streaming this log's checkpoint and segments during
// recovery (zero if no replay ran).
func (l *Log) RecoveryPeakBytes() uint64 { return l.recoveryPeak.Load() }

// TailBytes returns the total bytes replay discarded past the last
// intact frame of each file it streamed — the torn or never-synced
// tails a crash left behind. Zero after a clean shutdown.
func (l *Log) TailBytes() uint64 { return l.tailBytes.Load() }

// notePeak raises the recovery peak to at least n.
func (l *Log) notePeak(n uint64) {
	for {
		cur := l.recoveryPeak.Load()
		if n <= cur || l.recoveryPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Shards returns the shard count the log was opened with.
func (l *Log) Shards() int { return len(l.shards) }

// AppendCommits appends a batch of commit records to shard's segment:
// one write per batch and, under SyncGroup, one fsync per batch (under
// SyncAlways, one write and one fsync per record). It returns only
// after the records are as durable as the policy promises, so the
// commit pipeline may acknowledge the batch when it returns. Any
// write or sync error poisons the log (see ErrLogFailed).
func (l *Log) AppendCommits(shard int, recs []CommitRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if err := l.usable(); err != nil {
		return err
	}
	s := l.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := l.ensureSegment(s); err != nil {
		return l.poison(err)
	}
	if l.policy == SyncAlways {
		for _, r := range recs {
			if err := l.write(s, appendFrame(nil, r.encode(nil))); err != nil {
				return l.poison(err)
			}
			if err := l.sync(s.f); err != nil {
				return l.poison(err)
			}
			s.lastTS, s.records = r.TS, s.records+1
			l.records.Add(1)
		}
		if l.OnAppend != nil {
			l.OnAppend(shard, recs)
		}
		return nil
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r.encode(nil))
	}
	if err := l.write(s, buf); err != nil {
		return l.poison(err)
	}
	if l.policy == SyncGroup {
		if err := l.sync(s.f); err != nil {
			return l.poison(err)
		}
	}
	s.lastTS, s.records = recs[len(recs)-1].TS, s.records+len(recs)
	l.records.Add(uint64(len(recs)))
	if l.OnAppend != nil {
		l.OnAppend(shard, recs)
	}
	return nil
}

// AppendLoads appends a bulk load's chunk records to shard's segment:
// one write per chunk (the chunks together may exceed any sane single
// buffer) and one fsync for the whole load under any policy but
// SyncNone — a bulk load is one logical operation, so it gets one
// durability point, like a group-commit batch. Load records carry no
// timestamp and therefore never extend the segment's truncation
// watermark: once a checkpoint captures the loaded data, a segment
// holding only loads is reclaimed. The caller must serialise loads
// against checkpoints (the engine holds its checkpoint mutex), so a
// checkpoint can never capture half a load and then truncate the rest.
func (l *Log) AppendLoads(shard int, recs []LoadRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if err := l.usable(); err != nil {
		return err
	}
	s := l.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := l.ensureSegment(s); err != nil {
		return l.poison(err)
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf[:0], r.encode(nil))
		if err := l.write(s, buf); err != nil {
			return l.poison(err)
		}
	}
	if l.policy != SyncNone {
		if err := l.sync(s.f); err != nil {
			return l.poison(err)
		}
	}
	l.records.Add(uint64(len(recs)))
	if l.OnLoad != nil {
		l.OnLoad(shard, recs)
	}
	return nil
}

// poison marks the log failed and passes err through.
func (l *Log) poison(err error) error {
	l.failed.Store(true)
	return err
}

// usable reports (as an error) whether the log still accepts appends
// and checkpoints.
func (l *Log) usable() error {
	if l.failed.Load() {
		return ErrLogFailed
	}
	if l.closed.Load() {
		return ErrLogClosed
	}
	return nil
}

// Failed reports whether the log has been poisoned by an append error.
func (l *Log) Failed() bool { return l.failed.Load() }

// appendSchema frames payload into the schema log, fsyncs it under any
// policy but SyncNone (DDL is rare, so it always gets its own
// durability point), and hands the payload to OnSchema once durable.
func (l *Log) appendSchema(payload []byte) error {
	if err := l.usable(); err != nil {
		return err
	}
	l.schemaMu.Lock()
	defer l.schemaMu.Unlock()
	buf := appendFrame(nil, payload)
	if _, err := l.schema.Write(buf); err != nil {
		return l.poison(err)
	}
	l.bytes.Add(uint64(len(buf)))
	if l.policy != SyncNone {
		if err := l.sync(l.schema); err != nil {
			return l.poison(err)
		}
	}
	seq := l.schemaSeq
	l.schemaSeq++
	if l.OnSchema != nil {
		l.OnSchema(seq, payload)
	}
	return nil
}

// AppendTable appends a table-creation record to the schema log. DDL
// is rare, so it is fsynced regardless of policy (except SyncNone).
func (l *Log) AppendTable(rec TableRecord) error {
	return l.appendSchema(rec.encode(nil))
}

// AppendIndexDDL appends an online CreateIndex/DropIndex record to the
// schema log, fsynced like table records (DDL is rare). The schema log
// is never truncated, so index existence survives every checkpoint.
func (l *Log) AppendIndexDDL(rec IndexDDLRecord) error {
	return l.appendSchema(rec.encode(nil))
}

// AppendTableDDL appends a DropTable/Truncate marker record to the
// schema log, fsynced like the other DDL records. Recovery replays the
// schema log in order, so the drop or truncate applies exactly once,
// after the creation it refers to and before any later re-creation of
// the same name.
func (l *Log) AppendTableDDL(rec TableDDLRecord) error {
	return l.appendSchema(rec.encode(nil))
}

// replayBufSize is the bufio window streaming replay reads through:
// together with the largest single record frame it bounds recovery's
// transient memory, independent of segment or checkpoint size.
const replayBufSize = 1 << 16

// segMagic is the versioned header every shard segment starts with.
// Replay refuses a segment whose header does not match — a clear
// "unsupported format" failure instead of misparsing records when the
// record encoding changes (the kind-byte revision bumped this to 2,
// the row-op commit record kind to 3). A missing or short header is a
// segment created but torn before its first write and simply holds no
// records.
var segMagic = []byte("ANKWSEG3")

// frameScanner streams length+CRC framed records out of a reader,
// reusing one payload buffer. It stops (ok=false) at a clean EOF and
// at a torn or corrupt tail alike, mirroring nextFrame's contract.
// off is the byte offset just past the last intact frame.
type frameScanner struct {
	br  *bufio.Reader
	buf []byte
	off int64
}

// next returns the next intact frame payload. The returned slice is
// only valid until the following call.
func (fs *frameScanner) next() (payload []byte, ok bool) {
	var hdr [8]byte
	if _, err := io.ReadFull(fs.br, hdr[:]); err != nil {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if uint64(n) > maxFrameLen {
		return nil, false
	}
	if uint64(n) > uint64(cap(fs.buf)) {
		fs.buf = make([]byte, n)
	}
	payload = fs.buf[:n]
	if _, err := io.ReadFull(fs.br, payload); err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	fs.off += 8 + int64(n)
	return payload, true
}

// replayFile streams path's intact frames to fn (with each frame's
// starting byte offset), stopping cleanly at the first torn or corrupt
// frame, and returns with the file closed. Bytes past the last intact
// frame are counted into the discarded-tail total. With withHeader
// (shard segments), the segMagic header is validated first: a
// complete-but-wrong header is ErrCorruptWAL, a short one means the
// segment was torn before its first record. Memory held is the bufio
// window plus the largest frame — recorded in the recovery peak.
func (l *Log) replayFile(path string, withHeader bool, fn func(off int64, payload []byte) error) error {
	f, err := l.fs.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	size := int64(-1)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	br := bufio.NewReaderSize(f, replayBufSize)
	var base int64
	if withHeader {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if size > 0 {
				l.tailBytes.Add(uint64(size))
			}
			return nil // empty or torn header: no durable records
		}
		if string(hdr[:]) != string(segMagic) {
			return corruptWAL(path, 0, "unsupported format (header %q, want %q)", hdr[:], segMagic)
		}
		base = int64(len(segMagic))
	}
	fs := &frameScanner{br: br}
	for {
		start := base + fs.off
		payload, ok := fs.next()
		if !ok {
			l.notePeak(replayBufSize + uint64(cap(fs.buf)))
			if consumed := base + fs.off; size > consumed {
				l.tailBytes.Add(uint64(size - consumed))
			}
			return nil
		}
		if err := fn(start, payload); err != nil {
			return err
		}
	}
}

// ReplayTables streams every schema-log table record to fn in append
// order (original table-index order), stopping at a torn tail.
// Index-DDL records interleaved in the log are skipped; use
// ReplaySchema to observe both kinds in order.
func (l *Log) ReplayTables(fn func(TableRecord) error) error {
	return l.ReplaySchema(fn, func(IndexDDLRecord) error { return nil })
}

// ReplaySchema streams every schema-log record in append order: table
// records to onTable, index-DDL records to onIndex. Replaying both in
// order yields the tables in original index order and the set of
// secondary indexes alive when the log was last written.
func (l *Log) ReplaySchema(onTable func(TableRecord) error, onIndex func(IndexDDLRecord) error) error {
	return l.ReplaySchemaDDL(onTable, onIndex, func(TableDDLRecord) error { return nil })
}

// ReplaySchemaDDL is ReplaySchema with the third schema-log record
// kind surfaced: table-DDL markers (DropTable/Truncate) stream to
// onDDL, interleaved in append order with the other two kinds, so a
// replayer applying all three in sequence reconstructs exactly the
// schema alive when the log was last written — each DDL exactly once.
func (l *Log) ReplaySchemaDDL(onTable func(TableRecord) error, onIndex func(IndexDDLRecord) error, onDDL func(TableDDLRecord) error) error {
	path := filepath.Join(l.dir, "schema.log")
	if _, err := l.fs.Stat(path); os.IsNotExist(err) {
		return nil
	}
	var count uint64
	err := l.replayFile(path, false, func(off int64, payload []byte) error {
		count++
		// CRC passed, so a malformed payload below is real corruption.
		switch {
		case isTableDDL(payload):
			rec, err := decodeTableDDL(payload)
			if err != nil {
				return corruptWAL(path, off, "%v", err)
			}
			return onDDL(rec)
		case isIndexDDL(payload):
			rec, err := decodeIndexDDL(payload)
			if err != nil {
				return corruptWAL(path, off, "%v", err)
			}
			return onIndex(rec)
		default:
			rec, err := decodeTable(payload)
			if err != nil {
				return corruptWAL(path, off, "%v", err)
			}
			return onTable(rec)
		}
	})
	if err == nil {
		l.noteSchemaCount(count)
	}
	return err
}

// noteSchemaCount records that a full schema-log pass observed count
// records, seeding the append sequence for logs opened over an
// existing directory (appendSchema advanced the counter for any record
// appended during the pass, so take the max).
func (l *Log) noteSchemaCount(count uint64) {
	l.schemaMu.Lock()
	if count > l.schemaSeq {
		l.schemaSeq = count
	}
	l.schemaMu.Unlock()
}

// ReplayCommits streams every durable shard-segment record, shard by
// shard in segment order: bulk-load chunks to onLoad, commit records to
// onCommit. Order across shards is arbitrary — callers must apply
// commit records idempotently by commit timestamp (newer-wins per row)
// and load records only to rows no commit has stamped (write timestamp
// zero), which makes replay insensitive to both cross-shard ordering
// and repetition. Each segment is read in O(replayBufSize) memory up to
// its first bad frame (torn tail) and registered for later checkpoint
// truncation by its newest commit timestamp.
func (l *Log) ReplayCommits(onLoad func(LoadRecord) error, onCommit func(CommitRecord) error) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, sg := range segs {
		var maxTS uint64
		err := l.replayFile(sg.path, true, func(off int64, payload []byte) error {
			if len(payload) == 0 {
				return corruptWAL(sg.path, off, "empty record")
			}
			// Replayed records seed the growth counters: the tail that
			// survived this recovery counts toward the auto-checkpoint
			// thresholds exactly like fresh appends, so a large tail is
			// checkpointed away soon after restart instead of being
			// re-replayed on every subsequent Open.
			l.bytes.Add(uint64(len(payload) + 8))
			l.records.Add(1)
			switch payload[0] {
			case recKindLoad:
				rec, err := decodeLoad(payload)
				if err != nil {
					return corruptWAL(sg.path, off, "%v", err)
				}
				return onLoad(rec)
			case recKindCommit, recKindRowCommit:
				rec, err := decodeCommit(payload)
				if err != nil {
					return corruptWAL(sg.path, off, "%v", err)
				}
				if rec.TS > maxTS {
					maxTS = rec.TS
				}
				return onCommit(rec)
			default:
				return corruptWAL(sg.path, off, "unknown record kind %d", payload[0])
			}
		})
		if err != nil {
			return err
		}
		l.sealedMu.Lock()
		l.sealedMax[sg.path] = maxTS
		l.sealedMu.Unlock()
	}
	return nil
}

// TruncateBelow seals every shard's active segment (future appends
// start fresh segments) and deletes sealed segments whose newest
// record timestamp is at or below ts — their contents are fully
// covered by the checkpoint at ts.
func (l *Log) TruncateBelow(ts uint64) error {
	for _, s := range l.shards {
		s.mu.Lock()
		if s.f != nil {
			err := s.f.Close()
			l.sealedMu.Lock()
			l.sealedMax[s.path] = s.lastTS
			l.sealedMu.Unlock()
			if l.OnSeal != nil {
				l.OnSeal(s.shard, s.records, s.lastTS)
			}
			s.f = nil
			if err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	l.sealedMu.Lock()
	defer l.sealedMu.Unlock()
	var firstErr error
	for path, max := range l.sealedMax {
		if max <= ts {
			if err := l.fs.Remove(path); err != nil && firstErr == nil {
				firstErr = err
			}
			delete(l.sealedMax, path)
		}
	}
	if err := l.syncDir(filepath.Join(l.dir, "wal")); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close syncs and closes every open file and refuses appends from
// then on (ErrLogClosed). Even under SyncNone a clean Close makes the
// log durable; only a crash can lose its tail.
func (l *Log) Close() error {
	l.closed.Store(true)
	var firstErr error
	for _, s := range l.shards {
		s.mu.Lock()
		if s.f != nil {
			if err := s.f.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := s.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.f = nil
		}
		s.mu.Unlock()
	}
	l.schemaMu.Lock()
	if l.schema != nil {
		if err := l.schema.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := l.schema.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		l.schema = nil
	}
	l.schemaMu.Unlock()
	return firstErr
}

// ensureSegment opens the shard's next segment if none is active and
// writes the versioned header. The caller holds s.mu. The closed
// re-check matters: an append that passed the entry check can block on
// s.mu while Close drains the shard — without it, the append would
// create a segment Close never syncs.
func (l *Log) ensureSegment(s *shardLog) error {
	if l.closed.Load() {
		return ErrLogClosed
	}
	if s.f != nil {
		return nil
	}
	s.seq++
	s.path = filepath.Join(l.dir, "wal", segmentName(s.shard, s.seq))
	f, err := l.fs.OpenFile(s.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic); err != nil {
		_ = f.Close()
		return err
	}
	s.f = f
	s.lastTS, s.records = 0, 0
	if l.policy == SyncNone {
		return nil
	}
	return l.syncDir(filepath.Join(l.dir, "wal"))
}

func (l *Log) write(s *shardLog, buf []byte) error {
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	l.bytes.Add(uint64(len(buf)))
	return nil
}

func (l *Log) sync(f fault.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// syncDir makes directory-entry changes (segment creation, removal,
// checkpoint rename) durable.
func (l *Log) syncDir(dir string) error {
	if err := l.fs.SyncDir(dir); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

func segmentName(shard, seq int) string {
	return fmt.Sprintf("shard%03d-%08d.wal", shard, seq)
}

type segref struct {
	path       string
	shard, seq int
}

// segments lists the WAL segment files sorted by (shard, seq).
func (l *Log) segments() ([]segref, error) {
	ents, err := l.fs.ReadDir(filepath.Join(l.dir, "wal"))
	if err != nil {
		return nil, err
	}
	var out []segref
	for _, e := range ents {
		var shard, seq int
		if n, _ := fmt.Sscanf(e.Name(), "shard%03d-%08d.wal", &shard, &seq); n != 2 {
			continue
		}
		out = append(out, segref{path: filepath.Join(l.dir, "wal", e.Name()), shard: shard, seq: seq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].shard != out[j].shard {
			return out[i].shard < out[j].shard
		}
		return out[i].seq < out[j].seq
	})
	return out, nil
}
